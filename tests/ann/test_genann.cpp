#include <gtest/gtest.h>

#include <cmath>

#include "ann/dataset.hpp"
#include "ann/genann.hpp"
#include "ann/guest.hpp"
#include "wasm/decoder.hpp"
#include "wasm/instance.hpp"

namespace watz::ann {
namespace {

TEST(ApproxExp, CloseToStdExp) {
  for (double x : {-20.0, -5.0, -1.0, -0.1, 0.0, 0.1, 1.0, 2.5, 5.0, 10.0}) {
    EXPECT_NEAR(approx_exp(x), std::exp(x), std::exp(x) * 1e-9) << x;
  }
  EXPECT_EQ(approx_exp(-100.0), 0.0);
}

TEST(Sigmoid, Shape) {
  EXPECT_NEAR(sigmoid(0.0), 0.5, 1e-12);
  EXPECT_GT(sigmoid(4.0), 0.95);
  EXPECT_LT(sigmoid(-4.0), 0.05);
  EXPECT_GT(sigmoid(1.0), sigmoid(0.5));
}

TEST(Genann, TopologyMatchesGenannFormula) {
  // genann_init(4, 1, 4, 3): (4+1)*4 + (4+1)*3 = 35 weights.
  Genann net(4, 1, 4, 3);
  EXPECT_EQ(net.total_weights(), 35u);
  // Two hidden layers: 4->4->4->3.
  Genann deep(4, 2, 4, 3);
  EXPECT_EQ(deep.total_weights(), 35u + 20u);
}

TEST(Genann, LearnsXor) {
  Genann net(2, 1, 4, 1, 1234);
  const double inputs[4][2] = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  const double desired[4] = {0, 1, 1, 0};
  for (int epoch = 0; epoch < 4000; ++epoch)
    for (int i = 0; i < 4; ++i) net.train(inputs[i], &desired[i], 3.0);
  for (int i = 0; i < 4; ++i) {
    const double out = net.run(inputs[i])[0];
    EXPECT_NEAR(out, desired[i], 0.2) << "case " << i;
  }
}

TEST(Genann, DeterministicForSeed) {
  Genann a(4, 1, 4, 3, 99);
  Genann b(4, 1, 4, 3, 99);
  EXPECT_EQ(a.weights(), b.weights());
  Genann c(4, 1, 4, 3, 100);
  EXPECT_NE(a.weights(), c.weights());
}

TEST(Genann, LearnsIrisLike) {
  const auto data = make_iris_like(150);
  Genann net(4, 1, 4, 3);
  for (int epoch = 0; epoch < 150; ++epoch) {
    for (const IrisRecord& rec : data) {
      double desired[3] = {0, 0, 0};
      desired[rec.label] = 1.0;
      net.train(rec.features, desired, 0.3);
    }
  }
  int correct = 0;
  for (const IrisRecord& rec : data) {
    const auto& out = net.run(rec.features);
    const int best = static_cast<int>(std::max_element(out.begin(), out.end()) - out.begin());
    if (best == rec.label) ++correct;
  }
  EXPECT_GT(correct, 120) << "should classify most of the synthetic Iris set";
}

TEST(Dataset, EncodeDecodeRoundTrip) {
  const auto data = make_iris_like(50);
  const Bytes wire = encode_dataset(data);
  EXPECT_EQ(wire.size(), 4u + 50u * 36u);
  auto back = decode_dataset(wire);
  ASSERT_TRUE(back.ok()) << back.error();
  ASSERT_EQ(back->size(), 50u);
  for (std::size_t i = 0; i < 50; ++i) {
    EXPECT_EQ((*back)[i].label, data[i].label);
    for (int f = 0; f < 4; ++f)
      EXPECT_EQ((*back)[i].features[f], data[i].features[f]);
  }
}

TEST(Dataset, DecodeRejectsCorruptInput) {
  EXPECT_FALSE(decode_dataset(Bytes{1, 2}).ok());
  Bytes wire = encode_dataset(make_iris_like(3));
  wire.pop_back();
  EXPECT_FALSE(decode_dataset(wire).ok());
  Bytes bad_label = encode_dataset(make_iris_like(3));
  bad_label[4 + 32] = 77;  // label out of range
  EXPECT_FALSE(decode_dataset(bad_label).ok());
}

TEST(Dataset, ReplicationReachesTargetSize) {
  const auto base = make_iris_like(150);
  for (std::size_t target : {100u * 1024u, 1024u * 1024u}) {
    const auto big = replicate_to_size(base, target);
    EXPECT_GE(encode_dataset(big).size(), target);
    EXPECT_LT(encode_dataset(big).size(), target + 64);
  }
}

TEST(Guest, TrainingModuleClassifiesInsideWasm) {
  const Bytes module_bytes = training_module();
  auto module = wasm::decode_module(module_bytes);
  ASSERT_TRUE(module.ok()) << module.error();
  static const wasm::ImportResolver kNoImports;
  auto inst = wasm::Instance::instantiate(std::move(*module), kNoImports,
                                          wasm::ExecMode::Aot);
  ASSERT_TRUE(inst.ok()) << inst.error();

  const auto data = make_iris_like(150);
  const Bytes wire = encode_dataset(data);
  ASSERT_TRUE((*inst)->memory()->copy_in(GuestLayout::kDatasetPtr, wire).ok());

  const wasm::Value args[] = {wasm::Value::from_i32(GuestLayout::kDatasetPtr),
                              wasm::Value::from_i32(60)};
  auto r = (*inst)->invoke("train_at", args);
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_GT(r->front().i32(), 120) << "in-sandbox training should classify most records";
  EXPECT_LE(r->front().i32(), 150);
}

TEST(Guest, AttestedModuleBuildsAndValidates) {
  crypto::Scalar32 priv{};
  priv[31] = 7;
  const auto identity = crypto::p256_base_mul(priv);
  const Bytes module_bytes = attested_training_module("verifier", identity);
  auto module = wasm::decode_module(module_bytes);
  ASSERT_TRUE(module.ok()) << module.error();
  // 7 wasi_ra imports expected.
  EXPECT_EQ(module->num_imported_funcs(), 7u);
}

}  // namespace
}  // namespace watz::ann
