// InvokeMemo unit tests — pinning the hot-aware eviction order (fewest
// hits first, stalest last-touch breaking ties), TTL expiry, and the
// overwrite-resets-heat rule — plus gateway-level coverage of the memo on
// the plain INVOKE path: a duplicate delivery within the TTL redeems the
// memoised result instead of entering a sandbox a second time (the replay
// absorber the chaos suite leans on), and a disabled memo (ttl = 0)
// executes every delivery.
#include <gtest/gtest.h>

#include "core/device.hpp"
#include "gateway/gateway.hpp"
#include "gateway/invoke_memo.hpp"
#include "wasm/builder.hpp"

namespace watz::gateway {
namespace {

InvokeMemo::Entry entry_for(const std::string& device, std::uint64_t session) {
  InvokeMemo::Entry entry;
  entry.device = device;
  entry.boot_count = 1;
  entry.producer_session = session;
  return entry;
}

TEST(InvokeMemoTest, HotEntrySurvivesEvictionColdOneGoes) {
  InvokeMemo memo(2);
  memo.store("hot", entry_for("dev-a", 1), /*now_ns=*/100);
  memo.store("cold", entry_for("dev-a", 2), /*now_ns=*/200);

  // "hot" is older but repeatedly redeemed; "cold" is fresher but never
  // hit. Purely stalest-first eviction would evict "hot" — the hot-aware
  // order must evict "cold" (fewest hits first).
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(memo.lookup("hot", 300, /*ttl_ns=*/10'000).has_value());
    memo.note_hit("hot", 300 + static_cast<std::uint64_t>(i));
  }
  memo.store("newcomer", entry_for("dev-a", 3), /*now_ns=*/400);

  EXPECT_EQ(memo.size(), 2u);
  EXPECT_TRUE(memo.contains("hot"));
  EXPECT_TRUE(memo.contains("newcomer"));
  EXPECT_FALSE(memo.contains("cold"));
}

TEST(InvokeMemoTest, HitTiesBreakStalestFirst) {
  InvokeMemo memo(2);
  memo.store("older", entry_for("dev-a", 1), /*now_ns=*/100);
  memo.store("fresher", entry_for("dev-a", 2), /*now_ns=*/200);
  // Equal heat on both (one hit each, different touch times): the tie
  // breaks on last_touch, so the stalest-touched entry is the victim.
  memo.note_hit("older", 150);
  memo.note_hit("fresher", 250);

  memo.store("newcomer", entry_for("dev-a", 3), /*now_ns=*/300);
  EXPECT_FALSE(memo.contains("older"));
  EXPECT_TRUE(memo.contains("fresher"));
  EXPECT_TRUE(memo.contains("newcomer"));
}

TEST(InvokeMemoTest, OverwriteResetsHeat) {
  InvokeMemo memo(2);
  memo.store("a", entry_for("dev-a", 1), 100);
  for (int i = 0; i < 5; ++i) memo.note_hit("a", 200);
  // Overwriting "a" replaces the result: the old heat belonged to the old
  // result and must not shield the new one.
  memo.store("a", entry_for("dev-b", 9), 300);
  memo.store("b", entry_for("dev-a", 2), 400);
  memo.note_hit("b", 450);

  memo.store("newcomer", entry_for("dev-a", 3), 500);
  // "a" (0 hits since overwrite) loses to "b" (1 hit).
  EXPECT_FALSE(memo.contains("a"));
  EXPECT_TRUE(memo.contains("b"));
  EXPECT_TRUE(memo.contains("newcomer"));
}

TEST(InvokeMemoTest, TtlExpiresEnPassant) {
  InvokeMemo memo(4);
  memo.store("a", entry_for("dev-a", 1), /*now_ns=*/1'000);
  EXPECT_TRUE(memo.lookup("a", 1'500, /*ttl_ns=*/1'000).has_value());
  // Past the TTL the entry is gone, and the expired lookup erased it.
  EXPECT_FALSE(memo.lookup("a", 2'500, /*ttl_ns=*/1'000).has_value());
  EXPECT_FALSE(memo.contains("a"));
}

TEST(InvokeMemoTest, EntryRoundTripsPayload) {
  InvokeMemo memo(4);
  InvokeMemo::Entry entry = entry_for("dev-a", 7);
  entry.boot_count = 3;
  entry.response.device = "dev-a";
  entry.response.results = {wasm::Value::from_i32(42)};
  memo.store("k", std::move(entry), 100);

  auto hit = memo.lookup("k", 150, 10'000);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->device, "dev-a");
  EXPECT_EQ(hit->boot_count, 3u);
  EXPECT_EQ(hit->producer_session, 7u);
  ASSERT_EQ(hit->response.results.size(), 1u);
  EXPECT_EQ(hit->response.results.front().i32(), 42);
}

// -- gateway-level: the memo on the plain INVOKE path ------------------------

core::DeviceConfig device_config(const std::string& hostname, std::uint8_t id) {
  core::DeviceConfig config;
  config.hostname = hostname;
  config.otpmk.fill(id);
  config.latency.enabled = false;
  return config;
}

Bytes adder_app() {
  wasm::ModuleBuilder b;
  b.add_memory(1);
  const auto f = b.add_function({{wasm::ValType::I32, wasm::ValType::I32},
                                 {wasm::ValType::I32}});
  wasm::CodeEmitter e;
  e.local_get(0).local_get(1).op(wasm::kI32Add);
  b.set_body(f, e.bytes());
  b.export_function("add", f);
  return b.build();
}

InvokeRequest add_request(std::uint64_t session, const crypto::Sha256Digest& m,
                          std::int32_t a, std::int32_t b) {
  InvokeRequest req;
  req.session_id = session;
  req.measurement = m;
  req.entry = "add";
  req.args = {wasm::Value::from_i32(a), wasm::Value::from_i32(b)};
  req.heap_bytes = 1 << 20;
  return req;
}

class GatewayMemoTest : public ::testing::Test {
 protected:
  void SetUpFleet(GatewayConfig config) {
    vendor_ = core::Vendor::create(to_bytes("gw-memo-vendor"));
    auto device =
        core::Device::boot(fabric_, vendor_, device_config("memo-node-0", 0x41));
    ASSERT_TRUE(device.ok()) << device.error();
    device_ = std::move(*device);
    gateway_ = std::make_unique<Gateway>(fabric_, config, to_bytes("gw-memo-id"));
    ASSERT_TRUE(gateway_->start().ok());
    ASSERT_TRUE(gateway_->add_device(*device_).ok());
    client_ = std::make_unique<GatewayClient>(fabric_);
    ASSERT_TRUE(client_->connect(config.hostname, config.port).ok());
  }

  net::Fabric fabric_;
  core::Vendor vendor_;
  std::unique_ptr<core::Device> device_;
  std::unique_ptr<Gateway> gateway_;
  std::unique_ptr<GatewayClient> client_;
};

TEST_F(GatewayMemoTest, DuplicateInvokeDeliveryRedeemsMemoNotSandbox) {
  GatewayConfig config;
  config.invoke_memo_ttl_ns = 60'000'000'000ull;  // 60 s — storms finish within
  SetUpFleet(config);

  auto attach = client_->attach("tenant-a");
  ASSERT_TRUE(attach.ok()) << attach.error();
  auto load = client_->load_module(attach->session_id, adder_app());
  ASSERT_TRUE(load.ok());

  const InvokeRequest req = add_request(attach->session_id, load->measurement, 7, 3);
  auto first = client_->invoke(req);
  ASSERT_TRUE(first.ok()) << first.error();
  EXPECT_EQ(first->results.front().i32(), 10);

  // Same request again — a client retry after a lost response. One sandbox
  // execution total; the second delivery redeems the memo.
  auto second = client_->invoke(req);
  ASSERT_TRUE(second.ok()) << second.error();
  EXPECT_EQ(second->results.front().i32(), 10);

  auto stats = client_->stats(attach->session_id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->invocations, 1u);
  EXPECT_EQ(stats->invoke_memo_hits, 1u);
}

TEST_F(GatewayMemoTest, MemoOffExecutesEveryDelivery) {
  GatewayConfig config;
  config.invoke_memo_ttl_ns = 0;  // disabled
  SetUpFleet(config);

  auto attach = client_->attach("tenant-a");
  ASSERT_TRUE(attach.ok()) << attach.error();
  auto load = client_->load_module(attach->session_id, adder_app());
  ASSERT_TRUE(load.ok());

  const InvokeRequest req = add_request(attach->session_id, load->measurement, 7, 3);
  ASSERT_TRUE(client_->invoke(req).ok());
  ASSERT_TRUE(client_->invoke(req).ok());

  auto stats = client_->stats(attach->session_id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->invocations, 2u);
  EXPECT_EQ(stats->invoke_memo_hits, 0u);
}

TEST_F(GatewayMemoTest, ProducerRedeemsOwnResultAcrossReboot) {
  GatewayConfig config;
  config.invoke_memo_ttl_ns = 60'000'000'000ull;
  SetUpFleet(config);

  auto attach = client_->attach("tenant-a");
  ASSERT_TRUE(attach.ok()) << attach.error();
  auto load = client_->load_module(attach->session_id, adder_app());
  ASSERT_TRUE(load.ok());

  const InvokeRequest req = add_request(attach->session_id, load->measurement, 5, 5);
  ASSERT_TRUE(client_->invoke(req).ok());

  // Reboot the device: the boot count bumps and the session's evidence for
  // it goes stale, so the has_fresh trust gate would now REJECT the memo
  // entry. The producer-session bypass must still serve the retry — the
  // result was produced under evidence fresh at execution time, and
  // re-executing it here is exactly the double-execution the ledger
  // forbids.
  ASSERT_TRUE(gateway_->add_device(*device_).ok());
  auto retry = client_->invoke(req);
  ASSERT_TRUE(retry.ok()) << retry.error();
  EXPECT_EQ(retry->results.front().i32(), 10);

  auto stats = client_->stats(attach->session_id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->invocations, 1u);
  EXPECT_EQ(stats->invoke_memo_hits, 1u);

  // A DIFFERENT session replaying the same key is still gated: its
  // evidence for the rebooted device is stale, so it executes for itself.
  auto other = client_->attach("tenant-b");
  ASSERT_TRUE(other.ok()) << other.error();
  InvokeRequest foreign = req;
  foreign.session_id = other->session_id;
  auto theirs = client_->invoke(foreign);
  ASSERT_TRUE(theirs.ok()) << theirs.error();
  auto after = client_->stats(attach->session_id);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->invocations, 2u);
}

TEST_F(GatewayMemoTest, StatsDetailCarriesPerMeasurementTierState) {
  SetUpFleet(GatewayConfig{});

  auto attach = client_->attach("tenant-a");
  ASSERT_TRUE(attach.ok()) << attach.error();
  auto load = client_->load_module(attach->session_id, adder_app());
  ASSERT_TRUE(load.ok());
  auto r = client_->invoke(
      add_request(attach->session_id, load->measurement, 2, 2));
  ASSERT_TRUE(r.ok()) << r.error();

  // Plain STATS stays lean: the tier-state vector rides only on detail.
  auto lean = client_->stats(attach->session_id);
  ASSERT_TRUE(lean.ok());
  ASSERT_EQ(lean->devices.size(), 1u);
  EXPECT_TRUE(lean->devices[0].modules.empty());

  auto detail = client_->stats(attach->session_id, /*detail=*/true);
  ASSERT_TRUE(detail.ok());
  ASSERT_EQ(detail->devices.size(), 1u);
  ASSERT_EQ(detail->devices[0].modules.size(), 1u);
  const ModuleTierStats& tier = detail->devices[0].modules[0];
  EXPECT_EQ(tier.measurement, load->measurement);
  EXPECT_EQ(tier.mode, 1);  // wasm::ExecMode::Aot — the fleet default
  EXPECT_GT(tier.functions, 0u);
  EXPECT_GT(tier.hot_threshold, 0u);
  EXPECT_GT(tier.calls, 0u);  // the invoke above heated the module
}

}  // namespace
}  // namespace watz::gateway
