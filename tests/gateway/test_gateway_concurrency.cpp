// Concurrency coverage for the multi-worker gateway stack: the thread-safe
// fabric, concurrent clients against the dispatcher, and the ModuleCache
// under concurrent acquire/release pressure (budget invariant + exclusive
// instance hand-out). These tests are the payload of the ThreadSanitizer
// CI job — keep them free of benign-but-racy shortcuts.
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/device.hpp"
#include "gateway/gateway.hpp"
#include "wasm/builder.hpp"

namespace watz::gateway {
namespace {

core::DeviceConfig device_config(const std::string& hostname, std::uint8_t id) {
  core::DeviceConfig config;
  config.hostname = hostname;
  config.otpmk.fill(id);
  config.latency.enabled = false;
  return config;
}

/// Guest exporting add(a, b) -> a + b.
Bytes adder_app() {
  wasm::ModuleBuilder b;
  b.add_memory(1);
  const auto f = b.add_function({{wasm::ValType::I32, wasm::ValType::I32},
                                 {wasm::ValType::I32}});
  wasm::CodeEmitter e;
  e.local_get(0).local_get(1).op(wasm::kI32Add);
  b.set_body(f, e.bytes());
  b.export_function("add", f);
  return b.build();
}

/// Guest of ~`code_kb` KiB of unrolled arithmetic, exporting run() -> i64.
Bytes sized_app(int code_kb, std::int64_t salt) {
  wasm::ModuleBuilder b;
  b.add_memory(1);
  wasm::CodeEmitter e;
  e.i64_const(salt);
  for (int i = 0; i < code_kb * 93; ++i)
    e.i64_const(0x0102030405060708LL + i).op(wasm::kI64Add);
  const auto f = b.add_function({{}, {wasm::ValType::I64}});
  b.set_body(f, e.bytes());
  b.export_function("run", f);
  return b.build();
}

// -- fabric ------------------------------------------------------------------

TEST(FabricConcurrencyTest, ConcurrentConnectSendCloseAreSafe) {
  net::Fabric fabric;
  ASSERT_TRUE(fabric
                  .listen("echo", 1,
                          [](std::uint64_t, ByteView request) -> Result<Bytes> {
                            return Bytes(request.begin(), request.end());
                          })
                  .ok());

  constexpr int kThreads = 8;
  constexpr int kMessages = 100;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fabric, &failures, t] {
      auto conn = fabric.connect("echo", 1);
      if (!conn.ok()) {
        failures.fetch_add(1);
        return;
      }
      const Bytes payload = to_bytes("hello-" + std::to_string(t));
      for (int i = 0; i < kMessages; ++i) {
        auto reply = fabric.send_recv(*conn, payload);
        if (!reply.ok() || *reply != payload) failures.fetch_add(1);
      }
      fabric.close(*conn);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(fabric.messages(), static_cast<std::uint64_t>(kThreads) * kMessages);
}

TEST(FabricConcurrencyTest, SendAsyncDeliversThroughFuture) {
  net::Fabric fabric;
  ASSERT_TRUE(fabric
                  .listen("echo", 1,
                          [](std::uint64_t, ByteView request) -> Result<Bytes> {
                            return Bytes(request.begin(), request.end());
                          })
                  .ok());
  auto conn = fabric.connect("echo", 1);
  ASSERT_TRUE(conn.ok());

  // Several exchanges in flight at once, harvested out of order.
  std::vector<std::future<Result<Bytes>>> inflight;
  for (int i = 0; i < 4; ++i)
    inflight.push_back(fabric.send_async(*conn, to_bytes("m" + std::to_string(i))));
  for (int i = 3; i >= 0; --i) {
    auto reply = inflight[i].get();
    ASSERT_TRUE(reply.ok()) << reply.error();
    EXPECT_EQ(*reply, to_bytes("m" + std::to_string(i)));
  }
}

// -- gateway under concurrent clients ---------------------------------------

TEST(GatewayConcurrencyTest, ParallelClientsSpreadAcrossWorkers) {
  net::Fabric fabric;
  const core::Vendor vendor = core::Vendor::create(to_bytes("gw-vendor"));
  std::vector<std::unique_ptr<core::Device>> devices;
  for (int i = 0; i < 2; ++i) {
    auto device = core::Device::boot(
        fabric, vendor,
        device_config("node-" + std::to_string(i),
                      static_cast<std::uint8_t>(0x50 + i)));
    ASSERT_TRUE(device.ok()) << device.error();
    devices.push_back(std::move(*device));
  }
  GatewayConfig config;
  Gateway gateway(fabric, config, to_bytes("gw-identity"));
  ASSERT_TRUE(gateway.start().ok());
  for (auto& device : devices) ASSERT_TRUE(gateway.add_device(*device).ok());

  GatewayClient admin(fabric);
  ASSERT_TRUE(admin.connect(config.hostname, config.port).ok());
  auto attach = admin.attach("tenant-parallel");
  ASSERT_TRUE(attach.ok()) << attach.error();
  const Bytes app = adder_app();
  auto load = admin.load_module(attach->session_id, app);
  ASSERT_TRUE(load.ok());

  constexpr int kThreads = 4;
  constexpr int kInvokes = 30;
  std::atomic<int> failures{0};
  std::atomic<int> wrong_results{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      GatewayClient client(fabric);
      if (!client.connect(config.hostname, config.port).ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int i = 0; i < kInvokes; ++i) {
        InvokeRequest req;
        req.session_id = attach->session_id;
        req.measurement = load->measurement;
        req.entry = "add";
        req.args = {wasm::Value::from_i32(t * 1000 + i), wasm::Value::from_i32(1)};
        req.heap_bytes = 1 << 20;
        auto r = client.invoke(req);
        if (!r.ok()) {
          failures.fetch_add(1);
        } else if (r->results.front().i32() != t * 1000 + i + 1) {
          wrong_results.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(wrong_results.load(), 0);
  auto stats = admin.stats(attach->session_id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->invocations, static_cast<std::uint64_t>(kThreads) * kInvokes);
  // Both workers took a share of the load.
  ASSERT_EQ(stats->devices.size(), 2u);
  for (const DeviceStats& d : stats->devices) EXPECT_GT(d.invocations, 0u);
  // One handshake per device at attach; everything after rode the cache.
  EXPECT_EQ(stats->handshakes_run, 2u);
}

// -- module cache under concurrent acquire/release ---------------------------

TEST(ModuleCacheConcurrencyTest, BudgetHoldsAndInstancesAreExclusive) {
  net::Fabric fabric;
  const core::Vendor vendor = core::Vendor::create(to_bytes("cache-vendor"));
  auto device = core::Device::boot(fabric, vendor, device_config("cache", 0x61));
  ASSERT_TRUE(device.ok()) << device.error();

  // Budget sized so three small modules plus pooled 64 KiB heaps cannot
  // all stay resident: the threads keep forcing LRU eviction churn.
  ModuleCacheConfig config;
  config.budget_bytes = 160 * 1024;
  config.max_pool_per_module = 2;
  ModuleCache cache((*device)->runtime(), config);

  struct Guest {
    Bytes binary;
    crypto::Sha256Digest measurement;
  };
  std::vector<Guest> guests;
  for (int i = 0; i < 3; ++i) {
    Guest guest;
    guest.binary = sized_app(8, 100 + i);
    guest.measurement = crypto::sha256(guest.binary);
    guests.push_back(std::move(guest));
  }

  // Every instance handed out is tracked; two tenants holding the same
  // pointer at once would be a pooled instance double-hand-out.
  std::mutex outstanding_mu;
  std::set<const core::LoadedApp*> outstanding;
  std::atomic<int> violations{0};
  std::atomic<int> budget_breaches{0};
  std::atomic<int> failures{0};

  constexpr int kThreads = 4;
  constexpr int kIters = 40;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      core::AppConfig app_config;
      app_config.heap_bytes = 64 * 1024;
      for (int i = 0; i < kIters; ++i) {
        const Guest& guest = guests[(t + i) % guests.size()];
        auto lease = cache.acquire(guest.measurement, guest.binary, app_config);
        if (!lease.ok()) {
          failures.fetch_add(1);
          continue;
        }
        {
          std::lock_guard<std::mutex> lock(outstanding_mu);
          if (!outstanding.insert(lease->app.get()).second) violations.fetch_add(1);
        }
        if (cache.charged_bytes() > config.budget_bytes) budget_breaches.fetch_add(1);
        // Deliberately no guest invoke here: executing on the device is
        // the owning worker's job (Device is an actor; concurrent TEE
        // entry is out of contract). The cache's own TEE entries
        // (prepare/instantiate/reinitialize) serialise under its lock.
        {
          std::lock_guard<std::mutex> lock(outstanding_mu);
          outstanding.erase(lease->app.get());
        }
        cache.release(std::move(lease->app));
        if (cache.charged_bytes() > config.budget_bytes) budget_breaches.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(violations.load(), 0) << "pooled instance handed to two tenants";
  EXPECT_EQ(budget_breaches.load(), 0) << "LRU eviction exceeded budget_bytes";
  EXPECT_LE(cache.charged_bytes(), config.budget_bytes);
  EXPECT_GT(cache.evictions(), 0u) << "test never exercised eviction churn";

  // The churned cache still hands out working instances (single-threaded:
  // guest execution belongs to the device's one owning thread).
  core::AppConfig app_config;
  app_config.heap_bytes = 64 * 1024;
  auto lease = cache.acquire(guests[0].measurement, guests[0].binary, app_config);
  ASSERT_TRUE(lease.ok()) << lease.error();
  auto r = lease->app->invoke("run", {});
  ASSERT_TRUE(r.ok()) << r.error();
  cache.release(std::move(lease->app));
}

}  // namespace
}  // namespace watz::gateway
