// Attach-storm stress: M client threads batch-attach sessions against a
// K-device fleet concurrently through ATTACH_BATCH, with a forced
// boot-count bump landing mid-storm. Invariants under fire:
//   * zero duplicate session ids across every thread's results;
//   * zero verifier state corruption — the per-shard exchange counters
//     reconcile exactly with the gateway's handshake ledger, and no RA
//     session state is left behind;
//   * after the bump, every surviving session re-attests the rebooted
//     device on its next invoke instead of riding stale evidence.
// This suite is ThreadSanitizer payload (CI runs it under TSan and with
// --repeat until-fail to shake out rare interleavings).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "core/device.hpp"
#include "gateway/gateway.hpp"
#include "tests/support/lane_ledger.hpp"
#include "wasm/builder.hpp"

namespace watz::gateway {
namespace {

core::DeviceConfig device_config(const std::string& hostname, std::uint8_t id) {
  core::DeviceConfig config;
  config.hostname = hostname;
  config.otpmk.fill(id);
  config.latency.enabled = false;
  return config;
}

/// Guest exporting add(a, b) -> a + b.
Bytes adder_app() {
  wasm::ModuleBuilder b;
  b.add_memory(1);
  const auto f = b.add_function({{wasm::ValType::I32, wasm::ValType::I32},
                                 {wasm::ValType::I32}});
  wasm::CodeEmitter e;
  e.local_get(0).local_get(1).op(wasm::kI32Add);
  b.set_body(f, e.bytes());
  b.export_function("add", f);
  return b.build();
}

TEST(AttachStormTest, ConcurrentBatchedAttachesReconcileAndReattest) {
  constexpr int kDevices = 3;
  constexpr int kThreads = 4;
  constexpr int kBatchesPerThread = 2;
  constexpr int kNamesPerBatch = 4;
  constexpr int kSessions = kThreads * kBatchesPerThread * kNamesPerBatch;

  net::Fabric fabric;
  const core::Vendor vendor = core::Vendor::create(to_bytes("storm-vendor"));
  std::vector<std::unique_ptr<core::Device>> devices;
  for (int i = 0; i < kDevices; ++i) {
    auto device = core::Device::boot(
        fabric, vendor,
        device_config("storm-" + std::to_string(i),
                      static_cast<std::uint8_t>(0x40 + i)));
    ASSERT_TRUE(device.ok()) << device.error();
    devices.push_back(std::move(*device));
  }
  GatewayConfig config;
  config.ra_shards = 4;
  Gateway gateway(fabric, config, to_bytes("storm-identity"));
  ASSERT_TRUE(gateway.start().ok());
  for (auto& device : devices) ASSERT_TRUE(gateway.add_device(*device).ok());

  std::mutex ids_mu;
  std::set<std::uint64_t> ids;
  std::atomic<int> failures{0};
  std::atomic<int> duplicate_sessions{0};
  std::atomic<int> under_attested{0};

  // One long-lived client per thread: dropping the connection would
  // (correctly) detach everything it attached, so they outlive the storm.
  std::vector<std::unique_ptr<GatewayClient>> connections;
  for (int t = 0; t < kThreads; ++t) {
    connections.push_back(std::make_unique<GatewayClient>(fabric));
    ASSERT_TRUE(connections.back()->connect(config.hostname, config.port).ok());
  }

  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      GatewayClient& client = *connections[t];
      for (int b = 0; b < kBatchesPerThread; ++b) {
        std::vector<std::string> names;
        for (int n = 0; n < kNamesPerBatch; ++n)
          names.push_back("storm-tenant-" + std::to_string(t) + "-" +
                          std::to_string(b) + "-" + std::to_string(n));
        auto batch = client.attach_all(names);
        if (!batch.ok()) {
          failures.fetch_add(1);
          continue;
        }
        for (const AttachBatchResult& result : batch->results) {
          if (!result.ok()) {
            failures.fetch_add(1);
            continue;
          }
          // Mid-storm reboot must not shrink attach coverage: re-enrolment
          // keeps the same platform claim, so all devices keep appraising.
          if (result.devices_attested != kDevices) under_attested.fetch_add(1);
          std::lock_guard<std::mutex> lock(ids_mu);
          if (!ids.insert(result.session_id).second)
            duplicate_sessions.fetch_add(1);
        }
      }
    });
  }

  // Forced boot-count bump mid-storm: re-enrolling storm-0 models its
  // reboot. Handshakes in flight snapshot the pre-bump state; sessions
  // attached before the bump hold evidence at the old boot count.
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  ASSERT_TRUE(gateway.add_device(*devices[0]).ok());

  for (std::thread& client : clients) client.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(duplicate_sessions.load(), 0) << "duplicate session ids handed out";
  EXPECT_EQ(under_attested.load(), 0) << "a batch lost a device mid-storm";
  ASSERT_EQ(ids.size(), static_cast<std::size_t>(kSessions));
  EXPECT_EQ(gateway.sessions().active(), static_cast<std::size_t>(kSessions));

  // Verifier state reconciliation, shard by shard: every appraisal the
  // shards passed is a handshake the session manager recorded (and vice
  // versa), every handshake started completed, and no per-lane session
  // state survived the storm.
  const std::uint64_t recorded = gateway.sessions().handshakes_run();
  EXPECT_EQ(recorded, static_cast<std::uint64_t>(kSessions) * kDevices);
  std::uint64_t shard_handshakes = 0;
  std::uint64_t shard_msg0s = 0;
  std::uint64_t shard_rejects = 0;
  for (const ra::VerifierShardStats& shard : gateway.verifier().stats()) {
    shard_handshakes += shard.handshakes;
    shard_msg0s += shard.msg0s;
    shard_rejects += shard.rejects;
  }
  EXPECT_EQ(shard_handshakes, recorded) << "shard ledger out of sync";
  EXPECT_EQ(shard_msg0s, recorded) << "handshakes started != completed";
  EXPECT_EQ(shard_rejects, 0u);
  EXPECT_EQ(gateway.verifier().active_sessions(), 0u)
      << "leaked verifier session state";

  // Re-attestation correctness: bump storm-0 once more (deterministically
  // AFTER every attach recorded its evidence) — invokes still succeed on
  // every session, and the ones placed on the rebooted device re-prove it
  // (the handshake ledger grows; evidence is never served stale).
  ASSERT_TRUE(gateway.add_device(*devices[0]).ok());
  GatewayClient admin(fabric);
  ASSERT_TRUE(admin.connect(config.hostname, config.port).ok());
  const std::uint64_t any_session = *ids.begin();
  auto load = admin.load_module(any_session, adder_app());
  ASSERT_TRUE(load.ok()) << load.error();
  std::uint32_t reattest_exchanges = 0;
  // One lane per surviving session, pinned exactly-once by the ledger:
  // re-attestation must neither drop a session's invoke nor answer it
  // twice.
  testing::LaneLedger ledger;
  int value = 0;
  for (const std::uint64_t id : ids) {
    InvokeRequest req;
    req.session_id = id;
    req.measurement = load->measurement;
    req.entry = "add";
    req.args = {wasm::Value::from_i32(value), wasm::Value::from_i32(1)};
    req.heap_bytes = 1 << 20;
    ledger.issue(std::to_string(id));
    auto r = admin.invoke(req);
    ASSERT_TRUE(r.ok()) << r.error();
    ASSERT_EQ(r->results.front().i32(), value + 1);
    ledger.complete(std::to_string(id), true);
    reattest_exchanges += r->ra_exchanges;
    ++value;
  }
  EXPECT_EQ(ledger.issued(), static_cast<std::uint64_t>(kSessions));
  EXPECT_EQ(ledger.lost(), 0u);
  EXPECT_EQ(ledger.double_completed(), 0u);
  EXPECT_GT(reattest_exchanges, 0u)
      << "no session re-attested the rebooted device";
  EXPECT_GT(gateway.sessions().handshakes_run(), recorded);
  // The re-attestations flowed through the shards too.
  std::uint64_t shard_handshakes_after = 0;
  for (const ra::VerifierShardStats& shard : gateway.verifier().stats())
    shard_handshakes_after += shard.handshakes;
  EXPECT_EQ(shard_handshakes_after, gateway.sessions().handshakes_run());
  EXPECT_EQ(gateway.verifier().active_sessions(), 0u);
}

}  // namespace
}  // namespace watz::gateway
