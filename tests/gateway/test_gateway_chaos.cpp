// The seeded chaos suite: drives a gateway fleet through injected fabric
// faults — dropped, duplicated, delayed and reordered frames, mid-batch
// device reboots, evidence expiry mid-flight and stalled responses under
// batch load — and proves EXACTLY-ONCE invocation through all of them:
//
//   * a lane ledger (tests/support/lane_ledger.hpp) asserts no lane was
//     lost and none was answered twice;
//   * the gateway's `invocations` counter (sandbox entries) must equal
//     the number of unique lanes issued — with globally-unique per-lane
//     args this pins "each lane entered a sandbox exactly once", i.e. a
//     replayed delivery was absorbed by the result memo rather than
//     re-executed, and a dropped delivery was re-executed exactly once;
//   * fleet-wide cache cold misses must stay ZERO: the cross-device
//     module prewarm ran before the storm (and re-runs from the reboot
//     hook), so every failover and reboot lands on a warm cache.
//
// Every iteration reseeds the chaos PRNG and echoes its seed to stdout
// ("chaos seed: family=<f> seed=0x<s>"), so a CI failure replays locally:
// WATZ_CHAOS_SEED=0x<s> overrides the base seed. 7 fault families x
// kSeedsPerFamily seeds = 105 distinct seeded storms per run.
#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/device.hpp"
#include "gateway/gateway.hpp"
#include "net/chaos_fabric.hpp"
#include "tests/support/lane_ledger.hpp"
#include "wasm/builder.hpp"

namespace watz::gateway {
namespace {

constexpr int kSeedsPerFamily = 15;
constexpr int kLanesPerSeed = 8;
constexpr int kMaxAttempts = 200;

std::uint64_t base_seed() {
  if (const char* env = std::getenv("WATZ_CHAOS_SEED"))
    return std::strtoull(env, nullptr, 0);
  return 0xC0FFEE5EEDull;
}

core::DeviceConfig device_config(const std::string& hostname, std::uint8_t id) {
  core::DeviceConfig config;
  config.hostname = hostname;
  config.otpmk.fill(id);
  config.latency.enabled = false;
  return config;
}

Bytes adder_app() {
  wasm::ModuleBuilder b;
  b.add_memory(1);
  const auto f = b.add_function({{wasm::ValType::I32, wasm::ValType::I32},
                                 {wasm::ValType::I32}});
  wasm::CodeEmitter e;
  e.local_get(0).local_get(1).op(wasm::kI32Add);
  b.set_body(f, e.bytes());
  b.export_function("add", f);
  return b.build();
}

/// Baseline fleet config for chaos storms: a pooled fleet with the result
/// memo on (the replay absorber), cross-device prewarm on (failover lands
/// warm) and background renewal off (storm determinism — the expiry
/// family drives staleness itself).
GatewayConfig chaos_config() {
  GatewayConfig config;
  config.slots_per_device = 2;
  config.invoke_memo_ttl_ns = 60'000'000'000ull;
  config.module_prewarm = true;
  config.evidence_renewal = false;
  return config;
}

class GatewayChaosTest : public ::testing::Test {
 protected:
  void SetUpFleet(int devices, GatewayConfig config) {
    config_ = config;
    vendor_ = core::Vendor::create(to_bytes("gw-chaos-vendor"));
    for (int i = 0; i < devices; ++i) {
      auto device = core::Device::boot(
          chaos_, vendor_, device_config("chaos-node-" + std::to_string(i),
                                         static_cast<std::uint8_t>(0x90 + i)));
      ASSERT_TRUE(device.ok()) << device.error();
      devices_.push_back(std::move(*device));
    }
    gateway_ = std::make_unique<Gateway>(chaos_, config, to_bytes("gw-chaos-id"));
    ASSERT_TRUE(gateway_->start().ok());
    for (auto& device : devices_) ASSERT_TRUE(gateway_->add_device(*device).ok());
    client_ = std::make_unique<GatewayClient>(chaos_);
    ASSERT_TRUE(client_->connect(config.hostname, config.port).ok());

    auto attach = client_->attach("chaos-tenant");
    ASSERT_TRUE(attach.ok()) << attach.error();
    session_ = attach->session_id;
    auto load = client_->load_module(session_, adder_app());
    ASSERT_TRUE(load.ok()) << load.error();
    measurement_ = load->measurement;
    // Prewarm the whole fleet BEFORE any invoke: from here on, zero cold
    // cache misses is an invariant every storm re-asserts. The background
    // prewarm pump may have beaten this manual sweep to some devices —
    // prepares are idempotent per device, so the cumulative counter lands
    // at exactly fleet size no matter who swept first.
    gateway_->sweep_module_prewarms();
    EXPECT_EQ(gateway_->stats().prewarm_prepares,
              static_cast<std::uint64_t>(devices));
  }

  InvokeRequest add_request(std::int32_t a) const {
    InvokeRequest req;
    req.session_id = session_;
    req.measurement = measurement_;
    req.entry = "add";
    req.args = {wasm::Value::from_i32(a), wasm::Value::from_i32(1)};
    req.heap_bytes = 1 << 20;
    return req;
  }

  /// Lane args are globally unique across families, seeds and lanes, so
  /// the memo can never alias two distinct lanes and the `invocations`
  /// delta counts THIS storm's sandbox entries alone.
  static std::int32_t lane_arg(int family_id, int iter, int lane) {
    return family_id * 1'000'000 + iter * 1'000 + lane;
  }

  /// Fleet-wide warm-cache invariant: the prewarm sweep (setup + reboot
  /// hook) beat every cold path, so no device ever paid a cold Loading
  /// phase on the invoke path.
  void expect_warm_fleet(const GatewayStats& stats) const {
    std::uint64_t misses = 0, prewarms = 0;
    for (const DeviceStats& d : stats.devices) {
      misses += d.cache_misses;
      prewarms += d.cache_prewarms;
    }
    EXPECT_EQ(misses, 0u) << "a storm paid a cold module miss";
    EXPECT_GE(prewarms, devices_.size());
  }

  /// One seeded storm of sequential INVOKEs with test-level retry: every
  /// transport error (chaos drop/stall) is retried with the SAME request
  /// bytes until it completes, then the ledger + invocation counter prove
  /// exactly-once execution.
  void run_sync_storms(const char* family, int family_id,
                       net::ChaosPolicy policy) {
    for (int iter = 0; iter < kSeedsPerFamily; ++iter) {
      const std::uint64_t seed =
          base_seed() + static_cast<std::uint64_t>(family_id * 1000 + iter);
      std::printf("chaos seed: family=%s seed=0x%" PRIx64 "\n", family, seed);
      chaos_.reseed(seed);
      chaos_.set_policy(config_.hostname, config_.port, policy);

      const std::uint64_t executed_before = gateway_->stats().invocations;
      testing::LaneLedger ledger;
      for (int lane = 0; lane < kLanesPerSeed; ++lane) {
        const std::int32_t arg = lane_arg(family_id, iter, lane);
        const std::string key = std::to_string(arg);
        ledger.issue(key);
        bool done = false;
        for (int attempt = 0; attempt < kMaxAttempts && !done; ++attempt) {
          auto r = client_->invoke(add_request(arg));
          if (!r.ok()) continue;  // chaos ate a frame: replay, same bytes
          EXPECT_EQ(r->results.front().i32(), arg + 1);
          ledger.complete(key, true);
          done = true;
        }
        if (!done) ledger.complete(key, false);
      }
      chaos_.clear_policies();

      EXPECT_EQ(ledger.lost(), 0u)
          << family << ": lane lost (seed 0x" << std::hex << seed << ")";
      EXPECT_EQ(ledger.double_completed(), 0u);
      const GatewayStats stats = gateway_->stats();
      EXPECT_EQ(stats.invocations - executed_before,
                static_cast<std::uint64_t>(kLanesPerSeed))
          << family << ": lanes executed != lanes issued — a replay "
          << "double-executed or a lane vanished (seed 0x" << std::hex << seed
          << ")";
      expect_warm_fleet(stats);
    }
  }

  net::ChaosFabric chaos_;
  core::Vendor vendor_;
  GatewayConfig config_;
  std::vector<std::unique_ptr<core::Device>> devices_;
  std::unique_ptr<Gateway> gateway_;
  std::unique_ptr<GatewayClient> client_;
  std::uint64_t session_ = 0;
  crypto::Sha256Digest measurement_{};
};

TEST_F(GatewayChaosTest, DropStormNeverLosesOrDoublesLanes) {
  SetUpFleet(3, chaos_config());
  net::ChaosPolicy policy;
  policy.drop_permille = 250;  // request lost pre-delivery: retry re-executes
  run_sync_storms("drop", 0, policy);
  EXPECT_GT(chaos_.stats().dropped, 0u);
}

TEST_F(GatewayChaosTest, DuplicateStormSecondDeliveryIsAbsorbed) {
  SetUpFleet(3, chaos_config());
  net::ChaosPolicy policy;
  policy.duplicate_permille = 300;  // frame arrives twice, back to back
  run_sync_storms("duplicate", 1, policy);
  EXPECT_GT(chaos_.stats().duplicated, 0u);
}

TEST_F(GatewayChaosTest, DelayStormOnlyAddsLatency) {
  SetUpFleet(3, chaos_config());
  net::ChaosPolicy policy;
  policy.delay_permille = 400;
  policy.delay_ns = 50'000;
  run_sync_storms("delay", 2, policy);
  EXPECT_GT(chaos_.stats().delayed, 0u);
}

TEST_F(GatewayChaosTest, ReorderStormOvertakenFramesStillComplete) {
  SetUpFleet(3, chaos_config());
  net::ChaosPolicy policy;
  policy.reorder_permille = 300;  // parked until overtaken (or the window)
  run_sync_storms("reorder", 3, policy);
  EXPECT_GT(chaos_.stats().reordered, 0u);
}

TEST_F(GatewayChaosTest, RebootStormReplaysAcrossBootCountBumps) {
  SetUpFleet(3, chaos_config());
  // The reboot hook re-enrols a round-robin device mid-storm (boot count
  // bumps, every session's evidence for it goes stale, its module cache
  // is rebuilt EMPTY) and immediately re-runs the prewarm sweep so the
  // fresh cache is warm before any invoke reaches it. The stall component
  // forces replays ACROSS those reboots — the memo's producer bypass is
  // what keeps them single-execution (the has_fresh gate alone would fail
  // at the new boot count and silently re-execute).
  std::size_t reboot_tick = 0;
  chaos_.set_reboot_hook([this, &reboot_tick] {
    core::Device& victim = *devices_[reboot_tick++ % devices_.size()];
    ASSERT_TRUE(gateway_->add_device(victim).ok());
    gateway_->sweep_module_prewarms();
  });
  net::ChaosPolicy policy;
  policy.reboot_permille = 40;
  policy.stall_permille = 150;
  run_sync_storms("reboot", 4, policy);
  EXPECT_GT(chaos_.stats().reboots, 0u);
  chaos_.set_reboot_hook({});
}

TEST_F(GatewayChaosTest, EvidenceExpiryMidFlightReattestsNotReexecutes) {
  GatewayConfig config = chaos_config();
  config.session_policy.evidence_ttl_ns = 2'000'000;  // 2 ms: expires mid-storm
  SetUpFleet(3, config);
  // Evidence lapses between lanes, so invokes keep paying lazy
  // re-handshakes on the control lane — while drop + stall chaos forces
  // replays whose memo redemptions must ignore the staleness (producer
  // bypass) instead of re-executing.
  net::ChaosPolicy policy;
  policy.drop_permille = 150;
  policy.stall_permille = 150;
  run_sync_storms("expiry", 5, policy);
}

TEST_F(GatewayChaosTest, StallStormBatchRetriesOnlyFailedLanes) {
  GatewayConfig config = chaos_config();
  config.session_policy.evidence_ttl_ns = 5'000'000;  // handshakes mid-storm
  SetUpFleet(3, config);
  // Slot-worker stalls under load: the RA link is slowed (handshakes on
  // the control lane crawl) while the dispatcher link stalls/drops whole
  // INVOKE_BATCH exchanges. The client replays ONLY the failed-index
  // lanes; a stalled batch EXECUTED all its lanes, so the replay must be
  // answered entirely from the memo.
  net::ChaosPolicy ra_slow;
  ra_slow.delay_permille = 500;
  ra_slow.delay_ns = 200'000;
  net::ChaosPolicy batch_chaos;
  batch_chaos.stall_permille = 200;
  batch_chaos.drop_permille = 100;

  constexpr int kBatchLanes = 32;
  const int family_id = 6;
  for (int iter = 0; iter < kSeedsPerFamily; ++iter) {
    const std::uint64_t seed =
        base_seed() + static_cast<std::uint64_t>(family_id * 1000 + iter);
    std::printf("chaos seed: family=stall-batch seed=0x%" PRIx64 "\n", seed);
    chaos_.reseed(seed);
    chaos_.set_policy(config_.hostname, config_.ra_port, ra_slow);
    chaos_.set_policy(config_.hostname, config_.port, batch_chaos);

    const std::uint64_t executed_before = gateway_->stats().invocations;
    testing::LaneLedger ledger;
    std::vector<std::int32_t> todo;
    for (int lane = 0; lane < kBatchLanes; ++lane) {
      const std::int32_t arg = lane_arg(family_id, iter, lane);
      ledger.issue(std::to_string(arg));
      todo.push_back(arg);
    }
    for (int attempt = 0; attempt < kMaxAttempts && !todo.empty(); ++attempt) {
      std::vector<InvokeRequest> batch;
      batch.reserve(todo.size());
      for (const std::int32_t arg : todo) batch.push_back(add_request(arg));
      auto results = client_->invoke_all(batch);
      std::vector<std::int32_t> failed;
      for (std::size_t i = 0; i < results.size(); ++i) {
        if (results[i].ok()) {
          EXPECT_EQ(results[i]->results.front().i32(), todo[i] + 1);
          ledger.complete(std::to_string(todo[i]), true);
        } else {
          failed.push_back(todo[i]);  // failed-index replay, same bytes
        }
      }
      todo = std::move(failed);
    }
    for (const std::int32_t arg : todo)
      ledger.complete(std::to_string(arg), false);
    chaos_.clear_policies();

    EXPECT_EQ(ledger.lost(), 0u)
        << "stall-batch: lane lost (seed 0x" << std::hex << seed << ")";
    EXPECT_EQ(ledger.double_completed(), 0u);
    const GatewayStats stats = gateway_->stats();
    EXPECT_EQ(stats.invocations - executed_before,
              static_cast<std::uint64_t>(kBatchLanes))
        << "stall-batch: a failed-index replay re-executed a lane that had "
        << "already run (seed 0x" << std::hex << seed << ")";
    expect_warm_fleet(stats);
  }
  EXPECT_GT(chaos_.stats().stalled + chaos_.stats().dropped, 0u);
}

TEST_F(GatewayChaosTest, MidStormMigrationLandsOnPrewarmedDevice) {
  SetUpFleet(2, chaos_config());
  const std::uint64_t seed = base_seed() + 9999;
  std::printf("chaos seed: family=migration seed=0x%" PRIx64 "\n", seed);
  chaos_.reseed(seed);

  // Kill device 0's trust path: reboot it (boot count bumps, the
  // session's evidence for it goes stale) and drop EVERY frame on the RA
  // link, so its lazy re-handshake can never complete — every placement
  // onto it fails appraisal. Device 1's evidence is still fresh from
  // attach, so the dispatcher must transparently migrate the session
  // there; the prewarm sweep already warmed device-1's cache, so the
  // failover pays no cold Loading phase.
  ASSERT_TRUE(gateway_->add_device(*devices_[0]).ok());
  gateway_->sweep_module_prewarms();  // rebuilt (empty) cache re-warmed
  EXPECT_EQ(gateway_->stats().prewarm_prepares, 3u);  // 2 at setup + this one
  net::ChaosPolicy ra_down;
  ra_down.drop_permille = 1000;
  chaos_.set_policy(config_.hostname, config_.ra_port, ra_down);

  const std::uint64_t executed_before = gateway_->stats().invocations;
  constexpr int kLanes = 24;
  for (int lane = 0; lane < kLanes; ++lane) {
    const std::int32_t arg = 8'000'000 + lane;
    auto r = client_->invoke(add_request(arg));
    ASSERT_TRUE(r.ok()) << "migration must be transparent: " << r.error();
    EXPECT_EQ(r->results.front().i32(), arg + 1);
    EXPECT_EQ(r->device, "chaos-node-1");
  }
  chaos_.clear_policies();

  const GatewayStats stats = gateway_->stats();
  EXPECT_GT(stats.migrations, 0u);
  EXPECT_EQ(stats.invocations - executed_before,
            static_cast<std::uint64_t>(kLanes));
  // "Cold prepares on failover == 0": the landing device served every
  // migrated invoke from its prewarmed cache.
  expect_warm_fleet(stats);
  for (const DeviceStats& d : stats.devices) {
    if (d.hostname == "chaos-node-1") {
      EXPECT_GT(d.cache_prewarms, 0u);
    }
  }
}

}  // namespace
}  // namespace watz::gateway
