// Gateway-level native tiering + SUBMIT memo tests: heat counters trip
// background compilation through Gateway::sweep_tier_compiles, native
// entries are inherited by warm pool checkouts, the tiering counters ride
// the STATS wire frame, and the single-invoke result memo answers twin
// SUBMITs without entering a sandbox.
//
// Every native-specific assertion is gated on wasm::jit::jit_available():
// under WATZ_DISABLE_JIT (the CI fallback leg) or on non-x86-64 hosts the
// suite still runs end to end and asserts the degraded-to-AOT behaviour
// (zero compiles, correct results).
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "core/device.hpp"
#include "gateway/gateway.hpp"
#include "wasm/builder.hpp"
#include "wasm/jit/jit.hpp"

namespace watz::gateway {
namespace {

core::DeviceConfig device_config(const std::string& hostname, std::uint8_t id) {
  core::DeviceConfig config;
  config.hostname = hostname;
  config.otpmk.fill(id);
  config.latency.enabled = false;
  return config;
}

/// Guest exporting work(n) -> sum(1..n): an integer loop the baseline JIT
/// lowers entirely to native code (no fallback thunks).
Bytes compute_app() {
  wasm::ModuleBuilder b;
  b.add_memory(1);
  const auto f = b.add_function(
      {{wasm::ValType::I32}, {wasm::ValType::I32}},
      {wasm::ValType::I32, wasm::ValType::I32});  // locals: 1 = i, 2 = acc
  wasm::CodeEmitter e;
  e.block(0x40);
  e.loop(0x40);
  e.local_get(1).local_get(0).op(wasm::kI32GeS).br_if(1);
  e.local_get(1).i32_const(1).op(wasm::kI32Add).local_tee(1);
  e.local_get(2).op(wasm::kI32Add).local_set(2);
  e.br(0);
  e.end();
  e.end();
  e.local_get(2);
  b.set_body(f, e.bytes());
  b.export_function("work", f);
  return b.build();
}

class GatewayTieringTest : public ::testing::Test {
 protected:
  void SetUpFleet(GatewayConfig config) {
    vendor_ = core::Vendor::create(to_bytes("gw-tier-vendor"));
    auto device =
        core::Device::boot(fabric_, vendor_, device_config("tier-node", 0x61));
    ASSERT_TRUE(device.ok()) << device.error();
    devices_.push_back(std::move(*device));
    gateway_ = std::make_unique<Gateway>(fabric_, config, to_bytes("gw-tier-id"));
    ASSERT_TRUE(gateway_->start().ok());
    for (auto& d : devices_) ASSERT_TRUE(gateway_->add_device(*d).ok());
    client_ = std::make_unique<GatewayClient>(fabric_);
    ASSERT_TRUE(client_->connect(config.hostname, config.port).ok());
  }

  /// Attach + upload compute_app; fills session_ and measurement_.
  void AttachAndLoad() {
    auto attach = client_->attach("tier-tenant");
    ASSERT_TRUE(attach.ok()) << attach.error();
    session_ = attach->session_id;
    auto load = client_->load_module(session_, compute_app());
    ASSERT_TRUE(load.ok()) << load.error();
    measurement_ = load->measurement;
  }

  InvokeRequest work_request(std::int32_t n) {
    InvokeRequest req;
    req.session_id = session_;
    req.measurement = measurement_;
    req.entry = "work";
    req.args = {wasm::Value::from_i32(n)};
    req.heap_bytes = 1 << 20;
    return req;
  }

  /// Polls a SUBMIT ticket to completion (bounded spin: the in-process
  /// fabric makes results land in microseconds).
  Result<InvokeResponse> redeem(std::uint64_t ticket) {
    for (int spin = 0; spin < 20000; ++spin) {
      auto poll = client_->poll(session_, ticket);
      if (!poll.ok()) return Result<InvokeResponse>::err(poll.error());
      if (poll->ready) {
        if (!poll->error.empty()) return Result<InvokeResponse>::err(poll->error);
        return std::move(poll->result);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    return Result<InvokeResponse>::err("test: poll timed out");
  }

  net::Fabric fabric_;
  core::Vendor vendor_;
  std::vector<std::unique_ptr<core::Device>> devices_;
  std::unique_ptr<Gateway> gateway_;
  std::unique_ptr<GatewayClient> client_;
  std::uint64_t session_ = 0;
  crypto::Sha256Digest measurement_{};
};

TEST_F(GatewayTieringTest, HotInvokesTierUpViaControlPlaneSweep) {
  GatewayConfig config;
  config.jit_hot_calls = 1;  // first touch marks the function hot
  SetUpFleet(config);
  AttachAndLoad();

  // First invoke runs on the AOT stream and trips the heat counter.
  auto first = client_->invoke(work_request(1000));
  ASSERT_TRUE(first.ok()) << first.error();
  EXPECT_EQ(first->results.front().i32(), 500500);

  // The explicit sweep is what the background sweeper does every interval;
  // driving it here makes the tier-up deterministic.
  const std::size_t compiled = gateway_->sweep_tier_compiles();
  auto second = client_->invoke(work_request(2000));
  ASSERT_TRUE(second.ok()) << second.error();
  EXPECT_EQ(second->results.front().i32(), 2001000);

  GatewayStats stats = gateway_->stats();
  if (wasm::jit::jit_available()) {
    EXPECT_GT(compiled, 0u);
    EXPECT_GT(stats.tier_up_compiles, 0u);
    EXPECT_GT(stats.native_entries, 0u);
    // Pure-integer module: nothing should have gone through the thunks.
    EXPECT_EQ(stats.jit_fallback_ops, 0u);
    // Idempotent: nothing left pending after the sweep.
    EXPECT_EQ(gateway_->sweep_tier_compiles(), 0u);
  } else {
    // Fallback leg (WATZ_DISABLE_JIT / non-x86-64): wholesale AOT stream,
    // results identical, tiering plane quiescent.
    EXPECT_EQ(compiled, 0u);
    EXPECT_EQ(stats.tier_up_compiles, 0u);
    EXPECT_EQ(stats.native_entries, 0u);
  }
}

TEST_F(GatewayTieringTest, TieringCountersRideTheStatsWire) {
  GatewayConfig config;
  config.jit_hot_calls = 1;
  SetUpFleet(config);
  AttachAndLoad();

  ASSERT_TRUE(client_->invoke(work_request(10)).ok());
  gateway_->sweep_tier_compiles();
  ASSERT_TRUE(client_->invoke(work_request(10)).ok());

  // Round-trip through the wire encoding: the client-side decode must see
  // what the gateway serialised, including the detail-gated compile stage.
  auto wire = client_->stats(session_, /*detail=*/true);
  ASSERT_TRUE(wire.ok()) << wire.error();
  GatewayStats local = gateway_->stats(true);
  EXPECT_EQ(wire->tier_up_compiles, local.tier_up_compiles);
  EXPECT_EQ(wire->native_entries, local.native_entries);
  EXPECT_EQ(wire->jit_fallback_ops, local.jit_fallback_ops);
  EXPECT_EQ(wire->invoke_memo_hits, local.invoke_memo_hits);
  EXPECT_EQ(wire->stage_jit_compile.count, local.stage_jit_compile.count);
  if (wasm::jit::jit_available()) {
    EXPECT_GT(wire->tier_up_compiles, 0u);
    EXPECT_GT(wire->stage_jit_compile.count, 0u);
    // Without detail the compile histogram stays unserialised.
    auto plain = client_->stats(session_, /*detail=*/false);
    ASSERT_TRUE(plain.ok()) << plain.error();
    EXPECT_EQ(plain->stage_jit_compile.count, 0u);
    EXPECT_EQ(plain->tier_up_compiles, wire->tier_up_compiles);
  }
}

TEST_F(GatewayTieringTest, SubmitMemoServesTwinWithoutExecuting) {
  GatewayConfig config;
  config.invoke_memo_ttl_ns = 60ull * 1'000'000'000;  // generous: no expiry here
  SetUpFleet(config);
  AttachAndLoad();

  auto ticket = client_->submit(work_request(100));
  ASSERT_TRUE(ticket.ok()) << ticket.error();
  auto first = redeem(ticket->ticket);
  ASSERT_TRUE(first.ok()) << first.error();
  EXPECT_EQ(first->results.front().i32(), 5050);
  const std::uint64_t executed = gateway_->stats().invocations;

  // The twin rides the memo: same results, no new sandbox execution, and
  // its pre-satisfied ticket is ready on the first poll.
  auto twin = client_->submit(work_request(100));
  ASSERT_TRUE(twin.ok()) << twin.error();
  auto poll = client_->poll(session_, twin->ticket);
  ASSERT_TRUE(poll.ok()) << poll.error();
  ASSERT_TRUE(poll->ready);
  ASSERT_TRUE(poll->error.empty()) << poll->error;
  EXPECT_EQ(poll->result.results.front().i32(), 5050);
  EXPECT_EQ(poll->result.ra_exchanges, 0u);

  GatewayStats stats = gateway_->stats();
  EXPECT_EQ(stats.invoke_memo_hits, 1u);
  EXPECT_EQ(stats.invocations, executed);  // nothing executed for the twin

  // Different arguments are a different semantic identity: full execution.
  auto other = client_->submit(work_request(101));
  ASSERT_TRUE(other.ok()) << other.error();
  auto other_result = redeem(other->ticket);
  ASSERT_TRUE(other_result.ok()) << other_result.error();
  EXPECT_EQ(other_result->results.front().i32(), 5151);
  EXPECT_EQ(gateway_->stats().invocations, executed + 1);
}

TEST_F(GatewayTieringTest, SubmitMemoOffByDefault) {
  SetUpFleet(GatewayConfig{});
  AttachAndLoad();

  for (int i = 0; i < 2; ++i) {
    auto ticket = client_->submit(work_request(7));
    ASSERT_TRUE(ticket.ok()) << ticket.error();
    auto r = redeem(ticket->ticket);
    ASSERT_TRUE(r.ok()) << r.error();
    EXPECT_EQ(r->results.front().i32(), 28);
  }
  GatewayStats stats = gateway_->stats();
  EXPECT_EQ(stats.invoke_memo_hits, 0u);
  EXPECT_EQ(stats.invocations, 2u);  // both executed, nothing memoised
}

}  // namespace
}  // namespace watz::gateway
