// Deterministic-seed fuzz of the ATTACH_BATCH framing, both layers:
//   * the dispatcher's AttachBatchRequest wire format (client names), and
//   * the RA endpoint's multi-lane batch frames (ra/messages.hpp).
// Mutations target lengths and the count/payload agreement (truncation,
// count bumps, huge length prefixes, trailing garbage). The contract under
// fuzz: every malformed frame comes back as an in-band protocol error —
// the gateway never crashes, and no session (dispatcher- or verifier-side)
// is ever leaked by a half-parsed frame. The seed is fixed so a failure
// reproduces exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/device.hpp"
#include "crypto/fortuna.hpp"
#include "gateway/gateway.hpp"
#include "ra/attester.hpp"

namespace watz::gateway {
namespace {

core::DeviceConfig device_config(const std::string& hostname, std::uint8_t id) {
  core::DeviceConfig config;
  config.hostname = hostname;
  config.otpmk.fill(id);
  config.latency.enabled = false;
  return config;
}

/// xorshift64 with a fixed seed: the whole run replays byte-for-byte.
struct FuzzRng {
  std::uint64_t state = 0xC0FFEE0DDF00Dull;
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
  std::uint32_t below(std::uint32_t bound) {
    return static_cast<std::uint32_t>(next() % bound);
  }
};

/// Applies one length/count-targeting mutation. Never touches byte 0 (the
/// opcode/tag): opcode drift would fuzz a different decoder's happy path.
Bytes mutate(FuzzRng& rng, const Bytes& valid) {
  Bytes frame = valid;
  switch (rng.below(5)) {
    case 0:  // truncate anywhere past the opcode
      frame.resize(1 + rng.below(static_cast<std::uint32_t>(frame.size() - 1)));
      break;
    case 1:  // flip a byte in the count/length/payload region
      frame[1 + rng.below(static_cast<std::uint32_t>(frame.size() - 1))] ^=
          static_cast<std::uint8_t>(1u << rng.below(8));
      break;
    case 2: {  // append trailing garbage (count/payload mismatch)
      const int extra = 1 + static_cast<int>(rng.below(8));
      for (int i = 0; i < extra; ++i)
        frame.push_back(static_cast<std::uint8_t>(rng.next()));
      break;
    }
    case 3:  // blow up a length prefix
      frame[1 + rng.below(static_cast<std::uint32_t>(
                std::min<std::size_t>(frame.size() - 1, 8)))] = 0xFF;
      break;
    default: {  // random garbage body behind the valid opcode
      const std::size_t len = 1 + rng.below(64);
      frame.resize(1);
      for (std::size_t i = 0; i < len; ++i)
        frame.push_back(static_cast<std::uint8_t>(rng.next()));
      break;
    }
  }
  return frame;
}

TEST(AttachBatchFuzzTest, DispatcherFramingNeverCrashesOrLeaksSessions) {
  net::Fabric fabric;
  const core::Vendor vendor = core::Vendor::create(to_bytes("fuzz-vendor"));
  auto device = core::Device::boot(fabric, vendor, device_config("fuzz-0", 0x66));
  ASSERT_TRUE(device.ok()) << device.error();
  GatewayConfig config;
  config.ra_shards = 2;
  Gateway gateway(fabric, config, to_bytes("fuzz-identity"));
  ASSERT_TRUE(gateway.start().ok());
  ASSERT_TRUE(gateway.add_device(**device).ok());

  auto conn = fabric.connect(config.hostname, config.port);
  ASSERT_TRUE(conn.ok());

  AttachBatchRequest seed_request;
  seed_request.clients = {"fz-a", "fz-b", "fz-c"};
  const Bytes valid = seed_request.encode();

  FuzzRng rng;
  std::vector<std::uint64_t> accidental_sessions;
  int malformed = 0;
  for (int iter = 0; iter < 200; ++iter) {
    const Bytes frame = mutate(rng, valid);
    auto reply = fabric.send_recv(*conn, frame);
    // The transport never tears down: protocol failures must travel
    // in-band as error envelopes.
    ASSERT_TRUE(reply.ok()) << "iter " << iter << ": " << reply.error();
    auto payload = open_envelope(*reply);
    if (!payload.ok()) {
      ++malformed;
      continue;
    }
    // A mutation can land on name bytes and stay well-formed; those
    // attach real sessions we account for (and drop) below.
    auto resp = AttachBatchResponse::decode(*payload);
    ASSERT_TRUE(resp.ok()) << "iter " << iter << ": ok envelope, bad payload";
    for (const AttachBatchResult& result : resp->results)
      if (result.ok()) accidental_sessions.push_back(result.session_id);
  }
  EXPECT_GT(malformed, 0) << "fuzzer never produced a malformed frame";

  // No leaks: the live set is exactly the accidentally-valid attaches…
  EXPECT_EQ(gateway.sessions().active(), accidental_sessions.size());
  for (const std::uint64_t id : accidental_sessions)
    EXPECT_TRUE(gateway.sessions().detach(id));
  // …and nothing else.
  EXPECT_EQ(gateway.sessions().active(), 0u);
  EXPECT_EQ(gateway.verifier().active_sessions(), 0u);
  fabric.close(*conn);
}

TEST(AttachBatchFuzzTest, RaBatchFramingNeverCrashesOrLeaksLanes) {
  net::Fabric fabric;
  const core::Vendor vendor = core::Vendor::create(to_bytes("fuzz-vendor"));
  auto device = core::Device::boot(fabric, vendor, device_config("fuzz-1", 0x67));
  ASSERT_TRUE(device.ok()) << device.error();
  GatewayConfig config;
  config.ra_shards = 2;
  Gateway gateway(fabric, config, to_bytes("fuzz-identity-2"));
  ASSERT_TRUE(gateway.start().ok());
  ASSERT_TRUE(gateway.add_device(**device).ok());

  auto conn = fabric.connect(config.hostname, config.ra_port);
  ASSERT_TRUE(conn.ok());

  // A genuine two-lane msg0 batch as the mutation seed.
  crypto::Fortuna attester_rng(to_bytes("fuzz-attester"));
  ra::AttesterSession a0(attester_rng, gateway.identity());
  ra::AttesterSession a1(attester_rng, gateway.identity());
  const Bytes valid = ra::encode_batch(
      {ra::BatchItem{0, a0.make_msg0()}, ra::BatchItem{1, a1.make_msg0()}});

  FuzzRng rng;
  int rejected = 0;
  for (int iter = 0; iter < 200; ++iter) {
    const Bytes frame = mutate(rng, valid);
    auto reply = fabric.send_recv(*conn, frame);
    // Either a whole-frame protocol error (framing) or a batch reply whose
    // lanes individually succeeded/failed — never a crash either way.
    if (!reply.ok()) {
      ++rejected;
      continue;
    }
    auto items = ra::decode_batch_reply(*reply);
    ASSERT_TRUE(items.ok()) << "iter " << iter << ": unparseable batch reply";
  }
  EXPECT_GT(rejected, 0) << "fuzzer never produced a malformed frame";
  // Every wholesale rejection is visible to operators (framing rejections
  // never reach a shard, so they have their own counter).
  EXPECT_EQ(gateway.verifier().batch_framing_rejects(),
            static_cast<std::uint64_t>(rejected));

  // Lanes opened by accidentally-valid msg0s are swept when the
  // connection goes away — nothing survives in any shard.
  fabric.close(*conn);
  EXPECT_EQ(gateway.verifier().active_sessions(), 0u);
}

}  // namespace
}  // namespace watz::gateway
