// Per-device sandbox-pool tests: slot-affinity reuse, concurrent fan-out
// across one device's slots, cross-lane INVOKE_BATCH dedup, the
// detach-vs-pooled-invoke race, evidence renewal ahead of the TTL, and a
// 4-thread stress drive of a 2-device x 4-slot fleet (the TSan payload for
// the pooled execution plane).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/device.hpp"
#include "gateway/gateway.hpp"
#include "tests/support/lane_ledger.hpp"
#include "wasm/builder.hpp"

namespace watz::gateway {
namespace {

core::DeviceConfig device_config(const std::string& hostname, std::uint8_t id) {
  core::DeviceConfig config;
  config.hostname = hostname;
  config.otpmk.fill(id);
  config.latency.enabled = false;
  return config;
}

/// Guest exporting add(a, b) -> a + b.
Bytes adder_app() {
  wasm::ModuleBuilder b;
  b.add_memory(1);
  const auto f = b.add_function({{wasm::ValType::I32, wasm::ValType::I32},
                                 {wasm::ValType::I32}});
  wasm::CodeEmitter e;
  e.local_get(0).local_get(1).op(wasm::kI32Add);
  b.set_body(f, e.bytes());
  b.export_function("add", f);
  return b.build();
}

InvokeRequest add_request(std::uint64_t session, const crypto::Sha256Digest& m,
                          std::int32_t a, std::int32_t b) {
  InvokeRequest req;
  req.session_id = session;
  req.measurement = m;
  req.entry = "add";
  req.args = {wasm::Value::from_i32(a), wasm::Value::from_i32(b)};
  req.heap_bytes = 1 << 20;
  return req;
}

class GatewayPoolTest : public ::testing::Test {
 protected:
  void SetUpFleet(int devices, GatewayConfig config) {
    config_ = config;
    vendor_ = core::Vendor::create(to_bytes("gw-pool-vendor"));
    for (int i = 0; i < devices; ++i) {
      auto device = core::Device::boot(
          fabric_, vendor_, device_config("pool-node-" + std::to_string(i),
                                          static_cast<std::uint8_t>(0x60 + i)));
      ASSERT_TRUE(device.ok()) << device.error();
      devices_.push_back(std::move(*device));
    }
    gateway_ = std::make_unique<Gateway>(fabric_, config, to_bytes("gw-pool-id"));
    ASSERT_TRUE(gateway_->start().ok());
    for (auto& device : devices_) ASSERT_TRUE(gateway_->add_device(*device).ok());
    client_ = std::make_unique<GatewayClient>(fabric_);
    ASSERT_TRUE(client_->connect(config.hostname, config.port).ok());
  }

  net::Fabric fabric_;
  core::Vendor vendor_;
  GatewayConfig config_;
  std::vector<std::unique_ptr<core::Device>> devices_;
  std::unique_ptr<Gateway> gateway_;
  std::unique_ptr<GatewayClient> client_;
};

TEST_F(GatewayPoolTest, SlotAffinityReusesWarmInstance) {
  GatewayConfig config;
  config.slots_per_device = 2;
  SetUpFleet(1, config);

  auto attach = client_->attach("tenant-a");
  ASSERT_TRUE(attach.ok()) << attach.error();
  auto load = client_->load_module(attach->session_id, adder_app());
  ASSERT_TRUE(load.ok());

  // Sequential invokes of one session follow the affinity hint onto the
  // slot whose warm pool holds their instance: every call after the first
  // is a pool hit, and every call lands on the same slot.
  for (int i = 0; i < 5; ++i) {
    auto r = client_->invoke(add_request(attach->session_id, load->measurement, i, 1));
    ASSERT_TRUE(r.ok()) << r.error();
    EXPECT_EQ(r->results.front().i32(), i + 1);
    if (i > 0) {
      EXPECT_TRUE(r->pool_hit) << "invoke " << i;
    }
  }

  auto stats = client_->stats(attach->session_id);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->devices.size(), 1u);
  const DeviceStats& d = stats->devices[0];
  EXPECT_EQ(d.pool_slots, 2u);
  ASSERT_EQ(d.slots.size(), 2u);
  EXPECT_EQ(d.invocations, 5u);
  // Affinity keeps the idle-path session on ONE slot; the sibling stays
  // cold.
  EXPECT_TRUE((d.slots[0].invocations == 5 && d.slots[1].invocations == 0) ||
              (d.slots[0].invocations == 0 && d.slots[1].invocations == 5));
}

TEST_F(GatewayPoolTest, BatchFansOutAcrossOneDevicesSlots) {
  GatewayConfig config;
  config.slots_per_device = 4;
  SetUpFleet(1, config);

  auto attach = client_->attach("tenant-a");
  ASSERT_TRUE(attach.ok()) << attach.error();
  auto load = client_->load_module(attach->session_id, adder_app());
  ASSERT_TRUE(load.ok());

  // 8 distinct lanes in one admission pass: the fan must spread over the
  // pool of ONE device, not serialise on its first slot (admission bumps
  // inflight, so lane k's cost snapshot already sees lanes 0..k-1). The
  // spread is NOT deterministically even: a fast slot can retire a lane
  // mid-admission and win later lanes back through affinity — so pin
  // "multiple slots ran the batch", not an exact 2/2/2/2 split.
  std::vector<InvokeRequest> batch;
  for (int i = 0; i < 8; ++i)
    batch.push_back(add_request(attach->session_id, load->measurement, i, 100));
  for (auto& r : client_->invoke_all(batch)) ASSERT_TRUE(r.ok()) << r.error();

  auto stats = client_->stats(attach->session_id);
  ASSERT_TRUE(stats.ok());
  ASSERT_EQ(stats->devices.size(), 1u);
  const DeviceStats& d = stats->devices[0];
  EXPECT_EQ(d.invocations, 8u);
  ASSERT_EQ(d.slots.size(), 4u);
  int busy_slots = 0;
  for (const SlotStats& s : d.slots) {
    if (s.invocations > 0) ++busy_slots;
  }
  EXPECT_GE(busy_slots, 2) << "the batch serialised on one slot";
}

TEST_F(GatewayPoolTest, DedupedLanesShareOneExecution) {
  GatewayConfig config;
  config.slots_per_device = 2;
  SetUpFleet(2, config);

  auto attach = client_->attach("tenant-a");
  ASSERT_TRUE(attach.ok()) << attach.error();
  auto load = client_->load_module(attach->session_id, adder_app());
  ASSERT_TRUE(load.ok());

  // Lanes 0..4 are identical (same measurement, entry, args, heap) and the
  // session holds fresh evidence fleet-wide after attach: the first is the
  // leader, the other four ride its result. Lanes 5..7 are distinct and
  // execute normally.
  std::vector<InvokeRequest> batch;
  for (int i = 0; i < 5; ++i)
    batch.push_back(add_request(attach->session_id, load->measurement, 7, 3));
  for (int i = 0; i < 3; ++i)
    batch.push_back(add_request(attach->session_id, load->measurement, i, 50));
  auto results = client_->invoke_all(batch);
  for (std::size_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].error();
    EXPECT_EQ(results[i]->results.front().i32(), 10);
  }
  for (std::size_t i = 5; i < 8; ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].error();
    EXPECT_EQ(results[i]->results.front().i32(),
              static_cast<std::int32_t>(i - 5) + 50);
  }

  auto stats = client_->stats(attach->session_id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->deduped_lanes, 4u);
  // Only 4 executions entered a sandbox: 1 leader + 3 distinct lanes.
  EXPECT_EQ(stats->invocations, 4u);
}

TEST_F(GatewayPoolTest, EvidenceRenewalAheadOfTtlKeepsHotPathFree) {
  GatewayConfig config;
  config.session_policy.evidence_ttl_ns = 300'000'000;  // 300 ms
  config.evidence_renewal = false;  // drive the sweep by hand, deterministically
  config.slots_per_device = 2;
  SetUpFleet(2, config);

  auto attach = client_->attach("tenant-a");
  ASSERT_TRUE(attach.ok()) << attach.error();
  auto load = client_->load_module(attach->session_id, adder_app());
  ASSERT_TRUE(load.ok());
  const std::uint64_t handshakes_after_attach = gateway_->sessions().handshakes_run();

  // Young evidence: a sweep renews nothing.
  EXPECT_EQ(gateway_->sweep_evidence_renewals(), 0u);

  // Age the evidence past ~80% of the TTL (but not past the TTL itself),
  // then sweep: both devices re-prove this session through the batched
  // handshake machinery, on the control lane.
  std::this_thread::sleep_for(std::chrono::milliseconds(260));
  EXPECT_EQ(gateway_->sweep_evidence_renewals(), 2u);
  EXPECT_EQ(gateway_->sessions().handshakes_run(), handshakes_after_attach + 2);

  // The hot path rides the RENEWED evidence: zero RA exchanges even though
  // the original attach-time evidence would have been near expiry.
  auto r = client_->invoke(add_request(attach->session_id, load->measurement, 2, 2));
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r->ra_exchanges, 0u);

  auto stats = client_->stats(attach->session_id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->evidence_renewals, 2u);

  // Renewal reset the clock: an immediate second sweep is a no-op.
  EXPECT_EQ(gateway_->sweep_evidence_renewals(), 0u);
}

TEST_F(GatewayPoolTest, BackgroundRenewalSweeperRuns) {
  GatewayConfig config;
  config.session_policy.evidence_ttl_ns = 150'000'000;  // 150 ms
  config.renewal_interval_ns = 20'000'000;              // sweep every 20 ms
  SetUpFleet(1, config);

  auto attach = client_->attach("tenant-a");
  ASSERT_TRUE(attach.ok()) << attach.error();
  std::this_thread::sleep_for(std::chrono::milliseconds(400));

  // The sweeper has renewed this session at least twice by now (every
  // ~120 ms of evidence age), without any invoke driving it.
  auto stats = gateway_->stats();
  EXPECT_GE(stats.evidence_renewals, 2u);

  auto load = client_->load_module(attach->session_id, adder_app());
  ASSERT_TRUE(load.ok());
  auto r = client_->invoke(add_request(attach->session_id, load->measurement, 1, 1));
  EXPECT_TRUE(r.ok()) << r.error();
}

/// One slow device (2 ms device-side world switch) with a 2-slot pool and
/// tiny queues: the detach-vs-pooled-invoke race has a deterministic
/// window while both slots hold queued work.
class GatewaySlowPoolTest : public GatewayPoolTest {
 protected:
  void SetUp() override {
    GatewayConfig config;
    config.worker_queue_capacity = 2;
    config.slots_per_device = 2;
    config_ = config;
    vendor_ = core::Vendor::create(to_bytes("gw-pool-vendor"));
    core::DeviceConfig cfg = device_config("slow-pool-0", 0x71);
    cfg.latency.enabled = true;
    cfg.latency.device_side = true;
    cfg.latency.smc_enter_ns = 2'000'000;
    cfg.latency.smc_leave_ns = 0;
    cfg.latency.supplicant_rpc_ns = 0;
    cfg.latency.time_rpc_ns = 0;
    auto device = core::Device::boot(fabric_, vendor_, cfg);
    ASSERT_TRUE(device.ok()) << device.error();
    devices_.push_back(std::move(*device));
    gateway_ = std::make_unique<Gateway>(fabric_, config, to_bytes("gw-pool-id"));
    ASSERT_TRUE(gateway_->start().ok());
    ASSERT_TRUE(gateway_->add_device(*devices_[0]).ok());
    client_ = std::make_unique<GatewayClient>(fabric_);
    ASSERT_TRUE(client_->connect(config.hostname, config.port).ok());
  }

  PollResponse redeem(std::uint64_t session, std::uint64_t ticket) {
    for (;;) {
      auto polled = client_->poll(session, ticket);
      if (!polled.ok()) {
        PollResponse failed;
        failed.ready = true;
        failed.error = polled.error();
        return failed;
      }
      if (polled->ready) return std::move(*polled);
    }
  }
};

TEST_F(GatewaySlowPoolTest, DetachFailsQueuedPooledWorkOnEverySlot) {
  auto attach = client_->attach("tenant-a");
  ASSERT_TRUE(attach.ok()) << attach.error();
  auto load = client_->load_module(attach->session_id, adder_app());
  ASSERT_TRUE(load.ok());

  // Fill BOTH slots (one executing + one queued each), then detach while
  // all four are in flight: queued items on every slot must observe the
  // closed session and fail instead of executing against dropped state.
  std::vector<std::uint64_t> tickets;
  for (int i = 0; i < 4; ++i) {
    auto submitted =
        client_->submit(add_request(attach->session_id, load->measurement, i, i));
    ASSERT_TRUE(submitted.ok()) << submitted.error();
    tickets.push_back(submitted->ticket);
  }
  ASSERT_TRUE(client_->detach(attach->session_id).ok());
  EXPECT_EQ(gateway_->sessions().active(), 0u);

  // Every ticket resolves — completed (was already executing) or failed
  // with the detach — and nothing crashes or hangs.
  int detached = 0;
  for (const std::uint64_t ticket : tickets) {
    const PollResponse done = redeem(attach->session_id, ticket);
    if (!done.error.empty()) {
      EXPECT_NE(done.error.find("session detached"), std::string::npos)
          << done.error;
      ++detached;
    }
  }
  // The two QUEUED items (one per slot) cannot have started before the
  // detach landed: at least those two must report the detach.
  EXPECT_GE(detached, 2);
}

TEST_F(GatewayPoolTest, FourThreadStressOverPooledFleet) {
  GatewayConfig config;
  config.slots_per_device = 4;
  SetUpFleet(2, config);

  const Bytes app = adder_app();
  auto seed_attach = client_->attach("stress-seed");
  ASSERT_TRUE(seed_attach.ok());
  auto load = client_->load_module(seed_attach->session_id, app);
  ASSERT_TRUE(load.ok());
  const crypto::Sha256Digest measurement = load->measurement;

  // 4 client threads x (plain invokes + 4-lane batches) into a 2-device x
  // 4-slot fleet, while the main thread re-enrols device 0 mid-storm (a
  // reboot: boot count bumps, evidence goes stale, invokes re-attest
  // lazily) and samples STATS. Everything must succeed; this suite is the
  // TSan payload for the pooled execution plane.
  constexpr int kThreads = 4;
  constexpr int kRounds = 12;
  std::atomic<int> failures{0};
  std::atomic<std::uint64_t> completed{0};
  // Every lane (plain invoke and batch lane alike) is registered with the
  // exactly-once ledger before dispatch and completed by whichever path
  // answered it; the storm must end with zero lost and zero doubled.
  testing::LaneLedger ledger;
  const auto lane_key = [](int t, int round, const char* lane) {
    return std::to_string(t) + "/" + std::to_string(round) + "/" + lane;
  };
  std::vector<std::thread> drivers;
  for (int t = 0; t < kThreads; ++t) {
    drivers.emplace_back([&, t] {
      GatewayClient client(fabric_);
      if (!client.connect(config_.hostname, config_.port).ok()) {
        failures.fetch_add(1);
        return;
      }
      auto attach = client.attach("stress-" + std::to_string(t));
      if (!attach.ok()) {
        failures.fetch_add(1);
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        ledger.issue(lane_key(t, round, "sync"));
        auto r = client.invoke(add_request(attach->session_id, measurement,
                                           t * 1000 + round, 1));
        if (!r.ok()) {
          failures.fetch_add(1);
          return;
        }
        ledger.complete(lane_key(t, round, "sync"), true);
        completed.fetch_add(1);
        std::vector<InvokeRequest> batch;
        for (int lane = 0; lane < 4; ++lane) {
          batch.push_back(add_request(attach->session_id, measurement,
                                      t * 1000 + round, 10 + lane));
          ledger.issue(lane_key(t, round, std::to_string(lane).c_str()));
        }
        auto lane_results = client.invoke_all(batch);
        for (std::size_t lane = 0; lane < lane_results.size(); ++lane) {
          if (!lane_results[lane].ok()) {
            failures.fetch_add(1);
            return;
          }
          ledger.complete(
              lane_key(t, round, std::to_string(lane).c_str()), true);
          completed.fetch_add(1);
        }
      }
      if (!client.detach(attach->session_id).ok()) failures.fetch_add(1);
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(gateway_->add_device(*devices_[0]).ok());  // mid-storm reboot
  for (int i = 0; i < 5; ++i) {
    auto stats = client_->stats(seed_attach->session_id);
    ASSERT_TRUE(stats.ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  for (std::thread& driver : drivers) driver.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(completed.load(),
            static_cast<std::uint64_t>(kThreads) * kRounds * 5);
  EXPECT_EQ(ledger.issued(), static_cast<std::uint64_t>(kThreads) * kRounds * 5);
  EXPECT_EQ(ledger.double_issued(), 0u);
  EXPECT_EQ(ledger.lost(), 0u) << "a lane vanished mid-storm";
  EXPECT_EQ(ledger.double_completed(), 0u) << "a lane was answered twice";
  auto stats = client_->stats(seed_attach->session_id);
  ASSERT_TRUE(stats.ok());
  // Dedup never fires (every batch's lanes are distinct), so each
  // completed lane entered a sandbox exactly once.
  EXPECT_EQ(stats->deduped_lanes, 0u);
  EXPECT_GE(stats->invocations, completed.load());
  ASSERT_EQ(stats->devices.size(), 2u);
  for (const DeviceStats& d : stats->devices) EXPECT_EQ(d.pool_slots, 4u);
}

}  // namespace
}  // namespace watz::gateway
