// Gateway subsystem tests: session reuse (no re-attestation), module-cache
// hit/miss startup behaviour, LRU eviction under secure-heap pressure, and
// invoke dispatch across a multi-device fleet.
#include <gtest/gtest.h>

#include <chrono>

#include "core/device.hpp"
#include "gateway/gateway.hpp"
#include "wasm/builder.hpp"

namespace watz::gateway {
namespace {

core::DeviceConfig device_config(const std::string& hostname, std::uint8_t id) {
  core::DeviceConfig config;
  config.hostname = hostname;
  config.otpmk.fill(id);
  config.latency.enabled = false;
  return config;
}

/// Guest exporting add(a, b) -> a + b.
Bytes adder_app() {
  wasm::ModuleBuilder b;
  b.add_memory(1);
  const auto f = b.add_function({{wasm::ValType::I32, wasm::ValType::I32},
                                 {wasm::ValType::I32}});
  wasm::CodeEmitter e;
  e.local_get(0).local_get(1).op(wasm::kI32Add);
  b.set_body(f, e.bytes());
  b.export_function("add", f);
  return b.build();
}

/// Guest of ~`code_kb` KiB of unrolled arithmetic, exporting run() -> i64.
/// `salt` differentiates measurements.
Bytes sized_app(int code_kb, std::int64_t salt) {
  wasm::ModuleBuilder b;
  b.add_memory(1);
  wasm::CodeEmitter e;
  e.i64_const(salt);
  for (int i = 0; i < code_kb * 93; ++i)  // ~11 bytes per const+add pair
    e.i64_const(0x0102030405060708LL + i).op(wasm::kI64Add);
  const auto f = b.add_function({{}, {wasm::ValType::I64}});
  b.set_body(f, e.bytes());
  b.export_function("run", f);
  return b.build();
}

class GatewayTest : public ::testing::Test {
 protected:
  void SetUp() override { SetUpFleet(2); }

  void SetUpFleet(int devices, GatewayConfig config = {}) {
    vendor_ = core::Vendor::create(to_bytes("gw-vendor"));
    for (int i = 0; i < devices; ++i) {
      auto device = core::Device::boot(
          fabric_, vendor_, device_config("node-" + std::to_string(i),
                                          static_cast<std::uint8_t>(0x50 + i)));
      ASSERT_TRUE(device.ok()) << device.error();
      devices_.push_back(std::move(*device));
    }
    gateway_ = std::make_unique<Gateway>(fabric_, config, to_bytes("gw-identity"));
    ASSERT_TRUE(gateway_->start().ok());
    for (auto& device : devices_) ASSERT_TRUE(gateway_->add_device(*device).ok());
    client_ = std::make_unique<GatewayClient>(fabric_);
    ASSERT_TRUE(client_->connect(config.hostname, config.port).ok());
  }

  InvokeRequest add_request(std::uint64_t session, const crypto::Sha256Digest& m,
                            std::int32_t a, std::int32_t b) {
    InvokeRequest req;
    req.session_id = session;
    req.measurement = m;
    req.entry = "add";
    req.args = {wasm::Value::from_i32(a), wasm::Value::from_i32(b)};
    req.heap_bytes = 1 << 20;
    return req;
  }

  net::Fabric fabric_;
  core::Vendor vendor_;
  std::vector<std::unique_ptr<core::Device>> devices_;
  std::unique_ptr<Gateway> gateway_;
  std::unique_ptr<GatewayClient> client_;
};

TEST_F(GatewayTest, AttachAttestsFleetOnce) {
  auto attach = client_->attach("tenant-a");
  ASSERT_TRUE(attach.ok()) << attach.error();
  EXPECT_EQ(attach->devices_attested, 2u);
  // One fresh handshake per device, two fabric exchanges each.
  EXPECT_EQ(attach->ra_exchanges, 2 * kRaExchangesPerHandshake);
  EXPECT_EQ(gateway_->sessions().handshakes_run(), 2u);
}

TEST_F(GatewayTest, SessionReuseSkipsReattestation) {
  auto attach = client_->attach("tenant-a");
  ASSERT_TRUE(attach.ok()) << attach.error();
  const Bytes app = adder_app();
  auto load = client_->load_module(attach->session_id, app);
  ASSERT_TRUE(load.ok()) << load.error();

  const std::uint64_t handshakes_after_attach = gateway_->sessions().handshakes_run();
  const std::uint64_t fabric_messages_before = fabric_.messages();

  // Every invoke on the attached session rides the cached evidence: zero
  // additional RA exchanges, and the only fabric message is the request.
  for (int i = 0; i < 4; ++i) {
    auto r = client_->invoke(add_request(attach->session_id, load->measurement, i, 10));
    ASSERT_TRUE(r.ok()) << r.error();
    EXPECT_EQ(r->results.front().i32(), i + 10);
    EXPECT_EQ(r->ra_exchanges, 0u);
  }
  EXPECT_EQ(gateway_->sessions().handshakes_run(), handshakes_after_attach);
  EXPECT_EQ(fabric_.messages() - fabric_messages_before, 4u);
}

TEST_F(GatewayTest, SecondClientAttestsItsOwnSession) {
  auto a = client_->attach("tenant-a");
  ASSERT_TRUE(a.ok());
  GatewayClient other(fabric_);
  ASSERT_TRUE(other.connect("gateway", 7000).ok());
  auto b = other.attach("tenant-b");
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->session_id, b->session_id);
  // Trust is per tenant session, not ambient: the second attach re-proves.
  EXPECT_EQ(gateway_->sessions().handshakes_run(), 4u);
}

TEST_F(GatewayTest, BatchedAttachAmortisesRaRoundTrips) {
  const std::uint64_t fabric_messages_before = fabric_.messages();
  auto batch = client_->attach_all({"bt-0", "bt-1", "bt-2", "bt-3"});
  ASSERT_TRUE(batch.ok()) << batch.error();
  ASSERT_EQ(batch->results.size(), 4u);
  for (const AttachBatchResult& r : batch->results) {
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_NE(r.session_id, 0u);
    EXPECT_EQ(r.devices_attested, 2u);
    // Protocol cost per session is unchanged (2 exchanges per device)…
    EXPECT_EQ(r.ra_exchanges, 2u * kRaExchangesPerHandshake);
  }
  // …but the WIRE cost is per device, not per session: 2 RA round-trips
  // x 2 devices for all 4 sessions (unbatched: 2 x 2 x 4 = 16).
  EXPECT_EQ(batch->ra_fabric_exchanges, 4u);
  // And those 4 RA exchanges (+ 1 ATTACH_BATCH request) are the only
  // fabric traffic the whole batch generated.
  EXPECT_EQ(fabric_.messages() - fabric_messages_before, 5u);

  // Each batched session is a first-class session: invokes ride its
  // cached evidence with zero further RA exchanges.
  const Bytes app = adder_app();
  auto load = client_->load_module(batch->results[0].session_id, app);
  ASSERT_TRUE(load.ok()) << load.error();
  for (const AttachBatchResult& r : batch->results) {
    auto inv = client_->invoke(add_request(r.session_id, load->measurement, 7, 5));
    ASSERT_TRUE(inv.ok()) << inv.error();
    EXPECT_EQ(inv->results.front().i32(), 12);
    EXPECT_EQ(inv->ra_exchanges, 0u);
  }

  auto stats = client_->stats(batch->results[0].session_id);
  ASSERT_TRUE(stats.ok()) << stats.error();
  EXPECT_EQ(stats->handshakes_run, 8u);  // 4 sessions x 2 devices
  // Per-shard counters travel the wire and reconcile with the ledger.
  ASSERT_EQ(stats->ra_shards.size(), gateway_->config().ra_shards);
  std::uint64_t shard_handshakes = 0;
  for (const RaShardStats& s : stats->ra_shards) shard_handshakes += s.handshakes;
  EXPECT_EQ(shard_handshakes, stats->handshakes_run);
  // Queueing-delay percentiles are live once work items have run.
  EXPECT_GT(stats->queue_delay_p50_ns, 0u);
  EXPECT_GE(stats->queue_delay_p99_ns, stats->queue_delay_p50_ns);
}

/// Single-device fleet: deterministic placement for staleness tests.
class GatewaySingleDeviceTest : public GatewayTest {
 protected:
  void SetUp() override { SetUpFleet(1); }
};

TEST_F(GatewaySingleDeviceTest, RebootedDeviceIsReattested) {
  auto attach = client_->attach("tenant-a");
  ASSERT_TRUE(attach.ok());
  auto load = client_->load_module(attach->session_id, adder_app());
  ASSERT_TRUE(load.ok());

  // Simulate a board swap/reboot: the boot count bumps, so the session's
  // cached evidence is stale and the next invoke re-proves the device.
  ASSERT_TRUE(gateway_->add_device(*devices_[0]).ok());
  auto r = client_->invoke(add_request(attach->session_id, load->measurement, 2, 3));
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r->ra_exchanges, kRaExchangesPerHandshake);
  auto again = client_->invoke(add_request(attach->session_id, load->measurement, 2, 3));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->ra_exchanges, 0u);  // fresh evidence cached again
}

TEST_F(GatewaySingleDeviceTest, EvidenceTtlForcesReattestation) {
  // A second gateway on the same fabric, with instant evidence expiry.
  GatewayConfig config;
  config.hostname = "gateway-ttl";
  config.port = 7100;
  config.ra_port = 7101;
  config.session_policy.evidence_ttl_ns = 1;
  Gateway gateway(fabric_, config, to_bytes("gw-ttl-identity"));
  ASSERT_TRUE(gateway.start().ok());
  ASSERT_TRUE(gateway.add_device(*devices_[0]).ok());
  GatewayClient client(fabric_);
  ASSERT_TRUE(client.connect("gateway-ttl", 7100).ok());

  auto attach = client.attach("tenant-a");
  ASSERT_TRUE(attach.ok());
  auto load = client.load_module(attach->session_id, adder_app());
  ASSERT_TRUE(load.ok());
  auto r = client.invoke(add_request(attach->session_id, load->measurement, 1, 1));
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r->ra_exchanges, kRaExchangesPerHandshake)
      << "expired evidence must be re-collected";
}

TEST_F(GatewayTest, InvokeDispatchesAcrossDevices) {
  auto attach = client_->attach("tenant-a");
  ASSERT_TRUE(attach.ok());
  auto load = client_->load_module(attach->session_id, adder_app());
  ASSERT_TRUE(load.ok());

  // A concurrent fan (one INVOKE_BATCH admission pass) must spread over
  // the whole fleet: admission bumps inflight, so lane k's cost already
  // sees lanes 0..k-1 and the batch walks down the fleet's cost gradient.
  // (Distinct args per lane — identical lanes would dedup instead.)
  std::vector<InvokeRequest> batch;
  for (int i = 0; i < 8; ++i)
    batch.push_back(add_request(attach->session_id, load->measurement, i, i));
  std::map<std::string, int> placements;
  for (auto& r : client_->invoke_all(batch)) {
    ASSERT_TRUE(r.ok()) << r.error();
    ++placements[r->device];
  }
  EXPECT_EQ(placements.size(), 2u);
  for (const auto& [device, count] : placements) EXPECT_GT(count, 0) << device;

  auto stats = client_->stats(attach->session_id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->invocations, 8u);
  ASSERT_EQ(stats->devices.size(), 2u);
  for (const DeviceStats& d : stats->devices) {
    EXPECT_GT(d.invocations, 0u);
    EXPECT_GE(d.queue_depth_peak, 1u);
    EXPECT_EQ(d.pool_slots, 1u);  // default config: one slot per device
    ASSERT_EQ(d.slots.size(), 1u);
    EXPECT_EQ(d.slots[0].invocations, d.invocations);
  }

  // Sequential invokes of one session, by contrast, follow the session's
  // slot-affinity hint onto their warm slot: same device every time, warm
  // pool hits after the first.
  std::map<std::string, int> sequential;
  for (int i = 0; i < 4; ++i) {
    auto r = client_->invoke(add_request(attach->session_id, load->measurement, i, 1));
    ASSERT_TRUE(r.ok()) << r.error();
    EXPECT_TRUE(r->pool_hit);
    ++sequential[r->device];
  }
  EXPECT_EQ(sequential.size(), 1u);
}

TEST_F(GatewayTest, UnknownSessionAndModuleAreRejected) {
  auto attach = client_->attach("tenant-a");
  ASSERT_TRUE(attach.ok());
  auto load = client_->load_module(attach->session_id, adder_app());
  ASSERT_TRUE(load.ok());

  auto bad_session = client_->invoke(add_request(999, load->measurement, 1, 1));
  EXPECT_FALSE(bad_session.ok());

  crypto::Sha256Digest unknown{};
  auto bad_module = client_->invoke(add_request(attach->session_id, unknown, 1, 1));
  EXPECT_FALSE(bad_module.ok());

  ASSERT_TRUE(client_->detach(attach->session_id).ok());
  auto after_detach =
      client_->invoke(add_request(attach->session_id, load->measurement, 1, 1));
  EXPECT_FALSE(after_detach.ok());
}

TEST_F(GatewayTest, SubmitPollDeliversAsyncResult) {
  auto attach = client_->attach("tenant-a");
  ASSERT_TRUE(attach.ok());
  auto load = client_->load_module(attach->session_id, adder_app());
  ASSERT_TRUE(load.ok());

  auto submitted = client_->submit(add_request(attach->session_id, load->measurement, 20, 3));
  ASSERT_TRUE(submitted.ok()) << submitted.error();
  ASSERT_NE(submitted->ticket, 0u);

  PollResponse done;
  for (;;) {
    auto polled = client_->poll(attach->session_id, submitted->ticket);
    ASSERT_TRUE(polled.ok()) << polled.error();
    if (polled->ready) {
      done = std::move(*polled);
      break;
    }
  }
  EXPECT_TRUE(done.error.empty()) << done.error;
  ASSERT_FALSE(done.result.results.empty());
  EXPECT_EQ(done.result.results.front().i32(), 23);

  // A ticket is redeemed exactly once.
  auto again = client_->poll(attach->session_id, submitted->ticket);
  EXPECT_FALSE(again.ok());
}

TEST_F(GatewayTest, InvokeBatchPipelinesInOrder) {
  auto attach = client_->attach("tenant-a");
  ASSERT_TRUE(attach.ok());
  auto load = client_->load_module(attach->session_id, adder_app());
  ASSERT_TRUE(load.ok());

  std::vector<InvokeRequest> batch;
  for (int i = 0; i < 12; ++i)
    batch.push_back(add_request(attach->session_id, load->measurement, i, 100));
  auto results = client_->invoke_batch(batch);
  ASSERT_EQ(results.size(), batch.size());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].error();
    EXPECT_EQ(results[i]->results.front().i32(), i + 100);  // order preserved
  }
  auto stats = client_->stats(attach->session_id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->invocations, 12u);
}

TEST_F(GatewayTest, InvokeBatchFansOutInOneExchange) {
  auto attach = client_->attach("tenant-a");
  ASSERT_TRUE(attach.ok());
  auto load = client_->load_module(attach->session_id, adder_app());
  ASSERT_TRUE(load.ok());
  // Warm both devices so the timed batch is pure dispatch.
  for (int i = 0; i < 4; ++i) {
    auto r = client_->invoke(add_request(attach->session_id, load->measurement, i, 0));
    ASSERT_TRUE(r.ok()) << r.error();
  }

  const std::uint64_t fabric_messages_before = fabric_.messages();
  std::vector<InvokeRequest> batch;
  for (int i = 0; i < 12; ++i)
    batch.push_back(add_request(attach->session_id, load->measurement, i, 200));
  auto results = client_->invoke_all(batch);
  // The whole 12-lane batch crossed the wire ONCE — the amortisation
  // INVOKE_BATCH exists for (SUBMIT/POLL pays >= 2 exchanges per item).
  EXPECT_EQ(fabric_.messages() - fabric_messages_before, 1u);
  ASSERT_EQ(results.size(), batch.size());
  for (int i = 0; i < 12; ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].error();
    EXPECT_EQ(results[i]->results.front().i32(), i + 200);  // order preserved
  }
  auto stats = client_->stats(attach->session_id);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->invocations, 16u);
}

TEST_F(GatewayTest, InvokeBatchReportsFailedIndexes) {
  auto attach = client_->attach("tenant-a");
  ASSERT_TRUE(attach.ok());
  auto load = client_->load_module(attach->session_id, adder_app());
  ASSERT_TRUE(load.ok());

  std::vector<InvokeRequest> batch;
  batch.push_back(add_request(attach->session_id, load->measurement, 1, 1));
  batch.push_back(add_request(999, load->measurement, 2, 2));  // unknown session
  crypto::Sha256Digest unknown{};
  batch.push_back(add_request(attach->session_id, unknown, 3, 3));  // no module
  batch.push_back(add_request(attach->session_id, load->measurement, 4, 4));
  auto results = client_->invoke_all(batch);
  ASSERT_EQ(results.size(), 4u);
  // Partial success: the bad lanes fail at THEIR indexes, the good lanes
  // execute normally.
  EXPECT_TRUE(results[0].ok()) << results[0].error();
  EXPECT_EQ(results[0]->results.front().i32(), 2);
  ASSERT_FALSE(results[1].ok());
  EXPECT_NE(results[1].error().find("unknown session"), std::string::npos);
  EXPECT_FALSE(results[2].ok());
  EXPECT_TRUE(results[3].ok()) << results[3].error();
  EXPECT_EQ(results[3]->results.front().i32(), 8);
}

TEST_F(GatewayTest, AsyncClientFuturesRoundTrip) {
  // The future-returning API end to end: attach, load and a fan of
  // invokes all in flight concurrently, fulfilled by the drain thread.
  auto attach = client_->attach_async("tenant-async").get();
  ASSERT_TRUE(attach.ok()) << attach.error();
  auto load = client_->load_async(attach->session_id, adder_app()).get();
  ASSERT_TRUE(load.ok()) << load.error();

  std::vector<std::future<Result<InvokeResponse>>> inflight;
  for (int i = 0; i < 6; ++i)
    inflight.push_back(client_->invoke_async(
        add_request(attach->session_id, load->measurement, i, 30)));
  for (int i = 0; i < 6; ++i) {
    auto r = inflight[static_cast<std::size_t>(i)].get();
    ASSERT_TRUE(r.ok()) << r.error();
    EXPECT_EQ(r->results.front().i32(), i + 30);
  }

  // invoke_batch_async: every index completes exactly once, with its own
  // result, via the completion callback on the drain thread.
  std::vector<InvokeRequest> batch;
  for (int i = 0; i < 40; ++i)  // > kInvokeBatchChunk: exercises chunking
    batch.push_back(add_request(attach->session_id, load->measurement, i, 500));
  std::mutex mu;
  std::condition_variable cv;
  std::size_t completed = 0;
  std::vector<int> values(batch.size(), -1);
  Status issued = client_->invoke_batch_async(
      batch, [&](std::size_t index, Result<InvokeResponse> result) {
        std::lock_guard<std::mutex> lock(mu);
        ASSERT_LT(index, values.size());
        EXPECT_EQ(values[index], -1) << "index completed twice";
        values[index] = result.ok() ? result->results.front().i32() : -2;
        ++completed;
        cv.notify_one();
      });
  ASSERT_TRUE(issued.ok()) << issued.error();
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(30),
                            [&] { return completed == batch.size(); }));
  }
  for (int i = 0; i < 40; ++i) EXPECT_EQ(values[static_cast<std::size_t>(i)], i + 500);
}

TEST_F(GatewayTest, CloseHookDetachesConnectionSessions) {
  auto keeper = client_->attach("tenant-keeper");
  ASSERT_TRUE(keeper.ok());

  std::uint64_t dropped_session = 0;
  {
    GatewayClient doomed(fabric_);
    ASSERT_TRUE(doomed.connect("gateway", 7000).ok());
    auto attach = doomed.attach("tenant-doomed");
    ASSERT_TRUE(attach.ok());
    dropped_session = attach->session_id;
    EXPECT_EQ(gateway_->sessions().active(), 2u);
  }  // destructor closes the connection -> fabric CloseHook fires

  // The dropped connection took its session with it; the other survives.
  EXPECT_EQ(gateway_->sessions().active(), 1u);
  auto load = client_->load_module(keeper->session_id, adder_app());
  ASSERT_TRUE(load.ok());
  auto orphaned =
      client_->invoke(add_request(dropped_session, load->measurement, 1, 1));
  EXPECT_FALSE(orphaned.ok());
  auto kept = client_->invoke(add_request(keeper->session_id, load->measurement, 1, 1));
  EXPECT_TRUE(kept.ok()) << kept.error();
}

/// One device whose world-switch latency is 2 ms and device-side (the
/// worker sleeps through it): the run queue drains at a bounded, known
/// pace, giving admission-bound and detach races a deterministic window.
class GatewaySlowDeviceTest : public GatewayTest {
 protected:
  void SetUp() override {
    GatewayConfig config;
    config.worker_queue_capacity = 2;
    vendor_ = core::Vendor::create(to_bytes("gw-vendor"));
    core::DeviceConfig cfg = device_config("slow-0", 0x70);
    cfg.latency.enabled = true;
    cfg.latency.device_side = true;
    cfg.latency.smc_enter_ns = 2'000'000;
    cfg.latency.smc_leave_ns = 0;
    cfg.latency.supplicant_rpc_ns = 0;
    cfg.latency.time_rpc_ns = 0;
    auto device = core::Device::boot(fabric_, vendor_, cfg);
    ASSERT_TRUE(device.ok()) << device.error();
    devices_.push_back(std::move(*device));
    gateway_ = std::make_unique<Gateway>(fabric_, config, to_bytes("gw-identity"));
    ASSERT_TRUE(gateway_->start().ok());
    ASSERT_TRUE(gateway_->add_device(*devices_[0]).ok());
    client_ = std::make_unique<GatewayClient>(fabric_);
    ASSERT_TRUE(client_->connect(config.hostname, config.port).ok());
  }

  /// Polls `ticket` to completion and returns the terminal response.
  PollResponse redeem(std::uint64_t session, std::uint64_t ticket) {
    for (;;) {
      auto polled = client_->poll(session, ticket);
      if (!polled.ok()) {
        PollResponse failed;
        failed.ready = true;
        failed.error = polled.error();
        return failed;
      }
      if (polled->ready) return std::move(*polled);
    }
  }
};

TEST_F(GatewaySlowDeviceTest, QueueFullBackpressure) {
  auto attach = client_->attach("tenant-a");
  ASSERT_TRUE(attach.ok()) << attach.error();
  auto load = client_->load_module(attach->session_id, adder_app());
  ASSERT_TRUE(load.ok());

  // Capacity 2 == queued + executing: the third admission must bounce.
  // The worker needs >= 2 ms per item while a submit takes microseconds,
  // so the queue cannot drain under us.
  auto first = client_->submit(add_request(attach->session_id, load->measurement, 1, 1));
  ASSERT_TRUE(first.ok()) << first.error();
  auto second = client_->submit(add_request(attach->session_id, load->measurement, 2, 2));
  ASSERT_TRUE(second.ok()) << second.error();

  auto bounced = client_->submit(add_request(attach->session_id, load->measurement, 3, 3));
  ASSERT_FALSE(bounced.ok());
  EXPECT_TRUE(is_queue_full(bounced.error())) << bounced.error();
  // invoke() absorbs QUEUE_FULL with jittered backoff by default; retries
  // disabled exposes the raw rejection the envelope carries.
  client_->set_backoff(GatewayClient::BackoffConfig{.max_retries = 0});
  auto bounced_sync =
      client_->invoke(add_request(attach->session_id, load->measurement, 4, 4));
  ASSERT_FALSE(bounced_sync.ok());
  EXPECT_TRUE(is_queue_full(bounced_sync.error())) << bounced_sync.error();

  // With the backoff curve restored, the same invoke rides out the full
  // queue: the retries outlive the worker's 2 ms/item drain. (Bounded
  // outer loop: full jitter makes a single invoke's total sleep random,
  // and this test must not flake on an unlucky run of tiny draws.)
  client_->set_backoff(GatewayClient::BackoffConfig{});
  auto absorbed =
      client_->invoke(add_request(attach->session_id, load->measurement, 6, 6));
  for (int attempt = 0; attempt < 20 && !absorbed.ok(); ++attempt) {
    if (!is_queue_full(absorbed.error())) break;
    absorbed =
        client_->invoke(add_request(attach->session_id, load->measurement, 6, 6));
  }
  EXPECT_TRUE(absorbed.ok()) << absorbed.error();

  // Draining the queue reopens admission.
  EXPECT_TRUE(redeem(attach->session_id, first->ticket).error.empty());
  EXPECT_TRUE(redeem(attach->session_id, second->ticket).error.empty());
  auto admitted =
      client_->invoke(add_request(attach->session_id, load->measurement, 5, 5));
  EXPECT_TRUE(admitted.ok()) << admitted.error();

  auto stats = client_->stats(attach->session_id);
  ASSERT_TRUE(stats.ok());
  EXPECT_GE(stats->queue_full_rejections, 2u);
}

TEST_F(GatewaySlowDeviceTest, DetachFailsQueuedWorkInsteadOfRacingIt) {
  auto attach = client_->attach("tenant-a");
  ASSERT_TRUE(attach.ok()) << attach.error();
  auto load = client_->load_module(attach->session_id, adder_app());
  ASSERT_TRUE(load.ok());

  // Fill the queue (one executing, one queued), then detach while both
  // are in flight: the queued item must observe the closed session and
  // fail instead of executing against dropped state.
  auto first = client_->submit(add_request(attach->session_id, load->measurement, 1, 1));
  ASSERT_TRUE(first.ok());
  auto second = client_->submit(add_request(attach->session_id, load->measurement, 2, 2));
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(client_->detach(attach->session_id).ok());

  // The session is gone for new work immediately...
  auto rejected =
      client_->invoke(add_request(attach->session_id, load->measurement, 3, 3));
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(gateway_->sessions().active(), 0u);

  // ...but the drained tickets stay redeemable: the executing item may
  // complete, the queued one fails with the detach (never crashes or
  // touches freed session state — the worker holds its own reference).
  const PollResponse first_done = redeem(attach->session_id, first->ticket);
  const PollResponse second_done = redeem(attach->session_id, second->ticket);
  EXPECT_NE(second_done.error.find("session detached"), std::string::npos)
      << second_done.error;
  if (!first_done.error.empty()) {
    EXPECT_NE(first_done.error.find("session detached"), std::string::npos);
  }
}

TEST_F(GatewaySlowDeviceTest, AsyncFuturesResolveOnDetach) {
  auto attach = client_->attach("tenant-a");
  ASSERT_TRUE(attach.ok()) << attach.error();
  auto load = client_->load_module(attach->session_id, adder_app());
  ASSERT_TRUE(load.ok());
  // A second session keeps a STATS window open after the detach.
  GatewayClient watcher(fabric_);
  ASSERT_TRUE(watcher.connect("gateway", 7000).ok());
  auto keeper = watcher.attach("tenant-watcher");
  ASSERT_TRUE(keeper.ok());

  // Fill the slow device's queue (capacity 2: one executing, one queued)
  // through the async API, then detach with both in flight. Wait for both
  // admissions via the depth peak so the detach deterministically catches
  // a queued item.
  auto first =
      client_->invoke_async(add_request(attach->session_id, load->measurement, 1, 1));
  auto second =
      client_->invoke_async(add_request(attach->session_id, load->measurement, 2, 2));
  for (int spin = 0; spin < 2000; ++spin) {
    auto stats = watcher.stats(keeper->session_id);
    ASSERT_TRUE(stats.ok());
    if (stats->devices[0].queue_depth_peak >= 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(client_->detach(attach->session_id).ok());

  // Every issued future resolves — nothing hangs, nothing is abandoned.
  // The queued item observes the closed session and fails; the executing
  // one may legitimately finish first.
  auto first_result = first.get();
  auto second_result = second.get();
  ASSERT_FALSE(second_result.ok());
  EXPECT_NE(second_result.error().find("session detached"), std::string::npos)
      << second_result.error();
  if (!first_result.ok()) {
    EXPECT_NE(first_result.error().find("session detached"), std::string::npos)
        << first_result.error();
  }

  // New async work on the dead session fails fast through the future too.
  auto after = client_->invoke_async(
      add_request(attach->session_id, load->measurement, 3, 3));
  auto after_result = after.get();
  ASSERT_FALSE(after_result.ok());
  EXPECT_NE(after_result.error().find("unknown session"), std::string::npos);

  // And close() retires the drain thread with every completion fulfilled
  // (would deadlock or leak a thread otherwise — TSan/ASan would flag it).
  client_->close();
}

/// Heterogeneous fleet: one fast board and one deliberately slowed board
/// (3 ms device-side world switch). After warm-up the EWMA placement
/// model must route batch lanes around the slow device.
class GatewayHeterogeneousFleetTest : public GatewayTest {
 protected:
  void SetUp() override {
    vendor_ = core::Vendor::create(to_bytes("gw-vendor"));
    auto fast = core::Device::boot(fabric_, vendor_, device_config("fast-0", 0x80));
    ASSERT_TRUE(fast.ok()) << fast.error();
    devices_.push_back(std::move(*fast));
    core::DeviceConfig slow_cfg = device_config("slow-1", 0x81);
    slow_cfg.latency.enabled = true;
    slow_cfg.latency.device_side = true;
    slow_cfg.latency.smc_enter_ns = 3'000'000;
    slow_cfg.latency.smc_leave_ns = 0;
    slow_cfg.latency.supplicant_rpc_ns = 0;
    slow_cfg.latency.time_rpc_ns = 0;
    auto slow = core::Device::boot(fabric_, vendor_, slow_cfg);
    ASSERT_TRUE(slow.ok()) << slow.error();
    devices_.push_back(std::move(*slow));
    gateway_ = std::make_unique<Gateway>(fabric_, GatewayConfig{},
                                         to_bytes("gw-identity"));
    ASSERT_TRUE(gateway_->start().ok());
    for (auto& device : devices_) ASSERT_TRUE(gateway_->add_device(*device).ok());
    client_ = std::make_unique<GatewayClient>(fabric_);
    ASSERT_TRUE(client_->connect("gateway", 7000).ok());
  }
};

TEST_F(GatewayHeterogeneousFleetTest, EwmaPlacementRoutesAroundSlowDevice) {
  auto attach = client_->attach("tenant-a");
  ASSERT_TRUE(attach.ok()) << attach.error();
  auto load = client_->load_module(attach->session_id, adder_app());
  ASSERT_TRUE(load.ok());

  // Warm-up: an unsampled device scores optimistically, so a first small
  // batch probes both boards and seeds their EWMAs (the slow board's
  // first sample is >= its 3 ms world switch).
  std::vector<InvokeRequest> warm;
  for (int i = 0; i < 6; ++i)
    warm.push_back(add_request(attach->session_id, load->measurement, i, 0));
  for (auto& r : client_->invoke_all(warm)) ASSERT_TRUE(r.ok()) << r.error();

  // The measured batch: placement_cost = (depth + 1) x EWMA must steer
  // the fan towards the fast board — the slow one receives fewer lanes.
  std::vector<InvokeRequest> batch;
  for (int i = 0; i < 24; ++i)
    batch.push_back(add_request(attach->session_id, load->measurement, i, 50));
  std::map<std::string, int> placements;
  for (auto& r : client_->invoke_all(batch)) {
    ASSERT_TRUE(r.ok()) << r.error();
    ++placements[r->device];
  }
  EXPECT_GT(placements["fast-0"], placements["slow-1"])
      << "fast=" << placements["fast-0"] << " slow=" << placements["slow-1"];
}

/// Module cache unit coverage against a real device runtime.
class ModuleCacheTest : public ::testing::Test {
 protected:
  void SetUp() override {
    vendor_ = core::Vendor::create(to_bytes("cache-vendor"));
    auto device = core::Device::boot(fabric_, vendor_, device_config("cache", 0x61));
    ASSERT_TRUE(device.ok()) << device.error();
    device_ = std::move(*device);
  }

  core::AppConfig small_heap() {
    core::AppConfig config;
    config.heap_bytes = 64 * 1024;
    return config;
  }

  net::Fabric fabric_;
  core::Vendor vendor_;
  std::unique_ptr<core::Device> device_;
};

TEST_F(ModuleCacheTest, HitSkipsLoadingPhase) {
  ModuleCache cache(device_->runtime());
  const Bytes app = adder_app();
  const crypto::Sha256Digest m = crypto::sha256(app);

  auto cold = cache.acquire(m, app, small_heap());
  ASSERT_TRUE(cold.ok()) << cold.error();
  EXPECT_FALSE(cold->module_cache_hit);
  // Cold startup paid the full pipeline, Loading included.
  const core::StartupBreakdown& prepared_cost = cold->app->prepared()->load_cost();
  EXPECT_GT(prepared_cost.loading_ns, 0u);
  EXPECT_GT(prepared_cost.hashing_ns, 0u);

  auto warm = cache.acquire(m, {}, small_heap());
  ASSERT_TRUE(warm.ok()) << warm.error();
  EXPECT_TRUE(warm->module_cache_hit);
  EXPECT_FALSE(warm->pool_hit);
  // Warm startup never re-entered the Loading/Hashing phases.
  EXPECT_EQ(warm->app->startup().loading_ns, 0u);
  EXPECT_EQ(warm->app->startup().hashing_ns, 0u);
  EXPECT_GT(warm->app->startup().instantiate_ns, 0u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);

  // Both instances are live and isolated; invoking works on each.
  auto args = std::vector<wasm::Value>{wasm::Value::from_i32(20),
                                       wasm::Value::from_i32(3)};
  auto r = warm->app->invoke("add", args);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->front().i32(), 23);
}

TEST_F(ModuleCacheTest, ReleaseWarmsThePool) {
  ModuleCache cache(device_->runtime());
  const Bytes app = adder_app();
  const crypto::Sha256Digest m = crypto::sha256(app);

  auto first = cache.acquire(m, app, small_heap());
  ASSERT_TRUE(first.ok());
  cache.release(std::move(first->app));

  auto pooled = cache.acquire(m, {}, small_heap());
  ASSERT_TRUE(pooled.ok());
  EXPECT_TRUE(pooled->pool_hit);
  EXPECT_EQ(pooled->launch_ns, 0u);  // nothing was launched at all
  EXPECT_EQ(cache.pool_hits(), 1u);
}

TEST_F(ModuleCacheTest, LruEvictionUnderHeapPressure) {
  ModuleCacheConfig config;
  config.budget_bytes = 150 * 1024;  // fits one ~100 KiB module, not two
  ModuleCache cache(device_->runtime(), config);

  const Bytes app_a = sized_app(96, 1);
  const Bytes app_b = sized_app(96, 2);
  const crypto::Sha256Digest ma = crypto::sha256(app_a);
  const crypto::Sha256Digest mb = crypto::sha256(app_b);
  ASSERT_GT(app_a.size(), 90u * 1024);

  ASSERT_TRUE(cache.acquire(ma, app_a, small_heap()).ok());
  EXPECT_TRUE(cache.contains(ma));

  // B does not fit next to A: the LRU entry (A) is evicted.
  ASSERT_TRUE(cache.acquire(mb, app_b, small_heap()).ok());
  EXPECT_TRUE(cache.contains(mb));
  EXPECT_FALSE(cache.contains(ma));
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_LE(cache.charged_bytes(), config.budget_bytes);

  // A comes back on demand -- a cold miss again, evicting B in turn.
  ASSERT_TRUE(cache.acquire(ma, app_a, small_heap()).ok());
  EXPECT_FALSE(cache.contains(mb));
  EXPECT_EQ(cache.evictions(), 2u);

  // Touch order decides the victim: with a budget for two small modules,
  // the least recently used one goes.
  ModuleCacheConfig roomy;
  roomy.budget_bytes = 210 * 1024;  // fits two ~100 KiB modules, not three
  ModuleCache lru(device_->runtime(), roomy);
  const Bytes small_a = sized_app(96, 3);
  const Bytes small_b = sized_app(96, 4);
  const Bytes small_c = sized_app(96, 5);
  ASSERT_TRUE(lru.acquire(crypto::sha256(small_a), small_a, small_heap()).ok());
  ASSERT_TRUE(lru.acquire(crypto::sha256(small_b), small_b, small_heap()).ok());
  ASSERT_TRUE(lru.acquire(crypto::sha256(small_a), {}, small_heap()).ok());  // touch A
  ASSERT_TRUE(lru.acquire(crypto::sha256(small_c), small_c, small_heap()).ok());
  EXPECT_TRUE(lru.contains(crypto::sha256(small_a)));
  EXPECT_FALSE(lru.contains(crypto::sha256(small_b)));  // LRU victim
}

TEST_F(ModuleCacheTest, PooledInstancesAreScrubbedBetweenTenants) {
  // poke(v) writes v to mem[0]; peek() reads mem[0]. A pooled instance
  // must not carry one tenant's writes to the next.
  wasm::ModuleBuilder b;
  b.add_memory(1);
  const auto poke = b.add_function({{wasm::ValType::I32}, {}});
  {
    wasm::CodeEmitter e;
    e.i32_const(0).local_get(0).store(wasm::kI32Store, 0);
    b.set_body(poke, e.bytes());
  }
  b.export_function("poke", poke);
  const auto peek = b.add_function({{}, {wasm::ValType::I32}});
  {
    wasm::CodeEmitter e;
    e.i32_const(0).load(wasm::kI32Load, 0);
    b.set_body(peek, e.bytes());
  }
  b.export_function("peek", peek);
  const Bytes app = b.build();
  const crypto::Sha256Digest m = crypto::sha256(app);

  ModuleCache cache(device_->runtime());
  auto first = cache.acquire(m, app, small_heap());
  ASSERT_TRUE(first.ok()) << first.error();
  const wasm::Value v = wasm::Value::from_i32(1234);
  ASSERT_TRUE(first->app->invoke("poke", std::span<const wasm::Value>(&v, 1)).ok());
  cache.release(std::move(first->app));

  auto second = cache.acquire(m, {}, small_heap());
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->pool_hit);
  auto r = second->app->invoke("peek", {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->front().i32(), 0) << "guest state leaked through the warm pool";
}

TEST_F(ModuleCacheTest, PoolHitRequiresMatchingHeap) {
  ModuleCache cache(device_->runtime());
  const Bytes app = adder_app();
  const crypto::Sha256Digest m = crypto::sha256(app);

  auto first = cache.acquire(m, app, small_heap());
  ASSERT_TRUE(first.ok());
  cache.release(std::move(first->app));

  core::AppConfig bigger;
  bigger.heap_bytes = 256 * 1024;  // differs from the pooled 64 KiB instance
  auto mismatch = cache.acquire(m, {}, bigger);
  ASSERT_TRUE(mismatch.ok());
  EXPECT_FALSE(mismatch->pool_hit) << "pooled instance has the wrong heap size";
  EXPECT_TRUE(mismatch->module_cache_hit);
  EXPECT_EQ(mismatch->app->heap_bytes(), bigger.heap_bytes);

  auto match = cache.acquire(m, {}, small_heap());
  ASSERT_TRUE(match.ok());
  EXPECT_TRUE(match->pool_hit);
}

TEST_F(ModuleCacheTest, ColdMissWithoutBinaryFails) {
  ModuleCache cache(device_->runtime());
  crypto::Sha256Digest unknown{};
  auto r = cache.acquire(unknown, {}, small_heap());
  EXPECT_FALSE(r.ok());
}

/// Wire protocol round-trips.
TEST(GatewayProtocolTest, RoundTrips) {
  InvokeRequest req;
  req.session_id = 42;
  req.measurement.fill(0xAB);
  req.entry = "add";
  req.args = {wasm::Value::from_i32(-7), wasm::Value::from_i64(1LL << 40)};
  req.heap_bytes = 123456;
  auto req2 = InvokeRequest::decode(req.encode());
  ASSERT_TRUE(req2.ok()) << req2.error();
  EXPECT_EQ(req2->session_id, 42u);
  EXPECT_EQ(req2->measurement, req.measurement);
  EXPECT_EQ(req2->entry, "add");
  ASSERT_EQ(req2->args.size(), 2u);
  EXPECT_EQ(req2->args[0].i32(), -7);
  EXPECT_EQ(req2->args[1].i64(), 1LL << 40);
  EXPECT_EQ(req2->heap_bytes, 123456u);

  InvokeResponse resp;
  resp.results = {wasm::Value::from_i32(9)};
  resp.device = "node-1";
  resp.module_cache_hit = true;
  resp.launch_ns = 777;
  resp.invoke_ns = 888;
  resp.ra_exchanges = 2;
  auto resp2 = InvokeResponse::decode(resp.encode());
  ASSERT_TRUE(resp2.ok()) << resp2.error();
  EXPECT_EQ(resp2->results.front().i32(), 9);
  EXPECT_EQ(resp2->device, "node-1");
  EXPECT_TRUE(resp2->module_cache_hit);
  EXPECT_FALSE(resp2->pool_hit);
  EXPECT_EQ(resp2->launch_ns, 777u);
  EXPECT_EQ(resp2->ra_exchanges, 2u);

  GatewayStats stats;
  stats.sessions_active = 1;
  stats.handshakes_run = 4;
  DeviceStats node0;
  node0.hostname = "node-0";
  node0.boot_count = 1;
  node0.invocations = 10;
  node0.busy_ns = 999;
  node0.queue_depth_peak = 3;
  node0.secure_heap_in_use = 4096;
  node0.cache_hits = 5;
  node0.cache_misses = 6;
  node0.cache_evictions = 7;
  node0.pool_hits = 8;
  stats.devices.push_back(std::move(node0));
  auto stats2 = GatewayStats::decode(stats.encode());
  ASSERT_TRUE(stats2.ok()) << stats2.error();
  EXPECT_EQ(stats2->sessions_active, 1u);
  EXPECT_EQ(stats2->handshakes_run, 4u);
  ASSERT_EQ(stats2->devices.size(), 1u);
  EXPECT_EQ(stats2->devices[0].hostname, "node-0");
  EXPECT_EQ(stats2->devices[0].queue_depth_peak, 3u);
  EXPECT_EQ(stats2->devices[0].pool_hits, 8u);

  // Error envelopes surface the message.
  auto err = open_envelope(err_envelope("boom"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error(), "boom");

  // Backpressure rides its own status byte and is client-detectable.
  auto busy = open_envelope(busy_envelope("node-0 run queue at capacity"));
  ASSERT_FALSE(busy.ok());
  EXPECT_TRUE(is_queue_full(busy.error())) << busy.error();
  EXPECT_FALSE(is_queue_full(err.error()));

  // Async submit/poll round-trips.
  SubmitRequest sub{req};
  auto sub2 = SubmitRequest::decode(sub.encode());
  ASSERT_TRUE(sub2.ok()) << sub2.error();
  EXPECT_EQ(sub2->invoke.session_id, 42u);
  EXPECT_EQ(sub2->invoke.entry, "add");
  EXPECT_EQ(sub2->invoke.args.size(), 2u);

  auto ticket = SubmitResponse::decode(SubmitResponse{777}.encode());
  ASSERT_TRUE(ticket.ok());
  EXPECT_EQ(ticket->ticket, 777u);

  PollRequest poll_req{9, 777};
  auto poll2 = PollRequest::decode(poll_req.encode());
  ASSERT_TRUE(poll2.ok());
  EXPECT_EQ(poll2->session_id, 9u);
  EXPECT_EQ(poll2->ticket, 777u);

  PollResponse pending;
  auto pending2 = PollResponse::decode(pending.encode());
  ASSERT_TRUE(pending2.ok());
  EXPECT_FALSE(pending2->ready);

  PollResponse completed;
  completed.ready = true;
  completed.result = resp;
  auto completed2 = PollResponse::decode(completed.encode());
  ASSERT_TRUE(completed2.ok()) << completed2.error();
  EXPECT_TRUE(completed2->ready);
  EXPECT_TRUE(completed2->error.empty());
  EXPECT_EQ(completed2->result.device, "node-1");
  EXPECT_EQ(completed2->result.results.front().i32(), 9);

  PollResponse failed;
  failed.ready = true;
  failed.error = "gateway: session detached";
  auto failed2 = PollResponse::decode(failed.encode());
  ASSERT_TRUE(failed2.ok());
  EXPECT_TRUE(failed2->ready);
  EXPECT_EQ(failed2->error, "gateway: session detached");

  // The stats wire format carries the backpressure counter.
  GatewayStats busy_stats;
  busy_stats.queue_full_rejections = 5;
  auto busy_stats2 = GatewayStats::decode(busy_stats.encode());
  ASSERT_TRUE(busy_stats2.ok());
  EXPECT_EQ(busy_stats2->queue_full_rejections, 5u);
}

TEST(GatewayProtocolTest, MigrationPrewarmAndTierStatsFraming) {
  // The chaos-era stats surfaces round-trip too: the gateway-wide
  // migration / prewarm / memo counters, the per-device prewarm counter,
  // and the per-measurement tier-state vector STATS detail carries.
  GatewayStats stats;
  stats.migrations = 3;
  stats.prewarm_prepares = 7;
  stats.invoke_memo_hits = 11;
  DeviceStats node;
  node.hostname = "node-0";
  node.cache_prewarms = 9;
  ModuleTierStats tier;
  tier.measurement.fill(0xAB);
  tier.mode = 1;  // Aot
  tier.functions = 12;
  tier.native_functions = 5;
  tier.hot_threshold = 64;
  tier.calls = 4096;
  node.modules.push_back(tier);
  stats.devices.push_back(std::move(node));

  const Bytes frame = stats.encode();
  auto stats2 = GatewayStats::decode(frame);
  ASSERT_TRUE(stats2.ok()) << stats2.error();
  EXPECT_EQ(stats2->migrations, 3u);
  EXPECT_EQ(stats2->prewarm_prepares, 7u);
  EXPECT_EQ(stats2->invoke_memo_hits, 11u);
  ASSERT_EQ(stats2->devices.size(), 1u);
  EXPECT_EQ(stats2->devices[0].cache_prewarms, 9u);
  ASSERT_EQ(stats2->devices[0].modules.size(), 1u);
  const ModuleTierStats& tier2 = stats2->devices[0].modules[0];
  EXPECT_EQ(tier2.measurement, tier.measurement);
  EXPECT_EQ(tier2.mode, 1);
  EXPECT_EQ(tier2.functions, 12u);
  EXPECT_EQ(tier2.native_functions, 5u);
  EXPECT_EQ(tier2.hot_threshold, 64u);
  EXPECT_EQ(tier2.calls, 4096u);

  // Framing strictness. A truncated frame (cut mid-module or cutting the
  // trailing section counts) must fail decode, never mis-read.
  EXPECT_FALSE(GatewayStats::decode(Bytes(frame.begin(), frame.end() - 2)).ok());
  EXPECT_FALSE(GatewayStats::decode(Bytes(frame.begin(), frame.end() - 10)).ok());

  // The per-entry bounds guard: each tier record occupies exactly 53 bytes
  // (digest + mode + 3 u32 + u64), so a module count the frame cannot hold
  // is rejected up front. With one device, one module and empty trailing
  // sections the frame ends [count=1][53-byte record][0x00][0x00] — the
  // count byte sits 56 bytes from the end; inflate it.
  Bytes overcount = frame;
  ASSERT_EQ(overcount[overcount.size() - 56], 0x01);
  overcount[overcount.size() - 56] = 0x7F;
  auto bad = GatewayStats::decode(overcount);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().find("module count"), std::string::npos) << bad.error();
}

TEST(GatewayProtocolTest, AttachBatchFraming) {
  AttachBatchRequest req;
  req.clients = {"alpha", "beta", ""};
  auto req2 = AttachBatchRequest::decode(req.encode());
  ASSERT_TRUE(req2.ok()) << req2.error();
  EXPECT_EQ(req2->clients, req.clients);

  // Strictness: the uleb count and the payload must agree exactly.
  Bytes frame = req.encode();
  Bytes overcount = frame;
  overcount[1] = 4;  // claims one more name than the payload holds
  EXPECT_FALSE(AttachBatchRequest::decode(overcount).ok());
  Bytes undercount = frame;
  undercount[1] = 2;  // the leftover name is trailing garbage
  EXPECT_FALSE(AttachBatchRequest::decode(undercount).ok());
  Bytes trailing = frame;
  trailing.push_back(0x00);
  EXPECT_FALSE(AttachBatchRequest::decode(trailing).ok());
  EXPECT_FALSE(
      AttachBatchRequest::decode(Bytes(frame.begin(), frame.end() - 2)).ok());
  EXPECT_FALSE(AttachBatchRequest::decode(
                   Bytes{static_cast<std::uint8_t>(Op::AttachBatch), 0x00})
                   .ok());  // empty batch

  AttachBatchResponse resp;
  resp.ra_fabric_exchanges = 6;
  resp.results.push_back(AttachBatchResult{11, 3, 6, ""});
  resp.results.push_back(AttachBatchResult{0, 0, 0, "gateway: no device passed appraisal"});
  auto resp2 = AttachBatchResponse::decode(resp.encode());
  ASSERT_TRUE(resp2.ok()) << resp2.error();
  EXPECT_EQ(resp2->ra_fabric_exchanges, 6u);
  ASSERT_EQ(resp2->results.size(), 2u);
  EXPECT_TRUE(resp2->results[0].ok());
  EXPECT_EQ(resp2->results[0].session_id, 11u);
  EXPECT_EQ(resp2->results[0].devices_attested, 3u);
  EXPECT_FALSE(resp2->results[1].ok());
  EXPECT_EQ(resp2->results[1].error, "gateway: no device passed appraisal");

  // The new stats surfaces round-trip too.
  GatewayStats stats;
  stats.queue_delay_p50_ns = 1 << 10;
  stats.queue_delay_p90_ns = 1 << 14;
  stats.queue_delay_p99_ns = 1 << 20;
  stats.ra_shards.push_back(RaShardStats{10, 9, 1, 9});
  stats.ra_shards.push_back(RaShardStats{4, 4, 0, 2});
  auto stats2 = GatewayStats::decode(stats.encode());
  ASSERT_TRUE(stats2.ok()) << stats2.error();
  EXPECT_EQ(stats2->queue_delay_p50_ns, 1u << 10);
  EXPECT_EQ(stats2->queue_delay_p99_ns, 1u << 20);
  ASSERT_EQ(stats2->ra_shards.size(), 2u);
  EXPECT_EQ(stats2->ra_shards[0].msg0s, 10u);
  EXPECT_EQ(stats2->ra_shards[0].handshakes, 9u);
  EXPECT_EQ(stats2->ra_shards[0].rejects, 1u);
  EXPECT_EQ(stats2->ra_shards[1].key_rotations, 2u);

  InvokeResponse inv;
  inv.queue_delay_ns = 4242;
  auto inv2 = InvokeResponse::decode(inv.encode());
  ASSERT_TRUE(inv2.ok()) << inv2.error();
  EXPECT_EQ(inv2->queue_delay_ns, 4242u);
}

TEST(GatewayProtocolTest, InvokeBatchFraming) {
  InvokeRequest invoke;
  invoke.session_id = 7;
  invoke.measurement.fill(0xCD);
  invoke.entry = "add";
  invoke.args = {wasm::Value::from_i32(1), wasm::Value::from_i32(2)};
  invoke.heap_bytes = 4096;

  InvokeBatchRequest req;
  req.lanes.push_back(InvokeBatchRequest::Lane{0, invoke});
  req.lanes.push_back(InvokeBatchRequest::Lane{1, invoke});
  const Bytes frame = req.encode();
  auto req2 = InvokeBatchRequest::decode(frame);
  ASSERT_TRUE(req2.ok()) << req2.error();
  ASSERT_EQ(req2->lanes.size(), 2u);
  EXPECT_EQ(req2->lanes[0].lane, 0u);
  EXPECT_EQ(req2->lanes[1].lane, 1u);
  EXPECT_EQ(req2->lanes[1].invoke.session_id, 7u);
  EXPECT_EQ(req2->lanes[1].invoke.entry, "add");
  ASSERT_EQ(req2->lanes[1].invoke.args.size(), 2u);

  // Strictness, mirroring the 0xAF RA batch frames:
  // a duplicate lane id rejects the whole frame...
  InvokeBatchRequest dup;
  dup.lanes.push_back(InvokeBatchRequest::Lane{3, invoke});
  dup.lanes.push_back(InvokeBatchRequest::Lane{3, invoke});
  auto dup2 = InvokeBatchRequest::decode(dup.encode());
  ASSERT_FALSE(dup2.ok());
  EXPECT_NE(dup2.error().find("duplicate"), std::string::npos);

  // ...the uleb count and the payload must agree exactly...
  Bytes overcount = frame;
  overcount[1] = 3;  // claims one more lane than the payload holds
  EXPECT_FALSE(InvokeBatchRequest::decode(overcount).ok());
  Bytes undercount = frame;
  undercount[1] = 1;  // the leftover lane is trailing garbage
  EXPECT_FALSE(InvokeBatchRequest::decode(undercount).ok());

  // ...trailing bytes after the last lane are malformed...
  Bytes trailing = frame;
  trailing.push_back(0x00);
  EXPECT_FALSE(InvokeBatchRequest::decode(trailing).ok());
  // ...as is truncation...
  EXPECT_FALSE(
      InvokeBatchRequest::decode(Bytes(frame.begin(), frame.end() - 2)).ok());
  // ...and a lane whose payload over-fills its own length prefix.
  Bytes lane_trailing;
  lane_trailing.push_back(static_cast<std::uint8_t>(Op::InvokeBatch));
  write_uleb(lane_trailing, 1);  // one lane
  write_uleb(lane_trailing, 0);  // lane id
  Bytes fields;
  invoke.encode_fields(fields);
  fields.push_back(0x00);  // a stray byte inside the lane payload
  write_uleb(lane_trailing, fields.size());
  append(lane_trailing, fields);
  auto lane2 = InvokeBatchRequest::decode(lane_trailing);
  ASSERT_FALSE(lane2.ok());
  EXPECT_NE(lane2.error().find("trailing"), std::string::npos);

  // Empty and oversized batches never touch the dispatcher.
  EXPECT_FALSE(InvokeBatchRequest::decode(
                   Bytes{static_cast<std::uint8_t>(Op::InvokeBatch), 0x00})
                   .ok());
  Bytes oversize;
  oversize.push_back(static_cast<std::uint8_t>(Op::InvokeBatch));
  write_uleb(oversize, kMaxInvokeBatch + 1);
  EXPECT_FALSE(InvokeBatchRequest::decode(oversize).ok());

  // Response round-trip: mixed success and failed-index lanes.
  InvokeBatchResponse resp;
  InvokeBatchResult ok_lane;
  ok_lane.lane = 0;
  ok_lane.result.results = {wasm::Value::from_i32(42)};
  ok_lane.result.device = "node-1";
  ok_lane.result.queue_delay_ns = 99;
  resp.results.push_back(std::move(ok_lane));
  InvokeBatchResult failed_lane;
  failed_lane.lane = 1;
  failed_lane.error = "gateway: unknown session";
  resp.results.push_back(std::move(failed_lane));
  auto resp2 = InvokeBatchResponse::decode(resp.encode());
  ASSERT_TRUE(resp2.ok()) << resp2.error();
  ASSERT_EQ(resp2->results.size(), 2u);
  EXPECT_TRUE(resp2->results[0].ok());
  EXPECT_EQ(resp2->results[0].result.results.front().i32(), 42);
  EXPECT_EQ(resp2->results[0].result.device, "node-1");
  EXPECT_EQ(resp2->results[0].result.queue_delay_ns, 99u);
  ASSERT_FALSE(resp2->results[1].ok());
  EXPECT_EQ(resp2->results[1].error, "gateway: unknown session");

  // Response strictness matches the request side (the client decodes
  // whatever the wire hands it).
  Bytes resp_frame = resp.encode();
  Bytes resp_trailing = resp_frame;
  resp_trailing.push_back(0x01);
  EXPECT_FALSE(InvokeBatchResponse::decode(resp_trailing).ok());
  EXPECT_FALSE(InvokeBatchResponse::decode(
                   Bytes(resp_frame.begin(), resp_frame.end() - 1))
                   .ok());
}

/// The observability surfaces on the wire: trace propagation, the STATS
/// detail flag, the per-stage/per-slot/per-device breakdowns and the
/// slow-invoke log.
TEST(GatewayProtocolTest, ObservabilityFraming) {
  // Trace ids ride INVOKE both ways. Untraced stays a single flag byte.
  InvokeRequest req;
  req.session_id = 9;
  req.entry = "add";
  auto untraced = InvokeRequest::decode(req.encode());
  ASSERT_TRUE(untraced.ok()) << untraced.error();
  EXPECT_EQ(untraced->trace_id, 0u);
  req.trace_id = 0xDEAD'BEEF'CAFE'F00DULL;
  auto traced = InvokeRequest::decode(req.encode());
  ASSERT_TRUE(traced.ok()) << traced.error();
  EXPECT_EQ(traced->trace_id, 0xDEAD'BEEF'CAFE'F00DULL);

  // A present-flag with a zero id is a malformed frame, not "untraced".
  Bytes frame = req.encode();
  const std::size_t id_at = frame.size() - 8;
  std::fill(frame.begin() + static_cast<std::ptrdiff_t>(id_at), frame.end(), 0);
  EXPECT_FALSE(InvokeRequest::decode(frame).ok());
  // So is a trace flag that is neither 0 nor 1.
  Bytes bad_flag = req.encode();
  bad_flag[id_at - 1] = 2;
  EXPECT_FALSE(InvokeRequest::decode(bad_flag).ok());

  InvokeResponse resp;
  resp.trace_id = 0x1234;
  auto resp2 = InvokeResponse::decode(resp.encode());
  ASSERT_TRUE(resp2.ok()) << resp2.error();
  EXPECT_EQ(resp2->trace_id, 0x1234u);

  // STATS request: the detail flag round-trips; a flag outside {0,1} is
  // rejected rather than coerced.
  StatsRequest stats_req;
  stats_req.session_id = 7;
  stats_req.detail = true;
  auto stats_req2 = StatsRequest::decode(stats_req.encode());
  ASSERT_TRUE(stats_req2.ok()) << stats_req2.error();
  EXPECT_EQ(stats_req2->session_id, 7u);
  EXPECT_TRUE(stats_req2->detail);
  Bytes req_frame = stats_req.encode();
  req_frame.back() = 2;
  EXPECT_FALSE(StatsRequest::decode(req_frame).ok());

  // Full GatewayStats round-trip with every observability field populated.
  GatewayStats stats;
  stats.invocations = 1000;
  stats.queue_full_rejections = 3;
  stats.deduped_lanes = 24;
  stats.evidence_renewals = 5;
  stats.queue_delay_p50_ns = 1 << 12;
  stats.queue_delay_p90_ns = 1 << 16;
  stats.queue_delay_p99_ns = 1 << 21;
  stats.stage_queue = StageStats{1000, 1 << 12, 1 << 16, 1 << 21};
  stats.stage_exec = StageStats{1000, 1 << 15, 1 << 17, 1 << 18};
  stats.stage_tee_entry = StageStats{2000, 1 << 17, 1 << 17, 1 << 17};
  stats.stage_ra = StageStats{4, 1 << 22, 1 << 23, 1 << 23};
  DeviceStats dev;
  dev.hostname = "node-0";
  dev.queue_delay_p50_ns = 1 << 11;
  dev.queue_delay_p90_ns = 1 << 15;
  dev.queue_delay_p99_ns = 1 << 19;
  dev.pool_slots = 2;
  dev.slots.push_back(SlotStats{1, 4, 600, 123456, 2});
  dev.slots.push_back(SlotStats{0, 3, 400, 98765, 1});
  stats.devices.push_back(std::move(dev));
  SlowInvoke slow;
  slow.trace_id = 0xF00D;
  slow.total_ns = 5'000'000;
  slow.queue_ns = 1'000'000;
  slow.prepare_ns = 500'000;
  slow.tee_ns = 212'000;
  slow.exec_ns = 3'000'000;
  slow.ra_ns = 0;
  slow.device = "node-0";
  slow.entry = "add";
  stats.slow_invokes.push_back(std::move(slow));

  auto stats2 = GatewayStats::decode(stats.encode());
  ASSERT_TRUE(stats2.ok()) << stats2.error();
  EXPECT_EQ(stats2->invocations, 1000u);
  EXPECT_EQ(stats2->deduped_lanes, 24u);
  EXPECT_EQ(stats2->evidence_renewals, 5u);
  EXPECT_EQ(stats2->stage_queue.count, 1000u);
  EXPECT_EQ(stats2->stage_queue.p99_ns, 1u << 21);
  EXPECT_EQ(stats2->stage_exec.p50_ns, 1u << 15);
  EXPECT_EQ(stats2->stage_tee_entry.count, 2000u);
  EXPECT_EQ(stats2->stage_ra.p90_ns, 1u << 23);
  ASSERT_EQ(stats2->devices.size(), 1u);
  EXPECT_EQ(stats2->devices[0].queue_delay_p99_ns, 1u << 19);
  EXPECT_EQ(stats2->devices[0].pool_slots, 2u);
  ASSERT_EQ(stats2->devices[0].slots.size(), 2u);
  EXPECT_EQ(stats2->devices[0].slots[0].queue_full_rejections, 2u);
  EXPECT_EQ(stats2->devices[0].slots[1].invocations, 400u);
  ASSERT_EQ(stats2->slow_invokes.size(), 1u);
  EXPECT_EQ(stats2->slow_invokes[0].trace_id, 0xF00Du);
  EXPECT_EQ(stats2->slow_invokes[0].tee_ns, 212'000u);
  EXPECT_EQ(stats2->slow_invokes[0].entry, "add");

  // Truncation at EVERY length is malformed — no partial stats, no
  // out-of-bounds reads on the way to the error.
  const Bytes full = stats.encode();
  for (std::size_t cut = 0; cut < full.size(); ++cut)
    EXPECT_FALSE(GatewayStats::decode(
                     ByteView(full.data(), cut))
                     .ok())
        << "prefix of length " << cut << " decoded";

  // A slow-invoke count the frame cannot hold is rejected before any
  // reserve (the count rides the wire even when the log is empty).
  GatewayStats empty;
  Bytes bloated = empty.encode();
  ASSERT_EQ(bloated.back(), 0u);  // trailing uleb: zero slow invokes
  bloated.back() = 0x7F;          // claims 127 entries with 0 bytes left
  auto bloated2 = GatewayStats::decode(bloated);
  ASSERT_FALSE(bloated2.ok());
  EXPECT_NE(bloated2.error().find("slow-invoke"), std::string::npos);
}

}  // namespace
}  // namespace watz::gateway
