// Differential execution fuzzing across the three tiers.
//
// A seeded generator produces small, always-valid functions (expression
// trees emitted post-order, so the operand stack discipline holds by
// construction) and every module is executed on:
//   1. the bytecode interpreter          (ExecMode::Interp),
//   2. the AOT instruction stream        (ExecMode::Aot, no tier),
//   3. the native JIT                    (ExecMode::Aot, force-compiled tier).
// Results must be bit-identical and traps must carry identical messages.
// On hosts without the JIT (non-x86-64 or WATZ_DISABLE_JIT) tier 3 degrades
// to tier 2 and the suite still checks interp-vs-AOT equivalence.
//
// The generator deliberately produces trapping programs too: unguarded
// divisions, occasionally-unmasked memory addresses and float->int
// truncations whose inputs are only usually clamped, so divide-by-zero,
// overflow, out-of-bounds and truncation-range behaviour is compared
// across tiers as well. The float mix (phase 2) feeds NaN payloads, signed
// zeroes, infinities and out-of-range truncation inputs through the f32/f64
// arithmetic, min/max, comparison and conversion surface.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "wasm/builder.hpp"
#include "wasm/decoder.hpp"
#include "wasm/instance.hpp"
#include "wasm/jit/tier.hpp"
#include "wasm/opcodes.hpp"

namespace watz::wasm {
namespace {

struct Rng {
  std::uint64_t state;
  explicit Rng(std::uint64_t seed) : state(seed * 0x9e3779b97f4a7c15ull + 1) {}
  std::uint32_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<std::uint32_t>(state >> 32);
  }
  std::uint32_t below(std::uint32_t n) { return next() % n; }
  bool chance(std::uint32_t num, std::uint32_t den) { return below(den) < num; }
};

/// Bit-casts payload bits into a double, for NaN-payload terminals.
inline double f64_from_bits(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

inline float f32_from_bits(std::uint32_t bits) {
  float v;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

/// Emits one random expression of a requested type. Locals:
///   0: i32 param a   1: i32 param b   2: i64 param c
///   3: i32 scratch   4: i64 scratch   5: f64 scratch   6: f32 scratch
class ExprGen {
 public:
  ExprGen(CodeEmitter& ce, Rng& rng) : ce_(ce), rng_(rng) {}

  void i32(int depth) {
    if (depth <= 0 || budget_-- <= 0) return i32_terminal();
    switch (rng_.below(15)) {
      case 0:
        return i32_terminal();
      case 1: {  // plain binary ALU
        static const Op kOps[] = {kI32Add,  kI32Sub,  kI32Mul,  kI32And,
                                  kI32Or,   kI32Xor,  kI32Shl,  kI32ShrS,
                                  kI32ShrU, kI32Rotl, kI32Rotr};
        i32(depth - 1);
        i32(depth - 1);
        ce_.op(kOps[rng_.below(11)]);
        return;
      }
      case 2: {  // division family, divisor usually (not always) nonzero
        static const Op kOps[] = {kI32DivS, kI32DivU, kI32RemS, kI32RemU};
        i32(depth - 1);
        i32(depth - 1);
        if (rng_.chance(3, 4)) ce_.i32_const(1).op(kI32Or);
        ce_.op(kOps[rng_.below(4)]);
        return;
      }
      case 3: {  // i32 comparison
        static const Op kOps[] = {kI32Eq,  kI32Ne,  kI32LtS, kI32LtU,
                                  kI32GtS, kI32GtU, kI32LeS, kI32LeU,
                                  kI32GeS, kI32GeU};
        i32(depth - 1);
        i32(depth - 1);
        ce_.op(kOps[rng_.below(10)]);
        return;
      }
      case 4: {  // i64 comparison
        static const Op kOps[] = {kI64Eq,  kI64Ne,  kI64LtS, kI64LtU,
                                  kI64GtS, kI64GtU, kI64LeS, kI64LeU,
                                  kI64GeS, kI64GeU};
        i64(depth - 1);
        i64(depth - 1);
        ce_.op(kOps[rng_.below(10)]);
        return;
      }
      case 5:
        if (rng_.chance(1, 2)) {
          i32(depth - 1);
          ce_.op(kI32Eqz);
        } else {
          i64(depth - 1);
          ce_.op(kI64Eqz);
        }
        return;
      case 6:
        i64(depth - 1);
        ce_.op(kI32WrapI64);
        return;
      case 7:
        i32(depth - 1);
        i32(depth - 1);
        i32(depth - 1);
        ce_.op(kSelect);
        return;
      case 8:  // if/else expression
        i32(depth - 1);
        ce_.if_(0x7f);
        i32(depth - 1);
        ce_.else_();
        i32(depth - 1);
        ce_.end();
        return;
      case 9: {  // load (address usually masked in bounds, sometimes not)
        static const Op kOps[] = {kI32Load, kI32Load8U, kI32Load8S,
                                  kI32Load16U, kI32Load16S};
        i32(depth - 1);
        if (rng_.chance(7, 8)) ce_.i32_const(0xffc0).op(kI32And);
        ce_.load(kOps[rng_.below(5)], rng_.next() & 0x3f);
        return;
      }
      case 10:
        i32(depth - 1);
        ce_.op(rng_.chance(1, 2) ? kI32Extend8S : kI32Extend16S);
        return;
      case 11: {  // f64 comparison (unordered semantics cross the tiers)
        static const Op kOps[] = {kF64Eq, kF64Ne, kF64Lt,
                                  kF64Gt, kF64Le, kF64Ge};
        f64(depth - 1);
        f64(depth - 1);
        ce_.op(kOps[rng_.below(6)]);
        return;
      }
      case 12: {  // f32 comparison
        static const Op kOps[] = {kF32Eq, kF32Ne, kF32Lt,
                                  kF32Gt, kF32Le, kF32Ge};
        f32(depth - 1);
        f32(depth - 1);
        ce_.op(kOps[rng_.below(6)]);
        return;
      }
      case 13:  // trunc, input usually (not always) clamped into range
        f64(depth - 1);
        if (rng_.chance(3, 4))
          ce_.f64_const(100000.0).op(kF64Min).f64_const(-100000.0).op(kF64Max);
        ce_.op(rng_.chance(1, 2) ? kI32TruncF64S : kI32TruncF64U);
        return;
      default:
        ce_.global_get(0);
        return;
    }
  }

  void i64(int depth) {
    if (depth <= 0 || budget_-- <= 0) return i64_terminal();
    switch (rng_.below(12)) {
      case 0:
        return i64_terminal();
      case 1: {
        static const Op kOps[] = {kI64Add,  kI64Sub,  kI64Mul,  kI64And,
                                  kI64Or,   kI64Xor,  kI64Shl,  kI64ShrS,
                                  kI64ShrU, kI64Rotl, kI64Rotr};
        i64(depth - 1);
        i64(depth - 1);
        ce_.op(kOps[rng_.below(11)]);
        return;
      }
      case 2: {
        static const Op kOps[] = {kI64DivS, kI64DivU, kI64RemS, kI64RemU};
        i64(depth - 1);
        i64(depth - 1);
        if (rng_.chance(3, 4)) ce_.i64_const(1).op(kI64Or);
        ce_.op(kOps[rng_.below(4)]);
        return;
      }
      case 3:
        i32(depth - 1);
        ce_.op(rng_.chance(1, 2) ? kI64ExtendI32S : kI64ExtendI32U);
        return;
      case 4: {
        static const Op kOps[] = {kI64Load,    kI64Load8U,  kI64Load8S,
                                  kI64Load16U, kI64Load32S, kI64Load32U};
        i32(depth - 1);
        if (rng_.chance(7, 8)) ce_.i32_const(0xffc0).op(kI32And);
        ce_.load(kOps[rng_.below(6)], rng_.next() & 0x3f);
        return;
      }
      case 5:
        i64(depth - 1);
        i64(depth - 1);
        i32(depth - 1);
        ce_.op(kSelect);
        return;
      case 6:
        i32(depth - 1);
        ce_.if_(0x7e);
        i64(depth - 1);
        ce_.else_();
        i64(depth - 1);
        ce_.end();
        return;
      case 7: {
        static const Op kOps[] = {kI64Extend8S, kI64Extend16S, kI64Extend32S};
        i64(depth - 1);
        ce_.op(kOps[rng_.below(3)]);
        return;
      }
      case 8:
        if (!callees_.empty()) {  // call an earlier generated function
          i32(depth - 1);
          i32(depth - 1);
          i64(depth - 1);
          ce_.call(callees_[rng_.below(
              static_cast<std::uint32_t>(callees_.size()))]);
          return;
        }
        return i64_terminal();
      case 9:
        f64(depth - 1);
        ce_.op(kI64ReinterpretF64);
        return;
      case 10:  // trunc, input usually (not always) clamped into range
        f64(depth - 1);
        if (rng_.chance(3, 4))
          ce_.f64_const(1e9).op(kF64Min).f64_const(0.0).op(kF64Max);
        ce_.op(rng_.chance(1, 2) ? kI64TruncF64S : kI64TruncF64U);
        return;
      default:
        ce_.global_get(1);
        return;
    }
  }

  void f64(int depth) {
    if (depth <= 0 || budget_-- <= 0) return f64_terminal();
    switch (rng_.below(8)) {
      case 0:
        return f64_terminal();
      case 1: {  // binary arithmetic incl. the NaN-canonicalising min/max
        static const Op kOps[] = {kF64Add, kF64Sub, kF64Mul,     kF64Div,
                                  kF64Min, kF64Max, kF64Copysign};
        f64(depth - 1);
        f64(depth - 1);
        ce_.op(kOps[rng_.below(7)]);
        return;
      }
      case 2: {  // unary (sqrt of a negative produces NaN)
        static const Op kOps[] = {kF64Abs, kF64Neg, kF64Sqrt};
        f64(depth - 1);
        ce_.op(kOps[rng_.below(3)]);
        return;
      }
      case 3:
        if (rng_.chance(1, 2)) {
          i32(depth - 1);
          ce_.op(rng_.chance(1, 2) ? kF64ConvertI32S : kF64ConvertI32U);
        } else {
          i64(depth - 1);
          ce_.op(rng_.chance(1, 2) ? kF64ConvertI64S : kF64ConvertI64U);
        }
        return;
      case 4:
        f32(depth - 1);
        ce_.op(kF64PromoteF32);
        return;
      case 5:
        i64(depth - 1);
        ce_.op(kF64ReinterpretI64);
        return;
      case 6:
        i32(depth - 1);
        ce_.if_(0x7c);  // result f64
        f64(depth - 1);
        ce_.else_();
        f64(depth - 1);
        ce_.end();
        return;
      default:
        ce_.local_get(5);
        return;
    }
  }

  void f32(int depth) {
    if (depth <= 0 || budget_-- <= 0) return f32_terminal();
    switch (rng_.below(6)) {
      case 0:
        return f32_terminal();
      case 1: {
        static const Op kOps[] = {kF32Add, kF32Sub, kF32Mul,     kF32Div,
                                  kF32Min, kF32Max, kF32Copysign};
        f32(depth - 1);
        f32(depth - 1);
        ce_.op(kOps[rng_.below(7)]);
        return;
      }
      case 2: {
        static const Op kOps[] = {kF32Abs, kF32Neg, kF32Sqrt};
        f32(depth - 1);
        ce_.op(kOps[rng_.below(3)]);
        return;
      }
      case 3:  // demotion rounds (and overflows to inf)
        f64(depth - 1);
        ce_.op(kF32DemoteF64);
        return;
      case 4:  // u64 -> f32 crosses the round-to-odd split path
        i64(depth - 1);
        ce_.op(rng_.chance(1, 2) ? kF32ConvertI64U : kF32ConvertI64S);
        return;
      default:
        ce_.local_get(6);
        return;
    }
  }

  /// Side-effect statement: a store, a scratch-local update or a global
  /// update (no net stack effect).
  void statement(int depth) {
    switch (rng_.below(8)) {
      case 0: {
        static const Op kOps[] = {kI32Store, kI32Store8, kI32Store16};
        i32(depth);
        if (rng_.chance(7, 8)) ce_.i32_const(0xffc0).op(kI32And);
        i32(depth);
        ce_.store(kOps[rng_.below(3)], rng_.next() & 0x3f);
        return;
      }
      case 1: {
        static const Op kOps[] = {kI64Store, kI64Store8, kI64Store32};
        i32(depth);
        if (rng_.chance(7, 8)) ce_.i32_const(0xffc0).op(kI32And);
        i64(depth);
        ce_.store(kOps[rng_.below(3)], rng_.next() & 0x3f);
        return;
      }
      case 2:
        i32(depth);
        ce_.local_set(3);
        return;
      case 3:
        i64(depth);
        ce_.local_set(4);
        return;
      case 4:
        f64(depth);
        ce_.local_set(5);
        return;
      case 5:
        f32(depth);
        ce_.local_set(6);
        return;
      case 6: {  // f64 store/load round trips through linear memory
        f64(depth);
        ce_.local_set(5);
        i32(depth);
        if (rng_.chance(7, 8)) ce_.i32_const(0xffc0).op(kI32And);
        ce_.local_get(5);
        ce_.store(kF64Store, rng_.next() & 0x3f);
        return;
      }
      default:
        i32(depth);
        ce_.global_set(0);
        return;
    }
  }

  void set_callees(std::vector<std::uint32_t> callees) {
    callees_ = std::move(callees);
  }

 private:
  void i32_terminal() {
    switch (rng_.below(6)) {
      case 0:
        ce_.i32_const(static_cast<std::int32_t>(rng_.next()));
        return;
      case 1:
        ce_.i32_const(static_cast<std::int32_t>(rng_.below(8)) - 2);
        return;
      case 2:
        ce_.local_get(0);
        return;
      case 3:
        ce_.local_get(1);
        return;
      default:
        ce_.local_get(3);
        return;
    }
  }
  void i64_terminal() {
    switch (rng_.below(5)) {
      case 0:
        ce_.i64_const((static_cast<std::int64_t>(rng_.next()) << 32) |
                      rng_.next());
        return;
      case 1:
        ce_.i64_const(static_cast<std::int64_t>(rng_.below(8)) - 2);
        return;
      case 2:
        ce_.local_get(2);
        return;
      default:
        ce_.local_get(4);
        return;
    }
  }
  void f64_terminal() {
    // The adversarial corner corpus: NaNs with payloads, signed zeroes,
    // infinities, subnormals and the exact trunc-range edges.
    static const double kCorners[] = {
        0.0,
        -0.0,
        1.5,
        -2.25,
        1e300,
        1e-320,                                 // subnormal
        f64_from_bits(0x7ff0000000000000ull),   // +inf
        f64_from_bits(0xfff0000000000000ull),   // -inf
        f64_from_bits(0x7ff8000000000000ull),   // canonical qNaN
        f64_from_bits(0x7ff8dead00000001ull),   // qNaN with payload
        f64_from_bits(0xfff4000000000001ull),   // negative sNaN pattern
        2147483648.0,                           // INT32_MAX + 1
        -2147483649.0,                          // INT32_MIN - 1
        4294967296.0,                           // UINT32_MAX + 1
        9.2233720368547758e18,                  // ~INT64_MAX edge
        1.8446744073709552e19,                  // ~UINT64_MAX edge
        -1.0,
    };
    switch (rng_.below(4)) {
      case 0:
      case 1:
        ce_.f64_const(kCorners[rng_.below(17)]);
        return;
      case 2:
        ce_.local_get(5);
        return;
      default:  // small "normal" value so arithmetic stays meaningful
        ce_.f64_const(static_cast<double>(rng_.below(64)) * 0.25 - 4.0);
        return;
    }
  }
  void f32_terminal() {
    static const float kCorners[] = {
        0.0f,
        -0.0f,
        1.5f,
        3.4e38f,
        1e-44f,                        // subnormal
        f32_from_bits(0x7f800000u),    // +inf
        f32_from_bits(0xff800000u),    // -inf
        f32_from_bits(0x7fc00000u),    // canonical qNaN
        f32_from_bits(0x7fc00dedu),    // qNaN with payload
        f32_from_bits(0xffa00001u),    // negative sNaN pattern
        2147483648.0f,                 // 2^31
        -1.0f,
    };
    switch (rng_.below(4)) {
      case 0:
      case 1:
        ce_.f32_const(kCorners[rng_.below(12)]);
        return;
      case 2:
        ce_.local_get(6);
        return;
      default:
        ce_.f32_const(static_cast<float>(rng_.below(64)) * 0.5f - 8.0f);
        return;
    }
  }

  CodeEmitter& ce_;
  Rng& rng_;
  std::vector<std::uint32_t> callees_;
  int budget_ = 96;  // caps body size regardless of depth
};

/// One generated module: a chain of (i32, i32, i64) -> i64 functions where
/// later functions may call earlier ones; the last is exported as "main".
Bytes generate_module(std::uint64_t seed) {
  Rng rng(seed);
  ModuleBuilder mb;
  mb.add_memory(1, 2);
  mb.add_global(ValType::I32, true,
                static_cast<std::int32_t>(rng.next()));
  mb.add_global(ValType::I64, true,
                static_cast<std::int64_t>(rng.next()));

  FuncType ft{{ValType::I32, ValType::I32, ValType::I64}, {ValType::I64}};
  const std::uint32_t num_funcs = 1 + rng.below(3);
  std::vector<std::uint32_t> funcs;
  for (std::uint32_t i = 0; i < num_funcs; ++i) {
    auto f = mb.add_function(
        ft, {ValType::I32, ValType::I64, ValType::F64, ValType::F32});
    CodeEmitter ce;
    ExprGen gen(ce, rng);
    gen.set_callees(funcs);
    const std::uint32_t stmts = rng.below(3);
    for (std::uint32_t s = 0; s < stmts; ++s) gen.statement(2);
    gen.i64(4);
    mb.set_body(f, ce.bytes());
    funcs.push_back(f);
  }
  mb.export_function("main", funcs.back());
  return mb.build();
}

struct Outcome {
  bool trapped = false;
  std::string detail;  // hex result bits or the trap message
};

Outcome run_one(Instance& inst, std::span<const Value> args) {
  auto r = inst.invoke("main", args);
  if (!r.ok()) return {true, r.error()};
  char buf[32];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>((*r)[0].bits));
  return {false, buf};
}

TEST(JitDifferential, ThreeTiersAgreeOnSeededPrograms) {
  const ImportResolver imports;
  const bool native = jit::jit_available();
  int trapping_runs = 0, clean_runs = 0, native_funcs = 0;

  for (std::uint64_t seed = 1; seed <= 150; ++seed) {
    Bytes bin = generate_module(seed);

    auto make = [&](ExecMode mode) -> std::unique_ptr<Instance> {
      auto mod = decode_module(bin);
      EXPECT_TRUE(mod.ok()) << "seed " << seed << ": " << mod.error();
      if (!mod.ok()) return nullptr;
      auto inst = Instance::instantiate(std::move(*mod), imports, mode);
      EXPECT_TRUE(inst.ok()) << "seed " << seed << ": " << inst.error();
      return inst.ok() ? std::move(*inst) : nullptr;
    };
    auto interp = make(ExecMode::Interp);
    auto aot = make(ExecMode::Aot);
    auto jitted = make(ExecMode::Aot);
    ASSERT_TRUE(interp && aot && jitted) << "seed " << seed;

    std::shared_ptr<jit::TierSet> tier;
    if (native) {
      jit::TierConfig config;
      config.hot_threshold = 1;
      tier = std::make_shared<jit::TierSet>(&jitted->module(), jitted->compiled,
                                            std::move(config));
      // Every generated shape must be within the native surface: a refusal
      // here is a codegen coverage bug, not an acceptable fallback.
      const std::size_t compiled = tier->compile_all();
      EXPECT_EQ(compiled, jitted->compiled.size()) << "seed " << seed;
      native_funcs += static_cast<int>(compiled);
      jitted->tier = tier;
    }

    static const std::int32_t kI32s[] = {0, 1, -1, 7, INT32_MIN, 0x1234};
    static const std::int64_t kI64s[] = {0, -1, 1LL << 40, INT64_MIN};
    Rng pick(seed ^ 0xabcdef);
    for (int v = 0; v < 6; ++v) {
      std::vector<Value> args{Value::from_i32(kI32s[pick.below(6)]),
                              Value::from_i32(kI32s[pick.below(6)]),
                              Value::from_i64(kI64s[pick.below(4)])};
      Outcome a = run_one(*interp, args);
      Outcome b = run_one(*aot, args);
      Outcome c = run_one(*jitted, args);
      EXPECT_EQ(a.trapped, b.trapped) << "seed " << seed << " run " << v
                                      << ": interp=" << a.detail
                                      << " aot=" << b.detail;
      EXPECT_EQ(a.detail, b.detail) << "seed " << seed << " run " << v;
      EXPECT_EQ(b.trapped, c.trapped) << "seed " << seed << " run " << v
                                      << ": aot=" << b.detail
                                      << " native=" << c.detail;
      EXPECT_EQ(b.detail, c.detail) << "seed " << seed << " run " << v;
      (a.trapped ? trapping_runs : clean_runs)++;
    }
    if (HasFatalFailure()) return;
  }

  // The corpus must actually exercise both behaviours and (when available)
  // the native tier, or the differential assertions are vacuous.
  EXPECT_GT(trapping_runs, 10);
  EXPECT_GT(clean_runs, 100);
  if (native) {
    EXPECT_GT(native_funcs, 100);
  }
}

}  // namespace
}  // namespace watz::wasm
