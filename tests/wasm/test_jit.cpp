// Native-codegen tier: direct correctness tests for the baseline x86-64
// JIT. Every test builds a module programmatically, runs it once on the
// plain AOT stream and once with a force-compiled TierSet attached, and
// requires identical results (and identical trap messages).
//
// Native-specific assertions are gated on jit::jit_available() so the suite
// stays green on non-x86-64 hosts and under WATZ_DISABLE_JIT — there the
// AOT-stream half still runs, which is exactly the fallback contract.
#include <gtest/gtest.h>

#include <climits>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include "wasm/builder.hpp"
#include "wasm/decoder.hpp"
#include "wasm/instance.hpp"
#include "wasm/jit/tier.hpp"
#include "wasm/opcodes.hpp"
#include "wasm/validator.hpp"

namespace watz::wasm {
namespace {

const ImportResolver& no_imports() {
  static ImportResolver r;
  return r;
}

std::unique_ptr<Instance> instantiate_aot(const Bytes& bin,
                                          const ImportResolver& imports) {
  auto mod = decode_module(bin);
  EXPECT_TRUE(mod.ok()) << mod.error();
  if (!mod.ok()) return nullptr;
  auto inst = Instance::instantiate(std::move(*mod), imports, ExecMode::Aot);
  EXPECT_TRUE(inst.ok()) << inst.error();
  if (!inst.ok()) return nullptr;
  return std::move(*inst);
}

/// Builds a TierSet over the instance's own module/compiled store and
/// force-compiles everything, so the very first invoke runs native code.
std::shared_ptr<jit::TierSet> force_tier(Instance& inst,
                                         std::uint32_t hot_threshold = 1) {
  jit::TierConfig config;
  config.hot_threshold = hot_threshold;
  auto tier = std::make_shared<jit::TierSet>(&inst.module(), inst.compiled,
                                             std::move(config));
  tier->compile_all();
  inst.tier = tier;
  return tier;
}

struct Tiered {
  std::unique_ptr<Instance> aot;  // plain AOT stream
  std::unique_ptr<Instance> nat;  // force-compiled tier attached (if available)
  std::shared_ptr<jit::TierSet> tier;
};

Tiered make_tiered(const Bytes& bin, const ImportResolver& imports = no_imports()) {
  Tiered t;
  t.aot = instantiate_aot(bin, imports);
  t.nat = instantiate_aot(bin, imports);
  if (t.nat && jit::jit_available()) t.tier = force_tier(*t.nat);
  return t;
}

/// Invokes `name` on both instances and asserts bit-identical outcomes
/// (results or trap messages).
void check_both(Tiered& t, const std::string& name, std::vector<Value> args) {
  ASSERT_TRUE(t.aot && t.nat);
  auto a = t.aot->invoke(name, args);
  auto b = t.nat->invoke(name, args);
  ASSERT_EQ(a.ok(), b.ok()) << name << ": aot="
                            << (a.ok() ? "ok" : a.error()) << " native="
                            << (b.ok() ? "ok" : b.error());
  if (!a.ok()) {
    EXPECT_EQ(a.error(), b.error()) << name;
    return;
  }
  ASSERT_EQ(a->size(), b->size()) << name;
  for (std::size_t i = 0; i < a->size(); ++i)
    EXPECT_EQ((*a)[i].bits, (*b)[i].bits) << name << " result " << i;
}

FuncType sig(std::vector<ValType> params, std::vector<ValType> results) {
  return FuncType{std::move(params), std::move(results)};
}

/// The trap message of an invocation expected to trap ("(ok)" otherwise).
std::string trap_of(Instance& inst, const std::string& name,
                    std::vector<Value> args) {
  auto r = inst.invoke(name, args);
  return r.ok() ? std::string("(ok)") : r.error();
}

// ---------------------------------------------------------------------------

TEST(JitCodegen, IntegerArithmetic32) {
  ModuleBuilder mb;
  // f(a, b) = ((a + b) * 7 - (a & b)) ^ (a | b) + (a << (b & 31)) etc.,
  // exercising the whole 32-bit ALU surface in one expression tree.
  auto f = mb.add_function(sig({ValType::I32, ValType::I32}, {ValType::I32}));
  CodeEmitter ce;
  ce.local_get(0).local_get(1).op(kI32Add);
  ce.i32_const(7).op(kI32Mul);
  ce.local_get(0).local_get(1).op(kI32And).op(kI32Sub);
  ce.local_get(0).local_get(1).op(kI32Or).op(kI32Xor);
  ce.local_get(0).local_get(1).op(kI32Shl).op(kI32Add);
  ce.local_get(0).local_get(1).op(kI32ShrU).op(kI32Add);
  ce.local_get(0).local_get(1).op(kI32ShrS).op(kI32Sub);
  ce.local_get(0).local_get(1).op(kI32Rotl).op(kI32Xor);
  ce.local_get(0).local_get(1).op(kI32Rotr).op(kI32Add);
  mb.set_body(f, ce.bytes());
  mb.export_function("f", f);

  Tiered t = make_tiered(mb.build());
  for (auto [a, b] : std::vector<std::pair<std::int32_t, std::int32_t>>{
           {0, 0}, {1, 1}, {-1, 1}, {12345, -678}, {INT32_MIN, 31},
           {INT32_MAX, 33}, {0x77777777, 131}, {-19, 5}}) {
    check_both(t, "f", {Value::from_i32(a), Value::from_i32(b)});
  }
  if (t.tier) {
    EXPECT_GT(t.tier->native_entries(), 0u);
  }
}

TEST(JitCodegen, IntegerArithmetic64) {
  ModuleBuilder mb;
  auto f = mb.add_function(sig({ValType::I64, ValType::I64}, {ValType::I64}));
  CodeEmitter ce;
  ce.local_get(0).local_get(1).op(kI64Add);
  ce.local_get(0).op(kI64Mul);
  ce.local_get(1).op(kI64Xor);
  ce.local_get(0).local_get(1).op(kI64Shl).op(kI64Add);
  ce.local_get(0).local_get(1).op(kI64ShrS).op(kI64Sub);
  ce.local_get(0).local_get(1).op(kI64Rotl).op(kI64Or);
  mb.set_body(f, ce.bytes());
  mb.export_function("f", f);

  Tiered t = make_tiered(mb.build());
  for (auto [a, b] : std::vector<std::pair<std::int64_t, std::int64_t>>{
           {0, 0}, {-1, 65}, {INT64_MIN, 1}, {0x123456789abcdef0LL, 17},
           {INT64_MAX, -3}}) {
    check_both(t, "f", {Value::from_i64(a), Value::from_i64(b)});
  }
}

TEST(JitCodegen, DivRemEdgeCases) {
  ModuleBuilder mb;
  auto mk = [&](Op op) {
    auto f = mb.add_function(sig({ValType::I32, ValType::I32}, {ValType::I32}));
    CodeEmitter ce;
    ce.local_get(0).local_get(1).op(op);
    mb.set_body(f, ce.bytes());
    return f;
  };
  mb.export_function("div_s", mk(kI32DivS));
  mb.export_function("div_u", mk(kI32DivU));
  mb.export_function("rem_s", mk(kI32RemS));
  mb.export_function("rem_u", mk(kI32RemU));

  auto f64d = mb.add_function(sig({ValType::I64, ValType::I64}, {ValType::I64}));
  CodeEmitter ce;
  ce.local_get(0).local_get(1).op(kI64DivS);
  mb.set_body(f64d, ce.bytes());
  mb.export_function("div_s64", f64d);

  Tiered t = make_tiered(mb.build());
  // Normal division both signs.
  check_both(t, "div_s", {Value::from_i32(-7), Value::from_i32(2)});
  check_both(t, "div_u", {Value::from_i32(-7), Value::from_i32(2)});
  check_both(t, "rem_s", {Value::from_i32(-7), Value::from_i32(3)});
  check_both(t, "rem_u", {Value::from_i32(-7), Value::from_i32(3)});
  // Divide by zero traps.
  check_both(t, "div_s", {Value::from_i32(1), Value::from_i32(0)});
  check_both(t, "rem_u", {Value::from_i32(1), Value::from_i32(0)});
  // INT_MIN / -1 overflows; INT_MIN % -1 == 0 (must NOT trap).
  check_both(t, "div_s", {Value::from_i32(INT32_MIN), Value::from_i32(-1)});
  check_both(t, "rem_s", {Value::from_i32(INT32_MIN), Value::from_i32(-1)});
  check_both(t, "div_s64", {Value::from_i64(INT64_MIN), Value::from_i64(-1)});

  // Exact spec trap strings survive the native tier.
  if (t.tier) {
    EXPECT_EQ(trap_of(*t.nat, "div_s", {Value::from_i32(1), Value::from_i32(0)}),
              "trap: integer divide by zero");
    EXPECT_EQ(trap_of(*t.nat, "div_s",
                      {Value::from_i32(INT32_MIN), Value::from_i32(-1)}),
              "trap: integer overflow");
  }
}

TEST(JitCodegen, ComparisonsAndSelect) {
  ModuleBuilder mb;
  auto mk = [&](Op op, bool wide) {
    ValType vt = wide ? ValType::I64 : ValType::I32;
    auto f = mb.add_function(sig({vt, vt}, {ValType::I32}));
    CodeEmitter ce;
    ce.local_get(0).local_get(1).op(op);
    mb.set_body(f, ce.bytes());
    return f;
  };
  mb.export_function("lt_s", mk(kI32LtS, false));
  mb.export_function("gt_u", mk(kI32GtU, false));
  mb.export_function("le_s", mk(kI32LeS, false));
  mb.export_function("ge_u", mk(kI32GeU, false));
  mb.export_function("eq64", mk(kI64Eq, true));
  mb.export_function("lt_u64", mk(kI64LtU, true));

  // select(a, b, a < b)
  auto fs = mb.add_function(sig({ValType::I32, ValType::I32}, {ValType::I32}));
  CodeEmitter ce;
  ce.local_get(0).local_get(1).local_get(0).local_get(1).op(kI32LtS).op(kSelect);
  mb.set_body(fs, ce.bytes());
  mb.export_function("min_s", fs);

  // eqz
  auto fz = mb.add_function(sig({ValType::I64}, {ValType::I32}));
  CodeEmitter cz;
  cz.local_get(0).op(kI64Eqz);
  mb.set_body(fz, cz.bytes());
  mb.export_function("eqz64", fz);

  Tiered t = make_tiered(mb.build());
  for (auto [a, b] : std::vector<std::pair<std::int32_t, std::int32_t>>{
           {-1, 1}, {1, -1}, {5, 5}, {INT32_MIN, INT32_MAX}, {0, 0}}) {
    check_both(t, "lt_s", {Value::from_i32(a), Value::from_i32(b)});
    check_both(t, "gt_u", {Value::from_i32(a), Value::from_i32(b)});
    check_both(t, "le_s", {Value::from_i32(a), Value::from_i32(b)});
    check_both(t, "ge_u", {Value::from_i32(a), Value::from_i32(b)});
    check_both(t, "min_s", {Value::from_i32(a), Value::from_i32(b)});
  }
  check_both(t, "eq64", {Value::from_i64(-1), Value::from_i64(-1)});
  check_both(t, "lt_u64", {Value::from_i64(-1), Value::from_i64(1)});
  check_both(t, "eqz64", {Value::from_i64(0)});
  check_both(t, "eqz64", {Value::from_i64(1ull << 40)});
}

TEST(JitCodegen, FusedBranchesAndLoops) {
  ModuleBuilder mb;
  // sum(n) = 1 + 2 + ... + n via a loop with a fused cmp+br_if back edge.
  auto f = mb.add_function(sig({ValType::I32}, {ValType::I32}),
                           {ValType::I32, ValType::I32});
  CodeEmitter ce;
  ce.block();
  ce.loop();
  ce.local_get(1).local_get(0).op(kI32GeS).br_if(1);  // i >= n -> exit
  ce.local_get(1).i32_const(1).op(kI32Add).local_tee(1);
  ce.local_get(2).op(kI32Add).local_set(2);
  ce.br(0);
  ce.end();
  ce.end();
  ce.local_get(2);
  mb.set_body(f, ce.bytes());
  mb.export_function("sum", f);

  // if/else lowered through kInstrBrIfFalse (the fused-false form).
  auto g = mb.add_function(sig({ValType::I32, ValType::I32}, {ValType::I32}));
  CodeEmitter cg;
  cg.local_get(0).local_get(1).op(kI32Eq);
  cg.if_(0x7f);  // result i32
  cg.i32_const(100);
  cg.else_();
  cg.i32_const(-100);
  cg.end();
  mb.set_body(g, cg.bytes());
  mb.export_function("pick", g);

  Tiered t = make_tiered(mb.build());
  check_both(t, "sum", {Value::from_i32(0)});
  check_both(t, "sum", {Value::from_i32(1)});
  check_both(t, "sum", {Value::from_i32(1000)});
  check_both(t, "pick", {Value::from_i32(3), Value::from_i32(3)});
  check_both(t, "pick", {Value::from_i32(3), Value::from_i32(4)});
}

TEST(JitCodegen, MemoryLoadsStores) {
  ModuleBuilder mb;
  mb.add_memory(1, 2);
  // store_load(addr, v): i32.store at addr+4, reload with i32.load8_u,
  // i32.load16_s and a full i32.load; combine.
  auto f = mb.add_function(sig({ValType::I32, ValType::I32}, {ValType::I32}));
  CodeEmitter ce;
  ce.local_get(0).local_get(1).store(kI32Store, 4);
  ce.local_get(0).load(kI32Load8U, 4);
  ce.local_get(0).load(kI32Load16S, 4).op(kI32Add);
  ce.local_get(0).load(kI32Load, 4).op(kI32Xor);
  mb.set_body(f, ce.bytes());
  mb.export_function("f", f);

  // 64-bit round trip including i64.load32_s sign extension.
  auto g = mb.add_function(sig({ValType::I64}, {ValType::I64}));
  CodeEmitter cg;
  cg.i32_const(64).local_get(0).store(kI64Store, 0);
  cg.i32_const(64).load(kI64Load32S, 0);
  cg.i32_const(64).load(kI64Load, 0).op(kI64Add);
  mb.set_body(g, cg.bytes());
  mb.export_function("g", g);

  Tiered t = make_tiered(mb.build());
  check_both(t, "f", {Value::from_i32(0), Value::from_i32(0x12f48623)});
  check_both(t, "f", {Value::from_i32(1000), Value::from_i32(-1)});
  // Last in-bounds word and first out-of-bounds address.
  check_both(t, "f", {Value::from_i32(65536 - 8), Value::from_i32(7)});
  check_both(t, "f", {Value::from_i32(65536 - 7), Value::from_i32(7)});
  check_both(t, "f", {Value::from_i32(-4), Value::from_i32(7)});
  check_both(t, "g", {Value::from_i64(-0x1234567890LL)});

  if (t.tier) {
    EXPECT_EQ(trap_of(*t.nat, "f", {Value::from_i32(-4), Value::from_i32(7)}),
              "trap: out of bounds memory access");
  }
}

TEST(JitCodegen, Globals) {
  ModuleBuilder mb;
  mb.add_global(ValType::I32, true, 17);
  mb.add_global(ValType::I64, true, -5);
  auto f = mb.add_function(sig({ValType::I32}, {ValType::I32}));
  CodeEmitter ce;
  ce.global_get(0).local_get(0).op(kI32Add).global_set(0);
  ce.global_get(1).i64_const(1).op(kI64Add).global_set(1);
  ce.global_get(0);
  mb.set_body(f, ce.bytes());
  mb.export_function("bump", f);

  Tiered t = make_tiered(mb.build());
  // Globals are per-instance state: run the same sequence on both.
  check_both(t, "bump", {Value::from_i32(3)});
  check_both(t, "bump", {Value::from_i32(100)});
  check_both(t, "bump", {Value::from_i32(-120)});
}

TEST(JitCodegen, BrTable) {
  ModuleBuilder mb;
  auto f = mb.add_function(sig({ValType::I32}, {ValType::I32}));
  CodeEmitter ce;
  ce.block();  // depth 2 -> 30
  ce.block();  // depth 1 -> 20
  ce.block();  // depth 0 -> 10
  ce.local_get(0).br_table({0, 1, 2}, 1);
  ce.end();
  ce.i32_const(10).op(kReturn);
  ce.end();
  ce.i32_const(20).op(kReturn);
  ce.end();
  ce.i32_const(30).op(kReturn);
  mb.set_body(f, ce.bytes());
  mb.export_function("switch", f);

  Tiered t = make_tiered(mb.build());
  for (std::int32_t v : {0, 1, 2, 3, -1, 1000}) {
    check_both(t, "switch", {Value::from_i32(v)});
  }
}

TEST(JitCodegen, CallsAndRecursion) {
  ModuleBuilder mb;
  auto fib = mb.add_function(sig({ValType::I32}, {ValType::I32}));
  CodeEmitter ce;
  ce.local_get(0).i32_const(2).op(kI32LtS);
  ce.if_(0x7f);
  ce.local_get(0);
  ce.else_();
  ce.local_get(0).i32_const(1).op(kI32Sub).call(fib);
  ce.local_get(0).i32_const(2).op(kI32Sub).call(fib);
  ce.op(kI32Add);
  ce.end();
  mb.set_body(fib, ce.bytes());
  mb.export_function("fib", fib);

  // Unbounded recursion must trap identically through native frames.
  auto inf = mb.add_function(sig({}, {ValType::I32}));
  CodeEmitter ci;
  ci.call(inf);
  mb.set_body(inf, ci.bytes());
  mb.export_function("inf", inf);

  Tiered t = make_tiered(mb.build());
  check_both(t, "fib", {Value::from_i32(0)});
  check_both(t, "fib", {Value::from_i32(10)});
  check_both(t, "fib", {Value::from_i32(20)});
  check_both(t, "inf", {});
  if (t.tier) {
    EXPECT_EQ(trap_of(*t.nat, "inf", {}), "trap: call stack exhausted");
  }
}

TEST(JitCodegen, CallIndirect) {
  ModuleBuilder mb;
  mb.add_table(4, 4);
  FuncType binop = sig({ValType::I32, ValType::I32}, {ValType::I32});
  std::uint32_t binop_type = mb.add_type(binop);
  auto add = mb.add_function(binop);
  {
    CodeEmitter ce;
    ce.local_get(0).local_get(1).op(kI32Add);
    mb.set_body(add, ce.bytes());
  }
  auto sub = mb.add_function(binop);
  {
    CodeEmitter ce;
    ce.local_get(0).local_get(1).op(kI32Sub);
    mb.set_body(sub, ce.bytes());
  }
  // Slot 3 holds a function of a DIFFERENT type (for the mismatch trap).
  auto nul = mb.add_function(sig({}, {}));
  {
    CodeEmitter ce;
    mb.set_body(nul, ce.bytes());
  }
  mb.add_element(0, {add, sub});  // slot 2 stays uninitialized
  mb.add_element(3, {nul});

  auto f = mb.add_function(sig({ValType::I32, ValType::I32, ValType::I32},
                               {ValType::I32}));
  CodeEmitter ce;
  ce.local_get(1).local_get(2).local_get(0).call_indirect(binop_type);
  mb.set_body(f, ce.bytes());
  mb.export_function("dispatch", f);

  Tiered t = make_tiered(mb.build());
  auto arg = [](std::int32_t s, std::int32_t a, std::int32_t b) {
    return std::vector<Value>{Value::from_i32(s), Value::from_i32(a),
                              Value::from_i32(b)};
  };
  check_both(t, "dispatch", arg(0, 30, 12));   // add
  check_both(t, "dispatch", arg(1, 30, 12));   // sub
  check_both(t, "dispatch", arg(2, 1, 1));     // uninitialized element
  check_both(t, "dispatch", arg(3, 1, 1));     // type mismatch
  check_both(t, "dispatch", arg(9, 1, 1));     // undefined element
  if (t.tier) {
    EXPECT_EQ(trap_of(*t.nat, "dispatch", arg(2, 1, 1)),
              "trap: uninitialized element");
    EXPECT_EQ(trap_of(*t.nat, "dispatch", arg(3, 1, 1)),
              "trap: indirect call type mismatch");
    EXPECT_EQ(trap_of(*t.nat, "dispatch", arg(9, 1, 1)),
              "trap: undefined element");
  }
}

TEST(JitCodegen, MemoryGrowRebindsBase) {
  ModuleBuilder mb;
  mb.add_memory(1, 4);
  // grow(1), then store/load beyond the old limit: the native frame must
  // re-pin mem_base/mem_size after the helper call or this faults.
  auto f = mb.add_function(sig({}, {ValType::I32}));
  CodeEmitter ce;
  ce.i32_const(1).memory_grow().op(kDrop);
  ce.i32_const(65536 + 16).i32_const(4242).store(kI32Store, 0);
  ce.i32_const(65536 + 16).load(kI32Load, 0);
  ce.memory_size().op(kI32Add);
  mb.set_body(f, ce.bytes());
  mb.export_function("grow_rw", f);

  // Failed grow (beyond max) returns -1 and must not rebind anything odd.
  auto g = mb.add_function(sig({}, {ValType::I32}));
  CodeEmitter cg;
  cg.i32_const(100).memory_grow();
  mb.set_body(g, cg.bytes());
  mb.export_function("grow_fail", g);

  Tiered t = make_tiered(mb.build());
  check_both(t, "grow_rw", {});
  check_both(t, "grow_fail", {});
}

TEST(JitCodegen, MemCopyFill) {
  ModuleBuilder mb;
  mb.add_memory(1, 1);
  auto f = mb.add_function(sig({ValType::I32}, {ValType::I32}));
  CodeEmitter ce;
  ce.i32_const(8).i32_const(0x5a).i32_const(16).memory_fill();
  ce.i32_const(100).i32_const(8).local_get(0).memory_copy();
  ce.i32_const(100).load(kI32Load, 0);
  mb.set_body(f, ce.bytes());
  mb.export_function("f", f);

  Tiered t = make_tiered(mb.build());
  check_both(t, "f", {Value::from_i32(16)});
  check_both(t, "f", {Value::from_i32(0)});
  check_both(t, "f", {Value::from_i32(-1)});  // oob copy traps
}

TEST(JitCodegen, FloatOpsLowerNatively) {
  ModuleBuilder mb;
  // The phase-2 surface lowers f32/f64 arithmetic inline (SSE2 scalar ops):
  // bit-identical with the AOT stream AND zero fallback-thunk traffic.
  auto f = mb.add_function(sig({ValType::F64, ValType::F64}, {ValType::F64}));
  CodeEmitter ce;
  ce.local_get(0).local_get(1).op(kF64Add);
  ce.local_get(0).op(kF64Mul);
  ce.local_get(1).op(kF64Div);
  ce.local_get(0).local_get(1).op(kF64Sub).op(kF64Add);
  mb.set_body(f, ce.bytes());
  mb.export_function("f", f);

  auto g = mb.add_function(sig({ValType::F32, ValType::F32}, {ValType::F32}));
  CodeEmitter cg;
  cg.local_get(0).local_get(1).op(kF32Mul);
  cg.local_get(0).op(kF32Add);
  cg.op(kF32Sqrt);
  mb.set_body(g, cg.bytes());
  mb.export_function("g", g);

  Tiered t = make_tiered(mb.build());
  check_both(t, "f", {Value::from_f64(1.5), Value::from_f64(2.25)});
  check_both(t, "f", {Value::from_f64(-0.0), Value::from_f64(1e300)});
  check_both(t, "f", {Value::from_f64(1e-320), Value::from_f64(3.0)});  // subnormal
  const double inf = std::numeric_limits<double>::infinity();
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  check_both(t, "f", {Value::from_f64(inf), Value::from_f64(-inf)});
  check_both(t, "f", {Value::from_f64(qnan), Value::from_f64(1.0)});
  check_both(t, "g", {Value::from_f32(3.5f), Value::from_f32(-0.25f)});
  check_both(t, "g", {Value::from_f32(-1.0f), Value::from_f32(0.0f)});  // sqrt(<0)
  if (t.tier) {
    EXPECT_EQ(t.tier->fallback_ops(), 0u);
    EXPECT_EQ(t.tier->fallback_float(), 0u);
  }
}

TEST(JitCodegen, FloatMinMaxNanAndSignedZero) {
  ModuleBuilder mb;
  auto mk = [&](Op op, bool wide) {
    ValType vt = wide ? ValType::F64 : ValType::F32;
    auto f = mb.add_function(sig({vt, vt}, {vt}));
    CodeEmitter ce;
    ce.local_get(0).local_get(1).op(op);
    mb.set_body(f, ce.bytes());
    return f;
  };
  mb.export_function("min64", mk(kF64Min, true));
  mb.export_function("max64", mk(kF64Max, true));
  mb.export_function("min32", mk(kF32Min, false));
  mb.export_function("max32", mk(kF32Max, false));

  Tiered t = make_tiered(mb.build());
  const double inf = std::numeric_limits<double>::infinity();
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  // Every zero pairing: wasm min(-0,+0) = -0, max(-0,+0) = +0.
  for (auto [a, b] : std::vector<std::pair<double, double>>{
           {0.0, -0.0}, {-0.0, 0.0}, {0.0, 0.0}, {-0.0, -0.0},
           {1.0, 2.0}, {2.0, 1.0}, {-inf, inf}, {inf, 3.0},
           {qnan, 1.0}, {1.0, qnan}, {qnan, qnan}}) {
    check_both(t, "min64", {Value::from_f64(a), Value::from_f64(b)});
    check_both(t, "max64", {Value::from_f64(a), Value::from_f64(b)});
    check_both(t, "min32", {Value::from_f32(static_cast<float>(a)),
                            Value::from_f32(static_cast<float>(b))});
    check_both(t, "max32", {Value::from_f32(static_cast<float>(a)),
                            Value::from_f32(static_cast<float>(b))});
  }
  // A signalling-ish NaN payload must canonicalise identically both ways.
  Value snan;
  snan.bits = 0x7ff0000000000001ull;  // f64 sNaN
  check_both(t, "min64", {snan, Value::from_f64(2.0)});
  check_both(t, "max64", {Value::from_f64(2.0), snan});
  if (t.tier) EXPECT_EQ(t.tier->fallback_float(), 0u);
}

TEST(JitCodegen, FloatComparisonsUnordered) {
  ModuleBuilder mb;
  auto mk = [&](Op op) {
    auto f = mb.add_function(sig({ValType::F64, ValType::F64}, {ValType::I32}));
    CodeEmitter ce;
    ce.local_get(0).local_get(1).op(op);
    mb.set_body(f, ce.bytes());
    return f;
  };
  mb.export_function("eq", mk(kF64Eq));
  mb.export_function("ne", mk(kF64Ne));
  mb.export_function("lt", mk(kF64Lt));
  mb.export_function("gt", mk(kF64Gt));
  mb.export_function("le", mk(kF64Le));
  mb.export_function("ge", mk(kF64Ge));

  Tiered t = make_tiered(mb.build());
  const double inf = std::numeric_limits<double>::infinity();
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  for (auto [a, b] : std::vector<std::pair<double, double>>{
           {1.0, 2.0}, {2.0, 1.0}, {1.0, 1.0}, {0.0, -0.0},
           {qnan, 1.0}, {1.0, qnan}, {qnan, qnan}, {-inf, inf}}) {
    for (const char* name : {"eq", "ne", "lt", "gt", "le", "ge"})
      check_both(t, name, {Value::from_f64(a), Value::from_f64(b)});
  }
  if (t.tier) EXPECT_EQ(t.tier->fallback_float(), 0u);
}

TEST(JitCodegen, FloatAbsNegCopysign) {
  ModuleBuilder mb;
  auto f = mb.add_function(sig({ValType::F64, ValType::F64}, {ValType::F64}));
  CodeEmitter ce;
  ce.local_get(0).op(kF64Abs).op(kF64Neg);
  ce.local_get(1).op(kF64Copysign);
  mb.set_body(f, ce.bytes());
  mb.export_function("f", f);

  auto g = mb.add_function(sig({ValType::F32, ValType::F32}, {ValType::F32}));
  CodeEmitter cg;
  cg.local_get(0).op(kF32Neg).op(kF32Abs);
  cg.local_get(1).op(kF32Copysign);
  mb.set_body(g, cg.bytes());
  mb.export_function("g", g);

  Tiered t = make_tiered(mb.build());
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  for (auto [a, b] : std::vector<std::pair<double, double>>{
           {1.5, -1.0}, {-1.5, 1.0}, {-0.0, 0.0}, {0.0, -0.0},
           {qnan, -1.0}, {-qnan, 1.0}}) {
    check_both(t, "f", {Value::from_f64(a), Value::from_f64(b)});
    check_both(t, "g", {Value::from_f32(static_cast<float>(a)),
                        Value::from_f32(static_cast<float>(b))});
  }
  // abs/neg/copysign are pure bit ops: NaN payloads pass through untouched.
  Value payload;
  payload.bits = 0xfff8dead00000001ull;
  check_both(t, "f", {payload, payload});
  if (t.tier) EXPECT_EQ(t.tier->fallback_float(), 0u);
}

TEST(JitCodegen, FloatConversions) {
  ModuleBuilder mb;
  auto mk1 = [&](Op op, ValType from, ValType to) {
    auto f = mb.add_function(sig({from}, {to}));
    CodeEmitter ce;
    ce.local_get(0).op(op);
    mb.set_body(f, ce.bytes());
    return f;
  };
  mb.export_function("cvt_s32", mk1(kF64ConvertI32S, ValType::I32, ValType::F64));
  mb.export_function("cvt_u32", mk1(kF64ConvertI32U, ValType::I32, ValType::F64));
  mb.export_function("cvt_s64", mk1(kF64ConvertI64S, ValType::I64, ValType::F64));
  mb.export_function("cvt_u64", mk1(kF64ConvertI64U, ValType::I64, ValType::F64));
  mb.export_function("cvtf_u64", mk1(kF32ConvertI64U, ValType::I64, ValType::F32));
  mb.export_function("promote", mk1(kF64PromoteF32, ValType::F32, ValType::F64));
  mb.export_function("demote", mk1(kF32DemoteF64, ValType::F64, ValType::F32));
  mb.export_function("bits_fi", mk1(kI64ReinterpretF64, ValType::F64, ValType::I64));
  mb.export_function("bits_if", mk1(kF64ReinterpretI64, ValType::I64, ValType::F64));

  Tiered t = make_tiered(mb.build());
  for (std::int32_t v : {0, 1, -1, INT32_MIN, INT32_MAX}) {
    check_both(t, "cvt_s32", {Value::from_i32(v)});
    check_both(t, "cvt_u32", {Value::from_i32(v)});
  }
  // u64 -> float crosses the 2^63 split path; 0x8000000000000401 exercises
  // the round-to-odd sticky bit in the f32 demotion of the same path.
  for (std::int64_t v :
       {std::int64_t{0}, std::int64_t{-1}, INT64_MIN, INT64_MAX,
        static_cast<std::int64_t>(0x8000000000000401ull),
        static_cast<std::int64_t>(0xfffffffffffff400ull)}) {
    check_both(t, "cvt_s64", {Value::from_i64(v)});
    check_both(t, "cvt_u64", {Value::from_i64(v)});
    check_both(t, "cvtf_u64", {Value::from_i64(v)});
  }
  check_both(t, "promote", {Value::from_f32(1.5f)});
  check_both(t, "demote", {Value::from_f64(1e300)});   // -> inf
  check_both(t, "demote", {Value::from_f64(1e-300)});  // -> 0 (underflow)
  Value nan64;
  nan64.bits = 0x7ff8000000000001ull;
  check_both(t, "bits_fi", {nan64});
  check_both(t, "bits_if", {Value::from_i64(0x7ff8000000000001ll)});
  if (t.tier) {
    EXPECT_EQ(t.tier->fallback_float(), 0u);
    EXPECT_EQ(t.tier->fallback_conv(), 0u);
  }
}

TEST(JitCodegen, TruncTrapsMatchInterpreterMessages) {
  ModuleBuilder mb;
  auto mk = [&](Op op, ValType from, ValType to) {
    auto f = mb.add_function(sig({from}, {to}));
    CodeEmitter ce;
    ce.local_get(0).op(op);
    mb.set_body(f, ce.bytes());
    return f;
  };
  mb.export_function("i32_f64_s", mk(kI32TruncF64S, ValType::F64, ValType::I32));
  mb.export_function("i32_f64_u", mk(kI32TruncF64U, ValType::F64, ValType::I32));
  mb.export_function("i32_f32_s", mk(kI32TruncF32S, ValType::F32, ValType::I32));
  mb.export_function("i64_f64_s", mk(kI64TruncF64S, ValType::F64, ValType::I64));
  mb.export_function("i64_f64_u", mk(kI64TruncF64U, ValType::F64, ValType::I64));
  mb.export_function("i64_f32_u", mk(kI64TruncF32U, ValType::F32, ValType::I64));

  Tiered t = make_tiered(mb.build());
  const double inf = std::numeric_limits<double>::infinity();
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  // In-range values, the exact edges, one-past edges, NaN and infinities.
  for (double v : {0.0, -0.5, 2147483647.0, -2147483648.0, 2147483648.0,
                   -2147483649.0, 4294967295.0, 4294967296.0, -1.0, -0.9,
                   9.2233720368547738e18, -9.2233720368547758e18,
                   1.8446744073709552e19, inf, -inf, qnan}) {
    check_both(t, "i32_f64_s", {Value::from_f64(v)});
    check_both(t, "i32_f64_u", {Value::from_f64(v)});
    check_both(t, "i64_f64_s", {Value::from_f64(v)});
    check_both(t, "i64_f64_u", {Value::from_f64(v)});
    check_both(t, "i32_f32_s", {Value::from_f32(static_cast<float>(v))});
    check_both(t, "i64_f32_u", {Value::from_f32(static_cast<float>(v))});
  }
  if (t.tier) {
    EXPECT_EQ(trap_of(*t.nat, "i32_f64_s", {Value::from_f64(qnan)}),
              "trap: invalid conversion to integer: NaN in i32.trunc_f64_s");
    EXPECT_EQ(trap_of(*t.nat, "i32_f64_s", {Value::from_f64(2147483648.0)}),
              "trap: integer overflow in i32.trunc_f64_s");
    EXPECT_EQ(trap_of(*t.nat, "i64_f64_u", {Value::from_f64(-1.0)}),
              "trap: integer overflow in i64.trunc_f64_u");
    EXPECT_EQ(trap_of(*t.nat, "i64_f32_u", {Value::from_f32(-2.0f)}),
              "trap: integer overflow in i64.trunc_f32_u");
    EXPECT_EQ(t.tier->fallback_conv(), 0u);
  }
}

TEST(JitCodegen, FusedLoadOpStoreAndResultSink) {
  ModuleBuilder mb;
  mb.add_memory(1, 1);
  // An accumulation loop shaped exactly like the fusion window: local.get
  // feeding ALU ops (memory-operand fusion) and op results consumed by
  // local.set (result sink). 10 locals defeat register residency so the
  // frame-slot peepholes are the ones under test.
  auto f = mb.add_function(
      sig({ValType::I32}, {ValType::I32}),
      {ValType::I32, ValType::I32, ValType::I32, ValType::I32, ValType::I32,
       ValType::I32, ValType::I32, ValType::I32, ValType::I32});
  CodeEmitter ce;
  ce.block();
  ce.loop();
  ce.local_get(1).local_get(0).op(kI32GeS).br_if(1);
  // acc2 = acc2 + i * 3 (get -> mul -> add -> set: both peepholes fire)
  ce.local_get(2).local_get(1).i32_const(3).op(kI32Mul).op(kI32Add);
  ce.local_set(2);
  // acc3 ^= acc2 - i
  ce.local_get(3).local_get(2).local_get(1).op(kI32Sub).op(kI32Xor);
  ce.local_set(3);
  // Store/reload through memory so fused loads see fresh slot values.
  ce.i32_const(16).local_get(2).store(kI32Store, 0);
  ce.local_get(3).i32_const(16).load(kI32Load, 0).op(kI32Add).local_set(4);
  ce.local_get(1).i32_const(1).op(kI32Add).local_set(1);
  ce.br(0);
  ce.end();
  ce.end();
  ce.local_get(2).local_get(3).op(kI32Add).local_get(4).op(kI32Xor);
  mb.set_body(f, ce.bytes());
  mb.export_function("f", f);

  Tiered t = make_tiered(mb.build());
  check_both(t, "f", {Value::from_i32(0)});
  check_both(t, "f", {Value::from_i32(1)});
  check_both(t, "f", {Value::from_i32(57)});
  check_both(t, "f", {Value::from_i32(1000)});
}

TEST(JitCodegen, RegisterResidentSmallFunctions) {
  ModuleBuilder mb;
  // Small call-free int/float bodies whose locals + operand stack fit the
  // slot-register file: the whole frame stays in registers.
  auto f = mb.add_function(sig({ValType::I32, ValType::I32}, {ValType::I32}),
                           {ValType::I32});
  CodeEmitter ce;
  ce.block();
  ce.loop();
  ce.local_get(1).i32_const(0).op(kI32LeS).br_if(1);
  ce.local_get(2).local_get(0).op(kI32Add).local_set(2);
  ce.local_get(1).i32_const(1).op(kI32Sub).local_set(1);
  ce.br(0);
  ce.end();
  ce.end();
  ce.local_get(2);
  mb.set_body(f, ce.bytes());
  mb.export_function("mul_by_add", f);

  auto g = mb.add_function(sig({ValType::F64, ValType::F64}, {ValType::F64}));
  CodeEmitter cg;
  cg.local_get(0).local_get(1).op(kF64Mul);
  cg.local_get(0).op(kF64Add);
  cg.op(kF64Sqrt);
  mb.set_body(g, cg.bytes());
  mb.export_function("fma_sqrt", g);

  Tiered t = make_tiered(mb.build());
  check_both(t, "mul_by_add", {Value::from_i32(7), Value::from_i32(6)});
  check_both(t, "mul_by_add", {Value::from_i32(-3), Value::from_i32(1000)});
  check_both(t, "mul_by_add", {Value::from_i32(5), Value::from_i32(0)});
  check_both(t, "fma_sqrt", {Value::from_f64(3.0), Value::from_f64(4.0)});
  check_both(t, "fma_sqrt", {Value::from_f64(-8.0), Value::from_f64(1.0)});
  if (t.tier) EXPECT_EQ(t.tier->fallback_ops(), 0u);
}

TEST(JitCodegen, Conversions) {
  ModuleBuilder mb;
  auto wrap = mb.add_function(sig({ValType::I64}, {ValType::I32}));
  {
    CodeEmitter ce;
    ce.local_get(0).op(kI32WrapI64);
    mb.set_body(wrap, ce.bytes());
  }
  mb.export_function("wrap", wrap);
  auto ext_s = mb.add_function(sig({ValType::I32}, {ValType::I64}));
  {
    CodeEmitter ce;
    ce.local_get(0).op(kI64ExtendI32S);
    mb.set_body(ext_s, ce.bytes());
  }
  mb.export_function("ext_s", ext_s);
  auto ext_u = mb.add_function(sig({ValType::I32}, {ValType::I64}));
  {
    CodeEmitter ce;
    ce.local_get(0).op(kI64ExtendI32U);
    mb.set_body(ext_u, ce.bytes());
  }
  mb.export_function("ext_u", ext_u);
  auto sx8 = mb.add_function(sig({ValType::I32}, {ValType::I32}));
  {
    CodeEmitter ce;
    ce.local_get(0).op(kI32Extend8S);
    mb.set_body(sx8, ce.bytes());
  }
  mb.export_function("sx8", sx8);

  Tiered t = make_tiered(mb.build());
  check_both(t, "wrap", {Value::from_i64(0x1ffffffffLL)});
  check_both(t, "wrap", {Value::from_i64(-1)});
  check_both(t, "ext_s", {Value::from_i32(-2)});
  check_both(t, "ext_u", {Value::from_i32(-2)});
  check_both(t, "sx8", {Value::from_i32(0x1ff)});
  check_both(t, "sx8", {Value::from_i32(0x17f)});
}

TEST(JitCodegen, UnreachableTrap) {
  ModuleBuilder mb;
  auto f = mb.add_function(sig({ValType::I32}, {ValType::I32}));
  CodeEmitter ce;
  ce.local_get(0);
  ce.if_(0x7f);
  ce.local_get(0);
  ce.else_();
  ce.op(kUnreachable);
  ce.end();
  mb.set_body(f, ce.bytes());
  mb.export_function("f", f);

  Tiered t = make_tiered(mb.build());
  check_both(t, "f", {Value::from_i32(1)});
  check_both(t, "f", {Value::from_i32(0)});
  if (t.tier) {
    EXPECT_EQ(trap_of(*t.nat, "f", {Value::from_i32(0)}),
              "trap: unreachable executed");
  }
}

TEST(JitCodegen, HostCallFromNativeFrame) {
  ModuleBuilder mb;
  auto host = mb.import_function("env", "twice",
                                 sig({ValType::I32}, {ValType::I32}));
  auto f = mb.add_function(sig({ValType::I32}, {ValType::I32}));
  CodeEmitter ce;
  ce.local_get(0).call(host).i32_const(1).op(kI32Add);
  mb.set_body(f, ce.bytes());
  mb.export_function("f", f);

  ImportResolver imports;
  imports.add_function("env", "twice", sig({ValType::I32}, {ValType::I32}),
                       [](Instance&, std::span<const Value> args) {
                         return Result<std::vector<Value>>{std::vector<Value>{
                             Value::from_i32(args[0].i32() * 2)}};
                       });
  Tiered t = make_tiered(mb.build(), imports);
  check_both(t, "f", {Value::from_i32(21)});
  check_both(t, "f", {Value::from_i32(-1)});
}

// ---------------------------------------------------------------------------
// Tiering machinery (heat counters, background compile, entry install).

TEST(JitTiering, HeatThresholdTripsBackgroundCompile) {
  if (!jit::jit_available()) GTEST_SKIP() << "JIT unavailable on this host";

  ModuleBuilder mb;
  auto f = mb.add_function(sig({ValType::I32}, {ValType::I32}));
  CodeEmitter ce;
  ce.local_get(0).i32_const(3).op(kI32Mul);
  mb.set_body(f, ce.bytes());
  mb.export_function("f", f);

  auto inst = instantiate_aot(mb.build(), no_imports());
  ASSERT_TRUE(inst);
  jit::TierConfig config;
  config.hot_threshold = 3;
  auto tier = std::make_shared<jit::TierSet>(&inst->module(), inst->compiled,
                                             std::move(config));
  inst->tier = tier;

  // Below the threshold: nothing queued, nothing compiled.
  auto args = std::vector<Value>{Value::from_i32(5)};
  ASSERT_TRUE(inst->invoke("f", args).ok());
  ASSERT_TRUE(inst->invoke("f", args).ok());
  EXPECT_EQ(tier->compile_pending(), 0u);
  EXPECT_EQ(tier->entry_for(0), nullptr);

  // Third call crosses hot_threshold=3 -> queued; the control-plane sweep
  // compiles and installs exactly one entry.
  ASSERT_TRUE(inst->invoke("f", args).ok());
  EXPECT_EQ(tier->compile_pending(), 1u);
  EXPECT_NE(tier->entry_for(0), nullptr);
  EXPECT_EQ(tier->tier_up_compiles(), 1u);
  EXPECT_GT(tier->native_code_bytes(), 0u);

  // Re-sweeping is idempotent; the next invoke runs native.
  EXPECT_EQ(tier->compile_pending(), 0u);
  auto r = inst->invoke("f", args);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].i32(), 15);
  EXPECT_EQ(tier->native_entries(), 1u);
}

TEST(JitTiering, CodeChargeRefusalKeepsAotStream) {
  if (!jit::jit_available()) GTEST_SKIP() << "JIT unavailable on this host";

  ModuleBuilder mb;
  auto f = mb.add_function(sig({}, {ValType::I32}));
  CodeEmitter ce;
  ce.i32_const(7);
  mb.set_body(f, ce.bytes());
  mb.export_function("f", f);

  auto inst = instantiate_aot(mb.build(), no_imports());
  ASSERT_TRUE(inst);
  jit::TierConfig config;
  config.hot_threshold = 1;
  config.charge_code = [](std::size_t) { return false; };  // heap cap exceeded
  auto tier = std::make_shared<jit::TierSet>(&inst->module(), inst->compiled,
                                             std::move(config));
  tier->compile_all();
  inst->tier = tier;

  EXPECT_EQ(tier->entry_for(0), nullptr);
  EXPECT_EQ(tier->tier_up_compiles(), 0u);
  auto r = inst->invoke("f", {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].i32(), 7);  // still correct on the AOT stream
}

TEST(JitTiering, MetricSinksReceiveFlushes) {
  if (!jit::jit_available()) GTEST_SKIP() << "JIT unavailable on this host";

  ModuleBuilder mb;
  // f64.nearest stays outside the lowered surface (round-to-even needs
  // SSE4.1 roundsd), so it is a stable thunk driver; f64.add lowers inline
  // and must NOT count.
  auto f = mb.add_function(sig({ValType::F64}, {ValType::F64}));
  CodeEmitter ce;
  ce.local_get(0).local_get(0).op(kF64Add).op(kF64Nearest);
  mb.set_body(f, ce.bytes());
  mb.export_function("f", f);

  auto inst = instantiate_aot(mb.build(), no_imports());
  ASSERT_TRUE(inst);
  jit::TierConfig config;
  config.hot_threshold = 1;
  auto tier = std::make_shared<jit::TierSet>(&inst->module(), inst->compiled,
                                             std::move(config));
  obs::Counter compiles, entries, fallback;
  obs::Counter fb_float, fb_conv, fb_call, fb_other;
  obs::Histogram compile_ns;
  tier->bind_metrics(&compiles, &entries, &fallback, &compile_ns,
                     {&fb_float, &fb_conv, &fb_call, &fb_other});
  tier->compile_all();
  inst->tier = tier;

  std::vector<Value> fargs{Value::from_f64(2.5)};
  auto r = inst->invoke("f", fargs);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].f64(), 5.0);
  EXPECT_EQ(compiles.get(), 1u);
  EXPECT_EQ(compile_ns.count(), 1u);
  EXPECT_GE(entries.get(), 1u);
  EXPECT_EQ(fallback.get(), 1u);  // exactly the f64.nearest thunk
  EXPECT_EQ(fb_float.get(), 1u);  // ...classified as a float op
  EXPECT_EQ(fb_conv.get(), 0u);
  EXPECT_EQ(fb_call.get(), 0u);
  EXPECT_EQ(fb_other.get(), 0u);
}

TEST(JitTiering, RefusalRecordsOffendingOpcode) {
  if (!jit::jit_available()) GTEST_SKIP() << "JIT unavailable on this host";

  ModuleBuilder mb;
  auto f = mb.add_function(sig({ValType::I32}, {ValType::I32}));
  CodeEmitter ce;
  ce.local_get(0).i32_const(1).op(kI32Add);
  mb.set_body(f, ce.bytes());
  mb.export_function("f", f);

  auto inst = instantiate_aot(mb.build(), no_imports());
  ASSERT_TRUE(inst);
  // Every validated shape currently lowers, so synthesise a refusal: patch
  // the compiled stream with an opcode the prescan does not recognise and
  // tier over the patched copy. The refusal must name the opcode instead of
  // silently falling back wholesale.
  std::vector<CompiledFunc> patched(inst->compiled.begin(),
                                    inst->compiled.end());
  ASSERT_FALSE(patched.empty());
  ASSERT_FALSE(patched[0].code.empty());
  patched[0].code[0].op = 0x3fe;  // not a real instruction
  jit::TierConfig config;
  config.hot_threshold = 1;
  jit::TierSet tier(&inst->module(), patched, std::move(config));
  EXPECT_EQ(tier.refused_functions(), 0u);
  EXPECT_EQ(tier.last_refused_op(), 0xffffffffu);  // nothing refused yet
  tier.compile_all();
  EXPECT_EQ(tier.tier_up_compiles(), 0u);
  EXPECT_EQ(tier.refused_functions(), 1u);
  EXPECT_EQ(tier.last_refused_op(), 0x3feu);

  // The unpatched instance still runs fine on the AOT stream.
  std::vector<Value> args{Value::from_i32(9)};
  auto r = inst->invoke("f", args);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)[0].i32(), 10);
}

}  // namespace
}  // namespace watz::wasm
