// Engine behaviour tests, parameterised over ExecMode: every program must
// produce identical results under the interpreter and the AOT executor.
#include <gtest/gtest.h>

#include <cmath>

#include "wasm/builder.hpp"
#include "wasm/decoder.hpp"
#include "wasm/instance.hpp"

namespace watz::wasm {
namespace {

class EngineTest : public ::testing::TestWithParam<ExecMode> {
 protected:
  std::unique_ptr<Instance> instantiate(const Bytes& binary,
                                        const ImportResolver* imports = nullptr) {
    auto mod = decode_module(binary);
    EXPECT_TRUE(mod.ok()) << mod.error();
    static const ImportResolver kEmpty;
    auto inst = Instance::instantiate(std::move(*mod), imports ? *imports : kEmpty,
                                      GetParam());
    EXPECT_TRUE(inst.ok()) << inst.error();
    return std::move(*inst);
  }

  Value invoke1(Instance& inst, const std::string& name, std::vector<Value> args) {
    auto r = inst.invoke(name, args);
    EXPECT_TRUE(r.ok()) << r.error();
    EXPECT_EQ(r->size(), 1u);
    return r->front();
  }
};

TEST_P(EngineTest, ConstAndArithmetic) {
  ModuleBuilder b;
  const auto f = b.add_function({{ValType::I32, ValType::I32}, {ValType::I32}});
  CodeEmitter e;
  e.local_get(0).local_get(1).op(kI32Add).i32_const(10).op(kI32Mul);
  b.set_body(f, e.bytes());
  b.export_function("f", f);
  auto inst = instantiate(b.build());
  EXPECT_EQ(invoke1(*inst, "f", {Value::from_i32(3), Value::from_i32(4)}).i32(), 70);
}

TEST_P(EngineTest, FactorialRecursive) {
  ModuleBuilder b;
  const auto f = b.add_function({{ValType::I32}, {ValType::I32}});
  CodeEmitter e;
  // if (n <= 1) return 1; else return n * fact(n-1)
  e.local_get(0).i32_const(1).op(kI32LeS);
  e.if_(0x7f);
  e.i32_const(1);
  e.else_();
  e.local_get(0).local_get(0).i32_const(1).op(kI32Sub).call(f).op(kI32Mul);
  e.end();
  b.set_body(f, e.bytes());
  b.export_function("fact", f);
  auto inst = instantiate(b.build());
  EXPECT_EQ(invoke1(*inst, "fact", {Value::from_i32(10)}).i32(), 3628800);
  EXPECT_EQ(invoke1(*inst, "fact", {Value::from_i32(1)}).i32(), 1);
}

TEST_P(EngineTest, LoopWithBranch) {
  // Sum 1..n with a loop and br_if.
  ModuleBuilder b;
  const auto f = b.add_function({{ValType::I32}, {ValType::I32}},
                                {ValType::I32, ValType::I32});
  CodeEmitter e;
  // local1 = acc, local2 = i
  e.block();
  e.loop();
  e.local_get(2).local_get(0).op(kI32GeS).br_if(1);  // i >= n -> exit
  e.local_get(2).i32_const(1).op(kI32Add).local_set(2);
  e.local_get(1).local_get(2).op(kI32Add).local_set(1);
  e.br(0);
  e.end();
  e.end();
  e.local_get(1);
  b.set_body(f, e.bytes());
  b.export_function("sum", f);
  auto inst = instantiate(b.build());
  EXPECT_EQ(invoke1(*inst, "sum", {Value::from_i32(100)}).i32(), 5050);
  EXPECT_EQ(invoke1(*inst, "sum", {Value::from_i32(0)}).i32(), 0);
}

TEST_P(EngineTest, BrTableDispatch) {
  ModuleBuilder b;
  const auto f = b.add_function({{ValType::I32}, {ValType::I32}});
  CodeEmitter e;
  e.block();  // 2 (default)
  e.block();  // 1
  e.block();  // 0
  e.local_get(0).br_table({0, 1}, 2);
  e.end();
  e.i32_const(100).op(kReturn);
  e.end();
  e.i32_const(200).op(kReturn);
  e.end();
  e.i32_const(300);
  b.set_body(f, e.bytes());
  b.export_function("dispatch", f);
  auto inst = instantiate(b.build());
  EXPECT_EQ(invoke1(*inst, "dispatch", {Value::from_i32(0)}).i32(), 100);
  EXPECT_EQ(invoke1(*inst, "dispatch", {Value::from_i32(1)}).i32(), 200);
  EXPECT_EQ(invoke1(*inst, "dispatch", {Value::from_i32(2)}).i32(), 300);
  EXPECT_EQ(invoke1(*inst, "dispatch", {Value::from_i32(77)}).i32(), 300);
}

TEST_P(EngineTest, MemoryLoadStore) {
  ModuleBuilder b;
  b.add_memory(1);
  const auto f = b.add_function({{ValType::I32, ValType::I32}, {ValType::I32}});
  CodeEmitter e;
  e.local_get(0).local_get(1).store(kI32Store, 0);
  e.local_get(0).load(kI32Load, 0);
  b.set_body(f, e.bytes());
  b.export_function("roundtrip", f);
  auto inst = instantiate(b.build());
  EXPECT_EQ(invoke1(*inst, "roundtrip", {Value::from_i32(128), Value::from_i32(-42)}).i32(),
            -42);
}

TEST_P(EngineTest, MemorySubWordAccess) {
  ModuleBuilder b;
  b.add_memory(1);
  const auto f = b.add_function({{}, {ValType::I32}});
  CodeEmitter e;
  e.i32_const(0).i32_const(0xfff0).store(kI32Store16, 0);
  e.i32_const(0).load(kI32Load16S, 0);  // sign-extends
  b.set_body(f, e.bytes());
  b.export_function("f", f);
  auto inst = instantiate(b.build());
  EXPECT_EQ(invoke1(*inst, "f", {}).i32(), -16);
}

TEST_P(EngineTest, MemoryOutOfBoundsTraps) {
  ModuleBuilder b;
  b.add_memory(1);  // 64 KiB
  const auto f = b.add_function({{ValType::I32}, {ValType::I32}});
  CodeEmitter e;
  e.local_get(0).load(kI32Load, 0);
  b.set_body(f, e.bytes());
  b.export_function("peek", f);
  auto inst = instantiate(b.build());
  auto ok = inst->invoke("peek", std::vector<Value>{Value::from_i32(65532)});
  EXPECT_TRUE(ok.ok());
  auto oob = inst->invoke("peek", std::vector<Value>{Value::from_i32(65533)});
  EXPECT_FALSE(oob.ok());
  EXPECT_NE(oob.error().find("out of bounds"), std::string::npos);
  // Negative address = huge unsigned address.
  auto neg = inst->invoke("peek", std::vector<Value>{Value::from_i32(-4)});
  EXPECT_FALSE(neg.ok());
}

TEST_P(EngineTest, MemoryGrowAndSize) {
  ModuleBuilder b;
  b.add_memory(1, 3);
  const auto f = b.add_function({{ValType::I32}, {ValType::I32}});
  CodeEmitter e;
  e.local_get(0).memory_grow().op(kDrop).memory_size();
  b.set_body(f, e.bytes());
  b.export_function("grow", f);
  auto inst = instantiate(b.build());
  EXPECT_EQ(invoke1(*inst, "grow", {Value::from_i32(1)}).i32(), 2);
  // Growing past max fails, size unchanged.
  EXPECT_EQ(invoke1(*inst, "grow", {Value::from_i32(5)}).i32(), 2);
}

TEST_P(EngineTest, DataSegmentsInitialiseMemory) {
  ModuleBuilder b;
  b.add_memory(1);
  b.add_data(16, to_bytes("hi"));
  const auto f = b.add_function({{}, {ValType::I32}});
  CodeEmitter e;
  e.i32_const(16).load(kI32Load8U, 0);
  b.set_body(f, e.bytes());
  b.export_function("f", f);
  auto inst = instantiate(b.build());
  EXPECT_EQ(invoke1(*inst, "f", {}).i32(), 'h');
}

TEST_P(EngineTest, GlobalsReadWrite) {
  ModuleBuilder b;
  const auto g = b.add_global(ValType::I32, true, 7);
  const auto f = b.add_function({{ValType::I32}, {ValType::I32}});
  CodeEmitter e;
  e.global_get(g).local_get(0).op(kI32Add).global_set(g).global_get(g);
  b.set_body(f, e.bytes());
  b.export_function("bump", f);
  auto inst = instantiate(b.build());
  EXPECT_EQ(invoke1(*inst, "bump", {Value::from_i32(3)}).i32(), 10);
  EXPECT_EQ(invoke1(*inst, "bump", {Value::from_i32(3)}).i32(), 13);
}

TEST_P(EngineTest, CallIndirectThroughTable) {
  ModuleBuilder b;
  b.add_table(2);
  const FuncType unary{{ValType::I32}, {ValType::I32}};
  const auto dbl = b.add_function(unary);
  {
    CodeEmitter e;
    e.local_get(0).i32_const(2).op(kI32Mul);
    b.set_body(dbl, e.bytes());
  }
  const auto sqr = b.add_function(unary);
  {
    CodeEmitter e;
    e.local_get(0).local_get(0).op(kI32Mul);
    b.set_body(sqr, e.bytes());
  }
  b.add_element(0, {dbl, sqr});
  const auto f = b.add_function({{ValType::I32, ValType::I32}, {ValType::I32}});
  {
    CodeEmitter e;
    e.local_get(1).local_get(0).call_indirect(b.add_type(unary));
    b.set_body(f, e.bytes());
  }
  b.export_function("apply", f);
  auto inst = instantiate(b.build());
  EXPECT_EQ(invoke1(*inst, "apply", {Value::from_i32(0), Value::from_i32(9)}).i32(), 18);
  EXPECT_EQ(invoke1(*inst, "apply", {Value::from_i32(1), Value::from_i32(9)}).i32(), 81);
  // Out-of-range table index traps.
  auto oob = inst->invoke("apply", std::vector<Value>{Value::from_i32(5), Value::from_i32(1)});
  EXPECT_FALSE(oob.ok());
}

TEST_P(EngineTest, HostFunctionImport) {
  ImportResolver imports;
  int call_count = 0;
  imports.add_function("env", "add3", {{ValType::I32}, {ValType::I32}},
                       [&call_count](Instance&, std::span<const Value> args)
                           -> Result<std::vector<Value>> {
                         ++call_count;
                         return std::vector<Value>{Value::from_i32(args[0].i32() + 3)};
                       });
  ModuleBuilder b;
  const auto imp = b.import_function("env", "add3", {{ValType::I32}, {ValType::I32}});
  const auto f = b.add_function({{ValType::I32}, {ValType::I32}});
  CodeEmitter e;
  e.local_get(0).call(imp).call(imp);
  b.set_body(f, e.bytes());
  b.export_function("f", f);
  auto inst = instantiate(b.build(), &imports);
  EXPECT_EQ(invoke1(*inst, "f", {Value::from_i32(1)}).i32(), 7);
  EXPECT_EQ(call_count, 2);
}

TEST_P(EngineTest, HostFunctionTrapPropagates) {
  ImportResolver imports;
  imports.add_function("env", "boom", {{}, {}},
                       [](Instance&, std::span<const Value>) -> Result<std::vector<Value>> {
                         return Result<std::vector<Value>>::err("host exploded");
                       });
  ModuleBuilder b;
  const auto imp = b.import_function("env", "boom", {{}, {}});
  const auto f = b.add_function({{}, {}});
  CodeEmitter e;
  e.call(imp);
  b.set_body(f, e.bytes());
  b.export_function("f", f);
  auto inst = instantiate(b.build(), &imports);
  auto r = inst->invoke("f", {});
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error().find("host exploded"), std::string::npos);
}

TEST_P(EngineTest, DivisionTraps) {
  ModuleBuilder b;
  const auto f = b.add_function({{ValType::I32, ValType::I32}, {ValType::I32}});
  CodeEmitter e;
  e.local_get(0).local_get(1).op(kI32DivS);
  b.set_body(f, e.bytes());
  b.export_function("div", f);
  auto inst = instantiate(b.build());
  EXPECT_EQ(invoke1(*inst, "div", {Value::from_i32(-7), Value::from_i32(2)}).i32(), -3);
  auto by_zero = inst->invoke("div", std::vector<Value>{Value::from_i32(1), Value::from_i32(0)});
  EXPECT_FALSE(by_zero.ok());
  auto overflow = inst->invoke(
      "div", std::vector<Value>{Value::from_i32(INT32_MIN), Value::from_i32(-1)});
  EXPECT_FALSE(overflow.ok());
}

TEST_P(EngineTest, UnreachableTraps) {
  ModuleBuilder b;
  const auto f = b.add_function({{}, {}});
  CodeEmitter e;
  e.op(kUnreachable);
  b.set_body(f, e.bytes());
  b.export_function("f", f);
  auto inst = instantiate(b.build());
  auto r = inst->invoke("f", {});
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error().find("unreachable"), std::string::npos);
}

TEST_P(EngineTest, InfiniteRecursionTrapsNotCrashes) {
  ModuleBuilder b;
  const auto f = b.add_function({{}, {}});
  CodeEmitter e;
  e.call(f);
  b.set_body(f, e.bytes());
  b.export_function("f", f);
  auto inst = instantiate(b.build());
  auto r = inst->invoke("f", {});
  EXPECT_FALSE(r.ok());
  EXPECT_NE(r.error().find("call stack exhausted"), std::string::npos);
}

TEST_P(EngineTest, FloatArithmetic) {
  ModuleBuilder b;
  const auto f = b.add_function({{ValType::F64, ValType::F64}, {ValType::F64}});
  CodeEmitter e;
  e.local_get(0).local_get(1).op(kF64Mul).op(kF64Sqrt);
  b.set_body(f, e.bytes());
  b.export_function("gm", f);
  auto inst = instantiate(b.build());
  EXPECT_DOUBLE_EQ(invoke1(*inst, "gm", {Value::from_f64(4.0), Value::from_f64(9.0)}).f64(),
                   6.0);
}

TEST_P(EngineTest, FloatIntConversions) {
  ModuleBuilder b;
  const auto f = b.add_function({{ValType::F64}, {ValType::I32}});
  CodeEmitter e;
  e.local_get(0).op(kI32TruncF64S);
  b.set_body(f, e.bytes());
  b.export_function("trunc", f);
  auto inst = instantiate(b.build());
  EXPECT_EQ(invoke1(*inst, "trunc", {Value::from_f64(-3.9)}).i32(), -3);
  auto nan = inst->invoke("trunc", std::vector<Value>{Value::from_f64(NAN)});
  EXPECT_FALSE(nan.ok());
  auto big = inst->invoke("trunc", std::vector<Value>{Value::from_f64(3e9)});
  EXPECT_FALSE(big.ok());
}

TEST_P(EngineTest, SelectAndDrop) {
  ModuleBuilder b;
  const auto f = b.add_function({{ValType::I32}, {ValType::I32}});
  CodeEmitter e;
  e.i32_const(111).op(kDrop);
  e.i32_const(10).i32_const(20).local_get(0).op(kSelect);
  b.set_body(f, e.bytes());
  b.export_function("pick", f);
  auto inst = instantiate(b.build());
  EXPECT_EQ(invoke1(*inst, "pick", {Value::from_i32(1)}).i32(), 10);
  EXPECT_EQ(invoke1(*inst, "pick", {Value::from_i32(0)}).i32(), 20);
}

TEST_P(EngineTest, BlockWithResultAndNestedBr) {
  ModuleBuilder b;
  const auto f = b.add_function({{ValType::I32}, {ValType::I32}});
  CodeEmitter e;
  // block (result i32): if arg != 0 br with 5 on stack else fall out with 9.
  e.block(0x7f);
  e.i32_const(5).local_get(0).br_if(0).op(kDrop);
  e.i32_const(9);
  e.end();
  b.set_body(f, e.bytes());
  b.export_function("f", f);
  auto inst = instantiate(b.build());
  EXPECT_EQ(invoke1(*inst, "f", {Value::from_i32(1)}).i32(), 5);
  EXPECT_EQ(invoke1(*inst, "f", {Value::from_i32(0)}).i32(), 9);
}

TEST_P(EngineTest, MemoryCopyAndFill) {
  ModuleBuilder b;
  b.add_memory(1);
  const auto f = b.add_function({{}, {ValType::I32}});
  CodeEmitter e;
  e.i32_const(0).i32_const(0xab).i32_const(8).memory_fill();
  e.i32_const(100).i32_const(0).i32_const(8).memory_copy();
  e.i32_const(104).load(kI32Load, 0);
  b.set_body(f, e.bytes());
  b.export_function("f", f);
  auto inst = instantiate(b.build());
  EXPECT_EQ(invoke1(*inst, "f", {}).u32(), 0xababababu);
}

TEST_P(EngineTest, StartFunctionRuns) {
  ModuleBuilder b;
  const auto g = b.add_global(ValType::I32, true, 0);
  const auto init = b.add_function({{}, {}});
  CodeEmitter e;
  e.i32_const(99).global_set(g);
  b.set_body(init, e.bytes());
  b.set_start(init);
  const auto get = b.add_function({{}, {ValType::I32}});
  CodeEmitter e2;
  e2.global_get(g);
  b.set_body(get, e2.bytes());
  b.export_function("get", get);
  auto inst = instantiate(b.build());
  EXPECT_EQ(invoke1(*inst, "get", {}).i32(), 99);
}

TEST_P(EngineTest, I64Arithmetic) {
  ModuleBuilder b;
  const auto f = b.add_function({{ValType::I64, ValType::I64}, {ValType::I64}});
  CodeEmitter e;
  e.local_get(0).local_get(1).op(kI64Mul);
  b.set_body(f, e.bytes());
  b.export_function("mul", f);
  auto inst = instantiate(b.build());
  EXPECT_EQ(invoke1(*inst, "mul",
                    {Value::from_i64(0x100000000LL), Value::from_i64(3)})
                .i64(),
            0x300000000LL);
}

TEST_P(EngineTest, ShiftAndRotate) {
  ModuleBuilder b;
  const auto f = b.add_function({{ValType::I32, ValType::I32}, {ValType::I32}});
  CodeEmitter e;
  e.local_get(0).local_get(1).op(kI32Rotl);
  b.set_body(f, e.bytes());
  b.export_function("rotl", f);
  auto inst = instantiate(b.build());
  EXPECT_EQ(invoke1(*inst, "rotl", {Value::from_i32(0x80000001), Value::from_i32(1)}).u32(),
            3u);
  // Shift counts are masked mod 32.
  EXPECT_EQ(invoke1(*inst, "rotl", {Value::from_i32(0x1234), Value::from_i32(32)}).u32(),
            0x1234u);
}

TEST_P(EngineTest, ArgumentValidation) {
  ModuleBuilder b;
  const auto f = b.add_function({{ValType::I32}, {ValType::I32}});
  CodeEmitter e;
  e.local_get(0);
  b.set_body(f, e.bytes());
  b.export_function("id", f);
  auto inst = instantiate(b.build());
  EXPECT_FALSE(inst->invoke("id", {}).ok());                       // too few args
  EXPECT_FALSE(inst->invoke("missing", std::vector<Value>{}).ok());  // no such export
  auto wrong_type = inst->invoke("id", std::vector<Value>{Value::from_i64(1)});
  EXPECT_FALSE(wrong_type.ok());
}

INSTANTIATE_TEST_SUITE_P(Modes, EngineTest,
                         ::testing::Values(ExecMode::Interp, ExecMode::Aot),
                         [](const ::testing::TestParamInfo<ExecMode>& info) {
                           return info.param == ExecMode::Aot ? "Aot" : "Interp";
                         });

}  // namespace
}  // namespace watz::wasm
