// Operand-stack growth regression tests (all execution tiers).
//
// exec_call_aot grows the shared operand-stack vector with resize() in the
// middle of a call chain, while every live caller frame still has operand
// slots below sp. Nothing may cache an element pointer across a nested
// call: the AOT stream indexes stack[...] afresh, the JIT reloads its
// frame-base register after every helper return, and call_host re-checks
// headroom before pushing host results. These tests force reallocation at
// maximum depth and verify caller-held operands, locals and memory bindings
// all survive.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "wasm/builder.hpp"
#include "wasm/decoder.hpp"
#include "wasm/instance.hpp"
#include "wasm/jit/tier.hpp"
#include "wasm/opcodes.hpp"

namespace watz::wasm {
namespace {

std::unique_ptr<Instance> make_instance(const Bytes& bin, ExecMode mode,
                                        const ImportResolver& imports,
                                        bool with_tier) {
  auto mod = decode_module(bin);
  EXPECT_TRUE(mod.ok()) << mod.error();
  if (!mod.ok()) return nullptr;
  auto inst = Instance::instantiate(std::move(*mod), imports, mode);
  EXPECT_TRUE(inst.ok()) << inst.error();
  if (!inst.ok()) return nullptr;
  if (with_tier && jit::jit_available()) {
    jit::TierConfig config;
    config.hot_threshold = 1;
    auto tier = std::make_shared<jit::TierSet>(&(*inst)->module(),
                                               (*inst)->compiled,
                                               std::move(config));
    tier->compile_all();
    (*inst)->tier = tier;
  }
  return std::move(*inst);
}

/// Builds: f(n) = 0 when n == 0, else (n*2) + (f(n-1) + n*3) + pad-locals.
/// The n*2 operand is pushed BEFORE the recursive call and consumed after
/// it returns, so it sits in a caller frame across every resize; 24 dead
/// locals per frame inflate frame size so a 500-deep chain reallocates the
/// 1024-slot initial stack several times over.
Bytes deep_sum_module() {
  ModuleBuilder mb;
  FuncType ft{{ValType::I64}, {ValType::I64}};
  std::vector<ValType> pad(24, ValType::I64);
  auto f = mb.add_function(ft, pad);
  CodeEmitter ce;
  // Touch the pad locals so they are not trivially dead.
  ce.local_get(0).local_set(12);
  ce.local_get(0).op(kI64Eqz);
  ce.if_(0x7e);
  ce.i64_const(0);
  ce.else_();
  ce.local_get(0).i64_const(2).op(kI64Mul);  // live across the call
  ce.local_get(0).i64_const(1).op(kI64Sub).call(f);
  ce.local_get(12).i64_const(3).op(kI64Mul).op(kI64Add);
  ce.op(kI64Add);
  ce.end();
  mb.set_body(f, ce.bytes());
  mb.export_function("f", f);
  return mb.build();
}

void check_deep_sum(ExecMode mode, bool with_tier) {
  ImportResolver imports;
  auto inst = make_instance(deep_sum_module(), mode, imports, with_tier);
  ASSERT_TRUE(inst);
  // f(n) = sum_{k=1..n} 5k = 5 n (n+1) / 2.
  for (std::int64_t n : {0, 1, 100, 500}) {
    std::vector<Value> args{Value::from_i64(n)};
    auto r = inst->invoke("f", args);
    ASSERT_TRUE(r.ok()) << "n=" << n << ": " << r.error();
    EXPECT_EQ((*r)[0].i64(), 5 * n * (n + 1) / 2) << "n=" << n;
  }
  // One past the depth limit traps cleanly instead of corrupting frames.
  std::vector<Value> deep{Value::from_i64(100000)};
  auto r = inst->invoke("f", deep);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), "trap: call stack exhausted");
}

TEST(ExecStack, DeepRecursionResizeInterp) {
  check_deep_sum(ExecMode::Interp, false);
}
TEST(ExecStack, DeepRecursionResizeAotStream) {
  check_deep_sum(ExecMode::Aot, false);
}
TEST(ExecStack, DeepRecursionResizeNative) {
  check_deep_sum(ExecMode::Aot, true);
}

/// A callee grows linear memory; the CALLER then stores to and loads from
/// the newly valid page with an operand held from before the call. Any
/// frame that cached the memory base or size across the call breaks here.
Bytes grow_in_callee_module() {
  ModuleBuilder mb;
  mb.add_memory(1, 4);
  auto grower = mb.add_function(FuncType{{}, {ValType::I32}});
  {
    CodeEmitter ce;
    ce.i32_const(1).memory_grow();
    mb.set_body(grower, ce.bytes());
  }
  auto f = mb.add_function(FuncType{{ValType::I32}, {ValType::I32}});
  CodeEmitter ce;
  ce.local_get(0);             // live across the call
  ce.call(grower).op(kDrop);   // memory reallocates here
  ce.i32_const(65536 + 64).local_get(0).store(kI32Store, 0);
  ce.i32_const(65536 + 64).load(kI32Load, 0);
  ce.op(kI32Add);
  mb.set_body(f, ce.bytes());
  mb.export_function("f", f);
  return mb.build();
}

void check_grow_in_callee(ExecMode mode, bool with_tier) {
  ImportResolver imports;
  auto inst = make_instance(grow_in_callee_module(), mode, imports, with_tier);
  ASSERT_TRUE(inst);
  std::vector<Value> args{Value::from_i32(21)};
  auto r = inst->invoke("f", args);
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ((*r)[0].i32(), 42);
}

TEST(ExecStack, CalleeGrowRebindsCallerInterp) {
  check_grow_in_callee(ExecMode::Interp, false);
}
TEST(ExecStack, CalleeGrowRebindsCallerAotStream) {
  check_grow_in_callee(ExecMode::Aot, false);
}
TEST(ExecStack, CalleeGrowRebindsCallerNative) {
  check_grow_in_callee(ExecMode::Aot, true);
}

/// Host results are pushed with an explicit headroom check: a host function
/// called at the bottom of a deep chain (stack near its high-water mark)
/// returning a value must grow the vector rather than write past it.
TEST(ExecStack, HostResultsAtDepthGrowTheStack) {
  ModuleBuilder mb;
  auto host = mb.import_function("env", "mark",
                                 FuncType{{}, {ValType::I64}});
  FuncType ft{{ValType::I64}, {ValType::I64}};
  std::vector<ValType> pad(24, ValType::I64);
  auto f = mb.add_function(ft, pad);
  CodeEmitter ce;
  ce.local_get(0).op(kI64Eqz);
  ce.if_(0x7e);
  ce.call(host);  // at max depth, with every caller frame below us
  ce.else_();
  ce.local_get(0).i64_const(1).op(kI64Sub).call(f);
  ce.end();
  mb.set_body(f, ce.bytes());
  mb.export_function("f", f);

  ImportResolver imports;
  imports.add_function("env", "mark", FuncType{{}, {ValType::I64}},
                       [](Instance&, std::span<const Value>) {
                         return Result<std::vector<Value>>{
                             std::vector<Value>{Value::from_i64(777)}};
                       });
  for (bool with_tier : {false, true}) {
    auto inst = make_instance(mb.build(), ExecMode::Aot, imports, with_tier);
    ASSERT_TRUE(inst);
    std::vector<Value> args{Value::from_i64(400)};
    auto r = inst->invoke("f", args);
    ASSERT_TRUE(r.ok()) << r.error();
    EXPECT_EQ((*r)[0].i64(), 777);
  }
}

}  // namespace
}  // namespace watz::wasm
