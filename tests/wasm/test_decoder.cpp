#include "wasm/decoder.hpp"

#include <gtest/gtest.h>

#include "wasm/builder.hpp"
#include "wasm/validator.hpp"

namespace watz::wasm {
namespace {

Bytes minimal_module() {
  ModuleBuilder b;
  const auto f = b.add_function({{}, {ValType::I32}});
  CodeEmitter e;
  e.i32_const(42);
  b.set_body(f, e.bytes());
  b.export_function("answer", f);
  return b.build();
}

TEST(Decoder, AcceptsMinimalModule) {
  auto mod = decode_module(minimal_module());
  ASSERT_TRUE(mod.ok()) << mod.error();
  EXPECT_EQ(mod->functions.size(), 1u);
  EXPECT_EQ(mod->exports.size(), 1u);
  EXPECT_EQ(mod->exports[0].name, "answer");
  EXPECT_TRUE(validate_module(*mod).ok());
}

TEST(Decoder, RejectsBadMagic) {
  Bytes bad = minimal_module();
  bad[0] = 'X';
  EXPECT_FALSE(decode_module(bad).ok());
}

TEST(Decoder, RejectsBadVersion) {
  Bytes bad = minimal_module();
  bad[4] = 9;
  EXPECT_FALSE(decode_module(bad).ok());
}

TEST(Decoder, RejectsTruncatedModule) {
  const Bytes good = minimal_module();
  // Note: 8 bytes (magic + version, no sections) is a *valid* empty module,
  // so cuts start below and above that boundary.
  for (std::size_t cut : {std::size_t{1}, std::size_t{4}, std::size_t{9}, good.size() - 1}) {
    const Bytes truncated(good.begin(), good.begin() + cut);
    EXPECT_FALSE(decode_module(truncated).ok()) << "cut=" << cut;
  }
}

TEST(Decoder, RejectsEmptyInput) { EXPECT_FALSE(decode_module({}).ok()); }

TEST(Decoder, DecodesImportsAndMemory) {
  ModuleBuilder b;
  b.import_function("wasi_snapshot_preview1", "proc_exit", {{ValType::I32}, {}});
  b.add_memory(2, 10);
  const auto f = b.add_function({{}, {}});
  b.set_body(f, {});
  b.export_function("_start", f);
  b.add_export("memory", ImportKind::Memory, 0);
  auto mod = decode_module(b.build());
  ASSERT_TRUE(mod.ok()) << mod.error();
  ASSERT_EQ(mod->imports.size(), 1u);
  EXPECT_EQ(mod->imports[0].module, "wasi_snapshot_preview1");
  EXPECT_EQ(mod->num_imported_funcs(), 1u);
  ASSERT_EQ(mod->memories.size(), 1u);
  EXPECT_EQ(mod->memories[0].min, 2u);
  EXPECT_EQ(mod->memories[0].max, 10u);
  EXPECT_TRUE(validate_module(*mod).ok());
}

TEST(Decoder, DecodesGlobalsTablesElementsData) {
  ModuleBuilder b;
  b.add_table(4);
  b.add_memory(1);
  b.add_global(ValType::I64, true, -5);
  const auto f = b.add_function({{}, {}});
  b.set_body(f, {});
  b.add_element(1, {f});
  b.add_data(32, to_bytes("payload"));
  auto mod = decode_module(b.build());
  ASSERT_TRUE(mod.ok()) << mod.error();
  EXPECT_EQ(mod->tables.size(), 1u);
  EXPECT_EQ(mod->globals.size(), 1u);
  EXPECT_TRUE(mod->globals[0].mutable_);
  ASSERT_EQ(mod->elements.size(), 1u);
  EXPECT_EQ(mod->elements[0].func_indices.size(), 1u);
  ASSERT_EQ(mod->data.size(), 1u);
  EXPECT_EQ(mod->data[0].data, to_bytes("payload"));
}

TEST(Decoder, CustomSectionsPreserved) {
  ModuleBuilder b;
  const auto f = b.add_function({{}, {}});
  b.set_body(f, {});
  b.add_custom("watz.meta", to_bytes("v1"));
  auto mod = decode_module(b.build());
  ASSERT_TRUE(mod.ok()) << mod.error();
  ASSERT_EQ(mod->custom.size(), 1u);
  EXPECT_EQ(mod->custom[0].name, "watz.meta");
  EXPECT_EQ(mod->custom[0].payload, to_bytes("v1"));
}

TEST(Decoder, RejectsDuplicateExports) {
  ModuleBuilder b;
  const auto f = b.add_function({{}, {}});
  b.set_body(f, {});
  b.export_function("f", f);
  b.export_function("f", f);
  EXPECT_FALSE(decode_module(b.build()).ok());
}

TEST(Validator, RejectsTypeErrors) {
  // i32.add on an i64 operand.
  ModuleBuilder b;
  const auto f = b.add_function({{}, {ValType::I32}});
  CodeEmitter e;
  e.i64_const(1).i32_const(2).op(kI32Add);
  b.set_body(f, e.bytes());
  auto mod = decode_module(b.build());
  ASSERT_TRUE(mod.ok());
  EXPECT_FALSE(validate_module(*mod).ok());
}

TEST(Validator, RejectsStackUnderflow) {
  ModuleBuilder b;
  const auto f = b.add_function({{}, {ValType::I32}});
  CodeEmitter e;
  e.op(kI32Add);  // nothing on the stack
  b.set_body(f, e.bytes());
  auto mod = decode_module(b.build());
  ASSERT_TRUE(mod.ok());
  EXPECT_FALSE(validate_module(*mod).ok());
}

TEST(Validator, RejectsWrongResultType) {
  ModuleBuilder b;
  const auto f = b.add_function({{}, {ValType::I32}});
  CodeEmitter e;
  e.f64_const(1.0);
  b.set_body(f, e.bytes());
  auto mod = decode_module(b.build());
  ASSERT_TRUE(mod.ok());
  EXPECT_FALSE(validate_module(*mod).ok());
}

TEST(Validator, RejectsBadLocalIndex) {
  ModuleBuilder b;
  const auto f = b.add_function({{ValType::I32}, {ValType::I32}});
  CodeEmitter e;
  e.local_get(5);
  b.set_body(f, e.bytes());
  auto mod = decode_module(b.build());
  ASSERT_TRUE(mod.ok());
  EXPECT_FALSE(validate_module(*mod).ok());
}

TEST(Validator, RejectsBadBranchDepth) {
  ModuleBuilder b;
  const auto f = b.add_function({{}, {}});
  CodeEmitter e;
  e.br(3);
  b.set_body(f, e.bytes());
  auto mod = decode_module(b.build());
  ASSERT_TRUE(mod.ok());
  EXPECT_FALSE(validate_module(*mod).ok());
}

TEST(Validator, RejectsMemoryOpsWithoutMemory) {
  ModuleBuilder b;
  const auto f = b.add_function({{}, {ValType::I32}});
  CodeEmitter e;
  e.i32_const(0).load(kI32Load, 0);
  b.set_body(f, e.bytes());
  auto mod = decode_module(b.build());
  ASSERT_TRUE(mod.ok());
  EXPECT_FALSE(validate_module(*mod).ok());
}

TEST(Validator, RejectsImmutableGlobalWrite) {
  ModuleBuilder b;
  const auto g = b.add_global(ValType::I32, false, 1);
  const auto f = b.add_function({{}, {}});
  CodeEmitter e;
  e.i32_const(2).global_set(g);
  b.set_body(f, e.bytes());
  auto mod = decode_module(b.build());
  ASSERT_TRUE(mod.ok());
  EXPECT_FALSE(validate_module(*mod).ok());
}

TEST(Validator, AcceptsUnreachableFollowedByAnything) {
  // Dead code is stack-polymorphic.
  ModuleBuilder b;
  const auto f = b.add_function({{}, {ValType::I32}});
  CodeEmitter e;
  e.op(kUnreachable).op(kI32Add).op(kDrop).i32_const(1);
  b.set_body(f, e.bytes());
  auto mod = decode_module(b.build());
  ASSERT_TRUE(mod.ok());
  EXPECT_TRUE(validate_module(*mod).ok()) << validate_module(*mod).error();
}

TEST(Validator, RejectsValuesLeftOnStack) {
  ModuleBuilder b;
  const auto f = b.add_function({{}, {}});
  CodeEmitter e;
  e.i32_const(1);
  b.set_body(f, e.bytes());
  auto mod = decode_module(b.build());
  ASSERT_TRUE(mod.ok());
  EXPECT_FALSE(validate_module(*mod).ok());
}

TEST(Validator, RejectsIfResultWithoutElse) {
  ModuleBuilder b;
  const auto f = b.add_function({{ValType::I32}, {ValType::I32}});
  CodeEmitter e;
  e.local_get(0).if_(0x7f).i32_const(1).end();
  b.set_body(f, e.bytes());
  auto mod = decode_module(b.build());
  ASSERT_TRUE(mod.ok());
  EXPECT_FALSE(validate_module(*mod).ok());
}

TEST(Validator, RejectsSelectTypeMismatch) {
  ModuleBuilder b;
  const auto f = b.add_function({{}, {ValType::I32}});
  CodeEmitter e;
  e.i32_const(1).i64_const(2).i32_const(0).op(kSelect).op(kDrop).i32_const(3);
  b.set_body(f, e.bytes());
  auto mod = decode_module(b.build());
  ASSERT_TRUE(mod.ok());
  EXPECT_FALSE(validate_module(*mod).ok());
}

}  // namespace
}  // namespace watz::wasm
