#include "common/result.hpp"

#include <gtest/gtest.h>

namespace watz {
namespace {

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.error().empty());
}

TEST(Result, HoldsError) {
  auto r = Result<int>::err("boom");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), "boom");
  EXPECT_THROW(r.value(), Error);
}

TEST(Result, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(7));
  ASSERT_TRUE(r.ok());
  auto owned = std::move(r).value();
  EXPECT_EQ(*owned, 7);
}

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_NO_THROW(s.check());
}

TEST(Status, ErrorPropagates) {
  auto s = Status::err("bad state");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.error(), "bad state");
  EXPECT_THROW(s.check(), Error);
}

}  // namespace
}  // namespace watz
