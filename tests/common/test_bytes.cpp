#include "common/bytes.hpp"

#include <gtest/gtest.h>

namespace watz {
namespace {

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xab, 0xff, 0x7f};
  EXPECT_EQ(to_hex(data), "0001abff7f");
  EXPECT_EQ(from_hex("0001abff7f"), data);
  EXPECT_EQ(from_hex("0001ABFF7F"), data);
}

TEST(Bytes, HexEmpty) {
  EXPECT_EQ(to_hex({}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, HexRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Bytes, HexRejectsBadDigit) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
}

TEST(Bytes, Concat) {
  const Bytes a = {1, 2};
  const Bytes b = {3};
  const Bytes c = {};
  EXPECT_EQ(concat({a, b, c}), (Bytes{1, 2, 3}));
  EXPECT_TRUE(concat({}).empty());
}

TEST(Bytes, CtEqual) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(ct_equal(a, b));
  EXPECT_FALSE(ct_equal(a, c));
  EXPECT_FALSE(ct_equal(a, d));
  EXPECT_TRUE(ct_equal({}, {}));
}

TEST(Bytes, LittleEndianScalars) {
  Bytes out;
  put_u16le(out, 0x1234);
  put_u32le(out, 0xdeadbeef);
  put_u64le(out, 0x0102030405060708ULL);
  ASSERT_EQ(out.size(), 14u);
  EXPECT_EQ(get_u16le(out.data()), 0x1234);
  EXPECT_EQ(get_u32le(out.data() + 2), 0xdeadbeefu);
  EXPECT_EQ(get_u64le(out.data() + 6), 0x0102030405060708ULL);
}

TEST(Bytes, BigEndianScalars) {
  Bytes out;
  put_u32be(out, 0x01020304);
  EXPECT_EQ(out, (Bytes{1, 2, 3, 4}));
  EXPECT_EQ(get_u32be(out.data()), 0x01020304u);
  Bytes out64;
  put_u64be(out64, 0x0102030405060708ULL);
  EXPECT_EQ(out64.front(), 1);
  EXPECT_EQ(out64.back(), 8);
}

TEST(Bytes, ToBytesFromString) {
  EXPECT_EQ(to_bytes("ab"), (Bytes{'a', 'b'}));
}

TEST(Bytes, Append) {
  Bytes out = {1};
  const Bytes more = {2, 3};
  append(out, more);
  EXPECT_EQ(out, (Bytes{1, 2, 3}));
}

}  // namespace
}  // namespace watz
