#include "common/leb128.hpp"

#include <gtest/gtest.h>

namespace watz {
namespace {

TEST(Leb128, UnsignedRoundTrip) {
  for (std::uint64_t v : {0ULL, 1ULL, 127ULL, 128ULL, 624485ULL, 0xffffffffULL,
                          0xffffffffffffffffULL}) {
    Bytes out;
    write_uleb(out, v);
    EXPECT_EQ(out.size(), uleb_size(v));
    ByteReader reader(out);
    auto back = reader.read_uleb64();
    ASSERT_TRUE(back.ok()) << back.error();
    EXPECT_EQ(*back, v);
    EXPECT_TRUE(reader.at_end());
  }
}

TEST(Leb128, SignedRoundTrip) {
  const std::int64_t values[] = {0,       1,        -1,        63,        64,
                                 -64,     -65,      624485,    -624485,   INT64_MAX,
                                 INT64_MIN};
  for (std::int64_t v : values) {
    Bytes out;
    write_sleb(out, v);
    ByteReader reader(out);
    auto back = reader.read_sleb64();
    ASSERT_TRUE(back.ok()) << back.error();
    EXPECT_EQ(*back, v);
  }
}

TEST(Leb128, KnownEncodings) {
  // Classic DWARF/Wasm examples.
  Bytes out;
  write_uleb(out, 624485);
  EXPECT_EQ(out, (Bytes{0xe5, 0x8e, 0x26}));
  out.clear();
  write_sleb(out, -123456);
  EXPECT_EQ(out, (Bytes{0xc0, 0xbb, 0x78}));
}

TEST(Leb128, Sleb32Range) {
  Bytes out;
  write_sleb(out, static_cast<std::int64_t>(INT32_MIN));
  ByteReader reader(out);
  auto v = reader.read_sleb32();
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, INT32_MIN);

  out.clear();
  write_sleb(out, static_cast<std::int64_t>(INT32_MAX) + 1);
  ByteReader reader2(out);
  EXPECT_FALSE(reader2.read_sleb32().ok());
}

TEST(Leb128, Uleb32Overflow) {
  const Bytes too_big = {0xff, 0xff, 0xff, 0xff, 0x7f};  // 35 bits set
  ByteReader reader(too_big);
  EXPECT_FALSE(reader.read_uleb32().ok());
}

TEST(Leb128, TruncatedInput) {
  const Bytes truncated = {0x80};  // continuation bit, no next byte
  ByteReader reader(truncated);
  EXPECT_FALSE(reader.read_uleb32().ok());
}

TEST(ByteReader, ReadPrimitives) {
  const Bytes data = {0xaa, 0x01, 0x02, 0x03, 0x04, 0x10, 0x11};
  ByteReader reader(data);
  EXPECT_EQ(*reader.read_u8(), 0xaa);
  EXPECT_EQ(*reader.read_u32le(), 0x04030201u);
  auto run = reader.read_bytes(2);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ((*run)[0], 0x10);
  EXPECT_TRUE(reader.at_end());
  EXPECT_FALSE(reader.read_u8().ok());
}

TEST(ByteReader, BoundsChecks) {
  const Bytes data = {1, 2};
  ByteReader reader(data);
  EXPECT_FALSE(reader.read_u32le().ok());
  EXPECT_FALSE(reader.read_bytes(3).ok());
  EXPECT_EQ(reader.remaining(), 2u);
}

}  // namespace
}  // namespace watz
