#include "crypto/gcm.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"

namespace watz::crypto {
namespace {

GcmIv make_iv(const Bytes& bytes) {
  GcmIv iv{};
  std::copy(bytes.begin(), bytes.end(), iv.begin());
  return iv;
}

// NIST GCM test vectors (AES-128).
TEST(Gcm, NistCase1EmptyPlaintext) {
  const Aes cipher(Bytes(16, 0));
  const auto out = gcm_seal(cipher, make_iv(Bytes(12, 0)), {}, {});
  EXPECT_EQ(to_hex(out), "58e2fccefa7e3061367f1d57a4e7455a");
}

TEST(Gcm, NistCase2SingleBlock) {
  const Aes cipher(Bytes(16, 0));
  const auto out = gcm_seal(cipher, make_iv(Bytes(12, 0)), {}, Bytes(16, 0));
  EXPECT_EQ(to_hex(out),
            "0388dace60b6a392f328c2b971b2fe78"
            "ab6e47d42cec13bdf53a67b21257bddf");
}

TEST(Gcm, NistCase3FourBlocks) {
  const Aes cipher(from_hex("feffe9928665731c6d6a8f9467308308"));
  const GcmIv iv = make_iv(from_hex("cafebabefacedbaddecaf888"));
  const Bytes pt = from_hex(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255");
  const auto out = gcm_seal(cipher, iv, {}, pt);
  EXPECT_EQ(to_hex(out),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091473f5985"
            "4d5c2af327cd64a62cf35abd2ba6fab4");
}

TEST(Gcm, NistCase4WithAad) {
  const Aes cipher(from_hex("feffe9928665731c6d6a8f9467308308"));
  const GcmIv iv = make_iv(from_hex("cafebabefacedbaddecaf888"));
  const Bytes pt = from_hex(
      "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72"
      "1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39");
  const Bytes aad = from_hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
  const auto out = gcm_seal(cipher, iv, aad, pt);
  EXPECT_EQ(to_hex(out),
            "42831ec2217774244b7221b784d0d49ce3aa212f2c02a4e035c17e2329aca12e"
            "21d514b25466931c7d8f6a5aac84aa051ba30b396a0aac973d58e091"
            "5bc94fbc3221a5db94fae95ae7121a47");
}

TEST(Gcm, SealOpenRoundTrip) {
  const Aes cipher(from_hex("000102030405060708090a0b0c0d0e0f"));
  const GcmIv iv = make_iv(from_hex("0102030405060708090a0b0c"));
  const Bytes pt = to_bytes("confidential data blob for the attester");
  const Bytes aad = to_bytes("header");
  const Bytes sealed = gcm_seal(cipher, iv, aad, pt);
  auto opened = gcm_open(cipher, iv, aad, sealed);
  ASSERT_TRUE(opened.ok()) << opened.error();
  EXPECT_EQ(*opened, pt);
}

TEST(Gcm, OpenDetectsCiphertextTampering) {
  const Aes cipher(Bytes(16, 1));
  const GcmIv iv{};
  Bytes sealed = gcm_seal(cipher, iv, {}, to_bytes("hello world"));
  sealed[0] ^= 0x01;
  EXPECT_FALSE(gcm_open(cipher, iv, {}, sealed).ok());
}

TEST(Gcm, OpenDetectsTagTampering) {
  const Aes cipher(Bytes(16, 1));
  const GcmIv iv{};
  Bytes sealed = gcm_seal(cipher, iv, {}, to_bytes("hello world"));
  sealed.back() ^= 0x80;
  EXPECT_FALSE(gcm_open(cipher, iv, {}, sealed).ok());
}

TEST(Gcm, OpenDetectsAadMismatch) {
  const Aes cipher(Bytes(16, 1));
  const GcmIv iv{};
  const Bytes sealed = gcm_seal(cipher, iv, to_bytes("aad-a"), to_bytes("payload"));
  EXPECT_FALSE(gcm_open(cipher, iv, to_bytes("aad-b"), sealed).ok());
}

TEST(Gcm, OpenRejectsTruncatedInput) {
  const Aes cipher(Bytes(16, 1));
  EXPECT_FALSE(gcm_open(cipher, GcmIv{}, {}, Bytes(15)).ok());
}

TEST(Gcm, LargePayloadRoundTrip) {
  const Aes cipher(Bytes(16, 9));
  GcmIv iv{};
  iv[0] = 0x42;
  Bytes pt(1 << 20);  // 1 MiB, like a msg3 secret blob
  for (std::size_t i = 0; i < pt.size(); ++i) pt[i] = static_cast<std::uint8_t>(i * 31);
  const Bytes sealed = gcm_seal(cipher, iv, {}, pt);
  auto opened = gcm_open(cipher, iv, {}, sealed);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, pt);
}

}  // namespace
}  // namespace watz::crypto
