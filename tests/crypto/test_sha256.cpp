#include "crypto/sha256.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"

namespace watz::crypto {
namespace {

std::string hex_digest(ByteView data) {
  const Sha256Digest d = sha256(data);
  return to_hex(d);
}

TEST(Sha256, EmptyString) {
  EXPECT_EQ(hex_digest({}),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex_digest(to_bytes("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex_digest(to_bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  const Bytes data(1000000, 'a');
  EXPECT_EQ(hex_digest(data),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes data = to_bytes("the quick brown fox jumps over the lazy dog repeatedly");
  // Feed in irregular chunk sizes crossing block boundaries.
  for (std::size_t chunk : {1u, 3u, 7u, 19u, 63u, 64u, 65u}) {
    Sha256 ctx;
    std::size_t off = 0;
    while (off < data.size()) {
      const std::size_t take = std::min(chunk, data.size() - off);
      ctx.update(ByteView(data.data() + off, take));
      off += take;
    }
    EXPECT_EQ(ctx.finish(), sha256(data)) << "chunk=" << chunk;
  }
}

TEST(Sha256, ExactBlockBoundaries) {
  // 55/56/64 byte inputs hit the padding edge cases.
  for (std::size_t n : {55u, 56u, 63u, 64u, 119u, 120u, 128u}) {
    const Bytes data(n, 0x5a);
    Sha256 ctx;
    ctx.update(data);
    EXPECT_EQ(ctx.finish(), sha256(data)) << n;
  }
}

TEST(Sha256, ResetReusesObject) {
  Sha256 ctx;
  ctx.update(to_bytes("abc"));
  (void)ctx.finish();
  ctx.reset();
  ctx.update(to_bytes("abc"));
  EXPECT_EQ(to_hex(ctx.finish()),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

}  // namespace
}  // namespace watz::crypto
