#include "crypto/kdf.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/bytes.hpp"

namespace watz::crypto {
namespace {

Scalar32 test_shared_x() {
  Scalar32 x;
  for (int i = 0; i < 32; ++i) x[i] = static_cast<std::uint8_t>(i + 1);
  return x;
}

TEST(Kdf, KdkMatchesManualComputation) {
  const Scalar32 x = test_shared_x();
  // KDK = CMAC(0^16, reverse(x)) per the SGX derivation.
  Scalar32 le;
  std::reverse_copy(x.begin(), x.end(), le.begin());
  const Key128 zero{};
  EXPECT_EQ(derive_kdk(x), aes_cmac(zero, le));
}

TEST(Kdf, SubkeyMatchesManualComputation) {
  const Key128 kdk = derive_kdk(test_shared_x());
  const Bytes msg = concat({ByteView((const std::uint8_t*)"\x01", 1), to_bytes("SMK"),
                            ByteView((const std::uint8_t*)"\x00\x80\x00", 3)});
  EXPECT_EQ(derive_subkey(kdk, "SMK"), aes_cmac(kdk, msg));
}

TEST(Kdf, SessionKeysAreDistinct) {
  const SessionKeys keys = derive_session_keys(test_shared_x());
  EXPECT_NE(keys.km, keys.ke);
}

TEST(Kdf, Deterministic) {
  EXPECT_EQ(derive_session_keys(test_shared_x()).km,
            derive_session_keys(test_shared_x()).km);
}

TEST(Kdf, DifferentSecretsGiveDifferentKeys) {
  Scalar32 other = test_shared_x();
  other[0] ^= 1;
  EXPECT_NE(derive_session_keys(test_shared_x()).km, derive_session_keys(other).km);
  EXPECT_NE(derive_session_keys(test_shared_x()).ke, derive_session_keys(other).ke);
}

TEST(Kdf, LabelsSeparateKeys) {
  const Key128 kdk = derive_kdk(test_shared_x());
  EXPECT_NE(derive_subkey(kdk, "SMK"), derive_subkey(kdk, "SEK"));
  EXPECT_NE(derive_subkey(kdk, "SMK"), derive_subkey(kdk, "SMJ"));
}

}  // namespace
}  // namespace watz::crypto
