#include "crypto/ecdsa.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "crypto/fortuna.hpp"

namespace watz::crypto {
namespace {

Scalar32 scalar_from_hex(std::string_view hex) {
  const Bytes raw = from_hex(hex);
  Scalar32 s{};
  std::copy(raw.begin(), raw.end(), s.begin());
  return s;
}

// RFC 6979 A.2.5: P-256 / SHA-256 reference key.
const Scalar32 kPriv = scalar_from_hex(
    "c9afa9d845ba75166b5c215767b1d6934e50c3db36e89b127b8a622b120f6721");

TEST(Ecdsa, Rfc6979PublicKey) {
  auto kp = keypair_from_private(kPriv);
  ASSERT_TRUE(kp.ok());
  EXPECT_EQ(to_hex(kp->pub.x),
            "60fed4ba255a9d31c961eb74c6356d68c049b8923b61fa6ce669622e60f29fb6");
  EXPECT_EQ(to_hex(kp->pub.y),
            "7903fe1008b8bc99a41ae9e95628bc64f2f1b20c2d7e9f5177a3c294d4462299");
}

TEST(Ecdsa, Rfc6979SampleSignature) {
  const auto sig = ecdsa_sign(kPriv, sha256(to_bytes("sample")));
  EXPECT_EQ(to_hex(sig.r),
            "efd48b2aacb6a8fd1140dd9cd45e81d69d2c877b56aaf991c34d0ea84eaf3716");
  EXPECT_EQ(to_hex(sig.s),
            "f7cb1c942d657c41d436c7a1b6e29f65f3e900dbb9aff4064dc4ab2f843acda8");
}

TEST(Ecdsa, Rfc6979TestSignature) {
  const auto sig = ecdsa_sign(kPriv, sha256(to_bytes("test")));
  EXPECT_EQ(to_hex(sig.r),
            "f1abb023518351cd71d881567b1ea663ed3efcf6c5132b354f28d3b0b7d38367");
  EXPECT_EQ(to_hex(sig.s),
            "019f4113742a2b14bd25926b49c649155f267e60d3814b4c0cc84250e46f0083");
}

TEST(Ecdsa, SignVerifyRoundTrip) {
  auto kp = keypair_from_private(kPriv);
  ASSERT_TRUE(kp.ok());
  const auto digest = sha256(to_bytes("evidence payload"));
  const auto sig = ecdsa_sign(kPriv, digest);
  EXPECT_TRUE(ecdsa_verify(kp->pub, digest, sig));
}

TEST(Ecdsa, VerifyRejectsWrongDigest) {
  auto kp = keypair_from_private(kPriv);
  ASSERT_TRUE(kp.ok());
  const auto sig = ecdsa_sign(kPriv, sha256(to_bytes("original")));
  EXPECT_FALSE(ecdsa_verify(kp->pub, sha256(to_bytes("tampered")), sig));
}

TEST(Ecdsa, VerifyRejectsCorruptedSignature) {
  auto kp = keypair_from_private(kPriv);
  ASSERT_TRUE(kp.ok());
  const auto digest = sha256(to_bytes("message"));
  auto sig = ecdsa_sign(kPriv, digest);
  sig.r[0] ^= 1;
  EXPECT_FALSE(ecdsa_verify(kp->pub, digest, sig));
  sig.r[0] ^= 1;
  sig.s[31] ^= 1;
  EXPECT_FALSE(ecdsa_verify(kp->pub, digest, sig));
}

TEST(Ecdsa, VerifyRejectsWrongKey) {
  Fortuna rng(to_bytes("another-key-seed"));
  const KeyPair other = ecdsa_keygen(rng);
  const auto digest = sha256(to_bytes("message"));
  const auto sig = ecdsa_sign(kPriv, digest);
  EXPECT_FALSE(ecdsa_verify(other.pub, digest, sig));
}

TEST(Ecdsa, VerifyRejectsZeroSignatureComponents) {
  auto kp = keypair_from_private(kPriv);
  ASSERT_TRUE(kp.ok());
  const auto digest = sha256(to_bytes("message"));
  EcdsaSignature zero_sig{};
  EXPECT_FALSE(ecdsa_verify(kp->pub, digest, zero_sig));
}

TEST(Ecdsa, VerifyRejectsInfinityOrOffCurveKey) {
  const auto digest = sha256(to_bytes("message"));
  const auto sig = ecdsa_sign(kPriv, digest);
  EXPECT_FALSE(ecdsa_verify(EcPoint{}, digest, sig));
  auto kp = keypair_from_private(kPriv);
  EcPoint off = kp->pub;
  off.y[31] ^= 1;
  EXPECT_FALSE(ecdsa_verify(off, digest, sig));
}

TEST(Ecdsa, KeygenProducesValidDistinctKeys) {
  Fortuna rng(to_bytes("keygen-seed"));
  const KeyPair a = ecdsa_keygen(rng);
  const KeyPair b = ecdsa_keygen(rng);
  EXPECT_TRUE(p256_scalar_valid(a.priv));
  EXPECT_TRUE(p256_on_curve(a.pub));
  EXPECT_NE(a.priv, b.priv);
  EXPECT_NE(a.pub, b.pub);
}

TEST(Ecdsa, KeygenDeterministicFromSeed) {
  Fortuna rng1(to_bytes("boot-seed"));
  Fortuna rng2(to_bytes("boot-seed"));
  EXPECT_EQ(ecdsa_keygen(rng1).priv, ecdsa_keygen(rng2).priv);
}

TEST(Ecdsa, SignatureEncodeDecode) {
  const auto sig = ecdsa_sign(kPriv, sha256(to_bytes("x")));
  const Bytes enc = sig.encode();
  ASSERT_EQ(enc.size(), 64u);
  auto dec = EcdsaSignature::decode(enc);
  ASSERT_TRUE(dec.ok());
  EXPECT_EQ(dec->r, sig.r);
  EXPECT_EQ(dec->s, sig.s);
  EXPECT_FALSE(EcdsaSignature::decode(Bytes(63)).ok());
}

TEST(Ecdsa, KeypairFromPrivateRejectsInvalid) {
  EXPECT_FALSE(keypair_from_private(Scalar32{}).ok());
  Scalar32 all_ff;
  all_ff.fill(0xff);
  EXPECT_FALSE(keypair_from_private(all_ff).ok());
}

TEST(Ecdh, NistCavsVector) {
  // NIST CAVS KAS ECC CDH P-256, count = 0.
  const Scalar32 d = scalar_from_hex(
      "7d7dc5f71eb29ddaf80d6214632eeae03d9058af1fb6d22ed80badb62bc1a534");
  EcPoint peer;
  peer.infinity = false;
  peer.x = scalar_from_hex("700c48f77f56584c5cc632ca65640db91b6bacce3a4df6b42ce7cc838833d287");
  peer.y = scalar_from_hex("db71e509e3fd9b060ddb20ba5c51dcc5948d46fbf640dfe0441782cab85fa4ac");
  auto z = ecdh_shared_x(d, peer);
  ASSERT_TRUE(z.ok()) << z.error();
  EXPECT_EQ(to_hex(*z),
            "46fc62106420ff012e54a434fbdd2d25ccc5852060561e68040dd7778997bd7b");
}

TEST(Ecdh, SharedSecretAgreement) {
  Fortuna rng(to_bytes("ecdh-seed"));
  const KeyPair alice = ecdsa_keygen(rng);
  const KeyPair bob = ecdsa_keygen(rng);
  auto za = ecdh_shared_x(alice.priv, bob.pub);
  auto zb = ecdh_shared_x(bob.priv, alice.pub);
  ASSERT_TRUE(za.ok());
  ASSERT_TRUE(zb.ok());
  EXPECT_EQ(*za, *zb);
}

TEST(Ecdh, RejectsInvalidPeer) {
  Fortuna rng(to_bytes("ecdh-seed-2"));
  const KeyPair alice = ecdsa_keygen(rng);
  EXPECT_FALSE(ecdh_shared_x(alice.priv, EcPoint{}).ok());
  EcPoint off = alice.pub;
  off.x[0] ^= 0xff;
  EXPECT_FALSE(ecdh_shared_x(alice.priv, off).ok());
}

}  // namespace
}  // namespace watz::crypto
