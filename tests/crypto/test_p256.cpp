#include "crypto/p256.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"

namespace watz::crypto {
namespace {

Scalar32 scalar_from_hex(std::string_view hex) {
  const Bytes raw = from_hex(hex);
  Scalar32 s{};
  std::copy(raw.begin(), raw.end(), s.begin() + (32 - raw.size()));
  return s;
}

Scalar32 small_scalar(std::uint64_t v) {
  Scalar32 s{};
  for (int i = 0; i < 8; ++i) s[31 - i] = static_cast<std::uint8_t>(v >> (8 * i));
  return s;
}

const Scalar32 kGx = scalar_from_hex(
    "6b17d1f2e12c4247f8bce6e563a440f277037d812deb33a0f4a13945d898c296");
const Scalar32 kGy = scalar_from_hex(
    "4fe342e2fe1a7f9b8ee7eb4a7c0f9e162bce33576b315ececbb6406837bf51f5");
const Scalar32 kOrderN = scalar_from_hex(
    "ffffffff00000000ffffffffffffffffbce6faada7179e84f3b9cac2fc632551");

EcPoint generator() { return EcPoint{kGx, kGy, false}; }

TEST(P256, GeneratorOnCurve) { EXPECT_TRUE(p256_on_curve(generator())); }

TEST(P256, MulByOneIsGenerator) {
  const EcPoint g1 = p256_base_mul(small_scalar(1));
  EXPECT_EQ(g1, generator());
}

TEST(P256, KnownMultiples) {
  // Vectors from the standard P-256 point multiplication tables.
  const EcPoint g2 = p256_base_mul(small_scalar(2));
  EXPECT_EQ(to_hex(g2.x), "7cf27b188d034f7e8a52380304b51ac3c08969e277f21b35a60b48fc47669978");
  EXPECT_EQ(to_hex(g2.y), "07775510db8ed040293d9ac69f7430dbba7dade63ce982299e04b79d227873d1");

  const EcPoint g3 = p256_base_mul(small_scalar(3));
  EXPECT_EQ(to_hex(g3.x), "5ecbe4d1a6330a44c8f7ef951d4bf165e6c6b721efada985fb41661bc6e7fd6c");
  EXPECT_EQ(to_hex(g3.y), "8734640c4998ff7e374b06ce1a64a2ecd82ab036384fb83d9a79b127a27d5032");

  const EcPoint g20 = p256_base_mul(small_scalar(20));
  EXPECT_EQ(to_hex(g20.x), "83a01a9378395bab9bcd6a0ad03cc56d56e6b19250465a94a234dc4c6b28da9a");
}

TEST(P256, AdditionMatchesMultiplication) {
  const EcPoint g2 = p256_add(generator(), generator());
  EXPECT_EQ(g2, p256_base_mul(small_scalar(2)));
  const EcPoint g5 = p256_add(p256_base_mul(small_scalar(2)), p256_base_mul(small_scalar(3)));
  EXPECT_EQ(g5, p256_base_mul(small_scalar(5)));
}

TEST(P256, AdditiveIdentity) {
  const EcPoint inf;  // default = infinity
  EXPECT_TRUE(inf.infinity);
  EXPECT_EQ(p256_add(generator(), inf), generator());
  EXPECT_EQ(p256_add(inf, generator()), generator());
  EXPECT_TRUE(p256_add(inf, inf).infinity);
}

TEST(P256, InverseSumsToInfinity) {
  // (n-1)G = -G, so G + (n-1)G = infinity.
  Scalar32 n_minus_1 = kOrderN;
  n_minus_1[31] -= 1;
  const EcPoint neg_g = p256_base_mul(n_minus_1);
  EXPECT_EQ(neg_g.x, kGx);
  EXPECT_NE(neg_g.y, kGy);
  EXPECT_TRUE(p256_add(generator(), neg_g).infinity);
}

TEST(P256, ScalarMulDistributes) {
  // (a+b)G == aG + bG for a few scalar pairs.
  for (std::uint64_t a : {5ull, 1234567ull}) {
    for (std::uint64_t b : {7ull, 987654321ull}) {
      const EcPoint lhs = p256_base_mul(small_scalar(a + b));
      const EcPoint rhs = p256_add(p256_base_mul(small_scalar(a)), p256_base_mul(small_scalar(b)));
      EXPECT_EQ(lhs, rhs) << a << "+" << b;
    }
  }
}

TEST(P256, MulAssociatesThroughPoint) {
  // (ab)G == a(bG).
  const Scalar32 a = small_scalar(0xdeadbeef);
  const Scalar32 b = small_scalar(0x1234567);
  const Scalar32 ab = scalar_mul_mod_n(a, b);
  EXPECT_EQ(p256_base_mul(ab), p256_mul(p256_base_mul(b), a));
}

TEST(P256, OffCurvePointRejected) {
  EcPoint bogus = generator();
  bogus.y[31] ^= 1;
  EXPECT_FALSE(p256_on_curve(bogus));
}

TEST(P256, EncodeDecodeRoundTrip) {
  const EcPoint g5 = p256_base_mul(small_scalar(5));
  const Bytes enc = g5.encode_uncompressed();
  ASSERT_EQ(enc.size(), 65u);
  EXPECT_EQ(enc[0], 0x04);
  auto back = EcPoint::decode_uncompressed(enc);
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(*back, g5);
}

TEST(P256, DecodeRejectsGarbage) {
  EXPECT_FALSE(EcPoint::decode_uncompressed(Bytes(64)).ok());
  Bytes wrong_prefix(65, 0);
  wrong_prefix[0] = 0x02;
  EXPECT_FALSE(EcPoint::decode_uncompressed(wrong_prefix).ok());
  Bytes off_curve = generator().encode_uncompressed();
  off_curve[64] ^= 1;
  EXPECT_FALSE(EcPoint::decode_uncompressed(off_curve).ok());
}

TEST(P256, ScalarValidity) {
  EXPECT_FALSE(p256_scalar_valid(Scalar32{}));  // zero
  EXPECT_TRUE(p256_scalar_valid(small_scalar(1)));
  EXPECT_FALSE(p256_scalar_valid(kOrderN));  // == n
  Scalar32 n_minus_1 = kOrderN;
  n_minus_1[31] -= 1;
  EXPECT_TRUE(p256_scalar_valid(n_minus_1));
  Scalar32 all_ff;
  all_ff.fill(0xff);
  EXPECT_FALSE(p256_scalar_valid(all_ff));
}

TEST(P256, ScalarFieldArithmetic) {
  const Scalar32 a = small_scalar(10);
  const Scalar32 b = small_scalar(250);
  EXPECT_EQ(scalar_add_mod_n(a, b), small_scalar(260));
  EXPECT_EQ(scalar_mul_mod_n(a, b), small_scalar(2500));
  // a * a^-1 == 1 mod n.
  const Scalar32 inv = scalar_inv_mod_n(a);
  EXPECT_EQ(scalar_mul_mod_n(a, inv), small_scalar(1));
  // Reduction: n + 5 mod n == 5.
  Scalar32 over = kOrderN;
  over[31] += 5;
  EXPECT_EQ(scalar_mod_n(over), small_scalar(5));
  EXPECT_TRUE(scalar_is_zero(Scalar32{}));
  EXPECT_FALSE(scalar_is_zero(a));
}

TEST(P256, LargeScalarInverseProperty) {
  const Scalar32 k = scalar_from_hex(
      "a6e3c57dd01abe90086538398355dd4c3b17aa873382b0f24d6129493d8aad60");
  EXPECT_EQ(scalar_mul_mod_n(k, scalar_inv_mod_n(k)), small_scalar(1));
}

}  // namespace
}  // namespace watz::crypto
