#include "crypto/aes.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"

namespace watz::crypto {
namespace {

// FIPS 197 Appendix C example vectors: same plaintext, three key sizes.
const Bytes kPlain = from_hex("00112233445566778899aabbccddeeff");

Bytes encrypt(const Bytes& key, const Bytes& pt) {
  const Aes cipher(key);
  Bytes out(16);
  cipher.encrypt_block(pt.data(), out.data());
  return out;
}

TEST(Aes, Fips197Aes128) {
  EXPECT_EQ(to_hex(encrypt(from_hex("000102030405060708090a0b0c0d0e0f"), kPlain)),
            "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes, Fips197Aes192) {
  EXPECT_EQ(to_hex(encrypt(from_hex("000102030405060708090a0b0c0d0e0f1011121314151617"),
                           kPlain)),
            "dda97ca4864cdfe06eaf70a0ec0d7191");
}

TEST(Aes, Fips197Aes256) {
  EXPECT_EQ(to_hex(encrypt(
                from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f"),
                kPlain)),
            "8ea2b7ca516745bfeafc49904b496089");
}

TEST(Aes, Sp800_38aVector) {
  // NIST SP 800-38A F.1.1 ECB-AES128 block #1.
  EXPECT_EQ(to_hex(encrypt(from_hex("2b7e151628aed2a6abf7158809cf4f3c"),
                           from_hex("6bc1bee22e409f96e93d7e117393172a"))),
            "3ad77bb40d7a3660a89ecaf32466ef97");
}

TEST(Aes, InPlaceEncryption) {
  const Bytes key = from_hex("000102030405060708090a0b0c0d0e0f");
  const Aes cipher(key);
  Bytes buf = kPlain;
  cipher.encrypt_block(buf.data(), buf.data());
  EXPECT_EQ(to_hex(buf), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes, RejectsBadKeySizes) {
  EXPECT_THROW(Aes(Bytes(15)), std::invalid_argument);
  EXPECT_THROW(Aes(Bytes(17)), std::invalid_argument);
  EXPECT_THROW(Aes(Bytes(0)), std::invalid_argument);
}

}  // namespace
}  // namespace watz::crypto
