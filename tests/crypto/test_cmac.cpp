#include "crypto/cmac.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"

namespace watz::crypto {
namespace {

// RFC 4493 test vectors.
const Bytes kKey = from_hex("2b7e151628aed2a6abf7158809cf4f3c");
const Bytes kMsg64 = from_hex(
    "6bc1bee22e409f96e93d7e117393172a"
    "ae2d8a571e03ac9c9eb76fac45af8e51"
    "30c81c46a35ce411e5fbc1191a0a52ef"
    "f69f2445df4f9b17ad2b417be66c3710");

TEST(Cmac, Rfc4493EmptyMessage) {
  EXPECT_EQ(to_hex(aes_cmac(kKey, {})), "bb1d6929e95937287fa37d129b756746");
}

TEST(Cmac, Rfc4493Block16) {
  EXPECT_EQ(to_hex(aes_cmac(kKey, ByteView(kMsg64).first(16))),
            "070a16b46b4d4144f79bdd9dd04a287c");
}

TEST(Cmac, Rfc4493Bytes40) {
  EXPECT_EQ(to_hex(aes_cmac(kKey, ByteView(kMsg64).first(40))),
            "dfa66747de9ae63030ca32611497c827");
}

TEST(Cmac, Rfc4493Bytes64) {
  EXPECT_EQ(to_hex(aes_cmac(kKey, kMsg64)), "51f0bebf7e3b9d92fc49741779363cfe");
}

TEST(Cmac, ReusableCipherObject) {
  const Aes cipher(kKey);
  EXPECT_EQ(aes_cmac(cipher, kMsg64), aes_cmac(kKey, kMsg64));
}

TEST(Cmac, SensitiveToEveryByte) {
  Bytes msg = kMsg64;
  const CmacTag base = aes_cmac(kKey, msg);
  for (std::size_t i : {0u, 15u, 16u, 63u}) {
    msg[i] ^= 1;
    EXPECT_NE(aes_cmac(kKey, msg), base) << "byte " << i;
    msg[i] ^= 1;
  }
}

TEST(Cmac, PaddingBoundaryLengths) {
  // 15/16/17 bytes exercise the complete/incomplete final block paths.
  const CmacTag t15 = aes_cmac(kKey, Bytes(15, 0xab));
  const CmacTag t16 = aes_cmac(kKey, Bytes(16, 0xab));
  const CmacTag t17 = aes_cmac(kKey, Bytes(17, 0xab));
  EXPECT_NE(t15, t16);
  EXPECT_NE(t16, t17);
  EXPECT_NE(t15, t17);
}

}  // namespace
}  // namespace watz::crypto
