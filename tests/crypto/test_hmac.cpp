#include "crypto/hmac.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"

namespace watz::crypto {
namespace {

// Test vectors from RFC 4231.
TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  const auto mac = hmac_sha256(key, to_bytes("Hi There"));
  EXPECT_EQ(to_hex(mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  const auto mac = hmac_sha256(to_bytes("Jefe"), to_bytes("what do ya want for nothing?"));
  EXPECT_EQ(to_hex(mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231Case3) {
  const Bytes key(20, 0xaa);
  const Bytes data(50, 0xdd);
  const auto mac = hmac_sha256(key, data);
  EXPECT_EQ(to_hex(mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(HmacSha256, Rfc4231Case6LongKey) {
  const Bytes key(131, 0xaa);
  const auto mac = hmac_sha256(key, to_bytes("Test Using Larger Than Block-Size Key - Hash Key First"));
  EXPECT_EQ(to_hex(mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(HmacSha256, KeyExactlyBlockSize) {
  const Bytes key(64, 0x42);
  const auto a = hmac_sha256(key, to_bytes("msg"));
  const auto b = hmac_sha256(key, to_bytes("msg"));
  EXPECT_EQ(a, b);
  const auto c = hmac_sha256(key, to_bytes("msh"));
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace watz::crypto
