// Parameterised property sweeps over the crypto layer.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/fortuna.hpp"
#include "crypto/gcm.hpp"
#include "crypto/kdf.hpp"

namespace watz::crypto {
namespace {

// --- AES-GCM round trip across payload sizes (block boundaries included) ---

class GcmSizeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(GcmSizeSweep, SealOpenRoundTrip) {
  const std::size_t size = GetParam();
  Fortuna rng(to_bytes("gcm-sweep"));
  const Aes cipher(rng.bytes(16));
  GcmIv iv{};
  rng.fill(iv);
  Bytes plaintext = rng.bytes(size);
  const Bytes aad = rng.bytes(size % 32);

  const Bytes sealed = gcm_seal(cipher, iv, aad, plaintext);
  EXPECT_EQ(sealed.size(), size + kGcmTagSize);
  auto opened = gcm_open(cipher, iv, aad, sealed);
  ASSERT_TRUE(opened.ok()) << "size=" << size;
  EXPECT_EQ(*opened, plaintext);

  if (size > 0) {
    Bytes corrupted = sealed;
    corrupted[size / 2] ^= 0x01;
    EXPECT_FALSE(gcm_open(cipher, iv, aad, corrupted).ok()) << "size=" << size;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, GcmSizeSweep,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 32, 33, 255, 256,
                                           1000, 4096, 65537));

// --- ECDSA sign/verify across message inputs -------------------------------

class EcdsaMessageSweep : public ::testing::TestWithParam<int> {};

TEST_P(EcdsaMessageSweep, SignVerifyAndCrossRejection) {
  Fortuna rng(to_bytes("ecdsa-sweep-" + std::to_string(GetParam())));
  const KeyPair key = ecdsa_keygen(rng);
  const Bytes message = rng.bytes(GetParam() * 13 + 1);
  const Sha256Digest digest = sha256(message);

  const EcdsaSignature sig = ecdsa_sign(key.priv, digest);
  EXPECT_TRUE(ecdsa_verify(key.pub, digest, sig));

  // A different message under the same signature must fail.
  Bytes other = message;
  other[0] ^= 1;
  EXPECT_FALSE(ecdsa_verify(key.pub, sha256(other), sig));

  // A different key must fail.
  const KeyPair stranger = ecdsa_keygen(rng);
  EXPECT_FALSE(ecdsa_verify(stranger.pub, digest, sig));

  // Determinism (RFC 6979): same key+digest, same signature.
  const EcdsaSignature again = ecdsa_sign(key.priv, digest);
  EXPECT_EQ(sig.r, again.r);
  EXPECT_EQ(sig.s, again.s);
}

INSTANTIATE_TEST_SUITE_P(Messages, EcdsaMessageSweep, ::testing::Range(0, 12));

// --- ECDH agreement across key pairs ---------------------------------------

class EcdhSweep : public ::testing::TestWithParam<int> {};

TEST_P(EcdhSweep, AgreementAndKeySeparation) {
  Fortuna rng(to_bytes("ecdh-sweep-" + std::to_string(GetParam())));
  const KeyPair alice = ecdsa_keygen(rng);
  const KeyPair bob = ecdsa_keygen(rng);
  auto ab = ecdh_shared_x(alice.priv, bob.pub);
  auto ba = ecdh_shared_x(bob.priv, alice.pub);
  ASSERT_TRUE(ab.ok() && ba.ok());
  EXPECT_EQ(*ab, *ba);

  // Session keys derived from distinct secrets must differ.
  const KeyPair carol = ecdsa_keygen(rng);
  auto ac = ecdh_shared_x(alice.priv, carol.pub);
  ASSERT_TRUE(ac.ok());
  EXPECT_NE(*ab, *ac);
  EXPECT_NE(derive_session_keys(*ab).ke, derive_session_keys(*ac).ke);
}

INSTANTIATE_TEST_SUITE_P(Pairs, EcdhSweep, ::testing::Range(0, 8));

}  // namespace
}  // namespace watz::crypto
