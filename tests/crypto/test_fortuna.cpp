#include "crypto/fortuna.hpp"

#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace watz::crypto {
namespace {

TEST(Fortuna, DeterministicForSameSeed) {
  Fortuna a(to_bytes("root-of-trust-subkey"));
  Fortuna b(to_bytes("root-of-trust-subkey"));
  EXPECT_EQ(a.bytes(64), b.bytes(64));
}

TEST(Fortuna, DifferentSeedsDiverge) {
  Fortuna a(to_bytes("seed-a"));
  Fortuna b(to_bytes("seed-b"));
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(Fortuna, StreamAdvances) {
  Fortuna rng(to_bytes("seed"));
  const Bytes first = rng.bytes(32);
  const Bytes second = rng.bytes(32);
  EXPECT_NE(first, second);
}

TEST(Fortuna, RekeyAfterRequestChangesFutureOutput) {
  // Two generators with the same seed; one reads 16+16, the other 32.
  // The per-request rekeying means the second half differs: request
  // boundaries are part of the state evolution.
  Fortuna split(to_bytes("seed"));
  Fortuna whole(to_bytes("seed"));
  Bytes split_out = split.bytes(16);
  append(split_out, split.bytes(16));
  const Bytes whole_out = whole.bytes(32);
  EXPECT_TRUE(std::equal(split_out.begin(), split_out.begin() + 16, whole_out.begin()));
  EXPECT_NE(split_out, whole_out);
}

TEST(Fortuna, ReseedMixesEntropy) {
  Fortuna a(to_bytes("seed"));
  Fortuna b(to_bytes("seed"));
  b.reseed(to_bytes("extra entropy"));
  EXPECT_NE(a.bytes(32), b.bytes(32));
}

TEST(Fortuna, ThrowsWhenUnseeded) {
  Fortuna rng;
  EXPECT_FALSE(rng.seeded());
  std::array<std::uint8_t, 8> out;
  EXPECT_THROW(rng.fill(out), Error);
}

TEST(Fortuna, OddSizedRequests) {
  Fortuna a(to_bytes("seed"));
  const Bytes b1 = a.bytes(1);
  const Bytes b17 = a.bytes(17);
  EXPECT_EQ(b1.size(), 1u);
  EXPECT_EQ(b17.size(), 17u);
}

TEST(SystemRng, ProducesVariedOutput) {
  SystemRng rng;
  const Bytes a = rng.bytes(32);
  const Bytes b = rng.bytes(32);
  EXPECT_NE(a, b);  // 2^-256 false-failure probability
}

}  // namespace
}  // namespace watz::crypto
