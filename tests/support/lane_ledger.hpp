// Lane ledger: a reusable exactly-once invariant checker for gateway
// tests. Every logical invocation ("lane") a driver issues is first
// registered with issue(); whichever path eventually answers it —
// first-try success, spill-over, chaos-forced retry, memo redemption —
// reports through complete(). At the end of the storm the ledger answers
// the two questions the chaos suite (and any storm test) must pin:
//
//   * lost()             — lanes issued but never completed (a dropped
//                          frame the retry machinery failed to recover);
//   * double_completed() — lanes completed MORE than once successfully (a
//                          duplicate delivery that executed twice instead
//                          of being absorbed by the result memo).
//
// The ledger tracks COMPLETIONS, not executions: pair it with the
// gateway's `invocations` counter (sandbox entries) to close the loop —
// with globally-unique per-lane args, counter delta == unique completed
// lanes proves each lane entered a sandbox exactly once.
//
// Thread safety: all methods lock the internal mutex; drivers on any
// number of threads may issue/complete concurrently.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace watz::testing {

class LaneLedger {
 public:
  /// Registers a lane before it is dispatched. Issuing the same key twice
  /// is the caller's bug and counts toward double_issued().
  void issue(const std::string& lane_key) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& lane = lanes_[lane_key];
    if (lane.issued) ++double_issued_;
    lane.issued = true;
  }

  /// Reports the final outcome of one delivery attempt that produced an
  /// answer for the lane. `ok` = the lane's result arrived (whether by
  /// execution or memo redemption); false = the driver gave up on it.
  void complete(const std::string& lane_key, bool ok) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& lane = lanes_[lane_key];
    if (ok) {
      ++lane.completions;
    } else {
      lane.failed = true;
    }
  }

  /// Lanes issued but never successfully completed.
  std::uint64_t lost() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t n = 0;
    for (const auto& [key, lane] : lanes_)
      if (lane.issued && lane.completions == 0) ++n;
    return n;
  }

  /// Lanes successfully completed more than once.
  std::uint64_t double_completed() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t n = 0;
    for (const auto& [key, lane] : lanes_)
      if (lane.completions > 1) ++n;
    return n;
  }

  /// Lanes with at least one successful completion.
  std::uint64_t completed() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t n = 0;
    for (const auto& [key, lane] : lanes_)
      if (lane.completions > 0) ++n;
    return n;
  }

  /// Lanes whose driver reported a terminal failure.
  std::uint64_t failed() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t n = 0;
    for (const auto& [key, lane] : lanes_)
      if (lane.failed) ++n;
    return n;
  }

  std::uint64_t issued() const {
    std::lock_guard<std::mutex> lock(mu_);
    return lanes_.size();
  }

  std::uint64_t double_issued() const {
    std::lock_guard<std::mutex> lock(mu_);
    return double_issued_;
  }

 private:
  struct Lane {
    bool issued = false;
    bool failed = false;
    std::uint64_t completions = 0;
  };

  mutable std::mutex mu_;
  std::map<std::string, Lane> lanes_;
  std::uint64_t double_issued_ = 0;
};

}  // namespace watz::testing
