// End-to-end and adversarial tests of the WaTZ remote-attestation protocol,
// including the sharded verifier front-end and the batched (multi-lane)
// frames the gateway's batched attach pipelines handshakes through.
#include <gtest/gtest.h>

#include <memory>

#include "crypto/fortuna.hpp"
#include "ra/attester.hpp"
#include "ra/verifier.hpp"
#include "ra/verifier_shard.hpp"

namespace watz::ra {
namespace {

struct Fixture {
  crypto::Fortuna rng{to_bytes("protocol-test")};
  crypto::KeyPair verifier_identity = crypto::ecdsa_keygen(rng);
  crypto::KeyPair device_key = crypto::ecdsa_keygen(rng);
  crypto::Sha256Digest app_claim = crypto::sha256(to_bytes("wasm aot bytecode"));
  Bytes secret = to_bytes("the confidential dataset");

  Verifier make_verifier() {
    Verifier verifier(verifier_identity, rng);
    verifier.endorse_device(device_key.pub);
    verifier.add_reference_measurement(app_claim);
    verifier.set_secret_provider([this](const crypto::Sha256Digest&) { return secret; });
    return verifier;
  }

  attestation::Evidence make_evidence(const std::array<std::uint8_t, 32>& anchor,
                                      std::uint32_t version = attestation::kWatzVersion) {
    attestation::Evidence ev;
    ev.anchor = anchor;
    ev.version = version;
    ev.claim = app_claim;
    ev.attestation_key = device_key.pub;
    ev.signature =
        crypto::ecdsa_sign(device_key.priv, crypto::sha256(ev.signed_payload())).encode();
    return ev;
  }

  QuoteFn quoter() {
    return [this](const std::array<std::uint8_t, 32>& anchor) {
      return make_evidence(anchor);
    };
  }
};

TEST(Protocol, HappyPathDeliversSecret) {
  Fixture fx;
  Verifier verifier = fx.make_verifier();
  AttesterSession attester(fx.rng, fx.verifier_identity.pub);

  const Bytes msg0 = attester.make_msg0();
  auto msg1 = verifier.handle(1, msg0);
  ASSERT_TRUE(msg1.ok()) << msg1.error();
  auto msg2 = attester.handle_msg1(*msg1, fx.quoter());
  ASSERT_TRUE(msg2.ok()) << msg2.error();
  auto msg3 = verifier.handle(1, *msg2);
  ASSERT_TRUE(msg3.ok()) << msg3.error();
  auto secret = attester.handle_msg3(*msg3);
  ASSERT_TRUE(secret.ok()) << secret.error();
  EXPECT_EQ(*secret, fx.secret);
}

TEST(Protocol, SessionsUseFreshKeys) {
  Fixture fx;
  AttesterSession a1(fx.rng, fx.verifier_identity.pub);
  AttesterSession a2(fx.rng, fx.verifier_identity.pub);
  EXPECT_NE(a1.make_msg0(), a2.make_msg0());  // ECDHE freshness
}

TEST(Protocol, AttesterRejectsWrongVerifierIdentity) {
  Fixture fx;
  Verifier verifier = fx.make_verifier();
  // The application hardcodes a different service key (e.g. the attacker
  // re-pointed the app at their own verifier; the measurement would differ,
  // but the attester-side check fires first).
  const auto other = crypto::ecdsa_keygen(fx.rng);
  AttesterSession attester(fx.rng, other.pub);
  const Bytes msg0 = attester.make_msg0();
  auto msg1 = verifier.handle(1, msg0);
  ASSERT_TRUE(msg1.ok());
  auto msg2 = attester.handle_msg1(*msg1, fx.quoter());
  ASSERT_FALSE(msg2.ok());
  EXPECT_NE(msg2.error().find("identity mismatch"), std::string::npos);
}

TEST(Protocol, AttesterRejectsTamperedMsg1) {
  Fixture fx;
  Verifier verifier = fx.make_verifier();
  AttesterSession attester(fx.rng, fx.verifier_identity.pub);
  auto msg1 = verifier.handle(1, attester.make_msg0());
  ASSERT_TRUE(msg1.ok());
  for (std::size_t i : {std::size_t{5}, msg1->size() - 1, std::size_t{70}}) {
    Bytes bad = *msg1;
    bad[i] ^= 0x01;
    EXPECT_FALSE(attester.handle_msg1(bad, fx.quoter()).ok()) << "byte " << i;
  }
}

TEST(Protocol, AttesterDetectsReplayedMsg1) {
  Fixture fx;
  Verifier verifier = fx.make_verifier();
  // Record a legitimate msg1 from a previous session...
  AttesterSession old_session(fx.rng, fx.verifier_identity.pub);
  auto old_msg1 = verifier.handle(1, old_session.make_msg0());
  ASSERT_TRUE(old_msg1.ok());
  // ...and replay it against a fresh session with a different Ga. The
  // signature covers (Gv || Ga), so the stale signature cannot verify.
  AttesterSession fresh(fx.rng, fx.verifier_identity.pub);
  fresh.make_msg0();
  auto msg2 = fresh.handle_msg1(*old_msg1, fx.quoter());
  ASSERT_FALSE(msg2.ok());
}

TEST(Protocol, VerifierRejectsUnknownDevice) {
  Fixture fx;
  Verifier verifier(fx.verifier_identity, fx.rng);  // no endorsements
  verifier.add_reference_measurement(fx.app_claim);
  verifier.set_secret_provider([&](const crypto::Sha256Digest&) { return fx.secret; });
  AttesterSession attester(fx.rng, fx.verifier_identity.pub);
  auto msg1 = verifier.handle(1, attester.make_msg0());
  ASSERT_TRUE(msg1.ok());
  auto msg2 = attester.handle_msg1(*msg1, fx.quoter());
  ASSERT_TRUE(msg2.ok());
  auto msg3 = verifier.handle(1, *msg2);
  ASSERT_FALSE(msg3.ok());
  EXPECT_NE(msg3.error().find("not endorsed"), std::string::npos);
}

TEST(Protocol, VerifierRejectsUnknownMeasurement) {
  Fixture fx;
  Verifier verifier(fx.verifier_identity, fx.rng);
  verifier.endorse_device(fx.device_key.pub);
  verifier.add_reference_measurement(crypto::sha256(to_bytes("some other app")));
  verifier.set_secret_provider([&](const crypto::Sha256Digest&) { return fx.secret; });
  AttesterSession attester(fx.rng, fx.verifier_identity.pub);
  auto msg1 = verifier.handle(1, attester.make_msg0());
  auto msg2 = attester.handle_msg1(*msg1, fx.quoter());
  ASSERT_TRUE(msg2.ok());
  auto msg3 = verifier.handle(1, *msg2);
  ASSERT_FALSE(msg3.ok());
  EXPECT_NE(msg3.error().find("reference value"), std::string::npos);
}

TEST(Protocol, VerifierRejectsForgedEvidence) {
  Fixture fx;
  Verifier verifier = fx.make_verifier();
  // Attacker holds the *public* attestation key but not the private one.
  crypto::Fortuna attacker_rng(to_bytes("attacker"));
  const auto attacker_key = crypto::ecdsa_keygen(attacker_rng);
  QuoteFn forged = [&](const std::array<std::uint8_t, 32>& anchor) {
    attestation::Evidence ev;
    ev.anchor = anchor;
    ev.claim = fx.app_claim;
    ev.attestation_key = fx.device_key.pub;  // impersonate the device
    ev.signature =
        crypto::ecdsa_sign(attacker_key.priv, crypto::sha256(ev.signed_payload())).encode();
    return ev;
  };
  AttesterSession attester(fx.rng, fx.verifier_identity.pub);
  auto msg1 = verifier.handle(1, attester.make_msg0());
  auto msg2 = attester.handle_msg1(*msg1, forged);
  ASSERT_TRUE(msg2.ok());
  auto msg3 = verifier.handle(1, *msg2);
  ASSERT_FALSE(msg3.ok());
  EXPECT_NE(msg3.error().find("signature invalid"), std::string::npos);
}

TEST(Protocol, VerifierRejectsOutdatedRuntime) {
  Fixture fx;
  Verifier verifier = fx.make_verifier();
  VerifierPolicy policy;
  policy.min_watz_version = attestation::kWatzVersion + 1;
  verifier.set_policy(policy);
  AttesterSession attester(fx.rng, fx.verifier_identity.pub);
  auto msg1 = verifier.handle(1, attester.make_msg0());
  auto msg2 = attester.handle_msg1(*msg1, fx.quoter());
  ASSERT_TRUE(msg2.ok());
  auto msg3 = verifier.handle(1, *msg2);
  ASSERT_FALSE(msg3.ok());
  EXPECT_NE(msg3.error().find("outdated"), std::string::npos);
}

TEST(Protocol, VerifierRejectsCrossSessionEvidence) {
  Fixture fx;
  Verifier verifier = fx.make_verifier();
  // Run session A fully to capture its msg2, then replay that msg2 into
  // session B: the anchor (and MAC key) are session-bound, so it must fail.
  AttesterSession attester_a(fx.rng, fx.verifier_identity.pub);
  auto msg1_a = verifier.handle(1, attester_a.make_msg0());
  auto msg2_a = attester_a.handle_msg1(*msg1_a, fx.quoter());
  ASSERT_TRUE(msg2_a.ok());

  AttesterSession attester_b(fx.rng, fx.verifier_identity.pub);
  auto msg1_b = verifier.handle(2, attester_b.make_msg0());
  ASSERT_TRUE(msg1_b.ok());
  auto msg3 = verifier.handle(2, *msg2_a);
  ASSERT_FALSE(msg3.ok());
}

TEST(Protocol, VerifierRejectsMsg2WithoutHandshake) {
  Fixture fx;
  Verifier verifier = fx.make_verifier();
  AttesterSession attester(fx.rng, fx.verifier_identity.pub);
  auto msg1 = verifier.handle(1, attester.make_msg0());
  auto msg2 = attester.handle_msg1(*msg1, fx.quoter());
  ASSERT_TRUE(msg2.ok());
  auto msg3 = verifier.handle(99, *msg2);  // different connection
  ASSERT_FALSE(msg3.ok());
  EXPECT_NE(msg3.error().find("without handshake"), std::string::npos);
}

TEST(Protocol, AttesterRejectsTamperedSecretBlob) {
  Fixture fx;
  Verifier verifier = fx.make_verifier();
  AttesterSession attester(fx.rng, fx.verifier_identity.pub);
  auto msg1 = verifier.handle(1, attester.make_msg0());
  auto msg2 = attester.handle_msg1(*msg1, fx.quoter());
  auto msg3 = verifier.handle(1, *msg2);
  ASSERT_TRUE(msg3.ok());
  Bytes bad = *msg3;
  bad[bad.size() / 2] ^= 0x40;
  auto secret = attester.handle_msg3(bad);
  ASSERT_FALSE(secret.ok());
  EXPECT_NE(secret.error().find("authentication failed"), std::string::npos);
}

TEST(Protocol, SessionStateCleanup) {
  Fixture fx;
  Verifier verifier = fx.make_verifier();
  AttesterSession attester(fx.rng, fx.verifier_identity.pub);
  (void)verifier.handle(7, attester.make_msg0());
  EXPECT_EQ(verifier.active_sessions(), 1u);
  verifier.end_session(7);
  EXPECT_EQ(verifier.active_sessions(), 0u);
}

TEST(Protocol, MessageOrderingEnforced) {
  Fixture fx;
  AttesterSession attester(fx.rng, fx.verifier_identity.pub);
  // msg3 before handshake.
  EXPECT_FALSE(attester.handle_msg3(Bytes{0xA3}).ok());
  Verifier verifier = fx.make_verifier();
  // Garbage tag.
  EXPECT_FALSE(verifier.handle(1, Bytes{0x00, 0x01}).ok());
  EXPECT_FALSE(verifier.handle(1, Bytes{}).ok());
}

TEST(Protocol, TruncatedMsg0RejectedWithoutSessionLeak) {
  Fixture fx;
  Verifier verifier = fx.make_verifier();
  AttesterSession attester(fx.rng, fx.verifier_identity.pub);
  const Bytes msg0 = attester.make_msg0();
  // Every proper prefix — including the bare tag — must be rejected, and
  // none may leave half-created session state behind.
  for (std::size_t len = 1; len < msg0.size(); ++len) {
    const Bytes cut(msg0.begin(), msg0.begin() + static_cast<std::ptrdiff_t>(len));
    EXPECT_FALSE(verifier.handle(1, cut).ok()) << "prefix " << len;
  }
  EXPECT_EQ(verifier.active_sessions(), 0u);
}

// -- sharded verifier + batched frames ---------------------------------------

struct ShardedFixture : Fixture {
  std::unique_ptr<ShardedVerifier> make_sharded(std::size_t shards,
                                                std::uint64_t session_key_reuse = 1,
                                                std::uint32_t min_version = 0) {
    ShardedVerifierConfig config;
    config.shards = shards;
    config.policy.session_key_reuse = session_key_reuse;
    config.policy.min_watz_version = min_version;
    auto verifier = std::make_unique<ShardedVerifier>(verifier_identity,
                                                      to_bytes("shard-seed"), config);
    verifier->endorse_device(device_key.pub);
    verifier->add_reference_measurement(app_claim);
    verifier->set_secret_provider(
        [this](const crypto::Sha256Digest&) { return secret; });
    return verifier;
  }
};

TEST(ShardedProtocol, PlainHandshakeSucceedsOnEveryShardCount) {
  ShardedFixture fx;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    auto verifier = fx.make_sharded(shards);
    AttesterSession attester(fx.rng, fx.verifier_identity.pub);
    auto msg1 = verifier->handle(9, attester.make_msg0());
    ASSERT_TRUE(msg1.ok()) << msg1.error();
    auto msg2 = attester.handle_msg1(*msg1, fx.quoter());
    ASSERT_TRUE(msg2.ok()) << msg2.error();
    auto msg3 = verifier->handle(9, *msg2);
    ASSERT_TRUE(msg3.ok()) << msg3.error();
    auto secret = attester.handle_msg3(*msg3);
    ASSERT_TRUE(secret.ok()) << secret.error();
    EXPECT_EQ(*secret, fx.secret);
    EXPECT_EQ(verifier->handshakes_completed(), 1u);
    EXPECT_EQ(verifier->active_sessions(), 0u);  // completed msg2 drops state
  }
}

TEST(ShardedProtocol, BatchPartiallySucceedsAndReportsTheStaleLane) {
  ShardedFixture fx;
  // The policy requires the current runtime version; lane 1's evidence
  // will claim an older one (a stale quote).
  auto verifier =
      fx.make_sharded(4, /*session_key_reuse=*/1, attestation::kWatzVersion);

  constexpr std::uint32_t kLanes = 3;
  std::vector<AttesterSession> attesters;
  std::vector<BatchItem> msg0s;
  for (std::uint32_t lane = 0; lane < kLanes; ++lane) {
    attesters.emplace_back(fx.rng, fx.verifier_identity.pub);
    msg0s.push_back(BatchItem{lane, attesters[lane].make_msg0()});
  }
  auto reply1 = verifier->handle(7, encode_batch(msg0s));
  ASSERT_TRUE(reply1.ok()) << reply1.error();
  auto msg1s = decode_batch_reply(*reply1);
  ASSERT_TRUE(msg1s.ok()) << msg1s.error();
  ASSERT_EQ(msg1s->size(), kLanes);

  std::vector<BatchItem> msg2s;
  for (const BatchReplyItem& item : *msg1s) {
    ASSERT_TRUE(item.ok) << item.error;
    const std::uint32_t version = item.lane == 1 ? attestation::kWatzVersion - 1
                                                 : attestation::kWatzVersion;
    auto msg2 = attesters[item.lane].handle_msg1(
        item.payload, [&](const std::array<std::uint8_t, 32>& anchor) {
          return fx.make_evidence(anchor, version);
        });
    ASSERT_TRUE(msg2.ok()) << msg2.error();
    msg2s.push_back(BatchItem{item.lane, std::move(*msg2)});
  }
  auto reply2 = verifier->handle(7, encode_batch(msg2s));
  ASSERT_TRUE(reply2.ok()) << reply2.error();
  auto msg3s = decode_batch_reply(*reply2);
  ASSERT_TRUE(msg3s.ok()) << msg3s.error();
  ASSERT_EQ(msg3s->size(), kLanes);

  // The batch must NOT abort wholesale: lanes 0 and 2 complete and decrypt
  // their secrets; only lane 1 reports the stale-evidence rejection.
  for (const BatchReplyItem& item : *msg3s) {
    if (item.lane == 1) {
      EXPECT_FALSE(item.ok);
      EXPECT_NE(item.error.find("outdated"), std::string::npos) << item.error;
      continue;
    }
    ASSERT_TRUE(item.ok) << "lane " << item.lane << ": " << item.error;
    auto secret = attesters[item.lane].handle_msg3(item.payload);
    ASSERT_TRUE(secret.ok()) << secret.error();
    EXPECT_EQ(*secret, fx.secret);
  }
  EXPECT_EQ(verifier->handshakes_completed(), 2u);
  EXPECT_EQ(verifier->active_sessions(), 0u);  // failed lane dropped its state too
}

TEST(ShardedProtocol, BatchLanesAreIndependentSessions) {
  ShardedFixture fx;
  auto verifier = fx.make_sharded(4);
  AttesterSession a0(fx.rng, fx.verifier_identity.pub);
  AttesterSession a1(fx.rng, fx.verifier_identity.pub);
  auto reply = verifier->handle(
      3, encode_batch({BatchItem{0, a0.make_msg0()}, BatchItem{1, a1.make_msg0()}}));
  ASSERT_TRUE(reply.ok()) << reply.error();
  auto msg1s = decode_batch_reply(*reply);
  ASSERT_TRUE(msg1s.ok());
  ASSERT_TRUE((*msg1s)[0].ok && (*msg1s)[1].ok);
  // Replaying lane 0's msg1 into lane 1's attester must fail: the msg1
  // signature covers lane 0's Ga, not lane 1's.
  EXPECT_FALSE(a1.handle_msg1((*msg1s)[0].payload, fx.quoter()).ok());
  // Used on the right lane it works.
  EXPECT_TRUE(a1.handle_msg1((*msg1s)[1].payload, fx.quoter()).ok());
}

TEST(ShardedProtocol, MalformedBatchFramesRejectedWholesale) {
  ShardedFixture fx;
  auto verifier = fx.make_sharded(4);
  AttesterSession a0(fx.rng, fx.verifier_identity.pub);
  AttesterSession a1(fx.rng, fx.verifier_identity.pub);
  const Bytes valid =
      encode_batch({BatchItem{0, a0.make_msg0()}, BatchItem{1, a1.make_msg0()}});

  // Count claims more items than the payload holds.
  Bytes overcount = valid;
  overcount[1] = 3;
  EXPECT_FALSE(verifier->handle(5, overcount).ok());
  // Count claims fewer: the leftover item is trailing garbage.
  Bytes undercount = valid;
  undercount[1] = 1;
  EXPECT_FALSE(verifier->handle(5, undercount).ok());
  // Truncated mid-item.
  EXPECT_FALSE(
      verifier->handle(5, Bytes(valid.begin(), valid.end() - 7)).ok());
  // Trailing bytes after a complete batch.
  Bytes trailing = valid;
  trailing.push_back(0x00);
  EXPECT_FALSE(verifier->handle(5, trailing).ok());
  // Duplicate lanes.
  const Bytes msg0 = a0.make_msg0();
  EXPECT_FALSE(
      verifier->handle(5, encode_batch({BatchItem{2, msg0}, BatchItem{2, msg0}})).ok());
  // Zero-item batch.
  EXPECT_FALSE(verifier->handle(5, Bytes{kBatchTag, 0x00}).ok());

  // Wholesale means wholesale: none of the rejected frames half-parsed
  // into live per-lane sessions.
  EXPECT_EQ(verifier->active_sessions(), 0u);
}

TEST(ShardedProtocol, EphemeralKeypairRotationPolicy) {
  ShardedFixture fx;
  // One shard, reuse window of 2: handshakes 1 and 2 must be served from
  // the same ephemeral Gv, handshake 3 from a fresh one.
  auto verifier = fx.make_sharded(1, /*session_key_reuse=*/2);
  std::vector<crypto::EcPoint> gvs;
  for (std::uint64_t conn = 21; conn < 24; ++conn) {
    AttesterSession attester(fx.rng, fx.verifier_identity.pub);
    auto msg1_bytes = verifier->handle(conn, attester.make_msg0());
    ASSERT_TRUE(msg1_bytes.ok()) << msg1_bytes.error();
    auto msg1 = Msg1::decode(*msg1_bytes);
    ASSERT_TRUE(msg1.ok()) << msg1.error();
    gvs.push_back(msg1->gv);
    // Finish the handshake: reuse must not break the key agreement.
    auto msg2 = attester.handle_msg1(*msg1_bytes, fx.quoter());
    ASSERT_TRUE(msg2.ok()) << msg2.error();
    auto msg3 = verifier->handle(conn, *msg2);
    ASSERT_TRUE(msg3.ok()) << msg3.error();
    auto secret = attester.handle_msg3(*msg3);
    ASSERT_TRUE(secret.ok()) << secret.error();
    EXPECT_EQ(*secret, fx.secret);
  }
  EXPECT_TRUE(gvs[0] == gvs[1]);
  EXPECT_FALSE(gvs[1] == gvs[2]);
  const auto stats = verifier->stats();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].key_rotations, 2u);
  EXPECT_EQ(stats[0].handshakes, 3u);
  EXPECT_EQ(stats[0].msg0s, 3u);
}

TEST(ShardedProtocol, EndSessionSweepsBatchLanes) {
  ShardedFixture fx;
  auto verifier = fx.make_sharded(4);
  AttesterSession a0(fx.rng, fx.verifier_identity.pub);
  AttesterSession a1(fx.rng, fx.verifier_identity.pub);
  auto reply = verifier->handle(
      11, encode_batch({BatchItem{0, a0.make_msg0()}, BatchItem{1, a1.make_msg0()}}));
  ASSERT_TRUE(reply.ok());
  // Two lanes mid-handshake (msg1 issued, msg2 never sent: the device died).
  EXPECT_EQ(verifier->active_sessions(), 2u);
  verifier->end_session(11);
  EXPECT_EQ(verifier->active_sessions(), 0u);
}

TEST(ShardedProtocol, DepthRoutingLevelsLanesAcrossShards) {
  ShardedFixture fx;
  auto verifier = fx.make_sharded(4);

  // 8 lanes open in one batch: depth routing places each fresh msg0 on the
  // least-loaded shard at that instant, so the open handshakes land
  // EXACTLY 2-2-2-2 — hash routing would only approximate that.
  constexpr std::uint32_t kLanes = 8;
  std::vector<AttesterSession> attesters;
  std::vector<BatchItem> msg0s;
  for (std::uint32_t lane = 0; lane < kLanes; ++lane) {
    attesters.emplace_back(fx.rng, fx.verifier_identity.pub);
    msg0s.push_back(BatchItem{lane, attesters[lane].make_msg0()});
  }
  auto reply1 = verifier->handle(5, encode_batch(msg0s));
  ASSERT_TRUE(reply1.ok()) << reply1.error();
  for (const std::uint32_t depth : verifier->shard_depths()) EXPECT_EQ(depth, 2u);

  // Routing is sticky: every lane's msg2 must land on the shard holding
  // its msg0 state, or the handshake dies mid-protocol.
  auto msg1s = decode_batch_reply(*reply1);
  ASSERT_TRUE(msg1s.ok());
  std::vector<BatchItem> msg2s;
  for (const BatchReplyItem& item : *msg1s) {
    ASSERT_TRUE(item.ok) << item.error;
    auto msg2 = attesters[item.lane].handle_msg1(item.payload, fx.quoter());
    ASSERT_TRUE(msg2.ok()) << msg2.error();
    msg2s.push_back(BatchItem{item.lane, std::move(*msg2)});
  }
  auto reply2 = verifier->handle(5, encode_batch(msg2s));
  ASSERT_TRUE(reply2.ok()) << reply2.error();
  auto msg3s = decode_batch_reply(*reply2);
  ASSERT_TRUE(msg3s.ok());
  for (const BatchReplyItem& item : *msg3s)
    EXPECT_TRUE(item.ok) << "lane " << item.lane << ": " << item.error;
  EXPECT_EQ(verifier->handshakes_completed(), kLanes);
  // Every handshake finished: all depths return to zero.
  for (const std::uint32_t depth : verifier->shard_depths()) EXPECT_EQ(depth, 0u);

  // Plain (non-batch) sessions level the same way: four fresh conns land
  // one per shard regardless of how their ids hash.
  for (std::uint64_t conn = 100; conn < 104; ++conn) {
    AttesterSession plain(fx.rng, fx.verifier_identity.pub);
    ASSERT_TRUE(verifier->handle(conn, plain.make_msg0()).ok());
  }
  for (const std::uint32_t depth : verifier->shard_depths()) EXPECT_EQ(depth, 1u);
}

TEST(Messages, EvidenceEncodeDecodeRoundTrip) {
  Fixture fx;
  std::array<std::uint8_t, 32> anchor{};
  anchor.fill(0x11);
  const auto ev = fx.make_evidence(anchor);
  auto back = attestation::Evidence::decode(ev.encode());
  ASSERT_TRUE(back.ok()) << back.error();
  EXPECT_EQ(back->anchor, ev.anchor);
  EXPECT_EQ(back->version, ev.version);
  EXPECT_EQ(back->claim, ev.claim);
  EXPECT_EQ(back->attestation_key, ev.attestation_key);
  EXPECT_EQ(back->signature, ev.signature);
  EXPECT_TRUE(attestation::verify_evidence_signature(*back));
}

TEST(Messages, AllFramesRejectTruncation) {
  Fixture fx;
  Verifier verifier = fx.make_verifier();
  AttesterSession attester(fx.rng, fx.verifier_identity.pub);
  const Bytes msg0 = attester.make_msg0();
  auto msg1 = verifier.handle(1, msg0);
  auto msg2 = attester.handle_msg1(*msg1, fx.quoter());
  auto msg3 = verifier.handle(1, *msg2);
  const Bytes* frames[] = {&msg0, &*msg1, &*msg2, &*msg3};
  for (const Bytes* frame : frames) {
    Bytes cut(frame->begin(), frame->end() - 1);
    switch (static_cast<MsgTag>((*frame)[0])) {
      case MsgTag::Msg0: EXPECT_FALSE(Msg0::decode(cut).ok()); break;
      case MsgTag::Msg1: EXPECT_FALSE(Msg1::decode(cut).ok()); break;
      case MsgTag::Msg2: EXPECT_FALSE(Msg2::decode(cut).ok()); break;
      case MsgTag::Msg3: EXPECT_FALSE(Msg3::decode(cut).ok()); break;
    }
  }
}

}  // namespace
}  // namespace watz::ra
