// wcc compiler tests: each program is compiled to Wasm, validated, run in
// both engine modes, and checked against the expected C semantics.
#include <gtest/gtest.h>

#include "wasm/decoder.hpp"
#include "wasm/instance.hpp"
#include "wcc/compiler.hpp"

namespace watz::wcc {
namespace {

using wasm::ExecMode;
using wasm::Value;

class WccTest : public ::testing::TestWithParam<ExecMode> {
 protected:
  std::unique_ptr<wasm::Instance> build(std::string_view source) {
    auto binary = compile(source);
    EXPECT_TRUE(binary.ok()) << binary.error();
    auto module = wasm::decode_module(*binary);
    EXPECT_TRUE(module.ok()) << module.error();
    static const wasm::ImportResolver kNoImports;
    auto inst = wasm::Instance::instantiate(std::move(*module), kNoImports, GetParam());
    EXPECT_TRUE(inst.ok()) << inst.error();
    return std::move(*inst);
  }

  std::int32_t run_i32(wasm::Instance& inst, const std::string& fn,
                       std::vector<Value> args = {}) {
    auto r = inst.invoke(fn, args);
    EXPECT_TRUE(r.ok()) << r.error();
    return r->front().i32();
  }

  double run_f64(wasm::Instance& inst, const std::string& fn,
                 std::vector<Value> args = {}) {
    auto r = inst.invoke(fn, args);
    EXPECT_TRUE(r.ok()) << r.error();
    return r->front().f64();
  }
};

TEST_P(WccTest, ArithmeticAndPrecedence) {
  auto inst = build("int f(int a, int b) { return a + b * 3 - (a - b) / 2; }");
  EXPECT_EQ(run_i32(*inst, "f", {Value::from_i32(10), Value::from_i32(4)}), 10 + 12 - 3);
}

TEST_P(WccTest, RecursiveFibonacci) {
  auto inst = build(R"(
    int fib(int n) {
      if (n < 2) return n;
      return fib(n - 1) + fib(n - 2);
    }
  )");
  EXPECT_EQ(run_i32(*inst, "fib", {Value::from_i32(15)}), 610);
}

TEST_P(WccTest, WhileLoopAndCompoundAssign) {
  auto inst = build(R"(
    int sum_squares(int n) {
      int acc = 0;
      int i = 1;
      while (i <= n) {
        acc += i * i;
        i += 1;
      }
      return acc;
    }
  )");
  EXPECT_EQ(run_i32(*inst, "sum_squares", {Value::from_i32(10)}), 385);
}

TEST_P(WccTest, ForLoopBreakContinue) {
  auto inst = build(R"(
    int f(int n) {
      int acc = 0;
      for (int i = 0; i < n; i++) {
        if (i % 3 == 0) continue;
        if (i > 20) break;
        acc += i;
      }
      return acc;
    }
  )");
  // sum of i in [0,21) where i%3 != 0 == 0+..: total below.
  int expected = 0;
  for (int i = 0; i < 100; ++i) {
    if (i % 3 == 0) continue;
    if (i > 20) break;
    expected += i;
  }
  EXPECT_EQ(run_i32(*inst, "f", {Value::from_i32(100)}), expected);
}

TEST_P(WccTest, PointersAndAlloc) {
  auto inst = build(R"(
    int sum_array(int n) {
      int* a = alloc(n * 4);
      for (int i = 0; i < n; i++) a[i] = i * 2;
      int acc = 0;
      for (int i = 0; i < n; i++) acc += a[i];
      return acc;
    }
  )");
  EXPECT_EQ(run_i32(*inst, "sum_array", {Value::from_i32(100)}), 9900);
}

TEST_P(WccTest, DistinctAllocations) {
  auto inst = build(R"(
    int f() {
      int* a = alloc(40);
      int* b = alloc(40);
      a[0] = 1;
      b[0] = 2;
      return a[0] * 10 + b[0];
    }
  )");
  EXPECT_EQ(run_i32(*inst, "f"), 12);
}

TEST_P(WccTest, DoubleArithmeticAndBuiltins) {
  auto inst = build(R"(
    double hypot2(double a, double b) { return sqrt(a * a + b * b); }
    double absval(double x) { return fabs(x); }
  )");
  EXPECT_DOUBLE_EQ(run_f64(*inst, "hypot2", {Value::from_f64(3), Value::from_f64(4)}), 5.0);
  EXPECT_DOUBLE_EQ(run_f64(*inst, "absval", {Value::from_f64(-2.5)}), 2.5);
}

TEST_P(WccTest, MixedIntDoublePromotion) {
  auto inst = build(R"(
    double f(int n) {
      double acc = 0.0;
      for (int i = 1; i <= n; i++) acc = acc + 1.0 / i;
      return acc;
    }
  )");
  const double h4 = 1 + 0.5 + 1.0 / 3 + 0.25;
  EXPECT_NEAR(run_f64(*inst, "f", {Value::from_i32(4)}), h4, 1e-12);
}

TEST_P(WccTest, DoubleArrays) {
  auto inst = build(R"(
    double dot(int n) {
      double* x = alloc(n * 8);
      double* y = alloc(n * 8);
      for (int i = 0; i < n; i++) { x[i] = i; y[i] = 2.0; }
      double acc = 0.0;
      for (int i = 0; i < n; i++) acc += x[i] * y[i];
      return acc;
    }
  )");
  EXPECT_DOUBLE_EQ(run_f64(*inst, "dot", {Value::from_i32(10)}), 90.0);
}

TEST_P(WccTest, CharArraysAreByteWide) {
  auto inst = build(R"(
    int f() {
      char* s = alloc(8);
      s[0] = 300;   /* truncates to 44 */
      s[1] = 1;
      return s[0] + s[1];
    }
  )");
  EXPECT_EQ(run_i32(*inst, "f"), 45);
}

TEST_P(WccTest, LongArithmetic) {
  auto inst = build(R"(
    long mul(long a, long b) { return a * b; }
    int high_bits(long v) { return (int)(v >> 32); }
  )");
  auto r = inst->invoke("mul", std::vector<Value>{Value::from_i64(1LL << 33),
                                                  Value::from_i64(3)});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->front().i64(), 3LL << 33);
  EXPECT_EQ(run_i32(*inst, "high_bits", {Value::from_i64(0xabcd00000000LL)}), 0xabcd);
}

TEST_P(WccTest, LogicalOperatorsShortCircuit) {
  auto inst = build(R"(
    int calls;
    int bump() { calls = calls + 1; return 1; }
    int and_false(int x) { return x && bump(); }
    int or_true(int x) { return x || bump(); }
    int get_calls() { return calls; }
  )");
  EXPECT_EQ(run_i32(*inst, "and_false", {Value::from_i32(0)}), 0);
  EXPECT_EQ(run_i32(*inst, "get_calls"), 0) << "&& must not evaluate rhs";
  EXPECT_EQ(run_i32(*inst, "or_true", {Value::from_i32(5)}), 1);
  EXPECT_EQ(run_i32(*inst, "get_calls"), 0) << "|| must not evaluate rhs";
  EXPECT_EQ(run_i32(*inst, "and_false", {Value::from_i32(1)}), 1);
  EXPECT_EQ(run_i32(*inst, "get_calls"), 1);
}

TEST_P(WccTest, GlobalsPersistAcrossCalls) {
  auto inst = build(R"(
    int counter = 100;
    int next() { counter = counter + 1; return counter; }
  )");
  EXPECT_EQ(run_i32(*inst, "next"), 101);
  EXPECT_EQ(run_i32(*inst, "next"), 102);
}

TEST_P(WccTest, CastsAndTruncation) {
  auto inst = build(R"(
    int trunc_div(double a, double b) { return (int)(a / b); }
    double widen(int x) { return (double)x / 2; }
  )");
  EXPECT_EQ(run_i32(*inst, "trunc_div", {Value::from_f64(7.0), Value::from_f64(2.0)}), 3);
  EXPECT_DOUBLE_EQ(run_f64(*inst, "widen", {Value::from_i32(7)}), 3.5);
}

TEST_P(WccTest, BitwiseOps) {
  auto inst = build(R"(
    int f(int a, int b) { return ((a & b) | (a ^ b)) + (a << 2) + (b >> 1) + (~a & 255); }
  )");
  const int a = 0x5a, b = 0x33;
  EXPECT_EQ(run_i32(*inst, "f", {Value::from_i32(a), Value::from_i32(b)}),
            ((a & b) | (a ^ b)) + (a << 2) + (b >> 1) + (~a & 255));
}

TEST_P(WccTest, NestedLoopsMatrixMultiply) {
  auto inst = build(R"(
    double matmul_trace(int n) {
      double* a = alloc(n * n * 8);
      double* b = alloc(n * n * 8);
      double* c = alloc(n * n * 8);
      for (int i = 0; i < n; i++)
        for (int j = 0; j < n; j++) {
          a[i * n + j] = i + j;
          b[i * n + j] = i - j;
          c[i * n + j] = 0.0;
        }
      for (int i = 0; i < n; i++)
        for (int k = 0; k < n; k++)
          for (int j = 0; j < n; j++)
            c[i * n + j] += a[i * n + k] * b[k * n + j];
      double trace = 0.0;
      for (int i = 0; i < n; i++) trace += c[i * n + i];
      return trace;
    }
  )");
  // Reference computation in C++.
  const int n = 8;
  std::vector<double> a(n * n), b(n * n), c(n * n, 0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      a[i * n + j] = i + j;
      b[i * n + j] = i - j;
    }
  for (int i = 0; i < n; ++i)
    for (int k = 0; k < n; ++k)
      for (int j = 0; j < n; ++j) c[i * n + j] += a[i * n + k] * b[k * n + j];
  double trace = 0;
  for (int i = 0; i < n; ++i) trace += c[i * n + i];
  EXPECT_DOUBLE_EQ(run_f64(*inst, "matmul_trace", {Value::from_i32(n)}), trace);
}

TEST_P(WccTest, FunctionCallsWithMixedTypes) {
  auto inst = build(R"(
    double scale(double x, int k) { return x * k; }
    double f(int n) { return scale(1.5, n) + scale(n, 2); }
  )");
  EXPECT_DOUBLE_EQ(run_f64(*inst, "f", {Value::from_i32(4)}), 1.5 * 4 + 4.0 * 2);
}

TEST_P(WccTest, ErrorsAreReported) {
  EXPECT_FALSE(compile("int f( { return 0; }").ok());
  EXPECT_FALSE(compile("int f() { return undeclared_var; }").ok());
  EXPECT_FALSE(compile("int f() { unknown_fn(); return 0; }").ok());
  EXPECT_FALSE(compile("int f() { int x = 1; x[0] = 2; return x; }").ok());
  EXPECT_FALSE(compile("int f() { break; }").ok());
  EXPECT_FALSE(compile("@").ok());
}

TEST_P(WccTest, FallingOffNonVoidTraps) {
  auto inst = build("int f(int x) { if (x) return 1; }");
  auto ok = inst->invoke("f", std::vector<Value>{Value::from_i32(1)});
  EXPECT_TRUE(ok.ok());
  auto bad = inst->invoke("f", std::vector<Value>{Value::from_i32(0)});
  EXPECT_FALSE(bad.ok());
}

INSTANTIATE_TEST_SUITE_P(Modes, WccTest,
                         ::testing::Values(ExecMode::Interp, ExecMode::Aot),
                         [](const ::testing::TestParamInfo<ExecMode>& info) {
                           return info.param == ExecMode::Aot ? "Aot" : "Interp";
                         });

}  // namespace
}  // namespace watz::wcc
