// extern (host import) declarations in wcc.
#include <gtest/gtest.h>

#include "wasm/decoder.hpp"
#include "wasm/instance.hpp"
#include "wcc/compiler.hpp"

namespace watz::wcc {
namespace {

using wasm::Value;
using wasm::ValType;

TEST(WccExtern, ImportsResolveAndDispatch) {
  auto binary = compile(R"(
    extern int host_add(int a, int b);
    extern void host_note(int code);
    int f(int x) {
      host_note(x);
      return host_add(x, 10);
    }
  )");
  ASSERT_TRUE(binary.ok()) << binary.error();

  int noted = 0;
  wasm::ImportResolver imports;
  imports.add_function("wasi_snapshot_preview1", "host_add",
                       {{ValType::I32, ValType::I32}, {ValType::I32}},
                       [](wasm::Instance&, std::span<const Value> a)
                           -> Result<std::vector<Value>> {
                         return std::vector<Value>{Value::from_i32(a[0].i32() + a[1].i32())};
                       });
  imports.add_function("wasi_snapshot_preview1", "host_note", {{ValType::I32}, {}},
                       [&noted](wasm::Instance&, std::span<const Value> a)
                           -> Result<std::vector<Value>> {
                         noted = a[0].i32();
                         return std::vector<Value>{};
                       });

  auto module = wasm::decode_module(*binary);
  ASSERT_TRUE(module.ok());
  EXPECT_EQ(module->num_imported_funcs(), 2u);
  auto inst = wasm::Instance::instantiate(std::move(*module), imports, wasm::ExecMode::Aot);
  ASSERT_TRUE(inst.ok()) << inst.error();
  auto r = (*inst)->invoke("f", std::vector<Value>{Value::from_i32(7)});
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r->front().i32(), 17);
  EXPECT_EQ(noted, 7);
}

TEST(WccExtern, WasiRaPrefixMapsToWasiRaModule) {
  auto binary = compile(R"(
    extern int wasi_ra_net_data_size(int ctx);
    int f(int c) { return wasi_ra_net_data_size(c); }
  )");
  ASSERT_TRUE(binary.ok()) << binary.error();
  auto module = wasm::decode_module(*binary);
  ASSERT_TRUE(module.ok());
  ASSERT_EQ(module->imports.size(), 1u);
  EXPECT_EQ(module->imports[0].module, "wasi_ra");
}

TEST(WccExtern, MissingImportFailsInstantiation) {
  auto binary = compile(R"(
    extern int nowhere(int x);
    int f() { return nowhere(1); }
  )");
  ASSERT_TRUE(binary.ok()) << binary.error();
  auto module = wasm::decode_module(*binary);
  ASSERT_TRUE(module.ok());
  static const wasm::ImportResolver kEmpty;
  EXPECT_FALSE(wasm::Instance::instantiate(std::move(*module), kEmpty,
                                           wasm::ExecMode::Aot)
                   .ok());
}

TEST(WccExtern, DataSegmentsAreEmitted) {
  CompileOptions options;
  options.data.push_back({64, to_bytes("hello")});
  auto binary = compile("int first() { char* m = (char*)0; return m[64]; }", options);
  ASSERT_TRUE(binary.ok()) << binary.error();
  static const wasm::ImportResolver kEmpty;
  auto module = wasm::decode_module(*binary);
  ASSERT_TRUE(module.ok());
  auto inst = wasm::Instance::instantiate(std::move(*module), kEmpty, wasm::ExecMode::Aot);
  ASSERT_TRUE(inst.ok()) << inst.error();
  auto r = (*inst)->invoke("first", {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->front().i32(), 'h');
}

}  // namespace
}  // namespace watz::wcc
