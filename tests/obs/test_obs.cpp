// The observability plane: typed metrics registry + span-sink rings.
//
// The SpanSink tests are part of the sanitizer CI payload: record() is a
// per-cell seqlock publish and drain() validates sequence numbers instead
// of blocking writers, so the 4-writer stress below is exactly the shape
// TSan needs to see.
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>
#include <vector>

namespace watz::obs {
namespace {

// -- metrics -----------------------------------------------------------------

TEST(Metrics, CounterAccumulates) {
  Counter c;
  EXPECT_EQ(c.get(), 0u);
  c.add();
  c.add(41);
  EXPECT_EQ(c.get(), 42u);
}

TEST(Metrics, GaugeMovesBothWays) {
  Gauge g;
  g.add(100);
  g.sub(30);
  EXPECT_EQ(g.get(), 70u);
}

TEST(Metrics, BoundedGaugeRefusesOvershoot) {
  Gauge g;
  EXPECT_TRUE(g.try_add_bounded(20, 27));
  EXPECT_TRUE(g.try_add_bounded(7, 27));  // lands exactly on the bound
  EXPECT_EQ(g.get(), 27u);
  EXPECT_FALSE(g.try_add_bounded(1, 27));
  EXPECT_EQ(g.get(), 27u);  // a refused reservation leaves no residue
}

TEST(Metrics, HistogramPercentilesAreBucketUpperBounds) {
  Histogram h;
  EXPECT_EQ(h.percentile(0.5), 0u);  // empty
  for (int i = 0; i < 99; ++i) h.record(100);  // bucket 7: 100 <= 128
  h.record(1'000'000);                         // bucket 20
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.percentile(0.5), 1u << 7);
  EXPECT_EQ(h.percentile(0.9), 1u << 7);
  EXPECT_EQ(h.percentile(1.0), 1u << 20);  // the outlier owns the tail
}

TEST(Metrics, RegistryHandsOutStableReferences) {
  Registry reg;
  Counter& a = reg.counter("gateway.invocations");
  a.add(3);
  Counter& b = reg.counter("gateway.invocations");
  EXPECT_EQ(&a, &b);  // get-or-create, not create-twice
  EXPECT_EQ(b.get(), 3u);
  EXPECT_NE(&reg.counter("gateway.other"), &a);
}

TEST(Metrics, SnapshotCarriesOwnedAndLinkedSorted) {
  Registry reg;
  reg.counter("b.counter").add(2);
  reg.gauge("c.gauge").add(7);
  Histogram& h = reg.histogram("d.hist");
  h.record(100);

  Counter external;  // e.g. a device's module-cache counter
  external.add(9);
  reg.link_counter("a.linked", &external);

  auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  EXPECT_TRUE(std::is_sorted(
      snap.begin(), snap.end(),
      [](const MetricSnapshot& x, const MetricSnapshot& y) { return x.name < y.name; }));
  EXPECT_EQ(snap[0].name, "a.linked");
  EXPECT_EQ(snap[0].value, 9u);
  EXPECT_EQ(snap[1].name, "b.counter");
  EXPECT_EQ(snap[1].value, 2u);
  EXPECT_EQ(snap[3].kind, MetricKind::Histogram);
  EXPECT_EQ(snap[3].value, 1u);  // histogram: sample count
  EXPECT_EQ(snap[3].p50, 1u << 7);

  reg.link_counter("a.linked", nullptr);  // unlink before `external` dies
  EXPECT_EQ(reg.snapshot().size(), 3u);
}

// -- span identity -----------------------------------------------------------

TEST(Trace, IdAllocatorsNeverReturnZero) {
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t span = next_span_id();
    const std::uint64_t trace = next_trace_id();
    EXPECT_NE(span, 0u);
    EXPECT_NE(trace, 0u);
    EXPECT_TRUE(seen.insert(trace).second) << "trace-id collision";
  }
  TraceContext untraced;
  EXPECT_FALSE(untraced.active());
  EXPECT_TRUE((TraceContext{next_trace_id(), 0}.active()));
}

// -- span sink ---------------------------------------------------------------

SpanRecord make_span(std::uint64_t trace, std::uint64_t span, Stage stage) {
  SpanRecord r;
  r.trace_id = trace;
  r.span_id = span;
  r.parent_id = span / 2;
  r.start_ns = span * 3;
  r.dur_ns = span * 7;
  r.stage = stage;
  r.detail = static_cast<std::uint32_t>(span & 0xFF);
  return r;
}

TEST(SpanSink, RecordDrainRoundTrip) {
  SpanSink sink(64);
  for (std::uint64_t i = 1; i <= 5; ++i)
    sink.record(make_span(0xABCD, i, Stage::Exec));
  auto spans = sink.drain();
  ASSERT_EQ(spans.size(), 5u);
  EXPECT_EQ(spans[2].trace_id, 0xABCDu);
  EXPECT_EQ(spans[2].span_id, 3u);
  EXPECT_EQ(spans[2].parent_id, 1u);
  EXPECT_EQ(spans[2].start_ns, 9u);
  EXPECT_EQ(spans[2].dur_ns, 21u);
  EXPECT_EQ(spans[2].stage, Stage::Exec);
  EXPECT_EQ(sink.dropped(), 0u);
  EXPECT_EQ(sink.ring_count(), 1u);
  EXPECT_TRUE(sink.drain().empty());  // drain is incremental
}

TEST(SpanSink, RingWrapOverwritesOldestAndCountsDrops) {
  SpanSink sink(8);
  EXPECT_EQ(sink.capacity_per_thread(), 8u);
  for (std::uint64_t i = 1; i <= 20; ++i)
    sink.record(make_span(1, i, Stage::Queue));
  auto spans = sink.drain();
  ASSERT_EQ(spans.size(), 8u);  // only the last ring-full survives
  EXPECT_EQ(sink.dropped(), 12u);
  for (std::size_t i = 0; i < spans.size(); ++i)
    EXPECT_EQ(spans[i].span_id, 13 + i);  // ...in publish order
}

TEST(SpanSink, FourConcurrentWritersNeverTearRecords) {
  SpanSink sink(256);
  constexpr int kWriters = 4;
  constexpr std::uint64_t kPerWriter = 20'000;  // laps the ring many times

  std::vector<SpanRecord> drained;
  std::atomic<bool> stop{false};
  // A concurrent reader races the writers on purpose: the seqlock must
  // surface torn cells as drops, never as garbled records.
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      auto batch = sink.drain();
      drained.insert(drained.end(), batch.begin(), batch.end());
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (std::uint64_t i = 1; i <= kPerWriter; ++i)
        sink.record(make_span(0x1000 + w, i, Stage::Guest));
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  auto tail = sink.drain();
  drained.insert(drained.end(), tail.begin(), tail.end());

  EXPECT_EQ(sink.ring_count(), static_cast<std::size_t>(kWriters));
  // Conservation: every published record either drained intact or was
  // declared dropped. Nothing vanishes, nothing is invented.
  EXPECT_EQ(drained.size() + sink.dropped(), kWriters * kPerWriter);
  // Integrity: each drained record's fields are the deterministic function
  // of its span_id — a torn read (mixed cells) cannot satisfy all three.
  for (const SpanRecord& r : drained) {
    ASSERT_GE(r.trace_id, 0x1000u);
    ASSERT_LT(r.trace_id, 0x1000u + kWriters);
    ASSERT_EQ(r.start_ns, r.span_id * 3);
    ASSERT_EQ(r.dur_ns, r.span_id * 7);
    ASSERT_EQ(r.parent_id, r.span_id / 2);
  }
}

TEST(SpanSink, ChromeExportIsLoadableTraceEventJson) {
  std::vector<SpanRecord> spans;
  spans.push_back(make_span(0xBEEF, 2, Stage::Admit));
  spans.push_back(make_span(0xBEEF, 4, Stage::TeeEntry));
  const std::string json = SpanSink::to_chrome_trace(spans);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find(stage_name(Stage::Admit)), std::string::npos);
  EXPECT_NE(json.find(stage_name(Stage::TeeEntry)), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  // An empty drain still renders a valid (loadable) document.
  EXPECT_NE(SpanSink::to_chrome_trace({}).find("\"traceEvents\""),
            std::string::npos);
}

// -- thread-local trace ------------------------------------------------------

TEST(Trace, EmitSpanIsInertWithoutAnInstalledTrace) {
  ASSERT_FALSE(tracing_active());
  emit_span(Stage::Exec, 10, 20);  // must not crash, must not record
  { ScopedSpan span(Stage::Guest); }
  EXPECT_FALSE(tracing_active());
}

TEST(Trace, ScopedTraceInstallsAndRestores) {
  SpanSink sink(64);
  const std::uint64_t trace_id = next_trace_id();
  const std::uint64_t root = next_span_id();
  {
    ScopedTrace scope(&sink, trace_id, root);
    ASSERT_TRUE(tracing_active());
    EXPECT_EQ(thread_trace().trace_id, trace_id);
    emit_span(Stage::Queue, 100, 160, /*detail=*/3);
    {
      // Nested re-dispatch hop: inner trace wins, outer comes back.
      ScopedTrace inner(nullptr, 0, 0);
      EXPECT_FALSE(tracing_active());
    }
    ASSERT_TRUE(tracing_active());
    { ScopedSpan span(Stage::Guest); }
  }
  EXPECT_FALSE(tracing_active());

  auto spans = sink.drain();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].trace_id, trace_id);
  EXPECT_EQ(spans[0].parent_id, root);  // stage spans hang off the lane root
  EXPECT_EQ(spans[0].stage, Stage::Queue);
  EXPECT_EQ(spans[0].start_ns, 100u);
  EXPECT_EQ(spans[0].dur_ns, 60u);
  EXPECT_EQ(spans[0].detail, 3u);
  EXPECT_NE(spans[0].span_id, spans[1].span_id);
  EXPECT_EQ(spans[1].stage, Stage::Guest);
  EXPECT_EQ(spans[1].trace_id, trace_id);
}

}  // namespace
}  // namespace watz::obs
