// End-to-end tests of the WaTZ core: device boot, Wasm app launch with
// measurement, WASI surface, and the full attested provisioning flow
// between two simulated boards over the network fabric.
#include <gtest/gtest.h>

#include "core/device.hpp"
#include "core/guest_builder.hpp"
#include "core/verifier_host.hpp"
#include "crypto/fortuna.hpp"
#include "wasm/builder.hpp"

namespace watz::core {
namespace {

DeviceConfig test_device_config(const std::string& hostname, std::uint8_t id) {
  DeviceConfig config;
  config.hostname = hostname;
  config.otpmk.fill(id);
  config.latency.enabled = false;  // functional tests: no charged latency
  return config;
}

class WatzCoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    vendor_ = Vendor::create(to_bytes("test-vendor"));
    auto device = Device::boot(fabric_, vendor_, test_device_config("attester", 0x11));
    ASSERT_TRUE(device.ok()) << device.error();
    device_ = std::move(*device);
  }

  /// A trivial guest: export run() -> i32 returning 7; uses one page.
  Bytes trivial_app() {
    wasm::ModuleBuilder b;
    b.add_memory(1);
    const auto f = b.add_function({{}, {wasm::ValType::I32}});
    wasm::CodeEmitter e;
    e.i32_const(7);
    b.set_body(f, e.bytes());
    b.export_function("run", f);
    return b.build();
  }

  net::Fabric fabric_;
  Vendor vendor_;
  std::unique_ptr<Device> device_;
};

TEST_F(WatzCoreTest, LaunchMeasuresAndRuns) {
  const Bytes app = trivial_app();
  auto loaded = device_->runtime().launch(app, AppConfig{});
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  EXPECT_EQ((*loaded)->measurement(), crypto::sha256(app));
  auto r = (*loaded)->invoke("run", {});
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r->front().i32(), 7);
  EXPECT_EQ(device_->runtime().apps_launched(), 1u);
}

TEST_F(WatzCoreTest, StartupBreakdownIsPopulated) {
  auto loaded = device_->runtime().launch(trivial_app(), AppConfig{});
  ASSERT_TRUE(loaded.ok());
  const StartupBreakdown& s = (*loaded)->startup();
  EXPECT_GT(s.hashing_ns, 0u);
  EXPECT_GT(s.loading_ns, 0u);
  EXPECT_GT(s.total_ns(), 0u);
}

TEST_F(WatzCoreTest, RejectsMalformedBinary) {
  auto loaded = device_->runtime().launch(to_bytes("not wasm at all"), AppConfig{});
  EXPECT_FALSE(loaded.ok());
}

TEST_F(WatzCoreTest, DistinctAppsGetDistinctMeasurements) {
  auto a = device_->runtime().launch(trivial_app(), AppConfig{});
  wasm::ModuleBuilder b;
  b.add_memory(1);
  const auto f = b.add_function({{}, {wasm::ValType::I32}});
  wasm::CodeEmitter e;
  e.i32_const(8);  // differs by one constant
  b.set_body(f, e.bytes());
  b.export_function("run", f);
  auto other = device_->runtime().launch(b.build(), AppConfig{});
  ASSERT_TRUE(a.ok() && other.ok());
  EXPECT_NE((*a)->measurement(), (*other)->measurement());
}

TEST_F(WatzCoreTest, HeapCapRejectsOversizedApp) {
  AppConfig config;
  config.heap_bytes = 40 * 1024 * 1024;  // above the 27 MB secure heap
  auto loaded = device_->runtime().launch(trivial_app(), config);
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.error().find("27 MB"), std::string::npos);
}

TEST_F(WatzCoreTest, SandboxesAreIsolated) {
  // Two instances of the same app: writes in one memory must not appear in
  // the other (the per-app Wasm sandbox isolation of SS III).
  wasm::ModuleBuilder b;
  b.add_memory(1);
  const auto poke = b.add_function({{wasm::ValType::I32}, {}});
  {
    wasm::CodeEmitter e;
    e.i32_const(0).local_get(0).store(wasm::kI32Store, 0);
    b.set_body(poke, e.bytes());
  }
  b.export_function("poke", poke);
  const auto peek = b.add_function({{}, {wasm::ValType::I32}});
  {
    wasm::CodeEmitter e;
    e.i32_const(0).load(wasm::kI32Load, 0);
    b.set_body(peek, e.bytes());
  }
  b.export_function("peek", peek);
  const Bytes app = b.build();

  auto app1 = device_->runtime().launch(app, AppConfig{});
  auto app2 = device_->runtime().launch(app, AppConfig{});
  ASSERT_TRUE(app1.ok() && app2.ok());
  const wasm::Value v = wasm::Value::from_i32(1234);
  ASSERT_TRUE((*app1)->invoke("poke", std::span<const wasm::Value>(&v, 1)).ok());
  auto r2 = (*app2)->invoke("peek", {});
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2->front().i32(), 0) << "sandbox leak between instances";
}

TEST_F(WatzCoreTest, WasiClockAndStdoutWork) {
  // Guest: t = clock_time_get(1); fd_write(1, iov("hi")); return (t != 0).
  wasm::ModuleBuilder b;
  const auto clock = b.import_function(
      "wasi_snapshot_preview1", "clock_time_get",
      {{wasm::ValType::I32, wasm::ValType::I64, wasm::ValType::I32}, {wasm::ValType::I32}});
  const auto fd_write = b.import_function(
      "wasi_snapshot_preview1", "fd_write",
      {{wasm::ValType::I32, wasm::ValType::I32, wasm::ValType::I32, wasm::ValType::I32},
       {wasm::ValType::I32}});
  b.add_memory(1);
  b.add_data(100, to_bytes("hi"));
  const auto f = b.add_function({{}, {wasm::ValType::I32}});
  wasm::CodeEmitter e;
  // clock_time_get(monotonic=1, precision=1, out=16)
  e.i32_const(1).i64_const(1).i32_const(16).call(clock).op(wasm::kDrop);
  // iov at 32: ptr=100, len=2
  e.i32_const(32).i32_const(100).store(wasm::kI32Store, 0);
  e.i32_const(36).i32_const(2).store(wasm::kI32Store, 0);
  e.i32_const(1).i32_const(32).i32_const(1).i32_const(48).call(fd_write).op(wasm::kDrop);
  // return time != 0
  e.i32_const(16).load(wasm::kI64Load, 0).i64_const(0).op(wasm::kI64Ne);
  b.set_body(f, e.bytes());
  b.export_function("main", f);

  auto loaded = device_->runtime().launch(b.build(), AppConfig{});
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  auto r = (*loaded)->invoke("main", {});
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r->front().i32(), 1);
  EXPECT_EQ((*loaded)->wasi().stdout_data(), "hi");
  EXPECT_GE((*loaded)->wasi().call_count(), 2u);
}

TEST_F(WatzCoreTest, WasiStubsReturnEnosys) {
  wasm::ModuleBuilder b;
  const auto fd_close = b.import_function("wasi_snapshot_preview1", "fd_close",
                                          {{wasm::ValType::I32}, {wasm::ValType::I32}});
  b.add_memory(1);
  const auto f = b.add_function({{}, {wasm::ValType::I32}});
  wasm::CodeEmitter e;
  e.i32_const(3).call(fd_close);
  b.set_body(f, e.bytes());
  b.export_function("main", f);
  auto loaded = device_->runtime().launch(b.build(), AppConfig{});
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  auto r = (*loaded)->invoke("main", {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->front().u32(), wasi::kErrnoNosys);
}

TEST_F(WatzCoreTest, ProcExitUnwindsCleanly) {
  wasm::ModuleBuilder b;
  const auto proc_exit = b.import_function("wasi_snapshot_preview1", "proc_exit",
                                           {{wasm::ValType::I32}, {}});
  b.add_memory(1);
  const auto f = b.add_function({{}, {wasm::ValType::I32}});
  wasm::CodeEmitter e;
  e.i32_const(42).call(proc_exit);
  e.i32_const(0);
  b.set_body(f, e.bytes());
  b.export_function("main", f);
  auto loaded = device_->runtime().launch(b.build(), AppConfig{});
  ASSERT_TRUE(loaded.ok());
  auto r = (*loaded)->invoke("main", {});
  EXPECT_FALSE(r.ok());  // unwound via trap
  EXPECT_TRUE((*loaded)->wasi().exited());
  EXPECT_EQ((*loaded)->wasi().exit_code(), 42u);
}

/// Full two-board scenario: attester device + verifier device.
class EndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    vendor_ = Vendor::create(to_bytes("e2e-vendor"));
    auto attester = Device::boot(fabric_, vendor_, test_device_config("attester", 0x21));
    ASSERT_TRUE(attester.ok()) << attester.error();
    attester_ = std::move(*attester);
    auto verifier = Device::boot(fabric_, vendor_, test_device_config("verifier", 0x22));
    ASSERT_TRUE(verifier.ok()) << verifier.error();
    verifier_device_ = std::move(*verifier);

    rng_ = std::make_unique<crypto::Fortuna>(to_bytes("e2e-rng"));
    host_ = std::make_unique<VerifierHost>(*verifier_device_, *rng_);
    ASSERT_TRUE(host_->listen(4433).ok());

    app_ = build_attester_app(host_->identity(), "verifier", 4433);
    host_->verifier().endorse_device(attester_->attestation_service().public_key());
    host_->verifier().add_reference_measurement(crypto::sha256(app_));
    host_->verifier().set_secret_provider(
        [this](const crypto::Sha256Digest&) { return secret_; });
  }

  net::Fabric fabric_;
  Vendor vendor_;
  std::unique_ptr<Device> attester_;
  std::unique_ptr<Device> verifier_device_;
  std::unique_ptr<crypto::Fortuna> rng_;
  std::unique_ptr<VerifierHost> host_;
  Bytes app_;
  Bytes secret_ = to_bytes("Xsecret dataset payload");
};

TEST_F(EndToEndTest, AttestedProvisioningDeliversSecret) {
  AppConfig config;
  config.heap_bytes = 4 * 1024 * 1024;
  auto loaded = attester_->runtime().launch(app_, config);
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  auto r = (*loaded)->invoke("attest", {});
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r->front().i32(), static_cast<std::int32_t>(secret_.size()));
  auto first = (*loaded)->invoke("first_secret_byte", {});
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first->front().i32(), 'X');
  // Session state cleaned up by the guest's dispose calls.
  EXPECT_EQ((*loaded)->wasi_ra().open_contexts(), 0u);
  EXPECT_EQ((*loaded)->wasi_ra().open_quotes(), 0u);
}

TEST_F(EndToEndTest, TamperedAppIsRefusedTheSecret) {
  // Flip one byte of the application: it still runs, but its measurement no
  // longer matches the verifier's reference value.
  Bytes tampered = app_;
  // Patch the last byte of the verifier-identity data segment copy in the
  // binary: semantically inert for the handshake host/port, but changes the
  // measurement. Safer: append a harmless custom section instead.
  wasm::ModuleBuilder trailer;  // unused; we append a custom section manually
  Bytes custom;
  custom.push_back(0);  // custom section id
  Bytes payload;
  payload.push_back(4);
  append(payload, to_bytes("evil"));
  write_uleb(custom, payload.size());
  append(custom, payload);
  append(tampered, custom);

  auto loaded = attester_->runtime().launch(tampered, AppConfig{.heap_bytes = 4 << 20});
  ASSERT_TRUE(loaded.ok()) << loaded.error();
  EXPECT_NE((*loaded)->measurement(), crypto::sha256(app_));
  auto r = (*loaded)->invoke("attest", {});
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_LT(r->front().i32(), 0) << "tampered app must not receive the secret";
}

TEST_F(EndToEndTest, UnknownDeviceIsRefused) {
  // A third device, same software, but whose attestation key was never
  // endorsed by the verifier.
  auto rogue = Device::boot(fabric_, vendor_, test_device_config("rogue", 0x33));
  ASSERT_TRUE(rogue.ok());
  auto loaded = (*rogue)->runtime().launch(app_, AppConfig{.heap_bytes = 4 << 20});
  ASSERT_TRUE(loaded.ok());
  auto r = (*loaded)->invoke("attest", {});
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->front().i32(), 0);
}

TEST_F(EndToEndTest, WrongVerifierIdentityAborts) {
  // App hardcodes a different identity than the live verifier's.
  crypto::Fortuna other_rng(to_bytes("other"));
  const auto other_identity = crypto::ecdsa_keygen(other_rng);
  const Bytes app = build_attester_app(other_identity.pub, "verifier", 4433);
  host_->verifier().add_reference_measurement(crypto::sha256(app));
  auto loaded = attester_->runtime().launch(app, AppConfig{.heap_bytes = 4 << 20});
  ASSERT_TRUE(loaded.ok());
  auto r = (*loaded)->invoke("attest", {});
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->front().i32(), 0);
}

TEST_F(EndToEndTest, InterpAndAotModesBothAttest) {
  for (const wasm::ExecMode mode : {wasm::ExecMode::Interp, wasm::ExecMode::Aot}) {
    AppConfig config;
    config.heap_bytes = 4 * 1024 * 1024;
    config.mode = mode;
    auto loaded = attester_->runtime().launch(app_, config);
    ASSERT_TRUE(loaded.ok()) << loaded.error();
    auto r = (*loaded)->invoke("attest", {});
    ASSERT_TRUE(r.ok()) << r.error();
    EXPECT_EQ(r->front().i32(), static_cast<std::int32_t>(secret_.size()));
  }
}

}  // namespace
}  // namespace watz::core
