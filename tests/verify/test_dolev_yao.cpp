// Tests of the symbolic analyser and of the WaTZ protocol model — the
// executable counterpart of the paper's Scyther verification (SS VII).
#include <gtest/gtest.h>

#include "verify/protocol_model.hpp"

namespace watz::verify {
namespace {

// ---------------------------------------------------------------------------
// Term algebra

TEST(Term, DhIsCommutative) {
  const Term a = Term::atom("a");
  const Term b = Term::atom("b");
  EXPECT_EQ(Term::dh(a, Term::pub(b)), Term::dh(b, Term::pub(a)));
}

TEST(Term, StructuralEquality) {
  const Term x = Term::atom("x");
  EXPECT_EQ(Term::hash(x), Term::hash(Term::atom("x")));
  EXPECT_NE(Term::hash(x), Term::hash(Term::atom("y")));
  EXPECT_NE(Term::kdf(x, "SMK"), Term::kdf(x, "SEK"));
}

TEST(Term, ToStringIsReadable) {
  const Term t = Term::enc(Term::kdf(Term::atom("s"), "SEK"), Term::atom("blob"));
  EXPECT_EQ(t.to_string(), "Enc(Kdf(s,SEK),blob)");
}

// ---------------------------------------------------------------------------
// Intruder engine

TEST(Intruder, DecomposesPairsAndSignatures) {
  IntruderKnowledge k;
  k.observe(Term::pair(Term::atom("x"), Term::sign(Term::atom("sk"), Term::atom("m"))));
  EXPECT_TRUE(k.knows_atom("x"));
  EXPECT_TRUE(k.knows_atom("m"));   // signatures reveal their message
  EXPECT_FALSE(k.knows_atom("sk"));  // but not the key
}

TEST(Intruder, DecryptsOnlyWithKey) {
  IntruderKnowledge k;
  k.observe(Term::enc(Term::atom("k1"), Term::atom("payload")));
  EXPECT_FALSE(k.knows_atom("payload"));
  k.observe(Term::atom("k1"));
  EXPECT_TRUE(k.knows_atom("payload"));
}

TEST(Intruder, ComposesButCannotInvert) {
  IntruderKnowledge k;
  k.observe(Term::atom("x"));
  EXPECT_TRUE(k.derivable(Term::hash(Term::atom("x"))));
  EXPECT_TRUE(k.derivable(Term::pub(Term::atom("x"))));
  // Cannot get y from Pub(y).
  k.observe(Term::pub(Term::atom("y")));
  EXPECT_FALSE(k.derivable(Term::atom("y")));
  // Cannot invert a hash.
  k.observe(Term::hash(Term::atom("z")));
  EXPECT_FALSE(k.derivable(Term::atom("z")));
}

TEST(Intruder, DhRequiresAScalar) {
  IntruderKnowledge k;
  k.observe(Term::pub(Term::atom("a")));
  k.observe(Term::pub(Term::atom("b")));
  EXPECT_FALSE(k.derivable(Term::dh(Term::atom("a"), Term::pub(Term::atom("b")))));
  k.observe(Term::atom("e"));
  EXPECT_TRUE(k.derivable(Term::dh(Term::atom("e"), Term::pub(Term::atom("a")))));
}

TEST(Intruder, SignatureForgeryRequiresKey) {
  IntruderKnowledge k;
  k.observe(Term::atom("m"));
  k.observe(Term::pub(Term::atom("sk")));
  EXPECT_FALSE(k.derivable(Term::sign(Term::atom("sk"), Term::atom("m"))));
  k.observe(Term::atom("sk"));
  EXPECT_TRUE(k.derivable(Term::sign(Term::atom("sk"), Term::atom("m"))));
}

// ---------------------------------------------------------------------------
// The WaTZ protocol claims (SS VII: "Scyther revealed no attack or flaw")

TEST(WatzProtocol, AllClaimsHold) {
  for (const ClaimResult& claim : analyse_watz_protocol()) {
    EXPECT_TRUE(claim.holds) << claim.claim << ": " << claim.detail;
  }
}

TEST(WatzProtocol, ClaimCoverageMatchesPaper) {
  const auto results = analyse_watz_protocol();
  // 8 secrecy claims + agreement + aliveness + evidence binding +
  // reachability.
  EXPECT_EQ(results.size(), 12u);
  int secrecy = 0;
  for (const auto& r : results)
    if (r.claim.rfind("secrecy", 0) == 0) ++secrecy;
  EXPECT_EQ(secrecy, 8);
}

TEST(WatzProtocol, BrokenVariantIsCaught) {
  // Removing Sign_V(Gv || Ga) from msg1 must break agreement (MITM becomes
  // possible) — this proves the analyser has attack-finding power and is
  // not vacuously passing everything.
  bool agreement_broken = false;
  bool secrecy_still_checked = false;
  for (const ClaimResult& claim : analyse_broken_protocol()) {
    if (claim.claim.rfind("agreement", 0) == 0 && !claim.holds) agreement_broken = true;
    if (claim.claim.rfind("secrecy", 0) == 0) secrecy_still_checked = true;
  }
  EXPECT_TRUE(agreement_broken) << "analyser failed to find the MITM in the broken variant";
  EXPECT_TRUE(secrecy_still_checked);
}

TEST(WatzProtocol, BrokenVariantAlsoFailsAliveness) {
  bool aliveness_broken = false;
  for (const ClaimResult& claim : analyse_broken_protocol())
    if (claim.claim.rfind("aliveness", 0) == 0 && !claim.holds) aliveness_broken = true;
  EXPECT_TRUE(aliveness_broken);
}

}  // namespace
}  // namespace watz::verify
