#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "db/btree.hpp"
#include "db/database.hpp"
#include "db/speedtest.hpp"

namespace watz::db {
namespace {

// ---------------------------------------------------------------------------
// SqlValue

TEST(SqlValue, OrderingAcrossTypes) {
  EXPECT_LT(SqlValue{}, SqlValue(std::int64_t{1}));        // NULL < numbers
  EXPECT_LT(SqlValue(std::int64_t{5}), SqlValue("text"));  // numbers < text
  EXPECT_EQ(SqlValue(std::int64_t{2}).compare(SqlValue(2.0)), 0);  // numeric equality
  EXPECT_LT(SqlValue(1.5), SqlValue(std::int64_t{2}));
  EXPECT_LT(SqlValue("abc"), SqlValue("abd"));
}

// ---------------------------------------------------------------------------
// BTree

TEST(BTree, InsertFindSmall) {
  BTree tree;
  for (int i = 0; i < 10; ++i) tree.insert(SqlValue(std::int64_t{i}), i * 100);
  EXPECT_EQ(tree.size(), 10u);
  auto hits = tree.find(SqlValue(std::int64_t{7}));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 700u);
  EXPECT_TRUE(tree.find(SqlValue(std::int64_t{55})).empty());
  EXPECT_TRUE(tree.check_invariants());
}

TEST(BTree, SplitsGrowHeight) {
  BTree tree;
  EXPECT_EQ(tree.height(), 1u);
  for (int i = 0; i < 5000; ++i) tree.insert(SqlValue(std::int64_t{i}), i);
  EXPECT_GE(tree.height(), 2u);
  EXPECT_TRUE(tree.check_invariants());
  for (int i = 0; i < 5000; i += 37) {
    auto hits = tree.find(SqlValue(std::int64_t{i}));
    ASSERT_EQ(hits.size(), 1u) << i;
    EXPECT_EQ(hits[0], static_cast<std::uint64_t>(i));
  }
}

TEST(BTree, RandomInsertLookupProperty) {
  BTree tree;
  std::mt19937_64 rng(42);
  std::vector<std::pair<std::int64_t, std::uint64_t>> inserted;
  for (int i = 0; i < 3000; ++i) {
    const std::int64_t key = static_cast<std::int64_t>(rng() % 1000);
    tree.insert(SqlValue(key), i);
    inserted.emplace_back(key, i);
  }
  EXPECT_TRUE(tree.check_invariants());
  // Every inserted pair must be findable.
  for (const auto& [key, row] : inserted) {
    auto hits = tree.find(SqlValue(key));
    EXPECT_NE(std::find(hits.begin(), hits.end(), row), hits.end());
  }
}

TEST(BTree, RangeQueries) {
  BTree tree;
  for (int i = 0; i < 1000; ++i) tree.insert(SqlValue(std::int64_t{i * 2}), i);
  const SqlValue lo(std::int64_t{100});
  const SqlValue hi(std::int64_t{120});
  auto rows = tree.range(&lo, &hi);
  EXPECT_EQ(rows.size(), 11u);  // 100,102,...,120
  auto all = tree.range(nullptr, nullptr);
  EXPECT_EQ(all.size(), 1000u);
  auto below = tree.range(nullptr, &lo);
  EXPECT_EQ(below.size(), 51u);  // 0..100 step 2
}

TEST(BTree, EraseSpecificPairs) {
  BTree tree;
  tree.insert(SqlValue(std::int64_t{5}), 1);
  tree.insert(SqlValue(std::int64_t{5}), 2);
  tree.insert(SqlValue(std::int64_t{5}), 3);
  EXPECT_TRUE(tree.erase(SqlValue(std::int64_t{5}), 2));
  EXPECT_FALSE(tree.erase(SqlValue(std::int64_t{5}), 2));
  auto hits = tree.find(SqlValue(std::int64_t{5}));
  EXPECT_EQ(hits.size(), 2u);
  EXPECT_EQ(tree.size(), 2u);
}

TEST(BTree, MassEraseProperty) {
  BTree tree;
  for (int i = 0; i < 2000; ++i) tree.insert(SqlValue(std::int64_t{i}), i);
  for (int i = 0; i < 2000; i += 2) EXPECT_TRUE(tree.erase(SqlValue(std::int64_t{i}), i));
  EXPECT_EQ(tree.size(), 1000u);
  for (int i = 0; i < 2000; ++i)
    EXPECT_EQ(tree.find(SqlValue(std::int64_t{i})).size(), i % 2 == 0 ? 0u : 1u);
  EXPECT_TRUE(tree.check_invariants());
}

// ---------------------------------------------------------------------------
// SQL + execution

class MiniSqlTest : public ::testing::Test {
 protected:
  ResultSet exec(const std::string& sql) {
    auto r = db_.execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.error();
    return r.ok() ? *r : ResultSet{};
  }
  Database db_;
};

TEST_F(MiniSqlTest, CreateInsertSelect) {
  exec("CREATE TABLE users (id INTEGER, name TEXT, score REAL)");
  exec("INSERT INTO users VALUES (1, 'ada', 99.5)");
  exec("INSERT INTO users VALUES (2, 'bob', 42.0), (3, 'eve', 77.0)");
  auto rs = exec("SELECT * FROM users");
  EXPECT_EQ(rs.rows.size(), 3u);
  EXPECT_EQ(rs.columns, (std::vector<std::string>{"id", "name", "score"}));
  auto one = exec("SELECT name FROM users WHERE id = 2");
  ASSERT_EQ(one.rows.size(), 1u);
  EXPECT_EQ(one.rows[0][0].as_text(), "bob");
}

TEST_F(MiniSqlTest, WhereComparatorsAndAnd) {
  exec("CREATE TABLE t (a INTEGER, b INTEGER)");
  for (int i = 0; i < 20; ++i)
    exec("INSERT INTO t VALUES (" + std::to_string(i) + ", " + std::to_string(i * i) + ")");
  EXPECT_EQ(exec("SELECT a FROM t WHERE a >= 5 AND a < 8").rows.size(), 3u);
  EXPECT_EQ(exec("SELECT a FROM t WHERE a != 0").rows.size(), 19u);
  EXPECT_EQ(exec("SELECT a FROM t WHERE b > 100 AND a <= 15").rows.size(), 5u);
}

TEST_F(MiniSqlTest, OrderByAndLimit) {
  exec("CREATE TABLE t (a INTEGER, b TEXT)");
  exec("INSERT INTO t VALUES (3, 'c'), (1, 'a'), (2, 'b')");
  auto asc = exec("SELECT b FROM t ORDER BY a");
  ASSERT_EQ(asc.rows.size(), 3u);
  EXPECT_EQ(asc.rows[0][0].as_text(), "a");
  EXPECT_EQ(asc.rows[2][0].as_text(), "c");
  auto desc = exec("SELECT b FROM t ORDER BY a DESC LIMIT 2");
  ASSERT_EQ(desc.rows.size(), 2u);
  EXPECT_EQ(desc.rows[0][0].as_text(), "c");
}

TEST_F(MiniSqlTest, Aggregates) {
  exec("CREATE TABLE t (v INTEGER)");
  for (int i = 1; i <= 10; ++i) exec("INSERT INTO t VALUES (" + std::to_string(i) + ")");
  EXPECT_EQ(exec("SELECT COUNT(*) FROM t").rows[0][0].as_int(), 10);
  EXPECT_DOUBLE_EQ(exec("SELECT SUM(v) FROM t").rows[0][0].as_real(), 55.0);
  EXPECT_DOUBLE_EQ(exec("SELECT AVG(v) FROM t").rows[0][0].as_real(), 5.5);
  EXPECT_EQ(exec("SELECT COUNT(*) FROM t WHERE v > 7").rows[0][0].as_int(), 3);
}

TEST_F(MiniSqlTest, UpdateAndDelete) {
  exec("CREATE TABLE t (k INTEGER, v INTEGER)");
  for (int i = 0; i < 10; ++i) exec("INSERT INTO t VALUES (" + std::to_string(i) + ", 0)");
  auto upd = exec("UPDATE t SET v = 7 WHERE k >= 5");
  EXPECT_EQ(upd.affected, 5u);
  EXPECT_EQ(exec("SELECT COUNT(*) FROM t WHERE v = 7").rows[0][0].as_int(), 5);
  auto del = exec("DELETE FROM t WHERE k < 3");
  EXPECT_EQ(del.affected, 3u);
  EXPECT_EQ(exec("SELECT COUNT(*) FROM t").rows[0][0].as_int(), 7);
}

TEST_F(MiniSqlTest, IndexAcceleratesEquality) {
  exec("CREATE TABLE t (k INTEGER, v TEXT)");
  for (int i = 0; i < 500; ++i)
    exec("INSERT INTO t VALUES (" + std::to_string(i) + ", 'x')");
  db_.reset_stats();
  exec("SELECT v FROM t WHERE k = 250");
  EXPECT_GT(db_.stats().rows_scanned, 0u);  // no index yet: full scan

  exec("CREATE INDEX ik ON t (k)");
  db_.reset_stats();
  auto rs = exec("SELECT v FROM t WHERE k = 250");
  EXPECT_EQ(rs.rows.size(), 1u);
  EXPECT_EQ(db_.stats().rows_scanned, 0u) << "index path must avoid the scan";
  EXPECT_EQ(db_.stats().index_lookups, 1u);
}

TEST_F(MiniSqlTest, IndexRangeAndMaintenance) {
  exec("CREATE TABLE t (k INTEGER, v INTEGER)");
  exec("CREATE INDEX ik ON t (k)");
  for (int i = 0; i < 100; ++i)
    exec("INSERT INTO t VALUES (" + std::to_string(i) + ", " + std::to_string(i) + ")");
  EXPECT_EQ(exec("SELECT COUNT(*) FROM t WHERE k >= 10 AND k <= 19").rows[0][0].as_int(), 10);
  // Index must follow updates of the indexed column.
  exec("UPDATE t SET k = 1000 WHERE k = 15");
  EXPECT_EQ(exec("SELECT COUNT(*) FROM t WHERE k = 15").rows[0][0].as_int(), 0);
  EXPECT_EQ(exec("SELECT COUNT(*) FROM t WHERE k = 1000").rows[0][0].as_int(), 1);
  // ...and deletes.
  exec("DELETE FROM t WHERE k = 1000");
  EXPECT_EQ(exec("SELECT COUNT(*) FROM t WHERE k = 1000").rows[0][0].as_int(), 0);
}

TEST_F(MiniSqlTest, JoinWithAndWithoutIndex) {
  exec("CREATE TABLE orders (id INTEGER, user_id INTEGER)");
  exec("CREATE TABLE users (uid INTEGER, name TEXT)");
  for (int i = 0; i < 20; ++i)
    exec("INSERT INTO users VALUES (" + std::to_string(i) + ", 'user" +
         std::to_string(i) + "')");
  for (int i = 0; i < 60; ++i)
    exec("INSERT INTO orders VALUES (" + std::to_string(i) + ", " +
         std::to_string(i % 20) + ")");
  auto rs = exec("SELECT orders.id, users.name FROM orders JOIN users "
                 "ON orders.user_id = users.uid WHERE users.uid = 3");
  EXPECT_EQ(rs.rows.size(), 3u);
  for (const auto& row : rs.rows) EXPECT_EQ(row[1].as_text(), "user3");

  // Same result with an index on the join column.
  exec("CREATE INDEX iu ON users (uid)");
  auto rs2 = exec("SELECT orders.id, users.name FROM orders JOIN users "
                  "ON orders.user_id = users.uid WHERE users.uid = 3");
  EXPECT_EQ(rs2.rows.size(), rs.rows.size());
}

TEST_F(MiniSqlTest, ErrorsAreReported) {
  EXPECT_FALSE(db_.execute("SELECT * FROM missing").ok());
  EXPECT_FALSE(db_.execute("GARBAGE QUERY").ok());
  exec("CREATE TABLE t (a INTEGER)");
  EXPECT_FALSE(db_.execute("CREATE TABLE t (a INTEGER)").ok());
  EXPECT_FALSE(db_.execute("INSERT INTO t VALUES (1, 2)").ok());
  EXPECT_FALSE(db_.execute("SELECT nope FROM t").ok());
  EXPECT_FALSE(db_.execute("SELECT a FROM t WHERE nope = 1").ok());
}

TEST_F(MiniSqlTest, BeginCommitAreAccepted) {
  exec("BEGIN");
  exec("COMMIT");
}

TEST(Speedtest, SuiteRunsAtSmallScale) {
  Database db;
  speedtest_setup(db, 2);
  for (const auto& experiment : speedtest_suite()) {
    EXPECT_NO_THROW(experiment.run(db, 2)) << experiment.id;
  }
  EXPECT_GT(db.stats().statements, 100u);
}

TEST(Speedtest, HasThe31PaperExperiments) {
  auto suite = speedtest_suite();
  EXPECT_EQ(suite.size(), 31u);
  int reads = 0;
  int writes = 0;
  for (const auto& e : suite) (e.write_heavy ? writes : reads)++;
  EXPECT_GT(reads, 10);
  EXPECT_GT(writes, 10);
  for (std::size_t i = 1; i < suite.size(); ++i) EXPECT_LT(suite[i - 1].id, suite[i].id);
}

}  // namespace
}  // namespace watz::db
