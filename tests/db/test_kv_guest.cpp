// minikv guest: functional checks + executor-mode equivalence.
#include <gtest/gtest.h>

#include "db/kv_guest.hpp"
#include "wasm/decoder.hpp"
#include "wasm/instance.hpp"

namespace watz::db {
namespace {

std::unique_ptr<wasm::Instance> make_kv(wasm::ExecMode mode) {
  static const wasm::ImportResolver kEmpty;
  auto module = wasm::decode_module(kv_guest_module());
  EXPECT_TRUE(module.ok()) << module.error();
  auto inst = wasm::Instance::instantiate(std::move(*module), kEmpty, mode);
  EXPECT_TRUE(inst.ok()) << inst.error();
  return std::move(*inst);
}

std::int32_t call(wasm::Instance& inst, const char* fn, std::int32_t arg) {
  auto r = inst.invoke(fn, std::vector<wasm::Value>{wasm::Value::from_i32(arg)});
  EXPECT_TRUE(r.ok()) << fn << ": " << r.error();
  return r->front().i32();
}

std::int32_t call0(wasm::Instance& inst, const char* fn) {
  auto r = inst.invoke(fn, {});
  EXPECT_TRUE(r.ok()) << fn << ": " << r.error();
  return r->front().i32();
}

TEST(KvGuest, BasicWorkloadRuns) {
  auto inst = make_kv(wasm::ExecMode::Aot);
  EXPECT_GT(call(*inst, "kv_setup", 1000), 0);
  EXPECT_EQ(call(*inst, "kv_inserts", 500), 500);
  const int hits = call(*inst, "kv_lookups", 500);
  EXPECT_GT(hits, 0);
  EXPECT_LE(hits, 500);
  EXPECT_GE(call(*inst, "kv_updates", 200), 0);
  EXPECT_GE(call(*inst, "kv_deletes", 100), 0);
  EXPECT_GT(call(*inst, "kv_range", 3), 0);
}

TEST(KvGuest, ModesAgreeOnChecksum) {
  // The whole op sequence must produce identical state in both executors.
  auto aot = make_kv(wasm::ExecMode::Aot);
  auto interp = make_kv(wasm::ExecMode::Interp);
  for (auto* inst : {aot.get(), interp.get()}) {
    call(*inst, "kv_setup", 800);
    call(*inst, "kv_inserts", 300);
    call(*inst, "kv_updates", 150);
    call(*inst, "kv_deletes", 80);
  }
  EXPECT_EQ(call0(*aot, "kv_checksum"), call0(*interp, "kv_checksum"));
}

TEST(KvGuest, ChecksumChangesWithWorkload) {
  auto a = make_kv(wasm::ExecMode::Aot);
  auto b = make_kv(wasm::ExecMode::Aot);
  call(*a, "kv_setup", 500);
  call(*b, "kv_setup", 500);
  EXPECT_EQ(call0(*a, "kv_checksum"), call0(*b, "kv_checksum"));
  call(*b, "kv_inserts", 10);
  EXPECT_NE(call0(*a, "kv_checksum"), call0(*b, "kv_checksum"));
}

}  // namespace
}  // namespace watz::db
