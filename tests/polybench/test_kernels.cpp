// Cross-validation of the PolyBench suite: each kernel's wcc/Wasm build
// must produce the same checksum as its native compilation (identical
// algorithm text, so results should agree to tight tolerance).
#include <gtest/gtest.h>

#include <cmath>

#include "polybench/suite.hpp"
#include "wasm/decoder.hpp"
#include "wasm/instance.hpp"
#include "wcc/compiler.hpp"

namespace watz::polybench {
namespace {

TEST(PolybenchSuite, HasAll30Kernels) {
  EXPECT_EQ(suite().size(), 30u);
  EXPECT_NE(find_kernel("gem"), nullptr);
  EXPECT_NE(find_kernel("nus"), nullptr);
  EXPECT_EQ(find_kernel("bogus"), nullptr);
}

TEST(PolybenchSuite, NamesAreUniqueAndSorted) {
  auto kernels = suite();
  for (std::size_t i = 1; i < kernels.size(); ++i)
    EXPECT_LT(std::string_view(kernels[i - 1].name), std::string_view(kernels[i].name));
}

class KernelTest : public ::testing::TestWithParam<const KernelDef*> {};

TEST_P(KernelTest, NativeRunsAndIsFinite) {
  const KernelDef& k = *GetParam();
  arena_reset();
  const double result = k.native(k.n);
  EXPECT_TRUE(std::isfinite(result)) << k.name;
}

TEST_P(KernelTest, NativeIsDeterministic) {
  const KernelDef& k = *GetParam();
  arena_reset();
  const double a = k.native(k.n);
  arena_reset();
  const double b = k.native(k.n);
  EXPECT_EQ(a, b) << k.name;
}

TEST_P(KernelTest, WasmMatchesNative) {
  const KernelDef& k = *GetParam();
  wcc::CompileOptions options;
  options.memory_pages = 512;  // up to 32 MiB for the 3D kernels
  auto binary = wcc::compile(k.source, options);
  ASSERT_TRUE(binary.ok()) << k.name << ": " << binary.error();
  auto module = wasm::decode_module(*binary);
  ASSERT_TRUE(module.ok()) << k.name << ": " << module.error();
  static const wasm::ImportResolver kNoImports;
  auto inst = wasm::Instance::instantiate(std::move(*module), kNoImports,
                                          wasm::ExecMode::Aot);
  ASSERT_TRUE(inst.ok()) << k.name << ": " << inst.error();

  // Use a reduced n for the Wasm cross-check so the whole suite stays fast.
  const int n = std::max(8, k.n / 3);
  arena_reset();
  const double native = k.native(n);
  const wasm::Value arg = wasm::Value::from_i32(n);
  auto wasm_result = (*inst)->invoke("run", std::span<const wasm::Value>(&arg, 1));
  ASSERT_TRUE(wasm_result.ok()) << k.name << ": " << wasm_result.error();
  const double wasm_val = wasm_result->front().f64();
  const double tolerance = 1e-9 * std::max(1.0, std::fabs(native));
  EXPECT_NEAR(wasm_val, native, tolerance) << k.name;
}

std::vector<const KernelDef*> all_kernels() {
  std::vector<const KernelDef*> out;
  for (const KernelDef& k : suite()) out.push_back(&k);
  return out;
}

INSTANTIATE_TEST_SUITE_P(All, KernelTest, ::testing::ValuesIn(all_kernels()),
                         [](const ::testing::TestParamInfo<const KernelDef*>& info) {
                           return std::string(info.param->name);
                         });

}  // namespace
}  // namespace watz::polybench
