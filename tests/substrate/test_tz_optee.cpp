#include <gtest/gtest.h>

#include "crypto/fortuna.hpp"
#include "optee/ta_manager.hpp"
#include "optee/trusted_os.hpp"
#include "tz/monitor.hpp"
#include "tz/secure_boot.hpp"

namespace watz {
namespace {

struct Vendor {
  crypto::KeyPair key;
  hw::EfuseBank fuses;

  static Vendor make() {
    crypto::Fortuna rng(to_bytes("vendor"));
    Vendor v{crypto::ecdsa_keygen(rng), {}};
    const auto digest = crypto::sha256(v.key.pub.encode_uncompressed());
    v.fuses.program_digest(digest).check();
    return v;
  }
};

std::vector<tz::BootImage> make_chain(const Vendor& vendor) {
  std::vector<tz::BootImage> chain = {
      {"spl", to_bytes("second stage bootloader image"), {}},
      {"u-boot+atf", to_bytes("u-boot 2020.10 / arm trusted firmware 2.3"), {}},
      {"optee-os", to_bytes("op-tee 3.13 with watz extensions"), {}},
  };
  for (auto& image : chain) tz::sign_image(image, vendor.key.priv);
  return chain;
}

TEST(SecureBoot, GenuineChainBoots) {
  const Vendor vendor = Vendor::make();
  auto report = tz::secure_boot(vendor.fuses, vendor.key.pub, make_chain(vendor));
  ASSERT_TRUE(report.ok()) << report.error();
  EXPECT_EQ(report->measurements.size(), 3u);
  EXPECT_EQ(report->stage_names[2], "optee-os");
}

TEST(SecureBoot, TamperedStageAborts) {
  const Vendor vendor = Vendor::make();
  auto chain = make_chain(vendor);
  chain[2].payload[0] ^= 1;  // compromised trusted OS image
  auto report = tz::secure_boot(vendor.fuses, vendor.key.pub, chain);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.error().find("optee-os"), std::string::npos);
}

TEST(SecureBoot, WrongVendorKeyRejectedByRom) {
  const Vendor vendor = Vendor::make();
  crypto::Fortuna rng(to_bytes("attacker"));
  const auto attacker = crypto::ecdsa_keygen(rng);
  auto chain = make_chain(vendor);
  // Attacker re-signs everything with their own key, presents their key.
  for (auto& image : chain) tz::sign_image(image, attacker.priv);
  auto report = tz::secure_boot(vendor.fuses, attacker.pub, chain);
  ASSERT_FALSE(report.ok());
  EXPECT_NE(report.error().find("eFuses"), std::string::npos);
}

TEST(SecureBoot, EmptyChainRejected) {
  const Vendor vendor = Vendor::make();
  EXPECT_FALSE(tz::secure_boot(vendor.fuses, vendor.key.pub, {}).ok());
}

TEST(Monitor, ChargesAndCountsTransitions) {
  tz::SecureMonitor monitor{hw::LatencyModel::disabled()};
  EXPECT_EQ(monitor.state(), hw::SecurityState::Normal);
  const int x = monitor.smc_call([&] {
    EXPECT_EQ(monitor.state(), hw::SecurityState::Secure);
    return 42;
  });
  EXPECT_EQ(x, 42);
  EXPECT_EQ(monitor.state(), hw::SecurityState::Normal);
  EXPECT_EQ(monitor.enter_count(), 1u);
  EXPECT_EQ(monitor.leave_count(), 1u);
}

TEST(Monitor, NestedCallsDoNotRecross) {
  tz::SecureMonitor monitor{hw::LatencyModel::disabled()};
  monitor.smc_call([&] {
    monitor.smc_call([&] { return 0; });
    return 0;
  });
  EXPECT_EQ(monitor.enter_count(), 1u);
}

class TrustedOsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    vendor_ = Vendor::make();
    crypto::Fortuna rng(to_bytes("device"));
    caam_ = std::make_unique<hw::Caam>(rng);
    auto os = optee::TrustedOs::boot(*caam_, vendor_.fuses, vendor_.key.pub,
                                     make_chain(vendor_), hw::LatencyModel::disabled());
    ASSERT_TRUE(os.ok()) << os.error();
    os_ = std::move(*os);
  }

  Vendor vendor_;
  std::unique_ptr<hw::Caam> caam_;
  std::unique_ptr<optee::TrustedOs> os_;
};

TEST_F(TrustedOsTest, RefusesToBootTamperedImage) {
  auto chain = make_chain(vendor_);
  chain[0].payload.push_back(0xff);
  auto os = optee::TrustedOs::boot(*caam_, vendor_.fuses, vendor_.key.pub, chain,
                                   hw::LatencyModel::disabled());
  EXPECT_FALSE(os.ok());
}

TEST_F(TrustedOsTest, SecureHeapCapEnforced) {
  auto big = os_->allocate(20 * 1024 * 1024);
  ASSERT_TRUE(big.ok()) << big.error();
  EXPECT_EQ(os_->heap_in_use(), 20u * 1024 * 1024);
  auto too_much = os_->allocate(10 * 1024 * 1024);  // 30 MB total > 27 MB cap
  EXPECT_FALSE(too_much.ok());
  EXPECT_NE(too_much.error().find("27 MB"), std::string::npos);
  // Releasing returns budget.
  big = optee::SecureAlloc{};
  EXPECT_EQ(os_->heap_in_use(), 0u);
  EXPECT_TRUE(os_->allocate(10 * 1024 * 1024).ok());
}

TEST_F(TrustedOsTest, SharedMemoryCapEnforced) {
  auto a = os_->shared_memory().allocate(8 * 1024 * 1024);
  ASSERT_TRUE(a.ok());
  auto b = os_->shared_memory().allocate(2 * 1024 * 1024);  // 10 MB > 9 MB cap
  EXPECT_FALSE(b.ok());
}

TEST_F(TrustedOsTest, ExecutablePagesNeedWatzExtension) {
  auto exec = os_->allocate_executable(4096);
  ASSERT_TRUE(exec.ok()) << exec.error();
  EXPECT_TRUE(exec->executable());

  // Stock OP-TEE: the extension is off.
  optee::TrustedOsConfig stock;
  stock.watz_extensions = false;
  auto os2 = optee::TrustedOs::boot(*caam_, vendor_.fuses, vendor_.key.pub,
                                    make_chain(vendor_), hw::LatencyModel::disabled(),
                                    stock);
  ASSERT_TRUE(os2.ok());
  auto denied = (*os2)->allocate_executable(4096);
  EXPECT_FALSE(denied.ok());
  EXPECT_NE(denied.error().find("NOT_SUPPORTED"), std::string::npos);
}

TEST_F(TrustedOsTest, HukSubkeysAreUsageBoundAndStable) {
  const auto a1 = os_->huk_subkey_derive("usage-a");
  const auto a2 = os_->huk_subkey_derive("usage-a");
  const auto b = os_->huk_subkey_derive("usage-b");
  EXPECT_EQ(a1, a2);
  EXPECT_NE(a1, b);
}

TEST_F(TrustedOsTest, HukSubkeyStableAcrossReboots) {
  const auto before = os_->huk_subkey_derive("watz-attestation-key-v1");
  auto os2 = optee::TrustedOs::boot(*caam_, vendor_.fuses, vendor_.key.pub,
                                    make_chain(vendor_), hw::LatencyModel::disabled());
  ASSERT_TRUE(os2.ok());
  EXPECT_EQ((*os2)->huk_subkey_derive("watz-attestation-key-v1"), before);
}

TEST_F(TrustedOsTest, TimeRequiresSupplicant) {
  EXPECT_FALSE(os_->get_system_time().ok());
}

TEST(TaManager, EnforcesSignaturePolicy) {
  crypto::Fortuna rng(to_bytes("vendor2"));
  const auto vendor = crypto::ecdsa_keygen(rng);
  optee::TaManager manager(vendor.pub);

  optee::TaImage ta{"8aaaf200-2450-11e4-abe2-0002a5d5c51b", to_bytes("watz runtime ta"), {}};
  optee::sign_ta(ta, vendor.priv);
  auto installed = manager.install(ta);
  ASSERT_TRUE(installed.ok()) << installed.error();

  // Unsigned TA rejected.
  optee::TaImage unsigned_ta{"11111111-0000-0000-0000-000000000001", to_bytes("mallory"), {}};
  EXPECT_FALSE(manager.install(unsigned_ta).ok());

  // Tampered payload rejected.
  optee::TaImage tampered = ta;
  tampered.uuid = "22222222-0000-0000-0000-000000000002";
  EXPECT_FALSE(manager.install(tampered).ok());

  // UUID impersonation rejected.
  optee::TaImage clone{ta.uuid, to_bytes("impersonator"), {}};
  optee::sign_ta(clone, vendor.priv);
  EXPECT_FALSE(manager.install(clone).ok());
}

}  // namespace
}  // namespace watz
