#include <gtest/gtest.h>

#include "attestation/service.hpp"
#include "crypto/fortuna.hpp"
#include "net/fabric.hpp"
#include "optee/trusted_os.hpp"

namespace watz {
namespace {

TEST(Fabric, ConnectRefusedWithoutListener) {
  net::Fabric fabric;
  EXPECT_FALSE(fabric.connect("nowhere", 4433).ok());
}

TEST(Fabric, RequestResponseRoundTrip) {
  net::Fabric fabric;
  ASSERT_TRUE(fabric
                  .listen("verifier", 4433,
                          [](std::uint64_t, ByteView req) -> Result<Bytes> {
                            Bytes reply = to_bytes("echo:");
                            append(reply, req);
                            return reply;
                          })
                  .ok());
  auto conn = fabric.connect("verifier", 4433);
  ASSERT_TRUE(conn.ok());
  auto reply = fabric.send_recv(*conn, to_bytes("hello"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(*reply, to_bytes("echo:hello"));
  EXPECT_EQ(fabric.bytes_sent(), 5u);
  EXPECT_EQ(fabric.bytes_received(), 10u);
  EXPECT_EQ(fabric.messages(), 1u);
}

TEST(Fabric, DoubleBindRejected) {
  net::Fabric fabric;
  auto svc = [](std::uint64_t, ByteView) -> Result<Bytes> { return Bytes{}; };
  ASSERT_TRUE(fabric.listen("host", 1, svc).ok());
  EXPECT_FALSE(fabric.listen("host", 1, svc).ok());
  EXPECT_TRUE(fabric.listen("host", 2, svc).ok());
}

TEST(Fabric, CloseInvalidatesConnectionAndFiresHook) {
  net::Fabric fabric;
  std::uint64_t closed = 0;
  ASSERT_TRUE(fabric
                  .listen(
                      "host", 1,
                      [](std::uint64_t, ByteView) -> Result<Bytes> { return Bytes{}; },
                      [&](std::uint64_t id) { closed = id; })
                  .ok());
  auto conn = fabric.connect("host", 1);
  ASSERT_TRUE(conn.ok());
  fabric.close(*conn);
  EXPECT_EQ(closed, *conn);
  EXPECT_FALSE(fabric.send_recv(*conn, to_bytes("x")).ok());
}

TEST(Fabric, ConnectionsAreIndependent) {
  net::Fabric fabric;
  ASSERT_TRUE(fabric
                  .listen("host", 1,
                          [](std::uint64_t id, ByteView) -> Result<Bytes> {
                            Bytes out;
                            put_u64le(out, id);
                            return out;
                          })
                  .ok());
  auto c1 = fabric.connect("host", 1);
  auto c2 = fabric.connect("host", 1);
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_NE(*c1, *c2);
}

class AttestationServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    crypto::Fortuna vendor_rng(to_bytes("vendor"));
    vendor_ = crypto::ecdsa_keygen(vendor_rng);
    fuses_ = {};
    fuses_.program_digest(crypto::sha256(vendor_.pub.encode_uncompressed())).check();
    chain_ = {{"spl", to_bytes("spl"), {}}, {"optee", to_bytes("os"), {}}};
    for (auto& image : chain_) tz::sign_image(image, vendor_.priv);

    std::array<std::uint8_t, 32> otpmk{};
    otpmk.fill(0x77);
    caam_ = std::make_unique<hw::Caam>(otpmk);
    boot();
  }

  void boot() {
    auto os = optee::TrustedOs::boot(*caam_, fuses_, vendor_.pub, chain_,
                                     hw::LatencyModel::disabled());
    ASSERT_TRUE(os.ok()) << os.error();
    os_ = std::move(*os);
    auto service = attestation::AttestationService::create(*os_);
    ASSERT_TRUE(service.ok()) << service.error();
    service_ = *service;
    os_->register_module(service_);
  }

  crypto::KeyPair vendor_;
  hw::EfuseBank fuses_;
  std::vector<tz::BootImage> chain_;
  std::unique_ptr<hw::Caam> caam_;
  std::unique_ptr<optee::TrustedOs> os_;
  std::shared_ptr<attestation::AttestationService> service_;
};

TEST_F(AttestationServiceTest, KeyPairStableAcrossReboots) {
  const auto key_before = service_->public_key();
  boot();  // simulate a power cycle: OS + service re-created
  EXPECT_EQ(service_->public_key(), key_before);
}

TEST_F(AttestationServiceTest, DistinctDevicesDistinctKeys) {
  std::array<std::uint8_t, 32> other_otpmk{};
  other_otpmk.fill(0x88);
  const hw::Caam other_caam(other_otpmk);
  auto other_os = optee::TrustedOs::boot(other_caam, fuses_, vendor_.pub, chain_,
                                         hw::LatencyModel::disabled());
  ASSERT_TRUE(other_os.ok());
  auto other_service = attestation::AttestationService::create(**other_os);
  ASSERT_TRUE(other_service.ok());
  EXPECT_NE((*other_service)->public_key(), service_->public_key());
}

TEST_F(AttestationServiceTest, EvidenceVerifies) {
  std::array<std::uint8_t, 32> anchor{};
  anchor.fill(0xaa);
  const auto claim = crypto::sha256(to_bytes("app"));
  const auto evidence = service_->issue_evidence(anchor, claim);
  EXPECT_EQ(evidence.anchor, anchor);
  EXPECT_EQ(evidence.claim, claim);
  EXPECT_EQ(evidence.attestation_key, service_->public_key());
  EXPECT_TRUE(attestation::verify_evidence_signature(evidence));
}

TEST_F(AttestationServiceTest, TamperedEvidenceFailsVerification) {
  std::array<std::uint8_t, 32> anchor{};
  const auto evidence = service_->issue_evidence(anchor, crypto::sha256(to_bytes("app")));
  auto tampered = evidence;
  tampered.claim[0] ^= 1;
  EXPECT_FALSE(attestation::verify_evidence_signature(tampered));
  tampered = evidence;
  tampered.version ^= 1;
  EXPECT_FALSE(attestation::verify_evidence_signature(tampered));
  tampered = evidence;
  tampered.anchor[31] ^= 1;
  EXPECT_FALSE(attestation::verify_evidence_signature(tampered));
}

TEST_F(AttestationServiceTest, RequiresWatzExtensions) {
  optee::TrustedOsConfig stock;
  stock.watz_extensions = false;
  auto os = optee::TrustedOs::boot(*caam_, fuses_, vendor_.pub, chain_,
                                   hw::LatencyModel::disabled(), stock);
  ASSERT_TRUE(os.ok());
  EXPECT_FALSE(attestation::AttestationService::create(**os).ok());
}

TEST_F(AttestationServiceTest, RegisteredAsKernelModule) {
  auto* found = os_->find_module<attestation::AttestationService>(
      attestation::AttestationService::kName);
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->public_key(), service_->public_key());
}

}  // namespace
}  // namespace watz
