#include <gtest/gtest.h>

#include "crypto/fortuna.hpp"
#include "hw/caam.hpp"
#include "hw/clock.hpp"
#include "hw/efuse.hpp"
#include "hw/latency.hpp"

namespace watz::hw {
namespace {

TEST(Clock, MonotonicIncreases) {
  const auto a = monotonic_ns();
  const auto b = monotonic_ns();
  EXPECT_LE(a, b);
}

TEST(Latency, SpinWaitsRoughlyRequestedTime) {
  LatencyModel model{LatencyConfig{}};
  const auto start = monotonic_ns();
  model.spin(200'000);  // 200 us
  const auto elapsed = monotonic_ns() - start;
  EXPECT_GE(elapsed, 200'000u);
  EXPECT_LT(elapsed, 20'000'000u);  // sanity: far less than 20 ms
}

TEST(Latency, DisabledModelIsFree) {
  const LatencyModel model = LatencyModel::disabled();
  const auto start = monotonic_ns();
  model.spin(50'000'000);  // would be 50 ms if enabled
  EXPECT_LT(monotonic_ns() - start, 5'000'000u);
}

TEST(Efuse, WriteOnceSemantics) {
  EfuseBank fuses;
  EXPECT_FALSE(fuses.is_programmed(0));
  EXPECT_TRUE(fuses.program(0, 0xdeadbeef).ok());
  EXPECT_EQ(fuses.read(0), 0xdeadbeefu);
  EXPECT_TRUE(fuses.is_programmed(0));
  // A second burn of the same word must fail.
  EXPECT_FALSE(fuses.program(0, 0x11111111).ok());
  EXPECT_EQ(fuses.read(0), 0xdeadbeefu);
}

TEST(Efuse, UnprogrammedReadsZero) {
  EfuseBank fuses;
  EXPECT_EQ(fuses.read(3), 0u);
  EXPECT_EQ(fuses.read(999), 0u);  // out of range also reads zero
}

TEST(Efuse, RejectsOutOfRange) {
  EfuseBank fuses;
  EXPECT_FALSE(fuses.program(EfuseBank::kWords, 1).ok());
}

TEST(Efuse, DigestRoundTrip) {
  EfuseBank fuses;
  Bytes digest(32);
  for (int i = 0; i < 32; ++i) digest[i] = static_cast<std::uint8_t>(i * 7);
  ASSERT_TRUE(fuses.program_digest(digest).ok());
  EXPECT_EQ(fuses.read_digest(), digest);
  // The digest words are now locked.
  EXPECT_FALSE(fuses.program_digest(digest).ok());
}

TEST(Efuse, RejectsWrongDigestSize) {
  EfuseBank fuses;
  EXPECT_FALSE(fuses.program_digest(Bytes(31)).ok());
}

TEST(Caam, MkvbDiffersBetweenWorlds) {
  crypto::Fortuna rng(to_bytes("device-seed"));
  const Caam caam(rng);
  EXPECT_NE(caam.mkvb(SecurityState::Secure), caam.mkvb(SecurityState::Normal));
}

TEST(Caam, MkvbStablePerWorld) {
  crypto::Fortuna rng(to_bytes("device-seed"));
  const Caam caam(rng);
  EXPECT_EQ(caam.mkvb(SecurityState::Secure), caam.mkvb(SecurityState::Secure));
}

TEST(Caam, DistinctDevicesHaveDistinctRoots) {
  crypto::Fortuna rng(to_bytes("factory"));
  const Caam a(rng);
  const Caam b(rng);
  EXPECT_NE(a.mkvb(SecurityState::Secure), b.mkvb(SecurityState::Secure));
}

TEST(Caam, FixedOtpmkReproducesIdentity) {
  std::array<std::uint8_t, 32> otpmk{};
  otpmk.fill(0x5a);
  const Caam a(otpmk);
  const Caam b(otpmk);  // "same silicon" across simulated power cycles
  EXPECT_EQ(a.mkvb(SecurityState::Secure), b.mkvb(SecurityState::Secure));
}

}  // namespace
}  // namespace watz::hw
