// Synthetic Iris-like dataset (SS VI-F).
//
// The paper trains on the UCI Iris set (4 features, 3 classes, 50 records
// per class, 4.45 kB) replicated up to 1 MB. No network access exists here,
// so an equivalent synthetic set is generated: three Gaussian-ish clusters
// in 4-D whose centroids match the real Iris class means. The wire format
// is what the verifier ships as the msg3 secret blob.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace watz::ann {

struct IrisRecord {
  double features[4];
  std::int32_t label;  // 0..2
};

/// Deterministic synthetic records; class balance matches Iris (1/3 each).
std::vector<IrisRecord> make_iris_like(std::size_t records, std::uint64_t seed = 7);

/// Wire format: u32 record count, then per record 4 little-endian f64
/// features + u32 label (36 bytes/record).
Bytes encode_dataset(const std::vector<IrisRecord>& records);
Result<std::vector<IrisRecord>> decode_dataset(ByteView data);

/// Replicates `base` until the encoded size reaches at least `target_bytes`
/// (the paper's 100 kB..1 MB sweep).
std::vector<IrisRecord> replicate_to_size(const std::vector<IrisRecord>& base,
                                          std::size_t target_bytes);

}  // namespace watz::ann
