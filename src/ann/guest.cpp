#include "ann/guest.hpp"

#include "wcc/compiler.hpp"

namespace watz::ann {

namespace {

/// The ANN core in the wcc C subset. Mirrors Genann 4-4-3 exactly:
/// approx_exp is the same algorithm as ann::approx_exp, weights are
/// initialised with the same LCG, so host and guest training agree.
constexpr const char* kAnnCore = R"wcc(
double expd(double x) {
  if (x < -30.0) return 0.0;
  if (x > 30.0) return 10686474581524.463;
  int k = (int)x;
  if (x < 0.0) {
    if ((double)k != x) k = k - 1;
  }
  double f = x - k;
  double term = 1.0;
  double sum = 1.0;
  for (int i = 1; i <= 12; i++) {
    term = term * f / i;
    sum += term;
  }
  double scale = 1.0;
  int reps = k;
  if (reps < 0) reps = -reps;
  for (int i = 0; i < reps; i++) scale *= 2.718281828459045;
  if (k < 0) return sum / scale;
  return sum * scale;
}

double sigmoid(double x) { return 1.0 / (1.0 + expd(0.0 - x)); }

long lcg_state = 24301;
double lcg_uniform() {
  lcg_state = lcg_state * 6364136223846793005 + 1442695040888963407;
  long shifted = lcg_state >> 11;
  long mod = shifted % 1000000;
  if (mod < 0) mod += 1000000;
  return (double)(int)mod / 1000000.0 - 0.5;
}

int train_at(int data, int iters) {
  char* bytes = (char*)0;  /* absolute byte view of linear memory */
  int count = bytes[data] + bytes[data + 1] * 256 + bytes[data + 2] * 65536;
  /* weights: hidden 4 neurons x (4 inputs + bias), output 3 x (4 + 1) */
  double* w = alloc(35 * 8);
  double* hid = alloc(4 * 8);
  double* out = alloc(3 * 8);
  double* dout = alloc(3 * 8);
  double* dhid = alloc(4 * 8);
  double* want = alloc(3 * 8);
  lcg_state = 24301;
  for (int i = 0; i < 35; i++) w[i] = lcg_uniform();
  double rate = 0.3;

  for (int it = 0; it < iters; it++) {
    for (int r = 0; r < count; r++) {
      double* feat = (double*)(data + 4 + r * 36);
      int lab = bytes[data + 4 + r * 36 + 32];
      for (int o = 0; o < 3; o++) want[o] = 0.0;
      want[lab] = 1.0;
      /* forward */
      for (int h = 0; h < 4; h++) {
        double sum = w[h * 5];
        for (int i = 0; i < 4; i++) sum += w[h * 5 + 1 + i] * feat[i];
        hid[h] = sigmoid(sum);
      }
      for (int o = 0; o < 3; o++) {
        double sum = w[20 + o * 5];
        for (int h = 0; h < 4; h++) sum += w[20 + o * 5 + 1 + h] * hid[h];
        out[o] = sigmoid(sum);
      }
      /* backward */
      for (int o = 0; o < 3; o++) dout[o] = (want[o] - out[o]) * out[o] * (1.0 - out[o]);
      for (int h = 0; h < 4; h++) {
        double sum = 0.0;
        for (int o = 0; o < 3; o++) sum += dout[o] * w[20 + o * 5 + 1 + h];
        dhid[h] = hid[h] * (1.0 - hid[h]) * sum;
      }
      for (int h = 0; h < 4; h++) {
        w[h * 5] += rate * dhid[h];
        for (int i = 0; i < 4; i++) w[h * 5 + 1 + i] += rate * dhid[h] * feat[i];
      }
      for (int o = 0; o < 3; o++) {
        w[20 + o * 5] += rate * dout[o];
        for (int h = 0; h < 4; h++) w[20 + o * 5 + 1 + h] += rate * dout[o] * hid[h];
      }
    }
  }

  /* evaluate */
  int correct = 0;
  for (int r = 0; r < count; r++) {
    double* feat = (double*)(data + 4 + r * 36);
    int lab = bytes[data + 4 + r * 36 + 32];
    for (int h = 0; h < 4; h++) {
      double sum = w[h * 5];
      for (int i = 0; i < 4; i++) sum += w[h * 5 + 1 + i] * feat[i];
      hid[h] = sigmoid(sum);
    }
    int best = 0;
    double best_v = -1.0;
    for (int o = 0; o < 3; o++) {
      double sum = w[20 + o * 5];
      for (int h = 0; h < 4; h++) sum += w[20 + o * 5 + 1 + h] * hid[h];
      double v = sigmoid(sum);
      if (v > best_v) {
        best_v = v;
        best = o;
      }
    }
    if (best == lab) correct++;
  }
  return correct;
}
)wcc";

constexpr const char* kAttestPart = R"wcc(
int attest_and_train(int host_len, int port, int iters) {
  int ctx = wasi_ra_net_handshake(64, host_len, port, 128, 256);
  if (ctx < 0) return ctx;
  int quote = wasi_ra_collect_quote(256);
  if (wasi_ra_net_send_quote(ctx, quote) < 0) return -100;
  int size = wasi_ra_net_data_size(ctx);
  wasi_ra_net_receive_data(ctx, 4096, size, 300);
  wasi_ra_dispose_quote(quote);
  wasi_ra_net_dispose(ctx);
  return train_at(4096, iters);
}
)wcc";

constexpr const char* kExterns = R"wcc(
extern int wasi_ra_collect_quote(int anchor_ptr);
extern int wasi_ra_dispose_quote(int quote);
extern int wasi_ra_net_handshake(int host_ptr, int host_len, int port, int id_ptr, int anchor_out);
extern int wasi_ra_net_send_quote(int ctx, int quote);
extern int wasi_ra_net_data_size(int ctx);
extern int wasi_ra_net_receive_data(int ctx, int buf, int len, int nread);
extern int wasi_ra_net_dispose(int ctx);
)wcc";

}  // namespace

std::string training_source() { return kAnnCore; }

Bytes training_module() {
  wcc::CompileOptions options;
  options.memory_pages = 128;  // 8 MiB: dataset + heap
  options.heap_base = GuestLayout::kHeapBase;
  auto binary = wcc::compile(training_source(), options);
  binary.ok() ? void() : throw Error("ann guest: " + binary.error());
  return *binary;
}

Bytes attested_training_module(const std::string& verifier_host,
                               const crypto::EcPoint& verifier_identity) {
  wcc::CompileOptions options;
  options.memory_pages = 128;
  options.heap_base = GuestLayout::kHeapBase;
  options.data.push_back(
      {GuestLayout::kHostPtr, Bytes(verifier_host.begin(), verifier_host.end())});
  options.data.push_back(
      {GuestLayout::kIdentityPtr, verifier_identity.encode_uncompressed()});
  const std::string source = std::string(kExterns) + kAnnCore + kAttestPart;
  auto binary = wcc::compile(source, options);
  binary.ok() ? void() : throw Error("ann guest: " + binary.error());
  return *binary;
}

}  // namespace watz::ann
