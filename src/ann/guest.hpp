// wcc guest sources for the Fig 8 scenario: an Iris classifier (Genann
// topology 4-4-3) trained *inside* the Wasm sandbox, with the dataset
// provisioned over the remote-attestation channel (WaTZ) or poked directly
// into guest memory (the WAMR/normal-world baseline).
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.hpp"
#include "crypto/p256.hpp"

namespace watz::ann {

struct GuestLayout {
  static constexpr std::uint32_t kHostPtr = 64;
  static constexpr std::uint32_t kIdentityPtr = 128;
  static constexpr std::uint32_t kDatasetPtr = 4096;
  static constexpr std::uint32_t kHeapBase = 4 * 1024 * 1024;  // above max dataset
};

/// Training-only module: exports
///   train_at(data_ptr, iters) -> correctly-classified count
/// for a dataset in the encode_dataset() wire format.
std::string training_source();

/// Full WaTZ scenario module: training plus
///   attest_and_train(port, iters) -> correct count (or negative error)
/// which performs the WASI-RA flow against `verifier_host`, receives the
/// dataset at kDatasetPtr and trains on it. Host name and verifier identity
/// are baked into data segments (measured).
Bytes attested_training_module(const std::string& verifier_host,
                               const crypto::EcPoint& verifier_identity);

/// The training-only module compiled for the normal-world (WAMR) baseline.
Bytes training_module();

}  // namespace watz::ann
