#include "ann/genann.hpp"

namespace watz::ann {

double approx_exp(double x) {
  if (x < -30.0) return 0.0;
  if (x > 30.0) return 10686474581524.463;  // e^30
  int k = static_cast<int>(x);
  if (x < 0.0 && x != k) k = k - 1;  // floor
  double f = x - k;
  // Taylor series for e^f, f in [0, 1): 12 terms are plenty.
  double term = 1.0;
  double sum = 1.0;
  for (int i = 1; i <= 12; ++i) {
    term = term * f / i;
    sum += term;
  }
  const double e = 2.718281828459045;
  double scale = 1.0;
  int reps = k < 0 ? -k : k;
  for (int i = 0; i < reps; ++i) scale *= e;
  if (k < 0) return sum / scale;
  return sum * scale;
}

double sigmoid(double x) { return 1.0 / (1.0 + approx_exp(-x)); }

namespace {
/// Genann uses libc rand(); this deterministic LCG plays that role.
struct Lcg {
  std::uint64_t state;
  double uniform() {  // [-0.5, 0.5), like GENANN_RANDOM
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>((state >> 11) % 1000000) / 1000000.0 - 0.5;
  }
};
}  // namespace

Genann::Genann(int inputs, int hidden_layers, int hidden, int outputs,
               std::uint64_t seed)
    : inputs_(inputs), hidden_layers_(hidden_layers), hidden_(hidden),
      outputs_(outputs) {
  // Weight count mirrors genann_init: each neuron has a bias + fan-in.
  std::size_t total = 0;
  total += static_cast<std::size_t>(hidden) * (inputs + 1);
  for (int l = 1; l < hidden_layers; ++l)
    total += static_cast<std::size_t>(hidden) * (hidden + 1);
  total += static_cast<std::size_t>(outputs) * (hidden + 1);
  weights_.resize(total);
  Lcg rng{seed};
  for (double& w : weights_) w = rng.uniform();
  activations_.resize(inputs + static_cast<std::size_t>(hidden_layers) * hidden + outputs);
  deltas_.resize(static_cast<std::size_t>(hidden_layers) * hidden + outputs);
  output_.resize(outputs);
}

const std::vector<double>& Genann::run(const double* in) {
  // activations_ layout: [inputs | hidden layer 0 | ... | outputs]
  for (int i = 0; i < inputs_; ++i) activations_[i] = in[i];
  const double* w = weights_.data();
  const double* prev = activations_.data();
  double* act = activations_.data() + inputs_;
  int prev_count = inputs_;

  for (int layer = 0; layer < hidden_layers_; ++layer) {
    for (int n = 0; n < hidden_; ++n) {
      double sum = *w++;  // bias
      for (int i = 0; i < prev_count; ++i) sum += *w++ * prev[i];
      act[n] = sigmoid(sum);
    }
    prev = act;
    act += hidden_;
    prev_count = hidden_;
  }
  for (int n = 0; n < outputs_; ++n) {
    double sum = *w++;
    for (int i = 0; i < prev_count; ++i) sum += *w++ * prev[i];
    act[n] = sigmoid(sum);
    output_[n] = act[n];
  }
  return output_;
}

void Genann::train(const double* in, const double* desired, double rate) {
  run(in);

  const int h = hidden_;
  const int hl = hidden_layers_;
  double* const acts = activations_.data();
  double* const out_act = acts + inputs_ + static_cast<std::size_t>(hl) * h;
  double* const out_delta = deltas_.data() + static_cast<std::size_t>(hl) * h;

  // Output deltas.
  for (int n = 0; n < outputs_; ++n) {
    const double o = out_act[n];
    out_delta[n] = (desired[n] - o) * o * (1.0 - o);
  }

  // Hidden deltas, back to front.
  for (int layer = hl - 1; layer >= 0; --layer) {
    double* const delta = deltas_.data() + static_cast<std::size_t>(layer) * h;
    const double* const act = acts + inputs_ + static_cast<std::size_t>(layer) * h;
    const bool next_is_output = layer == hl - 1;
    const int next_count = next_is_output ? outputs_ : h;
    const double* next_delta =
        deltas_.data() + static_cast<std::size_t>(layer + 1) * h;
    // Weights feeding the next layer.
    std::size_t next_w_off = static_cast<std::size_t>(h) * (inputs_ + 1);
    for (int l = 1; l <= layer; ++l) next_w_off += static_cast<std::size_t>(h) * (h + 1);
    const double* next_w = weights_.data() + next_w_off;

    for (int n = 0; n < h; ++n) {
      double sum = 0;
      for (int k = 0; k < next_count; ++k)
        sum += next_delta[k] * next_w[k * (h + 1) + 1 + n];
      delta[n] = act[n] * (1.0 - act[n]) * sum;
    }
  }

  // Weight updates, front to back.
  double* w = weights_.data();
  const double* prev = acts;
  int prev_count = inputs_;
  for (int layer = 0; layer < hl; ++layer) {
    const double* delta = deltas_.data() + static_cast<std::size_t>(layer) * h;
    for (int n = 0; n < h; ++n) {
      *w++ += rate * delta[n];  // bias
      for (int i = 0; i < prev_count; ++i) *w++ += rate * delta[n] * prev[i];
    }
    prev = acts + inputs_ + static_cast<std::size_t>(layer) * h;
    prev_count = h;
  }
  for (int n = 0; n < outputs_; ++n) {
    *w++ += rate * out_delta[n];
    for (int i = 0; i < prev_count; ++i) *w++ += rate * out_delta[n] * prev[i];
  }
}

}  // namespace watz::ann
