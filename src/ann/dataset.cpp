#include "ann/dataset.hpp"

#include <cstring>

namespace watz::ann {

namespace {
struct Lcg {
  std::uint64_t state;
  double unit() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return static_cast<double>((state >> 11) % 1000000) / 1000000.0;
  }
};

// Iris class centroids (sepal len/width, petal len/width), UCI means.
constexpr double kCentroids[3][4] = {
    {5.006, 3.428, 1.462, 0.246},   // setosa
    {5.936, 2.770, 4.260, 1.326},   // versicolor
    {6.588, 2.974, 5.552, 2.026},   // virginica
};
}  // namespace

std::vector<IrisRecord> make_iris_like(std::size_t records, std::uint64_t seed) {
  std::vector<IrisRecord> out;
  out.reserve(records);
  Lcg rng{seed};
  for (std::size_t i = 0; i < records; ++i) {
    const std::int32_t label = static_cast<std::int32_t>(i % 3);
    IrisRecord rec;
    rec.label = label;
    for (int f = 0; f < 4; ++f) {
      // Uniform jitter ~N-ish around the centroid; spread 0.6.
      const double jitter = (rng.unit() + rng.unit() - 1.0) * 0.6;
      rec.features[f] = kCentroids[label][f] + jitter;
    }
    out.push_back(rec);
  }
  return out;
}

Bytes encode_dataset(const std::vector<IrisRecord>& records) {
  Bytes out;
  out.reserve(4 + records.size() * 36);
  put_u32le(out, static_cast<std::uint32_t>(records.size()));
  for (const IrisRecord& rec : records) {
    for (int f = 0; f < 4; ++f) {
      std::uint64_t bits;
      std::memcpy(&bits, &rec.features[f], 8);
      put_u64le(out, bits);
    }
    put_u32le(out, static_cast<std::uint32_t>(rec.label));
  }
  return out;
}

Result<std::vector<IrisRecord>> decode_dataset(ByteView data) {
  if (data.size() < 4) return Result<std::vector<IrisRecord>>::err("dataset: too short");
  const std::uint32_t count = get_u32le(data.data());
  if (data.size() != 4 + static_cast<std::size_t>(count) * 36)
    return Result<std::vector<IrisRecord>>::err("dataset: size mismatch");
  std::vector<IrisRecord> out;
  out.reserve(count);
  std::size_t off = 4;
  for (std::uint32_t i = 0; i < count; ++i) {
    IrisRecord rec;
    for (int f = 0; f < 4; ++f) {
      const std::uint64_t bits = get_u64le(data.data() + off);
      std::memcpy(&rec.features[f], &bits, 8);
      off += 8;
    }
    rec.label = static_cast<std::int32_t>(get_u32le(data.data() + off));
    if (rec.label < 0 || rec.label > 2)
      return Result<std::vector<IrisRecord>>::err("dataset: bad label");
    off += 4;
    out.push_back(rec);
  }
  return out;
}

std::vector<IrisRecord> replicate_to_size(const std::vector<IrisRecord>& base,
                                          std::size_t target_bytes) {
  std::vector<IrisRecord> out;
  if (base.empty()) return out;
  const std::size_t per_record = 36;
  const std::size_t needed = (target_bytes + per_record - 1) / per_record;
  out.reserve(needed);
  while (out.size() < needed) {
    const std::size_t take = std::min(base.size(), needed - out.size());
    out.insert(out.end(), base.begin(), base.begin() + take);
  }
  return out;
}

}  // namespace watz::ann
