// Feed-forward artificial neural network, a functional clone of Genann
// (github.com/codeplea/genann) — the library the paper's Fig 8 / SS VI-F
// macro-benchmark trains inside WaTZ.
//
// Deterministic: weight initialisation uses a seeded LCG, and the sigmoid
// uses the same portable exp approximation as the wcc guest build, so the
// native and in-Wasm training runs are numerically comparable.
#pragma once

#include <cstdint>
#include <vector>

namespace watz::ann {

/// Portable exp: shared between the native and wcc builds (Wasm has no exp
/// opcode; wcc emits this same algorithm from source).
double approx_exp(double x);

double sigmoid(double x);

class Genann {
 public:
  /// `hidden_layers` >= 1; the paper's Iris model is Genann(4, 1, 4, 3).
  Genann(int inputs, int hidden_layers, int hidden, int outputs,
         std::uint64_t seed = 0x5eed);

  /// Forward pass; returns the output activations.
  const std::vector<double>& run(const double* inputs);

  /// One backpropagation step toward `desired` (size = outputs).
  void train(const double* inputs, const double* desired, double learning_rate);

  int inputs() const noexcept { return inputs_; }
  int outputs() const noexcept { return outputs_; }
  std::size_t total_weights() const noexcept { return weights_.size(); }
  const std::vector<double>& weights() const noexcept { return weights_; }

 private:
  int inputs_;
  int hidden_layers_;
  int hidden_;
  int outputs_;
  std::vector<double> weights_;
  std::vector<double> activations_;  // input copy + all neuron outputs
  std::vector<double> deltas_;
  std::vector<double> output_;
};

}  // namespace watz::ann
