// Byte-buffer utilities shared by every WaTZ module.
//
// The whole code base passes binary data as `watz::Bytes` (owning) or
// `watz::ByteView` (non-owning); serialisation helpers here keep wire
// formats explicit and little-endian unless stated otherwise.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace watz {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Encodes `data` as lowercase hex.
std::string to_hex(ByteView data);

/// Decodes a hex string (upper or lower case). Throws std::invalid_argument
/// on odd length or non-hex characters.
Bytes from_hex(std::string_view hex);

/// Returns the concatenation of all views, in order.
Bytes concat(std::initializer_list<ByteView> parts);

/// Constant-time equality; returns false on length mismatch.
bool ct_equal(ByteView a, ByteView b) noexcept;

inline Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

inline void append(Bytes& out, ByteView more) {
  out.insert(out.end(), more.begin(), more.end());
}

// -- little-endian fixed-width scalar I/O ----------------------------------

inline void put_u16le(Bytes& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

inline void put_u32le(Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline void put_u64le(Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline std::uint16_t get_u16le(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

inline std::uint32_t get_u32le(const std::uint8_t* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

inline std::uint64_t get_u64le(const std::uint8_t* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

// -- big-endian (network order, used by crypto wire formats) ---------------

inline void put_u32be(Bytes& out, std::uint32_t v) {
  for (int i = 3; i >= 0; --i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

inline std::uint32_t get_u32be(const std::uint8_t* p) noexcept {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}

inline void put_u64be(Bytes& out, std::uint64_t v) {
  for (int i = 7; i >= 0; --i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

}  // namespace watz
