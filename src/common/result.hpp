// Minimal Result<T> for recoverable errors (decode failures, protocol
// violations, resource exhaustion). Programmer errors use exceptions.
//
// C++20 has no std::expected; this is the small subset the code base needs.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace watz {

/// Thrown by Result::value() when the result holds an error, and used
/// directly for unrecoverable conditions.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::in_place_index<0>, std::move(value)) {}

  static Result err(std::string message) {
    return Result(ErrTag{}, std::move(message));
  }

  bool ok() const noexcept { return state_.index() == 0; }
  explicit operator bool() const noexcept { return ok(); }

  /// Error message; empty string when ok().
  const std::string& error() const noexcept {
    static const std::string kEmpty;
    return ok() ? kEmpty : std::get<1>(state_);
  }

  T& value() & {
    if (!ok()) throw Error("Result::value on error: " + error());
    return std::get<0>(state_);
  }
  const T& value() const& {
    if (!ok()) throw Error("Result::value on error: " + error());
    return std::get<0>(state_);
  }
  T&& value() && {
    if (!ok()) throw Error("Result::value on error: " + error());
    return std::move(std::get<0>(state_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  struct ErrTag {};
  Result(ErrTag, std::string message)
      : state_(std::in_place_index<1>, std::move(message)) {}
  std::variant<T, std::string> state_;
};

/// A Result carrying no value.
class [[nodiscard]] Status {
 public:
  Status() = default;
  static Status err(std::string message) { return Status(std::move(message)); }

  bool ok() const noexcept { return message_.empty(); }
  explicit operator bool() const noexcept { return ok(); }
  const std::string& error() const noexcept { return message_; }

  void check() const {
    if (!ok()) throw Error(message_);
  }

 private:
  explicit Status(std::string message) : message_(std::move(message)) {}
  std::string message_;  // empty == success
};

}  // namespace watz
