#include "common/leb128.hpp"

namespace watz {

Result<std::uint8_t> ByteReader::read_u8() {
  if (pos_ >= data_.size()) return Result<std::uint8_t>::err("unexpected end of data");
  return data_[pos_++];
}

Result<std::uint32_t> ByteReader::read_u32le() {
  if (remaining() < 4) return Result<std::uint32_t>::err("unexpected end of data");
  const std::uint32_t v = get_u32le(data_.data() + pos_);
  pos_ += 4;
  return v;
}

Result<std::uint32_t> ByteReader::read_uleb32() {
  std::uint32_t result = 0;
  for (int shift = 0; shift < 35; shift += 7) {
    auto b = read_u8();
    if (!b) return Result<std::uint32_t>::err(b.error());
    const std::uint8_t byte = *b;
    if (shift == 28 && (byte & 0x70) != 0)
      return Result<std::uint32_t>::err("uleb32 overflow");
    result |= static_cast<std::uint32_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return result;
  }
  return Result<std::uint32_t>::err("uleb32 too long");
}

Result<std::uint64_t> ByteReader::read_uleb64() {
  std::uint64_t result = 0;
  for (int shift = 0; shift < 70; shift += 7) {
    auto b = read_u8();
    if (!b) return Result<std::uint64_t>::err(b.error());
    const std::uint8_t byte = *b;
    if (shift == 63 && (byte & 0x7e) != 0)
      return Result<std::uint64_t>::err("uleb64 overflow");
    result |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return result;
  }
  return Result<std::uint64_t>::err("uleb64 too long");
}

Result<std::int32_t> ByteReader::read_sleb32() {
  auto wide = read_sleb64();
  if (!wide) return Result<std::int32_t>::err(wide.error());
  const std::int64_t v = *wide;
  if (v < INT32_MIN || v > INT32_MAX) return Result<std::int32_t>::err("sleb32 overflow");
  return static_cast<std::int32_t>(v);
}

Result<std::int64_t> ByteReader::read_sleb64() {
  std::int64_t result = 0;
  int shift = 0;
  while (shift < 70) {
    auto b = read_u8();
    if (!b) return Result<std::int64_t>::err(b.error());
    const std::uint8_t byte = *b;
    result |= static_cast<std::int64_t>(static_cast<std::uint64_t>(byte & 0x7f) << shift);
    shift += 7;
    if ((byte & 0x80) == 0) {
      if (shift < 64 && (byte & 0x40) != 0)
        // Sign-extension mask built in unsigned space: at shift 63 the
        // signed form would negate INT64_MIN, which overflows.
        result |= static_cast<std::int64_t>(~std::uint64_t{0} << shift);
      return result;
    }
  }
  return Result<std::int64_t>::err("sleb64 too long");
}

Result<ByteView> ByteReader::read_bytes(std::size_t n) {
  if (remaining() < n) return Result<ByteView>::err("unexpected end of data");
  ByteView out = data_.subspan(pos_, n);
  pos_ += n;
  return out;
}

void write_uleb(Bytes& out, std::uint64_t value) {
  do {
    std::uint8_t byte = value & 0x7f;
    value >>= 7;
    if (value != 0) byte |= 0x80;
    out.push_back(byte);
  } while (value != 0);
}

void write_sleb(Bytes& out, std::int64_t value) {
  bool more = true;
  while (more) {
    std::uint8_t byte = value & 0x7f;
    value >>= 7;
    if ((value == 0 && (byte & 0x40) == 0) || (value == -1 && (byte & 0x40) != 0)) {
      more = false;
    } else {
      byte |= 0x80;
    }
    out.push_back(byte);
  }
}

std::size_t uleb_size(std::uint64_t value) {
  std::size_t n = 1;
  while (value >>= 7) ++n;
  return n;
}

}  // namespace watz
