// LEB128 variable-length integers, the encoding used throughout the
// WebAssembly binary format (and by wcc when emitting modules).
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace watz {

/// Streaming reader over a byte view with bounds checking. All `read_*`
/// methods fail (Result) instead of reading past the end.
class ByteReader {
 public:
  explicit ByteReader(ByteView data) : data_(data) {}

  std::size_t pos() const noexcept { return pos_; }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  bool at_end() const noexcept { return pos_ == data_.size(); }

  Result<std::uint8_t> read_u8();
  Result<std::uint32_t> read_u32le();
  /// Unsigned LEB128, at most 32 bits of payload.
  Result<std::uint32_t> read_uleb32();
  /// Unsigned LEB128, at most 64 bits of payload.
  Result<std::uint64_t> read_uleb64();
  /// Signed LEB128, 32-bit.
  Result<std::int32_t> read_sleb32();
  /// Signed LEB128, 64-bit.
  Result<std::int64_t> read_sleb64();
  /// Raw byte run of exactly `n` bytes.
  Result<ByteView> read_bytes(std::size_t n);

  void seek(std::size_t pos) { pos_ = pos; }

 private:
  ByteView data_;
  std::size_t pos_ = 0;
};

void write_uleb(Bytes& out, std::uint64_t value);
void write_sleb(Bytes& out, std::int64_t value);

/// Number of bytes write_uleb would emit.
std::size_t uleb_size(std::uint64_t value);

}  // namespace watz
