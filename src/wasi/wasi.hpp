// WASI adaptation layer (SS III / SS V).
//
// Wasm applications talk POSIX-like WASI; WaTZ maps those calls onto the
// facilities the trusted environment offers (GP API in the secure world,
// plain host services in the normal world). Following the paper's approach,
// *all 45* wasi_snapshot_preview1 functions are registered — unimplemented
// ones return ENOSYS ("dummy functions, throwing exceptions when called") —
// and the subset the benchmarks need is fully implemented:
// args_*/environ_*, clock_time_get, fd_write (stdout/stderr), random_get,
// proc_exit.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "crypto/rng.hpp"
#include "wasm/instance.hpp"

namespace watz::wasi {

/// WASI errno values used by the shims.
inline constexpr std::uint32_t kErrnoSuccess = 0;
inline constexpr std::uint32_t kErrnoBadf = 8;
inline constexpr std::uint32_t kErrnoInval = 28;
inline constexpr std::uint32_t kErrnoNosys = 52;

/// Per-application WASI state. One WasiEnv per sandboxed Wasm instance.
class WasiEnv {
 public:
  /// `clock_ns` abstracts where the time comes from: direct host clock in
  /// the normal world, the supplicant RPC (with its Fig 3a latency) in the
  /// secure world.
  WasiEnv(std::vector<std::string> args, std::function<std::uint64_t()> clock_ns,
          crypto::Rng* rng);

  /// Registers the full wasi_snapshot_preview1 surface on `imports`.
  void register_imports(wasm::ImportResolver& imports);

  const std::string& stdout_data() const noexcept { return stdout_; }
  const std::string& stderr_data() const noexcept { return stderr_; }
  void clear_output() {
    stdout_.clear();
    stderr_.clear();
  }

  /// Set after the guest calls proc_exit.
  bool exited() const noexcept { return exited_; }
  std::uint32_t exit_code() const noexcept { return exit_code_; }

  /// Number of WASI calls serviced (used by the evaluation harness to count
  /// boundary crossings).
  std::uint64_t call_count() const noexcept { return calls_; }

 private:
  friend class Shims;
  std::vector<std::string> args_;
  std::function<std::uint64_t()> clock_ns_;
  crypto::Rng* rng_;
  std::string stdout_;
  std::string stderr_;
  bool exited_ = false;
  std::uint32_t exit_code_ = 0;
  std::uint64_t calls_ = 0;
};

/// The trap message prefix used to unwind on proc_exit. invoke() callers
/// can detect voluntary exits via WasiEnv::exited().
inline constexpr const char* kProcExitTrap = "wasi proc_exit";

}  // namespace watz::wasi
