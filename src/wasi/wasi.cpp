#include "wasi/wasi.hpp"

#include <cstring>

namespace watz::wasi {

namespace {

using wasm::Instance;
using wasm::Value;
using wasm::ValType;

wasm::FuncType sig(std::initializer_list<ValType> params,
                   std::initializer_list<ValType> results) {
  return wasm::FuncType{params, results};
}

Result<std::vector<Value>> ret_errno(std::uint32_t err) {
  return std::vector<Value>{Value::from_u32(err)};
}

/// Reads guest memory or returns nullopt when out of bounds.
bool write_u32(Instance& inst, std::uint32_t addr, std::uint32_t value) {
  wasm::Memory* mem = inst.memory();
  if (mem == nullptr || !mem->in_bounds(addr, 4)) return false;
  for (int i = 0; i < 4; ++i)
    mem->data()[addr + i] = static_cast<std::uint8_t>(value >> (8 * i));
  return true;
}

bool write_u64(Instance& inst, std::uint32_t addr, std::uint64_t value) {
  wasm::Memory* mem = inst.memory();
  if (mem == nullptr || !mem->in_bounds(addr, 8)) return false;
  for (int i = 0; i < 8; ++i)
    mem->data()[addr + i] = static_cast<std::uint8_t>(value >> (8 * i));
  return true;
}

}  // namespace

WasiEnv::WasiEnv(std::vector<std::string> args, std::function<std::uint64_t()> clock_ns,
                 crypto::Rng* rng)
    : args_(std::move(args)), clock_ns_(std::move(clock_ns)), rng_(rng) {}

/// Access helper granted friendship by WasiEnv.
class Shims {
 public:
  static void register_all(WasiEnv& env, wasm::ImportResolver& imports) {
    const std::string kModule = "wasi_snapshot_preview1";
    auto add = [&](const char* name, wasm::FuncType type, wasm::HostFn fn) {
      imports.add_function(kModule, name, std::move(type), std::move(fn));
    };

    // ---- fully implemented subset ----------------------------------------

    add("args_sizes_get", sig({ValType::I32, ValType::I32}, {ValType::I32}),
        [&env](Instance& inst, std::span<const Value> a) -> Result<std::vector<Value>> {
          ++env.calls_;
          std::size_t buf_size = 0;
          for (const auto& arg : env.args_) buf_size += arg.size() + 1;
          if (!write_u32(inst, a[0].u32(), static_cast<std::uint32_t>(env.args_.size())) ||
              !write_u32(inst, a[1].u32(), static_cast<std::uint32_t>(buf_size)))
            return ret_errno(kErrnoInval);
          return ret_errno(kErrnoSuccess);
        });

    add("args_get", sig({ValType::I32, ValType::I32}, {ValType::I32}),
        [&env](Instance& inst, std::span<const Value> a) -> Result<std::vector<Value>> {
          ++env.calls_;
          std::uint32_t argv = a[0].u32();
          std::uint32_t buf = a[1].u32();
          wasm::Memory* mem = inst.memory();
          if (mem == nullptr) return ret_errno(kErrnoInval);
          for (const auto& arg : env.args_) {
            if (!write_u32(inst, argv, buf)) return ret_errno(kErrnoInval);
            argv += 4;
            if (!mem->in_bounds(buf, arg.size() + 1)) return ret_errno(kErrnoInval);
            std::memcpy(mem->data() + buf, arg.data(), arg.size());
            mem->data()[buf + arg.size()] = 0;
            buf += static_cast<std::uint32_t>(arg.size()) + 1;
          }
          return ret_errno(kErrnoSuccess);
        });

    add("environ_sizes_get", sig({ValType::I32, ValType::I32}, {ValType::I32}),
        [&env](Instance& inst, std::span<const Value> a) -> Result<std::vector<Value>> {
          ++env.calls_;
          if (!write_u32(inst, a[0].u32(), 0) || !write_u32(inst, a[1].u32(), 0))
            return ret_errno(kErrnoInval);
          return ret_errno(kErrnoSuccess);
        });

    add("environ_get", sig({ValType::I32, ValType::I32}, {ValType::I32}),
        [&env](Instance&, std::span<const Value>) -> Result<std::vector<Value>> {
          ++env.calls_;
          return ret_errno(kErrnoSuccess);
        });

    add("clock_time_get", sig({ValType::I32, ValType::I64, ValType::I32}, {ValType::I32}),
        [&env](Instance& inst, std::span<const Value> a) -> Result<std::vector<Value>> {
          ++env.calls_;
          // clock ids: realtime(0) and monotonic(1) both map onto the
          // board's monotonic source, as the paper's driver extension does.
          if (a[0].u32() > 3) return ret_errno(kErrnoInval);
          if (!write_u64(inst, a[2].u32(), env.clock_ns_()))
            return ret_errno(kErrnoInval);
          return ret_errno(kErrnoSuccess);
        });

    add("fd_write",
        sig({ValType::I32, ValType::I32, ValType::I32, ValType::I32}, {ValType::I32}),
        [&env](Instance& inst, std::span<const Value> a) -> Result<std::vector<Value>> {
          ++env.calls_;
          const std::uint32_t fd = a[0].u32();
          if (fd != 1 && fd != 2) return ret_errno(kErrnoBadf);
          wasm::Memory* mem = inst.memory();
          if (mem == nullptr) return ret_errno(kErrnoInval);
          std::uint32_t iovs = a[1].u32();
          const std::uint32_t iovs_len = a[2].u32();
          std::uint32_t written = 0;
          std::string& out = fd == 1 ? env.stdout_ : env.stderr_;
          for (std::uint32_t i = 0; i < iovs_len; ++i) {
            if (!mem->in_bounds(iovs, 8)) return ret_errno(kErrnoInval);
            const std::uint32_t ptr = get_u32le(mem->data() + iovs);
            const std::uint32_t len = get_u32le(mem->data() + iovs + 4);
            if (!mem->in_bounds(ptr, len)) return ret_errno(kErrnoInval);
            out.append(reinterpret_cast<const char*>(mem->data() + ptr), len);
            written += len;
            iovs += 8;
          }
          if (!write_u32(inst, a[3].u32(), written)) return ret_errno(kErrnoInval);
          return ret_errno(kErrnoSuccess);
        });

    add("random_get", sig({ValType::I32, ValType::I32}, {ValType::I32}),
        [&env](Instance& inst, std::span<const Value> a) -> Result<std::vector<Value>> {
          ++env.calls_;
          wasm::Memory* mem = inst.memory();
          if (mem == nullptr || env.rng_ == nullptr) return ret_errno(kErrnoInval);
          const std::uint32_t ptr = a[0].u32();
          const std::uint32_t len = a[1].u32();
          if (!mem->in_bounds(ptr, len)) return ret_errno(kErrnoInval);
          env.rng_->fill(std::span<std::uint8_t>(mem->data() + ptr, len));
          return ret_errno(kErrnoSuccess);
        });

    add("proc_exit", sig({ValType::I32}, {}),
        [&env](Instance&, std::span<const Value> a) -> Result<std::vector<Value>> {
          ++env.calls_;
          env.exited_ = true;
          env.exit_code_ = a[0].u32();
          return Result<std::vector<Value>>::err(kProcExitTrap);
        });

    // ---- the remaining surface: ENOSYS stubs ------------------------------
    // (the paper: "we first manually coded dummy functions for all 45 WASI
    // API functions, throwing exceptions when called")
    struct Stub {
      const char* name;
      wasm::FuncType type;
    };
    const Stub stubs[] = {
        {"clock_res_get", sig({ValType::I32, ValType::I32}, {ValType::I32})},
        {"fd_advise", sig({ValType::I32, ValType::I64, ValType::I64, ValType::I32}, {ValType::I32})},
        {"fd_allocate", sig({ValType::I32, ValType::I64, ValType::I64}, {ValType::I32})},
        {"fd_close", sig({ValType::I32}, {ValType::I32})},
        {"fd_datasync", sig({ValType::I32}, {ValType::I32})},
        {"fd_fdstat_get", sig({ValType::I32, ValType::I32}, {ValType::I32})},
        {"fd_fdstat_set_flags", sig({ValType::I32, ValType::I32}, {ValType::I32})},
        {"fd_fdstat_set_rights", sig({ValType::I32, ValType::I64, ValType::I64}, {ValType::I32})},
        {"fd_filestat_get", sig({ValType::I32, ValType::I32}, {ValType::I32})},
        {"fd_filestat_set_size", sig({ValType::I32, ValType::I64}, {ValType::I32})},
        {"fd_filestat_set_times", sig({ValType::I32, ValType::I64, ValType::I64, ValType::I32}, {ValType::I32})},
        {"fd_pread", sig({ValType::I32, ValType::I32, ValType::I32, ValType::I64, ValType::I32}, {ValType::I32})},
        {"fd_prestat_get", sig({ValType::I32, ValType::I32}, {ValType::I32})},
        {"fd_prestat_dir_name", sig({ValType::I32, ValType::I32, ValType::I32}, {ValType::I32})},
        {"fd_pwrite", sig({ValType::I32, ValType::I32, ValType::I32, ValType::I64, ValType::I32}, {ValType::I32})},
        {"fd_read", sig({ValType::I32, ValType::I32, ValType::I32, ValType::I32}, {ValType::I32})},
        {"fd_readdir", sig({ValType::I32, ValType::I32, ValType::I32, ValType::I64, ValType::I32}, {ValType::I32})},
        {"fd_renumber", sig({ValType::I32, ValType::I32}, {ValType::I32})},
        {"fd_seek", sig({ValType::I32, ValType::I64, ValType::I32, ValType::I32}, {ValType::I32})},
        {"fd_sync", sig({ValType::I32}, {ValType::I32})},
        {"fd_tell", sig({ValType::I32, ValType::I32}, {ValType::I32})},
        {"path_create_directory", sig({ValType::I32, ValType::I32, ValType::I32}, {ValType::I32})},
        {"path_filestat_get", sig({ValType::I32, ValType::I32, ValType::I32, ValType::I32, ValType::I32}, {ValType::I32})},
        {"path_filestat_set_times", sig({ValType::I32, ValType::I32, ValType::I32, ValType::I32, ValType::I64, ValType::I64, ValType::I32}, {ValType::I32})},
        {"path_link", sig({ValType::I32, ValType::I32, ValType::I32, ValType::I32, ValType::I32, ValType::I32, ValType::I32}, {ValType::I32})},
        {"path_open", sig({ValType::I32, ValType::I32, ValType::I32, ValType::I32, ValType::I32, ValType::I64, ValType::I64, ValType::I32, ValType::I32}, {ValType::I32})},
        {"path_readlink", sig({ValType::I32, ValType::I32, ValType::I32, ValType::I32, ValType::I32, ValType::I32}, {ValType::I32})},
        {"path_remove_directory", sig({ValType::I32, ValType::I32, ValType::I32}, {ValType::I32})},
        {"path_rename", sig({ValType::I32, ValType::I32, ValType::I32, ValType::I32, ValType::I32, ValType::I32}, {ValType::I32})},
        {"path_symlink", sig({ValType::I32, ValType::I32, ValType::I32, ValType::I32, ValType::I32}, {ValType::I32})},
        {"path_unlink_file", sig({ValType::I32, ValType::I32, ValType::I32}, {ValType::I32})},
        {"poll_oneoff", sig({ValType::I32, ValType::I32, ValType::I32, ValType::I32}, {ValType::I32})},
        {"proc_raise", sig({ValType::I32}, {ValType::I32})},
        {"sched_yield", sig({}, {ValType::I32})},
        {"sock_accept", sig({ValType::I32, ValType::I32, ValType::I32}, {ValType::I32})},
        {"sock_recv", sig({ValType::I32, ValType::I32, ValType::I32, ValType::I32, ValType::I32, ValType::I32}, {ValType::I32})},
        {"sock_send", sig({ValType::I32, ValType::I32, ValType::I32, ValType::I32, ValType::I32}, {ValType::I32})},
        {"sock_shutdown", sig({ValType::I32, ValType::I32}, {ValType::I32})},
    };
    for (const Stub& stub : stubs) {
      add(stub.name, stub.type,
          [&env](Instance&, std::span<const Value>) -> Result<std::vector<Value>> {
            ++env.calls_;
            return ret_errno(kErrnoNosys);
          });
    }
  }
};

void WasiEnv::register_imports(wasm::ImportResolver& imports) {
  Shims::register_all(*this, imports);
}

}  // namespace watz::wasi
