#include "tz/secure_boot.hpp"

namespace watz::tz {

void sign_image(BootImage& image, const crypto::Scalar32& vendor_priv) {
  const auto digest = crypto::sha256(image.payload);
  image.signature = crypto::ecdsa_sign(vendor_priv, digest).encode();
}

Result<BootReport> secure_boot(const hw::EfuseBank& fuses,
                               const crypto::EcPoint& vendor_pub,
                               const std::vector<BootImage>& chain) {
  // ROM step: the presented verification key must hash to the fused digest,
  // otherwise an attacker could substitute their own key.
  const Bytes fused = fuses.read_digest();
  const auto key_digest = crypto::sha256(vendor_pub.encode_uncompressed());
  if (!ct_equal(fused, key_digest))
    return Result<BootReport>::err("secure_boot: verification key does not match eFuses");

  if (chain.empty()) return Result<BootReport>::err("secure_boot: empty boot chain");

  BootReport report;
  for (const BootImage& image : chain) {
    const auto digest = crypto::sha256(image.payload);
    auto sig = crypto::EcdsaSignature::decode(image.signature);
    if (!sig.ok())
      return Result<BootReport>::err("secure_boot: stage '" + image.name +
                                     "' has malformed signature");
    if (!crypto::ecdsa_verify(vendor_pub, digest, *sig))
      return Result<BootReport>::err("secure_boot: stage '" + image.name +
                                     "' failed verification, boot aborted");
    report.measurements.push_back(digest);
    report.stage_names.push_back(image.name);
  }
  return report;
}

}  // namespace watz::tz
