// Secure monitor: the SMC world-switch boundary.
//
// Every entry into the secure world and every return to the normal world
// goes through this object, which (a) flips the CPU security state visible
// to the CAAM and (b) charges the calibrated transition latency (Fig 3b).
// Transition counters feed the evaluation harness.
#pragma once

#include <cstdint>
#include <utility>

#include "hw/caam.hpp"
#include "hw/latency.hpp"

namespace watz::tz {

class SecureMonitor {
 public:
  explicit SecureMonitor(hw::LatencyModel latency) : latency_(std::move(latency)) {}

  hw::SecurityState state() const noexcept { return state_; }
  std::uint64_t enter_count() const noexcept { return enters_; }
  std::uint64_t leave_count() const noexcept { return leaves_; }
  const hw::LatencyModel& latency() const noexcept { return latency_; }

  /// Runs `fn` in the secure world, charging enter/leave costs. Nested
  /// invocations while already secure do not re-cross the boundary.
  template <typename Fn>
  auto smc_call(Fn&& fn) -> decltype(fn()) {
    if (state_ == hw::SecurityState::Secure) return fn();
    enter();
    struct Leave {
      SecureMonitor* m;
      ~Leave() { m->leave(); }
    } leave_guard{this};
    return fn();
  }

 private:
  void enter() {
    latency_.charge_enter();
    state_ = hw::SecurityState::Secure;
    ++enters_;
  }
  void leave() {
    latency_.charge_leave();
    state_ = hw::SecurityState::Normal;
    ++leaves_;
  }

  hw::LatencyModel latency_;
  hw::SecurityState state_ = hw::SecurityState::Normal;
  std::uint64_t enters_ = 0;
  std::uint64_t leaves_ = 0;
};

}  // namespace watz::tz
