// Secure monitor: the SMC world-switch boundary.
//
// Every entry into the secure world and every return to the normal world
// goes through this object, which (a) flips the CPU security state visible
// to the CAAM and (b) charges the calibrated transition latency (Fig 3b).
// Transition counters feed the evaluation harness.
#pragma once

#include <atomic>
#include <cstdint>
#include <utility>

#include "hw/caam.hpp"
#include "hw/clock.hpp"
#include "hw/latency.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace watz::tz {

class SecureMonitor {
 public:
  explicit SecureMonitor(hw::LatencyModel latency) : latency_(std::move(latency)) {}

  hw::SecurityState state() const noexcept { return state_; }
  std::uint64_t enter_count() const noexcept { return enters_; }
  std::uint64_t leave_count() const noexcept { return leaves_; }
  const hw::LatencyModel& latency() const noexcept { return latency_; }

  /// Points the monitor at always-on world-switch latency histograms
  /// (typically the gateway registry's stage.tee_entry / stage.tee_exit).
  /// Either may be null; the monitor never owns them. Transitions also
  /// emit TeeEntry/TeeExit spans when the calling thread carries a trace.
  /// Atomic: a re-enrolment rebinds these while slot workers may be
  /// mid-transition on the same monitor.
  void set_transition_histograms(obs::Histogram* enter,
                                 obs::Histogram* leave) noexcept {
    enter_hist_.store(enter, std::memory_order_release);
    leave_hist_.store(leave, std::memory_order_release);
  }

  /// Runs `fn` in the secure world, charging enter/leave costs. Nested
  /// invocations while already secure do not re-cross the boundary.
  template <typename Fn>
  auto smc_call(Fn&& fn) -> decltype(fn()) {
    if (state_ == hw::SecurityState::Secure) return fn();
    enter();
    struct Leave {
      SecureMonitor* m;
      ~Leave() { m->leave(); }
    } leave_guard{this};
    return fn();
  }

 private:
  void enter() {
    obs::Histogram* hist = enter_hist_.load(std::memory_order_acquire);
    const bool timed = hist != nullptr || obs::tracing_active();
    const std::uint64_t t0 = timed ? hw::monotonic_ns() : 0;
    latency_.charge_enter();
    state_ = hw::SecurityState::Secure;
    ++enters_;
    if (timed) {
      const std::uint64_t t1 = hw::monotonic_ns();
      if (hist != nullptr) hist->record(t1 - t0);
      obs::emit_span(obs::Stage::TeeEntry, t0, t1);
    }
  }
  void leave() {
    obs::Histogram* hist = leave_hist_.load(std::memory_order_acquire);
    const bool timed = hist != nullptr || obs::tracing_active();
    const std::uint64_t t0 = timed ? hw::monotonic_ns() : 0;
    latency_.charge_leave();
    state_ = hw::SecurityState::Normal;
    ++leaves_;
    if (timed) {
      const std::uint64_t t1 = hw::monotonic_ns();
      if (hist != nullptr) hist->record(t1 - t0);
      obs::emit_span(obs::Stage::TeeExit, t0, t1);
    }
  }

  hw::LatencyModel latency_;
  hw::SecurityState state_ = hw::SecurityState::Normal;
  std::uint64_t enters_ = 0;
  std::uint64_t leaves_ = 0;
  std::atomic<obs::Histogram*> enter_hist_{nullptr};
  std::atomic<obs::Histogram*> leave_hist_{nullptr};
};

}  // namespace watz::tz
