// Secure boot chain-of-trust simulation.
//
// Reproduces the boot flow of SS IV: the ROM verifies the second-stage
// bootloader against the public key whose hash is burnt into eFuses; each
// stage then verifies the next (SPL -> U-Boot/ATF -> trusted OS). A stage
// whose signature does not verify aborts the boot, so only vendor-signed
// software ever reaches the root of trust. The chain also records per-stage
// code measurements (the "measured boot" extension discussed in SS VII).
#pragma once

#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/ecdsa.hpp"
#include "hw/efuse.hpp"

namespace watz::tz {

/// One boot stage: an image plus the vendor signature over its payload.
struct BootImage {
  std::string name;   // e.g. "spl", "u-boot", "optee-os"
  Bytes payload;
  Bytes signature;    // 64-byte ECDSA over SHA-256(payload)
};

/// Signs a boot image in place (the vendor's build/release step).
void sign_image(BootImage& image, const crypto::Scalar32& vendor_priv);

struct BootReport {
  /// SHA-256 of each verified stage, boot order preserved. These are the
  /// claims a measured-boot TPM would accumulate.
  std::vector<crypto::Sha256Digest> measurements;
  std::vector<std::string> stage_names;
};

/// Executes the chain: verifies every image against the vendor public key
/// (whose SHA-256 must match the eFuse digest) and returns the measured
/// report, or the stage that failed.
Result<BootReport> secure_boot(const hw::EfuseBank& fuses,
                               const crypto::EcPoint& vendor_pub,
                               const std::vector<BootImage>& chain);

}  // namespace watz::tz
