#include "tz/monitor.hpp"

// SecureMonitor is header-only today; this translation unit anchors the
// library target and keeps a stable home for future non-inline logic.
namespace watz::tz {}
