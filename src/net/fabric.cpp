#include "net/fabric.hpp"

namespace watz::net {

namespace {
std::string endpoint_key(const std::string& host, std::uint16_t port) {
  return host + ":" + std::to_string(port);
}
}  // namespace

Status Fabric::listen(const std::string& host, std::uint16_t port, Service service,
                      CloseHook on_close) {
  const std::string key = endpoint_key(host, port);
  if (endpoints_.contains(key)) return Status::err("fabric: " + key + " already bound");
  endpoints_[key] = Endpoint{std::move(service), std::move(on_close)};
  return {};
}

Result<std::uint64_t> Fabric::connect(const std::string& host, std::uint16_t port) {
  const std::string key = endpoint_key(host, port);
  if (!endpoints_.contains(key))
    return Result<std::uint64_t>::err("fabric: connection refused to " + key);
  const std::uint64_t id = next_conn_id_++;
  connections_[id] = Connection{key};
  return id;
}

Result<Bytes> Fabric::send_recv(std::uint64_t conn_id, ByteView message) {
  const auto conn = connections_.find(conn_id);
  if (conn == connections_.end()) return Result<Bytes>::err("fabric: bad connection");
  const auto endpoint = endpoints_.find(conn->second.key);
  if (endpoint == endpoints_.end()) return Result<Bytes>::err("fabric: peer gone");
  bytes_sent_ += message.size();
  ++messages_;
  auto response = endpoint->second.service(conn_id, message);
  if (!response.ok()) return response;
  bytes_received_ += response->size();
  return response;
}

void Fabric::close(std::uint64_t conn_id) {
  const auto conn = connections_.find(conn_id);
  if (conn == connections_.end()) return;
  const auto endpoint = endpoints_.find(conn->second.key);
  if (endpoint != endpoints_.end() && endpoint->second.on_close)
    endpoint->second.on_close(conn_id);
  connections_.erase(conn);
}

}  // namespace watz::net
