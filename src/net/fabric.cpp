#include "net/fabric.hpp"

namespace watz::net {

namespace {
std::string endpoint_key(const std::string& host, std::uint16_t port) {
  return host + ":" + std::to_string(port);
}
}  // namespace

Status Fabric::listen(const std::string& host, std::uint16_t port, Service service,
                      CloseHook on_close) {
  const std::string key = endpoint_key(host, port);
  std::lock_guard<std::mutex> lock(mu_);
  if (endpoints_.contains(key)) return Status::err("fabric: " + key + " already bound");
  endpoints_[key] =
      std::make_shared<const Endpoint>(Endpoint{std::move(service), std::move(on_close)});
  return {};
}

void Fabric::unlisten(const std::string& host, std::uint16_t port) {
  const std::string key = endpoint_key(host, port);
  std::lock_guard<std::mutex> lock(mu_);
  if (endpoints_.erase(key) == 0) return;
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->second.key == key)
      it = connections_.erase(it);
    else
      ++it;
  }
}

Result<std::uint64_t> Fabric::connect(const std::string& host, std::uint16_t port) {
  const std::string key = endpoint_key(host, port);
  std::lock_guard<std::mutex> lock(mu_);
  if (!endpoints_.contains(key))
    return Result<std::uint64_t>::err("fabric: connection refused to " + key);
  const std::uint64_t id = next_conn_id_++;
  connections_[id] = Connection{key};
  return id;
}

std::shared_ptr<const Fabric::Endpoint> Fabric::endpoint_for(std::uint64_t conn_id,
                                                             std::string* error) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto conn = connections_.find(conn_id);
  if (conn == connections_.end()) {
    *error = "fabric: bad connection";
    return nullptr;
  }
  const auto endpoint = endpoints_.find(conn->second.key);
  if (endpoint == endpoints_.end()) {
    *error = "fabric: peer gone";
    return nullptr;
  }
  return endpoint->second;
}

Result<Bytes> Fabric::send_recv(std::uint64_t conn_id, ByteView message) {
  std::string error;
  const std::shared_ptr<const Endpoint> endpoint = endpoint_for(conn_id, &error);
  if (!endpoint) return Result<Bytes>::err(error);
  bytes_sent_.fetch_add(message.size(), std::memory_order_relaxed);
  messages_.fetch_add(1, std::memory_order_relaxed);
  // The service runs outside the fabric lock: it may re-enter the fabric
  // (the gateway relays RA handshakes through device supplicant sockets).
  auto response = endpoint->service(conn_id, message);
  if (!response.ok()) return response;
  bytes_received_.fetch_add(response->size(), std::memory_order_relaxed);
  return response;
}

std::future<Result<Bytes>> Fabric::send_async(std::uint64_t conn_id, Bytes message) {
  return std::async(std::launch::async,
                    [this, conn_id, message = std::move(message)]() {
                      return send_recv(conn_id, message);
                    });
}

std::vector<Result<Bytes>> Fabric::exchange_all(std::uint64_t conn_id,
                                                std::vector<Bytes> messages) {
  std::vector<std::future<Result<Bytes>>> inflight;
  inflight.reserve(messages.size());
  for (Bytes& message : messages)
    inflight.push_back(send_async(conn_id, std::move(message)));
  std::vector<Result<Bytes>> responses;
  responses.reserve(inflight.size());
  for (auto& future : inflight) responses.push_back(future.get());
  return responses;
}

void Fabric::close(std::uint64_t conn_id) {
  std::shared_ptr<const Endpoint> endpoint;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto conn = connections_.find(conn_id);
    if (conn == connections_.end()) return;
    const auto it = endpoints_.find(conn->second.key);
    if (it != endpoints_.end()) endpoint = it->second;
    connections_.erase(conn);
  }
  // The hook runs outside the lock (it may detach gateway sessions, which
  // in turn fail queued work; none of that may re-enter under mu_).
  if (endpoint && endpoint->on_close) endpoint->on_close(conn_id);
}

}  // namespace watz::net
