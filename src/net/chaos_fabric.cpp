#include "net/chaos_fabric.hpp"

#include <chrono>
#include <thread>

namespace watz::net {

namespace {

std::string link_key(const std::string& host, std::uint16_t port) {
  return host + ":" + std::to_string(port);
}

/// How long a reorder-parked frame waits for a later frame to overtake it
/// before delivering anyway. A sequential sender has no later frame in
/// flight, so the timeout is what keeps single-threaded chaos tests from
/// deadlocking on their own parked frame.
constexpr std::chrono::microseconds kReorderWindow{200};

}  // namespace

ChaosFabric::ChaosFabric(std::uint64_t seed) : rng_state_(seed ? seed : 1) {}

void ChaosFabric::reseed(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_state_ = seed ? seed : 1;
}

void ChaosFabric::set_enabled(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_ = on;
}

void ChaosFabric::set_policy(const std::string& host, std::uint16_t port,
                             ChaosPolicy policy) {
  std::lock_guard<std::mutex> lock(mu_);
  policies_[link_key(host, port)] = policy;
}

void ChaosFabric::set_default_policy(ChaosPolicy policy) {
  std::lock_guard<std::mutex> lock(mu_);
  default_policy_ = policy;
  has_default_ = true;
}

void ChaosFabric::clear_policies() {
  std::lock_guard<std::mutex> lock(mu_);
  policies_.clear();
  default_policy_ = ChaosPolicy{};
  has_default_ = false;
}

void ChaosFabric::set_reboot_hook(std::function<void()> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  reboot_hook_ = std::move(hook);
}

ChaosStats ChaosFabric::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::uint64_t ChaosFabric::roll() {
  // xorshift64: deterministic per seed, one stream for every decision so
  // an iteration's whole fault schedule replays from reseed(seed).
  rng_state_ ^= rng_state_ << 13;
  rng_state_ ^= rng_state_ >> 7;
  rng_state_ ^= rng_state_ << 17;
  return rng_state_;
}

bool ChaosFabric::hit(std::uint32_t permille) {
  if (permille == 0) return false;
  return roll() % 1000 < permille;
}

Result<std::uint64_t> ChaosFabric::connect(const std::string& host,
                                           std::uint16_t port) {
  auto conn = Fabric::connect(host, port);
  if (conn.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    links_[*conn] = link_key(host, port);
  }
  return conn;
}

void ChaosFabric::close(std::uint64_t conn_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    links_.erase(conn_id);
  }
  Fabric::close(conn_id);
}

Result<Bytes> ChaosFabric::send_recv(std::uint64_t conn_id, ByteView message) {
  // Decide the frame's whole fate under mu_, then act on it outside the
  // lock: delivery re-enters the fabric (and may trigger nested sends
  // through a gateway relaying RA traffic), so no chaos lock is held
  // across it.
  ChaosPolicy policy;
  std::string link;
  bool do_reboot = false, do_drop = false, do_delay = false;
  bool do_reorder = false, do_duplicate = false, do_stall = false;
  std::function<void()> reboot_hook;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (enabled_) {
      const auto linked = links_.find(conn_id);
      if (linked != links_.end()) {
        link = linked->second;
        const auto it = policies_.find(link);
        if (it != policies_.end())
          policy = it->second;
        else if (has_default_)
          policy = default_policy_;
      }
    }
    if (policy.any()) {
      // Roll order is part of the seed contract: reboot, drop, delay,
      // reorder, duplicate, stall — changing it changes every seeded
      // schedule.
      do_reboot = hit(policy.reboot_permille);
      do_drop = hit(policy.drop_permille);
      do_delay = hit(policy.delay_permille);
      do_reorder = hit(policy.reorder_permille);
      do_duplicate = hit(policy.duplicate_permille);
      do_stall = hit(policy.stall_permille);
      if (do_reboot) {
        ++stats_.reboots;
        reboot_hook = reboot_hook_;
      }
      if (do_drop) ++stats_.dropped;
      if (do_delay) ++stats_.delayed;
      if (do_reorder) ++stats_.reordered;
      if (do_duplicate) ++stats_.duplicated;
      if (do_stall) ++stats_.stalled;
    }
  }

  // Reboot storms: the device re-enrols (boot-count bump) on the sender's
  // thread before this frame lands, so the frame runs against the
  // post-reboot fleet — the worst-case interleaving for cached evidence.
  if (reboot_hook) reboot_hook();

  // Drop: the request never reaches the peer. Nothing executed, so the
  // sender's retry is the FIRST execution.
  if (do_drop)
    return Result<Bytes>::err("chaos: frame dropped on " + link);

  if (do_delay)
    std::this_thread::sleep_for(std::chrono::nanoseconds(policy.delay_ns));

  if (do_reorder) {
    // Park until a later frame on this link completes first (delivery
    // generation advances), or the window lapses for a sequential sender.
    std::unique_lock<std::mutex> lock(order_mu_);
    const std::uint64_t gen = deliveries_[link];
    order_cv_.wait_for(lock, kReorderWindow,
                       [&] { return deliveries_[link] != gen; });
  }

  auto response = Fabric::send_recv(conn_id, message);

  // Duplicate: the identical frame arrives again immediately — the peer's
  // dedup (invoke memo, leader/rider machinery) must absorb the replay.
  // The duplicate's own response is discarded, as a real network would
  // orphan it.
  if (do_duplicate) (void)Fabric::send_recv(conn_id, message);

  {
    std::lock_guard<std::mutex> lock(order_mu_);
    ++deliveries_[link];
  }
  order_cv_.notify_all();

  // Stall: the peer executed (state changed, response computed) but the
  // sender never hears back — the at-most-once hazard a blind retry turns
  // into double execution.
  if (do_stall)
    return Result<Bytes>::err("chaos: response stalled on " + link);

  return response;
}

}  // namespace watz::net
