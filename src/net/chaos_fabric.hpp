// Fault-injecting wrapper over the in-process fabric.
//
// ChaosFabric subclasses net::Fabric and interposes on the connection
// primitives: every send_recv first rolls a seeded PRNG against the
// per-link ChaosPolicy of the destination endpoint and may drop the
// request before the peer sees it, deliver it twice, delay it, hold it
// until a later frame on the same link overtakes it, fire a "device
// reboot" hook, or execute the service but withhold the response. The
// faults map onto the failure modes a real fleet sees:
//
//   drop      the request is lost in flight: the service NEVER runs and
//             the sender gets a transport error. A retry re-executes the
//             operation — exactly once overall, because nothing ran.
//   stall     the response is lost in flight: the service RAN to
//             completion but the sender gets a transport error. This is
//             the dangerous half of at-most-once delivery — a blind retry
//             double-executes unless the receiver deduplicates (the
//             gateway's invoke memo absorbs the replay).
//   duplicate the frame arrives twice: the service runs a second time
//             with identical bytes right after the first; the first
//             response is returned. Receiver-side dedup must make the
//             second delivery a no-op.
//   delay     delivery is late by ChaosPolicy::delay_ns (queue pressure,
//             slow boards, stalled slot workers when aimed at the RA
//             link).
//   reorder   the frame is parked until another frame on the same link
//             overtakes it (or a timeout passes — a sequential sender
//             must not deadlock on its own parked frame).
//   reboot    the reboot hook fires on the sender's thread BEFORE
//             delivery — tests wire it to Gateway::add_device so a
//             mid-storm frame observes a boot-count bump and every
//             cached evidence for that device going stale.
//
// Determinism: one xorshift64 stream seeded by reseed() drives every
// fault decision, so a failing chaos iteration replays from its seed.
// All fault state is mutex-guarded; delivery itself delegates to the
// base Fabric (traffic counters and endpoint resolution are untouched).
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "net/fabric.hpp"

namespace watz::net {

/// Per-link fault probabilities in permille (0 = never, 1000 = always).
/// Faults are rolled independently per send in the order: reboot, drop,
/// delay, reorder, duplicate, stall.
struct ChaosPolicy {
  std::uint32_t drop_permille = 0;       ///< lose the request pre-delivery
  std::uint32_t duplicate_permille = 0;  ///< deliver the frame twice
  std::uint32_t delay_permille = 0;      ///< sleep delay_ns before delivery
  std::uint32_t reorder_permille = 0;    ///< park until a later frame passes
  std::uint32_t stall_permille = 0;      ///< execute, lose the response
  std::uint32_t reboot_permille = 0;     ///< fire the reboot hook pre-delivery
  std::uint64_t delay_ns = 100'000;      ///< charge per delayed frame

  bool any() const noexcept {
    return drop_permille || duplicate_permille || delay_permille ||
           reorder_permille || stall_permille || reboot_permille;
  }
};

/// Cumulative fault counters (what the chaos suite reconciles its lane
/// ledger against).
struct ChaosStats {
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;
  std::uint64_t reordered = 0;
  std::uint64_t stalled = 0;
  std::uint64_t reboots = 0;

  std::uint64_t total() const noexcept {
    return dropped + duplicated + delayed + reordered + stalled + reboots;
  }
};

class ChaosFabric final : public Fabric {
 public:
  explicit ChaosFabric(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Restarts the fault PRNG (each chaos iteration reseeds so a CI
  /// failure replays locally from the echoed seed). Counters keep
  /// accumulating across reseeds.
  void reseed(std::uint64_t seed);

  /// Enables/disables injection wholesale without touching policies —
  /// tests bracket the storm window and verify over a clean fabric.
  void set_enabled(bool on);

  /// Policy for one destination endpoint ("host:port" link). Overrides
  /// the default policy for frames sent to that endpoint.
  void set_policy(const std::string& host, std::uint16_t port, ChaosPolicy policy);
  /// Fallback policy for links without their own entry.
  void set_default_policy(ChaosPolicy policy);
  /// Drops every per-link policy and the default one.
  void clear_policies();

  /// Runs on the SENDING thread just before a reboot-rolled frame is
  /// delivered. Must be safe to call from any fabric client (tests wire
  /// it to Gateway::add_device + a module prewarm sweep). Fires at most
  /// once per send.
  void set_reboot_hook(std::function<void()> hook);

  ChaosStats stats() const;

  Result<std::uint64_t> connect(const std::string& host, std::uint16_t port) override;
  Result<Bytes> send_recv(std::uint64_t conn_id, ByteView message) override;
  void close(std::uint64_t conn_id) override;

 private:
  std::uint64_t roll();  ///< caller holds mu_
  bool hit(std::uint32_t permille);  ///< caller holds mu_

  mutable std::mutex mu_;  // guards rng_, policies_, links_, stats_
  std::uint64_t rng_state_;
  bool enabled_ = true;
  std::map<std::string, ChaosPolicy> policies_;  // keyed "host:port"
  ChaosPolicy default_policy_{};
  bool has_default_ = false;
  std::map<std::uint64_t, std::string> links_;  // conn_id -> link key
  ChaosStats stats_;
  std::function<void()> reboot_hook_;

  /// Reorder barrier: a parked frame waits until the per-link delivery
  /// generation advances past the one it read (i.e. a later frame on the
  /// same link completed first) or the timeout passes.
  std::mutex order_mu_;
  std::condition_variable order_cv_;
  std::map<std::string, std::uint64_t> deliveries_;
};

}  // namespace watz::net
