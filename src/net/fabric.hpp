// In-process network fabric.
//
// Stands in for the TCP path of the prototype (SS V): the attester's
// secure-world socket calls are relayed by the TEE supplicant to the normal
// world, cross the "network", and land in the verifier's normal-world
// listener, which forwards each message to the verifier TA. The fabric
// models connection-oriented, synchronous request/response exchanges (the
// RA protocol is strictly ping-pong) and counts traffic for the harness.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace watz::net {

/// Per-connection message handler: (connection id, request) -> response.
using Service = std::function<Result<Bytes>(std::uint64_t conn_id, ByteView request)>;
/// Invoked when a connection closes, so services can drop session state.
using CloseHook = std::function<void(std::uint64_t conn_id)>;

class Fabric {
 public:
  /// Binds `service` to host:port; fails if already bound.
  Status listen(const std::string& host, std::uint16_t port, Service service,
                CloseHook on_close = nullptr);

  Result<std::uint64_t> connect(const std::string& host, std::uint16_t port);

  /// Sends a message on a connection and returns the peer's response.
  Result<Bytes> send_recv(std::uint64_t conn_id, ByteView message);

  void close(std::uint64_t conn_id);

  std::uint64_t bytes_sent() const noexcept { return bytes_sent_; }
  std::uint64_t bytes_received() const noexcept { return bytes_received_; }
  std::uint64_t messages() const noexcept { return messages_; }

 private:
  struct Endpoint {
    Service service;
    CloseHook on_close;
  };
  struct Connection {
    std::string key;
  };

  std::map<std::string, Endpoint> endpoints_;
  std::map<std::uint64_t, Connection> connections_;
  std::uint64_t next_conn_id_ = 1;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t bytes_received_ = 0;
  std::uint64_t messages_ = 0;
};

}  // namespace watz::net
