// In-process network fabric.
//
// Stands in for the TCP path of the prototype (SS V): the attester's
// secure-world socket calls are relayed by the TEE supplicant to the normal
// world, cross the "network", and land in the verifier's normal-world
// listener, which forwards each message to the verifier TA. The fabric
// models connection-oriented request/response exchanges (the RA protocol is
// strictly ping-pong) and counts traffic for the harness.
//
// Thread safety: every public method may be called from any thread. The
// endpoint/connection tables are mutex-guarded and the traffic counters are
// atomic; a bound service (and its close hook) is always invoked OUTSIDE
// the fabric lock, so handlers are free to re-enter the fabric (connect,
// send, close) — e.g. a gateway worker relaying an RA handshake through a
// device supplicant. Consequently a service must provide its own locking
// when several connections hit it concurrently.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace watz::net {

/// Per-connection message handler: (connection id, request) -> response.
using Service = std::function<Result<Bytes>(std::uint64_t conn_id, ByteView request)>;
/// Invoked when a connection closes, so services can drop session state.
using CloseHook = std::function<void(std::uint64_t conn_id)>;

/// The five primitive operations are virtual so a fault-injecting wrapper
/// (net::ChaosFabric) can interpose per-link failure policies; the
/// pipelining helpers (send_async / exchange_all) are built on the virtual
/// send_recv and inherit whatever the wrapper injects.
class Fabric {
 public:
  Fabric() = default;
  virtual ~Fabric() = default;
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Binds `service` to host:port; fails if already bound.
  virtual Status listen(const std::string& host, std::uint16_t port, Service service,
                        CloseHook on_close = nullptr);

  /// Unbinds an endpoint and drops its connections (no close hooks fire:
  /// the service is going away). A dying service calls this so the fabric
  /// never invokes a dangling handler; later sends fail with "peer gone".
  virtual void unlisten(const std::string& host, std::uint16_t port);

  virtual Result<std::uint64_t> connect(const std::string& host, std::uint16_t port);

  /// Sends a message on a connection and returns the peer's response.
  /// Blocks the calling thread for the duration of the service call.
  virtual Result<Bytes> send_recv(std::uint64_t conn_id, ByteView message);

  /// Asynchronous counterpart of send_recv: the exchange runs on its own
  /// thread and the response arrives through the returned future. Lets a
  /// client pipeline several in-flight requests over independent
  /// connections without blocking between them.
  std::future<Result<Bytes>> send_async(std::uint64_t conn_id, Bytes message);

  /// Multi-exchange pipelining helper: runs every message as a concurrent
  /// send_async exchange on `conn_id` and returns the responses in message
  /// order. Wall-clock is the slowest single exchange, not the sum — the
  /// peer's service observes genuinely concurrent requests and must be
  /// thread-safe (the gateway dispatcher and RA endpoints are).
  std::vector<Result<Bytes>> exchange_all(std::uint64_t conn_id,
                                          std::vector<Bytes> messages);

  virtual void close(std::uint64_t conn_id);

  std::uint64_t bytes_sent() const noexcept {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_received() const noexcept {
    return bytes_received_.load(std::memory_order_relaxed);
  }
  std::uint64_t messages() const noexcept {
    return messages_.load(std::memory_order_relaxed);
  }

 private:
  /// Shared so a handler stays alive while a concurrent close/send still
  /// holds a reference to it outside the lock.
  struct Endpoint {
    Service service;
    CloseHook on_close;
  };
  struct Connection {
    std::string key;
  };

  std::shared_ptr<const Endpoint> endpoint_for(std::uint64_t conn_id,
                                               std::string* error);

  mutable std::mutex mu_;  // guards endpoints_, connections_, next_conn_id_
  std::map<std::string, std::shared_ptr<const Endpoint>> endpoints_;
  std::map<std::uint64_t, Connection> connections_;
  std::uint64_t next_conn_id_ = 1;
  std::atomic<std::uint64_t> bytes_sent_{0};
  std::atomic<std::uint64_t> bytes_received_{0};
  std::atomic<std::uint64_t> messages_{0};
};

}  // namespace watz::net
