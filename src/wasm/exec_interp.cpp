// Interpreter-mode executor: walks the raw bytecode, decoding immediates on
// every visit and locating block ends by forward scanning. Deliberately the
// simple/slow execution strategy the paper contrasts with AOT (SS III:
// "interpreted is the simplest yet slowest").
#include <cstring>

#include "common/leb128.hpp"
#include "wasm/compile.hpp"
#include "wasm/exec_common.hpp"

namespace watz::wasm {

namespace {

struct Label {
  std::size_t start = 0;     // position after block header (loop continuation)
  std::uint32_t arity = 0;   // result arity (br transfer count for non-loops)
  std::size_t height = 0;    // operand height at entry
  bool is_loop = false;
};

inline void unwind(std::vector<std::uint64_t>& stack, std::size_t& sp,
                   std::size_t target_height, std::uint32_t keep) {
  if (sp - keep == target_height) return;
  std::memmove(&stack[target_height], &stack[sp - keep], keep * sizeof(std::uint64_t));
  sp = target_height + keep;
}

void call_host(Instance& inst, const FuncSlot& slot, std::vector<std::uint64_t>& stack,
               std::size_t& sp) {
  const std::size_t nargs = slot.type.params.size();
  std::vector<Value> args(nargs);
  for (std::size_t i = 0; i < nargs; ++i)
    args[i] = Value{slot.type.params[i], stack[sp - nargs + i]};
  sp -= nargs;
  auto results = slot.host(inst, args);
  if (!results.ok()) trap(results.error());
  if (results->size() != slot.type.results.size())
    trap("host function returned wrong result count");
  for (const Value& v : *results) {
    if (sp >= stack.size()) stack.resize(stack.size() * 2 + 16);
    stack[sp++] = v.bits;
  }
}

class Interp {
 public:
  Interp(Instance& inst, const FunctionBody& body, const FuncType& type,
         std::vector<std::uint64_t>& stack, std::size_t& sp, std::size_t base,
         int depth)
      : inst_(inst),
        body_(body),
        type_(type),
        stack_(stack),
        sp_(sp),
        base_(base),
        depth_(depth),
        reader_(body.code) {}

  void run() {
    labels_.push_back(Label{0, static_cast<std::uint32_t>(type_.results.size()),
                            sp_, false});
    while (true) {
      const std::uint8_t op = read_u8();
      if (step(op)) return;
    }
  }

 private:
  std::uint8_t read_u8() {
    auto v = reader_.read_u8();
    if (!v.ok()) trap(v.error());
    return *v;
  }
  std::uint32_t read_uleb32() {
    auto v = reader_.read_uleb32();
    if (!v.ok()) trap(v.error());
    return *v;
  }
  std::int32_t read_sleb32() {
    auto v = reader_.read_sleb32();
    if (!v.ok()) trap(v.error());
    return *v;
  }
  std::int64_t read_sleb64() {
    auto v = reader_.read_sleb64();
    if (!v.ok()) trap(v.error());
    return *v;
  }

  void push(std::uint64_t v) {
    if (sp_ >= stack_.size()) stack_.resize(stack_.size() * 2 + 16);
    stack_[sp_++] = v;
  }
  std::uint64_t pop() { return stack_[--sp_]; }

  std::uint32_t read_block_arity() {
    const std::uint8_t bt = read_u8();
    return bt == 0x40 ? 0u : 1u;
  }

  /// Transfers control to relative label depth `d`.
  void do_branch(std::uint32_t d) {
    if (d >= labels_.size()) trap("branch depth out of range");
    const std::size_t target_index = labels_.size() - 1 - d;
    const Label target = labels_[target_index];
    if (target.is_loop) {
      unwind(stack_, sp_, target.height, 0);
      labels_.resize(target_index + 1);
      reader_.seek(target.start);
    } else {
      // Scan forward from the block start for the matching end.
      auto end = find_block_end(body_.code, target.start, nullptr);
      if (!end.ok()) trap(end.error());
      unwind(stack_, sp_, target.height, target.arity);
      labels_.resize(target_index);
      reader_.seek(*end);
      if (labels_.empty()) do_return();  // branch targeted the function body
    }
  }

  void do_return() {
    const std::uint32_t keep = static_cast<std::uint32_t>(type_.results.size());
    std::memmove(&stack_[base_], &stack_[sp_ - keep], keep * sizeof(std::uint64_t));
    sp_ = base_ + keep;
    returned_ = true;
  }

  /// Executes one opcode. Returns true when the function is finished.
  bool step(std::uint8_t op);

  Instance& inst_;
  const FunctionBody& body_;
  const FuncType& type_;
  std::vector<std::uint64_t>& stack_;
  std::size_t& sp_;
  std::size_t base_;
  int depth_;
  ByteReader reader_;
  std::vector<Label> labels_;
  bool returned_ = false;
};

bool Interp::step(std::uint8_t op) {
  switch (op) {
    case kUnreachable:
      trap("unreachable executed");
    case kNop:
      return false;

    case kBlock: {
      const std::uint32_t arity = read_block_arity();
      labels_.push_back(Label{reader_.pos(), arity, sp_, false});
      return false;
    }
    case kLoop: {
      const std::uint32_t arity = read_block_arity();
      labels_.push_back(Label{reader_.pos(), arity, sp_, true});
      return false;
    }
    case kIf: {
      const std::uint32_t arity = read_block_arity();
      const std::size_t body_start = reader_.pos();
      const std::uint64_t cond = pop();
      labels_.push_back(Label{body_start, arity, sp_, false});
      if (cond == 0) {
        std::size_t else_pos = 0;
        auto end = find_block_end(body_.code, body_start, &else_pos);
        if (!end.ok()) trap(end.error());
        if (else_pos != 0) {
          reader_.seek(else_pos);  // execute the else arm
        } else {
          reader_.seek(*end);
          labels_.pop_back();
        }
      }
      return false;
    }
    case kElse: {
      // Reached by falling out of a live then-arm: jump to the block end.
      const Label frame = labels_.back();
      auto end = find_block_end(body_.code, frame.start, nullptr);
      if (!end.ok()) trap(end.error());
      labels_.pop_back();
      reader_.seek(*end);
      return false;
    }
    case kEnd:
      labels_.pop_back();
      if (labels_.empty()) {
        do_return();
        return true;
      }
      return false;

    case kBr:
      do_branch(read_uleb32());
      return returned_;
    case kBrIf: {
      const std::uint32_t d = read_uleb32();
      if (pop() != 0) {
        do_branch(d);
        return returned_;
      }
      return false;
    }
    case kBrTable: {
      const std::uint32_t count = read_uleb32();
      std::vector<std::uint32_t> targets(count);
      for (std::uint32_t i = 0; i < count; ++i) targets[i] = read_uleb32();
      const std::uint32_t fallback = read_uleb32();
      const std::uint32_t index = static_cast<std::uint32_t>(pop());
      do_branch(index < count ? targets[index] : fallback);
      return returned_;
    }
    case kReturn:
      do_return();
      return true;

    case kCall: {
      const std::uint32_t idx = read_uleb32();
      exec_call_interp(inst_, idx, stack_, sp_, depth_ + 1);
      return false;
    }
    case kCallIndirect: {
      const std::uint32_t type_index = read_uleb32();
      read_u8();  // table byte
      const std::uint32_t index = static_cast<std::uint32_t>(pop());
      if (index >= inst_.table.size()) trap("undefined element");
      const std::int64_t target = inst_.table[index];
      if (target < 0) trap("uninitialized element");
      const FuncSlot& callee = inst_.funcs[static_cast<std::uint32_t>(target)];
      if (!(callee.type == inst_.module().types[type_index]))
        trap("indirect call type mismatch");
      exec_call_interp(inst_, static_cast<std::uint32_t>(target), stack_, sp_, depth_ + 1);
      return false;
    }

    case kDrop:
      --sp_;
      return false;
    case kSelect: {
      const std::uint64_t c = pop();
      const std::uint64_t v2 = pop();
      if (c == 0) stack_[sp_ - 1] = v2;
      return false;
    }

    case kLocalGet: {
      const std::uint32_t idx = read_uleb32();
      push(stack_[base_ + idx]);
      return false;
    }
    case kLocalSet: {
      const std::uint32_t idx = read_uleb32();
      stack_[base_ + idx] = pop();
      return false;
    }
    case kLocalTee: {
      const std::uint32_t idx = read_uleb32();
      stack_[base_ + idx] = stack_[sp_ - 1];
      return false;
    }
    case kGlobalGet:
      push(inst_.globals[read_uleb32()].bits);
      return false;
    case kGlobalSet:
      inst_.globals[read_uleb32()].bits = pop();
      return false;

    case kMemorySize:
      read_u8();
      push(inst_.memory()->pages());
      return false;
    case kMemoryGrow: {
      read_u8();
      const std::uint32_t delta = static_cast<std::uint32_t>(stack_[sp_ - 1]);
      stack_[sp_ - 1] = static_cast<std::uint32_t>(inst_.memory()->grow(delta));
      return false;
    }

    case kI32Const:
      push(static_cast<std::uint32_t>(read_sleb32()));
      return false;
    case kI64Const:
      push(static_cast<std::uint64_t>(read_sleb64()));
      return false;
    case kF32Const: {
      auto v = reader_.read_bytes(4);
      if (!v.ok()) trap(v.error());
      push(get_u32le(v->data()));
      return false;
    }
    case kF64Const: {
      auto v = reader_.read_bytes(8);
      if (!v.ok()) trap(v.error());
      push(get_u64le(v->data()));
      return false;
    }

    case kPrefixFC: {
      const std::uint32_t sub = read_uleb32();
      if (sub <= kI64TruncSatF64U) {
        exec_trunc_sat(sub, stack_, sp_);
        return false;
      }
      if (sub == kMemoryCopy) {
        read_u8();
        read_u8();
        const std::uint32_t n = static_cast<std::uint32_t>(pop());
        const std::uint32_t src = static_cast<std::uint32_t>(pop());
        const std::uint32_t dst = static_cast<std::uint32_t>(pop());
        Memory* mem = inst_.memory();
        if (!mem->in_bounds(src, n) || !mem->in_bounds(dst, n))
          trap("out of bounds memory access");
        std::memmove(mem->data() + dst, mem->data() + src, n);
        return false;
      }
      if (sub == kMemoryFill) {
        read_u8();
        const std::uint32_t n = static_cast<std::uint32_t>(pop());
        const std::uint8_t value = static_cast<std::uint8_t>(pop());
        const std::uint32_t dst = static_cast<std::uint32_t>(pop());
        Memory* mem = inst_.memory();
        if (!mem->in_bounds(dst, n)) trap("out of bounds memory access");
        std::memset(mem->data() + dst, value, n);
        return false;
      }
      trap("unsupported 0xFC opcode");
    }

    default:
      break;
  }

  if (op >= kI32Load && op <= kI64Load32U) {
    read_uleb32();  // align
    const std::uint64_t offset = read_uleb32();
    const std::uint32_t addr = static_cast<std::uint32_t>(stack_[sp_ - 1]);
    stack_[sp_ - 1] = mem_load(*inst_.memory(), op, addr, offset);
    return false;
  }
  if (op >= kI32Store && op <= kI64Store32) {
    read_uleb32();  // align
    const std::uint64_t offset = read_uleb32();
    const std::uint64_t value = pop();
    const std::uint32_t addr = static_cast<std::uint32_t>(pop());
    mem_store(*inst_.memory(), op, addr, offset, value);
    return false;
  }

  // Numeric ops may push one value; reserve headroom.
  if (sp_ + 1 >= stack_.size()) stack_.resize(stack_.size() * 2 + 16);
  exec_numeric(op, stack_, sp_);
  return false;
}

}  // namespace

void exec_call_interp(Instance& inst, std::uint32_t func_index,
                      std::vector<std::uint64_t>& stack, std::size_t& sp, int depth) {
  if (depth > kMaxCallDepth) trap("call stack exhausted");
  const FuncSlot& slot = inst.funcs[func_index];
  if (slot.is_host) {
    call_host(inst, slot, stack, sp);
    return;
  }

  const FunctionBody& body = inst.module().code[slot.module_func_index];
  const std::size_t num_params = slot.type.params.size();
  const std::size_t num_locals = num_params + body.locals.size();
  const std::size_t base = sp - num_params;
  if (stack.size() < base + num_locals + 32)
    stack.resize(std::max(base + num_locals + 64, stack.size() * 2));
  for (std::size_t i = num_params; i < num_locals; ++i) stack[base + i] = 0;
  sp = base + num_locals;

  Interp interp(inst, body, slot.type, stack, sp, base, depth);
  interp.run();
}

}  // namespace watz::wasm
