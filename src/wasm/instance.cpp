#include "wasm/instance.hpp"

#include <cstring>

#include "common/leb128.hpp"
#include "wasm/compile.hpp"
#include "wasm/exec_common.hpp"
#include "wasm/opcodes.hpp"
#include "wasm/validator.hpp"

namespace watz::wasm {

// ---------------------------------------------------------------------------
// ImportResolver

void ImportResolver::add_function(std::string module, std::string name, FuncType type,
                                  HostFn fn) {
  funcs_[module + '\0' + name] = Entry{std::move(type), std::move(fn)};
}

const ImportResolver::Entry* ImportResolver::find(const std::string& module,
                                                  const std::string& name) const {
  const auto it = funcs_.find(module + '\0' + name);
  return it == funcs_.end() ? nullptr : &it->second;
}

// ---------------------------------------------------------------------------
// Memory

Memory::Memory(Limits limits) : limits_(limits) {
  data_.resize(static_cast<std::size_t>(limits.min) * kPageSize);
}

std::int32_t Memory::grow(std::uint32_t delta) {
  const std::uint64_t current = pages();
  const std::uint64_t target = current + delta;
  const std::uint64_t cap = limits_.has_max ? limits_.max : 65536;
  if (target > cap || target > 65536) return -1;
  data_.resize(static_cast<std::size_t>(target) * kPageSize);
  return static_cast<std::int32_t>(current);
}

Status Memory::copy_in(std::uint32_t addr, ByteView src) {
  if (!in_bounds(addr, src.size())) return Status::err("memory copy_in out of bounds");
  std::memcpy(data_.data() + addr, src.data(), src.size());
  return {};
}

Result<Bytes> Memory::copy_out(std::uint32_t addr, std::uint32_t len) const {
  if (!in_bounds(addr, len)) return Result<Bytes>::err("memory copy_out out of bounds");
  return Bytes(data_.begin() + addr, data_.begin() + addr + len);
}

// ---------------------------------------------------------------------------
// Instantiation

namespace {

Result<std::uint64_t> eval_const_expr(const Bytes& expr,
                                      const std::vector<GlobalSlot>& globals) {
  ByteReader r(expr);
  auto op = r.read_u8();
  if (!op.ok()) return Result<std::uint64_t>::err("empty const expr");
  switch (*op) {
    case kI32Const: {
      auto v = r.read_sleb32();
      if (!v.ok()) return Result<std::uint64_t>::err(v.error());
      return static_cast<std::uint64_t>(static_cast<std::uint32_t>(*v));
    }
    case kI64Const: {
      auto v = r.read_sleb64();
      if (!v.ok()) return Result<std::uint64_t>::err(v.error());
      return static_cast<std::uint64_t>(*v);
    }
    case kF32Const: {
      auto v = r.read_bytes(4);
      if (!v.ok()) return Result<std::uint64_t>::err(v.error());
      return std::uint64_t{get_u32le(v->data())};
    }
    case kF64Const: {
      auto v = r.read_bytes(8);
      if (!v.ok()) return Result<std::uint64_t>::err(v.error());
      return get_u64le(v->data());
    }
    case kGlobalGet: {
      auto idx = r.read_uleb32();
      if (!idx.ok()) return Result<std::uint64_t>::err(idx.error());
      if (*idx >= globals.size()) return Result<std::uint64_t>::err("const expr global oob");
      return globals[*idx].bits;
    }
    default:
      return Result<std::uint64_t>::err("invalid const expr");
  }
}

}  // namespace

Result<std::vector<CompiledFunc>> precompile_module(const Module& module) {
  std::vector<CompiledFunc> compiled;
  compiled.reserve(module.code.size());
  for (std::uint32_t i = 0; i < module.code.size(); ++i) {
    auto cf = compile_function(module, i);
    if (!cf.ok()) return Result<std::vector<CompiledFunc>>::err(cf.error());
    compiled.push_back(std::move(*cf));
  }
  return compiled;
}

Result<std::unique_ptr<Instance>> Instance::instantiate(
    Module module, const ImportResolver& imports, ExecMode mode,
    std::vector<CompiledFunc> precompiled, bool already_validated) {
  auto shared_module = std::make_shared<const Module>(std::move(module));
  std::shared_ptr<const std::vector<CompiledFunc>> shared_compiled;
  if (!precompiled.empty())
    shared_compiled =
        std::make_shared<const std::vector<CompiledFunc>>(std::move(precompiled));
  return instantiate_shared(std::move(shared_module), imports, mode,
                            std::move(shared_compiled), already_validated);
}

Result<std::unique_ptr<Instance>> Instance::instantiate_shared(
    std::shared_ptr<const Module> module_ptr, const ImportResolver& imports,
    ExecMode mode, std::shared_ptr<const std::vector<CompiledFunc>> precompiled,
    bool already_validated) {
  using InstancePtr = std::unique_ptr<Instance>;
  const Module& module = *module_ptr;

  if (!already_validated) {
    const Status valid = validate_module(module);
    if (!valid.ok()) return Result<InstancePtr>::err(valid.error());
  }

  auto inst = std::unique_ptr<Instance>(new Instance());
  inst->mode_ = mode;

  // Link imports. Only function imports are supported (WaTZ apps import the
  // WASI surface; memories/tables/globals are module-defined).
  for (const Import& imp : module.imports) {
    switch (imp.kind) {
      case ImportKind::Func: {
        const auto* entry = imports.find(imp.module, imp.name);
        if (entry == nullptr)
          return Result<InstancePtr>::err("unresolved import " + imp.module + "." +
                                          imp.name);
        if (!(entry->type == module.types[imp.type_index]))
          return Result<InstancePtr>::err("import type mismatch for " + imp.module +
                                          "." + imp.name);
        inst->funcs.push_back(FuncSlot{entry->type, true, entry->fn, 0});
        break;
      }
      case ImportKind::Memory:
      case ImportKind::Table:
      case ImportKind::Global:
        return Result<InstancePtr>::err("only function imports are supported");
    }
  }

  for (std::uint32_t i = 0; i < module.functions.size(); ++i) {
    inst->funcs.push_back(
        FuncSlot{module.types[module.functions[i]], false, nullptr, i});
  }

  inst->module_ = std::move(module_ptr);
  const Status state = inst->reset_state();
  if (!state.ok()) return Result<InstancePtr>::err(state.error());

  // AOT pre-translation of every function (the "loading" phase of Fig 4),
  // unless the embedder already ran precompile_module(). The compiled image
  // is immutable at run time, so a caller-provided store is shared, not
  // copied.
  if (mode == ExecMode::Aot) {
    if (precompiled && precompiled->size() == module.code.size() &&
        !module.code.empty()) {
      inst->compiled_store_ = std::move(precompiled);
    } else {
      auto compiled = precompile_module(module);
      if (!compiled.ok()) return Result<InstancePtr>::err(compiled.error());
      inst->compiled_store_ =
          std::make_shared<const std::vector<CompiledFunc>>(std::move(*compiled));
    }
    inst->compiled = *inst->compiled_store_;
  }

  if (inst->module_->start) {
    auto r = inst->invoke_index(*inst->module_->start, {});
    if (!r.ok()) return Result<InstancePtr>::err("start function trapped: " + r.error());
  }
  return inst;
}

Status Instance::reset_state() {
  const Module& module = *module_;

  if (!module.memories.empty())
    memory_ = std::make_unique<Memory>(module.memories[0]);
  if (!module.tables.empty()) table.assign(module.tables[0].min, -1);

  // Globals (imports excluded -> index space starts at module globals).
  globals.clear();
  for (const Global& g : module.globals) {
    auto bits = eval_const_expr(g.init_expr, globals);
    if (!bits.ok()) return Status::err(bits.error());
    globals.push_back(GlobalSlot{g.type, g.mutable_, *bits});
  }

  // Element segments.
  for (const ElementSegment& seg : module.elements) {
    auto offset = eval_const_expr(seg.offset_expr, globals);
    if (!offset.ok()) return Status::err(offset.error());
    const std::uint64_t off = static_cast<std::uint32_t>(*offset);
    if (off + seg.func_indices.size() > table.size())
      return Status::err("element segment out of bounds");
    for (std::size_t i = 0; i < seg.func_indices.size(); ++i)
      table[off + i] = seg.func_indices[i];
  }

  // Data segments.
  for (const DataSegment& seg : module.data) {
    auto offset = eval_const_expr(seg.offset_expr, globals);
    if (!offset.ok()) return Status::err(offset.error());
    if (memory_ == nullptr) return Status::err("data segment without memory");
    const Status st = memory_->copy_in(static_cast<std::uint32_t>(*offset), seg.data);
    if (!st.ok()) return Status::err("data segment out of bounds");
  }
  return {};
}

Status Instance::reinitialize() {
  const Status state = reset_state();
  if (!state.ok()) return state;
  if (module_->start) {
    auto r = invoke_index(*module_->start, {});
    if (!r.ok()) return Status::err("start function trapped: " + r.error());
  }
  return {};
}

Result<std::uint32_t> Instance::find_exported_func(const std::string& name) const {
  for (const Export& ex : module_->exports) {
    if (ex.kind == ImportKind::Func && ex.name == name) return ex.index;
  }
  return Result<std::uint32_t>::err("no exported function named '" + name + "'");
}

Result<std::vector<Value>> Instance::invoke(const std::string& export_name,
                                            std::span<const Value> args) {
  auto idx = find_exported_func(export_name);
  if (!idx.ok()) return Result<std::vector<Value>>::err(idx.error());
  return invoke_index(*idx, args);
}

Result<std::vector<Value>> Instance::invoke_index(std::uint32_t func_index,
                                                  std::span<const Value> args) {
  if (func_index >= funcs.size())
    return Result<std::vector<Value>>::err("function index out of range");
  const FuncType& type = funcs[func_index].type;
  if (args.size() != type.params.size())
    return Result<std::vector<Value>>::err("argument count mismatch");
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (args[i].type != type.params[i])
      return Result<std::vector<Value>>::err("argument type mismatch at " +
                                             std::to_string(i));
  }

  std::vector<std::uint64_t> stack(1024);
  std::size_t sp = 0;
  for (const Value& v : args) stack[sp++] = v.bits;

  try {
    GuestSpan guest_span;
    if (mode_ == ExecMode::Aot) {
      exec_call_aot(*this, func_index, stack, sp, 0);
    } else {
      exec_call_interp(*this, func_index, stack, sp, 0);
    }
  } catch (const TrapException& trap_ex) {
    return Result<std::vector<Value>>::err("trap: " + trap_ex.message);
  }

  std::vector<Value> results;
  results.reserve(type.results.size());
  for (std::size_t i = 0; i < type.results.size(); ++i)
    results.push_back(Value{type.results[i], stack[i]});
  return results;
}

}  // namespace watz::wasm
