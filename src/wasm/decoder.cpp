#include "wasm/decoder.hpp"

#include "common/leb128.hpp"
#include "wasm/opcodes.hpp"

namespace watz::wasm {

namespace {

constexpr std::uint32_t kMagic = 0x6d736100;  // "\0asm"
constexpr std::uint32_t kVersion = 1;

#define TRY(var, expr)                                   \
  auto var##_res = (expr);                               \
  if (!var##_res.ok()) return Result<Module>::err(var##_res.error()); \
  auto var = *var##_res

/// Helper that threads a ByteReader through section parsing and collects the
/// first error. Sub-parsers return Status.
class Decoder {
 public:
  explicit Decoder(ByteView binary) : reader_(binary) {}

  Result<Module> run() {
    auto magic = reader_.read_u32le();
    if (!magic.ok() || *magic != kMagic)
      return Result<Module>::err("decode: bad magic");
    auto version = reader_.read_u32le();
    if (!version.ok() || *version != kVersion)
      return Result<Module>::err("decode: unsupported version");

    int last_section = -1;
    while (!reader_.at_end()) {
      auto id = reader_.read_u8();
      if (!id.ok()) return Result<Module>::err(id.error());
      auto size = reader_.read_uleb32();
      if (!size.ok()) return Result<Module>::err(size.error());
      auto payload = reader_.read_bytes(*size);
      if (!payload.ok()) return Result<Module>::err("decode: truncated section");

      if (*id != 0) {
        if (*id <= last_section)
          return Result<Module>::err("decode: out-of-order section");
        if (*id > 11) return Result<Module>::err("decode: unknown section id");
        last_section = *id;
      }

      ByteReader section(*payload);
      const Status st = parse_section(*id, section);
      if (!st.ok()) return Result<Module>::err(st.error());
      if (*id != 0 && !section.at_end())
        return Result<Module>::err("decode: trailing bytes in section");
    }

    if (module_.code.size() != module_.functions.size())
      return Result<Module>::err("decode: function/code section count mismatch");
    return std::move(module_);
  }

 private:
  Status parse_section(std::uint8_t id, ByteReader& r) {
    switch (id) {
      case 0: return parse_custom(r);
      case 1: return parse_types(r);
      case 2: return parse_imports(r);
      case 3: return parse_functions(r);
      case 4: return parse_tables(r);
      case 5: return parse_memories(r);
      case 6: return parse_globals(r);
      case 7: return parse_exports(r);
      case 8: return parse_start(r);
      case 9: return parse_elements(r);
      case 10: return parse_code(r);
      case 11: return parse_data(r);
      default: return Status::err("decode: unknown section");
    }
  }

  Result<std::string> read_name(ByteReader& r) {
    auto len = r.read_uleb32();
    if (!len.ok()) return Result<std::string>::err(len.error());
    auto bytes = r.read_bytes(*len);
    if (!bytes.ok()) return Result<std::string>::err(bytes.error());
    return std::string(bytes->begin(), bytes->end());
  }

  Result<ValType> read_val_type(ByteReader& r) {
    auto b = r.read_u8();
    if (!b.ok()) return Result<ValType>::err(b.error());
    switch (*b) {
      case 0x7f: return ValType::I32;
      case 0x7e: return ValType::I64;
      case 0x7d: return ValType::F32;
      case 0x7c: return ValType::F64;
      case 0x70: return ValType::FuncRef;
      default: return Result<ValType>::err("decode: invalid value type");
    }
  }

  Result<Limits> read_limits(ByteReader& r) {
    auto flags = r.read_u8();
    if (!flags.ok()) return Result<Limits>::err(flags.error());
    if (*flags > 1) return Result<Limits>::err("decode: invalid limits flags");
    Limits lim;
    auto min = r.read_uleb32();
    if (!min.ok()) return Result<Limits>::err(min.error());
    lim.min = *min;
    if (*flags == 1) {
      auto max = r.read_uleb32();
      if (!max.ok()) return Result<Limits>::err(max.error());
      lim.max = *max;
      lim.has_max = true;
      if (lim.max < lim.min) return Result<Limits>::err("decode: limits max < min");
    }
    return lim;
  }

  /// Copies a constant initialiser expression up to (not including) the
  /// terminating `end`, validating it is one of the allowed shapes.
  Result<Bytes> read_const_expr(ByteReader& r) {
    Bytes expr;
    auto op = r.read_u8();
    if (!op.ok()) return Result<Bytes>::err(op.error());
    expr.push_back(*op);
    switch (*op) {
      case kI32Const: {
        auto v = r.read_sleb32();
        if (!v.ok()) return Result<Bytes>::err(v.error());
        write_sleb(expr, *v);
        break;
      }
      case kI64Const: {
        auto v = r.read_sleb64();
        if (!v.ok()) return Result<Bytes>::err(v.error());
        write_sleb(expr, *v);
        break;
      }
      case kF32Const: {
        auto v = r.read_bytes(4);
        if (!v.ok()) return Result<Bytes>::err(v.error());
        append(expr, *v);
        break;
      }
      case kF64Const: {
        auto v = r.read_bytes(8);
        if (!v.ok()) return Result<Bytes>::err(v.error());
        append(expr, *v);
        break;
      }
      case kGlobalGet: {
        auto v = r.read_uleb32();
        if (!v.ok()) return Result<Bytes>::err(v.error());
        write_uleb(expr, *v);
        break;
      }
      default:
        return Result<Bytes>::err("decode: unsupported constant expression");
    }
    auto end = r.read_u8();
    if (!end.ok() || *end != kEnd)
      return Result<Bytes>::err("decode: constant expression missing end");
    return expr;
  }

  Status parse_custom(ByteReader& r) {
    CustomSection cs;
    auto name = read_name(r);
    if (!name.ok()) return Status::err(name.error());
    cs.name = *name;
    auto rest = r.read_bytes(r.remaining());
    cs.payload.assign(rest->begin(), rest->end());
    module_.custom.push_back(std::move(cs));
    return {};
  }

  Status parse_types(ByteReader& r) {
    auto count = r.read_uleb32();
    if (!count.ok()) return Status::err(count.error());
    for (std::uint32_t i = 0; i < *count; ++i) {
      auto form = r.read_u8();
      if (!form.ok() || *form != 0x60) return Status::err("decode: expected func type");
      FuncType ft;
      auto np = r.read_uleb32();
      if (!np.ok()) return Status::err(np.error());
      for (std::uint32_t j = 0; j < *np; ++j) {
        auto t = read_val_type(r);
        if (!t.ok()) return Status::err(t.error());
        if (*t == ValType::FuncRef) return Status::err("decode: funcref param");
        ft.params.push_back(*t);
      }
      auto nr = r.read_uleb32();
      if (!nr.ok()) return Status::err(nr.error());
      if (*nr > 1) return Status::err("decode: multi-value results unsupported");
      for (std::uint32_t j = 0; j < *nr; ++j) {
        auto t = read_val_type(r);
        if (!t.ok()) return Status::err(t.error());
        if (*t == ValType::FuncRef) return Status::err("decode: funcref result");
        ft.results.push_back(*t);
      }
      module_.types.push_back(std::move(ft));
    }
    return {};
  }

  Status parse_imports(ByteReader& r) {
    auto count = r.read_uleb32();
    if (!count.ok()) return Status::err(count.error());
    for (std::uint32_t i = 0; i < *count; ++i) {
      Import imp;
      auto mod = read_name(r);
      if (!mod.ok()) return Status::err(mod.error());
      imp.module = *mod;
      auto name = read_name(r);
      if (!name.ok()) return Status::err(name.error());
      imp.name = *name;
      auto kind = r.read_u8();
      if (!kind.ok() || *kind > 3) return Status::err("decode: bad import kind");
      imp.kind = static_cast<ImportKind>(*kind);
      switch (imp.kind) {
        case ImportKind::Func: {
          auto ti = r.read_uleb32();
          if (!ti.ok()) return Status::err(ti.error());
          if (*ti >= module_.types.size()) return Status::err("decode: import type oob");
          imp.type_index = *ti;
          break;
        }
        case ImportKind::Table: {
          auto et = r.read_u8();
          if (!et.ok() || *et != 0x70) return Status::err("decode: bad table elem type");
          auto lim = read_limits(r);
          if (!lim.ok()) return Status::err(lim.error());
          imp.limits = *lim;
          break;
        }
        case ImportKind::Memory: {
          auto lim = read_limits(r);
          if (!lim.ok()) return Status::err(lim.error());
          imp.limits = *lim;
          break;
        }
        case ImportKind::Global: {
          auto t = read_val_type(r);
          if (!t.ok()) return Status::err(t.error());
          imp.global_type = *t;
          auto mut = r.read_u8();
          if (!mut.ok() || *mut > 1) return Status::err("decode: bad global mutability");
          imp.global_mutable = *mut == 1;
          break;
        }
      }
      module_.imports.push_back(std::move(imp));
    }
    return {};
  }

  Status parse_functions(ByteReader& r) {
    auto count = r.read_uleb32();
    if (!count.ok()) return Status::err(count.error());
    for (std::uint32_t i = 0; i < *count; ++i) {
      auto ti = r.read_uleb32();
      if (!ti.ok()) return Status::err(ti.error());
      if (*ti >= module_.types.size()) return Status::err("decode: func type oob");
      module_.functions.push_back(*ti);
    }
    return {};
  }

  Status parse_tables(ByteReader& r) {
    auto count = r.read_uleb32();
    if (!count.ok()) return Status::err(count.error());
    for (std::uint32_t i = 0; i < *count; ++i) {
      auto et = r.read_u8();
      if (!et.ok() || *et != 0x70) return Status::err("decode: bad table elem type");
      auto lim = read_limits(r);
      if (!lim.ok()) return Status::err(lim.error());
      module_.tables.push_back(*lim);
    }
    if (module_.tables.size() > 1) return Status::err("decode: multiple tables");
    return {};
  }

  Status parse_memories(ByteReader& r) {
    auto count = r.read_uleb32();
    if (!count.ok()) return Status::err(count.error());
    for (std::uint32_t i = 0; i < *count; ++i) {
      auto lim = read_limits(r);
      if (!lim.ok()) return Status::err(lim.error());
      module_.memories.push_back(*lim);
    }
    if (module_.memories.size() > 1) return Status::err("decode: multiple memories");
    return {};
  }

  Status parse_globals(ByteReader& r) {
    auto count = r.read_uleb32();
    if (!count.ok()) return Status::err(count.error());
    for (std::uint32_t i = 0; i < *count; ++i) {
      Global g;
      auto t = read_val_type(r);
      if (!t.ok()) return Status::err(t.error());
      g.type = *t;
      auto mut = r.read_u8();
      if (!mut.ok() || *mut > 1) return Status::err("decode: bad global mutability");
      g.mutable_ = *mut == 1;
      auto expr = read_const_expr(r);
      if (!expr.ok()) return Status::err(expr.error());
      g.init_expr = *expr;
      module_.globals.push_back(std::move(g));
    }
    return {};
  }

  Status parse_exports(ByteReader& r) {
    auto count = r.read_uleb32();
    if (!count.ok()) return Status::err(count.error());
    for (std::uint32_t i = 0; i < *count; ++i) {
      Export ex;
      auto name = read_name(r);
      if (!name.ok()) return Status::err(name.error());
      ex.name = *name;
      auto kind = r.read_u8();
      if (!kind.ok() || *kind > 3) return Status::err("decode: bad export kind");
      ex.kind = static_cast<ImportKind>(*kind);
      auto idx = r.read_uleb32();
      if (!idx.ok()) return Status::err(idx.error());
      ex.index = *idx;
      for (const auto& other : module_.exports)
        if (other.name == ex.name) return Status::err("decode: duplicate export name");
      module_.exports.push_back(std::move(ex));
    }
    return {};
  }

  Status parse_start(ByteReader& r) {
    auto idx = r.read_uleb32();
    if (!idx.ok()) return Status::err(idx.error());
    module_.start = *idx;
    return {};
  }

  Status parse_elements(ByteReader& r) {
    auto count = r.read_uleb32();
    if (!count.ok()) return Status::err(count.error());
    for (std::uint32_t i = 0; i < *count; ++i) {
      ElementSegment seg;
      auto ti = r.read_uleb32();
      if (!ti.ok()) return Status::err(ti.error());
      if (*ti != 0) return Status::err("decode: only active table-0 elements supported");
      seg.table_index = *ti;
      auto expr = read_const_expr(r);
      if (!expr.ok()) return Status::err(expr.error());
      seg.offset_expr = *expr;
      auto n = r.read_uleb32();
      if (!n.ok()) return Status::err(n.error());
      for (std::uint32_t j = 0; j < *n; ++j) {
        auto fi = r.read_uleb32();
        if (!fi.ok()) return Status::err(fi.error());
        seg.func_indices.push_back(*fi);
      }
      module_.elements.push_back(std::move(seg));
    }
    return {};
  }

  Status parse_code(ByteReader& r) {
    auto count = r.read_uleb32();
    if (!count.ok()) return Status::err(count.error());
    for (std::uint32_t i = 0; i < *count; ++i) {
      auto body_size = r.read_uleb32();
      if (!body_size.ok()) return Status::err(body_size.error());
      auto body = r.read_bytes(*body_size);
      if (!body.ok()) return Status::err("decode: truncated function body");

      ByteReader br(*body);
      FunctionBody fb;
      auto local_groups = br.read_uleb32();
      if (!local_groups.ok()) return Status::err(local_groups.error());
      for (std::uint32_t g = 0; g < *local_groups; ++g) {
        auto n = br.read_uleb32();
        if (!n.ok()) return Status::err(n.error());
        auto t = read_val_type(br);
        if (!t.ok()) return Status::err(t.error());
        if (fb.locals.size() + *n > 65536) return Status::err("decode: too many locals");
        fb.locals.insert(fb.locals.end(), *n, *t);
      }
      auto code = br.read_bytes(br.remaining());
      fb.code.assign(code->begin(), code->end());
      if (fb.code.empty() || fb.code.back() != kEnd)
        return Status::err("decode: function body missing end");
      module_.code.push_back(std::move(fb));
    }
    return {};
  }

  Status parse_data(ByteReader& r) {
    auto count = r.read_uleb32();
    if (!count.ok()) return Status::err(count.error());
    for (std::uint32_t i = 0; i < *count; ++i) {
      DataSegment seg;
      auto mi = r.read_uleb32();
      if (!mi.ok()) return Status::err(mi.error());
      if (*mi != 0) return Status::err("decode: only memory 0 data supported");
      seg.memory_index = *mi;
      auto expr = read_const_expr(r);
      if (!expr.ok()) return Status::err(expr.error());
      seg.offset_expr = *expr;
      auto n = r.read_uleb32();
      if (!n.ok()) return Status::err(n.error());
      auto data = r.read_bytes(*n);
      if (!data.ok()) return Status::err("decode: truncated data segment");
      seg.data.assign(data->begin(), data->end());
      module_.data.push_back(std::move(seg));
    }
    return {};
  }

  ByteReader reader_;
  Module module_;
};

#undef TRY

}  // namespace

const FuncType& Module::func_type(std::uint32_t index) const {
  std::uint32_t i = 0;
  for (const auto& imp : imports) {
    if (imp.kind != ImportKind::Func) continue;
    if (i == index) return types[imp.type_index];
    ++i;
  }
  return types[functions[index - i]];
}

Result<Module> decode_module(ByteView binary) { return Decoder(binary).run(); }

}  // namespace watz::wasm
