// WebAssembly binary format decoder (spec 1.0 core, sections 0-11).
#pragma once

#include "common/result.hpp"
#include "wasm/module.hpp"

namespace watz::wasm {

/// Decodes a binary module. Structural errors (bad magic, truncated
/// sections, malformed LEB) are reported; type errors are left to validate().
Result<Module> decode_module(ByteView binary);

}  // namespace watz::wasm
