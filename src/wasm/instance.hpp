// Module instantiation and execution entry points.
//
// An Instance owns the sandbox: linear memory, globals, table and the
// executable form of the code. Two execution modes mirror the paper's
// runtime (SS III "Execution modes"):
//   * ExecMode::Interp — a naive in-place bytecode interpreter;
//   * ExecMode::Aot    — code pre-translated at load time into a resolved
//     instruction stream (the architectural stand-in for WAMR's AOT mode:
//     translate once when the module is loaded, no compiler at run time).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "wasm/module.hpp"

namespace watz::wasm {

class Instance;

namespace jit {
class TierSet;
}

/// Host (native) function: receives the instance (for memory access) and the
/// argument values; returns results or a trap message.
using HostFn =
    std::function<Result<std::vector<Value>>(Instance&, std::span<const Value>)>;

/// Import database: (module, name) -> host function. WaTZ registers the
/// WASI and WASI-RA implementations here before instantiating guest code.
class ImportResolver {
 public:
  void add_function(std::string module, std::string name, FuncType type, HostFn fn);

  struct Entry {
    FuncType type;
    HostFn fn;
  };
  const Entry* find(const std::string& module, const std::string& name) const;

 private:
  std::unordered_map<std::string, Entry> funcs_;  // key: module + '\0' + name
};

/// Sandboxed linear memory. All guest accesses are bounds-checked; the
/// backing store is private to the instance (the Wasm SFI property WaTZ
/// relies on to isolate mutually distrusting applications, SS III).
class Memory {
 public:
  explicit Memory(Limits limits);

  std::uint32_t pages() const noexcept { return static_cast<std::uint32_t>(data_.size() / kPageSize); }
  std::size_t byte_size() const noexcept { return data_.size(); }
  std::uint8_t* data() noexcept { return data_.data(); }
  const std::uint8_t* data() const noexcept { return data_.data(); }

  /// Grows by `delta` pages; returns previous page count or -1 on failure.
  std::int32_t grow(std::uint32_t delta);

  bool in_bounds(std::uint64_t addr, std::uint64_t len) const noexcept {
    return addr + len <= data_.size() && addr + len >= addr;
  }

  /// Host-side checked accessors (used by WASI shims).
  Status copy_in(std::uint32_t addr, ByteView src);
  Result<Bytes> copy_out(std::uint32_t addr, std::uint32_t len) const;

 private:
  std::vector<std::uint8_t> data_;
  Limits limits_;
};

enum class ExecMode { Interp, Aot };

/// Pre-decoded instruction for the AOT executor (see compile.cpp).
struct Instr {
  std::uint16_t op = 0;
  std::uint16_t aux = 0;
  std::uint32_t a = 0;
  std::uint64_t imm = 0;
};

struct BrTableEntry {
  std::uint32_t target = 0;
  std::uint16_t keep = 0;
  std::uint32_t drop = 0;
};

struct CompiledFunc {
  std::vector<Instr> code;
  std::vector<BrTableEntry> tables;
  std::uint32_t num_params = 0;
  std::uint32_t num_locals = 0;  // params + declared locals
  std::uint32_t result_arity = 0;
  std::uint32_t max_operand_height = 0;
};

/// One callable function slot in the unified index space.
struct FuncSlot {
  FuncType type;
  bool is_host = false;
  HostFn host;                       // if is_host
  std::uint32_t module_func_index = 0;  // index into Module::code otherwise
};

struct GlobalSlot {
  ValType type;
  bool mutable_ = false;
  std::uint64_t bits = 0;
};

class Instance {
 public:
  /// Decodes nothing: takes a decoded module, validates it, links imports,
  /// evaluates segments and (in AOT mode) pre-compiles every function.
  /// Runs the start function if present.
  ///
  /// `precompiled` lets the embedder run the AOT translation ("loading"
  /// phase in the paper's Fig 4 breakdown) separately via
  /// precompile_module() and hand the result in; when empty and mode==Aot,
  /// translation happens inside instantiate().
  ///
  /// `already_validated` skips the validation pass for modules the embedder
  /// has run through validate_module() before (e.g. a cached prepared
  /// module being re-instantiated); passing an unvalidated module with the
  /// flag set is undefined behaviour at execution time.
  static Result<std::unique_ptr<Instance>> instantiate(
      Module module, const ImportResolver& imports, ExecMode mode,
      std::vector<CompiledFunc> precompiled = {}, bool already_validated = false);

  /// Zero-copy variant: the module (and its AOT form) stay owned by the
  /// caller -- typically a module cache -- and are only referenced. Both
  /// are immutable during execution, so any number of instances can share
  /// one prepared image; per-instance state (memory, globals, table) is
  /// still private. `precompiled` may be null (required for Aot mode
  /// unless the module has no code).
  static Result<std::unique_ptr<Instance>> instantiate_shared(
      std::shared_ptr<const Module> module, const ImportResolver& imports,
      ExecMode mode,
      std::shared_ptr<const std::vector<CompiledFunc>> precompiled = nullptr,
      bool already_validated = false);

  /// Invokes an exported function by name.
  Result<std::vector<Value>> invoke(const std::string& export_name,
                                    std::span<const Value> args);

  /// Resets all per-instance sandbox state -- linear memory (re-created at
  /// its initial size), globals, table, element/data segments, start
  /// function -- to the freshly-instantiated state. Instance pools call
  /// this before handing a sandbox to the next caller so no guest state
  /// leaks between invocations.
  Status reinitialize();

  /// Invokes by unified function index (used by call opcodes and tests).
  Result<std::vector<Value>> invoke_index(std::uint32_t func_index,
                                          std::span<const Value> args);

  Memory* memory() noexcept { return memory_ ? memory_.get() : nullptr; }
  const Module& module() const noexcept { return *module_; }
  ExecMode mode() const noexcept { return mode_; }

  Result<std::uint32_t> find_exported_func(const std::string& name) const;

  /// Opaque per-instance context slot for the embedder (WaTZ stores the
  /// per-application WASI state here).
  void set_user_data(void* p) noexcept { user_data_ = p; }
  void* user_data() const noexcept { return user_data_; }

  /// Executor internals (public to the execution engine only by convention).
  std::vector<FuncSlot> funcs;
  std::vector<GlobalSlot> globals;
  std::vector<std::int64_t> table;  // -1 == null, otherwise func index
  /// Parallel to module().code (AOT mode). A view into the shared compiled
  /// store: instances of one prepared module all read the same image.
  std::span<const CompiledFunc> compiled;
  /// Optional native-codegen tier shared by every instance of one prepared
  /// module (owned by the embedder, e.g. PreparedModule). When set, the AOT
  /// entry point dispatches hot functions to installed native entries and
  /// feeds the per-function heat counters. Null means pure AOT-stream.
  std::shared_ptr<jit::TierSet> tier;

 private:
  Instance() = default;

  /// (Re)builds memory/globals/table and evaluates segments from module_.
  Status reset_state();

  std::shared_ptr<const Module> module_;
  std::shared_ptr<const std::vector<CompiledFunc>> compiled_store_;
  std::unique_ptr<Memory> memory_;
  ExecMode mode_ = ExecMode::Aot;
  void* user_data_ = nullptr;
};

/// Runs the AOT translation for every function of a *validated* module.
Result<std::vector<CompiledFunc>> precompile_module(const Module& module);

/// Thrown by executors on a sandbox trap; converted to Result at the
/// invoke() boundary.
struct TrapException {
  std::string message;
};

/// Entry points implemented by the two executors.
void exec_call_aot(Instance& inst, std::uint32_t func_index,
                   std::vector<std::uint64_t>& stack, std::size_t& sp, int depth);
void exec_call_interp(Instance& inst, std::uint32_t func_index,
                      std::vector<std::uint64_t>& stack, std::size_t& sp, int depth);

inline constexpr int kMaxCallDepth = 512;

}  // namespace watz::wasm
