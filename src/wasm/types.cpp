#include "wasm/types.hpp"

#include <cstring>

namespace watz::wasm {

const char* val_type_name(ValType t) {
  switch (t) {
    case ValType::I32: return "i32";
    case ValType::I64: return "i64";
    case ValType::F32: return "f32";
    case ValType::F64: return "f64";
    case ValType::FuncRef: return "funcref";
  }
  return "?";
}

Value Value::from_f32(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  return {ValType::F32, bits};
}

Value Value::from_f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  return {ValType::F64, bits};
}

float Value::f32() const {
  float v;
  const std::uint32_t b = static_cast<std::uint32_t>(bits);
  std::memcpy(&v, &b, 4);
  return v;
}

double Value::f64() const {
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

}  // namespace watz::wasm
