#include "wasm/builder.hpp"

#include <cstring>
#include <stdexcept>

namespace watz::wasm {

CodeEmitter& CodeEmitter::f32_const(float v) {
  code_.push_back(kF32Const);
  std::uint32_t bits;
  std::memcpy(&bits, &v, 4);
  put_u32le(code_, bits);
  return *this;
}

CodeEmitter& CodeEmitter::f64_const(double v) {
  code_.push_back(kF64Const);
  std::uint64_t bits;
  std::memcpy(&bits, &v, 8);
  put_u64le(code_, bits);
  return *this;
}

std::uint32_t ModuleBuilder::add_type(FuncType type) {
  for (std::uint32_t i = 0; i < types_.size(); ++i)
    if (types_[i] == type) return i;
  types_.push_back(std::move(type));
  return static_cast<std::uint32_t>(types_.size() - 1);
}

std::uint32_t ModuleBuilder::import_function(std::string module, std::string name,
                                             FuncType type) {
  if (!funcs_.empty())
    throw std::logic_error("ModuleBuilder: declare imports before local functions");
  const std::uint32_t ti = add_type(std::move(type));
  imports_.push_back(ImportFunc{std::move(module), std::move(name), ti});
  return static_cast<std::uint32_t>(imports_.size() - 1);
}

std::uint32_t ModuleBuilder::add_function(FuncType type, std::vector<ValType> locals) {
  const std::uint32_t ti = add_type(std::move(type));
  funcs_.push_back(LocalFunc{ti, std::move(locals), {}});
  return static_cast<std::uint32_t>(imports_.size() + funcs_.size() - 1);
}

void ModuleBuilder::set_body(std::uint32_t func_index, Bytes code) {
  const std::size_t local = func_index - imports_.size();
  if (local >= funcs_.size()) throw std::out_of_range("set_body: bad function index");
  // The function-terminating `end` is always appended here; bodies contain
  // instruction code only.
  code.push_back(kEnd);
  funcs_[local].body = std::move(code);
}

void ModuleBuilder::set_locals(std::uint32_t func_index, std::vector<ValType> locals) {
  const std::size_t local = func_index - imports_.size();
  if (local >= funcs_.size()) throw std::out_of_range("set_locals: bad function index");
  funcs_[local].locals = std::move(locals);
}

void ModuleBuilder::add_memory(std::uint32_t min_pages, std::uint32_t max_pages) {
  has_memory_ = true;
  memory_.min = min_pages;
  memory_.has_max = max_pages != 0;
  memory_.max = max_pages;
}

void ModuleBuilder::add_table(std::uint32_t min, std::uint32_t max) {
  has_table_ = true;
  table_.min = min;
  table_.has_max = max != 0;
  table_.max = max;
}

std::uint32_t ModuleBuilder::add_global(ValType type, bool mutable_, std::int64_t init) {
  globals_.push_back(GlobalDef{type, mutable_, init, 0});
  return static_cast<std::uint32_t>(globals_.size() - 1);
}

std::uint32_t ModuleBuilder::add_global_f64(bool mutable_, double init) {
  globals_.push_back(GlobalDef{ValType::F64, mutable_, 0, init});
  return static_cast<std::uint32_t>(globals_.size() - 1);
}

void ModuleBuilder::add_export(std::string name, ImportKind kind, std::uint32_t index) {
  exports_.push_back(ExportDef{std::move(name), kind, index});
}

void ModuleBuilder::add_element(std::uint32_t offset, std::vector<std::uint32_t> funcs) {
  elements_.push_back(ElemDef{offset, std::move(funcs)});
}

void ModuleBuilder::add_data(std::uint32_t offset, Bytes data) {
  data_.push_back(DataDef{offset, std::move(data)});
}

void ModuleBuilder::add_custom(std::string name, Bytes payload) {
  custom_.push_back(CustomDef{std::move(name), std::move(payload)});
}

namespace {

void write_name(Bytes& out, const std::string& name) {
  write_uleb(out, name.size());
  append(out, ByteView(reinterpret_cast<const std::uint8_t*>(name.data()), name.size()));
}

void write_section(Bytes& out, std::uint8_t id, const Bytes& payload) {
  out.push_back(id);
  write_uleb(out, payload.size());
  append(out, payload);
}

void write_limits(Bytes& out, const Limits& lim) {
  out.push_back(lim.has_max ? 1 : 0);
  write_uleb(out, lim.min);
  if (lim.has_max) write_uleb(out, lim.max);
}

}  // namespace

Bytes ModuleBuilder::build() const {
  Bytes out;
  put_u32le(out, 0x6d736100);
  put_u32le(out, 1);

  if (!types_.empty()) {
    Bytes s;
    write_uleb(s, types_.size());
    for (const FuncType& t : types_) {
      s.push_back(0x60);
      write_uleb(s, t.params.size());
      for (ValType p : t.params) s.push_back(static_cast<std::uint8_t>(p));
      write_uleb(s, t.results.size());
      for (ValType r : t.results) s.push_back(static_cast<std::uint8_t>(r));
    }
    write_section(out, 1, s);
  }

  if (!imports_.empty()) {
    Bytes s;
    write_uleb(s, imports_.size());
    for (const ImportFunc& imp : imports_) {
      write_name(s, imp.module);
      write_name(s, imp.name);
      s.push_back(0);  // function
      write_uleb(s, imp.type_index);
    }
    write_section(out, 2, s);
  }

  if (!funcs_.empty()) {
    Bytes s;
    write_uleb(s, funcs_.size());
    for (const LocalFunc& f : funcs_) write_uleb(s, f.type_index);
    write_section(out, 3, s);
  }

  if (has_table_) {
    Bytes s;
    write_uleb(s, 1);
    s.push_back(0x70);
    write_limits(s, table_);
    write_section(out, 4, s);
  }

  if (has_memory_) {
    Bytes s;
    write_uleb(s, 1);
    write_limits(s, memory_);
    write_section(out, 5, s);
  }

  if (!globals_.empty()) {
    Bytes s;
    write_uleb(s, globals_.size());
    for (const GlobalDef& g : globals_) {
      s.push_back(static_cast<std::uint8_t>(g.type));
      s.push_back(g.mutable_ ? 1 : 0);
      if (g.type == ValType::I64) {
        s.push_back(kI64Const);
        write_sleb(s, g.init);
      } else if (g.type == ValType::F64) {
        s.push_back(kF64Const);
        std::uint64_t bits;
        std::memcpy(&bits, &g.f64_init, 8);
        put_u64le(s, bits);
      } else {
        s.push_back(kI32Const);
        write_sleb(s, static_cast<std::int32_t>(g.init));
      }
      s.push_back(kEnd);
    }
    write_section(out, 6, s);
  }

  if (!exports_.empty()) {
    Bytes s;
    write_uleb(s, exports_.size());
    for (const ExportDef& e : exports_) {
      write_name(s, e.name);
      s.push_back(static_cast<std::uint8_t>(e.kind));
      write_uleb(s, e.index);
    }
    write_section(out, 7, s);
  }

  if (start_) {
    Bytes s;
    write_uleb(s, *start_);
    write_section(out, 8, s);
  }

  if (!elements_.empty()) {
    Bytes s;
    write_uleb(s, elements_.size());
    for (const ElemDef& e : elements_) {
      write_uleb(s, 0);
      s.push_back(kI32Const);
      write_sleb(s, static_cast<std::int32_t>(e.offset));
      s.push_back(kEnd);
      write_uleb(s, e.funcs.size());
      for (std::uint32_t f : e.funcs) write_uleb(s, f);
    }
    write_section(out, 9, s);
  }

  if (!funcs_.empty()) {
    Bytes s;
    write_uleb(s, funcs_.size());
    for (const LocalFunc& f : funcs_) {
      Bytes body;
      // Compress locals into (count, type) runs.
      std::vector<std::pair<std::uint32_t, ValType>> runs;
      for (ValType t : f.locals) {
        if (!runs.empty() && runs.back().second == t) {
          ++runs.back().first;
        } else {
          runs.push_back({1, t});
        }
      }
      write_uleb(body, runs.size());
      for (const auto& [count, type] : runs) {
        write_uleb(body, count);
        body.push_back(static_cast<std::uint8_t>(type));
      }
      Bytes code = f.body;
      if (code.empty()) code.push_back(kEnd);
      append(body, code);
      write_uleb(s, body.size());
      append(s, body);
    }
    write_section(out, 10, s);
  }

  if (!data_.empty()) {
    Bytes s;
    write_uleb(s, data_.size());
    for (const DataDef& d : data_) {
      write_uleb(s, 0);
      s.push_back(kI32Const);
      write_sleb(s, static_cast<std::int32_t>(d.offset));
      s.push_back(kEnd);
      write_uleb(s, d.data.size());
      append(s, d.data);
    }
    write_section(out, 11, s);
  }

  for (const CustomDef& c : custom_) {
    Bytes s;
    write_name(s, c.name);
    append(s, c.payload);
    write_section(out, 0, s);
  }

  return out;
}

}  // namespace watz::wasm
