// One-pass baseline codegen: lowers a validated AOT-stream function
// (`CompiledFunc`) to x86-64 via the Emitter.
//
// The key trick is STATIC OPERAND-HEIGHT TRACKING. The resolved stream has
// exactly one operand-stack height per pc (the prescan derives it, seeding
// branch targets and verifying joins), so every push/pop becomes a move
// to/from a fixed frame slot [rbp + (num_locals + h)*8] and the dynamic sp
// only exists at helper-call boundaries, where it is spilled to
// JitContext::sp and re-derived afterwards. Functions whose streams violate
// the invariants the baseline relies on (multi-value branches, height
// joins that disagree) are refused — compile_function returns empty and
// the tier keeps them on the AOT stream.
//
// Frame/register map (see jit.hpp): r15 = JitContext*, rbp = &stack[base],
// r13 = memory base, r14 = memory size; rax/rcx/rdx are scratch. After any
// helper call the pinned rbp/r13/r14 are reloaded from the context and the
// trap flag is checked (helpers do not unwind; see exec_native.cpp).
#include <array>
#include <cstddef>
#include <limits>
#include <optional>

#include "wasm/compile.hpp"
#include "wasm/jit/emitter.hpp"
#include "wasm/jit/jit.hpp"
#include "wasm/opcodes.hpp"

namespace watz::wasm::jit {

// Generated code hard-codes these offsets; a layout change must show up as
// a compile error here, not as memory corruption at run time.
static_assert(offsetof(JitContext, stack_base) == 0);
static_assert(offsetof(JitContext, sp) == 8);
static_assert(offsetof(JitContext, base) == 16);
static_assert(offsetof(JitContext, mem_base) == 24);
static_assert(offsetof(JitContext, mem_size) == 32);
static_assert(offsetof(JitContext, trap_code) == 72);
static_assert(offsetof(JitContext, globals) == 48);
static_assert(sizeof(GlobalSlot) == 16);
static_assert(offsetof(GlobalSlot, bits) == 8);

namespace {

struct CmpInfo {
  Cond cc;
  bool wide;
  bool eqz;
};

std::optional<CmpInfo> cmp_info(std::uint16_t op) {
  switch (op) {
    case kI32Eqz: return CmpInfo{CC_E, false, true};
    case kI64Eqz: return CmpInfo{CC_E, true, true};
    default: break;
  }
  if (op >= kI32Eq && op <= kI64GeU) {
    const bool wide = op >= kI64Eq;
    static constexpr Cond kOrder[10] = {CC_E, CC_NE, CC_L,  CC_B,  CC_G,
                                        CC_A, CC_LE, CC_BE, CC_GE, CC_AE};
    const std::uint16_t rel = op - (wide ? kI64Eq : kI32Eq);
    return CmpInfo{kOrder[rel], wide, false};
  }
  return std::nullopt;
}

/// Net operand-stack effect of a non-branching op, or nullopt for an op the
/// prescan does not recognise (=> refuse the function).
std::optional<int> op_delta(const Module& m, const Instr& ins) {
  const std::uint16_t op = ins.op;
  switch (op) {
    case kNop: return 0;
    case kDrop: return -1;
    case kSelect: return -2;
    case kLocalGet:
    case kGlobalGet:
    case kMemorySize:
    case kI32Const:
    case kI64Const:
    case kF32Const:
    case kF64Const: return 1;
    case kLocalSet:
    case kGlobalSet: return -1;
    case kLocalTee:
    case kMemoryGrow: return 0;
    case kInstrMemCopy:
    case kInstrMemFill: return -3;
    case kCall: {
      const FuncType& t = m.func_type(ins.a);
      return static_cast<int>(t.results.size()) - static_cast<int>(t.params.size());
    }
    case kCallIndirect: {
      if (ins.a >= m.types.size()) return std::nullopt;
      const FuncType& t = m.types[ins.a];
      return -1 + static_cast<int>(t.results.size()) -
             static_cast<int>(t.params.size());
    }
    default: break;
  }
  if (op >= kI32Load && op <= kI64Load32U) return 0;
  if (op >= kI32Store && op <= kI64Store32) return -2;
  if (op == kI32Eqz || op == kI64Eqz) return 0;
  if (op >= kI32Eq && op <= kI64GeU) return -1;   // binary int comparisons
  if (op >= kF32Eq && op <= kF64Ge) return -1;    // binary float comparisons
  if (op >= kI32Clz && op <= kI32Popcnt) return 0;
  if (op >= kI32Add && op <= kI32Rotr) return -1;
  if (op >= kI64Clz && op <= kI64Popcnt) return 0;
  if (op >= kI64Add && op <= kI64Rotr) return -1;
  if (op >= kF32Abs && op <= kF32Sqrt) return 0;
  if (op >= kF32Add && op <= kF32Copysign) return -1;
  if (op >= kF64Abs && op <= kF64Sqrt) return 0;
  if (op >= kF64Add && op <= kF64Copysign) return -1;
  if (op >= kI32WrapI64 && op <= kI64Extend32S) return 0;  // conversions
  if (op >= kInstrTruncSatBase && op < kInstrTruncSatBase + 8) return 0;
  return std::nullopt;
}

class FnCompiler {
 public:
  FnCompiler(const Module& module, const CompiledFunc& func)
      : module_(module), func_(func), num_locals_(func.num_locals) {}

  bool run() {
    if (!prescan()) return false;
    emit_prologue();
    if (!emit_body()) return false;
    emit_tail();
    return true;
  }

  std::vector<std::uint8_t> take() { return std::move(e_.buf); }

 private:
  // -- prescan ----------------------------------------------------------------

  bool prescan() {
    const auto& code = func_.code;
    const std::size_t n = code.size();
    if (n == 0 || func_.result_arity > 1) return false;
    height_.assign(n, -1);
    is_target_.assign(n, 0);
    dead_.assign(n, 0);
    int cur = 0;
    bool known = true;  // false after an unconditional control transfer
    for (std::size_t pc = 0; pc < n; ++pc) {
      if (height_[pc] >= 0) {
        if (known && cur != height_[pc]) return false;  // join disagrees
        cur = height_[pc];
        known = true;
      } else if (!known) {
        // Unreachable and never branched to (e.g. the implicit end-return
        // after an explicit `return`): control cannot arrive here, so the
        // instruction is simply not emitted. Branches inside a dead region
        // are skipped too — they cannot execute, so they seed nothing.
        dead_[pc] = 1;
        continue;
      } else {
        height_[pc] = cur;
      }
      const Instr& ins = code[pc];
      auto seed = [&](std::uint32_t target, int h) {
        if (target >= n || h < 0) return false;
        is_target_[target] = 1;
        if (target <= pc) return height_[target] == h;  // backward edge
        if (height_[target] >= 0 && height_[target] != h) return false;
        height_[target] = h;
        return true;
      };
      switch (ins.op) {
        case kUnreachable:
          known = false;
          break;
        case kBr:
          if (ins.aux > 1) return false;
          if (!seed(ins.a, cur - static_cast<int>(ins.imm))) return false;
          known = false;
          break;
        case kBrIf:
          if (ins.aux > 1) return false;
          if (!seed(ins.a, (cur - 1) - static_cast<int>(ins.imm))) return false;
          cur -= 1;
          break;
        case kInstrBrIfFalse:
          if (!seed(ins.a, cur - 1)) return false;
          cur -= 1;
          break;
        case kBrTable: {
          if (ins.a + ins.imm >= func_.tables.size()) return false;
          for (std::uint64_t i = 0; i <= ins.imm; ++i) {
            const BrTableEntry& entry = func_.tables[ins.a + i];
            if (entry.keep > 1) return false;
            if (!seed(entry.target, (cur - 1) - static_cast<int>(entry.drop)))
              return false;
          }
          known = false;
          break;
        }
        case kReturn:
          if (ins.aux > 1) return false;
          known = false;
          break;
        default: {
          const auto delta = op_delta(module_, ins);
          if (!delta) return false;
          cur += *delta;
          break;
        }
      }
      if (known &&
          (cur < 0 || cur > static_cast<int>(func_.max_operand_height))) {
        return false;
      }
    }
    return true;
  }

  // -- frame helpers ----------------------------------------------------------

  std::int32_t slot_disp(int h) const {
    return static_cast<std::int32_t>((num_locals_ + h) * 8);
  }
  void load_slot(Reg r, int h, bool wide = true) {
    if (wide)
      e_.load64(r, RBP, slot_disp(h));
    else
      e_.load32(r, RBP, slot_disp(h));
  }
  void store_slot(int h, Reg r) { e_.store64(RBP, slot_disp(h), r); }

  /// ctx->sp = ctx->base + num_locals + h (the dynamic height helpers see).
  void spill_sp(int h) {
    e_.load64(RAX, R15, 16);
    e_.lea_disp(RAX, RAX, static_cast<std::int32_t>(num_locals_ + h));
    e_.store64(R15, 8, RAX);
  }

  /// Re-derives rbp/r13/r14 from the context (a helper may have moved the
  /// operand-stack storage or grown memory).
  void reload_pinned() {
    e_.load64(RAX, R15, 0);   // stack_base
    e_.load64(RCX, R15, 16);  // base
    e_.lea_scaled8(RBP, RAX, RCX);
    e_.load64(R13, R15, 24);  // mem_base
    e_.load64(R14, R15, 32);  // mem_size
  }

  void trap_check() {
    e_.cmp_m64_imm8(R15, 72, 0);
    exit_sites_.push_back(e_.jcc(CC_NE));
  }

  template <typename Fn>
  void call_helper(Fn* fn) {
    e_.mov_ri64(RAX, reinterpret_cast<std::uint64_t>(fn));
    e_.call_r(RAX);
  }

  void emit_trap_jump(int code) {
    trap_sites_[code].push_back(e_.jmp());
  }

  /// Computes the effective address (addr32 + offset) into rax and emits
  /// the bounds check `ea + width <= mem_size` (clobbers rcx).
  void emit_addr(int h_addr, std::uint64_t offset, std::uint32_t width) {
    e_.load32(RAX, RBP, slot_disp(h_addr));
    if (offset != 0) {
      if (offset <= 0x7fffffff) {
        e_.lea_disp(RAX, RAX, static_cast<std::int32_t>(offset));
      } else {
        e_.mov_ri32(RCX, static_cast<std::uint32_t>(offset));
        e_.add_rr(RAX, RCX, true);
      }
    }
    e_.lea_disp(RCX, RAX, static_cast<std::int32_t>(width));
    e_.cmp_rr(RCX, R14, true);
    trap_sites_[kTrapOob].push_back(e_.jcc(CC_A));
  }

  void emit_compare_bool(const CmpInfo& ci, int h) {
    if (ci.eqz) {
      load_slot(RAX, h - 1, ci.wide);
      e_.test_rr(RAX, RAX, ci.wide);
      e_.setcc(CC_E, RAX);
      e_.movzx8_rr(RAX, RAX);
      store_slot(h - 1, RAX);
    } else {
      load_slot(RAX, h - 2, ci.wide);
      load_slot(RCX, h - 1, ci.wide);
      e_.cmp_rr(RAX, RCX, ci.wide);
      e_.setcc(ci.cc, RAX);
      e_.movzx8_rr(RAX, RAX);
      store_slot(h - 2, RAX);
    }
  }

  /// div/rem with the wasm trap/edge semantics (divide-by-zero trap,
  /// INT_MIN/-1 overflow trap for div_s, INT_MIN%-1 == 0 for rem_s).
  void emit_div(int h, bool wide, bool is_signed, bool is_rem) {
    load_slot(RAX, h - 2, wide);
    load_slot(RCX, h - 1, wide);
    e_.test_rr(RCX, RCX, wide);
    trap_sites_[kTrapDivZero].push_back(e_.jcc(CC_E));
    Reg result = RAX;
    if (is_signed) {
      if (is_rem) {
        // divisor == -1 => remainder 0 (also sidesteps the INT_MIN idiv #DE)
        e_.cmp_ri(RCX, -1, wide);
        const std::size_t zero_site = e_.jcc(CC_E);
        if (wide)
          e_.cqo();
        else
          e_.cdq();
        e_.idiv(RCX, wide);
        const std::size_t done_site = e_.jmp();
        e_.patch_rel32(zero_site, e_.size());
        e_.xor_rr(RDX, RDX, false);
        e_.patch_rel32(done_site, e_.size());
        result = RDX;
      } else {
        if (wide) {
          e_.mov_ri64(RDX, 0x8000000000000000ull);
          e_.cmp_rr(RAX, RDX, true);
        } else {
          e_.cmp_ri(RAX, std::numeric_limits<std::int32_t>::min(), false);
        }
        const std::size_t ok_site = e_.jcc(CC_NE);
        e_.cmp_ri(RCX, -1, wide);
        trap_sites_[kTrapOverflow].push_back(e_.jcc(CC_E));
        e_.patch_rel32(ok_site, e_.size());
        if (wide)
          e_.cqo();
        else
          e_.cdq();
        e_.idiv(RCX, wide);
      }
    } else {
      e_.xor_rr(RDX, RDX, false);
      e_.div(RCX, wide);
      if (is_rem) result = RDX;
    }
    store_slot(h - 2, result);
  }

  void emit_fallback(const Instr& ins, int h) {
    spill_sp(h);
    e_.mov_rr(RDI, R15);
    e_.mov_ri32(RSI, ins.op);
    call_helper(&jit_helper_fallback);
    reload_pinned();
    trap_check();
  }

  // -- emission ---------------------------------------------------------------

  void emit_prologue() {
    e_.push_r(RBP);
    e_.push_r(RBX);
    e_.push_r(R12);
    e_.push_r(R13);
    e_.push_r(R14);
    e_.push_r(R15);
    e_.sub_rsp8();  // keeps rsp 16-byte aligned at helper call sites
    e_.mov_rr(R15, RDI);
    reload_pinned();
  }

  bool emit_body() {
    const auto& code = func_.code;
    const std::size_t n = code.size();
    offsets_.assign(n, 0);
    for (std::size_t pc = 0; pc < n; ++pc) {
      offsets_[pc] = e_.size();
      if (dead_[pc]) continue;  // unreachable: prescan proved nothing lands here
      const Instr& ins = code[pc];
      const int h = height_[pc];

      // Fuse comparison + conditional branch into cmp+jcc when nothing can
      // jump between them and the taken edge needs no stack adjustment.
      if (const auto ci = cmp_info(ins.op); ci && pc + 1 < n && !is_target_[pc + 1]) {
        const Instr& br = code[pc + 1];
        const bool brif = br.op == kBrIf && br.imm == 0;
        const bool brif_false = br.op == kInstrBrIfFalse;
        if (brif || brif_false) {
          if (ci->eqz) {
            load_slot(RAX, h - 1, ci->wide);
            e_.test_rr(RAX, RAX, ci->wide);
            fixups_.push_back({e_.jcc(brif ? CC_E : CC_NE), br.a});
          } else {
            load_slot(RAX, h - 2, ci->wide);
            load_slot(RCX, h - 1, ci->wide);
            e_.cmp_rr(RAX, RCX, ci->wide);
            const Cond cc = brif ? ci->cc : static_cast<Cond>(ci->cc ^ 1);
            fixups_.push_back({e_.jcc(cc), br.a});
          }
          ++pc;
          offsets_[pc] = e_.size();
          continue;
        }
      }

      switch (ins.op) {
        case kNop:
          break;
        case kUnreachable:
          emit_trap_jump(kTrapUnreachable);
          break;

        case kBr: {
          if (ins.aux == 1 && ins.imm > 0) {
            load_slot(RAX, h - 1);
            store_slot(h - 1 - static_cast<int>(ins.imm), RAX);
          }
          fixups_.push_back({e_.jmp(), ins.a});
          break;
        }
        case kBrIf: {
          load_slot(RAX, h - 1);
          e_.test_rr(RAX, RAX, true);
          if (ins.aux == 1 && ins.imm > 0) {
            const std::size_t skip = e_.jcc(CC_E);
            load_slot(RAX, h - 2);
            store_slot(h - 2 - static_cast<int>(ins.imm), RAX);
            fixups_.push_back({e_.jmp(), ins.a});
            e_.patch_rel32(skip, e_.size());
          } else {
            fixups_.push_back({e_.jcc(CC_NE), ins.a});
          }
          break;
        }
        case kInstrBrIfFalse: {
          load_slot(RAX, h - 1);
          e_.test_rr(RAX, RAX, true);
          fixups_.push_back({e_.jcc(CC_E), ins.a});
          break;
        }
        case kBrTable: {
          spill_sp(h);
          e_.mov_rr(RDI, R15);
          e_.mov_ri64(RSI, reinterpret_cast<std::uint64_t>(&func_.tables[ins.a]));
          e_.mov_ri32(RDX, static_cast<std::uint32_t>(ins.imm));
          call_helper(&jit_helper_br_table);
          // rax = target pc. The helper only memmoves within the stack, so
          // the pinned registers stay valid — dispatch straight through the
          // appended pc->offset table (position-independent via rip).
          const std::size_t table_at = e_.lea_rip(RCX);
          e_.load32_scaled4(RDX, RCX, RAX);
          const std::size_t base_at = e_.lea_rip(RCX);
          e_.add_rr(RCX, RDX, true);
          e_.jmp_r(RCX);
          table_sites_.push_back({table_at, base_at});
          break;
        }
        case kReturn: {
          if (ins.aux == 1) {
            load_slot(RAX, h - 1);
            e_.store64(RBP, 0, RAX);  // result to stack[base]
          }
          e_.load64(RAX, R15, 16);
          if (ins.aux != 0)
            e_.lea_disp(RAX, RAX, static_cast<std::int32_t>(ins.aux));
          e_.store64(R15, 8, RAX);  // ctx->sp = base + keep
          exit_sites_.push_back(e_.jmp());
          break;
        }

        case kCall: {
          spill_sp(h);
          e_.mov_rr(RDI, R15);
          e_.mov_ri32(RSI, ins.a);
          call_helper(&jit_helper_call);
          reload_pinned();
          trap_check();
          break;
        }
        case kCallIndirect: {
          spill_sp(h);
          e_.mov_rr(RDI, R15);
          e_.mov_ri32(RSI, ins.a);
          call_helper(&jit_helper_call_indirect);
          reload_pinned();
          trap_check();
          break;
        }

        case kDrop:
          break;
        case kSelect: {
          load_slot(RAX, h - 1);  // condition
          load_slot(RCX, h - 2);  // v2
          load_slot(RDX, h - 3);  // v1
          e_.test_rr(RAX, RAX, true);
          e_.cmovcc(CC_E, RDX, RCX, true);
          store_slot(h - 3, RDX);
          break;
        }

        case kLocalGet:
          e_.load64(RAX, RBP, static_cast<std::int32_t>(ins.a * 8));
          store_slot(h, RAX);
          break;
        case kLocalSet:
          load_slot(RAX, h - 1);
          e_.store64(RBP, static_cast<std::int32_t>(ins.a * 8), RAX);
          break;
        case kLocalTee:
          load_slot(RAX, h - 1);
          e_.store64(RBP, static_cast<std::int32_t>(ins.a * 8), RAX);
          break;
        case kGlobalGet:
          e_.load64(RAX, R15, 48);
          e_.load64(RAX, RAX, static_cast<std::int32_t>(ins.a * 16 + 8));
          store_slot(h, RAX);
          break;
        case kGlobalSet:
          e_.load64(RCX, R15, 48);
          load_slot(RAX, h - 1);
          e_.store64(RCX, static_cast<std::int32_t>(ins.a * 16 + 8), RAX);
          break;

        case kMemorySize:
          e_.mov_rr(RAX, R14);
          e_.mov_ri32(RCX, 16);  // bytes -> 64 KiB pages
          e_.shift_cl(5, RAX, true);
          store_slot(h, RAX);
          break;
        case kMemoryGrow:
          spill_sp(h);
          e_.mov_rr(RDI, R15);
          call_helper(&jit_helper_memory_grow);
          reload_pinned();  // memory may have moved; grow itself never traps
          break;

        case kI32Const:
        case kI64Const:
        case kF32Const:
        case kF64Const:
          if (ins.imm <= 0xffffffffull)
            e_.mov_ri32(RAX, static_cast<std::uint32_t>(ins.imm));
          else
            e_.mov_ri64(RAX, ins.imm);
          store_slot(h, RAX);
          break;

        case kInstrMemCopy:
          spill_sp(h);
          e_.mov_rr(RDI, R15);
          call_helper(&jit_helper_mem_copy);
          reload_pinned();
          trap_check();
          break;
        case kInstrMemFill:
          spill_sp(h);
          e_.mov_rr(RDI, R15);
          call_helper(&jit_helper_mem_fill);
          reload_pinned();
          trap_check();
          break;

        default:
          if (!emit_default(ins, h)) return false;
          break;
      }
    }
    return true;
  }

  /// Loads, stores, numeric ops, conversions — everything table-shaped.
  bool emit_default(const Instr& ins, int h) {
    const std::uint16_t op = ins.op;

    if (op >= kI32Load && op <= kI64Load32U) {
      struct Shape {
        std::uint8_t width_log2;
        bool sign, wide;
      };
      static constexpr Shape kLoads[14] = {
          {2, false, false},  // i32.load
          {3, false, true},   // i64.load
          {2, false, false},  // f32.load (raw bits)
          {3, false, true},   // f64.load
          {0, true, false},   // i32.load8_s
          {0, false, false},  // i32.load8_u
          {1, true, false},   // i32.load16_s
          {1, false, false},  // i32.load16_u
          {0, true, true},    // i64.load8_s
          {0, false, false},  // i64.load8_u
          {1, true, true},    // i64.load16_s
          {1, false, false},  // i64.load16_u
          {2, true, true},    // i64.load32_s
          {2, false, false},  // i64.load32_u
      };
      const Shape s = kLoads[op - kI32Load];
      emit_addr(h - 1, ins.imm, 1u << s.width_log2);
      e_.load_mem_extend(RAX, R13, RAX, s.width_log2, s.sign, s.wide);
      store_slot(h - 1, RAX);
      return true;
    }

    if (op >= kI32Store && op <= kI64Store32) {
      static constexpr std::uint8_t kStoreWidthLog2[9] = {
          2,  // i32.store
          3,  // i64.store
          2,  // f32.store
          3,  // f64.store
          0,  // i32.store8
          1,  // i32.store16
          0,  // i64.store8
          1,  // i64.store16
          2,  // i64.store32
      };
      const std::uint8_t w = kStoreWidthLog2[op - kI32Store];
      emit_addr(h - 2, ins.imm, 1u << w);
      load_slot(RCX, h - 1);
      e_.store_mem(R13, RAX, w, RCX);
      return true;
    }

    if (const auto ci = cmp_info(op)) {
      emit_compare_bool(*ci, h);
      return true;
    }

    const bool i32_bin = op >= kI32Add && op <= kI32Rotr;
    const bool i64_bin = op >= kI64Add && op <= kI64Rotr;
    if (i32_bin || i64_bin) {
      const bool wide = i64_bin;
      // rel: 0 add, 1 sub, 2 mul, 3 div_s, 4 div_u, 5 rem_s, 6 rem_u,
      //      7 and, 8 or, 9 xor, 10 shl, 11 shr_s, 12 shr_u, 13 rotl, 14 rotr
      const std::uint16_t rel = op - (wide ? kI64Add : kI32Add);
      switch (rel) {
        case 0:
        case 1:
        case 7:
        case 8:
        case 9: {
          static constexpr std::uint8_t kAlu[10] = {0x01, 0x29, 0, 0,    0,
                                                    0,    0,    0x21, 0x09, 0x31};
          load_slot(RAX, h - 2, wide);
          load_slot(RCX, h - 1, wide);
          e_.alu_rr(kAlu[rel], RAX, RCX, wide);
          store_slot(h - 2, RAX);
          return true;
        }
        case 2:  // mul
          load_slot(RAX, h - 2, wide);
          load_slot(RCX, h - 1, wide);
          e_.imul_rr(RAX, RCX, wide);
          store_slot(h - 2, RAX);
          return true;
        case 3:  // div_s
          emit_div(h, wide, true, false);
          return true;
        case 4:  // div_u
          emit_div(h, wide, false, false);
          return true;
        case 5:  // rem_s
          emit_div(h, wide, true, true);
          return true;
        case 6:  // rem_u
          emit_div(h, wide, false, true);
          return true;
        default: {
          // shl / shr_s / shr_u / rotl / rotr — x86 masks the count exactly
          // as wasm requires (&31 / &63).
          static constexpr std::uint8_t kShiftExt[5] = {4, 7, 5, 0, 1};
          load_slot(RAX, h - 2, wide);
          load_slot(RCX, h - 1, false);
          e_.shift_cl(kShiftExt[rel - 10], RAX, wide);
          store_slot(h - 2, RAX);
          return true;
        }
      }
    }

    switch (op) {
      case kI32WrapI64:
      case kI64ExtendI32U:
      case kI32ReinterpretF32:
      case kF32ReinterpretI32:
        load_slot(RAX, h - 1, false);  // low 32 bits, zero-extended
        store_slot(h - 1, RAX);
        return true;
      case kI64ReinterpretF64:
      case kF64ReinterpretI64:
        return true;  // identity on the 64-bit slot
      case kI64ExtendI32S:
        load_slot(RAX, h - 1, false);
        e_.movsx_rr(RAX, RAX, 2, true);
        store_slot(h - 1, RAX);
        return true;
      case kI32Extend8S:
        load_slot(RAX, h - 1, false);
        e_.movsx_rr(RAX, RAX, 0, false);
        store_slot(h - 1, RAX);
        return true;
      case kI32Extend16S:
        load_slot(RAX, h - 1, false);
        e_.movsx_rr(RAX, RAX, 1, false);
        store_slot(h - 1, RAX);
        return true;
      case kI64Extend8S:
        load_slot(RAX, h - 1);
        e_.movsx_rr(RAX, RAX, 0, true);
        store_slot(h - 1, RAX);
        return true;
      case kI64Extend16S:
        load_slot(RAX, h - 1);
        e_.movsx_rr(RAX, RAX, 1, true);
        store_slot(h - 1, RAX);
        return true;
      case kI64Extend32S:
        load_slot(RAX, h - 1, false);
        e_.movsx_rr(RAX, RAX, 2, true);
        store_slot(h - 1, RAX);
        return true;
      default:
        break;
    }

    // Everything else the stream can legally contain — float arithmetic and
    // comparisons, clz/ctz/popcnt, float<->int conversions, saturating
    // truncation — runs through the per-opcode fallback thunk. The prescan
    // already priced its stack effect, so tier-up is never blocked.
    if (op_delta(module_, ins).has_value()) {
      emit_fallback(ins, h);
      return true;
    }
    return false;
  }

  void emit_tail() {
    // Epilogue (every exit funnels here, including trap paths).
    const std::size_t epilogue = e_.size();
    e_.add_rsp8();
    e_.pop_r(R15);
    e_.pop_r(R14);
    e_.pop_r(R13);
    e_.pop_r(R12);
    e_.pop_r(RBX);
    e_.pop_r(RBP);
    e_.ret();

    // Trap stubs: set the code, exit. One stub per trap kind in use.
    for (int code = kTrapOob; code <= kTrapUnreachable; ++code) {
      if (trap_sites_[code].empty()) continue;
      const std::size_t stub = e_.size();
      e_.store_imm32(R15, 72, code);
      e_.patch_rel32(e_.jmp(), epilogue);
      for (const std::size_t at : trap_sites_[code]) e_.patch_rel32(at, stub);
    }

    for (const std::size_t at : exit_sites_) e_.patch_rel32(at, epilogue);
    for (const auto& [at, target_pc] : fixups_)
      e_.patch_rel32(at, offsets_[target_pc]);

    // br_table dispatch data: one u32 code offset per pc, appended after
    // the code and addressed rip-relatively (position-independent image).
    if (!table_sites_.empty()) {
      e_.align(4);
      const std::size_t table = e_.size();
      for (const std::size_t off : offsets_)
        e_.u32(static_cast<std::uint32_t>(off));
      for (const auto& [table_at, base_at] : table_sites_) {
        e_.patch_rel32(table_at, table);
        e_.patch_rel32(base_at, 0);  // rcx = image base
      }
    }
  }

  const Module& module_;
  const CompiledFunc& func_;
  const std::uint32_t num_locals_;
  Emitter e_;

  std::vector<int> height_;         // operand height at each pc
  std::vector<std::uint8_t> is_target_;
  std::vector<std::uint8_t> dead_;  // unreachable pcs: emitted as nothing
  std::vector<std::size_t> offsets_;  // emitted offset of each pc

  struct Fixup {
    std::size_t at;
    std::uint32_t target_pc;
  };
  std::vector<Fixup> fixups_;
  std::vector<std::size_t> exit_sites_;           // -> epilogue
  std::array<std::vector<std::size_t>, 5> trap_sites_;  // [trap code]
  struct TableSite {
    std::size_t table_at;
    std::size_t base_at;
  };
  std::vector<TableSite> table_sites_;
};

}  // namespace

std::vector<std::uint8_t> compile_function(const Module& module,
                                           const CompiledFunc& func) {
  FnCompiler compiler(module, func);
  if (!compiler.run()) return {};
  return compiler.take();
}

}  // namespace watz::wasm::jit
