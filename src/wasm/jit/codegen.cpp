// One-pass baseline codegen: lowers a validated AOT-stream function
// (`CompiledFunc`) to x86-64 via the Emitter.
//
// The key trick is STATIC OPERAND-HEIGHT TRACKING. The resolved stream has
// exactly one operand-stack height per pc (the prescan derives it, seeding
// branch targets and verifying joins), so every push/pop becomes a move
// to/from a fixed frame slot [rbp + (num_locals + h)*8] and the dynamic sp
// only exists at helper-call boundaries, where it is spilled to
// JitContext::sp and re-derived afterwards. Functions whose streams violate
// the invariants the baseline relies on (multi-value branches, height
// joins that disagree) are refused — compile_function returns empty,
// reports the refusing opcode, and the tier keeps them on the AOT stream.
//
// Frame/register map (see jit.hpp): r15 = JitContext*, rbp = &stack[base],
// r13 = memory base, r14 = memory size; rax/rcx/rdx are scratch and xmm0/
// xmm1 carry scalar floats. After any helper call the pinned rbp/r13/r14
// are reloaded from the context and the trap flag is checked (helpers do
// not unwind; see exec_native.cpp).
//
// Phase 2 widens the lowered core along a second data-type dimension:
//
//  * f32/f64 add/sub/mul/div/sqrt run on the SSE2 scalar unit — the same
//    unit GCC compiles the interpreter's plain C++ float ops to, so the
//    tiers stay bit-identical by construction. min/max branch to reproduce
//    wasm's canonical-NaN and signed-zero rules (orpd/andpd merge the
//    equal case); abs/neg/copysign are pure sign-bit ops on GPRs, exactly
//    the interpreter's bit twiddles. Comparisons come from ucomis + setcc,
//    with the parity flag folding the unordered cases.
//  * int<->float conversions lower inline, including the u64->float
//    round-to-odd halving (the sequence GCC emits for the C++ cast) and
//    the four trapping truncations: operands are promoted to f64 (exact)
//    and range-checked against per-op bounds before cvttsd2si; the
//    offending opcode is parked in JitContext::trap_aux so the entry thunk
//    rebuilds the interpreter's exact trap message.
//  * Two peepholes exploit the static heights. (1) `local.get` defers: it
//    only records which local the operand height aliases, and consumers
//    read the local's slot directly — often as the memory operand of the
//    ALU/SSE instruction itself; a trailing `local.set` becomes the
//    destination of the producing op's store. Pending aliases are flushed
//    to their operand slots at every control-flow edge and helper call,
//    and on any write to the aliased local. (2) Functions whose locals +
//    peak operand height fit in 8 registers, and whose every op lowers
//    inline (no calls, no thunks), keep the whole wasm frame in registers
//    (rbx rsi rdi r8-r12) and touch memory only at entry/exit.
#include <algorithm>
#include <array>
#include <cstddef>
#include <cstring>
#include <limits>
#include <optional>

#include "wasm/compile.hpp"
#include "wasm/jit/emitter.hpp"
#include "wasm/jit/jit.hpp"
#include "wasm/opcodes.hpp"

namespace watz::wasm::jit {

// Generated code hard-codes these offsets; a layout change must show up as
// a compile error here, not as memory corruption at run time.
static_assert(offsetof(JitContext, stack_base) == 0);
static_assert(offsetof(JitContext, sp) == 8);
static_assert(offsetof(JitContext, base) == 16);
static_assert(offsetof(JitContext, mem_base) == 24);
static_assert(offsetof(JitContext, mem_size) == 32);
static_assert(offsetof(JitContext, trap_code) == 72);
static_assert(offsetof(JitContext, globals) == 48);
static_assert(offsetof(JitContext, fallback_ops) == 80);
static_assert(offsetof(JitContext, fallback_float) == 112);
static_assert(offsetof(JitContext, fallback_conv) == 120);
static_assert(offsetof(JitContext, fallback_other) == 128);
static_assert(offsetof(JitContext, fallback_call) == 136);
static_assert(offsetof(JitContext, trap_aux) == 144);
static_assert(sizeof(GlobalSlot) == 16);
static_assert(offsetof(GlobalSlot, bits) == 8);

namespace {

std::uint64_t f64_bits(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof b);
  return b;
}

struct CmpInfo {
  Cond cc;
  bool wide;
  bool eqz;
};

std::optional<CmpInfo> cmp_info(std::uint16_t op) {
  switch (op) {
    case kI32Eqz: return CmpInfo{CC_E, false, true};
    case kI64Eqz: return CmpInfo{CC_E, true, true};
    default: break;
  }
  if (op >= kI32Eq && op <= kI64GeU) {
    const bool wide = op >= kI64Eq;
    static constexpr Cond kOrder[10] = {CC_E, CC_NE, CC_L,  CC_B,  CC_G,
                                        CC_A, CC_LE, CC_BE, CC_GE, CC_AE};
    const std::uint16_t rel = op - (wide ? kI64Eq : kI32Eq);
    return CmpInfo{kOrder[rel], wide, false};
  }
  return std::nullopt;
}

/// Net operand-stack effect of a non-branching op, or nullopt for an op the
/// prescan does not recognise (=> refuse the function).
std::optional<int> op_delta(const Module& m, const Instr& ins) {
  const std::uint16_t op = ins.op;
  switch (op) {
    case kNop: return 0;
    case kDrop: return -1;
    case kSelect: return -2;
    case kLocalGet:
    case kGlobalGet:
    case kMemorySize:
    case kI32Const:
    case kI64Const:
    case kF32Const:
    case kF64Const: return 1;
    case kLocalSet:
    case kGlobalSet: return -1;
    case kLocalTee:
    case kMemoryGrow: return 0;
    case kInstrMemCopy:
    case kInstrMemFill: return -3;
    case kCall: {
      const FuncType& t = m.func_type(ins.a);
      return static_cast<int>(t.results.size()) - static_cast<int>(t.params.size());
    }
    case kCallIndirect: {
      if (ins.a >= m.types.size()) return std::nullopt;
      const FuncType& t = m.types[ins.a];
      return -1 + static_cast<int>(t.results.size()) -
             static_cast<int>(t.params.size());
    }
    default: break;
  }
  if (op >= kI32Load && op <= kI64Load32U) return 0;
  if (op >= kI32Store && op <= kI64Store32) return -2;
  if (op == kI32Eqz || op == kI64Eqz) return 0;
  if (op >= kI32Eq && op <= kI64GeU) return -1;   // binary int comparisons
  if (op >= kF32Eq && op <= kF64Ge) return -1;    // binary float comparisons
  if (op >= kI32Clz && op <= kI32Popcnt) return 0;
  if (op >= kI32Add && op <= kI32Rotr) return -1;
  if (op >= kI64Clz && op <= kI64Popcnt) return 0;
  if (op >= kI64Add && op <= kI64Rotr) return -1;
  if (op >= kF32Abs && op <= kF32Sqrt) return 0;
  if (op >= kF32Add && op <= kF32Copysign) return -1;
  if (op >= kF64Abs && op <= kF64Sqrt) return 0;
  if (op >= kF64Add && op <= kF64Copysign) return -1;
  if (op >= kI32WrapI64 && op <= kI64Extend32S) return 0;  // conversions
  if (op >= kInstrTruncSatBase && op < kInstrTruncSatBase + 8) return 0;
  return std::nullopt;
}

class FnCompiler {
 public:
  FnCompiler(const Module& module, const CompiledFunc& func)
      : module_(module), func_(func), num_locals_(func.num_locals) {}

  bool run() {
    if (!prescan()) return false;
    reg_mode_ = reg_eligible();
    pending_.assign(func_.max_operand_height, -1);
    emit_prologue();
    if (!emit_body()) return false;
    emit_tail();
    return true;
  }

  std::vector<std::uint8_t> take() { return std::move(e_.buf); }
  std::uint16_t refused() const noexcept { return refused_op_; }

 private:
  // -- prescan ----------------------------------------------------------------

  bool prescan() {
    const auto& code = func_.code;
    const std::size_t n = code.size();
    if (n == 0 || func_.result_arity > 1) return false;  // structural (0xffff)
    height_.assign(n, -1);
    is_target_.assign(n, 0);
    dead_.assign(n, 0);
    int cur = 0;
    bool known = true;  // false after an unconditional control transfer
    for (std::size_t pc = 0; pc < n; ++pc) {
      if (height_[pc] >= 0) {
        if (known && cur != height_[pc]) return refuse(code[pc].op);
        cur = height_[pc];
        known = true;
      } else if (!known) {
        // Unreachable and never branched to (e.g. the implicit end-return
        // after an explicit `return`): control cannot arrive here, so the
        // instruction is simply not emitted. Branches inside a dead region
        // are skipped too — they cannot execute, so they seed nothing.
        dead_[pc] = 1;
        continue;
      } else {
        height_[pc] = cur;
      }
      const Instr& ins = code[pc];
      auto seed = [&](std::uint32_t target, int h) {
        if (target >= n || h < 0) return false;
        is_target_[target] = 1;
        if (target <= pc) return height_[target] == h;  // backward edge
        if (height_[target] >= 0 && height_[target] != h) return false;
        height_[target] = h;
        return true;
      };
      switch (ins.op) {
        case kUnreachable:
          known = false;
          break;
        case kBr:
          if (ins.aux > 1) return refuse(ins.op);
          if (!seed(ins.a, cur - static_cast<int>(ins.imm))) return refuse(ins.op);
          known = false;
          break;
        case kBrIf:
          if (ins.aux > 1) return refuse(ins.op);
          if (!seed(ins.a, (cur - 1) - static_cast<int>(ins.imm)))
            return refuse(ins.op);
          cur -= 1;
          break;
        case kInstrBrIfFalse:
          if (!seed(ins.a, cur - 1)) return refuse(ins.op);
          cur -= 1;
          break;
        case kBrTable: {
          if (ins.a + ins.imm >= func_.tables.size()) return refuse(ins.op);
          for (std::uint64_t i = 0; i <= ins.imm; ++i) {
            const BrTableEntry& entry = func_.tables[ins.a + i];
            if (entry.keep > 1) return refuse(ins.op);
            if (!seed(entry.target, (cur - 1) - static_cast<int>(entry.drop)))
              return refuse(ins.op);
          }
          known = false;
          break;
        }
        case kReturn:
          if (ins.aux > 1) return refuse(ins.op);
          known = false;
          break;
        default: {
          const auto delta = op_delta(module_, ins);
          if (!delta) return refuse(ins.op);
          cur += *delta;
          break;
        }
      }
      if (known &&
          (cur < 0 || cur > static_cast<int>(func_.max_operand_height))) {
        return refuse(ins.op);
      }
    }
    return true;
  }

  bool refuse(std::uint16_t op) {
    refused_op_ = op;
    return false;
  }

  // -- register-resident mode -------------------------------------------------

  // Wasm frame slots (locals then operand heights) pinned to registers for
  // the whole function. rbx/r12 are saved by the prologue; rsi/rdi/r8-r11
  // are caller-saved and a register-resident function makes no calls.
  static constexpr Reg kSlotRegs[8] = {RBX, RSI, RDI, R8, R9, R10, R11, R12};

  Reg slot_reg(int idx) const { return kSlotRegs[idx]; }
  Reg operand_reg(int h) const { return kSlotRegs[num_locals_ + h]; }

  /// True when every op of this op's class lowers inline — no helper call,
  /// no fallback thunk — so the frame never needs to be materialised.
  bool lowers_inline(std::uint16_t op) const {
    switch (op) {
      case kNop:
      case kUnreachable:
      case kBr:
      case kBrIf:
      case kInstrBrIfFalse:
      case kReturn:
      case kDrop:
      case kSelect:
      case kLocalGet:
      case kLocalSet:
      case kLocalTee:
      case kGlobalGet:
      case kGlobalSet:
      case kMemorySize:
      case kI32Const:
      case kI64Const:
      case kF32Const:
      case kF64Const:
        return true;
      // Float ceil/floor/trunc/nearest still run through the thunk
      // (scalar rounding needs SSE4.1 roundsd; SSE2 keeps the baseline
      // portable), as do clz/ctz/popcnt and the saturating truncations.
      case kF32Abs:
      case kF32Neg:
      case kF32Sqrt:
      case kF64Abs:
      case kF64Neg:
      case kF64Sqrt:
        return true;
      default:
        break;
    }
    if (op >= kI32Load && op <= kI64Load32U) return true;
    if (op >= kI32Store && op <= kI64Store32) return true;
    if (cmp_info(op)) return true;
    if (op >= kF32Eq && op <= kF64Ge) return true;
    if (op >= kI32Add && op <= kI32Rotr) return true;
    if (op >= kI64Add && op <= kI64Rotr) return true;
    if (op >= kF32Add && op <= kF32Copysign) return true;
    if (op >= kF64Add && op <= kF64Copysign) return true;
    if (op >= kI32WrapI64 && op <= kI64Extend32S) return true;
    return false;
  }

  bool reg_eligible() const {
    if (num_locals_ + func_.max_operand_height > 8) return false;
    const auto& code = func_.code;
    for (std::size_t pc = 0; pc < code.size(); ++pc) {
      if (dead_[pc]) continue;
      if (!lowers_inline(code[pc].op)) return false;
    }
    return true;
  }

  // -- frame helpers ----------------------------------------------------------

  std::int32_t local_disp(std::uint32_t idx) const {
    return static_cast<std::int32_t>(idx * 8);
  }
  std::int32_t slot_disp(int h) const {
    return static_cast<std::int32_t>((num_locals_ + h) * 8);
  }
  /// Frame displacement to READ operand `h` from: the aliased local's slot
  /// while a deferred local.get is pending, the operand slot otherwise.
  std::int32_t operand_disp(int h) const {
    const std::int32_t p = pending_[static_cast<std::size_t>(h)];
    return p >= 0 ? p * 8 : slot_disp(h);
  }

  void load_slot(Reg r, int h, bool wide = true) {
    if (reg_mode_) {
      e_.mov_rr(r, operand_reg(h), wide);
      return;
    }
    if (wide)
      e_.load64(r, RBP, operand_disp(h));
    else
      e_.load32(r, RBP, operand_disp(h));
  }
  void store_slot(int h, Reg r) {
    if (reg_mode_) {
      e_.mov_rr(operand_reg(h), r);
      return;
    }
    pending_[static_cast<std::size_t>(h)] = -1;
    e_.store64(RBP, slot_disp(h), r);
  }
  /// Stores an op's single result at height `h` — or straight into the
  /// destination local when a trailing `local.set` sink is armed.
  void store_result(int h, Reg r) {
    if (!reg_mode_ && sink_disp_ >= 0) {
      sink_used_ = true;
      e_.store64(RBP, sink_disp_, r);
      return;
    }
    store_slot(h, r);
  }

  void load_f(std::uint8_t x, int h, bool f64) {
    if (reg_mode_) {
      e_.mov_xr(x, operand_reg(h), f64);
      return;
    }
    e_.movf_load(f64, x, RBP, operand_disp(h));
  }
  /// f64 results store scalar; f32 results bounce through a GPR (movd
  /// zero-extends) so the 64-bit slot keeps canonical zero upper bits.
  void store_f64_result(int h, std::uint8_t x) {
    if (reg_mode_) {
      e_.mov_rx(operand_reg(h), x, true);
      return;
    }
    if (sink_disp_ >= 0) {
      sink_used_ = true;
      e_.movf_store(true, RBP, sink_disp_, x);
      return;
    }
    pending_[static_cast<std::size_t>(h)] = -1;
    e_.movf_store(true, RBP, slot_disp(h), x);
  }
  void store_f32_result(int h, std::uint8_t x) {
    e_.mov_rx(RAX, x, false);
    store_result(h, RAX);
  }

  // -- pending local.get bookkeeping (frame mode) -----------------------------
  //
  // pending_[h] >= 0 means operand height h is a deferred `local.get` of
  // that local: no code was emitted, and readers take the local's slot as
  // their memory operand. Every write of an operand slot clears its entry;
  // control-flow edges and helper boundaries flush live entries so the
  // frame matches the static layout wherever paths merge or C++ looks.

  void consume(int h) {
    if (!reg_mode_) pending_[static_cast<std::size_t>(h)] = -1;
  }
  void flush_one(std::size_t h) {
    e_.load64(RAX, RBP, pending_[h] * 8);
    e_.store64(RBP, slot_disp(static_cast<int>(h)), RAX);
    pending_[h] = -1;
  }
  /// Flushes entries below `limit` (clobbers rax). Entries at or above the
  /// current height are stale junk; materialising them is harmless but
  /// flush_below lets the hot cmp+branch fusion skip its popped operands.
  void flush_below(int limit) {
    if (reg_mode_) return;
    const std::size_t lim =
        std::min(pending_.size(), static_cast<std::size_t>(limit < 0 ? 0 : limit));
    for (std::size_t h = 0; h < lim; ++h)
      if (pending_[h] >= 0) flush_one(h);
  }
  void flush_all() {
    if (reg_mode_) return;
    for (std::size_t h = 0; h < pending_.size(); ++h)
      if (pending_[h] >= 0) flush_one(h);
  }
  /// Flushes entries aliasing `local` before that local is overwritten.
  void flush_aliased(std::uint32_t local) {
    if (reg_mode_) return;
    for (std::size_t h = 0; h < pending_.size(); ++h)
      if (pending_[h] == static_cast<std::int32_t>(local)) flush_one(h);
  }

  /// Ops that leave straight-line code: every pending alias must be in its
  /// operand slot before the transfer / helper inspects the frame.
  static bool needs_flush(std::uint16_t op) {
    switch (op) {
      case kUnreachable:
      case kBr:
      case kBrIf:
      case kInstrBrIfFalse:
      case kBrTable:
      case kReturn:
      case kCall:
      case kCallIndirect:
      case kMemoryGrow:
      case kInstrMemCopy:
      case kInstrMemFill:
        return true;
      default:
        return false;
    }
  }

  /// ctx->sp = ctx->base + num_locals + h (the dynamic height helpers see).
  void spill_sp(int h) {
    e_.load64(RAX, R15, 16);
    e_.lea_disp(RAX, RAX, static_cast<std::int32_t>(num_locals_ + h));
    e_.store64(R15, 8, RAX);
  }

  /// Re-derives rbp/r13/r14 from the context (a helper may have moved the
  /// operand-stack storage or grown memory).
  void reload_pinned() {
    e_.load64(RAX, R15, 0);   // stack_base
    e_.load64(RCX, R15, 16);  // base
    e_.lea_scaled8(RBP, RAX, RCX);
    e_.load64(R13, R15, 24);  // mem_base
    e_.load64(R14, R15, 32);  // mem_size
  }

  void trap_check() {
    e_.cmp_m64_imm8(R15, 72, 0);
    exit_sites_.push_back(e_.jcc(CC_NE));
  }

  template <typename Fn>
  void call_helper(Fn* fn) {
    e_.mov_ri64(RAX, reinterpret_cast<std::uint64_t>(fn));
    e_.call_r(RAX);
  }

  void emit_trap_jump(int code) {
    trap_sites_[code].push_back(e_.jmp());
  }

  /// Computes the effective address (addr32 + offset) into rax and emits
  /// the bounds check `ea + width <= mem_size` (clobbers rcx).
  void emit_addr(int h_addr, std::uint64_t offset, std::uint32_t width) {
    load_slot(RAX, h_addr, false);
    if (offset != 0) {
      if (offset <= 0x7fffffff) {
        e_.lea_disp(RAX, RAX, static_cast<std::int32_t>(offset));
      } else {
        e_.mov_ri32(RCX, static_cast<std::uint32_t>(offset));
        e_.add_rr(RAX, RCX, true);
      }
    }
    e_.lea_disp(RCX, RAX, static_cast<std::int32_t>(width));
    e_.cmp_rr(RCX, R14, true);
    trap_sites_[kTrapOob].push_back(e_.jcc(CC_A));
  }

  void emit_compare_bool(const CmpInfo& ci, int h) {
    if (ci.eqz) {
      load_slot(RAX, h - 1, ci.wide);
      e_.test_rr(RAX, RAX, ci.wide);
      e_.setcc(CC_E, RAX);
      e_.movzx8_rr(RAX, RAX);
      store_result(h - 1, RAX);
    } else {
      load_slot(RAX, h - 2, ci.wide);
      if (reg_mode_) {
        load_slot(RCX, h - 1, ci.wide);
        e_.cmp_rr(RAX, RCX, ci.wide);
      } else {
        e_.alu_rm(0x3B, RAX, RBP, operand_disp(h - 1), ci.wide);
      }
      e_.setcc(ci.cc, RAX);
      e_.movzx8_rr(RAX, RAX);
      store_result(h - 2, RAX);
    }
  }

  /// Float comparison via ucomis: unordered sets ZF=PF=CF=1, so lt/le test
  /// the swapped-operand above/above-equal forms (false on NaN), and eq/ne
  /// fold the parity flag explicitly.
  void emit_fcompare(std::uint16_t op, int h) {
    const bool f64 = op >= kF64Eq;
    const std::uint16_t rel = op - (f64 ? kF64Eq : kF32Eq);
    load_f(0, h - 2, f64);
    load_f(1, h - 1, f64);
    switch (rel) {
      case 0:  // eq: equal AND ordered
        e_.ucomis_rr(f64, 0, 1);
        e_.setcc(CC_E, RAX);
        e_.setcc(CC_NP, RCX);
        e_.movzx8_rr(RAX, RAX);
        e_.movzx8_rr(RCX, RCX);
        e_.and_rr(RAX, RCX, false);
        break;
      case 1:  // ne: not-equal OR unordered
        e_.ucomis_rr(f64, 0, 1);
        e_.setcc(CC_NE, RAX);
        e_.setcc(CC_P, RCX);
        e_.movzx8_rr(RAX, RAX);
        e_.movzx8_rr(RCX, RCX);
        e_.or_rr(RAX, RCX, false);
        break;
      case 2:  // lt: b > a
        e_.ucomis_rr(f64, 1, 0);
        e_.setcc(CC_A, RAX);
        e_.movzx8_rr(RAX, RAX);
        break;
      case 3:  // gt
        e_.ucomis_rr(f64, 0, 1);
        e_.setcc(CC_A, RAX);
        e_.movzx8_rr(RAX, RAX);
        break;
      case 4:  // le: b >= a
        e_.ucomis_rr(f64, 1, 0);
        e_.setcc(CC_AE, RAX);
        e_.movzx8_rr(RAX, RAX);
        break;
      default:  // ge
        e_.ucomis_rr(f64, 0, 1);
        e_.setcc(CC_AE, RAX);
        e_.movzx8_rr(RAX, RAX);
        break;
    }
    store_result(h - 2, RAX);
  }

  /// wasm min/max: NaN either side -> the positive canonical quiet NaN;
  /// equal operands merge sign bits (orpd keeps -0 for min, andpd keeps +0
  /// for max — exactly the interpreter's signbit selection across all four
  /// zero pairings); otherwise the plain ordered pick.
  void emit_fminmax(int h, bool f64, bool is_min) {
    load_f(0, h - 2, f64);  // a
    load_f(1, h - 1, f64);  // b
    e_.ucomis_rr(f64, 0, 1);
    const std::size_t nan_site = e_.jcc(CC_P);
    const std::size_t eq_site = e_.jcc(CC_E);
    const std::size_t keep_site = e_.jcc(is_min ? CC_B : CC_A);  // keep a
    e_.movaps_rr(0, 1);                                          // take b
    const std::size_t done1 = e_.jmp();
    e_.patch_rel32(eq_site, e_.size());
    if (is_min)
      e_.orpd_rr(0, 1);
    else
      e_.andpd_rr(0, 1);
    const std::size_t done2 = e_.jmp();
    e_.patch_rel32(nan_site, e_.size());
    if (f64) {
      e_.mov_ri64(RAX, 0x7ff8000000000000ull);
      e_.mov_xr(0, RAX, true);
    } else {
      e_.mov_ri32(RAX, 0x7fc00000u);
      e_.mov_xr(0, RAX, false);
    }
    e_.patch_rel32(keep_site, e_.size());
    e_.patch_rel32(done1, e_.size());
    e_.patch_rel32(done2, e_.size());
    if (f64)
      store_f64_result(h - 2, 0);
    else
      store_f32_result(h - 2, 0);
  }

  /// u64 -> f32/f64: cvtsi2sd directly when the top bit is clear; else
  /// halve with the low bit folded in (round-to-odd, exact) and double the
  /// result — the correctly-rounded sequence GCC emits for the C++ cast,
  /// so all tiers agree bit-for-bit.
  void emit_convert_u64(int h, bool f64) {
    load_slot(RAX, h - 1, true);
    e_.test_rr(RAX, RAX, true);
    const std::size_t big = e_.jcc(CC_S);
    e_.cvt_i2f(f64, true, 0, RAX);
    const std::size_t done = e_.jmp();
    e_.patch_rel32(big, e_.size());
    e_.mov_rr(RCX, RAX);
    e_.shift_ri(5, RCX, 1, true);  // rcx = x >> 1
    e_.alu_ri(4, RAX, 1, false);   // eax = x & 1
    e_.or_rr(RCX, RAX, true);
    e_.cvt_i2f(f64, true, 0, RCX);
    e_.sse_arith_rr(f64, 0x58, 0, 0);  // x2
    e_.patch_rel32(done, e_.size());
    if (f64)
      store_f64_result(h - 1, 0);
    else
      store_f32_result(h - 1, 0);
  }

  /// Trapping float->int truncation. The operand is promoted to f64
  /// (exact) and range-checked there: the bounds are chosen so `v` passes
  /// iff trunc(v) is representable, matching the interpreter's
  /// trunc_checked exactly (including the -2^63 edge, where the exact
  /// minimum is representable and the check is >=). The opcode lands in
  /// ctx->trap_aux before any check so the entry thunk can rebuild the
  /// canonical per-op message.
  void emit_trunc(std::uint16_t op, int h) {
    const bool src_f64 = op == kI32TruncF64S || op == kI32TruncF64U ||
                         op == kI64TruncF64S || op == kI64TruncF64U;
    const bool wide = op >= kI64TruncF32S;
    const bool uns = op == kI32TruncF32U || op == kI32TruncF64U ||
                     op == kI64TruncF32U || op == kI64TruncF64U;
    load_f(0, h - 1, src_f64);
    if (!src_f64) e_.cvtss2sd(0, 0);
    e_.store_imm32(R15, 144, op);  // trap_aux = opcode, for the message
    e_.ucomis_rr(true, 0, 0);      // NaN is the only unordered-with-self
    trap_sites_[kTrapTruncNan].push_back(e_.jcc(CC_P));
    double lo, hi;
    bool lo_strict;  // strict: require v > lo; else require v >= lo
    if (!wide && !uns) {
      lo = -2147483649.0;  // first double at or below every out-of-range v
      lo_strict = true;
      hi = 2147483648.0;
    } else if (!wide) {
      lo = -1.0;
      lo_strict = true;
      hi = 4294967296.0;
    } else if (!uns) {
      lo = -9223372036854775808.0;  // exact; -2^63-1 is not representable
      lo_strict = false;
      hi = 9223372036854775808.0;
    } else {
      lo = -1.0;
      lo_strict = true;
      hi = 18446744073709551616.0;
    }
    e_.mov_ri64(RAX, f64_bits(lo));
    e_.mov_xr(1, RAX, true);
    e_.ucomis_rr(true, 0, 1);
    trap_sites_[kTrapTruncOverflow].push_back(e_.jcc(lo_strict ? CC_BE : CC_B));
    e_.mov_ri64(RAX, f64_bits(hi));
    e_.mov_xr(1, RAX, true);
    e_.ucomis_rr(true, 0, 1);
    trap_sites_[kTrapTruncOverflow].push_back(e_.jcc(CC_AE));
    if (!wide && !uns) {
      e_.cvtt_f2i(true, false, RAX, 0);  // eax (zero-extends)
    } else if (!wide) {
      e_.cvtt_f2i(true, true, RAX, 0);  // u32 fits the signed 64-bit convert
    } else if (!uns) {
      e_.cvtt_f2i(true, true, RAX, 0);
    } else {
      // u64: values >= 2^63 convert shifted by 2^63 (subtraction is exact:
      // v >= 2^52 is an integer) and the top bit is added back as an int.
      e_.mov_ri64(RAX, f64_bits(9223372036854775808.0));
      e_.mov_xr(1, RAX, true);
      e_.ucomis_rr(true, 0, 1);
      const std::size_t small = e_.jcc(CC_B);
      e_.sse_arith_rr(true, 0x5C, 0, 1);  // v -= 2^63
      e_.cvtt_f2i(true, true, RAX, 0);
      e_.mov_ri64(RCX, 0x8000000000000000ull);
      e_.add_rr(RAX, RCX, true);
      const std::size_t done = e_.jmp();
      e_.patch_rel32(small, e_.size());
      e_.cvtt_f2i(true, true, RAX, 0);
      e_.patch_rel32(done, e_.size());
    }
    store_result(h - 1, RAX);
  }

  /// div/rem with the wasm trap/edge semantics (divide-by-zero trap,
  /// INT_MIN/-1 overflow trap for div_s, INT_MIN%-1 == 0 for rem_s).
  void emit_div(int h, bool wide, bool is_signed, bool is_rem) {
    load_slot(RAX, h - 2, wide);
    load_slot(RCX, h - 1, wide);
    consume(h - 1);
    e_.test_rr(RCX, RCX, wide);
    trap_sites_[kTrapDivZero].push_back(e_.jcc(CC_E));
    Reg result = RAX;
    if (is_signed) {
      if (is_rem) {
        // divisor == -1 => remainder 0 (also sidesteps the INT_MIN idiv #DE)
        e_.cmp_ri(RCX, -1, wide);
        const std::size_t zero_site = e_.jcc(CC_E);
        if (wide)
          e_.cqo();
        else
          e_.cdq();
        e_.idiv(RCX, wide);
        const std::size_t done_site = e_.jmp();
        e_.patch_rel32(zero_site, e_.size());
        e_.xor_rr(RDX, RDX, false);
        e_.patch_rel32(done_site, e_.size());
        result = RDX;
      } else {
        if (wide) {
          e_.mov_ri64(RDX, 0x8000000000000000ull);
          e_.cmp_rr(RAX, RDX, true);
        } else {
          e_.cmp_ri(RAX, std::numeric_limits<std::int32_t>::min(), false);
        }
        const std::size_t ok_site = e_.jcc(CC_NE);
        e_.cmp_ri(RCX, -1, wide);
        trap_sites_[kTrapOverflow].push_back(e_.jcc(CC_E));
        e_.patch_rel32(ok_site, e_.size());
        if (wide)
          e_.cqo();
        else
          e_.cdq();
        e_.idiv(RCX, wide);
      }
    } else {
      e_.xor_rr(RDX, RDX, false);
      e_.div(RCX, wide);
      if (is_rem) result = RDX;
    }
    store_result(h - 2, result);
  }

  void emit_fallback(const Instr& ins, int h) {
    flush_all();
    spill_sp(h);
    e_.mov_rr(RDI, R15);
    e_.mov_ri32(RSI, ins.op);
    call_helper(&jit_helper_fallback);
    reload_pinned();
    trap_check();
  }

  // -- emission ---------------------------------------------------------------

  void emit_prologue() {
    e_.push_r(RBP);
    e_.push_r(RBX);
    e_.push_r(R12);
    e_.push_r(R13);
    e_.push_r(R14);
    e_.push_r(R15);
    e_.sub_rsp8();  // keeps rsp 16-byte aligned at helper call sites
    e_.mov_rr(R15, RDI);
    reload_pinned();
    if (reg_mode_) {
      // Whole wasm frame into registers: params carry their arguments,
      // non-param locals were zeroed by the entry thunk.
      for (std::uint32_t i = 0; i < num_locals_; ++i)
        e_.load64(slot_reg(static_cast<int>(i)), RBP, local_disp(i));
    }
  }

  bool emit_body() {
    const auto& code = func_.code;
    const std::size_t n = code.size();
    offsets_.assign(n, 0);
    for (std::size_t pc = 0; pc < n; ++pc) {
      // A merge point's frame must match the static layout on every
      // incoming edge: materialise pending aliases BEFORE recording the
      // branch-target offset (jumpers flushed at their branch site).
      if (is_target_[pc] && !dead_[pc]) flush_all();
      offsets_[pc] = e_.size();
      if (dead_[pc]) continue;  // unreachable: prescan proved nothing lands here
      const Instr& ins = code[pc];
      const int h = height_[pc];

      // Fuse comparison + conditional branch into cmp+jcc when nothing can
      // jump between them and the taken edge needs no stack adjustment.
      if (const auto ci = cmp_info(ins.op); ci && pc + 1 < n && !is_target_[pc + 1]) {
        const Instr& br = code[pc + 1];
        const bool brif = br.op == kBrIf && br.imm == 0;
        const bool brif_false = br.op == kInstrBrIfFalse;
        if (brif || brif_false) {
          // The compare's operands are popped on both edges; only aliases
          // below them must hit their slots before the jump.
          flush_below(ci->eqz ? h - 1 : h - 2);
          if (ci->eqz) {
            load_slot(RAX, h - 1, ci->wide);
            e_.test_rr(RAX, RAX, ci->wide);
            fixups_.push_back({e_.jcc(brif ? CC_E : CC_NE), br.a});
          } else {
            load_slot(RAX, h - 2, ci->wide);
            if (reg_mode_) {
              load_slot(RCX, h - 1, ci->wide);
              e_.cmp_rr(RAX, RCX, ci->wide);
            } else {
              e_.alu_rm(0x3B, RAX, RBP, operand_disp(h - 1), ci->wide);
            }
            const Cond cc = brif ? ci->cc : static_cast<Cond>(ci->cc ^ 1);
            fixups_.push_back({e_.jcc(cc), br.a});
          }
          ++pc;
          offsets_[pc] = e_.size();
          continue;
        }
      }

      if (needs_flush(ins.op)) flush_all();

      // Arm the local.set sink: when the NEXT op is an unjumped-to
      // local.set, ops routing their result through store_result() write
      // the destination local directly and the local.set is elided.
      sink_disp_ = -1;
      sink_used_ = false;
      if (!reg_mode_ && pc + 1 < n && !is_target_[pc + 1] &&
          code[pc + 1].op == kLocalSet) {
        flush_aliased(code[pc + 1].a);
        sink_disp_ = static_cast<std::int32_t>(code[pc + 1].a * 8);
      }

      switch (ins.op) {
        case kNop:
          break;
        case kUnreachable:
          emit_trap_jump(kTrapUnreachable);
          break;

        case kBr: {
          if (ins.aux == 1 && ins.imm > 0) {
            load_slot(RAX, h - 1);
            store_slot(h - 1 - static_cast<int>(ins.imm), RAX);
          }
          fixups_.push_back({e_.jmp(), ins.a});
          break;
        }
        case kBrIf: {
          load_slot(RAX, h - 1);
          e_.test_rr(RAX, RAX, true);
          if (ins.aux == 1 && ins.imm > 0) {
            const std::size_t skip = e_.jcc(CC_E);
            load_slot(RAX, h - 2);
            store_slot(h - 2 - static_cast<int>(ins.imm), RAX);
            fixups_.push_back({e_.jmp(), ins.a});
            e_.patch_rel32(skip, e_.size());
          } else {
            fixups_.push_back({e_.jcc(CC_NE), ins.a});
          }
          break;
        }
        case kInstrBrIfFalse: {
          load_slot(RAX, h - 1);
          e_.test_rr(RAX, RAX, true);
          fixups_.push_back({e_.jcc(CC_E), ins.a});
          break;
        }
        case kBrTable: {
          spill_sp(h);
          e_.mov_rr(RDI, R15);
          e_.mov_ri64(RSI, reinterpret_cast<std::uint64_t>(&func_.tables[ins.a]));
          e_.mov_ri32(RDX, static_cast<std::uint32_t>(ins.imm));
          call_helper(&jit_helper_br_table);
          // rax = target pc. The helper only memmoves within the stack, so
          // the pinned registers stay valid — dispatch straight through the
          // appended pc->offset table (position-independent via rip).
          const std::size_t table_at = e_.lea_rip(RCX);
          e_.load32_scaled4(RDX, RCX, RAX);
          const std::size_t base_at = e_.lea_rip(RCX);
          e_.add_rr(RCX, RDX, true);
          e_.jmp_r(RCX);
          table_sites_.push_back({table_at, base_at});
          break;
        }
        case kReturn: {
          if (ins.aux == 1) {
            load_slot(RAX, h - 1);
            e_.store64(RBP, 0, RAX);  // result to stack[base]
          }
          e_.load64(RAX, R15, 16);
          if (ins.aux != 0)
            e_.lea_disp(RAX, RAX, static_cast<std::int32_t>(ins.aux));
          e_.store64(R15, 8, RAX);  // ctx->sp = base + keep
          exit_sites_.push_back(e_.jmp());
          break;
        }

        case kCall: {
          spill_sp(h);
          e_.mov_rr(RDI, R15);
          e_.mov_ri32(RSI, ins.a);
          call_helper(&jit_helper_call);
          reload_pinned();
          trap_check();
          break;
        }
        case kCallIndirect: {
          spill_sp(h);
          e_.mov_rr(RDI, R15);
          e_.mov_ri32(RSI, ins.a);
          call_helper(&jit_helper_call_indirect);
          reload_pinned();
          trap_check();
          break;
        }

        case kDrop:
          break;
        case kSelect: {
          load_slot(RAX, h - 1);  // condition
          load_slot(RCX, h - 2);  // v2
          load_slot(RDX, h - 3);  // v1
          e_.test_rr(RAX, RAX, true);
          e_.cmovcc(CC_E, RDX, RCX, true);
          store_slot(h - 3, RDX);
          break;
        }

        case kLocalGet:
          if (reg_mode_)
            e_.mov_rr(operand_reg(h), slot_reg(static_cast<int>(ins.a)));
          else
            pending_[static_cast<std::size_t>(h)] =
                static_cast<std::int32_t>(ins.a);  // deferred: readers fuse it
          break;
        case kLocalSet:
          if (reg_mode_) {
            e_.mov_rr(slot_reg(static_cast<int>(ins.a)), operand_reg(h - 1));
          } else {
            flush_aliased(ins.a);  // older aliases read the value being replaced
            load_slot(RAX, h - 1);
            consume(h - 1);
            e_.store64(RBP, local_disp(ins.a), RAX);
          }
          break;
        case kLocalTee:
          if (reg_mode_) {
            e_.mov_rr(slot_reg(static_cast<int>(ins.a)), operand_reg(h - 1));
          } else {
            flush_aliased(ins.a);
            load_slot(RAX, h - 1);
            e_.store64(RBP, local_disp(ins.a), RAX);
          }
          break;
        case kGlobalGet:
          e_.load64(RAX, R15, 48);
          e_.load64(RAX, RAX, static_cast<std::int32_t>(ins.a * 16 + 8));
          store_result(h, RAX);
          break;
        case kGlobalSet:
          e_.load64(RCX, R15, 48);
          load_slot(RAX, h - 1);
          consume(h - 1);
          e_.store64(RCX, static_cast<std::int32_t>(ins.a * 16 + 8), RAX);
          break;

        case kMemorySize:
          e_.mov_rr(RAX, R14);
          e_.mov_ri32(RCX, 16);  // bytes -> 64 KiB pages
          e_.shift_cl(5, RAX, true);
          store_result(h, RAX);
          break;
        case kMemoryGrow:
          spill_sp(h);
          e_.mov_rr(RDI, R15);
          call_helper(&jit_helper_memory_grow);
          reload_pinned();  // memory may have moved; grow itself never traps
          break;

        case kI32Const:
        case kI64Const:
        case kF32Const:
        case kF64Const:
          if (ins.imm <= 0xffffffffull)
            e_.mov_ri32(RAX, static_cast<std::uint32_t>(ins.imm));
          else
            e_.mov_ri64(RAX, ins.imm);
          store_result(h, RAX);
          break;

        case kInstrMemCopy:
          spill_sp(h);
          e_.mov_rr(RDI, R15);
          call_helper(&jit_helper_mem_copy);
          reload_pinned();
          trap_check();
          break;
        case kInstrMemFill:
          spill_sp(h);
          e_.mov_rr(RDI, R15);
          call_helper(&jit_helper_mem_fill);
          reload_pinned();
          trap_check();
          break;

        default:
          if (!emit_default(ins, h)) {
            refused_op_ = ins.op;
            return false;
          }
          break;
      }

      if (sink_used_) {
        ++pc;  // the local.set was folded into the producing op's store
        offsets_[pc] = e_.size();
      }
      sink_disp_ = -1;
      sink_used_ = false;
    }
    return true;
  }

  /// Loads, stores, numeric ops, conversions — everything table-shaped.
  bool emit_default(const Instr& ins, int h) {
    const std::uint16_t op = ins.op;

    if (op >= kI32Load && op <= kI64Load32U) {
      struct Shape {
        std::uint8_t width_log2;
        bool sign, wide;
      };
      static constexpr Shape kLoads[14] = {
          {2, false, false},  // i32.load
          {3, false, true},   // i64.load
          {2, false, false},  // f32.load (raw bits)
          {3, false, true},   // f64.load
          {0, true, false},   // i32.load8_s
          {0, false, false},  // i32.load8_u
          {1, true, false},   // i32.load16_s
          {1, false, false},  // i32.load16_u
          {0, true, true},    // i64.load8_s
          {0, false, false},  // i64.load8_u
          {1, true, true},    // i64.load16_s
          {1, false, false},  // i64.load16_u
          {2, true, true},    // i64.load32_s
          {2, false, false},  // i64.load32_u
      };
      const Shape s = kLoads[op - kI32Load];
      emit_addr(h - 1, ins.imm, 1u << s.width_log2);
      e_.load_mem_extend(RAX, R13, RAX, s.width_log2, s.sign, s.wide);
      store_result(h - 1, RAX);
      return true;
    }

    if (op >= kI32Store && op <= kI64Store32) {
      static constexpr std::uint8_t kStoreWidthLog2[9] = {
          2,  // i32.store
          3,  // i64.store
          2,  // f32.store
          3,  // f64.store
          0,  // i32.store8
          1,  // i32.store16
          0,  // i64.store8
          1,  // i64.store16
          2,  // i64.store32
      };
      const std::uint8_t w = kStoreWidthLog2[op - kI32Store];
      emit_addr(h - 2, ins.imm, 1u << w);
      load_slot(RCX, h - 1);
      e_.store_mem(R13, RAX, w, RCX);
      return true;
    }

    if (const auto ci = cmp_info(op)) {
      emit_compare_bool(*ci, h);
      return true;
    }

    if (op >= kF32Eq && op <= kF64Ge) {
      emit_fcompare(op, h);
      return true;
    }

    const bool i32_bin = op >= kI32Add && op <= kI32Rotr;
    const bool i64_bin = op >= kI64Add && op <= kI64Rotr;
    if (i32_bin || i64_bin) {
      const bool wide = i64_bin;
      // rel: 0 add, 1 sub, 2 mul, 3 div_s, 4 div_u, 5 rem_s, 6 rem_u,
      //      7 and, 8 or, 9 xor, 10 shl, 11 shr_s, 12 shr_u, 13 rotl, 14 rotr
      const std::uint16_t rel = op - (wide ? kI64Add : kI32Add);
      switch (rel) {
        case 0:
        case 1:
        case 7:
        case 8:
        case 9: {
          // RM opcode forms so the right operand (often a pending
          // local.get) folds into the instruction's memory operand.
          static constexpr std::uint8_t kAluMr[10] = {0x01, 0x29, 0, 0,    0,
                                                      0,    0,    0x21, 0x09, 0x31};
          static constexpr std::uint8_t kAluRm[10] = {0x03, 0x2B, 0, 0,    0,
                                                      0,    0,    0x23, 0x0B, 0x33};
          load_slot(RAX, h - 2, wide);
          if (reg_mode_) {
            e_.alu_rr(kAluMr[rel], RAX, operand_reg(h - 1), wide);
          } else {
            e_.alu_rm(kAluRm[rel], RAX, RBP, operand_disp(h - 1), wide);
          }
          store_result(h - 2, RAX);
          return true;
        }
        case 2:  // mul
          load_slot(RAX, h - 2, wide);
          if (reg_mode_)
            e_.imul_rr(RAX, operand_reg(h - 1), wide);
          else
            e_.imul_rm(RAX, RBP, operand_disp(h - 1), wide);
          store_result(h - 2, RAX);
          return true;
        case 3:  // div_s
          emit_div(h, wide, true, false);
          return true;
        case 4:  // div_u
          emit_div(h, wide, false, false);
          return true;
        case 5:  // rem_s
          emit_div(h, wide, true, true);
          return true;
        case 6:  // rem_u
          emit_div(h, wide, false, true);
          return true;
        default: {
          // shl / shr_s / shr_u / rotl / rotr — x86 masks the count exactly
          // as wasm requires (&31 / &63).
          static constexpr std::uint8_t kShiftExt[5] = {4, 7, 5, 0, 1};
          load_slot(RAX, h - 2, wide);
          load_slot(RCX, h - 1, false);
          e_.shift_cl(kShiftExt[rel - 10], RAX, wide);
          store_result(h - 2, RAX);
          return true;
        }
      }
    }

    const bool f32_un = op >= kF32Abs && op <= kF32Sqrt;
    const bool f64_un = op >= kF64Abs && op <= kF64Sqrt;
    if (f32_un || f64_un) {
      const bool f64 = f64_un;
      // rel: 0 abs, 1 neg, 2 ceil, 3 floor, 4 trunc, 5 nearest, 6 sqrt
      const std::uint16_t rel = op - (f64 ? kF64Abs : kF32Abs);
      if (rel == 6) {
        load_f(0, h - 1, f64);
        e_.sse_arith_rr(f64, 0x51, 0, 0);  // sqrtsd/sqrtss
        if (f64)
          store_f64_result(h - 1, 0);
        else
          store_f32_result(h - 1, 0);
        return true;
      }
      if (rel <= 1) {
        // abs clears / neg flips the sign bit — the interpreter's exact
        // bit operation, NaN payloads untouched.
        if (f64) {
          load_slot(RAX, h - 1, true);
          e_.mov_ri64(RCX, rel == 0 ? 0x7fffffffffffffffull : 0x8000000000000000ull);
          e_.alu_rr(rel == 0 ? 0x21 : 0x31, RAX, RCX, true);
        } else {
          load_slot(RAX, h - 1, false);
          e_.alu_ri(rel == 0 ? 4 : 6, RAX,
                    rel == 0 ? 0x7fffffff
                             : std::numeric_limits<std::int32_t>::min(),
                    false);
        }
        store_result(h - 1, RAX);
        return true;
      }
      // ceil/floor/trunc/nearest: SSE4.1 roundsd territory — thunked below.
    }

    const bool f32_bin = op >= kF32Add && op <= kF32Copysign;
    const bool f64_bin = op >= kF64Add && op <= kF64Copysign;
    if (f32_bin || f64_bin) {
      const bool f64 = f64_bin;
      // rel: 0 add, 1 sub, 2 mul, 3 div, 4 min, 5 max, 6 copysign
      const std::uint16_t rel = op - (f64 ? kF64Add : kF32Add);
      if (rel <= 3) {
        static constexpr std::uint8_t kOpc[4] = {0x58, 0x5C, 0x59, 0x5E};
        load_f(0, h - 2, f64);
        if (reg_mode_) {
          load_f(1, h - 1, f64);
          e_.sse_arith_rr(f64, kOpc[rel], 0, 1);
        } else {
          // Right operand straight from its frame (or aliased local) slot.
          e_.sse_arith_rm(f64, kOpc[rel], 0, RBP, operand_disp(h - 1));
        }
        if (f64)
          store_f64_result(h - 2, 0);
        else
          store_f32_result(h - 2, 0);
        return true;
      }
      if (rel <= 5) {
        emit_fminmax(h, f64, rel == 4);
        return true;
      }
      // copysign: (a & ~signbit) | (b & signbit) in GPRs.
      if (f64) {
        load_slot(RAX, h - 2, true);
        e_.mov_ri64(RDX, 0x7fffffffffffffffull);
        e_.and_rr(RAX, RDX, true);
        load_slot(RCX, h - 1, true);
        e_.mov_ri64(RDX, 0x8000000000000000ull);
        e_.and_rr(RCX, RDX, true);
        e_.or_rr(RAX, RCX, true);
      } else {
        load_slot(RAX, h - 2, false);
        e_.alu_ri(4, RAX, 0x7fffffff, false);
        load_slot(RCX, h - 1, false);
        e_.alu_ri(4, RCX, std::numeric_limits<std::int32_t>::min(), false);
        e_.or_rr(RAX, RCX, false);
      }
      store_result(h - 2, RAX);
      return true;
    }

    switch (op) {
      case kI32WrapI64:
      case kI64ExtendI32U:
      case kI32ReinterpretF32:
      case kF32ReinterpretI32:
        load_slot(RAX, h - 1, false);  // low 32 bits, zero-extended
        store_result(h - 1, RAX);
        return true;
      case kI64ReinterpretF64:
      case kF64ReinterpretI64:
        return true;  // identity on the 64-bit slot
      case kI64ExtendI32S:
      case kI64Extend32S:
        load_slot(RAX, h - 1, false);
        e_.movsx_rr(RAX, RAX, 2, true);
        store_result(h - 1, RAX);
        return true;
      case kI32Extend8S:
        load_slot(RAX, h - 1, false);
        e_.movsx_rr(RAX, RAX, 0, false);
        store_result(h - 1, RAX);
        return true;
      case kI32Extend16S:
        load_slot(RAX, h - 1, false);
        e_.movsx_rr(RAX, RAX, 1, false);
        store_result(h - 1, RAX);
        return true;
      case kI64Extend8S:
        load_slot(RAX, h - 1);
        e_.movsx_rr(RAX, RAX, 0, true);
        store_result(h - 1, RAX);
        return true;
      case kI64Extend16S:
        load_slot(RAX, h - 1);
        e_.movsx_rr(RAX, RAX, 1, true);
        store_result(h - 1, RAX);
        return true;

      case kF64ConvertI32S:
        load_slot(RAX, h - 1, false);
        e_.cvt_i2f(true, false, 0, RAX);
        store_f64_result(h - 1, 0);
        return true;
      case kF64ConvertI32U:
        load_slot(RAX, h - 1, false);  // zero-extended: 64-bit convert is exact
        e_.cvt_i2f(true, true, 0, RAX);
        store_f64_result(h - 1, 0);
        return true;
      case kF64ConvertI64S:
        load_slot(RAX, h - 1, true);
        e_.cvt_i2f(true, true, 0, RAX);
        store_f64_result(h - 1, 0);
        return true;
      case kF32ConvertI32S:
        load_slot(RAX, h - 1, false);
        e_.cvt_i2f(false, false, 0, RAX);
        store_f32_result(h - 1, 0);
        return true;
      case kF32ConvertI32U:
        load_slot(RAX, h - 1, false);
        e_.cvt_i2f(false, true, 0, RAX);
        store_f32_result(h - 1, 0);
        return true;
      case kF32ConvertI64S:
        load_slot(RAX, h - 1, true);
        e_.cvt_i2f(false, true, 0, RAX);
        store_f32_result(h - 1, 0);
        return true;
      case kF64ConvertI64U:
        emit_convert_u64(h, true);
        return true;
      case kF32ConvertI64U:
        emit_convert_u64(h, false);
        return true;
      case kF64PromoteF32:
        load_f(0, h - 1, false);
        e_.cvtss2sd(0, 0);
        store_f64_result(h - 1, 0);
        return true;
      case kF32DemoteF64:
        load_f(0, h - 1, true);
        e_.cvtsd2ss(0, 0);
        store_f32_result(h - 1, 0);
        return true;

      case kI32TruncF32S:
      case kI32TruncF32U:
      case kI32TruncF64S:
      case kI32TruncF64U:
      case kI64TruncF32S:
      case kI64TruncF32U:
      case kI64TruncF64S:
      case kI64TruncF64U:
        emit_trunc(op, h);
        return true;

      default:
        break;
    }

    // Everything else the stream can legally contain — float rounding,
    // clz/ctz/popcnt, saturating truncation — runs through the per-opcode
    // fallback thunk. The prescan already priced its stack effect, so
    // tier-up is never blocked.
    if (op_delta(module_, ins).has_value()) {
      emit_fallback(ins, h);
      return true;
    }
    return false;
  }

  void emit_tail() {
    // Epilogue (every exit funnels here, including trap paths).
    const std::size_t epilogue = e_.size();
    e_.add_rsp8();
    e_.pop_r(R15);
    e_.pop_r(R14);
    e_.pop_r(R13);
    e_.pop_r(R12);
    e_.pop_r(RBX);
    e_.pop_r(RBP);
    e_.ret();

    // Trap stubs: set the code, exit. One stub per trap kind in use.
    for (int code = kTrapOob; code <= kTrapTruncOverflow; ++code) {
      if (trap_sites_[code].empty()) continue;
      const std::size_t stub = e_.size();
      e_.store_imm32(R15, 72, code);
      e_.patch_rel32(e_.jmp(), epilogue);
      for (const std::size_t at : trap_sites_[code]) e_.patch_rel32(at, stub);
    }

    for (const std::size_t at : exit_sites_) e_.patch_rel32(at, epilogue);
    for (const auto& [at, target_pc] : fixups_)
      e_.patch_rel32(at, offsets_[target_pc]);

    // br_table dispatch data: one u32 code offset per pc, appended after
    // the code and addressed rip-relatively (position-independent image).
    if (!table_sites_.empty()) {
      e_.align(4);
      const std::size_t table = e_.size();
      for (const std::size_t off : offsets_)
        e_.u32(static_cast<std::uint32_t>(off));
      for (const auto& [table_at, base_at] : table_sites_) {
        e_.patch_rel32(table_at, table);
        e_.patch_rel32(base_at, 0);  // rcx = image base
      }
    }
  }

  const Module& module_;
  const CompiledFunc& func_;
  const std::uint32_t num_locals_;
  Emitter e_;

  std::vector<int> height_;         // operand height at each pc
  std::vector<std::uint8_t> is_target_;
  std::vector<std::uint8_t> dead_;  // unreachable pcs: emitted as nothing
  std::vector<std::size_t> offsets_;  // emitted offset of each pc

  bool reg_mode_ = false;                // whole frame lives in registers
  std::vector<std::int32_t> pending_;    // deferred local.get per height
  std::int32_t sink_disp_ = -1;          // armed local.set destination
  bool sink_used_ = false;
  std::uint16_t refused_op_ = 0xffff;    // opcode behind a refusal

  struct Fixup {
    std::size_t at;
    std::uint32_t target_pc;
  };
  std::vector<Fixup> fixups_;
  std::vector<std::size_t> exit_sites_;           // -> epilogue
  std::array<std::vector<std::size_t>, 7> trap_sites_;  // [trap code]
  struct TableSite {
    std::size_t table_at;
    std::size_t base_at;
  };
  std::vector<TableSite> table_sites_;
};

}  // namespace

std::vector<std::uint8_t> compile_function(const Module& module,
                                           const CompiledFunc& func,
                                           std::uint16_t* refused_op) {
  FnCompiler compiler(module, func);
  if (!compiler.run()) {
    if (refused_op) *refused_op = compiler.refused();
    return {};
  }
  return compiler.take();
}

}  // namespace watz::wasm::jit
