#include "wasm/jit/tier.hpp"

#include "hw/clock.hpp"

namespace watz::wasm::jit {

TierSet::TierSet(const Module* module, std::span<const CompiledFunc> compiled,
                 TierConfig config)
    : module_(module),
      compiled_(compiled),
      config_(std::move(config)),
      funcs_(std::make_unique<TierFunc[]>(compiled.size())),
      func_count_(static_cast<std::uint32_t>(compiled.size())) {}

TierSet::~TierSet() {
  const std::size_t bytes = code_bytes_.load(std::memory_order_relaxed);
  if (bytes != 0 && config_.release_code) config_.release_code(bytes);
}

void TierSet::note_call(std::uint32_t index) noexcept {
  if (!config_.enabled || index >= compiled_.size()) return;
  TierFunc& f = funcs_[index];
  if (f.requested.load(std::memory_order_relaxed)) return;
  if (f.calls.fetch_add(1, std::memory_order_relaxed) + 1 < config_.hot_threshold)
    return;
  if (f.requested.exchange(true, std::memory_order_relaxed)) return;
  std::lock_guard<std::mutex> lock(pending_mu_);
  pending_.push_back(index);
}

std::size_t TierSet::compile_pending() {
  std::vector<std::uint32_t> batch;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    batch.swap(pending_);
  }
  if (batch.empty()) return 0;
  std::lock_guard<std::mutex> lock(compile_mu_);
  std::size_t done = 0;
  for (std::uint32_t index : batch) {
    if (compile_one(index)) ++done;
  }
  return done;
}

std::size_t TierSet::compile_all() {
  if (!config_.enabled) return 0;
  std::lock_guard<std::mutex> lock(compile_mu_);
  std::size_t done = 0;
  for (std::uint32_t index = 0; index < compiled_.size(); ++index) {
    funcs_[index].requested.store(true, std::memory_order_relaxed);
    if (compile_one(index)) ++done;
  }
  return done;
}

bool TierSet::compile_one(std::uint32_t index) {
  TierFunc& f = funcs_[index];
  if (f.entry.load(std::memory_order_relaxed) != nullptr ||
      f.failed.load(std::memory_order_relaxed)) {
    return false;
  }
  const std::uint64_t start_ns = hw::monotonic_ns();
  std::uint16_t refused_op = 0xffff;
  std::vector<std::uint8_t> code =
      compile_function(*module_, compiled_[index], &refused_op);
  if (code.empty()) {  // shape the baseline refuses: stays on the AOT stream
    f.failed.store(true, std::memory_order_relaxed);
    refused_functions_.fetch_add(1, std::memory_order_relaxed);
    last_refused_op_.store(refused_op, std::memory_order_relaxed);
    return false;
  }
  auto image = ExecutableImage::create(code.data(), code.size());
  if (!image) {  // W^X mapping failed: wholesale AOT fallback for this func
    f.failed.store(true, std::memory_order_relaxed);
    return false;
  }
  if (config_.charge_code && !config_.charge_code(image->bytes())) {
    f.failed.store(true, std::memory_order_relaxed);
    return false;
  }
  code_bytes_.fetch_add(image->bytes(), std::memory_order_relaxed);
  const std::uint64_t elapsed_ns = hw::monotonic_ns() - start_ns;
  compiles_total_.fetch_add(1, std::memory_order_relaxed);
  if (auto* c = sink_compiles_.load(std::memory_order_relaxed)) c->add(1);
  if (auto* h = sink_compile_ns_.load(std::memory_order_relaxed))
    h->record(elapsed_ns);
  const void* entry = image->entry();
  images_.push_back(std::move(image));
  f.entry.store(entry, std::memory_order_release);
  return true;
}

void TierSet::bind_metrics(obs::Counter* compiles, obs::Counter* native_entries,
                           obs::Counter* fallback_ops,
                           obs::Histogram* compile_ns,
                           ClassSinks classes) noexcept {
  sink_compiles_.store(compiles, std::memory_order_relaxed);
  sink_entries_.store(native_entries, std::memory_order_relaxed);
  sink_fallback_.store(fallback_ops, std::memory_order_relaxed);
  sink_fallback_float_.store(classes.float_ops, std::memory_order_relaxed);
  sink_fallback_conv_.store(classes.conv_ops, std::memory_order_relaxed);
  sink_fallback_call_.store(classes.call_ops, std::memory_order_relaxed);
  sink_fallback_other_.store(classes.other_ops, std::memory_order_relaxed);
  sink_compile_ns_.store(compile_ns, std::memory_order_relaxed);
}

void TierSet::count_native_entry() noexcept {
  entries_total_.fetch_add(1, std::memory_order_relaxed);
  if (auto* c = sink_entries_.load(std::memory_order_relaxed)) c->add(1);
}

void TierSet::add_fallback_ops(std::uint64_t n) noexcept {
  if (n == 0) return;
  fallback_total_.fetch_add(n, std::memory_order_relaxed);
  if (auto* c = sink_fallback_.load(std::memory_order_relaxed)) c->add(n);
}

void TierSet::add_fallback_classes(std::uint64_t float_ops,
                                   std::uint64_t conv_ops,
                                   std::uint64_t call_ops,
                                   std::uint64_t other_ops) noexcept {
  if (float_ops != 0) {
    fallback_float_.fetch_add(float_ops, std::memory_order_relaxed);
    if (auto* c = sink_fallback_float_.load(std::memory_order_relaxed))
      c->add(float_ops);
  }
  if (conv_ops != 0) {
    fallback_conv_.fetch_add(conv_ops, std::memory_order_relaxed);
    if (auto* c = sink_fallback_conv_.load(std::memory_order_relaxed))
      c->add(conv_ops);
  }
  if (call_ops != 0) {
    fallback_call_.fetch_add(call_ops, std::memory_order_relaxed);
    if (auto* c = sink_fallback_call_.load(std::memory_order_relaxed))
      c->add(call_ops);
  }
  if (other_ops != 0) {
    fallback_other_.fetch_add(other_ops, std::memory_order_relaxed);
    if (auto* c = sink_fallback_other_.load(std::memory_order_relaxed))
      c->add(other_ops);
  }
}

}  // namespace watz::wasm::jit
