// Per-module tiering state: heat counters, the compile queue and the
// installed native entry pointers.
//
// One TierSet exists per prepared module (owned by PreparedModule, shared
// into every Instance via `Instance::tier`), so codegen is paid once per
// measurement fleet-wide and warm pool checkouts inherit native entries.
//
// Concurrency contract:
//   * note_call()/entry_for() run on SandboxSlot workers — lock-free.
//   * compile_pending()/compile_all() run on the control plane (the
//     gateway's background sweeper or an explicit test/bench call), never
//     on a worker. A mutex serialises compilers; installation is a single
//     release-store into the per-function entry pointer, which workers
//     load-acquire. A worker that reads the old null simply runs the AOT
//     stream one more time — there is no blocking anywhere on the hot path.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "wasm/jit/jit.hpp"

namespace watz::wasm::jit {

struct TierConfig {
  bool enabled = true;
  /// Calls to one function before it is queued for native compilation.
  std::uint32_t hot_threshold = 64;
  /// Secure-heap accounting for executable pages: charge returns false when
  /// the reservation would exceed the enclave heap bound (the function then
  /// stays on the AOT stream); release undoes the charge (TierSet dtor).
  std::function<bool(std::size_t)> charge_code;
  std::function<void(std::size_t)> release_code;
};

/// Per-class fallback sinks: the split of `wasm.jit_fallback_ops` that
/// keeps remaining thunk hotspots visible as the lowered core widens.
/// (Namespace scope, not nested: a nested class's default member
/// initializers are parsed only once the enclosing class is complete,
/// which would break the `= {}` default argument on bind_metrics.)
struct ClassSinks {
  obs::Counter* float_ops = nullptr;
  obs::Counter* conv_ops = nullptr;
  obs::Counter* call_ops = nullptr;
  obs::Counter* other_ops = nullptr;
};

class TierSet {
 public:
  TierSet(const Module* module, std::span<const CompiledFunc> compiled,
          TierConfig config);
  ~TierSet();
  TierSet(const TierSet&) = delete;
  TierSet& operator=(const TierSet&) = delete;

  /// Hot path: the installed native entry for a module-local function
  /// index, or null while the function is still on the AOT stream.
  const void* entry_for(std::uint32_t index) const noexcept {
    return funcs_[index].entry.load(std::memory_order_acquire);
  }

  /// Hot path: bump the heat counter; queues the function for background
  /// compilation when it crosses the threshold (exactly once).
  void note_call(std::uint32_t index) noexcept;

  /// Control plane: compile everything the heat counters queued. Returns
  /// the number of functions tiered up by this call.
  std::size_t compile_pending();

  /// Control plane / tests: force-compile every eligible function now.
  std::size_t compile_all();

  /// Points the metric flushes at registry-owned instruments (fleet-wide
  /// counters). Unbound sinks are skipped; local totals always accumulate.
  void bind_metrics(obs::Counter* compiles, obs::Counter* native_entries,
                    obs::Counter* fallback_ops, obs::Histogram* compile_ns,
                    ClassSinks classes = {}) noexcept;

  /// Called by the native entry thunk per invocation / at frame exit.
  void count_native_entry() noexcept;
  void add_fallback_ops(std::uint64_t n) noexcept;
  void add_fallback_classes(std::uint64_t float_ops, std::uint64_t conv_ops,
                            std::uint64_t call_ops,
                            std::uint64_t other_ops) noexcept;

  std::uint64_t tier_up_compiles() const noexcept {
    return compiles_total_.load(std::memory_order_relaxed);
  }
  std::uint64_t native_entries() const noexcept {
    return entries_total_.load(std::memory_order_relaxed);
  }
  std::uint64_t fallback_ops() const noexcept {
    return fallback_total_.load(std::memory_order_relaxed);
  }
  std::uint64_t fallback_float() const noexcept {
    return fallback_float_.load(std::memory_order_relaxed);
  }
  std::uint64_t fallback_conv() const noexcept {
    return fallback_conv_.load(std::memory_order_relaxed);
  }
  std::uint64_t fallback_call() const noexcept {
    return fallback_call_.load(std::memory_order_relaxed);
  }
  std::uint64_t fallback_other() const noexcept {
    return fallback_other_.load(std::memory_order_relaxed);
  }
  /// Coverage diagnostics: how many functions codegen refused, and the
  /// opcode that stopped the most recent refusal (0xffffffff while no
  /// function has refused; 0xffff for structural refusals).
  std::uint64_t refused_functions() const noexcept {
    return refused_functions_.load(std::memory_order_relaxed);
  }
  std::uint32_t last_refused_op() const noexcept {
    return last_refused_op_.load(std::memory_order_relaxed);
  }
  /// Page-rounded executable bytes currently mapped (charged to the
  /// secure heap).
  std::size_t native_code_bytes() const noexcept {
    return code_bytes_.load(std::memory_order_relaxed);
  }
  std::uint32_t hot_threshold() const noexcept { return config_.hot_threshold; }
  bool enabled() const noexcept { return config_.enabled; }

  /// Snapshot accessors for the STATS tier-state surface (relaxed scans
  /// over the per-function atomics; approximate under concurrent calls,
  /// which is all a stats sample needs).
  std::uint32_t func_count() const noexcept { return func_count_; }
  /// Functions currently dispatching through an installed native entry.
  std::uint32_t native_functions() const noexcept {
    std::uint32_t n = 0;
    for (std::uint32_t i = 0; i < func_count_; ++i)
      if (funcs_[i].entry.load(std::memory_order_relaxed) != nullptr) ++n;
    return n;
  }
  /// Module heat: the sum of every function's call counter.
  std::uint64_t total_calls() const noexcept {
    std::uint64_t n = 0;
    for (std::uint32_t i = 0; i < func_count_; ++i)
      n += funcs_[i].calls.load(std::memory_order_relaxed);
    return n;
  }

 private:
  struct TierFunc {
    std::atomic<const void*> entry{nullptr};
    std::atomic<std::uint64_t> calls{0};
    std::atomic<bool> requested{false};
    std::atomic<bool> failed{false};
  };

  /// Compile + W^X-map + charge + install one function. compile_mu_ held.
  bool compile_one(std::uint32_t index);

  const Module* module_;
  std::span<const CompiledFunc> compiled_;
  TierConfig config_;
  std::unique_ptr<TierFunc[]> funcs_;
  std::uint32_t func_count_ = 0;  ///< size of funcs_ (snapshot scans)

  std::mutex pending_mu_;
  std::vector<std::uint32_t> pending_;

  std::mutex compile_mu_;  // serialises compilers; images_ lives under it
  std::vector<std::unique_ptr<ExecutableImage>> images_;

  std::atomic<std::size_t> code_bytes_{0};
  std::atomic<std::uint64_t> compiles_total_{0};
  std::atomic<std::uint64_t> entries_total_{0};
  std::atomic<std::uint64_t> fallback_total_{0};
  std::atomic<std::uint64_t> fallback_float_{0};
  std::atomic<std::uint64_t> fallback_conv_{0};
  std::atomic<std::uint64_t> fallback_call_{0};
  std::atomic<std::uint64_t> fallback_other_{0};
  std::atomic<std::uint64_t> refused_functions_{0};
  std::atomic<std::uint32_t> last_refused_op_{0xffffffff};

  std::atomic<obs::Counter*> sink_compiles_{nullptr};
  std::atomic<obs::Counter*> sink_entries_{nullptr};
  std::atomic<obs::Counter*> sink_fallback_{nullptr};
  std::atomic<obs::Counter*> sink_fallback_float_{nullptr};
  std::atomic<obs::Counter*> sink_fallback_conv_{nullptr};
  std::atomic<obs::Counter*> sink_fallback_call_{nullptr};
  std::atomic<obs::Counter*> sink_fallback_other_{nullptr};
  std::atomic<obs::Histogram*> sink_compile_ns_{nullptr};
};

}  // namespace watz::wasm::jit
