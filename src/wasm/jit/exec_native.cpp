// Runtime glue for the native tier: the C++ entry thunk that builds a
// JitContext around the shared operand stack, and the helper thunks
// generated code calls for everything the baseline does not lower inline.
//
// Pointer-pinning contract: any helper that can move the operand-stack
// storage (nested calls resize the vector) or linear memory (memory.grow)
// refreshes stack_base / mem_base / mem_size in the context before
// returning; generated code reloads its pinned registers from the context
// after every helper call. Traps never unwind through native frames:
// helpers catch TrapException into trap_code/trap_msg and return normally,
// and the entry thunk rethrows with the canonical message so all three
// tiers stay bit-identical.
#include <cstring>

#include "wasm/compile.hpp"
#include "wasm/exec_common.hpp"
#include "wasm/jit/tier.hpp"

namespace watz::wasm::jit {

namespace {

/// Re-pins the movable windows after anything that may have reallocated
/// the operand stack or grown linear memory.
inline void refresh(JitContext* ctx) {
  ctx->stack_base = ctx->stack->data();
  if (ctx->memory != nullptr) {
    ctx->mem_base = ctx->memory->data();
    ctx->mem_size = ctx->memory->byte_size();
  }
}

inline void record_trap(JitContext* ctx, const TrapException& t) {
  ctx->trap_code = kTrapCustom;
  *ctx->trap_msg = t.message;
}

/// Which per-class counter a thunked opcode charges: the split keeps the
/// remaining coverage holes visible per class as the lowered core widens.
inline std::uint64_t* fallback_class(JitContext* ctx, std::uint32_t op) {
  if ((op >= kF32Eq && op <= kF64Ge) ||
      (op >= kF32Abs && op <= kF32Copysign) ||
      (op >= kF64Abs && op <= kF64Copysign))
    return &ctx->fallback_float;
  if ((op >= kI32WrapI64 && op <= kI64Extend32S) ||
      (op >= kInstrTruncSatBase && op < kInstrTruncSatBase + 8))
    return &ctx->fallback_conv;
  return &ctx->fallback_other;
}

/// The wasm name of a trapping truncation opcode, for rebuilding the
/// interpreter's exact trap message.
inline const char* trunc_op_name(std::int64_t op) {
  switch (op) {
    case kI32TruncF32S: return "i32.trunc_f32_s";
    case kI32TruncF32U: return "i32.trunc_f32_u";
    case kI32TruncF64S: return "i32.trunc_f64_s";
    case kI32TruncF64U: return "i32.trunc_f64_u";
    case kI64TruncF32S: return "i64.trunc_f32_s";
    case kI64TruncF32U: return "i64.trunc_f32_u";
    case kI64TruncF64S: return "i64.trunc_f64_s";
    default: return "i64.trunc_f64_u";
  }
}

}  // namespace

void jit_helper_call(JitContext* ctx, std::uint32_t func_index) {
  std::vector<std::uint64_t>& stack = *ctx->stack;
  std::size_t sp = ctx->sp;
  try {
    exec_call_aot(*ctx->inst, func_index, stack, sp,
                  static_cast<int>(ctx->depth) + 1);
  } catch (const TrapException& t) {
    record_trap(ctx, t);
  }
  ctx->sp = sp;
  ++ctx->fallback_call;
  refresh(ctx);
}

void jit_helper_call_indirect(JitContext* ctx, std::uint32_t type_index) {
  std::vector<std::uint64_t>& stack = *ctx->stack;
  std::size_t sp = ctx->sp;
  try {
    Instance& inst = *ctx->inst;
    const std::uint32_t index = static_cast<std::uint32_t>(stack[--sp]);
    if (index >= inst.table.size()) trap("undefined element");
    const std::int64_t target = inst.table[index];
    if (target < 0) trap("uninitialized element");
    const FuncSlot& callee = inst.funcs[static_cast<std::uint32_t>(target)];
    if (!(callee.type == inst.module().types[type_index]))
      trap("indirect call type mismatch");
    exec_call_aot(inst, static_cast<std::uint32_t>(target), stack, sp,
                  static_cast<int>(ctx->depth) + 1);
  } catch (const TrapException& t) {
    record_trap(ctx, t);
  }
  ctx->sp = sp;
  ++ctx->fallback_call;
  refresh(ctx);
}

void jit_helper_fallback(JitContext* ctx, std::uint32_t op) {
  std::vector<std::uint64_t>& stack = *ctx->stack;
  std::size_t sp = ctx->sp;
  try {
    if (op >= kInstrTruncSatBase && op < kInstrTruncSatBase + 8) {
      exec_trunc_sat(op - kInstrTruncSatBase, stack, sp);
    } else {
      exec_numeric(static_cast<std::uint16_t>(op), stack, sp);
    }
  } catch (const TrapException& t) {
    record_trap(ctx, t);
  }
  ctx->sp = sp;
  ++ctx->fallback_ops;
  ++*fallback_class(ctx, op);
  // exec_numeric never resizes the stack or touches memory; the pinned
  // registers stay valid, but keep the context consistent regardless.
}

void jit_helper_memory_grow(JitContext* ctx) {
  std::vector<std::uint64_t>& stack = *ctx->stack;
  const std::size_t sp = ctx->sp;
  const std::uint32_t delta = static_cast<std::uint32_t>(stack[sp - 1]);
  stack[sp - 1] =
      static_cast<std::uint32_t>(ctx->memory->grow(delta));
  refresh(ctx);
}

void jit_helper_mem_copy(JitContext* ctx) {
  std::vector<std::uint64_t>& stack = *ctx->stack;
  std::size_t sp = ctx->sp;
  const std::uint32_t n = static_cast<std::uint32_t>(stack[--sp]);
  const std::uint32_t src = static_cast<std::uint32_t>(stack[--sp]);
  const std::uint32_t dst = static_cast<std::uint32_t>(stack[--sp]);
  ctx->sp = sp;
  Memory* mem = ctx->memory;
  if (!mem->in_bounds(src, n) || !mem->in_bounds(dst, n)) {
    ctx->trap_code = kTrapOob;
    return;
  }
  std::memmove(mem->data() + dst, mem->data() + src, n);
}

void jit_helper_mem_fill(JitContext* ctx) {
  std::vector<std::uint64_t>& stack = *ctx->stack;
  std::size_t sp = ctx->sp;
  const std::uint32_t n = static_cast<std::uint32_t>(stack[--sp]);
  const std::uint8_t value = static_cast<std::uint8_t>(stack[--sp]);
  const std::uint32_t dst = static_cast<std::uint32_t>(stack[--sp]);
  ctx->sp = sp;
  Memory* mem = ctx->memory;
  if (!mem->in_bounds(dst, n)) {
    ctx->trap_code = kTrapOob;
    return;
  }
  std::memset(mem->data() + dst, value, n);
}

std::uint64_t jit_helper_br_table(JitContext* ctx, const BrTableEntry* entries,
                                  std::uint64_t count) {
  std::vector<std::uint64_t>& stack = *ctx->stack;
  std::size_t sp = ctx->sp;
  const std::uint32_t index = static_cast<std::uint32_t>(stack[--sp]);
  const BrTableEntry& entry = entries[index < count ? index : count];
  if (entry.drop != 0) {
    std::memmove(&stack[sp - entry.keep - entry.drop], &stack[sp - entry.keep],
                 entry.keep * sizeof(std::uint64_t));
    sp -= entry.drop;
  }
  ctx->sp = sp;
  return entry.target;
}

void exec_call_native(Instance& inst, TierSet& tier, const void* entry,
                      const CompiledFunc& cf, std::vector<std::uint64_t>& stack,
                      std::size_t& sp, int depth) {
  // Mirrors the AOT-stream prologue exactly (frame shape, resize policy,
  // local zeroing) so the two tiers are interchangeable mid-call-stack.
  const std::size_t base = sp - cf.num_params;
  const std::size_t need = base + cf.num_locals + cf.max_operand_height + 8;
  if (stack.size() < need) stack.resize(std::max(need, stack.size() * 2));
  for (std::uint32_t i = cf.num_params; i < cf.num_locals; ++i)
    stack[base + i] = 0;

  Memory* mem = inst.memory();
  std::string trap_msg;
  JitContext ctx;
  ctx.stack_base = stack.data();
  ctx.sp = base + cf.num_locals;
  ctx.base = base;
  ctx.mem_base = mem != nullptr ? mem->data() : nullptr;
  ctx.mem_size = mem != nullptr ? mem->byte_size() : 0;
  ctx.inst = &inst;
  ctx.globals = inst.globals.data();
  ctx.stack = &stack;
  ctx.depth = depth;
  ctx.tier = &tier;
  ctx.memory = mem;
  ctx.trap_msg = &trap_msg;

  tier.count_native_entry();
  reinterpret_cast<NativeFn>(reinterpret_cast<std::uintptr_t>(entry))(&ctx);
  tier.add_fallback_ops(ctx.fallback_ops);
  tier.add_fallback_classes(ctx.fallback_float, ctx.fallback_conv,
                            ctx.fallback_call, ctx.fallback_other);

  switch (ctx.trap_code) {
    case kTrapNone:
      break;
    case kTrapOob:
      trap("out of bounds memory access");
    case kTrapDivZero:
      trap("integer divide by zero");
    case kTrapOverflow:
      trap("integer overflow");
    case kTrapUnreachable:
      trap("unreachable executed");
    case kTrapTruncNan:
      trap(std::string("invalid conversion to integer: NaN in ") +
           trunc_op_name(ctx.trap_aux));
    case kTrapTruncOverflow:
      trap(std::string("integer overflow in ") + trunc_op_name(ctx.trap_aux));
    default:
      throw TrapException{std::move(trap_msg)};
  }
  sp = ctx.sp;  // base + result_arity, written by the native epilogue path
}

}  // namespace watz::wasm::jit
