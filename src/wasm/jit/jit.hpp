// Baseline native-codegen tier: shared definitions between the codegen
// (codegen.cpp), the W^X image holder (image.cpp) and the runtime glue
// (exec_native.cpp).
//
// Execution model: a compiled function is a single `NativeFn` entered with
// a JitContext describing the frame — the operand-stack storage, the frame
// base, the linear memory window and the trap flag. The generated code
// keeps hot state in callee-saved registers:
//
//   r15 = JitContext*              (never reloaded)
//   rbp = &stack[base]             (locals + operand slots at fixed offsets)
//   r13 = linear memory base       r14 = linear memory size (bytes)
//
// Operand-stack heights are resolved STATICALLY (the validated stream has
// one height per pc), so pushes/pops become moves to fixed [rbp + disp]
// slots and the dynamic sp only materialises at callout boundaries.
// Anything the baseline does not lower natively — f32/f64 arithmetic,
// clz/ctz/popcnt, saturating truncation, calls, br_table unwinding,
// memory.grow/copy/fill — goes through the jit_helper_* thunks below,
// which run ordinary C++ against the same operand stack. Traps NEVER
// unwind through native frames (there is no unwind info): helpers catch
// TrapException into `trap_code`/`trap_msg`, inline checks set the code
// directly, and generated code tests the flag after every callout and
// branches to the epilogue; the C++ entry thunk rethrows.
//
// Reload discipline (the pinned pointers of ISSUE 7's satellite fix): a
// helper that can move the operand-stack storage or linear memory
// (nested calls can resize the stack; a callee can memory.grow) updates
// stack_base/mem_base/mem_size in the context, and generated code reloads
// rbp/r13/r14 from the context after EVERY helper call before touching
// either again.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "wasm/instance.hpp"

namespace watz::wasm::jit {

class TierSet;

/// Trap codes generated code writes into JitContext::trap_code. Positive
/// codes map to the canonical trap messages (bit-identical with the
/// interpreter and the AOT stream); kTrapCustom carries the message in
/// *trap_msg (helper-caught TrapException).
inline constexpr std::int64_t kTrapNone = 0;
inline constexpr std::int64_t kTrapOob = 1;          // "out of bounds memory access"
inline constexpr std::int64_t kTrapDivZero = 2;      // "integer divide by zero"
inline constexpr std::int64_t kTrapOverflow = 3;     // "integer overflow"
inline constexpr std::int64_t kTrapUnreachable = 4;  // "unreachable executed"
// Trapping float->int truncation: the offending opcode is recorded in
// JitContext::trap_aux so the entry thunk can rebuild the interpreter's
// per-opcode message ("invalid conversion to integer: NaN in i32.trunc_f64_s").
inline constexpr std::int64_t kTrapTruncNan = 5;
inline constexpr std::int64_t kTrapTruncOverflow = 6;
inline constexpr std::int64_t kTrapCustom = -1;

/// The native frame descriptor. Field offsets are baked into generated
/// code — static_asserts in codegen.cpp pin the layout.
struct JitContext {
  std::uint64_t* stack_base = nullptr;  // 0: operand-stack storage
  std::uint64_t sp = 0;                 // 8: dynamic height (callouts only)
  std::uint64_t base = 0;               // 16: frame base index
  std::uint8_t* mem_base = nullptr;     // 24: linear memory window
  std::uint64_t mem_size = 0;           // 32
  Instance* inst = nullptr;             // 40
  GlobalSlot* globals = nullptr;        // 48 (stride 16, bits at +8)
  std::vector<std::uint64_t>* stack = nullptr;  // 56: for resizing helpers
  std::int64_t depth = 0;               // 64
  std::int64_t trap_code = kTrapNone;   // 72
  std::uint64_t fallback_ops = 0;       // 80: per-opcode thunk invocations
  TierSet* tier = nullptr;              // 88: nested tiered dispatch
  Memory* memory = nullptr;             // 96
  std::string* trap_msg = nullptr;      // 104: kTrapCustom message
  // Per-class thunk counters (fallback_ops = float + conv + other; calls are
  // counted separately since call dispatch is expected, not missing coverage).
  std::uint64_t fallback_float = 0;     // 112: float arith/cmp still thunked
  std::uint64_t fallback_conv = 0;      // 120: conversions still thunked
  std::uint64_t fallback_other = 0;     // 128: clz/ctz/popcnt/...
  std::uint64_t fallback_call = 0;      // 136: call/call_indirect helpers
  std::int64_t trap_aux = 0;            // 144: opcode behind kTrapTrunc*
};

using NativeFn = void (*)(JitContext*);

/// True when this host can run the baseline tier: x86-64 and not opted out
/// via the WATZ_DISABLE_JIT environment variable (the CI lever for the
/// non-x86-64 wholesale-fallback path). Checked once per process.
bool jit_available() noexcept;

/// W^X executable pages: mapped RW, filled, then flipped to RX — the image
/// is never writable and executable at once. create() returns null when
/// the platform cannot provide executable pages (the caller falls back to
/// the AOT stream wholesale).
class ExecutableImage {
 public:
  static std::unique_ptr<ExecutableImage> create(const std::uint8_t* code,
                                                 std::size_t size);
  ~ExecutableImage();
  ExecutableImage(const ExecutableImage&) = delete;
  ExecutableImage& operator=(const ExecutableImage&) = delete;

  const std::uint8_t* entry() const noexcept { return pages_; }
  /// Page-rounded footprint (what the secure-heap gauge is charged).
  std::size_t bytes() const noexcept { return map_bytes_; }

 private:
  ExecutableImage(std::uint8_t* pages, std::size_t map_bytes)
      : pages_(pages), map_bytes_(map_bytes) {}
  std::uint8_t* pages_;
  std::size_t map_bytes_;
};

/// Lowers one validated AOT-stream function to x86-64. Returns the
/// position-independent code bytes (entry at offset 0), or an empty vector
/// when the function uses a shape the baseline refuses (multi-value
/// branches, inconsistent static heights) — the caller keeps that function
/// on the AOT stream forever. On refusal, `refused_op` (when non-null)
/// receives the opcode that stopped lowering (0xffff for structural
/// refusals with no single opcode to blame) so coverage regressions are
/// debuggable instead of silent.
std::vector<std::uint8_t> compile_function(const Module& module,
                                           const CompiledFunc& func,
                                           std::uint16_t* refused_op = nullptr);

// -- helper thunks (addresses embedded in generated code) ---------------------

void jit_helper_call(JitContext* ctx, std::uint32_t func_index);
void jit_helper_call_indirect(JitContext* ctx, std::uint32_t type_index);
void jit_helper_fallback(JitContext* ctx, std::uint32_t op);
void jit_helper_memory_grow(JitContext* ctx);
void jit_helper_mem_copy(JitContext* ctx);
void jit_helper_mem_fill(JitContext* ctx);
/// Pops the selector, unwinds per the chosen BrTableEntry and returns the
/// target pc (generated code indirects through its pc->offset table).
std::uint64_t jit_helper_br_table(JitContext* ctx, const BrTableEntry* entries,
                                  std::uint64_t count);

/// Entry thunk: builds the native frame (mirrors the AOT-stream prologue,
/// including the operand-stack resize), runs `entry`, flushes metrics and
/// rethrows any recorded trap with its canonical message.
void exec_call_native(Instance& inst, TierSet& tier, const void* entry,
                      const CompiledFunc& cf, std::vector<std::uint64_t>& stack,
                      std::size_t& sp, int depth);

}  // namespace watz::wasm::jit
