// Minimal x86-64 machine-code emitter for the baseline JIT tier.
//
// Plain-struct encodings appended to a byte buffer: REX prefixes, ModRM/SIB
// addressing and rel32 control flow — just enough of the ISA for the
// codegen in codegen.cpp. No external dependencies, no assembler: every
// helper writes the exact bytes of one instruction form, so the emitted
// stream is auditable against the Intel SDM opcode tables. Labels are the
// caller's problem (codegen records patch sites and back-patches rel32 /
// disp32 fields after layout), which keeps this layer stateless.
#pragma once

#include <cstdint>
#include <cstring>
#include <vector>

namespace watz::wasm::jit {

/// Register numbers as encoded in ModRM (REX.B/R extends to r8-r15).
enum Reg : std::uint8_t {
  RAX = 0,
  RCX = 1,
  RDX = 2,
  RBX = 3,
  RSP = 4,
  RBP = 5,
  RSI = 6,
  RDI = 7,
  R8 = 8,
  R9 = 9,
  R10 = 10,
  R11 = 11,
  R12 = 12,
  R13 = 13,
  R14 = 14,
  R15 = 15,
};

/// Condition codes (the low nibble of the 0F 8x / 0F 9x opcodes).
enum Cond : std::uint8_t {
  CC_O = 0x0,
  CC_NO = 0x1,
  CC_B = 0x2,   // unsigned <
  CC_AE = 0x3,  // unsigned >=
  CC_E = 0x4,
  CC_NE = 0x5,
  CC_BE = 0x6,  // unsigned <=
  CC_A = 0x7,   // unsigned >
  CC_S = 0x8,
  CC_NS = 0x9,
  CC_P = 0xa,   // parity (unordered after ucomis)
  CC_NP = 0xb,  // no parity (ordered)
  CC_L = 0xc,   // signed <
  CC_GE = 0xd,  // signed >=
  CC_LE = 0xe,  // signed <=
  CC_G = 0xf,   // signed >
};

class Emitter {
 public:
  std::vector<std::uint8_t> buf;

  std::size_t size() const noexcept { return buf.size(); }
  void u8(std::uint8_t b) { buf.push_back(b); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
  /// Back-patches a 32-bit little-endian field written earlier.
  void patch32(std::size_t at, std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf[at + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }

  // -- prefixes / ModRM --------------------------------------------------------

  /// Emits a REX prefix when any bit is needed (or forced by `w`).
  void rex(bool w, std::uint8_t reg, std::uint8_t index, std::uint8_t base) {
    const std::uint8_t r = (w ? 0x8 : 0) | ((reg & 8) >> 1) | ((index & 8) >> 2) |
                           ((base & 8) >> 3);
    if (r || w) u8(0x40 | r);
  }

  void modrm(std::uint8_t mod, std::uint8_t reg, std::uint8_t rm) {
    u8(static_cast<std::uint8_t>((mod << 6) | ((reg & 7) << 3) | (rm & 7)));
  }

  /// ModRM (+SIB +disp) for a [base + index*scale + disp] memory operand.
  /// `index` = 0xff for none. Handles the RSP/R12 SIB requirement and the
  /// RBP/R13 no-mod-00 rule.
  void mem(std::uint8_t reg, Reg base, std::uint8_t index, std::uint8_t scale_log2,
           std::int32_t disp) {
    const bool need_sib = index != 0xff || (base & 7) == 4;
    const bool no_disp0 = (base & 7) == 5;  // rbp/r13: mod 00 means rip/disp32
    std::uint8_t mod;
    if (disp == 0 && !no_disp0)
      mod = 0;
    else if (disp >= -128 && disp <= 127)
      mod = 1;
    else
      mod = 2;
    if (need_sib) {
      modrm(mod, reg, 4);
      u8(static_cast<std::uint8_t>((scale_log2 << 6) | ((index == 0xff ? 4 : (index & 7)) << 3) |
                                   (base & 7)));
    } else {
      modrm(mod, reg, base);
    }
    if (mod == 1)
      u8(static_cast<std::uint8_t>(disp));
    else if (mod == 2)
      u32(static_cast<std::uint32_t>(disp));
  }

  // -- moves -------------------------------------------------------------------

  void mov_ri64(Reg r, std::uint64_t imm) {  // movabs r64, imm64
    rex(true, 0, 0, r);
    u8(static_cast<std::uint8_t>(0xB8 | (r & 7)));
    u64(imm);
  }
  void mov_ri32(Reg r, std::uint32_t imm) {  // mov r32, imm32 (zero-extends)
    rex(false, 0, 0, r);
    u8(static_cast<std::uint8_t>(0xB8 | (r & 7)));
    u32(imm);
  }
  void mov_rr(Reg dst, Reg src, bool wide = true) {  // mov r64/r32, r64/r32
    rex(wide, src, 0, dst);
    u8(0x89);
    modrm(3, src, dst);
  }
  /// mov r64, [base + disp]
  void load64(Reg dst, Reg base, std::int32_t disp) {
    rex(true, dst, 0, base);
    u8(0x8B);
    mem(dst, base, 0xff, 0, disp);
  }
  /// mov r32, [base + disp] — zero-extends into the full register.
  void load32(Reg dst, Reg base, std::int32_t disp) {
    rex(false, dst, 0, base);
    u8(0x8B);
    mem(dst, base, 0xff, 0, disp);
  }
  /// mov [base + disp], r64
  void store64(Reg base, std::int32_t disp, Reg src) {
    rex(true, src, 0, base);
    u8(0x89);
    mem(src, base, 0xff, 0, disp);
  }
  /// Sized load from [base + index] with sign/zero extension.
  /// width_log2: 0/1/2/3 bytes; sign extends to 32 (`wide`=false) or 64.
  void load_mem_extend(Reg dst, Reg base, Reg index, std::uint8_t width_log2,
                       bool sign, bool wide) {
    switch (width_log2) {
      case 0:
        rex(sign ? wide : false, dst, index, base);
        u8(0x0F);
        u8(sign ? 0xBE : 0xB6);
        break;
      case 1:
        rex(sign ? wide : false, dst, index, base);
        u8(0x0F);
        u8(sign ? 0xBF : 0xB7);
        break;
      case 2:
        if (sign) {
          rex(true, dst, index, base);  // movsxd r64, r/m32
          u8(0x63);
        } else {
          rex(false, dst, index, base);  // mov r32, r/m32
          u8(0x8B);
        }
        break;
      default:
        rex(true, dst, index, base);
        u8(0x8B);
        break;
    }
    mem(dst, base, index, 0, 0);
  }
  /// Sized store of the low bytes of `src` to [base + index].
  void store_mem(Reg base, Reg index, std::uint8_t width_log2, Reg src) {
    switch (width_log2) {
      case 0:
        // SPL/BPL/SIL/DIL would need a REX; we only ever store from rcx (CL).
        rex(false, src, index, base);
        u8(0x88);
        break;
      case 1:
        u8(0x66);
        rex(false, src, index, base);
        u8(0x89);
        break;
      case 2:
        rex(false, src, index, base);
        u8(0x89);
        break;
      default:
        rex(true, src, index, base);
        u8(0x89);
        break;
    }
    mem(src, base, index, 0, 0);
  }
  /// mov r32, [base + index*4] (zero-extends) — br_table offset fetch.
  void load32_scaled4(Reg dst, Reg base, Reg index) {
    rex(false, dst, index, base);
    u8(0x8B);
    mem(dst, base, index, 2, 0);
  }

  // -- ALU ---------------------------------------------------------------------

  /// Two-register ALU op (MR form: dst = dst OP src). `op` is the 32-bit
  /// opcode byte: add 01, or 09, and 21, sub 29, xor 31, cmp 39.
  void alu_rr(std::uint8_t op, Reg dst, Reg src, bool wide) {
    rex(wide, src, 0, dst);
    u8(op);
    modrm(3, src, dst);
  }
  void add_rr(Reg dst, Reg src, bool wide = true) { alu_rr(0x01, dst, src, wide); }
  void sub_rr(Reg dst, Reg src, bool wide = true) { alu_rr(0x29, dst, src, wide); }
  void and_rr(Reg dst, Reg src, bool wide = true) { alu_rr(0x21, dst, src, wide); }
  void or_rr(Reg dst, Reg src, bool wide = true) { alu_rr(0x09, dst, src, wide); }
  void xor_rr(Reg dst, Reg src, bool wide = true) { alu_rr(0x31, dst, src, wide); }
  void cmp_rr(Reg a, Reg b, bool wide = true) { alu_rr(0x39, a, b, wide); }
  void test_rr(Reg a, Reg b, bool wide = true) {
    rex(wide, b, 0, a);
    u8(0x85);
    modrm(3, b, a);
  }
  /// ALU with immediate (81 /ext id or 83 /ext ib). ext: add 0, sub 5, cmp 7.
  void alu_ri(std::uint8_t ext, Reg r, std::int32_t imm, bool wide) {
    rex(wide, 0, 0, r);
    if (imm >= -128 && imm <= 127) {
      u8(0x83);
      modrm(3, ext, r);
      u8(static_cast<std::uint8_t>(imm));
    } else {
      u8(0x81);
      modrm(3, ext, r);
      u32(static_cast<std::uint32_t>(imm));
    }
  }
  void add_ri(Reg r, std::int32_t imm, bool wide = true) { alu_ri(0, r, imm, wide); }
  void cmp_ri(Reg r, std::int32_t imm, bool wide = true) { alu_ri(7, r, imm, wide); }
  void imul_rr(Reg dst, Reg src, bool wide) {  // imul r, r/m
    rex(wide, dst, 0, src);
    u8(0x0F);
    u8(0xAF);
    modrm(3, dst, src);
  }
  /// Shift/rotate by CL: ext — rol 0, ror 1, shl 4, shr 5, sar 7.
  void shift_cl(std::uint8_t ext, Reg r, bool wide) {
    rex(wide, 0, 0, r);
    u8(0xD3);
    modrm(3, ext, r);
  }
  /// Shift/rotate by immediate (C1 /ext ib), same ext codes as shift_cl.
  void shift_ri(std::uint8_t ext, Reg r, std::uint8_t imm, bool wide) {
    rex(wide, 0, 0, r);
    u8(0xC1);
    modrm(3, ext, r);
    u8(imm);
  }
  void cdq() { u8(0x99); }
  void cqo() {
    u8(0x48);
    u8(0x99);
  }
  void idiv(Reg r, bool wide) {  // F7 /7
    rex(wide, 0, 0, r);
    u8(0xF7);
    modrm(3, 7, r);
  }
  void div(Reg r, bool wide) {  // F7 /6
    rex(wide, 0, 0, r);
    u8(0xF7);
    modrm(3, 6, r);
  }
  /// movsx within/into a register: 8->32/64, 16->32/64, 32->64.
  void movsx_rr(Reg dst, Reg src, std::uint8_t from_log2, bool wide) {
    if (from_log2 == 2) {
      rex(true, dst, 0, src);  // movsxd
      u8(0x63);
    } else {
      // 8-bit source: low byte of rax..r15 needs REX when src >= 4.
      if (from_log2 == 0 && src >= RSP && !wide && !(dst & 8) && !(src & 8)) u8(0x40);
      rex(wide, dst, 0, src);
      u8(0x0F);
      u8(from_log2 == 0 ? 0xBE : 0xBF);
    }
    modrm(3, dst, src);
  }
  void setcc(Cond cc, Reg r) {  // setcc r8 (use rax..rdx only: no REX handling)
    u8(0x0F);
    u8(static_cast<std::uint8_t>(0x90 | cc));
    modrm(3, 0, r);
  }
  void movzx8_rr(Reg dst, Reg src) {  // movzx r32, r8
    rex(false, dst, 0, src);
    u8(0x0F);
    u8(0xB6);
    modrm(3, dst, src);
  }
  void cmovcc(Cond cc, Reg dst, Reg src, bool wide = true) {
    rex(wide, dst, 0, src);
    u8(0x0F);
    u8(static_cast<std::uint8_t>(0x40 | cc));
    modrm(3, dst, src);
  }
  /// lea dst, [base + index*8]
  void lea_scaled8(Reg dst, Reg base, Reg index) {
    rex(true, dst, index, base);
    u8(0x8D);
    mem(dst, base, index, 3, 0);
  }
  /// lea dst, [base + disp]
  void lea_disp(Reg dst, Reg base, std::int32_t disp) {
    rex(true, dst, 0, base);
    u8(0x8D);
    mem(dst, base, 0xff, 0, disp);
  }
  /// lea dst, [rip + disp32]; returns the patch offset of the disp32 field.
  /// The final displacement is relative to the END of this instruction.
  std::size_t lea_rip(Reg dst) {
    rex(true, dst, 0, 0);
    u8(0x8D);
    modrm(0, dst, 5);
    const std::size_t at = size();
    u32(0);
    return at;
  }
  /// cmp qword [base + disp], imm8
  void cmp_m64_imm8(Reg base, std::int32_t disp, std::int8_t imm) {
    rex(true, 0, 0, base);
    u8(0x83);
    mem(7, base, 0xff, 0, disp);
    u8(static_cast<std::uint8_t>(imm));
  }
  /// mov qword [base + disp], imm32 (sign-extended)
  void store_imm32(Reg base, std::int32_t disp, std::int32_t imm) {
    rex(true, 0, 0, base);
    u8(0xC7);
    mem(0, base, 0xff, 0, disp);
    u32(static_cast<std::uint32_t>(imm));
  }

  /// Two-register ALU op, RM form (dst = dst OP [base + disp]). `op` is the
  /// RM opcode byte: add 03, or 0B, and 23, sub 2B, xor 33, cmp 3B.
  void alu_rm(std::uint8_t op, Reg dst, Reg base, std::int32_t disp, bool wide) {
    rex(wide, dst, 0, base);
    u8(op);
    mem(dst, base, 0xff, 0, disp);
  }
  void imul_rm(Reg dst, Reg base, std::int32_t disp, bool wide) {
    rex(wide, dst, 0, base);
    u8(0x0F);
    u8(0xAF);
    mem(dst, base, 0xff, 0, disp);
  }

  // -- SSE2 scalar float -------------------------------------------------------
  // XMM registers share the GPR ModRM/REX numbering; the `x` parameters are
  // xmm indices. The mandatory prefix (F2/F3/66, 0 = none) always precedes
  // any REX byte.

  /// Generic xmm, xmm form: prefix 0F opc /r.
  void sse_rr(std::uint8_t prefix, std::uint8_t opc, std::uint8_t xdst,
              std::uint8_t xsrc) {
    if (prefix) u8(prefix);
    rex(false, xdst, 0, xsrc);
    u8(0x0F);
    u8(opc);
    modrm(3, xdst, xsrc);
  }
  /// Generic xmm, [base + disp] form.
  void sse_rm(std::uint8_t prefix, std::uint8_t opc, std::uint8_t x, Reg base,
              std::int32_t disp) {
    if (prefix) u8(prefix);
    rex(false, x, 0, base);
    u8(0x0F);
    u8(opc);
    mem(x, base, 0xff, 0, disp);
  }

  /// movsd/movss xmm, [mem] (scalar load; zeroes the upper lanes).
  void movf_load(bool f64, std::uint8_t x, Reg base, std::int32_t disp) {
    sse_rm(f64 ? 0xF2 : 0xF3, 0x10, x, base, disp);
  }
  /// movsd/movss [mem], xmm (scalar store).
  void movf_store(bool f64, Reg base, std::int32_t disp, std::uint8_t x) {
    sse_rm(f64 ? 0xF2 : 0xF3, 0x11, x, base, disp);
  }
  void movaps_rr(std::uint8_t xdst, std::uint8_t xsrc) { sse_rr(0, 0x28, xdst, xsrc); }
  /// movq/movd xmm, r64/r32 (66 [REX.W] 0F 6E; zeroes the upper lanes).
  void mov_xr(std::uint8_t x, Reg r, bool wide) {
    u8(0x66);
    rex(wide, x, 0, r);
    u8(0x0F);
    u8(0x6E);
    modrm(3, x, r);
  }
  /// movq/movd r64/r32, xmm (66 [REX.W] 0F 7E; the r32 form zero-extends).
  void mov_rx(Reg r, std::uint8_t x, bool wide) {
    u8(0x66);
    rex(wide, x, 0, r);
    u8(0x0F);
    u8(0x7E);
    modrm(3, x, r);
  }
  /// Scalar arith xmm, xmm. opc: sqrt 51, add 58, mul 59, sub 5C, min 5D,
  /// div 5E, max 5F.
  void sse_arith_rr(bool f64, std::uint8_t opc, std::uint8_t xdst, std::uint8_t xsrc) {
    sse_rr(f64 ? 0xF2 : 0xF3, opc, xdst, xsrc);
  }
  /// Scalar arith xmm, [mem] — the load-op fusion form.
  void sse_arith_rm(bool f64, std::uint8_t opc, std::uint8_t x, Reg base,
                    std::int32_t disp) {
    sse_rm(f64 ? 0xF2 : 0xF3, opc, x, base, disp);
  }
  /// ucomisd/ucomiss xmm(a), xmm(b): compares a against b; unordered sets
  /// ZF=PF=CF=1.
  void ucomis_rr(bool f64, std::uint8_t xa, std::uint8_t xb) {
    sse_rr(f64 ? 0x66 : 0x00, 0x2E, xa, xb);
  }
  void andpd_rr(std::uint8_t xdst, std::uint8_t xsrc) { sse_rr(0x66, 0x54, xdst, xsrc); }
  void orpd_rr(std::uint8_t xdst, std::uint8_t xsrc) { sse_rr(0x66, 0x56, xdst, xsrc); }
  /// cvttsd2si/cvttss2si r32/r64, xmm (truncating float -> int).
  void cvtt_f2i(bool f64_src, bool wide, Reg dst, std::uint8_t x) {
    u8(f64_src ? 0xF2 : 0xF3);
    rex(wide, dst, 0, x);
    u8(0x0F);
    u8(0x2C);
    modrm(3, dst, x);
  }
  /// cvtsi2sd/cvtsi2ss xmm, r32/r64 (int -> float).
  void cvt_i2f(bool f64_dst, bool wide, std::uint8_t x, Reg src) {
    u8(f64_dst ? 0xF2 : 0xF3);
    rex(wide, x, 0, src);
    u8(0x0F);
    u8(0x2A);
    modrm(3, x, src);
  }
  void cvtsd2ss(std::uint8_t xdst, std::uint8_t xsrc) { sse_rr(0xF2, 0x5A, xdst, xsrc); }
  void cvtss2sd(std::uint8_t xdst, std::uint8_t xsrc) { sse_rr(0xF3, 0x5A, xdst, xsrc); }

  // -- control flow ------------------------------------------------------------

  /// jcc rel32; returns the patch offset of the rel32 field.
  std::size_t jcc(Cond cc) {
    u8(0x0F);
    u8(static_cast<std::uint8_t>(0x80 | cc));
    const std::size_t at = size();
    u32(0);
    return at;
  }
  /// jmp rel32; returns the patch offset of the rel32 field.
  std::size_t jmp() {
    u8(0xE9);
    const std::size_t at = size();
    u32(0);
    return at;
  }
  /// Resolves a rel32 patch site against a target buffer offset.
  void patch_rel32(std::size_t at, std::size_t target) {
    patch32(at, static_cast<std::uint32_t>(target - (at + 4)));
  }
  void jmp_r(Reg r) {  // jmp r64
    rex(false, 0, 0, r);
    u8(0xFF);
    modrm(3, 4, r);
  }
  void call_r(Reg r) {  // call r64
    rex(false, 0, 0, r);
    u8(0xFF);
    modrm(3, 2, r);
  }
  void push_r(Reg r) {
    if (r & 8) u8(0x41);
    u8(static_cast<std::uint8_t>(0x50 | (r & 7)));
  }
  void pop_r(Reg r) {
    if (r & 8) u8(0x41);
    u8(static_cast<std::uint8_t>(0x58 | (r & 7)));
  }
  void ret() { u8(0xC3); }
  void sub_rsp8() {  // sub rsp, 8 (alignment slot)
    u8(0x48);
    u8(0x83);
    u8(0xEC);
    u8(0x08);
  }
  void add_rsp8() {
    u8(0x48);
    u8(0x83);
    u8(0xC4);
    u8(0x08);
  }
  /// Pads with int3 to the given alignment (between code and data tables).
  void align(std::size_t a) {
    while (buf.size() % a) u8(0xCC);
  }
};

}  // namespace watz::wasm::jit
