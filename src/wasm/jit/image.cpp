#include "wasm/jit/jit.hpp"

#include <cstdlib>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#include <unistd.h>
#define WATZ_JIT_HAS_MMAP 1
#else
#define WATZ_JIT_HAS_MMAP 0
#endif

namespace watz::wasm::jit {

bool jit_available() noexcept {
#if defined(__x86_64__) && WATZ_JIT_HAS_MMAP
  static const bool enabled = std::getenv("WATZ_DISABLE_JIT") == nullptr;
  return enabled;
#else
  return false;
#endif
}

std::unique_ptr<ExecutableImage> ExecutableImage::create(
    const std::uint8_t* code, std::size_t size) {
#if WATZ_JIT_HAS_MMAP
  if (size == 0) return nullptr;
  const std::size_t page = static_cast<std::size_t>(::sysconf(_SC_PAGESIZE));
  const std::size_t map_bytes = (size + page - 1) & ~(page - 1);
  void* pages = ::mmap(nullptr, map_bytes, PROT_READ | PROT_WRITE,
                       MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
  if (pages == MAP_FAILED) return nullptr;
  std::memcpy(pages, code, size);
  if (::mprotect(pages, map_bytes, PROT_READ | PROT_EXEC) != 0) {
    ::munmap(pages, map_bytes);
    return nullptr;
  }
  return std::unique_ptr<ExecutableImage>(
      new ExecutableImage(static_cast<std::uint8_t*>(pages), map_bytes));
#else
  (void)code;
  (void)size;
  return nullptr;
#endif
}

ExecutableImage::~ExecutableImage() {
#if WATZ_JIT_HAS_MMAP
  ::munmap(pages_, map_bytes_);
#endif
}

}  // namespace watz::wasm::jit
