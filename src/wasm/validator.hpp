// WebAssembly module validation: full type checking of function bodies with
// the spec's stack-polymorphic algorithm, plus index-space and segment
// checks. A validated module cannot make the executors read out of bounds
// of their own structures (linear-memory accesses are checked at run time).
#pragma once

#include "common/result.hpp"
#include "wasm/module.hpp"

namespace watz::wasm {

Status validate_module(const Module& module);

}  // namespace watz::wasm
