#include "wasm/compile.hpp"

#include <cstring>

#include "common/leb128.hpp"
#include "wasm/opcodes.hpp"

namespace watz::wasm {

Status skip_immediates(ByteReader& r, std::uint8_t op) {
  auto skip_uleb = [&]() -> Status {
    auto v = r.read_uleb64();
    return v.ok() ? Status{} : Status::err(v.error());
  };
  auto skip_sleb = [&]() -> Status {
    auto v = r.read_sleb64();
    return v.ok() ? Status{} : Status::err(v.error());
  };
  auto skip_bytes = [&](std::size_t n) -> Status {
    auto v = r.read_bytes(n);
    return v.ok() ? Status{} : Status::err(v.error());
  };

  switch (op) {
    case kBlock:
    case kLoop:
    case kIf:
      return skip_bytes(1);  // block type
    case kBr:
    case kBrIf:
    case kCall:
    case kLocalGet:
    case kLocalSet:
    case kLocalTee:
    case kGlobalGet:
    case kGlobalSet:
      return skip_uleb();
    case kBrTable: {
      auto count = r.read_uleb32();
      if (!count.ok()) return Status::err(count.error());
      for (std::uint32_t i = 0; i <= *count; ++i) {
        const Status st = skip_uleb();
        if (!st.ok()) return st;
      }
      return {};
    }
    case kCallIndirect: {
      Status st = skip_uleb();
      if (!st.ok()) return st;
      return skip_bytes(1);
    }
    case kI32Const:
    case kI64Const:
      return skip_sleb();
    case kF32Const:
      return skip_bytes(4);
    case kF64Const:
      return skip_bytes(8);
    case kMemorySize:
    case kMemoryGrow:
      return skip_bytes(1);
    case kPrefixFC: {
      auto sub = r.read_uleb32();
      if (!sub.ok()) return Status::err(sub.error());
      if (*sub == kMemoryCopy) return skip_bytes(2);
      if (*sub == kMemoryFill) return skip_bytes(1);
      return {};  // trunc-sat: no immediates
    }
    default:
      if (op >= kI32Load && op <= kI64Store32) {
        const Status st = skip_uleb();
        if (!st.ok()) return st;
        return skip_uleb();
      }
      return {};  // no immediates
  }
}

Result<std::size_t> find_block_end(ByteView code, std::size_t pos,
                                   std::size_t* else_pos) {
  ByteReader r(code);
  r.seek(pos);
  int depth = 0;
  while (true) {
    auto op = r.read_u8();
    if (!op.ok()) return Result<std::size_t>::err("scan: unterminated block");
    switch (*op) {
      case kBlock:
      case kLoop:
      case kIf:
        ++depth;
        break;
      case kElse:
        if (depth == 0 && else_pos != nullptr) *else_pos = r.pos();
        continue;
      case kEnd:
        if (depth == 0) return r.pos();
        --depth;
        continue;
      default:
        break;
    }
    const Status st = skip_immediates(r, *op);
    if (!st.ok()) return Result<std::size_t>::err(st.error());
  }
}

namespace {

constexpr std::uint32_t kFixupTableFlag = 0x80000000u;

struct Frame {
  std::uint8_t kind;  // kBlock / kLoop / kIf / kElse
  std::uint32_t entry_height = 0;
  std::uint32_t arity = 0;
  std::uint32_t loop_target = 0;
  std::vector<std::uint32_t> end_fixups;  // instr index, or table index | flag
  std::uint32_t else_fixup = UINT32_MAX;
};

class Compiler {
 public:
  Compiler(const Module& module, std::uint32_t func_index)
      : module_(module),
        body_(module.code[func_index]),
        type_(module.types[module.functions[func_index]]),
        reader_(body_.code) {}

  Result<CompiledFunc> run() {
    out_.num_params = static_cast<std::uint32_t>(type_.params.size());
    out_.num_locals = out_.num_params + static_cast<std::uint32_t>(body_.locals.size());
    out_.result_arity = static_cast<std::uint32_t>(type_.results.size());

    frames_.push_back(Frame{kBlock, 0, out_.result_arity, 0, {}, UINT32_MAX});

    while (!frames_.empty()) {
      auto op = reader_.read_u8();
      if (!op.ok()) return Result<CompiledFunc>::err("compile: truncated body");
      const Status st = compile_op(*op);
      if (!st.ok()) return Result<CompiledFunc>::err(st.error());
    }
    return std::move(out_);
  }

 private:
  std::uint32_t emit(std::uint16_t op, std::uint16_t aux = 0, std::uint32_t a = 0,
                     std::uint64_t imm = 0) {
    out_.code.push_back(Instr{op, aux, a, imm});
    return static_cast<std::uint32_t>(out_.code.size() - 1);
  }

  void adjust_height(int delta) {
    height_ = static_cast<std::uint32_t>(static_cast<int>(height_) + delta);
    if (height_ > out_.max_operand_height) out_.max_operand_height = height_;
  }

  void patch_frame(Frame& frame, std::uint32_t end_pc) {
    for (std::uint32_t fixup : frame.end_fixups) {
      if (fixup & kFixupTableFlag) {
        out_.tables[fixup & ~kFixupTableFlag].target = end_pc;
      } else {
        out_.code[fixup].a = end_pc;
      }
    }
    if (frame.else_fixup != UINT32_MAX) out_.code[frame.else_fixup].a = end_pc;
  }

  /// After an unconditional transfer, skip raw bytecode until the `else` or
  /// `end` that re-activates this frame. Returns the op that ended the skip.
  Result<std::uint8_t> skip_dead_code() {
    int depth = 0;
    while (true) {
      auto op = reader_.read_u8();
      if (!op.ok()) return Result<std::uint8_t>::err("compile: unterminated dead code");
      switch (*op) {
        case kBlock:
        case kLoop:
        case kIf:
          ++depth;
          break;
        case kElse:
          if (depth == 0) return *op;
          continue;
        case kEnd:
          if (depth == 0) return *op;
          --depth;
          continue;
        default:
          break;
      }
      const Status st = skip_immediates(reader_, *op);
      if (!st.ok()) return Result<std::uint8_t>::err(st.error());
    }
  }

  Result<std::uint32_t> read_block_arity() {
    auto b = reader_.read_u8();
    if (!b.ok()) return Result<std::uint32_t>::err(b.error());
    return *b == 0x40 ? 0u : 1u;
  }

  /// Emits the keep/drop branch to relative depth `d`. Returns the emitted
  /// instruction's fixup registration.
  Status emit_branch(std::uint16_t opcode, std::uint32_t d) {
    if (d >= frames_.size()) return Status::err("compile: branch depth oob");
    Frame& target = frames_[frames_.size() - 1 - d];
    const bool to_loop = target.kind == kLoop;
    const std::uint32_t keep = to_loop ? 0 : target.arity;
    const std::uint32_t drop = height_ - target.entry_height - keep;
    const std::uint32_t idx =
        emit(opcode, static_cast<std::uint16_t>(keep), to_loop ? target.loop_target : 0,
             drop);
    if (!to_loop) target.end_fixups.push_back(idx);
    return {};
  }

  Status handle_block_terminator(std::uint8_t op);

  Status compile_op(std::uint8_t op);

  const Module& module_;
  const FunctionBody& body_;
  const FuncType& type_;
  ByteReader reader_;
  CompiledFunc out_;
  std::vector<Frame> frames_;
  std::uint32_t height_ = 0;
};

Status Compiler::handle_block_terminator(std::uint8_t op) {
  Frame& frame = frames_.back();
  if (op == kElse) {
    if (frame.kind != kIf) return Status::err("compile: else without if");
    // Jump over the else arm at the end of the then arm.
    const std::uint32_t br_idx = emit(kBr, 0, 0, 0);
    frame.end_fixups.push_back(br_idx);
    // The false branch of the `if` lands here.
    if (frame.else_fixup != UINT32_MAX) {
      out_.code[frame.else_fixup].a = static_cast<std::uint32_t>(out_.code.size());
      frame.else_fixup = UINT32_MAX;
    }
    frame.kind = kElse;
    height_ = frame.entry_height;
    return {};
  }

  // kEnd.
  const std::uint32_t end_pc = static_cast<std::uint32_t>(out_.code.size());
  Frame done = std::move(frames_.back());
  frames_.pop_back();
  patch_frame(done, end_pc);
  height_ = done.entry_height + done.arity;
  if (frames_.empty()) {
    emit(kReturn, static_cast<std::uint16_t>(out_.result_arity));
  }
  return {};
}

Status Compiler::compile_op(std::uint8_t op) {
  switch (op) {
    case kNop:
      return {};
    case kUnreachable: {
      emit(kUnreachable);
      auto term = skip_dead_code();
      if (!term.ok()) return Status::err(term.error());
      return handle_block_terminator(*term);
    }

    case kBlock: {
      auto arity = read_block_arity();
      if (!arity.ok()) return Status::err(arity.error());
      frames_.push_back(Frame{kBlock, height_, *arity, 0, {}, UINT32_MAX});
      return {};
    }
    case kLoop: {
      auto arity = read_block_arity();
      if (!arity.ok()) return Status::err(arity.error());
      frames_.push_back(Frame{kLoop, height_, *arity,
                              static_cast<std::uint32_t>(out_.code.size()), {},
                              UINT32_MAX});
      return {};
    }
    case kIf: {
      auto arity = read_block_arity();
      if (!arity.ok()) return Status::err(arity.error());
      adjust_height(-1);  // condition
      const std::uint32_t idx = emit(kInstrBrIfFalse, 0, 0, 0);
      frames_.push_back(Frame{kIf, height_, *arity, 0, {}, idx});
      return {};
    }
    case kElse:
    case kEnd:
      return handle_block_terminator(op);

    case kBr: {
      auto d = reader_.read_uleb32();
      if (!d.ok()) return Status::err(d.error());
      const Status st = emit_branch(kBr, *d);
      if (!st.ok()) return st;
      auto term = skip_dead_code();
      if (!term.ok()) return Status::err(term.error());
      return handle_block_terminator(*term);
    }
    case kBrIf: {
      auto d = reader_.read_uleb32();
      if (!d.ok()) return Status::err(d.error());
      adjust_height(-1);  // condition
      return emit_branch(kBrIf, *d);
    }
    case kBrTable: {
      auto count = reader_.read_uleb32();
      if (!count.ok()) return Status::err(count.error());
      adjust_height(-1);  // index operand
      const std::uint32_t base = static_cast<std::uint32_t>(out_.tables.size());
      const std::uint32_t n = *count;
      for (std::uint32_t i = 0; i <= n; ++i) {
        auto d = reader_.read_uleb32();
        if (!d.ok()) return Status::err(d.error());
        if (*d >= frames_.size()) return Status::err("compile: br_table depth oob");
        Frame& target = frames_[frames_.size() - 1 - *d];
        const bool to_loop = target.kind == kLoop;
        const std::uint16_t keep = static_cast<std::uint16_t>(to_loop ? 0 : target.arity);
        const std::uint32_t drop = height_ - target.entry_height - keep;
        out_.tables.push_back(
            BrTableEntry{to_loop ? target.loop_target : 0, keep, drop});
        if (!to_loop)
          target.end_fixups.push_back(
              static_cast<std::uint32_t>(out_.tables.size() - 1) | kFixupTableFlag);
      }
      emit(kBrTable, 0, base, n);
      auto term = skip_dead_code();
      if (!term.ok()) return Status::err(term.error());
      return handle_block_terminator(*term);
    }
    case kReturn: {
      emit(kReturn, static_cast<std::uint16_t>(out_.result_arity));
      auto term = skip_dead_code();
      if (!term.ok()) return Status::err(term.error());
      return handle_block_terminator(*term);
    }
    case kCall: {
      auto idx = reader_.read_uleb32();
      if (!idx.ok()) return Status::err(idx.error());
      const FuncType& ft = module_.func_type(*idx);
      adjust_height(-static_cast<int>(ft.params.size()));
      adjust_height(static_cast<int>(ft.results.size()));
      emit(kCall, 0, *idx);
      return {};
    }
    case kCallIndirect: {
      auto ti = reader_.read_uleb32();
      if (!ti.ok()) return Status::err(ti.error());
      auto table = reader_.read_u8();
      if (!table.ok()) return Status::err(table.error());
      const FuncType& ft = module_.types[*ti];
      adjust_height(-1);  // table index
      adjust_height(-static_cast<int>(ft.params.size()));
      adjust_height(static_cast<int>(ft.results.size()));
      emit(kCallIndirect, 0, *ti);
      return {};
    }

    case kDrop:
      adjust_height(-1);
      emit(kDrop);
      return {};
    case kSelect:
      adjust_height(-2);
      emit(kSelect);
      return {};

    case kLocalGet: {
      auto idx = reader_.read_uleb32();
      if (!idx.ok()) return Status::err(idx.error());
      adjust_height(1);
      emit(kLocalGet, 0, *idx);
      return {};
    }
    case kLocalSet: {
      auto idx = reader_.read_uleb32();
      if (!idx.ok()) return Status::err(idx.error());
      adjust_height(-1);
      emit(kLocalSet, 0, *idx);
      return {};
    }
    case kLocalTee: {
      auto idx = reader_.read_uleb32();
      if (!idx.ok()) return Status::err(idx.error());
      emit(kLocalTee, 0, *idx);
      return {};
    }
    case kGlobalGet: {
      auto idx = reader_.read_uleb32();
      if (!idx.ok()) return Status::err(idx.error());
      adjust_height(1);
      emit(kGlobalGet, 0, *idx);
      return {};
    }
    case kGlobalSet: {
      auto idx = reader_.read_uleb32();
      if (!idx.ok()) return Status::err(idx.error());
      adjust_height(-1);
      emit(kGlobalSet, 0, *idx);
      return {};
    }

    case kMemorySize: {
      auto zero = reader_.read_u8();
      if (!zero.ok()) return Status::err(zero.error());
      adjust_height(1);
      emit(kMemorySize);
      return {};
    }
    case kMemoryGrow: {
      auto zero = reader_.read_u8();
      if (!zero.ok()) return Status::err(zero.error());
      emit(kMemoryGrow);
      return {};
    }

    case kI32Const: {
      auto v = reader_.read_sleb32();
      if (!v.ok()) return Status::err(v.error());
      adjust_height(1);
      emit(kI32Const, 0, 0, static_cast<std::uint32_t>(*v));
      return {};
    }
    case kI64Const: {
      auto v = reader_.read_sleb64();
      if (!v.ok()) return Status::err(v.error());
      adjust_height(1);
      emit(kI64Const, 0, 0, static_cast<std::uint64_t>(*v));
      return {};
    }
    case kF32Const: {
      auto v = reader_.read_bytes(4);
      if (!v.ok()) return Status::err(v.error());
      adjust_height(1);
      emit(kF32Const, 0, 0, get_u32le(v->data()));
      return {};
    }
    case kF64Const: {
      auto v = reader_.read_bytes(8);
      if (!v.ok()) return Status::err(v.error());
      adjust_height(1);
      emit(kF64Const, 0, 0, get_u64le(v->data()));
      return {};
    }

    case kPrefixFC: {
      auto sub = reader_.read_uleb32();
      if (!sub.ok()) return Status::err(sub.error());
      if (*sub <= kI64TruncSatF64U) {
        emit(static_cast<std::uint16_t>(kInstrTruncSatBase + *sub));
        return {};
      }
      if (*sub == kMemoryCopy) {
        auto a = reader_.read_u8();
        auto b = reader_.read_u8();
        if (!a.ok() || !b.ok()) return Status::err("compile: memory.copy");
        adjust_height(-3);
        emit(kInstrMemCopy);
        return {};
      }
      if (*sub == kMemoryFill) {
        auto a = reader_.read_u8();
        if (!a.ok()) return Status::err("compile: memory.fill");
        adjust_height(-3);
        emit(kInstrMemFill);
        return {};
      }
      return Status::err("compile: unsupported 0xFC opcode");
    }

    default:
      break;
  }

  // Loads/stores.
  if (op >= kI32Load && op <= kI64Load32U) {
    auto align = reader_.read_uleb32();
    if (!align.ok()) return Status::err(align.error());
    auto offset = reader_.read_uleb32();
    if (!offset.ok()) return Status::err(offset.error());
    emit(op, 0, 0, *offset);  // height: pop addr, push value -> net 0
    return {};
  }
  if (op >= kI32Store && op <= kI64Store32) {
    auto align = reader_.read_uleb32();
    if (!align.ok()) return Status::err(align.error());
    auto offset = reader_.read_uleb32();
    if (!offset.ok()) return Status::err(offset.error());
    adjust_height(-2);
    emit(op, 0, 0, *offset);
    return {};
  }

  // Pure numeric ops: height effect.
  const bool is_unary =
      op == kI32Eqz || op == kI64Eqz || (op >= kI32Clz && op <= kI32Popcnt) ||
      (op >= kI64Clz && op <= kI64Popcnt) || (op >= kF32Abs && op <= kF32Sqrt) ||
      (op >= kF64Abs && op <= kF64Sqrt) || (op >= kI32WrapI64 && op <= kI64Extend32S);
  const bool is_binary =
      (op >= kI32Eq && op <= kF64Ge && op != kI64Eqz) ||
      (op >= kI32Add && op <= kI32Rotr) || (op >= kI64Add && op <= kI64Rotr) ||
      (op >= kF32Add && op <= kF32Copysign) || (op >= kF64Add && op <= kF64Copysign);
  if (is_binary) {
    adjust_height(-1);
  } else if (!is_unary) {
    return Status::err("compile: unknown opcode " + std::to_string(op));
  }
  emit(op);
  return {};
}

}  // namespace

Result<CompiledFunc> compile_function(const Module& module, std::uint32_t func_index) {
  return Compiler(module, func_index).run();
}

}  // namespace watz::wasm
