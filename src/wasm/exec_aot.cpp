// AOT-mode executor: runs the pre-translated instruction stream produced by
// compile_function(). No bytecode parsing happens here — every immediate and
// branch target was resolved at load time.
#include <cstring>

#include "wasm/compile.hpp"
#include "wasm/exec_common.hpp"
#include "wasm/jit/tier.hpp"

namespace watz::wasm {

namespace {

/// Moves the top `keep` slots down over `drop` slots (branch unwinding).
inline void unwind(std::vector<std::uint64_t>& stack, std::size_t& sp,
                   std::uint32_t keep, std::uint64_t drop) {
  if (drop == 0) return;
  std::memmove(&stack[sp - keep - drop], &stack[sp - keep], keep * sizeof(std::uint64_t));
  sp -= drop;
}

void call_host(Instance& inst, const FuncSlot& slot, std::vector<std::uint64_t>& stack,
               std::size_t& sp) {
  const std::size_t nargs = slot.type.params.size();
  std::vector<Value> args(nargs);
  for (std::size_t i = 0; i < nargs; ++i) {
    args[i] = Value{slot.type.params[i], stack[sp - nargs + i]};
  }
  sp -= nargs;
  auto results = slot.host(inst, args);
  if (!results.ok()) trap(results.error());
  if (results->size() != slot.type.results.size())
    trap("host function returned wrong result count");
  for (const Value& v : *results) {
    // A host function may return more values than it consumed; mirror the
    // interpreter's growth guard instead of relying on frame headroom.
    if (sp >= stack.size()) stack.resize(stack.size() * 2 + 16);
    stack[sp++] = v.bits;
  }
}

/// Runs the resolved instruction stream (the pre-JIT tier). Pointer
/// lifetime audit for the duration of the dispatch loop:
///   * `mem` (Memory*) is stable — memory.grow reallocates the backing
///     store inside the Memory object, never the object itself;
///   * `code` (Instr*) is stable — the compiled store is immutable and
///     shared, nested calls never mutate it;
///   * the operand stack is only ever touched through `stack[...]`
///     indexing, never through a cached element pointer, because any
///     nested call (kCall/kCallIndirect/call_host) may resize the vector.
void exec_call_aot_stream(Instance& inst, const FuncSlot& slot,
                          std::vector<std::uint64_t>& stack, std::size_t& sp,
                          int depth) {
  const CompiledFunc& cf = inst.compiled[slot.module_func_index];
  const std::size_t base = sp - cf.num_params;
  const std::size_t need = base + cf.num_locals + cf.max_operand_height + 8;
  if (stack.size() < need) stack.resize(std::max(need, stack.size() * 2));
  for (std::uint32_t i = cf.num_params; i < cf.num_locals; ++i) stack[base + i] = 0;
  sp = base + cf.num_locals;

  Memory* mem = inst.memory();
  const Instr* code = cf.code.data();
  std::size_t pc = 0;

  for (;;) {
    const Instr& ins = code[pc++];
    switch (ins.op) {
      case kUnreachable:
        trap("unreachable executed");

      case kBr:
        unwind(stack, sp, ins.aux, ins.imm);
        pc = ins.a;
        break;
      case kBrIf:
        if (stack[--sp] != 0) {
          unwind(stack, sp, ins.aux, ins.imm);
          pc = ins.a;
        }
        break;
      case kInstrBrIfFalse:
        if (stack[--sp] == 0) pc = ins.a;
        break;
      case kBrTable: {
        const std::uint32_t index = static_cast<std::uint32_t>(stack[--sp]);
        const std::uint64_t count = ins.imm;
        const BrTableEntry& entry =
            inst.compiled[slot.module_func_index]
                .tables[ins.a + (index < count ? index : count)];
        unwind(stack, sp, entry.keep, entry.drop);
        pc = entry.target;
        break;
      }
      case kReturn: {
        const std::uint32_t keep = ins.aux;
        std::memmove(&stack[base], &stack[sp - keep], keep * sizeof(std::uint64_t));
        sp = base + keep;
        return;
      }

      case kCall:
        exec_call_aot(inst, ins.a, stack, sp, depth + 1);
        break;
      case kCallIndirect: {
        const std::uint32_t index = static_cast<std::uint32_t>(stack[--sp]);
        if (index >= inst.table.size()) trap("undefined element");
        const std::int64_t target = inst.table[index];
        if (target < 0) trap("uninitialized element");
        const FuncSlot& callee = inst.funcs[static_cast<std::uint32_t>(target)];
        if (!(callee.type == inst.module().types[ins.a]))
          trap("indirect call type mismatch");
        exec_call_aot(inst, static_cast<std::uint32_t>(target), stack, sp, depth + 1);
        break;
      }

      case kDrop:
        --sp;
        break;
      case kSelect: {
        const std::uint64_t c = stack[--sp];
        const std::uint64_t v2 = stack[--sp];
        if (c == 0) stack[sp - 1] = v2;
        break;
      }

      case kLocalGet:
        stack[sp++] = stack[base + ins.a];
        break;
      case kLocalSet:
        stack[base + ins.a] = stack[--sp];
        break;
      case kLocalTee:
        stack[base + ins.a] = stack[sp - 1];
        break;
      case kGlobalGet:
        stack[sp++] = inst.globals[ins.a].bits;
        break;
      case kGlobalSet:
        inst.globals[ins.a].bits = stack[--sp];
        break;

      case kMemorySize:
        stack[sp++] = mem->pages();
        break;
      case kMemoryGrow: {
        const std::uint32_t delta = static_cast<std::uint32_t>(stack[sp - 1]);
        stack[sp - 1] = static_cast<std::uint32_t>(mem->grow(delta));
        break;
      }

      case kI32Const:
      case kI64Const:
      case kF32Const:
      case kF64Const:
        stack[sp++] = ins.imm;
        break;

      case kInstrMemCopy: {
        const std::uint32_t n = static_cast<std::uint32_t>(stack[--sp]);
        const std::uint32_t src = static_cast<std::uint32_t>(stack[--sp]);
        const std::uint32_t dst = static_cast<std::uint32_t>(stack[--sp]);
        if (!mem->in_bounds(src, n) || !mem->in_bounds(dst, n))
          trap("out of bounds memory access");
        std::memmove(mem->data() + dst, mem->data() + src, n);
        break;
      }
      case kInstrMemFill: {
        const std::uint32_t n = static_cast<std::uint32_t>(stack[--sp]);
        const std::uint8_t value = static_cast<std::uint8_t>(stack[--sp]);
        const std::uint32_t dst = static_cast<std::uint32_t>(stack[--sp]);
        if (!mem->in_bounds(dst, n)) trap("out of bounds memory access");
        std::memset(mem->data() + dst, value, n);
        break;
      }

      default:
        if (ins.op >= kI32Load && ins.op <= kI64Load32U) {
          const std::uint32_t addr = static_cast<std::uint32_t>(stack[sp - 1]);
          stack[sp - 1] = mem_load(*mem, static_cast<std::uint8_t>(ins.op), addr, ins.imm);
        } else if (ins.op >= kI32Store && ins.op <= kI64Store32) {
          const std::uint64_t value = stack[--sp];
          const std::uint32_t addr = static_cast<std::uint32_t>(stack[--sp]);
          mem_store(*mem, static_cast<std::uint8_t>(ins.op), addr, ins.imm, value);
        } else if (ins.op >= kInstrTruncSatBase && ins.op < kInstrTruncSatBase + 8) {
          exec_trunc_sat(ins.op - kInstrTruncSatBase, stack, sp);
        } else {
          exec_numeric(ins.op, stack, sp);
        }
        break;
    }
  }
}

}  // namespace

void exec_call_aot(Instance& inst, std::uint32_t func_index,
                   std::vector<std::uint64_t>& stack, std::size_t& sp, int depth) {
  if (depth > kMaxCallDepth) trap("call stack exhausted");
  const FuncSlot& slot = inst.funcs[func_index];
  if (slot.is_host) {
    call_host(inst, slot, stack, sp);
    return;
  }

  // Tiered dispatch: a function whose native entry has been installed
  // (release-store by the control plane) runs machine code; everything
  // else runs the AOT stream and feeds the heat counter that eventually
  // queues it for background compilation.
  if (jit::TierSet* tier = inst.tier.get()) {
    const std::uint32_t module_index = slot.module_func_index;
    if (const void* entry = tier->entry_for(module_index)) {
      jit::exec_call_native(inst, *tier, entry, inst.compiled[module_index],
                            stack, sp, depth);
      return;
    }
    tier->note_call(module_index);
  }
  exec_call_aot_stream(inst, slot, stack, sp, depth);
}

}  // namespace watz::wasm
