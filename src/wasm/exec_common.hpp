// Numeric and memory semantics shared by the interpreter and the AOT
// executor. One implementation of every arithmetic rule keeps the two
// execution modes bit-identical — a property the tests assert.
#pragma once

#include <cstdint>
#include <vector>

#include "wasm/instance.hpp"
#include "wasm/opcodes.hpp"

namespace watz::wasm {

/// Executes a pure numeric/parametric opcode against the operand stack.
/// Handles comparison, arithmetic, conversion and sign-extension opcodes
/// (0x45..0xc4 except control/memory/const). Traps throw TrapException.
void exec_numeric(std::uint16_t op, std::vector<std::uint64_t>& stack, std::size_t& sp);

/// Executes a 0xFC-prefixed saturating truncation (sub-opcodes 0..7).
void exec_trunc_sat(std::uint32_t sub_op, std::vector<std::uint64_t>& stack,
                    std::size_t& sp);

/// Loads per `op` (one of the 14 load opcodes) at addr+offset, pushing the
/// result. Traps on out-of-bounds.
std::uint64_t mem_load(Memory& mem, std::uint8_t op, std::uint32_t addr,
                       std::uint64_t offset);

/// Stores `value` per `op` (one of the 9 store opcodes) at addr+offset.
void mem_store(Memory& mem, std::uint8_t op, std::uint32_t addr, std::uint64_t offset,
               std::uint64_t value);

[[noreturn]] inline void trap(std::string message) { throw TrapException{std::move(message)}; }

/// RAII span covering one guest entry — the time actually spent running
/// guest code, common to the interpreter and the AOT executor (constructed
/// in Instance::invoke_index, so both modes report identically). Emits an
/// obs Guest span when the calling thread carries a trace; one
/// thread-local load otherwise. Out-of-line so the executor does not pull
/// the obs headers into every translation unit.
class GuestSpan {
 public:
  GuestSpan() noexcept;
  ~GuestSpan();
  GuestSpan(const GuestSpan&) = delete;
  GuestSpan& operator=(const GuestSpan&) = delete;

 private:
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace watz::wasm
