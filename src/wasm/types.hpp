// Core WebAssembly type definitions (value types, function types, limits)
// shared by the decoder, validator and executors.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace watz::wasm {

enum class ValType : std::uint8_t {
  I32 = 0x7f,
  I64 = 0x7e,
  F32 = 0x7d,
  F64 = 0x7c,
  FuncRef = 0x70,
};

const char* val_type_name(ValType t);

struct FuncType {
  std::vector<ValType> params;
  std::vector<ValType> results;

  bool operator==(const FuncType&) const = default;
};

struct Limits {
  std::uint32_t min = 0;
  std::uint32_t max = UINT32_MAX;  // UINT32_MAX == unbounded
  bool has_max = false;
};

/// A runtime value. Numeric payloads are stored in a 64-bit slot; floats are
/// bit-cast in and out, so NaN payloads survive round trips.
struct Value {
  ValType type = ValType::I32;
  std::uint64_t bits = 0;

  static Value from_i32(std::int32_t v) {
    return {ValType::I32, static_cast<std::uint32_t>(v)};
  }
  static Value from_u32(std::uint32_t v) { return {ValType::I32, v}; }
  static Value from_i64(std::int64_t v) {
    return {ValType::I64, static_cast<std::uint64_t>(v)};
  }
  static Value from_f32(float v);
  static Value from_f64(double v);

  std::int32_t i32() const { return static_cast<std::int32_t>(bits); }
  std::uint32_t u32() const { return static_cast<std::uint32_t>(bits); }
  std::int64_t i64() const { return static_cast<std::int64_t>(bits); }
  std::uint64_t u64() const { return bits; }
  float f32() const;
  double f64() const;

  bool operator==(const Value&) const = default;
};

inline constexpr std::uint32_t kPageSize = 65536;

/// A trap: the Wasm sandbox stopped the program (out-of-bounds access,
/// div-by-zero, unreachable, stack exhaustion...). Traps never corrupt the
/// host: they unwind to the invoke() boundary.
struct TrapInfo {
  std::string message;
};

}  // namespace watz::wasm
