// In-memory representation of a decoded WebAssembly module (the output of
// the binary decoder, the input of the validator and executors).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "wasm/types.hpp"

namespace watz::wasm {

enum class ImportKind : std::uint8_t { Func = 0, Table = 1, Memory = 2, Global = 3 };

struct Import {
  std::string module;
  std::string name;
  ImportKind kind = ImportKind::Func;
  std::uint32_t type_index = 0;  // Func: index into Module::types
  Limits limits;                 // Table/Memory
  ValType global_type = ValType::I32;
  bool global_mutable = false;
};

struct Export {
  std::string name;
  ImportKind kind = ImportKind::Func;
  std::uint32_t index = 0;
};

struct Global {
  ValType type = ValType::I32;
  bool mutable_ = false;
  Bytes init_expr;  // constant expression bytecode (without the final 0x0b)
};

struct ElementSegment {
  std::uint32_t table_index = 0;
  Bytes offset_expr;
  std::vector<std::uint32_t> func_indices;
};

struct DataSegment {
  std::uint32_t memory_index = 0;
  Bytes offset_expr;
  Bytes data;
};

struct FunctionBody {
  /// Expanded local declarations (params NOT included).
  std::vector<ValType> locals;
  /// Raw instruction bytes, including the terminating 0x0b end.
  Bytes code;
};

struct CustomSection {
  std::string name;
  Bytes payload;
};

struct Module {
  std::vector<FuncType> types;
  std::vector<Import> imports;
  /// Type index per module-defined function (imported funcs excluded).
  std::vector<std::uint32_t> functions;
  std::vector<Limits> tables;
  std::vector<Limits> memories;
  std::vector<Global> globals;
  std::vector<Export> exports;
  std::optional<std::uint32_t> start;
  std::vector<ElementSegment> elements;
  std::vector<FunctionBody> code;
  std::vector<DataSegment> data;
  std::vector<CustomSection> custom;

  std::uint32_t num_imported_funcs() const {
    std::uint32_t n = 0;
    for (const auto& imp : imports)
      if (imp.kind == ImportKind::Func) ++n;
    return n;
  }

  std::uint32_t num_imported_globals() const {
    std::uint32_t n = 0;
    for (const auto& imp : imports)
      if (imp.kind == ImportKind::Global) ++n;
    return n;
  }

  std::uint32_t total_funcs() const {
    return num_imported_funcs() + static_cast<std::uint32_t>(functions.size());
  }

  /// Type of function `index` in the unified (imports-first) index space.
  const FuncType& func_type(std::uint32_t index) const;
};

}  // namespace watz::wasm
