#include "wasm/validator.hpp"

#include <optional>

#include "common/leb128.hpp"
#include "wasm/opcodes.hpp"

namespace watz::wasm {

namespace {

/// `nullopt` plays the spec's "Unknown" type for polymorphic stacks.
using VType = std::optional<ValType>;

Result<std::pair<ValType, bool>> module_global_type(const Module& module,
                                                    std::uint32_t index) {
  std::uint32_t i = 0;
  for (const auto& imp : module.imports) {
    if (imp.kind != ImportKind::Global) continue;
    if (i == index) return std::pair{imp.global_type, imp.global_mutable};
    ++i;
  }
  const std::uint32_t local = index - i;
  if (local >= module.globals.size())
    return Result<std::pair<ValType, bool>>::err("validate: global index oob");
  return std::pair{module.globals[local].type, module.globals[local].mutable_};
}

struct ControlFrame {
  Op opcode = kBlock;
  std::vector<ValType> start_types;  // label params (empty in MVP blocks)
  std::vector<ValType> end_types;    // block result
  std::size_t height = 0;            // value stack height at entry
  bool unreachable = false;
};

class FuncValidator {
 public:
  FuncValidator(const Module& module, std::uint32_t func_index)
      : module_(module),
        type_(module.types[module.functions[func_index]]),
        body_(module.code[func_index]),
        reader_(body_.code) {
    locals_ = type_.params;
    locals_.insert(locals_.end(), body_.locals.begin(), body_.locals.end());
  }

  Status run() {
    push_ctrl(kBlock, {}, type_.results);
    while (!ctrls_.empty()) {
      auto op = reader_.read_u8();
      if (!op.ok()) return Status::err("validate: body ended without end");
      const Status st = check_op(static_cast<Op>(*op));
      if (!st.ok()) return st;
    }
    if (!reader_.at_end()) return Status::err("validate: trailing bytes after end");
    return {};
  }

 private:
  // -- stack machinery (spec appendix algorithm) ---------------------------

  void push_val(VType t) { vals_.push_back(t); }
  void push_val(ValType t) { vals_.push_back(t); }

  Result<VType> pop_val() {
    ControlFrame& frame = ctrls_.back();
    if (vals_.size() == frame.height) {
      if (frame.unreachable) return VType{};
      return Result<VType>::err("validate: value stack underflow");
    }
    VType top = vals_.back();
    vals_.pop_back();
    return top;
  }

  Status pop_expect(ValType expect) {
    auto actual = pop_val();
    if (!actual.ok()) return Status::err(actual.error());
    if (actual->has_value() && **actual != expect)
      return Status::err(std::string("validate: expected ") + val_type_name(expect) +
                         " got " + val_type_name(**actual));
    return {};
  }

  Status pop_expect_all(const std::vector<ValType>& types) {
    for (auto it = types.rbegin(); it != types.rend(); ++it) {
      const Status st = pop_expect(*it);
      if (!st.ok()) return st;
    }
    return {};
  }

  void push_all(const std::vector<ValType>& types) {
    for (ValType t : types) push_val(t);
  }

  void push_ctrl(Op opcode, std::vector<ValType> in, std::vector<ValType> out) {
    ctrls_.push_back(ControlFrame{opcode, std::move(in), std::move(out), vals_.size(), false});
    push_all(ctrls_.back().start_types);
  }

  Result<ControlFrame> pop_ctrl() {
    if (ctrls_.empty()) return Result<ControlFrame>::err("validate: control stack underflow");
    ControlFrame frame = ctrls_.back();
    const Status st = pop_expect_all(frame.end_types);
    if (!st.ok()) return Result<ControlFrame>::err(st.error());
    if (vals_.size() != frame.height)
      return Result<ControlFrame>::err("validate: values left on stack at end of block");
    ctrls_.pop_back();
    return frame;
  }

  void set_unreachable() {
    ControlFrame& frame = ctrls_.back();
    vals_.resize(frame.height);
    frame.unreachable = true;
  }

  /// Types a branch to relative depth `depth` transfers.
  Result<std::vector<ValType>> label_types(std::uint32_t depth) {
    if (depth >= ctrls_.size())
      return Result<std::vector<ValType>>::err("validate: branch depth out of range");
    const ControlFrame& frame = ctrls_[ctrls_.size() - 1 - depth];
    return frame.opcode == kLoop ? frame.start_types : frame.end_types;
  }

  // -- immediates -----------------------------------------------------------

  Result<std::uint32_t> imm_u32() { return reader_.read_uleb32(); }

  Result<std::vector<ValType>> block_type() {
    auto b = reader_.read_u8();
    if (!b.ok()) return Result<std::vector<ValType>>::err(b.error());
    switch (*b) {
      case 0x40: return std::vector<ValType>{};
      case 0x7f: return std::vector<ValType>{ValType::I32};
      case 0x7e: return std::vector<ValType>{ValType::I64};
      case 0x7d: return std::vector<ValType>{ValType::F32};
      case 0x7c: return std::vector<ValType>{ValType::F64};
      default: return Result<std::vector<ValType>>::err("validate: unsupported block type");
    }
  }

  Status check_mem_access(std::uint32_t natural_align) {
    if (module_.memories.empty() && !has_imported_memory())
      return Status::err("validate: memory access without memory");
    auto align = imm_u32();
    if (!align.ok()) return Status::err(align.error());
    if ((1u << *align) > natural_align)
      return Status::err("validate: alignment exceeds natural alignment");
    auto offset = imm_u32();
    if (!offset.ok()) return Status::err(offset.error());
    return {};
  }

  bool has_imported_memory() const {
    for (const auto& imp : module_.imports)
      if (imp.kind == ImportKind::Memory) return true;
    return false;
  }

  Result<std::pair<ValType, bool>> global_type(std::uint32_t index) {
    return module_global_type(module_, index);
  }

  // -- opcode dispatch -------------------------------------------------------

  Status binary_op(ValType in, ValType out) {
    Status st = pop_expect(in);
    if (!st.ok()) return st;
    st = pop_expect(in);
    if (!st.ok()) return st;
    push_val(out);
    return {};
  }

  Status unary_op(ValType in, ValType out) {
    const Status st = pop_expect(in);
    if (!st.ok()) return st;
    push_val(out);
    return {};
  }

  Status load_op(ValType out, std::uint32_t natural_align) {
    Status st = check_mem_access(natural_align);
    if (!st.ok()) return st;
    st = pop_expect(ValType::I32);
    if (!st.ok()) return st;
    push_val(out);
    return {};
  }

  Status store_op(ValType in, std::uint32_t natural_align) {
    Status st = check_mem_access(natural_align);
    if (!st.ok()) return st;
    st = pop_expect(in);
    if (!st.ok()) return st;
    return pop_expect(ValType::I32);
  }

  Status check_op(Op op);
  Status check_fc();

  const Module& module_;
  const FuncType& type_;
  const FunctionBody& body_;
  ByteReader reader_;
  std::vector<ValType> locals_;
  std::vector<VType> vals_;
  std::vector<ControlFrame> ctrls_;
};

Status FuncValidator::check_fc() {
  auto sub = reader_.read_uleb32();
  if (!sub.ok()) return Status::err(sub.error());
  switch (*sub) {
    case kI32TruncSatF32S:
    case kI32TruncSatF32U:
      return unary_op(ValType::F32, ValType::I32);
    case kI32TruncSatF64S:
    case kI32TruncSatF64U:
      return unary_op(ValType::F64, ValType::I32);
    case kI64TruncSatF32S:
    case kI64TruncSatF32U:
      return unary_op(ValType::F32, ValType::I64);
    case kI64TruncSatF64S:
    case kI64TruncSatF64U:
      return unary_op(ValType::F64, ValType::I64);
    case kMemoryCopy: {
      auto a = reader_.read_u8();
      auto b = reader_.read_u8();
      if (!a.ok() || !b.ok() || *a != 0 || *b != 0)
        return Status::err("validate: memory.copy operands");
      Status st = pop_expect(ValType::I32);
      if (!st.ok()) return st;
      st = pop_expect(ValType::I32);
      if (!st.ok()) return st;
      return pop_expect(ValType::I32);
    }
    case kMemoryFill: {
      auto a = reader_.read_u8();
      if (!a.ok() || *a != 0) return Status::err("validate: memory.fill operand");
      Status st = pop_expect(ValType::I32);
      if (!st.ok()) return st;
      st = pop_expect(ValType::I32);
      if (!st.ok()) return st;
      return pop_expect(ValType::I32);
    }
    default:
      return Status::err("validate: unsupported 0xFC opcode");
  }
}

Status FuncValidator::check_op(Op op) {
  switch (op) {
    case kUnreachable:
      set_unreachable();
      return {};
    case kNop:
      return {};

    case kBlock: {
      auto bt = block_type();
      if (!bt.ok()) return Status::err(bt.error());
      push_ctrl(kBlock, {}, *bt);
      return {};
    }
    case kLoop: {
      auto bt = block_type();
      if (!bt.ok()) return Status::err(bt.error());
      push_ctrl(kLoop, {}, *bt);
      return {};
    }
    case kIf: {
      auto bt = block_type();
      if (!bt.ok()) return Status::err(bt.error());
      const Status st = pop_expect(ValType::I32);
      if (!st.ok()) return st;
      push_ctrl(kIf, {}, *bt);
      return {};
    }
    case kElse: {
      auto frame = pop_ctrl();
      if (!frame.ok()) return Status::err(frame.error());
      if (frame->opcode != kIf) return Status::err("validate: else without if");
      push_ctrl(kElse, frame->start_types, frame->end_types);
      return {};
    }
    case kEnd: {
      auto frame = pop_ctrl();
      if (!frame.ok()) return Status::err(frame.error());
      if (frame->opcode == kIf && !frame->end_types.empty())
        return Status::err("validate: if with result type but no else");
      push_all(frame->end_types);
      return {};
    }

    case kBr: {
      auto depth = imm_u32();
      if (!depth.ok()) return Status::err(depth.error());
      auto types = label_types(*depth);
      if (!types.ok()) return Status::err(types.error());
      const Status st = pop_expect_all(*types);
      if (!st.ok()) return st;
      set_unreachable();
      return {};
    }
    case kBrIf: {
      auto depth = imm_u32();
      if (!depth.ok()) return Status::err(depth.error());
      Status st = pop_expect(ValType::I32);
      if (!st.ok()) return st;
      auto types = label_types(*depth);
      if (!types.ok()) return Status::err(types.error());
      st = pop_expect_all(*types);
      if (!st.ok()) return st;
      push_all(*types);
      return {};
    }
    case kBrTable: {
      auto count = imm_u32();
      if (!count.ok()) return Status::err(count.error());
      std::vector<std::uint32_t> targets;
      for (std::uint32_t i = 0; i < *count; ++i) {
        auto t = imm_u32();
        if (!t.ok()) return Status::err(t.error());
        targets.push_back(*t);
      }
      auto def = imm_u32();
      if (!def.ok()) return Status::err(def.error());
      Status st = pop_expect(ValType::I32);
      if (!st.ok()) return st;
      auto def_types = label_types(*def);
      if (!def_types.ok()) return Status::err(def_types.error());
      for (std::uint32_t t : targets) {
        auto types = label_types(t);
        if (!types.ok()) return Status::err(types.error());
        if (*types != *def_types)
          return Status::err("validate: br_table target type mismatch");
      }
      st = pop_expect_all(*def_types);
      if (!st.ok()) return st;
      set_unreachable();
      return {};
    }
    case kReturn: {
      const Status st = pop_expect_all(type_.results);
      if (!st.ok()) return st;
      set_unreachable();
      return {};
    }
    case kCall: {
      auto idx = imm_u32();
      if (!idx.ok()) return Status::err(idx.error());
      if (*idx >= module_.total_funcs()) return Status::err("validate: call index oob");
      const FuncType& ft = module_.func_type(*idx);
      const Status st = pop_expect_all(ft.params);
      if (!st.ok()) return st;
      push_all(ft.results);
      return {};
    }
    case kCallIndirect: {
      auto ti = imm_u32();
      if (!ti.ok()) return Status::err(ti.error());
      if (*ti >= module_.types.size()) return Status::err("validate: call_indirect type oob");
      auto table_idx = reader_.read_u8();
      if (!table_idx.ok() || *table_idx != 0)
        return Status::err("validate: call_indirect table must be 0");
      bool has_table = !module_.tables.empty();
      for (const auto& imp : module_.imports)
        if (imp.kind == ImportKind::Table) has_table = true;
      if (!has_table) return Status::err("validate: call_indirect without table");
      Status st = pop_expect(ValType::I32);
      if (!st.ok()) return st;
      const FuncType& ft = module_.types[*ti];
      st = pop_expect_all(ft.params);
      if (!st.ok()) return st;
      push_all(ft.results);
      return {};
    }

    case kDrop: {
      auto v = pop_val();
      return v.ok() ? Status{} : Status::err(v.error());
    }
    case kSelect: {
      Status st = pop_expect(ValType::I32);
      if (!st.ok()) return st;
      auto a = pop_val();
      if (!a.ok()) return Status::err(a.error());
      auto b = pop_val();
      if (!b.ok()) return Status::err(b.error());
      if (a->has_value() && b->has_value() && **a != **b)
        return Status::err("validate: select operand types differ");
      if ((a->has_value() && **a == ValType::FuncRef) ||
          (b->has_value() && **b == ValType::FuncRef))
        return Status::err("validate: select on reference type");
      push_val(a->has_value() ? *a : *b);
      return {};
    }

    case kLocalGet: {
      auto idx = imm_u32();
      if (!idx.ok()) return Status::err(idx.error());
      if (*idx >= locals_.size()) return Status::err("validate: local index oob");
      push_val(locals_[*idx]);
      return {};
    }
    case kLocalSet: {
      auto idx = imm_u32();
      if (!idx.ok()) return Status::err(idx.error());
      if (*idx >= locals_.size()) return Status::err("validate: local index oob");
      return pop_expect(locals_[*idx]);
    }
    case kLocalTee: {
      auto idx = imm_u32();
      if (!idx.ok()) return Status::err(idx.error());
      if (*idx >= locals_.size()) return Status::err("validate: local index oob");
      const Status st = pop_expect(locals_[*idx]);
      if (!st.ok()) return st;
      push_val(locals_[*idx]);
      return {};
    }
    case kGlobalGet: {
      auto idx = imm_u32();
      if (!idx.ok()) return Status::err(idx.error());
      auto type = global_type(*idx);
      if (!type.ok()) return Status::err(type.error());
      push_val(type->first);
      return {};
    }
    case kGlobalSet: {
      auto idx = imm_u32();
      if (!idx.ok()) return Status::err(idx.error());
      auto type = global_type(*idx);
      if (!type.ok()) return Status::err(type.error());
      if (!type->second) return Status::err("validate: assignment to immutable global");
      return pop_expect(type->first);
    }

    case kI32Load: return load_op(ValType::I32, 4);
    case kI64Load: return load_op(ValType::I64, 8);
    case kF32Load: return load_op(ValType::F32, 4);
    case kF64Load: return load_op(ValType::F64, 8);
    case kI32Load8S:
    case kI32Load8U: return load_op(ValType::I32, 1);
    case kI32Load16S:
    case kI32Load16U: return load_op(ValType::I32, 2);
    case kI64Load8S:
    case kI64Load8U: return load_op(ValType::I64, 1);
    case kI64Load16S:
    case kI64Load16U: return load_op(ValType::I64, 2);
    case kI64Load32S:
    case kI64Load32U: return load_op(ValType::I64, 4);
    case kI32Store: return store_op(ValType::I32, 4);
    case kI64Store: return store_op(ValType::I64, 8);
    case kF32Store: return store_op(ValType::F32, 4);
    case kF64Store: return store_op(ValType::F64, 8);
    case kI32Store8: return store_op(ValType::I32, 1);
    case kI32Store16: return store_op(ValType::I32, 2);
    case kI64Store8: return store_op(ValType::I64, 1);
    case kI64Store16: return store_op(ValType::I64, 2);
    case kI64Store32: return store_op(ValType::I64, 4);

    case kMemorySize: {
      auto zero = reader_.read_u8();
      if (!zero.ok() || *zero != 0) return Status::err("validate: memory.size operand");
      push_val(ValType::I32);
      return {};
    }
    case kMemoryGrow: {
      auto zero = reader_.read_u8();
      if (!zero.ok() || *zero != 0) return Status::err("validate: memory.grow operand");
      const Status st = pop_expect(ValType::I32);
      if (!st.ok()) return st;
      push_val(ValType::I32);
      return {};
    }

    case kI32Const: {
      auto v = reader_.read_sleb32();
      if (!v.ok()) return Status::err(v.error());
      push_val(ValType::I32);
      return {};
    }
    case kI64Const: {
      auto v = reader_.read_sleb64();
      if (!v.ok()) return Status::err(v.error());
      push_val(ValType::I64);
      return {};
    }
    case kF32Const: {
      auto v = reader_.read_bytes(4);
      if (!v.ok()) return Status::err(v.error());
      push_val(ValType::F32);
      return {};
    }
    case kF64Const: {
      auto v = reader_.read_bytes(8);
      if (!v.ok()) return Status::err(v.error());
      push_val(ValType::F64);
      return {};
    }

    case kI32Eqz: return unary_op(ValType::I32, ValType::I32);
    case kI64Eqz: return unary_op(ValType::I64, ValType::I32);

    default:
      break;
  }

  // Regular numeric opcodes grouped by range.
  if (op >= kI32Eq && op <= kI32GeU) return binary_op(ValType::I32, ValType::I32);
  if (op >= kI64Eq && op <= kI64GeU) return binary_op(ValType::I64, ValType::I32);
  if (op >= kF32Eq && op <= kF32Ge) return binary_op(ValType::F32, ValType::I32);
  if (op >= kF64Eq && op <= kF64Ge) return binary_op(ValType::F64, ValType::I32);
  if (op >= kI32Clz && op <= kI32Popcnt) return unary_op(ValType::I32, ValType::I32);
  if (op >= kI32Add && op <= kI32Rotr) return binary_op(ValType::I32, ValType::I32);
  if (op >= kI64Clz && op <= kI64Popcnt) return unary_op(ValType::I64, ValType::I64);
  if (op >= kI64Add && op <= kI64Rotr) return binary_op(ValType::I64, ValType::I64);
  if (op >= kF32Abs && op <= kF32Sqrt) return unary_op(ValType::F32, ValType::F32);
  if (op >= kF32Add && op <= kF32Copysign) return binary_op(ValType::F32, ValType::F32);
  if (op >= kF64Abs && op <= kF64Sqrt) return unary_op(ValType::F64, ValType::F64);
  if (op >= kF64Add && op <= kF64Copysign) return binary_op(ValType::F64, ValType::F64);

  switch (op) {
    case kI32WrapI64: return unary_op(ValType::I64, ValType::I32);
    case kI32TruncF32S:
    case kI32TruncF32U: return unary_op(ValType::F32, ValType::I32);
    case kI32TruncF64S:
    case kI32TruncF64U: return unary_op(ValType::F64, ValType::I32);
    case kI64ExtendI32S:
    case kI64ExtendI32U: return unary_op(ValType::I32, ValType::I64);
    case kI64TruncF32S:
    case kI64TruncF32U: return unary_op(ValType::F32, ValType::I64);
    case kI64TruncF64S:
    case kI64TruncF64U: return unary_op(ValType::F64, ValType::I64);
    case kF32ConvertI32S:
    case kF32ConvertI32U: return unary_op(ValType::I32, ValType::F32);
    case kF32ConvertI64S:
    case kF32ConvertI64U: return unary_op(ValType::I64, ValType::F32);
    case kF32DemoteF64: return unary_op(ValType::F64, ValType::F32);
    case kF64ConvertI32S:
    case kF64ConvertI32U: return unary_op(ValType::I32, ValType::F64);
    case kF64ConvertI64S:
    case kF64ConvertI64U: return unary_op(ValType::I64, ValType::F64);
    case kF64PromoteF32: return unary_op(ValType::F32, ValType::F64);
    case kI32ReinterpretF32: return unary_op(ValType::F32, ValType::I32);
    case kI64ReinterpretF64: return unary_op(ValType::F64, ValType::I64);
    case kF32ReinterpretI32: return unary_op(ValType::I32, ValType::F32);
    case kF64ReinterpretI64: return unary_op(ValType::I64, ValType::F64);
    case kI32Extend8S:
    case kI32Extend16S: return unary_op(ValType::I32, ValType::I32);
    case kI64Extend8S:
    case kI64Extend16S:
    case kI64Extend32S: return unary_op(ValType::I64, ValType::I64);
    case kPrefixFC: return check_fc();
    default:
      return Status::err("validate: unknown opcode " + std::to_string(op));
  }
}

Status validate_const_expr(const Module& module, const Bytes& expr, ValType expected) {
  ByteReader r(expr);
  auto op = r.read_u8();
  if (!op.ok()) return Status::err("validate: empty const expr");
  switch (*op) {
    case kI32Const:
      return expected == ValType::I32 ? Status{}
                                      : Status::err("validate: const expr type mismatch");
    case kI64Const:
      return expected == ValType::I64 ? Status{}
                                      : Status::err("validate: const expr type mismatch");
    case kF32Const:
      return expected == ValType::F32 ? Status{}
                                      : Status::err("validate: const expr type mismatch");
    case kF64Const:
      return expected == ValType::F64 ? Status{}
                                      : Status::err("validate: const expr type mismatch");
    case kGlobalGet: {
      auto idx = r.read_uleb32();
      if (!idx.ok()) return Status::err(idx.error());
      if (*idx >= module.num_imported_globals())
        return Status::err("validate: const expr global.get must reference import");
      auto type = module_global_type(module, *idx);
      if (!type.ok()) return Status::err(type.error());
      if (type->second) return Status::err("validate: const expr global must be immutable");
      if (type->first != expected)
        return Status::err("validate: const expr type mismatch");
      return {};
    }
    default:
      return Status::err("validate: invalid const expr opcode");
  }
}

}  // namespace

Status validate_module(const Module& module) {
  // Export indices.
  std::uint32_t num_tables = module.tables.size();
  std::uint32_t num_memories = module.memories.size();
  std::uint32_t num_globals =
      module.num_imported_globals() + static_cast<std::uint32_t>(module.globals.size());
  for (const auto& imp : module.imports) {
    if (imp.kind == ImportKind::Table) ++num_tables;
    if (imp.kind == ImportKind::Memory) ++num_memories;
  }
  if (num_tables > 1) return Status::err("validate: more than one table");
  if (num_memories > 1) return Status::err("validate: more than one memory");

  for (const auto& ex : module.exports) {
    switch (ex.kind) {
      case ImportKind::Func:
        if (ex.index >= module.total_funcs()) return Status::err("validate: export func oob");
        break;
      case ImportKind::Table:
        if (ex.index >= num_tables) return Status::err("validate: export table oob");
        break;
      case ImportKind::Memory:
        if (ex.index >= num_memories) return Status::err("validate: export memory oob");
        break;
      case ImportKind::Global:
        if (ex.index >= num_globals) return Status::err("validate: export global oob");
        break;
    }
  }

  if (module.start) {
    if (*module.start >= module.total_funcs())
      return Status::err("validate: start function oob");
    const FuncType& ft = module.func_type(*module.start);
    if (!ft.params.empty() || !ft.results.empty())
      return Status::err("validate: start function must be [] -> []");
  }

  for (const auto& g : module.globals) {
    const Status st = validate_const_expr(module, g.init_expr, g.type);
    if (!st.ok()) return st;
  }
  for (const auto& seg : module.elements) {
    if (num_tables == 0) return Status::err("validate: element segment without table");
    const Status st = validate_const_expr(module, seg.offset_expr, ValType::I32);
    if (!st.ok()) return st;
    for (std::uint32_t fi : seg.func_indices)
      if (fi >= module.total_funcs()) return Status::err("validate: element func oob");
  }
  for (const auto& seg : module.data) {
    if (num_memories == 0) return Status::err("validate: data segment without memory");
    const Status st = validate_const_expr(module, seg.offset_expr, ValType::I32);
    if (!st.ok()) return st;
  }

  for (std::uint32_t i = 0; i < module.functions.size(); ++i) {
    FuncValidator fv(module, i);
    const Status st = fv.run();
    if (!st.ok())
      return Status::err(st.error() + " (in function " +
                         std::to_string(i + module.num_imported_funcs()) + ")");
  }
  return {};
}

}  // namespace watz::wasm
