// AOT translation pass: lowers a validated function body into a resolved
// instruction stream (branch targets as absolute indices, immediates
// pre-decoded, structured control flow erased, dead code elided).
//
// This is WaTZ's stand-in for WAMR's LLVM AOT pipeline: the translation
// happens once at module-load time, and execution needs no bytecode
// parsing — which is what produces the paper's AOT-vs-interpreter gap
// (reported as ~28x in SS III) without embedding a compiler in the TCB.
#pragma once

#include "common/leb128.hpp"
#include "common/result.hpp"
#include "wasm/instance.hpp"

namespace watz::wasm {

/// Internal opcodes beyond the single-byte Wasm space.
enum InstrOp : std::uint16_t {
  kInstrBrIfFalse = 0x100,   ///< `if` lowering: jump to else/end when top == 0.
  kInstrTruncSatBase = 0x200,  ///< + OpFC sub-opcode (0..7).
  kInstrMemCopy = 0x210,
  kInstrMemFill = 0x211,
};

/// Compiles function `func_index` (module code-space index) of a *validated*
/// module.
Result<CompiledFunc> compile_function(const Module& module, std::uint32_t func_index);

/// Byte-level scanning helpers shared with the interpreter. `pos` must point
/// just after a block/loop/if header. Returns the position just after the
/// matching `end`; if `else_pos` is non-null and an `else` exists at depth 0,
/// stores the position just after it.
Result<std::size_t> find_block_end(ByteView code, std::size_t pos,
                                   std::size_t* else_pos);

/// Skips the immediates of opcode `op` (already consumed from `r`).
Status skip_immediates(ByteReader& r, std::uint8_t op);

}  // namespace watz::wasm
