#include "wasm/exec_common.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "hw/clock.hpp"
#include "obs/trace.hpp"

namespace watz::wasm {

GuestSpan::GuestSpan() noexcept : active_(obs::tracing_active()) {
  if (active_) start_ns_ = hw::monotonic_ns();
}

GuestSpan::~GuestSpan() {
  if (active_) obs::emit_span(obs::Stage::Guest, start_ns_, hw::monotonic_ns());
}

namespace {

inline float as_f32(std::uint64_t bits) {
  float v;
  const std::uint32_t b = static_cast<std::uint32_t>(bits);
  std::memcpy(&v, &b, 4);
  return v;
}

inline double as_f64(std::uint64_t bits) {
  double v;
  std::memcpy(&v, &bits, 8);
  return v;
}

inline std::uint64_t bits_of(float v) {
  std::uint32_t b;
  std::memcpy(&b, &v, 4);
  return b;
}

inline std::uint64_t bits_of(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, 8);
  return b;
}

/// IEEE-754 min/max with Wasm's NaN and signed-zero rules.
template <typename F>
F wasm_min(F a, F b) {
  if (std::isnan(a) || std::isnan(b)) return std::numeric_limits<F>::quiet_NaN();
  if (a == 0 && b == 0) return std::signbit(a) ? a : b;
  return a < b ? a : b;
}

template <typename F>
F wasm_max(F a, F b) {
  if (std::isnan(a) || std::isnan(b)) return std::numeric_limits<F>::quiet_NaN();
  if (a == 0 && b == 0) return std::signbit(a) ? b : a;
  return a > b ? a : b;
}

/// f{32,64}.nearest: round half to even.
template <typename F>
F wasm_nearest(F v) {
  return std::nearbyint(v);  // assumes FE_TONEAREST, the C++ default
}

/// Checked float -> int truncation (traps on NaN / out of range).
template <typename Int, typename F>
Int trunc_checked(F v, const char* what) {
  if (std::isnan(v)) trap(std::string("invalid conversion to integer: NaN in ") + what);
  const F t = std::trunc(v);
  // Exact range checks: compare against the first out-of-range values.
  constexpr F lo = static_cast<F>(std::numeric_limits<Int>::min());
  // max+1 is exactly representable for all four Int/F combinations.
  constexpr F hi_plus_1 =
      static_cast<F>(std::numeric_limits<Int>::max() / 2 + 1) * 2;  // 2^width(-1)
  if (!(t >= lo && t < hi_plus_1))
    trap(std::string("integer overflow in ") + what);
  return static_cast<Int>(t);
}

template <typename Int, typename F>
Int trunc_sat(F v) {
  if (std::isnan(v)) return 0;
  constexpr F lo = static_cast<F>(std::numeric_limits<Int>::min());
  constexpr F hi_plus_1 = static_cast<F>(std::numeric_limits<Int>::max() / 2 + 1) * 2;
  if (v <= lo) {
    // For unsigned Int, lo == 0 and v <= 0 saturates to 0 unless in (-1, 0).
    if (v > static_cast<F>(-1.0) && v < 0) return 0;
    return std::numeric_limits<Int>::min();
  }
  if (v >= hi_plus_1) return std::numeric_limits<Int>::max();
  return static_cast<Int>(std::trunc(v));
}

}  // namespace

void exec_trunc_sat(std::uint32_t sub_op, std::vector<std::uint64_t>& stack,
                    std::size_t& sp) {
  std::uint64_t& top = stack[sp - 1];
  switch (sub_op) {
    case kI32TruncSatF32S:
      top = static_cast<std::uint32_t>(trunc_sat<std::int32_t>(as_f32(top)));
      break;
    case kI32TruncSatF32U:
      top = trunc_sat<std::uint32_t>(as_f32(top));
      break;
    case kI32TruncSatF64S:
      top = static_cast<std::uint32_t>(trunc_sat<std::int32_t>(as_f64(top)));
      break;
    case kI32TruncSatF64U:
      top = trunc_sat<std::uint32_t>(as_f64(top));
      break;
    case kI64TruncSatF32S:
      top = static_cast<std::uint64_t>(trunc_sat<std::int64_t>(as_f32(top)));
      break;
    case kI64TruncSatF32U:
      top = trunc_sat<std::uint64_t>(as_f32(top));
      break;
    case kI64TruncSatF64S:
      top = static_cast<std::uint64_t>(trunc_sat<std::int64_t>(as_f64(top)));
      break;
    case kI64TruncSatF64U:
      top = trunc_sat<std::uint64_t>(as_f64(top));
      break;
    default:
      trap("unsupported trunc_sat opcode");
  }
}

void exec_numeric(std::uint16_t op, std::vector<std::uint64_t>& stack, std::size_t& sp) {
  auto pop = [&]() -> std::uint64_t { return stack[--sp]; };
  auto push = [&](std::uint64_t v) { stack[sp++] = v; };
  auto push_b = [&](bool v) { stack[sp++] = v ? 1 : 0; };

  switch (op) {
    // -- i32 comparisons --
    case kI32Eqz: push_b(static_cast<std::uint32_t>(pop()) == 0); return;
    case kI32Eq: { const auto b = static_cast<std::uint32_t>(pop()), a = static_cast<std::uint32_t>(pop()); push_b(a == b); return; }
    case kI32Ne: { const auto b = static_cast<std::uint32_t>(pop()), a = static_cast<std::uint32_t>(pop()); push_b(a != b); return; }
    case kI32LtS: { const auto b = static_cast<std::int32_t>(pop()), a = static_cast<std::int32_t>(pop()); push_b(a < b); return; }
    case kI32LtU: { const auto b = static_cast<std::uint32_t>(pop()), a = static_cast<std::uint32_t>(pop()); push_b(a < b); return; }
    case kI32GtS: { const auto b = static_cast<std::int32_t>(pop()), a = static_cast<std::int32_t>(pop()); push_b(a > b); return; }
    case kI32GtU: { const auto b = static_cast<std::uint32_t>(pop()), a = static_cast<std::uint32_t>(pop()); push_b(a > b); return; }
    case kI32LeS: { const auto b = static_cast<std::int32_t>(pop()), a = static_cast<std::int32_t>(pop()); push_b(a <= b); return; }
    case kI32LeU: { const auto b = static_cast<std::uint32_t>(pop()), a = static_cast<std::uint32_t>(pop()); push_b(a <= b); return; }
    case kI32GeS: { const auto b = static_cast<std::int32_t>(pop()), a = static_cast<std::int32_t>(pop()); push_b(a >= b); return; }
    case kI32GeU: { const auto b = static_cast<std::uint32_t>(pop()), a = static_cast<std::uint32_t>(pop()); push_b(a >= b); return; }

    // -- i64 comparisons --
    case kI64Eqz: push_b(pop() == 0); return;
    case kI64Eq: { const auto b = pop(), a = pop(); push_b(a == b); return; }
    case kI64Ne: { const auto b = pop(), a = pop(); push_b(a != b); return; }
    case kI64LtS: { const auto b = static_cast<std::int64_t>(pop()), a = static_cast<std::int64_t>(pop()); push_b(a < b); return; }
    case kI64LtU: { const auto b = pop(), a = pop(); push_b(a < b); return; }
    case kI64GtS: { const auto b = static_cast<std::int64_t>(pop()), a = static_cast<std::int64_t>(pop()); push_b(a > b); return; }
    case kI64GtU: { const auto b = pop(), a = pop(); push_b(a > b); return; }
    case kI64LeS: { const auto b = static_cast<std::int64_t>(pop()), a = static_cast<std::int64_t>(pop()); push_b(a <= b); return; }
    case kI64LeU: { const auto b = pop(), a = pop(); push_b(a <= b); return; }
    case kI64GeS: { const auto b = static_cast<std::int64_t>(pop()), a = static_cast<std::int64_t>(pop()); push_b(a >= b); return; }
    case kI64GeU: { const auto b = pop(), a = pop(); push_b(a >= b); return; }

    // -- float comparisons --
    case kF32Eq: { const auto b = as_f32(pop()), a = as_f32(pop()); push_b(a == b); return; }
    case kF32Ne: { const auto b = as_f32(pop()), a = as_f32(pop()); push_b(a != b); return; }
    case kF32Lt: { const auto b = as_f32(pop()), a = as_f32(pop()); push_b(a < b); return; }
    case kF32Gt: { const auto b = as_f32(pop()), a = as_f32(pop()); push_b(a > b); return; }
    case kF32Le: { const auto b = as_f32(pop()), a = as_f32(pop()); push_b(a <= b); return; }
    case kF32Ge: { const auto b = as_f32(pop()), a = as_f32(pop()); push_b(a >= b); return; }
    case kF64Eq: { const auto b = as_f64(pop()), a = as_f64(pop()); push_b(a == b); return; }
    case kF64Ne: { const auto b = as_f64(pop()), a = as_f64(pop()); push_b(a != b); return; }
    case kF64Lt: { const auto b = as_f64(pop()), a = as_f64(pop()); push_b(a < b); return; }
    case kF64Gt: { const auto b = as_f64(pop()), a = as_f64(pop()); push_b(a > b); return; }
    case kF64Le: { const auto b = as_f64(pop()), a = as_f64(pop()); push_b(a <= b); return; }
    case kF64Ge: { const auto b = as_f64(pop()), a = as_f64(pop()); push_b(a >= b); return; }

    // -- i32 arithmetic --
    case kI32Clz: { const auto a = static_cast<std::uint32_t>(pop()); push(a == 0 ? 32 : std::countl_zero(a)); return; }
    case kI32Ctz: { const auto a = static_cast<std::uint32_t>(pop()); push(a == 0 ? 32 : std::countr_zero(a)); return; }
    case kI32Popcnt: { const auto a = static_cast<std::uint32_t>(pop()); push(std::popcount(a)); return; }
    case kI32Add: { const auto b = static_cast<std::uint32_t>(pop()), a = static_cast<std::uint32_t>(pop()); push(static_cast<std::uint32_t>(a + b)); return; }
    case kI32Sub: { const auto b = static_cast<std::uint32_t>(pop()), a = static_cast<std::uint32_t>(pop()); push(static_cast<std::uint32_t>(a - b)); return; }
    case kI32Mul: { const auto b = static_cast<std::uint32_t>(pop()), a = static_cast<std::uint32_t>(pop()); push(static_cast<std::uint32_t>(a * b)); return; }
    case kI32DivS: {
      const auto b = static_cast<std::int32_t>(pop()), a = static_cast<std::int32_t>(pop());
      if (b == 0) trap("integer divide by zero");
      if (a == INT32_MIN && b == -1) trap("integer overflow");
      push(static_cast<std::uint32_t>(a / b));
      return;
    }
    case kI32DivU: {
      const auto b = static_cast<std::uint32_t>(pop()), a = static_cast<std::uint32_t>(pop());
      if (b == 0) trap("integer divide by zero");
      push(a / b);
      return;
    }
    case kI32RemS: {
      const auto b = static_cast<std::int32_t>(pop()), a = static_cast<std::int32_t>(pop());
      if (b == 0) trap("integer divide by zero");
      push(static_cast<std::uint32_t>(b == -1 ? 0 : a % b));
      return;
    }
    case kI32RemU: {
      const auto b = static_cast<std::uint32_t>(pop()), a = static_cast<std::uint32_t>(pop());
      if (b == 0) trap("integer divide by zero");
      push(a % b);
      return;
    }
    case kI32And: { const auto b = pop(), a = pop(); push(static_cast<std::uint32_t>(a & b)); return; }
    case kI32Or: { const auto b = pop(), a = pop(); push(static_cast<std::uint32_t>(a | b)); return; }
    case kI32Xor: { const auto b = pop(), a = pop(); push(static_cast<std::uint32_t>(a ^ b)); return; }
    case kI32Shl: { const auto b = static_cast<std::uint32_t>(pop()), a = static_cast<std::uint32_t>(pop()); push(static_cast<std::uint32_t>(a << (b & 31))); return; }
    case kI32ShrS: { const auto b = static_cast<std::uint32_t>(pop()); const auto a = static_cast<std::int32_t>(pop()); push(static_cast<std::uint32_t>(a >> (b & 31))); return; }
    case kI32ShrU: { const auto b = static_cast<std::uint32_t>(pop()), a = static_cast<std::uint32_t>(pop()); push(a >> (b & 31)); return; }
    case kI32Rotl: { const auto b = static_cast<std::uint32_t>(pop()), a = static_cast<std::uint32_t>(pop()); push(std::rotl(a, static_cast<int>(b & 31))); return; }
    case kI32Rotr: { const auto b = static_cast<std::uint32_t>(pop()), a = static_cast<std::uint32_t>(pop()); push(std::rotr(a, static_cast<int>(b & 31))); return; }

    // -- i64 arithmetic --
    case kI64Clz: { const auto a = pop(); push(a == 0 ? 64 : std::countl_zero(a)); return; }
    case kI64Ctz: { const auto a = pop(); push(a == 0 ? 64 : std::countr_zero(a)); return; }
    case kI64Popcnt: { push(std::popcount(pop())); return; }
    case kI64Add: { const auto b = pop(), a = pop(); push(a + b); return; }
    case kI64Sub: { const auto b = pop(), a = pop(); push(a - b); return; }
    case kI64Mul: { const auto b = pop(), a = pop(); push(a * b); return; }
    case kI64DivS: {
      const auto b = static_cast<std::int64_t>(pop()), a = static_cast<std::int64_t>(pop());
      if (b == 0) trap("integer divide by zero");
      if (a == INT64_MIN && b == -1) trap("integer overflow");
      push(static_cast<std::uint64_t>(a / b));
      return;
    }
    case kI64DivU: {
      const auto b = pop(), a = pop();
      if (b == 0) trap("integer divide by zero");
      push(a / b);
      return;
    }
    case kI64RemS: {
      const auto b = static_cast<std::int64_t>(pop()), a = static_cast<std::int64_t>(pop());
      if (b == 0) trap("integer divide by zero");
      push(static_cast<std::uint64_t>(b == -1 ? 0 : a % b));
      return;
    }
    case kI64RemU: {
      const auto b = pop(), a = pop();
      if (b == 0) trap("integer divide by zero");
      push(a % b);
      return;
    }
    case kI64And: { const auto b = pop(), a = pop(); push(a & b); return; }
    case kI64Or: { const auto b = pop(), a = pop(); push(a | b); return; }
    case kI64Xor: { const auto b = pop(), a = pop(); push(a ^ b); return; }
    case kI64Shl: { const auto b = pop(), a = pop(); push(a << (b & 63)); return; }
    case kI64ShrS: { const auto b = pop(); const auto a = static_cast<std::int64_t>(pop()); push(static_cast<std::uint64_t>(a >> (b & 63))); return; }
    case kI64ShrU: { const auto b = pop(), a = pop(); push(a >> (b & 63)); return; }
    case kI64Rotl: { const auto b = pop(), a = pop(); push(std::rotl(a, static_cast<int>(b & 63))); return; }
    case kI64Rotr: { const auto b = pop(), a = pop(); push(std::rotr(a, static_cast<int>(b & 63))); return; }

    // -- f32 arithmetic --
    case kF32Abs: push(bits_of(std::fabs(as_f32(pop())))); return;
    case kF32Neg: push(pop() ^ 0x80000000u); return;
    case kF32Ceil: push(bits_of(std::ceil(as_f32(pop())))); return;
    case kF32Floor: push(bits_of(std::floor(as_f32(pop())))); return;
    case kF32Trunc: push(bits_of(std::trunc(as_f32(pop())))); return;
    case kF32Nearest: push(bits_of(wasm_nearest(as_f32(pop())))); return;
    case kF32Sqrt: push(bits_of(std::sqrt(as_f32(pop())))); return;
    case kF32Add: { const auto b = as_f32(pop()), a = as_f32(pop()); push(bits_of(a + b)); return; }
    case kF32Sub: { const auto b = as_f32(pop()), a = as_f32(pop()); push(bits_of(a - b)); return; }
    case kF32Mul: { const auto b = as_f32(pop()), a = as_f32(pop()); push(bits_of(a * b)); return; }
    case kF32Div: { const auto b = as_f32(pop()), a = as_f32(pop()); push(bits_of(a / b)); return; }
    case kF32Min: { const auto b = as_f32(pop()), a = as_f32(pop()); push(bits_of(wasm_min(a, b))); return; }
    case kF32Max: { const auto b = as_f32(pop()), a = as_f32(pop()); push(bits_of(wasm_max(a, b))); return; }
    case kF32Copysign: { const auto b = as_f32(pop()), a = as_f32(pop()); push(bits_of(std::copysign(a, b))); return; }

    // -- f64 arithmetic --
    case kF64Abs: push(bits_of(std::fabs(as_f64(pop())))); return;
    case kF64Neg: push(pop() ^ 0x8000000000000000ull); return;
    case kF64Ceil: push(bits_of(std::ceil(as_f64(pop())))); return;
    case kF64Floor: push(bits_of(std::floor(as_f64(pop())))); return;
    case kF64Trunc: push(bits_of(std::trunc(as_f64(pop())))); return;
    case kF64Nearest: push(bits_of(wasm_nearest(as_f64(pop())))); return;
    case kF64Sqrt: push(bits_of(std::sqrt(as_f64(pop())))); return;
    case kF64Add: { const auto b = as_f64(pop()), a = as_f64(pop()); push(bits_of(a + b)); return; }
    case kF64Sub: { const auto b = as_f64(pop()), a = as_f64(pop()); push(bits_of(a - b)); return; }
    case kF64Mul: { const auto b = as_f64(pop()), a = as_f64(pop()); push(bits_of(a * b)); return; }
    case kF64Div: { const auto b = as_f64(pop()), a = as_f64(pop()); push(bits_of(a / b)); return; }
    case kF64Min: { const auto b = as_f64(pop()), a = as_f64(pop()); push(bits_of(wasm_min(a, b))); return; }
    case kF64Max: { const auto b = as_f64(pop()), a = as_f64(pop()); push(bits_of(wasm_max(a, b))); return; }
    case kF64Copysign: { const auto b = as_f64(pop()), a = as_f64(pop()); push(bits_of(std::copysign(a, b))); return; }

    // -- conversions --
    case kI32WrapI64: push(static_cast<std::uint32_t>(pop())); return;
    case kI32TruncF32S: push(static_cast<std::uint32_t>(trunc_checked<std::int32_t>(as_f32(pop()), "i32.trunc_f32_s"))); return;
    case kI32TruncF32U: push(trunc_checked<std::uint32_t>(as_f32(pop()), "i32.trunc_f32_u")); return;
    case kI32TruncF64S: push(static_cast<std::uint32_t>(trunc_checked<std::int32_t>(as_f64(pop()), "i32.trunc_f64_s"))); return;
    case kI32TruncF64U: push(trunc_checked<std::uint32_t>(as_f64(pop()), "i32.trunc_f64_u")); return;
    case kI64ExtendI32S: push(static_cast<std::uint64_t>(static_cast<std::int64_t>(static_cast<std::int32_t>(pop())))); return;
    case kI64ExtendI32U: push(static_cast<std::uint32_t>(pop())); return;
    case kI64TruncF32S: push(static_cast<std::uint64_t>(trunc_checked<std::int64_t>(as_f32(pop()), "i64.trunc_f32_s"))); return;
    case kI64TruncF32U: push(trunc_checked<std::uint64_t>(as_f32(pop()), "i64.trunc_f32_u")); return;
    case kI64TruncF64S: push(static_cast<std::uint64_t>(trunc_checked<std::int64_t>(as_f64(pop()), "i64.trunc_f64_s"))); return;
    case kI64TruncF64U: push(trunc_checked<std::uint64_t>(as_f64(pop()), "i64.trunc_f64_u")); return;
    case kF32ConvertI32S: push(bits_of(static_cast<float>(static_cast<std::int32_t>(pop())))); return;
    case kF32ConvertI32U: push(bits_of(static_cast<float>(static_cast<std::uint32_t>(pop())))); return;
    case kF32ConvertI64S: push(bits_of(static_cast<float>(static_cast<std::int64_t>(pop())))); return;
    case kF32ConvertI64U: push(bits_of(static_cast<float>(pop()))); return;
    case kF32DemoteF64: push(bits_of(static_cast<float>(as_f64(pop())))); return;
    case kF64ConvertI32S: push(bits_of(static_cast<double>(static_cast<std::int32_t>(pop())))); return;
    case kF64ConvertI32U: push(bits_of(static_cast<double>(static_cast<std::uint32_t>(pop())))); return;
    case kF64ConvertI64S: push(bits_of(static_cast<double>(static_cast<std::int64_t>(pop())))); return;
    case kF64ConvertI64U: push(bits_of(static_cast<double>(pop()))); return;
    case kF64PromoteF32: push(bits_of(static_cast<double>(as_f32(pop())))); return;
    case kI32ReinterpretF32: push(static_cast<std::uint32_t>(pop())); return;
    case kI64ReinterpretF64: return;  // bit pattern already in slot
    case kF32ReinterpretI32: push(static_cast<std::uint32_t>(pop())); return;
    case kF64ReinterpretI64: return;

    // -- sign extension --
    case kI32Extend8S: push(static_cast<std::uint32_t>(static_cast<std::int32_t>(static_cast<std::int8_t>(pop())))); return;
    case kI32Extend16S: push(static_cast<std::uint32_t>(static_cast<std::int32_t>(static_cast<std::int16_t>(pop())))); return;
    case kI64Extend8S: push(static_cast<std::uint64_t>(static_cast<std::int64_t>(static_cast<std::int8_t>(pop())))); return;
    case kI64Extend16S: push(static_cast<std::uint64_t>(static_cast<std::int64_t>(static_cast<std::int16_t>(pop())))); return;
    case kI64Extend32S: push(static_cast<std::uint64_t>(static_cast<std::int64_t>(static_cast<std::int32_t>(pop())))); return;

    default:
      trap("exec: unhandled numeric opcode " + std::to_string(op));
  }
}

std::uint64_t mem_load(Memory& mem, std::uint8_t op, std::uint32_t addr,
                       std::uint64_t offset) {
  const std::uint64_t ea = static_cast<std::uint64_t>(addr) + offset;
  std::size_t width;
  switch (op) {
    case kI32Load8S: case kI32Load8U: case kI64Load8S: case kI64Load8U: width = 1; break;
    case kI32Load16S: case kI32Load16U: case kI64Load16S: case kI64Load16U: width = 2; break;
    case kI32Load: case kF32Load: case kI64Load32S: case kI64Load32U: width = 4; break;
    default: width = 8; break;
  }
  if (!mem.in_bounds(ea, width)) trap("out of bounds memory access");
  const std::uint8_t* p = mem.data() + ea;
  switch (op) {
    case kI32Load: return get_u32le(p);
    case kI64Load: case kF64Load: return get_u64le(p);
    case kF32Load: return get_u32le(p);
    case kI32Load8S: return static_cast<std::uint32_t>(static_cast<std::int32_t>(static_cast<std::int8_t>(p[0])));
    case kI32Load8U: return p[0];
    case kI32Load16S: return static_cast<std::uint32_t>(static_cast<std::int32_t>(static_cast<std::int16_t>(get_u16le(p))));
    case kI32Load16U: return get_u16le(p);
    case kI64Load8S: return static_cast<std::uint64_t>(static_cast<std::int64_t>(static_cast<std::int8_t>(p[0])));
    case kI64Load8U: return p[0];
    case kI64Load16S: return static_cast<std::uint64_t>(static_cast<std::int64_t>(static_cast<std::int16_t>(get_u16le(p))));
    case kI64Load16U: return get_u16le(p);
    case kI64Load32S: return static_cast<std::uint64_t>(static_cast<std::int64_t>(static_cast<std::int32_t>(get_u32le(p))));
    case kI64Load32U: return get_u32le(p);
    default: trap("exec: bad load opcode");
  }
}

void mem_store(Memory& mem, std::uint8_t op, std::uint32_t addr, std::uint64_t offset,
               std::uint64_t value) {
  const std::uint64_t ea = static_cast<std::uint64_t>(addr) + offset;
  std::size_t width;
  switch (op) {
    case kI32Store8: case kI64Store8: width = 1; break;
    case kI32Store16: case kI64Store16: width = 2; break;
    case kI32Store: case kF32Store: case kI64Store32: width = 4; break;
    default: width = 8; break;
  }
  if (!mem.in_bounds(ea, width)) trap("out of bounds memory access");
  std::uint8_t* p = mem.data() + ea;
  switch (width) {
    case 1: p[0] = static_cast<std::uint8_t>(value); break;
    case 2:
      p[0] = static_cast<std::uint8_t>(value);
      p[1] = static_cast<std::uint8_t>(value >> 8);
      break;
    case 4:
      for (int i = 0; i < 4; ++i) p[i] = static_cast<std::uint8_t>(value >> (8 * i));
      break;
    default:
      for (int i = 0; i < 8; ++i) p[i] = static_cast<std::uint8_t>(value >> (8 * i));
      break;
  }
}

}  // namespace watz::wasm
