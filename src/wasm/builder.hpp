// Programmatic construction of WebAssembly binaries.
//
// The environment has no offline Wasm toolchain (the paper uses WASI-SDK /
// Clang 11), so every guest binary in this repository is produced either by
// this builder directly or by the wcc C-subset compiler sitting on top of it.
#pragma once

#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/leb128.hpp"
#include "wasm/module.hpp"
#include "wasm/opcodes.hpp"

namespace watz::wasm {

/// Instruction-level emitter for one function body.
class CodeEmitter {
 public:
  Bytes& bytes() noexcept { return code_; }

  CodeEmitter& op(Op opcode) {
    code_.push_back(opcode);
    return *this;
  }
  CodeEmitter& i32_const(std::int32_t v) {
    code_.push_back(kI32Const);
    write_sleb(code_, v);
    return *this;
  }
  CodeEmitter& i64_const(std::int64_t v) {
    code_.push_back(kI64Const);
    write_sleb(code_, v);
    return *this;
  }
  CodeEmitter& f32_const(float v);
  CodeEmitter& f64_const(double v);
  CodeEmitter& local_get(std::uint32_t i) { return op_idx(kLocalGet, i); }
  CodeEmitter& local_set(std::uint32_t i) { return op_idx(kLocalSet, i); }
  CodeEmitter& local_tee(std::uint32_t i) { return op_idx(kLocalTee, i); }
  CodeEmitter& global_get(std::uint32_t i) { return op_idx(kGlobalGet, i); }
  CodeEmitter& global_set(std::uint32_t i) { return op_idx(kGlobalSet, i); }
  CodeEmitter& call(std::uint32_t i) { return op_idx(kCall, i); }
  CodeEmitter& call_indirect(std::uint32_t type_index) {
    code_.push_back(kCallIndirect);
    write_uleb(code_, type_index);
    code_.push_back(0);
    return *this;
  }
  CodeEmitter& br(std::uint32_t depth) { return op_idx(kBr, depth); }
  CodeEmitter& br_if(std::uint32_t depth) { return op_idx(kBrIf, depth); }
  CodeEmitter& br_table(const std::vector<std::uint32_t>& targets, std::uint32_t def) {
    code_.push_back(kBrTable);
    write_uleb(code_, targets.size());
    for (std::uint32_t t : targets) write_uleb(code_, t);
    write_uleb(code_, def);
    return *this;
  }
  /// block_type: 0x40 (void) or a ValType byte.
  CodeEmitter& block(std::uint8_t block_type = 0x40) {
    code_.push_back(kBlock);
    code_.push_back(block_type);
    return *this;
  }
  CodeEmitter& loop(std::uint8_t block_type = 0x40) {
    code_.push_back(kLoop);
    code_.push_back(block_type);
    return *this;
  }
  CodeEmitter& if_(std::uint8_t block_type = 0x40) {
    code_.push_back(kIf);
    code_.push_back(block_type);
    return *this;
  }
  CodeEmitter& else_() { return op(kElse); }
  CodeEmitter& end() { return op(kEnd); }
  CodeEmitter& load(Op opcode, std::uint32_t offset, std::uint32_t align = 0) {
    code_.push_back(opcode);
    write_uleb(code_, align);
    write_uleb(code_, offset);
    return *this;
  }
  CodeEmitter& store(Op opcode, std::uint32_t offset, std::uint32_t align = 0) {
    return load(opcode, offset, align);
  }
  CodeEmitter& memory_size() {
    code_.push_back(kMemorySize);
    code_.push_back(0);
    return *this;
  }
  CodeEmitter& memory_grow() {
    code_.push_back(kMemoryGrow);
    code_.push_back(0);
    return *this;
  }
  CodeEmitter& memory_copy() {
    code_.push_back(kPrefixFC);
    write_uleb(code_, kMemoryCopy);
    code_.push_back(0);
    code_.push_back(0);
    return *this;
  }
  CodeEmitter& memory_fill() {
    code_.push_back(kPrefixFC);
    write_uleb(code_, kMemoryFill);
    code_.push_back(0);
    return *this;
  }

 private:
  CodeEmitter& op_idx(Op opcode, std::uint32_t i) {
    code_.push_back(opcode);
    write_uleb(code_, i);
    return *this;
  }
  Bytes code_;
};

/// Whole-module builder producing a spec-conformant binary.
class ModuleBuilder {
 public:
  /// Returns the type index (deduplicated).
  std::uint32_t add_type(FuncType type);

  /// Declares an imported function; imports always precede local functions
  /// in the index space, so declare all imports first.
  std::uint32_t import_function(std::string module, std::string name, FuncType type);

  /// Declares a local function, returning its unified function index. The
  /// body may be filled in later via set_body().
  std::uint32_t add_function(FuncType type, std::vector<ValType> locals = {});

  void set_body(std::uint32_t func_index, Bytes code);

  /// Replaces the declared locals of a function (single-pass compilers
  /// discover locals while emitting the body).
  void set_locals(std::uint32_t func_index, std::vector<ValType> locals);

  void add_memory(std::uint32_t min_pages, std::uint32_t max_pages = 0);
  void add_table(std::uint32_t min, std::uint32_t max = 0);
  std::uint32_t add_global(ValType type, bool mutable_, std::int64_t init);
  std::uint32_t add_global_f64(bool mutable_, double init);
  void add_export(std::string name, ImportKind kind, std::uint32_t index);
  void export_function(std::string name, std::uint32_t func_index) {
    add_export(std::move(name), ImportKind::Func, func_index);
  }
  void add_element(std::uint32_t offset, std::vector<std::uint32_t> funcs);
  void add_data(std::uint32_t offset, Bytes data);
  void set_start(std::uint32_t func_index) { start_ = func_index; }
  void add_custom(std::string name, Bytes payload);

  /// Serialises to the binary format.
  Bytes build() const;

 private:
  struct LocalFunc {
    std::uint32_t type_index;
    std::vector<ValType> locals;
    Bytes body;
  };
  struct ImportFunc {
    std::string module, name;
    std::uint32_t type_index;
  };
  struct GlobalDef {
    ValType type;
    bool mutable_;
    std::int64_t init;
    double f64_init = 0;
  };
  struct ElemDef {
    std::uint32_t offset;
    std::vector<std::uint32_t> funcs;
  };
  struct DataDef {
    std::uint32_t offset;
    Bytes data;
  };
  struct ExportDef {
    std::string name;
    ImportKind kind;
    std::uint32_t index;
  };
  struct CustomDef {
    std::string name;
    Bytes payload;
  };

  std::vector<FuncType> types_;
  std::vector<ImportFunc> imports_;
  std::vector<LocalFunc> funcs_;
  bool has_memory_ = false;
  Limits memory_{};
  bool has_table_ = false;
  Limits table_{};
  std::vector<GlobalDef> globals_;
  std::vector<ExportDef> exports_;
  std::vector<ElemDef> elements_;
  std::vector<DataDef> data_;
  std::vector<CustomDef> custom_;
  std::optional<std::uint32_t> start_;
};

}  // namespace watz::wasm
