// The WaTZ attestation service: an OP-TEE kernel module (SS V).
//
// Lives in the trusted kernel so the private attestation key is never
// exposed to user-space TAs — the Wasm runtime passes claims in, evidence
// comes out. The key pair is derived *deterministically* at each boot from
// the hardware root of trust: MKVB -> huk_subkey_derive -> Fortuna seed ->
// ECDSA key pair, so OS updates never change the device identity.
#pragma once

#include "attestation/evidence.hpp"
#include "crypto/fortuna.hpp"
#include "optee/trusted_os.hpp"

namespace watz::attestation {

class AttestationService final : public optee::KernelModule {
 public:
  static constexpr const char* kName = "watz.attestation";

  /// Derives the attestation key pair from the trusted OS's root of trust.
  /// Requires the WaTZ kernel extensions (seedable Fortuna PRNG in
  /// LibTomCrypt is a paper contribution; stock OP-TEE cannot do this).
  static Result<std::shared_ptr<AttestationService>> create(const optee::TrustedOs& os);

  const char* name() const override { return kName; }

  /// The public half, exported as the endorsement value relying parties
  /// register before accepting this device.
  const crypto::EcPoint& public_key() const noexcept { return key_.pub; }

  /// Issues signed evidence for a claim (the Wasm bytecode measurement)
  /// bound to `anchor` (the transport-layer session binding).
  Evidence issue_evidence(const std::array<std::uint8_t, 32>& anchor,
                          const crypto::Sha256Digest& claim,
                          std::uint32_t version = kWatzVersion) const;

 private:
  explicit AttestationService(crypto::KeyPair key) : key_(std::move(key)) {}
  crypto::KeyPair key_;  // private part never leaves this module
};

}  // namespace watz::attestation
