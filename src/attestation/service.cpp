#include "attestation/service.hpp"

namespace watz::attestation {

Result<std::shared_ptr<AttestationService>> AttestationService::create(
    const optee::TrustedOs& os) {
  if (!os.config().watz_extensions)
    return Result<std::shared_ptr<AttestationService>>::err(
        "attestation service requires the WaTZ kernel extensions "
        "(seedable Fortuna PRNG, MKVB width fix)");
  // Two-step derivation exactly as SS V describes: huk_subkey_derive first,
  // then the result seeds Fortuna, from which the ECDSA key pair is drawn.
  const auto seed = os.huk_subkey_derive("watz-attestation-key-v1");
  crypto::Fortuna prng(seed);
  auto key = crypto::ecdsa_keygen(prng);
  return std::shared_ptr<AttestationService>(new AttestationService(std::move(key)));
}

Evidence AttestationService::issue_evidence(const std::array<std::uint8_t, 32>& anchor,
                                            const crypto::Sha256Digest& claim,
                                            std::uint32_t version) const {
  Evidence ev;
  ev.anchor = anchor;
  ev.version = version;
  ev.claim = claim;
  ev.attestation_key = key_.pub;
  const auto digest = crypto::sha256(ev.signed_payload());
  ev.signature = crypto::ecdsa_sign(key_.priv, digest).encode();
  return ev;
}

}  // namespace watz::attestation
