// Evidence: the cryptographically signed report WaTZ produces to prove that
// a specific Wasm application runs on a genuine device (SS IV "Proof of
// trust"). Contents, in order:
//   (i)   anchor  — transport-layer binding (hash of the session keys)
//   (ii)  version — WaTZ version, so relying parties can exclude outdated
//                   (unpatched) runtimes
//   (iii) claim   — SHA-256 of the loaded Wasm AOT bytecode
//   (iv)  key     — the device's public attestation key (endorsement lookup)
//   (v)   sig     — ECDSA over (i)-(iv) by the attestation service
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/sha256.hpp"

namespace watz::attestation {

inline constexpr std::uint32_t kWatzVersion = 0x0001'0000;  // 1.0.0

struct Evidence {
  std::array<std::uint8_t, 32> anchor{};
  std::uint32_t version = kWatzVersion;
  crypto::Sha256Digest claim{};  // Wasm bytecode measurement
  crypto::EcPoint attestation_key;
  Bytes signature;  // 64 bytes, over signed_payload()

  /// The byte string the attestation service signs.
  Bytes signed_payload() const;

  /// Wire encoding: fixed-size fields concatenated (197 bytes).
  Bytes encode() const;
  static Result<Evidence> decode(ByteView data);

  static constexpr std::size_t kEncodedSize = 32 + 4 + 32 + 65 + 64;
};

/// Verifies the evidence signature against the embedded attestation key.
/// (Endorsement of that key is the verifier's separate step.)
bool verify_evidence_signature(const Evidence& evidence);

}  // namespace watz::attestation
