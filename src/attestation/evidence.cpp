#include "attestation/evidence.hpp"

#include <cstring>

namespace watz::attestation {

Bytes Evidence::signed_payload() const {
  Bytes out;
  out.reserve(32 + 4 + 32 + 65);
  append(out, anchor);
  put_u32le(out, version);
  append(out, claim);
  append(out, attestation_key.encode_uncompressed());
  return out;
}

Bytes Evidence::encode() const {
  Bytes out = signed_payload();
  append(out, signature);
  return out;
}

Result<Evidence> Evidence::decode(ByteView data) {
  if (data.size() != kEncodedSize)
    return Result<Evidence>::err("evidence: wrong size");
  Evidence ev;
  std::size_t off = 0;
  std::memcpy(ev.anchor.data(), data.data(), 32);
  off += 32;
  ev.version = get_u32le(data.data() + off);
  off += 4;
  std::memcpy(ev.claim.data(), data.data() + off, 32);
  off += 32;
  auto key = crypto::EcPoint::decode_uncompressed(data.subspan(off, 65));
  if (!key.ok()) return Result<Evidence>::err("evidence: bad attestation key");
  ev.attestation_key = *key;
  off += 65;
  ev.signature.assign(data.begin() + off, data.end());
  return ev;
}

bool verify_evidence_signature(const Evidence& evidence) {
  auto sig = crypto::EcdsaSignature::decode(evidence.signature);
  if (!sig.ok()) return false;
  const auto digest = crypto::sha256(evidence.signed_payload());
  return crypto::ecdsa_verify(evidence.attestation_key, digest, *sig);
}

}  // namespace watz::attestation
