// PolyBench/C kernel suite (v4.2.1b shapes), used by the Fig 5 benchmark.
//
// Single-source approach: every kernel body is written once in the wcc C
// subset. The same text is (a) compiled natively through the AllocProxy
// arena shim below — the "native" baseline — and (b) stringified and fed to
// wcc, producing the Wasm guest. Both sides therefore execute the *same*
// algorithm with the same operation order, and the harness cross-checks
// their checksums.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <string>

namespace watz::polybench {

/// Bump arena backing the native compilation of the kernels (the Wasm side
/// uses wcc's alloc() over linear memory, which is zero-initialised; the
/// arena matches that).
void arena_reset();

struct AllocProxy {
  void* p;
  operator double*() const { return static_cast<double*>(p); }
  operator int*() const { return static_cast<int*>(p); }
  operator long*() const { return static_cast<long*>(p); }
  operator char*() const { return static_cast<char*>(p); }
};

AllocProxy alloc(int bytes);

struct KernelDef {
  const char* name;        ///< paper's label (2mm, adi, ...)
  const char* source;      ///< wcc source text; exports double run(int n)
  double (*native)(int n); ///< the same code compiled natively
  int n;                   ///< dataset parameter (medium-style, scaled to
                           ///< fit the 27 MB secure-heap ceiling)
};

/// All 30 kernels, in the order of Fig 5.
std::span<const KernelDef> suite();

/// Looks a kernel up by name; nullptr when unknown.
const KernelDef* find_kernel(std::string_view name);

}  // namespace watz::polybench
