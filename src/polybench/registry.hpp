// Internal kernel-definition machinery.
//
// WATZ_POLY_KERNEL defines a kernel once: the body (wcc C subset, also
// valid C++ against the AllocProxy shim) is compiled into namespace k_<id>
// for the native baseline and stringified for the wcc/Wasm build. Kernel
// files export an explicit collector function (static-initialiser
// registration would be stripped from a static library).
#pragma once

#include <vector>

#include "polybench/suite.hpp"

namespace watz::polybench {

std::vector<KernelDef> kernels_part_a();
std::vector<KernelDef> kernels_part_b();
std::vector<KernelDef> kernels_part_c();

}  // namespace watz::polybench

#define WATZ_POLY_KERNEL(id, N, ...)                                  \
  namespace k_##id {                                                  \
  using watz::polybench::alloc;                                       \
  using std::fabs;                                                    \
  using std::floor;                                                   \
  using std::sqrt;                                                    \
  __VA_ARGS__                                                         \
  }                                                                   \
  static watz::polybench::KernelDef def_##id() {                      \
    return watz::polybench::KernelDef{#id, #__VA_ARGS__, &k_##id::run, (N)}; \
  }
