// PolyBench kernels, part B: durbin fdtd-2d floyd-warshall gemm gemver
// gesummv gramschmidt heat-3d jacobi-1d jacobi-2d.
#include "polybench/registry.hpp"

WATZ_POLY_KERNEL(dur, 200,
double run(int n) {
  /* Levinson-Durbin recursion */
  double* r = alloc(n * 8);
  double* y = alloc(n * 8);
  double* z = alloc(n * 8);
  for (int i = 0; i < n; i++) r[i] = n + 1 - i;
  y[0] = -r[0];
  double beta = 1.0;
  double alpha = -r[0];
  for (int k = 1; k < n; k++) {
    beta = (1.0 - alpha * alpha) * beta;
    double sum = 0.0;
    for (int i = 0; i < k; i++) sum += r[k - i - 1] * y[i];
    alpha = -(r[k] + sum) / beta;
    for (int i = 0; i < k; i++) z[i] = y[i] + alpha * y[k - i - 1];
    for (int i = 0; i < k; i++) y[i] = z[i];
    y[k] = alpha;
  }
  double s = 0.0;
  for (int i = 0; i < n; i++) s += y[i];
  return s;
}
)

WATZ_POLY_KERNEL(f2d, 60,
double run(int n) {
  int tmax = 20;
  double* ex = alloc(n * n * 8);
  double* ey = alloc(n * n * 8);
  double* hz = alloc(n * n * 8);
  double* fict = alloc(tmax * 8);
  for (int i = 0; i < tmax; i++) fict[i] = (double)i;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      ex[i * n + j] = ((double)i * (j + 1)) / n;
      ey[i * n + j] = ((double)i * (j + 2)) / n;
      hz[i * n + j] = ((double)i * (j + 3)) / n;
    }
  for (int t = 0; t < tmax; t++) {
    for (int j = 0; j < n; j++) ey[0 * n + j] = fict[t];
    for (int i = 1; i < n; i++)
      for (int j = 0; j < n; j++)
        ey[i * n + j] = ey[i * n + j] - 0.5 * (hz[i * n + j] - hz[(i - 1) * n + j]);
    for (int i = 0; i < n; i++)
      for (int j = 1; j < n; j++)
        ex[i * n + j] = ex[i * n + j] - 0.5 * (hz[i * n + j] - hz[i * n + j - 1]);
    for (int i = 0; i < n - 1; i++)
      for (int j = 0; j < n - 1; j++)
        hz[i * n + j] = hz[i * n + j] - 0.7 * (ex[i * n + j + 1] - ex[i * n + j] + ey[(i + 1) * n + j] - ey[i * n + j]);
  }
  double s = 0.0;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) s += hz[i * n + j];
  return s;
}
)

WATZ_POLY_KERNEL(flo, 60,
double run(int n) {
  /* Floyd-Warshall all-pairs shortest paths (integer weights) */
  int* path = alloc(n * n * 4);
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      path[i * n + j] = i * j % 7 + 1;
      if ((i + j) % 13 == 0 || (i + j) % 7 == 0 || (i + j) % 11 == 0)
        path[i * n + j] = 999;
    }
  for (int k = 0; k < n; k++)
    for (int i = 0; i < n; i++)
      for (int j = 0; j < n; j++) {
        int via = path[i * n + k] + path[k * n + j];
        if (via < path[i * n + j]) path[i * n + j] = via;
      }
  double s = 0.0;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) s += path[i * n + j];
  return s;
}
)

WATZ_POLY_KERNEL(gem, 52,
double run(int n) {
  double* A = alloc(n * n * 8);
  double* B = alloc(n * n * 8);
  double* C = alloc(n * n * 8);
  double alpha = 1.5;
  double beta = 1.2;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      A[i * n + j] = (i * (j + 1) % n) / (double)n;
      B[i * n + j] = (i * (j + 2) % n) / (double)n;
      C[i * n + j] = (i * (j + 3) % n) / (double)n;
    }
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < n; j++) C[i * n + j] *= beta;
    for (int k = 0; k < n; k++)
      for (int j = 0; j < n; j++) C[i * n + j] += alpha * A[i * n + k] * B[k * n + j];
  }
  double s = 0.0;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) s += C[i * n + j];
  return s;
}
)

WATZ_POLY_KERNEL(gev, 120,
double run(int n) {
  double* A = alloc(n * n * 8);
  double* u1 = alloc(n * 8);
  double* v1 = alloc(n * 8);
  double* u2 = alloc(n * 8);
  double* v2 = alloc(n * 8);
  double* w = alloc(n * 8);
  double* x = alloc(n * 8);
  double* y = alloc(n * 8);
  double* z = alloc(n * 8);
  double alpha = 1.5;
  double beta = 1.2;
  for (int i = 0; i < n; i++) {
    u1[i] = i;
    u2[i] = ((i + 1) / (double)n) / 2.0;
    v1[i] = ((i + 1) / (double)n) / 4.0;
    v2[i] = ((i + 1) / (double)n) / 6.0;
    y[i] = ((i + 1) / (double)n) / 8.0;
    z[i] = ((i + 1) / (double)n) / 9.0;
    x[i] = 0.0;
    w[i] = 0.0;
    for (int j = 0; j < n; j++) A[i * n + j] = (i * j % n) / (double)n;
  }
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      A[i * n + j] = A[i * n + j] + u1[i] * v1[j] + u2[i] * v2[j];
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) x[i] = x[i] + beta * A[j * n + i] * y[j];
  for (int i = 0; i < n; i++) x[i] = x[i] + z[i];
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) w[i] = w[i] + alpha * A[i * n + j] * x[j];
  double s = 0.0;
  for (int i = 0; i < n; i++) s += w[i];
  return s;
}
)

WATZ_POLY_KERNEL(ges, 120,
double run(int n) {
  double* A = alloc(n * n * 8);
  double* B = alloc(n * n * 8);
  double* x = alloc(n * 8);
  double* y = alloc(n * 8);
  double* tmp = alloc(n * 8);
  double alpha = 1.5;
  double beta = 1.2;
  for (int i = 0; i < n; i++) {
    x[i] = (i % n) / (double)n;
    for (int j = 0; j < n; j++) {
      A[i * n + j] = ((i * j + 1) % n) / (double)n;
      B[i * n + j] = ((i * j + 2) % n) / (double)n;
    }
  }
  for (int i = 0; i < n; i++) {
    tmp[i] = 0.0;
    y[i] = 0.0;
    for (int j = 0; j < n; j++) {
      tmp[i] = A[i * n + j] * x[j] + tmp[i];
      y[i] = B[i * n + j] * x[j] + y[i];
    }
    y[i] = alpha * tmp[i] + beta * y[i];
  }
  double s = 0.0;
  for (int i = 0; i < n; i++) s += y[i];
  return s;
}
)

WATZ_POLY_KERNEL(gra, 44,
double run(int n) {
  /* Gram-Schmidt QR decomposition */
  double* A = alloc(n * n * 8);
  double* R = alloc(n * n * 8);
  double* Q = alloc(n * n * 8);
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      A[i * n + j] = ((i * j % n) / (double)n) * 100.0 + 10.0;
      Q[i * n + j] = 0.0;
      R[i * n + j] = 0.0;
    }
  for (int k = 0; k < n; k++) {
    double nrm = 0.0;
    for (int i = 0; i < n; i++) nrm += A[i * n + k] * A[i * n + k];
    R[k * n + k] = sqrt(nrm);
    for (int i = 0; i < n; i++) Q[i * n + k] = A[i * n + k] / R[k * n + k];
    for (int j = k + 1; j < n; j++) {
      R[k * n + j] = 0.0;
      for (int i = 0; i < n; i++) R[k * n + j] += Q[i * n + k] * A[i * n + j];
      for (int i = 0; i < n; i++) A[i * n + j] = A[i * n + j] - Q[i * n + k] * R[k * n + j];
    }
  }
  double s = 0.0;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) s += R[i * n + j] + Q[i * n + j];
  return s;
}
)

WATZ_POLY_KERNEL(h3d, 16,
double run(int n) {
  int tsteps = 10;
  double* A = alloc(n * n * n * 8);
  double* B = alloc(n * n * n * 8);
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      for (int k = 0; k < n; k++) {
        A[(i * n + j) * n + k] = ((double)(i + j + (n - k))) * 10.0 / n;
        B[(i * n + j) * n + k] = A[(i * n + j) * n + k];
      }
  for (int t = 1; t <= tsteps; t++) {
    for (int i = 1; i < n - 1; i++)
      for (int j = 1; j < n - 1; j++)
        for (int k = 1; k < n - 1; k++)
          B[(i * n + j) * n + k] =
              0.125 * (A[((i + 1) * n + j) * n + k] - 2.0 * A[(i * n + j) * n + k] + A[((i - 1) * n + j) * n + k]) +
              0.125 * (A[(i * n + j + 1) * n + k] - 2.0 * A[(i * n + j) * n + k] + A[(i * n + j - 1) * n + k]) +
              0.125 * (A[(i * n + j) * n + k + 1] - 2.0 * A[(i * n + j) * n + k] + A[(i * n + j) * n + k - 1]) +
              A[(i * n + j) * n + k];
    for (int i = 1; i < n - 1; i++)
      for (int j = 1; j < n - 1; j++)
        for (int k = 1; k < n - 1; k++)
          A[(i * n + j) * n + k] =
              0.125 * (B[((i + 1) * n + j) * n + k] - 2.0 * B[(i * n + j) * n + k] + B[((i - 1) * n + j) * n + k]) +
              0.125 * (B[(i * n + j + 1) * n + k] - 2.0 * B[(i * n + j) * n + k] + B[(i * n + j - 1) * n + k]) +
              0.125 * (B[(i * n + j) * n + k + 1] - 2.0 * B[(i * n + j) * n + k] + B[(i * n + j) * n + k - 1]) +
              B[(i * n + j) * n + k];
  }
  double s = 0.0;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      for (int k = 0; k < n; k++) s += A[(i * n + j) * n + k];
  return s;
}
)

WATZ_POLY_KERNEL(j1d, 2000,
double run(int n) {
  int tsteps = 100;
  double* A = alloc(n * 8);
  double* B = alloc(n * 8);
  for (int i = 0; i < n; i++) {
    A[i] = ((double)i + 2) / n;
    B[i] = ((double)i + 3) / n;
  }
  for (int t = 0; t < tsteps; t++) {
    for (int i = 1; i < n - 1; i++) B[i] = 0.33333 * (A[i - 1] + A[i] + A[i + 1]);
    for (int i = 1; i < n - 1; i++) A[i] = 0.33333 * (B[i - 1] + B[i] + B[i + 1]);
  }
  double s = 0.0;
  for (int i = 0; i < n; i++) s += A[i];
  return s;
}
)

WATZ_POLY_KERNEL(j2d, 56,
double run(int n) {
  int tsteps = 20;
  double* A = alloc(n * n * 8);
  double* B = alloc(n * n * 8);
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      A[i * n + j] = ((double)i * (j + 2) + 2) / n;
      B[i * n + j] = ((double)i * (j + 3) + 3) / n;
    }
  for (int t = 0; t < tsteps; t++) {
    for (int i = 1; i < n - 1; i++)
      for (int j = 1; j < n - 1; j++)
        B[i * n + j] = 0.2 * (A[i * n + j] + A[i * n + j - 1] + A[i * n + j + 1] + A[(i + 1) * n + j] + A[(i - 1) * n + j]);
    for (int i = 1; i < n - 1; i++)
      for (int j = 1; j < n - 1; j++)
        A[i * n + j] = 0.2 * (B[i * n + j] + B[i * n + j - 1] + B[i * n + j + 1] + B[(i + 1) * n + j] + B[(i - 1) * n + j]);
  }
  double s = 0.0;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) s += A[i * n + j];
  return s;
}
)

namespace watz::polybench {
std::vector<KernelDef> kernels_part_b() {
  return {def_dur(), def_f2d(), def_flo(), def_gem(), def_gev(),
          def_ges(), def_gra(), def_h3d(), def_j1d(), def_j2d()};
}
}  // namespace watz::polybench
