// PolyBench kernels, part A: 2mm 3mm adi atax bicg cholesky correlation
// covariance deriche doitgen.
//
// Bodies are in the wcc C subset (see registry.hpp for the single-source
// mechanics); initialisation formulas follow the PolyBench conventions.
#include "polybench/registry.hpp"

WATZ_POLY_KERNEL(k2mm, 48,
double run(int n) {
  double* A = alloc(n * n * 8);
  double* B = alloc(n * n * 8);
  double* C = alloc(n * n * 8);
  double* D = alloc(n * n * 8);
  double* tmp = alloc(n * n * 8);
  double alpha = 1.5;
  double beta = 1.2;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      A[i * n + j] = ((i * j + 1) % n) / (double)n;
      B[i * n + j] = ((i * (j + 1)) % n) / (double)n;
      C[i * n + j] = ((i * (j + 3) + 1) % n) / (double)n;
      D[i * n + j] = ((i * (j + 2)) % n) / (double)n;
    }
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      tmp[i * n + j] = 0.0;
      for (int k = 0; k < n; k++) tmp[i * n + j] += alpha * A[i * n + k] * B[k * n + j];
    }
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      D[i * n + j] *= beta;
      for (int k = 0; k < n; k++) D[i * n + j] += tmp[i * n + k] * C[k * n + j];
    }
  double s = 0.0;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) s += D[i * n + j];
  return s;
}
)

WATZ_POLY_KERNEL(k3mm, 44,
double run(int n) {
  double* A = alloc(n * n * 8);
  double* B = alloc(n * n * 8);
  double* C = alloc(n * n * 8);
  double* D = alloc(n * n * 8);
  double* E = alloc(n * n * 8);
  double* F = alloc(n * n * 8);
  double* G = alloc(n * n * 8);
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      A[i * n + j] = ((i * j + 1) % n) / (5.0 * n);
      B[i * n + j] = ((i * (j + 1) + 2) % n) / (5.0 * n);
      C[i * n + j] = (i * (j + 3) % n) / (5.0 * n);
      D[i * n + j] = ((i * (j + 2) + 2) % n) / (5.0 * n);
    }
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      E[i * n + j] = 0.0;
      for (int k = 0; k < n; k++) E[i * n + j] += A[i * n + k] * B[k * n + j];
    }
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      F[i * n + j] = 0.0;
      for (int k = 0; k < n; k++) F[i * n + j] += C[i * n + k] * D[k * n + j];
    }
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      G[i * n + j] = 0.0;
      for (int k = 0; k < n; k++) G[i * n + j] += E[i * n + k] * F[k * n + j];
    }
  double s = 0.0;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) s += G[i * n + j];
  return s;
}
)

WATZ_POLY_KERNEL(adi, 40,
double run(int n) {
  double* u = alloc(n * n * 8);
  double* v = alloc(n * n * 8);
  double* p = alloc(n * n * 8);
  double* q = alloc(n * n * 8);
  int tsteps = 10;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) u[i * n + j] = (i + n - j) / (double)n;
  double DX = 1.0 / n;
  double DT = 1.0 / tsteps;
  double B1 = 2.0;
  double mul1 = B1 * DT / (DX * DX);
  double a = -mul1 / 2.0;
  double b = 1.0 + mul1;
  double c = a;
  for (int t = 1; t <= tsteps; t++) {
    for (int i = 1; i < n - 1; i++) {
      v[0 * n + i] = 1.0;
      p[i * n + 0] = 0.0;
      q[i * n + 0] = v[0 * n + i];
      for (int j = 1; j < n - 1; j++) {
        p[i * n + j] = -c / (a * p[i * n + j - 1] + b);
        q[i * n + j] = (-a * u[j * n + i - 1] + (1.0 + 2.0 * a) * u[j * n + i] - c * u[j * n + i + 1] - a * q[i * n + j - 1]) / (a * p[i * n + j - 1] + b);
      }
      v[(n - 1) * n + i] = 1.0;
      for (int j = n - 2; j >= 1; j--) v[j * n + i] = p[i * n + j] * v[(j + 1) * n + i] + q[i * n + j];
    }
    for (int i = 1; i < n - 1; i++) {
      u[i * n + 0] = 1.0;
      p[i * n + 0] = 0.0;
      q[i * n + 0] = u[i * n + 0];
      for (int j = 1; j < n - 1; j++) {
        p[i * n + j] = -c / (a * p[i * n + j - 1] + b);
        q[i * n + j] = (-a * v[(i - 1) * n + j] + (1.0 + 2.0 * a) * v[i * n + j] - c * v[(i + 1) * n + j] - a * q[i * n + j - 1]) / (a * p[i * n + j - 1] + b);
      }
      u[i * n + n - 1] = 1.0;
      for (int j = n - 2; j >= 1; j--) u[i * n + j] = p[i * n + j] * u[i * n + j + 1] + q[i * n + j];
    }
  }
  double s = 0.0;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) s += u[i * n + j];
  return s;
}
)

WATZ_POLY_KERNEL(atax, 160,
double run(int n) {
  double* A = alloc(n * n * 8);
  double* x = alloc(n * 8);
  double* y = alloc(n * 8);
  double* tmp = alloc(n * 8);
  for (int i = 0; i < n; i++) {
    x[i] = 1.0 + i / (double)n;
    for (int j = 0; j < n; j++) A[i * n + j] = ((i + j) % n) / (5.0 * n);
  }
  for (int i = 0; i < n; i++) y[i] = 0.0;
  for (int i = 0; i < n; i++) {
    tmp[i] = 0.0;
    for (int j = 0; j < n; j++) tmp[i] += A[i * n + j] * x[j];
    for (int j = 0; j < n; j++) y[j] += A[i * n + j] * tmp[i];
  }
  double s = 0.0;
  for (int i = 0; i < n; i++) s += y[i];
  return s;
}
)

WATZ_POLY_KERNEL(bicg, 160,
double run(int n) {
  double* A = alloc(n * n * 8);
  double* r = alloc(n * 8);
  double* p = alloc(n * 8);
  double* s = alloc(n * 8);
  double* q = alloc(n * 8);
  for (int i = 0; i < n; i++) {
    p[i] = (i % n) / (double)n;
    r[i] = (i % n) / (double)n;
    for (int j = 0; j < n; j++) A[i * n + j] = (i * (j + 1) % n) / (double)n;
  }
  for (int i = 0; i < n; i++) {
    s[i] = 0.0;
    q[i] = 0.0;
  }
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < n; j++) {
      s[j] += r[i] * A[i * n + j];
      q[i] += A[i * n + j] * p[j];
    }
  }
  double acc = 0.0;
  for (int i = 0; i < n; i++) acc += s[i] + q[i];
  return acc;
}
)

WATZ_POLY_KERNEL(cho, 48,
double run(int n) {
  double* A = alloc(n * n * 8);
  for (int i = 0; i < n; i++) {
    for (int j = 0; j <= i; j++) A[i * n + j] = (-(j % n)) / (double)n + 1.0;
    for (int j = i + 1; j < n; j++) A[i * n + j] = 0.0;
    A[i * n + i] = 1.0;
  }
  /* make positive semi-definite: A = B * B^T */
  double* B = alloc(n * n * 8);
  for (int t = 0; t < n; t++)
    for (int r2 = 0; r2 < n; r2++) {
      B[t * n + r2] = 0.0;
      for (int s2 = 0; s2 < n; s2++) B[t * n + r2] += A[t * n + s2] * A[r2 * n + s2];
    }
  for (int t = 0; t < n; t++)
    for (int r2 = 0; r2 < n; r2++) A[t * n + r2] = B[t * n + r2];
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < i; j++) {
      for (int k = 0; k < j; k++) A[i * n + j] -= A[i * n + k] * A[j * n + k];
      A[i * n + j] /= A[j * n + j];
    }
    for (int k = 0; k < i; k++) A[i * n + i] -= A[i * n + k] * A[i * n + k];
    A[i * n + i] = sqrt(A[i * n + i]);
  }
  double s = 0.0;
  for (int i = 0; i < n; i++)
    for (int j = 0; j <= i; j++) s += A[i * n + j];
  return s;
}
)

WATZ_POLY_KERNEL(cor, 48,
double run(int n) {
  double* data = alloc(n * n * 8);
  double* mean = alloc(n * 8);
  double* stddev = alloc(n * 8);
  double* corr = alloc(n * n * 8);
  double float_n = (double)n;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) data[i * n + j] = (i * j) / (double)n + i;
  for (int j = 0; j < n; j++) {
    mean[j] = 0.0;
    for (int i = 0; i < n; i++) mean[j] += data[i * n + j];
    mean[j] /= float_n;
  }
  for (int j = 0; j < n; j++) {
    stddev[j] = 0.0;
    for (int i = 0; i < n; i++)
      stddev[j] += (data[i * n + j] - mean[j]) * (data[i * n + j] - mean[j]);
    stddev[j] = sqrt(stddev[j] / float_n);
    if (stddev[j] <= 0.1) stddev[j] = 1.0;
  }
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      data[i * n + j] -= mean[j];
      data[i * n + j] /= sqrt(float_n) * stddev[j];
    }
  for (int i = 0; i < n - 1; i++) {
    corr[i * n + i] = 1.0;
    for (int j = i + 1; j < n; j++) {
      corr[i * n + j] = 0.0;
      for (int k = 0; k < n; k++) corr[i * n + j] += data[k * n + i] * data[k * n + j];
      corr[j * n + i] = corr[i * n + j];
    }
  }
  corr[(n - 1) * n + n - 1] = 1.0;
  double s = 0.0;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) s += corr[i * n + j];
  return s;
}
)

WATZ_POLY_KERNEL(cov, 48,
double run(int n) {
  double* data = alloc(n * n * 8);
  double* mean = alloc(n * 8);
  double* cov = alloc(n * n * 8);
  double float_n = (double)n;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) data[i * n + j] = (i * j) / (double)n;
  for (int j = 0; j < n; j++) {
    mean[j] = 0.0;
    for (int i = 0; i < n; i++) mean[j] += data[i * n + j];
    mean[j] /= float_n;
  }
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) data[i * n + j] -= mean[j];
  for (int i = 0; i < n; i++)
    for (int j = i; j < n; j++) {
      cov[i * n + j] = 0.0;
      for (int k = 0; k < n; k++) cov[i * n + j] += data[k * n + i] * data[k * n + j];
      cov[i * n + j] /= float_n - 1.0;
      cov[j * n + i] = cov[i * n + j];
    }
  double s = 0.0;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) s += cov[i * n + j];
  return s;
}
)

WATZ_POLY_KERNEL(der, 96,
double run(int n) {
  /* Deriche recursive edge filter, horizontal + vertical passes */
  double* img = alloc(n * n * 8);
  double* y1 = alloc(n * n * 8);
  double* y2 = alloc(n * n * 8);
  double* out = alloc(n * n * 8);
  double alpha = 0.25;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++)
      img[i * n + j] = ((313 * i + 991 * j) % 65536) / 65535.0;
  double k = (1.0 - 0.7788007830714049) * (1.0 - 0.7788007830714049) /
             (1.0 + 2.0 * alpha * 0.7788007830714049 - 0.6065306597126334);
  double a1 = k;
  double a2 = k * 0.7788007830714049 * (alpha - 1.0);
  double b1 = 2.0 * 0.7788007830714049;
  double b2 = -0.6065306597126334;
  for (int i = 0; i < n; i++) {
    double ym1 = 0.0;
    double ym2 = 0.0;
    double xm1 = 0.0;
    for (int j = 0; j < n; j++) {
      y1[i * n + j] = a1 * img[i * n + j] + a2 * xm1 + b1 * ym1 + b2 * ym2;
      xm1 = img[i * n + j];
      ym2 = ym1;
      ym1 = y1[i * n + j];
    }
  }
  for (int i = 0; i < n; i++) {
    double yp1 = 0.0;
    double yp2 = 0.0;
    double xp1 = 0.0;
    double xp2 = 0.0;
    for (int j = n - 1; j >= 0; j--) {
      y2[i * n + j] = a1 * xp1 + a2 * xp2 + b1 * yp1 + b2 * yp2;
      xp2 = xp1;
      xp1 = img[i * n + j];
      yp2 = yp1;
      yp1 = y2[i * n + j];
    }
  }
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) out[i * n + j] = y1[i * n + j] + y2[i * n + j];
  double s = 0.0;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) s += out[i * n + j];
  return s;
}
)

WATZ_POLY_KERNEL(doi, 24,
double run(int n) {
  /* doitgen: nr = nq = np = n */
  double* A = alloc(n * n * n * 8);
  double* C4 = alloc(n * n * 8);
  double* sum = alloc(n * 8);
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      C4[i * n + j] = (i * j % n) / (double)n;
      for (int k = 0; k < n; k++)
        A[(i * n + j) * n + k] = ((i * j + k) % n) / (double)n;
    }
  for (int r = 0; r < n; r++)
    for (int q = 0; q < n; q++) {
      for (int p = 0; p < n; p++) {
        sum[p] = 0.0;
        for (int s2 = 0; s2 < n; s2++) sum[p] += A[(r * n + q) * n + s2] * C4[s2 * n + p];
      }
      for (int p = 0; p < n; p++) A[(r * n + q) * n + p] = sum[p];
    }
  double s = 0.0;
  for (int r = 0; r < n; r++)
    for (int q = 0; q < n; q++)
      for (int p = 0; p < n; p++) s += A[(r * n + q) * n + p];
  return s;
}
)

namespace watz::polybench {
std::vector<KernelDef> kernels_part_a() {
  return {def_k2mm(), def_k3mm(), def_adi(), def_atax(), def_bicg(),
          def_cho(),  def_cor(),  def_cov(), def_der(),  def_doi()};
}
}  // namespace watz::polybench
