// PolyBench kernels, part C: lu ludcmp mvt nussinov seidel-2d symm syr2k
// syrk trisolv trmm.
#include "polybench/registry.hpp"

WATZ_POLY_KERNEL(lu, 48,
double run(int n) {
  double* A = alloc(n * n * 8);
  for (int i = 0; i < n; i++) {
    for (int j = 0; j <= i; j++) A[i * n + j] = (-(j % n)) / (double)n + 1.0;
    for (int j = i + 1; j < n; j++) A[i * n + j] = 0.0;
    A[i * n + i] = 1.0;
  }
  double* B = alloc(n * n * 8);
  for (int t = 0; t < n; t++)
    for (int r = 0; r < n; r++) {
      B[t * n + r] = 0.0;
      for (int s2 = 0; s2 < n; s2++) B[t * n + r] += A[t * n + s2] * A[r * n + s2];
    }
  for (int t = 0; t < n; t++)
    for (int r = 0; r < n; r++) A[t * n + r] = B[t * n + r];
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < i; j++) {
      for (int k = 0; k < j; k++) A[i * n + j] -= A[i * n + k] * A[k * n + j];
      A[i * n + j] /= A[j * n + j];
    }
    for (int j = i; j < n; j++)
      for (int k = 0; k < i; k++) A[i * n + j] -= A[i * n + k] * A[k * n + j];
  }
  double s = 0.0;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) s += A[i * n + j];
  return s;
}
)

WATZ_POLY_KERNEL(lud, 48,
double run(int n) {
  /* LU decomposition followed by forward and backward substitution */
  double* A = alloc(n * n * 8);
  double* b = alloc(n * 8);
  double* x = alloc(n * 8);
  double* y = alloc(n * 8);
  double fn = (double)n;
  for (int i = 0; i < n; i++) {
    x[i] = 0.0;
    y[i] = 0.0;
    b[i] = (i + 1) / fn / 2.0 + 4.0;
  }
  for (int i = 0; i < n; i++) {
    for (int j = 0; j <= i; j++) A[i * n + j] = (-(j % n)) / fn + 1.0;
    for (int j = i + 1; j < n; j++) A[i * n + j] = 0.0;
    A[i * n + i] = 1.0;
  }
  double* B2 = alloc(n * n * 8);
  for (int t = 0; t < n; t++)
    for (int r = 0; r < n; r++) {
      B2[t * n + r] = 0.0;
      for (int s2 = 0; s2 < n; s2++) B2[t * n + r] += A[t * n + s2] * A[r * n + s2];
    }
  for (int t = 0; t < n; t++)
    for (int r = 0; r < n; r++) A[t * n + r] = B2[t * n + r];
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < i; j++) {
      double w = A[i * n + j];
      for (int k = 0; k < j; k++) w -= A[i * n + k] * A[k * n + j];
      A[i * n + j] = w / A[j * n + j];
    }
    for (int j = i; j < n; j++) {
      double w = A[i * n + j];
      for (int k = 0; k < i; k++) w -= A[i * n + k] * A[k * n + j];
      A[i * n + j] = w;
    }
  }
  for (int i = 0; i < n; i++) {
    double w = b[i];
    for (int j = 0; j < i; j++) w -= A[i * n + j] * y[j];
    y[i] = w;
  }
  for (int i = n - 1; i >= 0; i--) {
    double w = y[i];
    for (int j = i + 1; j < n; j++) w -= A[i * n + j] * x[j];
    x[i] = w / A[i * n + i];
  }
  double s = 0.0;
  for (int i = 0; i < n; i++) s += x[i];
  return s;
}
)

WATZ_POLY_KERNEL(mvt, 130,
double run(int n) {
  double* A = alloc(n * n * 8);
  double* x1 = alloc(n * 8);
  double* x2 = alloc(n * 8);
  double* y1 = alloc(n * 8);
  double* y2 = alloc(n * 8);
  for (int i = 0; i < n; i++) {
    x1[i] = (i % n) / (double)n;
    x2[i] = ((i + 1) % n) / (double)n;
    y1[i] = ((i + 3) % n) / (double)n;
    y2[i] = ((i + 4) % n) / (double)n;
    for (int j = 0; j < n; j++) A[i * n + j] = (i * j % n) / (double)n;
  }
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) x1[i] = x1[i] + A[i * n + j] * y1[j];
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) x2[i] = x2[i] + A[j * n + i] * y2[j];
  double s = 0.0;
  for (int i = 0; i < n; i++) s += x1[i] + x2[i];
  return s;
}
)

WATZ_POLY_KERNEL(nus, 60,
double run(int n) {
  /* Nussinov RNA folding dynamic program (integer scores) */
  int* seq = alloc(n * 4);
  int* table = alloc(n * n * 4);
  for (int i = 0; i < n; i++) seq[i] = (i + 1) % 4;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) table[i * n + j] = 0;
  for (int i = n - 1; i >= 0; i--) {
    for (int j = i + 1; j < n; j++) {
      if (j - 1 >= 0) {
        if (table[i * n + j] < table[i * n + j - 1]) table[i * n + j] = table[i * n + j - 1];
      }
      if (i + 1 < n) {
        if (table[i * n + j] < table[(i + 1) * n + j]) table[i * n + j] = table[(i + 1) * n + j];
      }
      if (j - 1 >= 0 && i + 1 < n) {
        if (i < j - 1) {
          int match = 0;
          if (seq[i] + seq[j] == 3) match = 1;
          int cand = table[(i + 1) * n + j - 1] + match;
          if (table[i * n + j] < cand) table[i * n + j] = cand;
        } else {
          if (table[i * n + j] < table[(i + 1) * n + j - 1])
            table[i * n + j] = table[(i + 1) * n + j - 1];
        }
      }
      for (int k = i + 1; k < j; k++) {
        int cand = table[i * n + k] + table[(k + 1) * n + j];
        if (table[i * n + j] < cand) table[i * n + j] = cand;
      }
    }
  }
  double s = 0.0;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) s += table[i * n + j];
  return s;
}
)

WATZ_POLY_KERNEL(s2d, 56,
double run(int n) {
  int tsteps = 20;
  double* A = alloc(n * n * 8);
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) A[i * n + j] = ((double)i * (j + 2) + 2) / n;
  for (int t = 0; t <= tsteps - 1; t++)
    for (int i = 1; i <= n - 2; i++)
      for (int j = 1; j <= n - 2; j++)
        A[i * n + j] = (A[(i - 1) * n + j - 1] + A[(i - 1) * n + j] + A[(i - 1) * n + j + 1] + A[i * n + j - 1] + A[i * n + j] + A[i * n + j + 1] + A[(i + 1) * n + j - 1] + A[(i + 1) * n + j] + A[(i + 1) * n + j + 1]) / 9.0;
  double s = 0.0;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) s += A[i * n + j];
  return s;
}
)

WATZ_POLY_KERNEL(sym, 48,
double run(int n) {
  /* symm: C = alpha*A*B + beta*C with A symmetric (lower stored) */
  double* A = alloc(n * n * 8);
  double* B = alloc(n * n * 8);
  double* C = alloc(n * n * 8);
  double alpha = 1.5;
  double beta = 1.2;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      C[i * n + j] = ((i + j) % 100) / (double)n;
      B[i * n + j] = ((n + i - j) % 100) / (double)n;
    }
  for (int i = 0; i < n; i++) {
    for (int j = 0; j <= i; j++) A[i * n + j] = ((i + j) % 100) / (double)n;
    for (int j = i + 1; j < n; j++) A[i * n + j] = -999.0;
  }
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      double temp2 = 0.0;
      for (int k = 0; k < i; k++) {
        C[k * n + j] += alpha * B[i * n + j] * A[i * n + k];
        temp2 += B[k * n + j] * A[i * n + k];
      }
      C[i * n + j] = beta * C[i * n + j] + alpha * B[i * n + j] * A[i * n + i] + alpha * temp2;
    }
  double s = 0.0;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) s += C[i * n + j];
  return s;
}
)

WATZ_POLY_KERNEL(s2k, 44,
double run(int n) {
  /* syr2k: C = alpha*(A*B^T + B*A^T) + beta*C, C symmetric */
  double* A = alloc(n * n * 8);
  double* B = alloc(n * n * 8);
  double* C = alloc(n * n * 8);
  double alpha = 1.5;
  double beta = 1.2;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      A[i * n + j] = ((i * j + 1) % n) / (double)n;
      B[i * n + j] = ((i * j + 2) % n) / (double)n;
      C[i * n + j] = ((i * j + 3) % n) / (double)n;
    }
  for (int i = 0; i < n; i++) {
    for (int j = 0; j <= i; j++) C[i * n + j] *= beta;
    for (int k = 0; k < n; k++)
      for (int j = 0; j <= i; j++)
        C[i * n + j] += A[j * n + k] * alpha * B[i * n + k] + B[j * n + k] * alpha * A[i * n + k];
  }
  double s = 0.0;
  for (int i = 0; i < n; i++)
    for (int j = 0; j <= i; j++) s += C[i * n + j];
  return s;
}
)

WATZ_POLY_KERNEL(syr, 48,
double run(int n) {
  /* syrk: C = alpha*A*A^T + beta*C, C symmetric */
  double* A = alloc(n * n * 8);
  double* C = alloc(n * n * 8);
  double alpha = 1.5;
  double beta = 1.2;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      A[i * n + j] = ((i * j + 1) % n) / (double)n;
      C[i * n + j] = ((i * j + 2) % n) / (double)n;
    }
  for (int i = 0; i < n; i++) {
    for (int j = 0; j <= i; j++) C[i * n + j] *= beta;
    for (int k = 0; k < n; k++)
      for (int j = 0; j <= i; j++) C[i * n + j] += alpha * A[i * n + k] * A[j * n + k];
  }
  double s = 0.0;
  for (int i = 0; i < n; i++)
    for (int j = 0; j <= i; j++) s += C[i * n + j];
  return s;
}
)

WATZ_POLY_KERNEL(tri, 400,
double run(int n) {
  /* trisolv: lower-triangular solve L x = b */
  double* L = alloc(n * n * 8);
  double* x = alloc(n * 8);
  double* b = alloc(n * 8);
  for (int i = 0; i < n; i++) {
    x[i] = -999.0;
    b[i] = (double)i;
    for (int j = 0; j <= i; j++) L[i * n + j] = ((double)(i + n - j) + 1) * 2.0 / n;
  }
  for (int i = 0; i < n; i++) {
    x[i] = b[i];
    for (int j = 0; j < i; j++) x[i] -= L[i * n + j] * x[j];
    x[i] /= L[i * n + i];
  }
  double s = 0.0;
  for (int i = 0; i < n; i++) s += x[i];
  return s;
}
)

WATZ_POLY_KERNEL(trm, 52,
double run(int n) {
  /* trmm: B = alpha * A^T * B, A unit lower triangular */
  double* A = alloc(n * n * 8);
  double* B = alloc(n * n * 8);
  double alpha = 1.5;
  for (int i = 0; i < n; i++) {
    for (int j = 0; j < i; j++) A[i * n + j] = ((i + j) % n) / (double)n;
    A[i * n + i] = 1.0;
    for (int j = 0; j < n; j++) B[i * n + j] = ((n + i - j) % n) / (double)n;
  }
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) {
      for (int k = i + 1; k < n; k++) B[i * n + j] += A[k * n + i] * B[k * n + j];
      B[i * n + j] = alpha * B[i * n + j];
    }
  double s = 0.0;
  for (int i = 0; i < n; i++)
    for (int j = 0; j < n; j++) s += B[i * n + j];
  return s;
}
)

namespace watz::polybench {
std::vector<KernelDef> kernels_part_c() {
  return {def_lu(),  def_lud(), def_mvt(), def_nus(), def_s2d(),
          def_sym(), def_s2k(), def_syr(), def_tri(), def_trm()};
}
}  // namespace watz::polybench
