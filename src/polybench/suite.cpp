#include "polybench/suite.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "polybench/registry.hpp"

namespace watz::polybench {

namespace {
std::vector<std::uint8_t>& arena() {
  static thread_local std::vector<std::uint8_t> buf;
  return buf;
}
thread_local std::size_t arena_off = 0;
}  // namespace

void arena_reset() { arena_off = 0; }

AllocProxy alloc(int bytes) {
  auto& buf = arena();
  const std::size_t aligned = (static_cast<std::size_t>(bytes) + 15) & ~std::size_t{15};
  if (arena_off + aligned > buf.size()) buf.resize(std::max(buf.size() * 2, arena_off + aligned + (1u << 20)));
  void* p = buf.data() + arena_off;
  std::memset(p, 0, aligned);
  arena_off += aligned;
  return AllocProxy{p};
}

std::span<const KernelDef> suite() {
  // Stable presentation order (Fig 5 order == alphabetical by label).
  static const std::vector<KernelDef> sorted = [] {
    std::vector<KernelDef> all;
    for (auto part : {kernels_part_a(), kernels_part_b(), kernels_part_c()})
      all.insert(all.end(), part.begin(), part.end());
    std::sort(all.begin(), all.end(), [](const KernelDef& a, const KernelDef& b) {
      return std::string_view(a.name) < std::string_view(b.name);
    });
    return all;
  }();
  return sorted;
}

const KernelDef* find_kernel(std::string_view name) {
  for (const KernelDef& k : suite())
    if (name == k.name) return &k;
  return nullptr;
}

}  // namespace watz::polybench
