// minisql: an embeddable in-memory SQL database engine.
//
// The SQLite-3.36 substitute for the Fig 6 macro-benchmark (see DESIGN.md).
// Storage: dense row vectors with tombstones; B+-tree indexes (primary and
// secondary) drive equality and range access paths; the planner is a
// one-rule optimiser (use an index when a WHERE/JOIN column has one).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "db/btree.hpp"
#include "db/sql.hpp"

namespace watz::db {

struct ResultSet {
  std::vector<std::string> columns;
  std::vector<std::vector<SqlValue>> rows;

  /// For INSERT/UPDATE/DELETE: affected row count.
  std::size_t affected = 0;
};

struct ExecStats {
  std::uint64_t rows_scanned = 0;   ///< rows touched by table scans
  std::uint64_t index_lookups = 0;  ///< access paths served by a B+-tree
  std::uint64_t statements = 0;
};

class Database {
 public:
  /// Parses and executes one statement.
  Result<ResultSet> execute(std::string_view sql);

  const ExecStats& stats() const noexcept { return stats_; }
  void reset_stats() { stats_ = {}; }

  /// Approximate resident size (used to respect the secure-heap budget when
  /// minisql runs inside the TEE).
  std::size_t approx_bytes() const;

 private:
  struct Table {
    std::vector<ColumnDef> columns;
    std::vector<std::vector<SqlValue>> rows;
    std::vector<bool> live;
    std::map<std::string, BTree> indexes;  // column -> index

    int column_index(const std::string& name) const;
  };

  Result<ResultSet> exec_create_table(const CreateTableStmt& stmt);
  Result<ResultSet> exec_create_index(const CreateIndexStmt& stmt);
  Result<ResultSet> exec_insert(const InsertStmt& stmt);
  Result<ResultSet> exec_select(const SelectStmt& stmt);
  Result<ResultSet> exec_update(const UpdateStmt& stmt);
  Result<ResultSet> exec_delete(const DeleteStmt& stmt);

  /// Row ids of `table` matching all conditions (index-accelerated).
  Result<std::vector<std::uint64_t>> plan_matches(Table& table,
                                                  const std::vector<Condition>& where);

  std::map<std::string, Table> tables_;
  ExecStats stats_;
};

/// Strips an optional "table." qualifier.
std::string unqualify(const std::string& column);

}  // namespace watz::db
