// Speedtest1-shaped workload suite for minisql (Fig 6).
//
// SQLite's speedtest1 numbers its experiments (100, 110, ..., 990); each
// exercises one engine aspect (bulk inserts, indexed point/range queries,
// joins, updates, deletes, schema changes). This module reproduces the
// same *experiment ids and op mixes* against minisql so the Fig 6 harness
// can print the same 31 series the paper plots, split into the paper's
// read-heavy and write-heavy groups.
#pragma once

#include <functional>
#include <span>
#include <string>

#include "db/database.hpp"

namespace watz::db {

struct SpeedtestExperiment {
  int id;                    ///< speedtest1 experiment number
  std::string description;
  bool write_heavy;          ///< paper: writes average 2.23x, reads 2.04x
  /// Runs the experiment body; `scale` plays speedtest1's --size knob
  /// (the paper uses --size 60 to fit OP-TEE's memory cap).
  std::function<void(Database& db, int scale)> run;
};

/// The 31 experiments of Fig 6, ascending by id.
std::span<const SpeedtestExperiment> speedtest_suite();

/// Creates the schema + base data every experiment assumes.
void speedtest_setup(Database& db, int scale);

}  // namespace watz::db
