// minikv: the Wasm-side counterpart of the Fig 6 macro-benchmark.
//
// The paper compiles SQLite itself to Wasm with WASI-SDK; compiling minisql
// (C++) through wcc is out of scope, so the guest runs a storage-engine
// workload of the same *shape* written in the wcc C subset: an open-
// addressing hash index plus an append log, exercised with the same op
// mixes (bulk inserts, point lookups, range scans, updates, deletes) as the
// corresponding speedtest experiments. DESIGN.md documents the substitution.
#pragma once

#include <string>

#include "common/bytes.hpp"

namespace watz::db {

/// Operation kinds the guest exports (one function each):
///   kv_setup(rows)            populate the store
///   kv_inserts(count)         random-key inserts
///   kv_lookups(count)         point queries (hash index)
///   kv_range(reps)            ordered scans (sort + sweep)
///   kv_updates(count)         read-modify-write
///   kv_deletes(count)         tombstone deletes
///   kv_checksum()             state digest (cross-checked in tests)
std::string kv_guest_source();

/// Compiled module (AOT-ready Wasm binary).
Bytes kv_guest_module();

}  // namespace watz::db
