// SQL subset grammar for minisql.
//
// Supported statements (the Speedtest1-shaped workload surface):
//   CREATE TABLE t (col INTEGER|REAL|TEXT, ...)
//   CREATE INDEX idx ON t (col)
//   INSERT INTO t VALUES (lit, ...) [, (lit, ...)]...
//   SELECT */cols/COUNT(*)/SUM(c)/AVG(c) FROM t [JOIN u ON t.a = u.b]
//          [WHERE cond [AND cond]...] [ORDER BY col [DESC]] [LIMIT n]
//   UPDATE t SET col = lit [, ...] [WHERE ...]
//   DELETE FROM t [WHERE ...]
//   BEGIN / COMMIT (accepted no-ops; minisql is in-memory autocommit)
#pragma once

#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/result.hpp"
#include "db/value.hpp"

namespace watz::db {

struct ColumnDef {
  std::string name;
  ColumnType type = ColumnType::Integer;
};

struct CreateTableStmt {
  std::string table;
  std::vector<ColumnDef> columns;
};

struct CreateIndexStmt {
  std::string index;
  std::string table;
  std::string column;
};

struct InsertStmt {
  std::string table;
  std::vector<std::vector<SqlValue>> rows;
};

enum class CmpOp : std::uint8_t { Eq, Ne, Lt, Le, Gt, Ge };

struct Condition {
  std::string column;  // possibly qualified: "t.col"
  CmpOp op = CmpOp::Eq;
  SqlValue value;
};

enum class Aggregate : std::uint8_t { None, Count, Sum, Avg };

struct JoinClause {
  std::string table;
  std::string left_column;   // qualified
  std::string right_column;  // qualified
};

struct SelectStmt {
  bool star = false;
  Aggregate agg = Aggregate::None;
  std::string agg_column;  // for SUM/AVG
  std::vector<std::string> columns;
  std::string table;
  std::optional<JoinClause> join;
  std::vector<Condition> where;
  std::optional<std::string> order_by;
  bool order_desc = false;
  std::optional<std::int64_t> limit;
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, SqlValue>> sets;
  std::vector<Condition> where;
};

struct DeleteStmt {
  std::string table;
  std::vector<Condition> where;
};

struct NoOpStmt {};  // BEGIN / COMMIT

using Statement = std::variant<CreateTableStmt, CreateIndexStmt, InsertStmt, SelectStmt,
                               UpdateStmt, DeleteStmt, NoOpStmt>;

Result<Statement> parse_sql(std::string_view sql);

}  // namespace watz::db
