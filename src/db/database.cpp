#include "db/database.hpp"

#include <algorithm>

namespace watz::db {

std::string unqualify(const std::string& column) {
  const auto dot = column.find('.');
  return dot == std::string::npos ? column : column.substr(dot + 1);
}

int Database::Table::column_index(const std::string& name) const {
  const std::string bare = unqualify(name);
  for (std::size_t i = 0; i < columns.size(); ++i)
    if (columns[i].name == bare) return static_cast<int>(i);
  return -1;
}

Result<ResultSet> Database::execute(std::string_view sql) {
  auto stmt = parse_sql(sql);
  if (!stmt.ok()) return Result<ResultSet>::err(stmt.error());
  ++stats_.statements;
  return std::visit(
      [this](auto&& s) -> Result<ResultSet> {
        using T = std::decay_t<decltype(s)>;
        if constexpr (std::is_same_v<T, CreateTableStmt>) return exec_create_table(s);
        else if constexpr (std::is_same_v<T, CreateIndexStmt>) return exec_create_index(s);
        else if constexpr (std::is_same_v<T, InsertStmt>) return exec_insert(s);
        else if constexpr (std::is_same_v<T, SelectStmt>) return exec_select(s);
        else if constexpr (std::is_same_v<T, UpdateStmt>) return exec_update(s);
        else if constexpr (std::is_same_v<T, DeleteStmt>) return exec_delete(s);
        else return ResultSet{};  // BEGIN/COMMIT
      },
      *stmt);
}

Result<ResultSet> Database::exec_create_table(const CreateTableStmt& stmt) {
  if (tables_.contains(stmt.table))
    return Result<ResultSet>::err("table " + stmt.table + " already exists");
  Table table;
  table.columns = stmt.columns;
  tables_[stmt.table] = std::move(table);
  return ResultSet{};
}

Result<ResultSet> Database::exec_create_index(const CreateIndexStmt& stmt) {
  const auto it = tables_.find(stmt.table);
  if (it == tables_.end()) return Result<ResultSet>::err("no such table " + stmt.table);
  Table& table = it->second;
  const int col = table.column_index(stmt.column);
  if (col < 0) return Result<ResultSet>::err("no such column " + stmt.column);
  if (table.indexes.contains(stmt.column))
    return Result<ResultSet>::err("index on " + stmt.column + " already exists");
  BTree index;
  for (std::size_t row = 0; row < table.rows.size(); ++row)
    if (table.live[row]) index.insert(table.rows[row][col], row);
  table.indexes.emplace(stmt.column, std::move(index));
  return ResultSet{};
}

Result<ResultSet> Database::exec_insert(const InsertStmt& stmt) {
  const auto it = tables_.find(stmt.table);
  if (it == tables_.end()) return Result<ResultSet>::err("no such table " + stmt.table);
  Table& table = it->second;
  ResultSet rs;
  for (const auto& row : stmt.rows) {
    if (row.size() != table.columns.size())
      return Result<ResultSet>::err("column count mismatch in INSERT");
    const std::uint64_t id = table.rows.size();
    table.rows.push_back(row);
    table.live.push_back(true);
    for (auto& [col_name, index] : table.indexes) {
      const int col = table.column_index(col_name);
      index.insert(row[col], id);
    }
    ++rs.affected;
  }
  return rs;
}

namespace {

bool matches(const SqlValue& value, CmpOp op, const SqlValue& rhs) {
  const int c = value.compare(rhs);
  switch (op) {
    case CmpOp::Eq: return c == 0;
    case CmpOp::Ne: return c != 0;
    case CmpOp::Lt: return c < 0;
    case CmpOp::Le: return c <= 0;
    case CmpOp::Gt: return c > 0;
    case CmpOp::Ge: return c >= 0;
  }
  return false;
}

}  // namespace

Result<std::vector<std::uint64_t>> Database::plan_matches(
    Table& table, const std::vector<Condition>& where) {
  // Validate every referenced column up front (a scan over an empty table
  // must still reject unknown columns).
  for (const Condition& cond : where)
    if (table.column_index(cond.column) < 0)
      return Result<std::vector<std::uint64_t>>::err("no such column " + cond.column);

  // Pick the first condition whose column has an index and is sargable.
  int chosen = -1;
  for (std::size_t i = 0; i < where.size(); ++i) {
    if (where[i].op == CmpOp::Ne) continue;
    if (table.indexes.contains(unqualify(where[i].column))) {
      chosen = static_cast<int>(i);
      break;
    }
  }

  std::vector<std::uint64_t> candidates;
  if (chosen >= 0) {
    const Condition& cond = where[chosen];
    BTree& index = table.indexes.at(unqualify(cond.column));
    ++stats_.index_lookups;
    switch (cond.op) {
      case CmpOp::Eq:
        candidates = index.find(cond.value);
        break;
      case CmpOp::Lt:
      case CmpOp::Le:
        candidates = index.range(nullptr, &cond.value);
        if (cond.op == CmpOp::Lt)
          std::erase_if(candidates, [&](std::uint64_t row) {
            const int col = table.column_index(cond.column);
            return table.rows[row][col].compare(cond.value) == 0;
          });
        break;
      case CmpOp::Gt:
      case CmpOp::Ge:
        candidates = index.range(&cond.value, nullptr);
        if (cond.op == CmpOp::Gt)
          std::erase_if(candidates, [&](std::uint64_t row) {
            const int col = table.column_index(cond.column);
            return table.rows[row][col].compare(cond.value) == 0;
          });
        break;
      default:
        break;
    }
  } else {
    candidates.reserve(table.rows.size());
    for (std::uint64_t row = 0; row < table.rows.size(); ++row) candidates.push_back(row);
    stats_.rows_scanned += table.rows.size();
  }

  // Residual filter (also drops tombstones).
  std::vector<std::uint64_t> out;
  for (const std::uint64_t row : candidates) {
    if (!table.live[row]) continue;
    bool ok = true;
    for (const Condition& cond : where) {
      const int col = table.column_index(cond.column);
      if (col < 0) return Result<std::vector<std::uint64_t>>::err("no such column " + cond.column);
      if (!matches(table.rows[row][col], cond.op, cond.value)) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(row);
  }
  return out;
}

Result<ResultSet> Database::exec_select(const SelectStmt& stmt) {
  const auto it = tables_.find(stmt.table);
  if (it == tables_.end()) return Result<ResultSet>::err("no such table " + stmt.table);
  Table& left = it->second;

  // Split conditions between the two sides of a join.
  std::vector<Condition> left_where;
  std::vector<Condition> right_where;
  Table* right = nullptr;
  if (stmt.join) {
    const auto rit = tables_.find(stmt.join->table);
    if (rit == tables_.end())
      return Result<ResultSet>::err("no such table " + stmt.join->table);
    right = &rit->second;
    for (const Condition& cond : stmt.where) {
      if (right->column_index(cond.column) >= 0 && left.column_index(cond.column) < 0)
        right_where.push_back(cond);
      else
        left_where.push_back(cond);
    }
  } else {
    left_where = stmt.where;
  }

  auto left_rows = plan_matches(left, left_where);
  if (!left_rows.ok()) return Result<ResultSet>::err(left_rows.error());

  // Assemble (possibly joined) result tuples as row-id pairs.
  struct Tuple {
    std::uint64_t left;
    std::uint64_t right;  // unused when no join
  };
  std::vector<Tuple> tuples;
  if (stmt.join) {
    const int lcol = left.column_index(stmt.join->left_column);
    const int rcol = right->column_index(stmt.join->right_column);
    if (lcol < 0 || rcol < 0) return Result<ResultSet>::err("bad join columns");
    const std::string rcol_name = unqualify(stmt.join->right_column);
    const bool use_index = right->indexes.contains(rcol_name);
    // Residual right-side filter closure.
    auto right_ok = [&](std::uint64_t row) {
      if (!right->live[row]) return false;
      for (const Condition& cond : right_where) {
        const int col = right->column_index(cond.column);
        if (col < 0 || !matches(right->rows[row][col], cond.op, cond.value)) return false;
      }
      return true;
    };
    if (use_index) {
      BTree& index = right->indexes.at(rcol_name);
      for (const std::uint64_t lrow : *left_rows) {
        ++stats_.index_lookups;
        for (const std::uint64_t rrow : index.find(left.rows[lrow][lcol]))
          if (right_ok(rrow)) tuples.push_back({lrow, rrow});
      }
    } else {
      // Hash-join via ordered multimap on the comparable SqlValue.
      std::multimap<SqlValue, std::uint64_t> build;
      for (std::uint64_t row = 0; row < right->rows.size(); ++row)
        if (right_ok(row)) build.emplace(right->rows[row][rcol], row);
      stats_.rows_scanned += right->rows.size();
      for (const std::uint64_t lrow : *left_rows) {
        auto [lo, hi] = build.equal_range(left.rows[lrow][lcol]);
        for (auto m = lo; m != hi; ++m) tuples.push_back({lrow, m->second});
      }
    }
  } else {
    for (const std::uint64_t lrow : *left_rows) tuples.push_back({lrow, 0});
  }

  // Resolve a (possibly qualified) output column to (side, index).
  auto resolve = [&](const std::string& name) -> std::pair<const Table*, int> {
    const auto dot = name.find('.');
    if (dot != std::string::npos && stmt.join) {
      const std::string qualifier = name.substr(0, dot);
      if (qualifier == stmt.join->table) return {right, right->column_index(name)};
      return {&left, left.column_index(name)};
    }
    const int lcol = left.column_index(name);
    if (lcol >= 0) return {&left, lcol};
    if (right != nullptr) return {right, right->column_index(name)};
    return {&left, -1};
  };

  // Aggregates short-circuit projection.
  if (stmt.agg != Aggregate::None) {
    ResultSet rs;
    if (stmt.agg == Aggregate::Count) {
      rs.columns = {"count"};
      rs.rows = {{SqlValue(static_cast<std::int64_t>(tuples.size()))}};
      return rs;
    }
    const auto [table, col] = resolve(stmt.agg_column);
    if (col < 0) return Result<ResultSet>::err("no such column " + stmt.agg_column);
    double sum = 0;
    for (const Tuple& t : tuples) {
      const std::uint64_t row = table == &left ? t.left : t.right;
      sum += table->rows[row][col].as_real();
    }
    rs.columns = {stmt.agg == Aggregate::Sum ? "sum" : "avg"};
    const double value = stmt.agg == Aggregate::Avg && !tuples.empty()
                             ? sum / static_cast<double>(tuples.size())
                             : sum;
    rs.rows = {{SqlValue(value)}};
    return rs;
  }

  // ORDER BY before projection (the sort key may not be projected).
  if (stmt.order_by) {
    const auto [table, col] = resolve(*stmt.order_by);
    if (col < 0) return Result<ResultSet>::err("no such column " + *stmt.order_by);
    std::stable_sort(tuples.begin(), tuples.end(), [&](const Tuple& a, const Tuple& b) {
      const std::uint64_t ra = table == &left ? a.left : a.right;
      const std::uint64_t rb = table == &left ? b.left : b.right;
      const int c = table->rows[ra][col].compare(table->rows[rb][col]);
      return stmt.order_desc ? c > 0 : c < 0;
    });
  }
  if (stmt.limit && tuples.size() > static_cast<std::size_t>(*stmt.limit))
    tuples.resize(static_cast<std::size_t>(*stmt.limit));

  ResultSet rs;
  std::vector<std::pair<const Table*, int>> projection;
  if (stmt.star) {
    for (std::size_t i = 0; i < left.columns.size(); ++i) {
      projection.emplace_back(&left, static_cast<int>(i));
      rs.columns.push_back(left.columns[i].name);
    }
    if (right != nullptr) {
      for (std::size_t i = 0; i < right->columns.size(); ++i) {
        projection.emplace_back(right, static_cast<int>(i));
        rs.columns.push_back(right->columns[i].name);
      }
    }
  } else {
    for (const std::string& name : stmt.columns) {
      const auto resolved = resolve(name);
      if (resolved.second < 0) return Result<ResultSet>::err("no such column " + name);
      projection.push_back(resolved);
      rs.columns.push_back(unqualify(name));
    }
  }

  rs.rows.reserve(tuples.size());
  for (const Tuple& t : tuples) {
    std::vector<SqlValue> out;
    out.reserve(projection.size());
    for (const auto& [table, col] : projection) {
      const std::uint64_t row = table == &left ? t.left : t.right;
      out.push_back(table->rows[row][col]);
    }
    rs.rows.push_back(std::move(out));
  }
  return rs;
}

Result<ResultSet> Database::exec_update(const UpdateStmt& stmt) {
  const auto it = tables_.find(stmt.table);
  if (it == tables_.end()) return Result<ResultSet>::err("no such table " + stmt.table);
  Table& table = it->second;
  auto rows = plan_matches(table, stmt.where);
  if (!rows.ok()) return Result<ResultSet>::err(rows.error());

  ResultSet rs;
  for (const std::uint64_t row : *rows) {
    for (const auto& [col_name, value] : stmt.sets) {
      const int col = table.column_index(col_name);
      if (col < 0) return Result<ResultSet>::err("no such column " + col_name);
      // Keep affected indexes coherent.
      const auto index = table.indexes.find(unqualify(col_name));
      if (index != table.indexes.end()) {
        index->second.erase(table.rows[row][col], row);
        index->second.insert(value, row);
      }
      table.rows[row][col] = value;
    }
    ++rs.affected;
  }
  return rs;
}

Result<ResultSet> Database::exec_delete(const DeleteStmt& stmt) {
  const auto it = tables_.find(stmt.table);
  if (it == tables_.end()) return Result<ResultSet>::err("no such table " + stmt.table);
  Table& table = it->second;
  auto rows = plan_matches(table, stmt.where);
  if (!rows.ok()) return Result<ResultSet>::err(rows.error());

  ResultSet rs;
  for (const std::uint64_t row : *rows) {
    table.live[row] = false;
    for (auto& [col_name, index] : table.indexes) {
      const int col = table.column_index(col_name);
      index.erase(table.rows[row][col], row);
    }
    ++rs.affected;
  }
  return rs;
}

std::size_t Database::approx_bytes() const {
  std::size_t total = 0;
  for (const auto& [name, table] : tables_) {
    for (const auto& row : table.rows) {
      total += row.size() * sizeof(SqlValue);
      for (const auto& value : row)
        if (value.is_text()) total += value.as_text().size();
    }
    total += table.indexes.size() * table.rows.size() * 48;  // rough B+-tree cost
  }
  return total;
}

}  // namespace watz::db
