#include "db/value.hpp"

namespace watz::db {

namespace {
int type_rank(const SqlValue& v) {
  if (v.is_null()) return 0;
  if (v.is_int() || v.is_real()) return 1;
  return 2;
}
}  // namespace

int SqlValue::compare(const SqlValue& other) const {
  const int ra = type_rank(*this);
  const int rb = type_rank(other);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:
      return 0;  // NULL == NULL for ordering purposes
    case 1: {
      if (is_int() && other.is_int()) {
        const std::int64_t a = as_int();
        const std::int64_t b = other.as_int();
        return a < b ? -1 : a > b ? 1 : 0;
      }
      const double a = as_real();
      const double b = other.as_real();
      return a < b ? -1 : a > b ? 1 : 0;
    }
    default: {
      const int c = as_text().compare(other.as_text());
      return c < 0 ? -1 : c > 0 ? 1 : 0;
    }
  }
}

std::string SqlValue::to_string() const {
  if (is_null()) return "NULL";
  if (is_int()) return std::to_string(as_int());
  if (is_real()) return std::to_string(as_real());
  return as_text();
}

}  // namespace watz::db
