// SQL value model for minisql (the SQLite 3.36 substitute, see DESIGN.md).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.hpp"

namespace watz::db {

enum class ColumnType : std::uint8_t { Integer, Real, Text };

/// A dynamically typed SQL value (NULL, INTEGER, REAL or TEXT).
class SqlValue {
 public:
  SqlValue() = default;  // NULL
  explicit SqlValue(std::int64_t v) : v_(v) {}
  explicit SqlValue(double v) : v_(v) {}
  explicit SqlValue(std::string v) : v_(std::move(v)) {}

  bool is_null() const noexcept { return std::holds_alternative<std::monostate>(v_); }
  bool is_int() const noexcept { return std::holds_alternative<std::int64_t>(v_); }
  bool is_real() const noexcept { return std::holds_alternative<double>(v_); }
  bool is_text() const noexcept { return std::holds_alternative<std::string>(v_); }

  std::int64_t as_int() const { return std::get<std::int64_t>(v_); }
  double as_real() const {
    if (is_int()) return static_cast<double>(as_int());
    return std::get<double>(v_);
  }
  const std::string& as_text() const { return std::get<std::string>(v_); }

  /// SQL three-valued-ish comparison collapsed to an ordering: NULL sorts
  /// first, then numerics (INTEGER and REAL compare numerically), then TEXT.
  /// Returns <0, 0, >0.
  int compare(const SqlValue& other) const;

  bool operator==(const SqlValue& other) const { return compare(other) == 0; }
  bool operator<(const SqlValue& other) const { return compare(other) < 0; }

  std::string to_string() const;

 private:
  std::variant<std::monostate, std::int64_t, double, std::string> v_;
};

}  // namespace watz::db
