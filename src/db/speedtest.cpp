#include "db/speedtest.hpp"

#include <vector>

namespace watz::db {

namespace {

/// Deterministic pseudo-random stream (xorshift), same on every run.
struct Rand {
  std::uint64_t state = 0x9e3779b97f4a7c15ULL;
  std::uint64_t next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
  std::int64_t below(std::int64_t n) { return static_cast<std::int64_t>(next() % n); }
};

std::string text_payload(std::int64_t seed) {
  static const char* words[] = {"alpha", "bravo", "charlie", "delta", "echo",
                                "foxtrot", "golf", "hotel", "india", "juliet"};
  return std::string(words[seed % 10]) + "-" + std::to_string(seed % 997);
}

void exec(Database& db, const std::string& sql) {
  auto r = db.execute(sql);
  r.ok() ? void() : throw Error("speedtest: " + r.error() + " in: " + sql);
}

void insert_batch(Database& db, const std::string& table, int count, Rand& rng,
                  std::int64_t key_space) {
  for (int i = 0; i < count; ++i) {
    const std::int64_t k = rng.below(key_space);
    exec(db, "INSERT INTO " + table + " VALUES (" + std::to_string(k) + ", " +
                 std::to_string(k % 1000) + ", '" + text_payload(k) + "')");
  }
}

}  // namespace

void speedtest_setup(Database& db, int scale) {
  const int base_rows = 50 * scale;
  exec(db, "CREATE TABLE t1 (a INTEGER, b INTEGER, c TEXT)");
  exec(db, "CREATE TABLE t2 (a INTEGER, b INTEGER, c TEXT)");
  exec(db, "CREATE INDEX i2a ON t2 (a)");
  exec(db, "CREATE TABLE t3 (k INTEGER, v TEXT)");
  exec(db, "CREATE INDEX i3k ON t3 (k)");
  Rand rng;
  insert_batch(db, "t1", base_rows, rng, base_rows * 4);
  insert_batch(db, "t2", base_rows, rng, base_rows * 4);
  for (int i = 0; i < base_rows / 2; ++i)
    exec(db, "INSERT INTO t3 VALUES (" + std::to_string(i * 4 % (base_rows * 4)) +
                 ", '" + text_payload(i) + "')");
}

namespace {

using Runner = std::function<void(Database&, int)>;

Runner inserts_plain(int per_scale) {
  return [per_scale](Database& db, int scale) {
    Rand rng{0x1111};
    insert_batch(db, "t1", per_scale * scale, rng, 100000);
  };
}

Runner inserts_indexed(int per_scale) {
  return [per_scale](Database& db, int scale) {
    Rand rng{0x2222};
    insert_batch(db, "t2", per_scale * scale, rng, 100000);
  };
}

Runner point_lookups_indexed(int per_scale) {
  return [per_scale](Database& db, int scale) {
    Rand rng{0x3333};
    for (int i = 0; i < per_scale * scale; ++i)
      exec(db, "SELECT b FROM t2 WHERE a = " + std::to_string(rng.below(200 * scale)));
  };
}

Runner range_unindexed(int per_scale) {
  return [per_scale](Database& db, int scale) {
    Rand rng{0x4444};
    for (int i = 0; i < per_scale; ++i) {
      const std::int64_t lo = rng.below(150 * scale);
      exec(db, "SELECT COUNT(*) FROM t1 WHERE a >= " + std::to_string(lo) +
                   " AND a <= " + std::to_string(lo + 100));
    }
  };
}

Runner range_indexed(int per_scale) {
  return [per_scale](Database& db, int scale) {
    Rand rng{0x5555};
    for (int i = 0; i < per_scale; ++i) {
      const std::int64_t lo = rng.below(150 * scale);
      exec(db, "SELECT COUNT(*) FROM t2 WHERE a >= " + std::to_string(lo) +
                   " AND a <= " + std::to_string(lo + 100));
    }
  };
}

Runner aggregate_sum(int repeats) {
  return [repeats](Database& db, int) {
    for (int i = 0; i < repeats; ++i) exec(db, "SELECT SUM(b) FROM t1");
  };
}

Runner order_by_limit(int repeats) {
  return [repeats](Database& db, int) {
    for (int i = 0; i < repeats; ++i)
      exec(db, "SELECT a, b FROM t1 ORDER BY b DESC LIMIT 50");
  };
}

Runner join_indexed(int per_scale) {
  return [per_scale](Database& db, int scale) {
    Rand rng{0x6666};
    for (int i = 0; i < per_scale; ++i) {
      const std::int64_t lo = rng.below(100 * scale);
      exec(db, "SELECT t1.c, t3.v FROM t1 JOIN t3 ON t1.a = t3.k WHERE t1.a >= " +
                   std::to_string(lo) + " AND t1.a <= " + std::to_string(lo + 50));
    }
  };
}

Runner updates_unindexed(int per_scale) {
  return [per_scale](Database& db, int scale) {
    Rand rng{0x7777};
    for (int i = 0; i < per_scale * scale; ++i) {
      const std::int64_t key = rng.below(200 * scale);
      exec(db, "UPDATE t1 SET b = " + std::to_string(i % 1000) +
                   " WHERE a = " + std::to_string(key));
    }
  };
}

Runner updates_indexed(int per_scale) {
  return [per_scale](Database& db, int scale) {
    Rand rng{0x8888};
    for (int i = 0; i < per_scale * scale; ++i) {
      const std::int64_t key = rng.below(200 * scale);
      exec(db, "UPDATE t2 SET b = " + std::to_string(i % 1000) +
                   " WHERE a = " + std::to_string(key));
    }
  };
}

Runner text_updates(int per_scale) {
  return [per_scale](Database& db, int scale) {
    Rand rng{0x9999};
    for (int i = 0; i < per_scale * scale; ++i) {
      const std::int64_t key = rng.below(200 * scale);
      exec(db, "UPDATE t2 SET c = '" + text_payload(i) +
                   "' WHERE a = " + std::to_string(key));
    }
  };
}

Runner deletes_indexed(int per_scale) {
  return [per_scale](Database& db, int scale) {
    Rand rng{0xaaaa};
    for (int i = 0; i < per_scale * scale; ++i)
      exec(db, "DELETE FROM t2 WHERE a = " + std::to_string(rng.below(400 * scale)));
  };
}

Runner create_index_run() {
  return [](Database& db, int) { exec(db, "CREATE INDEX i1b ON t1 (b)"); };
}

Runner insert_then_scan(int per_scale) {
  return [per_scale](Database& db, int scale) {
    Rand rng{0xbbbb};
    for (int i = 0; i < per_scale * scale / 2; ++i) {
      const std::int64_t k = rng.below(100000);
      exec(db, "INSERT INTO t3 VALUES (" + std::to_string(k) + ", '" +
                   text_payload(k) + "')");
    }
    for (int i = 0; i < per_scale / 4 + 1; ++i)
      exec(db, "SELECT COUNT(*) FROM t3 WHERE k >= 0");
  };
}

}  // namespace

std::span<const SpeedtestExperiment> speedtest_suite() {
  // Ids and read/write split follow Fig 6: the read-heavy group averages
  // ~2.04x (ids 130-145, 160-170, 260, 310, 320, 410, 510, 520), the
  // write-heavy group ~2.23x (ids 100-120, 180-210, 290, 300, 400, 500).
  static const std::vector<SpeedtestExperiment> experiments = {
      {100, "50000 INSERTs into unindexed table", true, inserts_plain(28)},
      {110, "50000 ordered INSERTs", true, inserts_plain(24)},
      {120, "50000 INSERTs into indexed table", true, inserts_indexed(24)},
      {130, "unindexed range scans", false, range_unindexed(16)},
      {140, "indexed range scans", false, range_indexed(80)},
      {142, "indexed range scans with text", false, range_indexed(64)},
      {145, "indexed range scans, narrow", false, range_indexed(48)},
      {150, "CREATE INDEX on populated table", true, create_index_run()},
      {160, "indexed point queries", false, point_lookups_indexed(10)},
      {161, "indexed point queries, repeat", false, point_lookups_indexed(10)},
      {170, "indexed point queries, wide", false, point_lookups_indexed(12)},
      {180, "unindexed UPDATEs", true, updates_unindexed(4)},
      {190, "unindexed DELETE-shaped updates", true, updates_unindexed(5)},
      {210, "indexed UPDATEs", true, updates_indexed(10)},
      {230, "mixed read/update", false, range_indexed(32)},
      {240, "aggregate SUM scans", false, aggregate_sum(24)},
      {250, "aggregate SUM scans, repeat", true, aggregate_sum(30)},
      {260, "ORDER BY ... LIMIT", false, order_by_limit(12)},
      {270, "ORDER BY ... LIMIT, repeat", true, order_by_limit(16)},
      {280, "indexed joins", false, join_indexed(12)},
      {290, "indexed text UPDATEs", true, text_updates(8)},
      {300, "bulk inserts + scans", true, insert_then_scan(20)},
      {310, "indexed joins, narrow", false, join_indexed(10)},
      {320, "indexed joins, wide", false, join_indexed(14)},
      {400, "indexed DELETEs", true, deletes_indexed(9)},
      {410, "point queries after churn", false, point_lookups_indexed(9)},
      {500, "reinsert after deletes", true, inserts_indexed(20)},
      {510, "point queries, final", false, point_lookups_indexed(9)},
      {520, "range scans, final", false, range_indexed(56)},
      {980, "integrity-style full scans", true, aggregate_sum(36)},
      {990, "final churn", true, updates_indexed(9)},
  };
  return experiments;
}

}  // namespace watz::db
