#include "db/kv_guest.hpp"

#include "common/result.hpp"
#include "wcc/compiler.hpp"

namespace watz::db {

std::string kv_guest_source() {
  return R"wcc(
/* minikv: hash-indexed key/value store over linear memory.
   slots: capacity entries of (key, value, state) ints;
   state: 0 empty, 1 live, 2 tombstone. */

int cap = 0;
int* keys = 0;
int* vals = 0;
int* state = 0;
long rng = 88172645463325252;

int rnd(int below) {
  rng = rng ^ (rng << 13);
  rng = rng ^ (rng >> 7);
  rng = rng ^ (rng << 17);
  int r = (int)(rng % below);
  if (r < 0) r += below;
  return r;
}

int hash_slot(int key) {
  int h = key * 2654435761;
  if (h < 0) h = -h;
  return h % cap;
}

void kv_put(int key, int value) {
  int slot = hash_slot(key);
  for (int probe = 0; probe < cap; probe++) {
    int s = state[slot];
    if (s == 0 || s == 2) {
      keys[slot] = key;
      vals[slot] = value;
      state[slot] = 1;
      return;
    }
    if (keys[slot] == key) {
      vals[slot] = value;
      return;
    }
    slot = slot + 1;
    if (slot == cap) slot = 0;
  }
}

int kv_get(int key) {
  int slot = hash_slot(key);
  for (int probe = 0; probe < cap; probe++) {
    int s = state[slot];
    if (s == 0) return -1;
    if (s == 1 && keys[slot] == key) return vals[slot];
    slot = slot + 1;
    if (slot == cap) slot = 0;
  }
  return -1;
}

int kv_delete(int key) {
  int slot = hash_slot(key);
  for (int probe = 0; probe < cap; probe++) {
    int s = state[slot];
    if (s == 0) return 0;
    if (s == 1 && keys[slot] == key) {
      state[slot] = 2;
      return 1;
    }
    slot = slot + 1;
    if (slot == cap) slot = 0;
  }
  return 0;
}

int kv_setup(int rows) {
  cap = rows * 4;
  keys = alloc(cap * 4);
  vals = alloc(cap * 4);
  state = alloc(cap * 4);
  rng = 88172645463325252;
  for (int i = 0; i < rows; i++) kv_put(rnd(rows * 4), i);
  return cap;
}

int kv_inserts(int count) {
  int done = 0;
  for (int i = 0; i < count; i++) {
    kv_put(rnd(cap), i);
    done++;
  }
  return done;
}

int kv_lookups(int count) {
  int hits = 0;
  for (int i = 0; i < count; i++) {
    if (kv_get(rnd(cap)) >= 0) hits++;
  }
  return hits;
}

int kv_range(int reps) {
  /* ordered sweep: copy live keys, insertion-sort a window, sum it */
  int total = 0;
  for (int r = 0; r < reps; r++) {
    int* window = alloc(256 * 4);
    int found = 0;
    int start = rnd(cap);
    for (int i = 0; i < cap; i++) {
      if (found >= 256) break;
      int slot = start + i;
      if (slot >= cap) slot -= cap;
      if (state[slot] == 1) {
        window[found] = keys[slot];
        found++;
      }
    }
    for (int i = 1; i < found; i++) {
      int v = window[i];
      int j = i - 1;
      while (j >= 0 && window[j] > v) {
        window[j + 1] = window[j];
        j--;
      }
      window[j + 1] = v;
    }
    for (int i = 0; i < found; i++) total += window[i] & 1023;
  }
  return total;
}

int kv_updates(int count) {
  int done = 0;
  for (int i = 0; i < count; i++) {
    int key = rnd(cap);
    int old = kv_get(key);
    if (old >= 0) {
      kv_put(key, old + 1);
      done++;
    }
  }
  return done;
}

int kv_deletes(int count) {
  int done = 0;
  for (int i = 0; i < count; i++) done += kv_delete(rnd(cap));
  return done;
}

int kv_checksum() {
  int sum = 0;
  for (int i = 0; i < cap; i++) {
    if (state[i] == 1) sum = sum * 31 + (keys[i] ^ vals[i]);
  }
  return sum;
}
)wcc";
}

Bytes kv_guest_module() {
  wcc::CompileOptions options;
  options.memory_pages = 256;
  auto binary = wcc::compile(kv_guest_source(), options);
  binary.ok() ? void() : throw Error("kv guest: " + binary.error());
  return *binary;
}

}  // namespace watz::db
