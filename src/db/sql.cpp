#include "db/sql.hpp"

#include <algorithm>
#include <cctype>

namespace watz::db {

namespace {

struct SqlToken {
  enum Kind { Word, Number, Float, String, Punct, End } kind = End;
  std::string text;        // uppercased for Word, raw for String
  std::string raw;         // original spelling
  std::int64_t int_value = 0;
  double float_value = 0;
  char punct = 0;
};

class SqlLexer {
 public:
  explicit SqlLexer(std::string_view sql) : sql_(sql) { next(); }

  const SqlToken& cur() const { return cur_; }

  void next() {
    while (pos_ < sql_.size() && std::isspace(static_cast<unsigned char>(sql_[pos_])))
      ++pos_;
    cur_ = SqlToken{};
    if (pos_ >= sql_.size()) return;
    const char c = sql_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = pos_;
      while (pos_ < sql_.size() &&
             (std::isalnum(static_cast<unsigned char>(sql_[pos_])) || sql_[pos_] == '_' ||
              sql_[pos_] == '.'))
        ++pos_;
      cur_.kind = SqlToken::Word;
      cur_.raw = std::string(sql_.substr(start, pos_ - start));
      cur_.text = cur_.raw;
      std::transform(cur_.text.begin(), cur_.text.end(), cur_.text.begin(),
                     [](unsigned char ch) { return std::toupper(ch); });
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && pos_ + 1 < sql_.size() &&
         std::isdigit(static_cast<unsigned char>(sql_[pos_ + 1])))) {
      std::size_t start = pos_;
      if (c == '-') ++pos_;
      bool is_float = false;
      while (pos_ < sql_.size() && (std::isdigit(static_cast<unsigned char>(sql_[pos_])) ||
                                    sql_[pos_] == '.')) {
        if (sql_[pos_] == '.') is_float = true;
        ++pos_;
      }
      const std::string text(sql_.substr(start, pos_ - start));
      if (is_float) {
        cur_.kind = SqlToken::Float;
        cur_.float_value = std::stod(text);
      } else {
        cur_.kind = SqlToken::Number;
        cur_.int_value = std::stoll(text);
      }
      return;
    }
    if (c == '\'') {
      ++pos_;
      std::string out;
      while (pos_ < sql_.size() && sql_[pos_] != '\'') out.push_back(sql_[pos_++]);
      ++pos_;  // closing quote (tolerate EOF)
      cur_.kind = SqlToken::String;
      cur_.text = std::move(out);
      return;
    }
    cur_.kind = SqlToken::Punct;
    cur_.punct = c;
    ++pos_;
    // two-char comparators
    if ((c == '<' || c == '>' || c == '!') && pos_ < sql_.size() && sql_[pos_] == '=') {
      cur_.raw = std::string(1, c) + "=";
      ++pos_;
    } else if (c == '<' && pos_ < sql_.size() && sql_[pos_] == '>') {
      cur_.raw = "<>";
      ++pos_;
    } else {
      cur_.raw = std::string(1, c);
    }
  }

 private:
  std::string_view sql_;
  std::size_t pos_ = 0;
  SqlToken cur_;
};

class Parser {
 public:
  explicit Parser(std::string_view sql) : lex_(sql) {}

  Result<Statement> parse() {
    try {
      return parse_statement();
    } catch (const Error& e) {
      return Result<Statement>::err(e.what());
    }
  }

 private:
  [[noreturn]] void fail(const std::string& why) { throw Error("sql: " + why); }

  bool word(const char* kw) {
    if (lex_.cur().kind == SqlToken::Word && lex_.cur().text == kw) {
      lex_.next();
      return true;
    }
    return false;
  }

  void expect_word(const char* kw) {
    if (!word(kw)) fail(std::string("expected ") + kw);
  }

  bool punct(char c) {
    if (lex_.cur().kind == SqlToken::Punct && lex_.cur().punct == c &&
        lex_.cur().raw.size() == 1) {
      lex_.next();
      return true;
    }
    return false;
  }

  void expect_punct(char c) {
    if (!punct(c)) fail(std::string("expected '") + c + "'");
  }

  std::string identifier() {
    if (lex_.cur().kind != SqlToken::Word) fail("expected identifier");
    std::string name = lex_.cur().raw;
    std::transform(name.begin(), name.end(), name.begin(),
                   [](unsigned char ch) { return std::tolower(ch); });
    lex_.next();
    return name;
  }

  SqlValue literal() {
    const SqlToken& t = lex_.cur();
    switch (t.kind) {
      case SqlToken::Number: {
        const SqlValue v(t.int_value);
        lex_.next();
        return v;
      }
      case SqlToken::Float: {
        const SqlValue v(t.float_value);
        lex_.next();
        return v;
      }
      case SqlToken::String: {
        const SqlValue v(t.text);
        lex_.next();
        return v;
      }
      case SqlToken::Word:
        if (t.text == "NULL") {
          lex_.next();
          return SqlValue{};
        }
        [[fallthrough]];
      default:
        fail("expected literal");
    }
  }

  Statement parse_statement() {
    if (word("CREATE")) {
      if (word("TABLE")) return parse_create_table();
      if (word("INDEX")) return parse_create_index();
      fail("expected TABLE or INDEX after CREATE");
    }
    if (word("INSERT")) return parse_insert();
    if (word("SELECT")) return parse_select();
    if (word("UPDATE")) return parse_update();
    if (word("DELETE")) return parse_delete();
    if (word("BEGIN") || word("COMMIT")) return NoOpStmt{};
    fail("unknown statement");
  }

  Statement parse_create_table() {
    CreateTableStmt stmt;
    stmt.table = identifier();
    expect_punct('(');
    do {
      ColumnDef col;
      col.name = identifier();
      if (word("INTEGER") || word("INT")) col.type = ColumnType::Integer;
      else if (word("REAL") || word("DOUBLE")) col.type = ColumnType::Real;
      else if (word("TEXT") || word("VARCHAR")) col.type = ColumnType::Text;
      else fail("expected column type");
      // tolerated column modifiers
      while (word("PRIMARY") || word("KEY") || word("NOT") || word("UNIQUE")) {
      }
      stmt.columns.push_back(std::move(col));
    } while (punct(','));
    expect_punct(')');
    return stmt;
  }

  Statement parse_create_index() {
    CreateIndexStmt stmt;
    stmt.index = identifier();
    expect_word("ON");
    stmt.table = identifier();
    expect_punct('(');
    stmt.column = identifier();
    expect_punct(')');
    return stmt;
  }

  Statement parse_insert() {
    expect_word("INTO");
    InsertStmt stmt;
    stmt.table = identifier();
    expect_word("VALUES");
    do {
      expect_punct('(');
      std::vector<SqlValue> row;
      do {
        row.push_back(literal());
      } while (punct(','));
      expect_punct(')');
      stmt.rows.push_back(std::move(row));
    } while (punct(','));
    return stmt;
  }

  CmpOp comparator() {
    const SqlToken& t = lex_.cur();
    if (t.kind != SqlToken::Punct) fail("expected comparison operator");
    const std::string op = t.raw;
    lex_.next();
    if (op == "=") return CmpOp::Eq;
    if (op == "!=" || op == "<>") return CmpOp::Ne;
    if (op == "<") return CmpOp::Lt;
    if (op == "<=") return CmpOp::Le;
    if (op == ">") return CmpOp::Gt;
    if (op == ">=") return CmpOp::Ge;
    fail("bad comparison operator " + op);
  }

  std::vector<Condition> parse_where() {
    std::vector<Condition> out;
    if (!word("WHERE")) return out;
    do {
      Condition cond;
      cond.column = identifier();
      cond.op = comparator();
      cond.value = literal();
      out.push_back(std::move(cond));
    } while (word("AND"));
    return out;
  }

  Statement parse_select() {
    SelectStmt stmt;
    if (punct('*')) {
      stmt.star = true;
    } else if (word("COUNT")) {
      expect_punct('(');
      expect_punct('*');
      expect_punct(')');
      stmt.agg = Aggregate::Count;
    } else if (word("SUM") || (lex_.cur().kind == SqlToken::Word && lex_.cur().text == "AVG")) {
      const bool is_avg = word("AVG");
      stmt.agg = is_avg ? Aggregate::Avg : Aggregate::Sum;
      expect_punct('(');
      stmt.agg_column = identifier();
      expect_punct(')');
    } else {
      do {
        stmt.columns.push_back(identifier());
      } while (punct(','));
    }
    expect_word("FROM");
    stmt.table = identifier();
    if (word("JOIN")) {
      JoinClause join;
      join.table = identifier();
      expect_word("ON");
      join.left_column = identifier();
      expect_punct('=');
      join.right_column = identifier();
      stmt.join = std::move(join);
    }
    stmt.where = parse_where();
    if (word("ORDER")) {
      expect_word("BY");
      stmt.order_by = identifier();
      if (word("DESC")) stmt.order_desc = true;
      else (void)word("ASC");
    }
    if (word("LIMIT")) {
      if (lex_.cur().kind != SqlToken::Number) fail("expected LIMIT count");
      stmt.limit = lex_.cur().int_value;
      lex_.next();
    }
    return stmt;
  }

  Statement parse_update() {
    UpdateStmt stmt;
    stmt.table = identifier();
    expect_word("SET");
    do {
      std::string col = identifier();
      expect_punct('=');
      stmt.sets.emplace_back(std::move(col), literal());
    } while (punct(','));
    stmt.where = parse_where();
    return stmt;
  }

  Statement parse_delete() {
    expect_word("FROM");
    DeleteStmt stmt;
    stmt.table = identifier();
    stmt.where = parse_where();
    return stmt;
  }

  SqlLexer lex_;
};

}  // namespace

Result<Statement> parse_sql(std::string_view sql) { return Parser(sql).parse(); }

}  // namespace watz::db
