// In-memory B+-tree used for minisql's primary-key and secondary indexes.
//
// Order-64 nodes; keys are SqlValues, payloads are row ids. Duplicate keys
// are allowed (secondary indexes); erase removes one specific (key, row)
// pair. Leaves are linked for range scans.
#pragma once

#include <algorithm>
#include <memory>
#include <vector>

#include "db/value.hpp"

namespace watz::db {

class BTree {
 public:
  static constexpr std::size_t kOrder = 64;  // max keys per node

  BTree() { root_ = make_leaf(); }

  void insert(const SqlValue& key, std::uint64_t row);

  /// Removes one (key,row) pair; returns false if absent.
  bool erase(const SqlValue& key, std::uint64_t row);

  /// All rows whose key equals `key`.
  std::vector<std::uint64_t> find(const SqlValue& key) const;

  /// All rows with lo <= key <= hi (either bound may be null == open).
  std::vector<std::uint64_t> range(const SqlValue* lo, const SqlValue* hi) const;

  std::size_t size() const noexcept { return size_; }
  /// Tree height (leaf == 1); exposed for tests and the ablation bench.
  std::size_t height() const noexcept;

  /// Validates B+-tree invariants (sortedness, fill, linkage); test hook.
  bool check_invariants() const;

 private:
  struct Node {
    bool leaf = true;
    std::vector<SqlValue> keys;
    std::vector<std::uint64_t> rows;               // leaf payloads
    std::vector<std::unique_ptr<Node>> children;   // internal
    Node* next = nullptr;                          // leaf chain
  };

  static std::unique_ptr<Node> make_leaf() {
    auto n = std::make_unique<Node>();
    n->leaf = true;
    return n;
  }

  /// Returns the separator key + new right sibling when `node` split.
  struct SplitResult {
    SqlValue separator;
    std::unique_ptr<Node> right;
  };

  std::unique_ptr<SplitResult> insert_into(Node& node, const SqlValue& key,
                                           std::uint64_t row);

  const Node* find_leaf(const SqlValue& key) const;

  bool check_node(const Node& node, const SqlValue* lo, const SqlValue* hi) const;

  std::unique_ptr<Node> root_;
  std::size_t size_ = 0;
};

// ---------------------------------------------------------------------------
// implementation (header-only: template-free but small and hot)

inline std::unique_ptr<BTree::SplitResult> BTree::insert_into(Node& node,
                                                              const SqlValue& key,
                                                              std::uint64_t row) {
  if (node.leaf) {
    // Insert sorted by (key, row) so erase is deterministic.
    std::size_t i = 0;
    while (i < node.keys.size() &&
           (node.keys[i].compare(key) < 0 ||
            (node.keys[i].compare(key) == 0 && node.rows[i] < row)))
      ++i;
    node.keys.insert(node.keys.begin() + i, key);
    node.rows.insert(node.rows.begin() + i, row);
    if (node.keys.size() <= kOrder) return nullptr;
    // Split.
    auto right = make_leaf();
    const std::size_t half = node.keys.size() / 2;
    right->keys.assign(node.keys.begin() + half, node.keys.end());
    right->rows.assign(node.rows.begin() + half, node.rows.end());
    node.keys.resize(half);
    node.rows.resize(half);
    right->next = node.next;
    node.next = right.get();
    auto result = std::make_unique<SplitResult>();
    result->separator = right->keys.front();
    result->right = std::move(right);
    return result;
  }

  // Internal node: find child.
  std::size_t i = 0;
  while (i < node.keys.size() && node.keys[i].compare(key) <= 0) ++i;
  auto split = insert_into(*node.children[i], key, row);
  if (!split) return nullptr;
  node.keys.insert(node.keys.begin() + i, split->separator);
  node.children.insert(node.children.begin() + i + 1, std::move(split->right));
  if (node.keys.size() <= kOrder) return nullptr;
  // Split internal node.
  auto right = std::make_unique<Node>();
  right->leaf = false;
  const std::size_t mid = node.keys.size() / 2;
  auto result = std::make_unique<SplitResult>();
  result->separator = node.keys[mid];
  right->keys.assign(node.keys.begin() + mid + 1, node.keys.end());
  for (std::size_t c = mid + 1; c < node.children.size(); ++c)
    right->children.push_back(std::move(node.children[c]));
  node.keys.resize(mid);
  node.children.resize(mid + 1);
  result->right = std::move(right);
  return result;
}

inline void BTree::insert(const SqlValue& key, std::uint64_t row) {
  auto split = insert_into(*root_, key, row);
  if (split) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->keys.push_back(split->separator);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split->right));
    root_ = std::move(new_root);
  }
  ++size_;
}

inline const BTree::Node* BTree::find_leaf(const SqlValue& key) const {
  // Left-biased on equal keys: duplicates may live in leaves left of an
  // equal separator, and find/erase/range scan forward through the chain.
  const Node* node = root_.get();
  while (!node->leaf) {
    std::size_t i = 0;
    while (i < node->keys.size() && node->keys[i].compare(key) < 0) ++i;
    node = node->children[i].get();
  }
  return node;
}

inline std::vector<std::uint64_t> BTree::find(const SqlValue& key) const {
  std::vector<std::uint64_t> out;
  const Node* leaf = find_leaf(key);
  while (leaf != nullptr) {
    bool past = false;
    for (std::size_t i = 0; i < leaf->keys.size(); ++i) {
      const int c = leaf->keys[i].compare(key);
      if (c == 0) out.push_back(leaf->rows[i]);
      if (c > 0) {
        past = true;
        break;
      }
    }
    if (past) break;
    leaf = leaf->next;
  }
  return out;
}

inline std::vector<std::uint64_t> BTree::range(const SqlValue* lo,
                                               const SqlValue* hi) const {
  std::vector<std::uint64_t> out;
  const Node* leaf = lo != nullptr ? find_leaf(*lo) : [this] {
    const Node* n = root_.get();
    while (!n->leaf) n = n->children.front().get();
    return n;
  }();
  while (leaf != nullptr) {
    for (std::size_t i = 0; i < leaf->keys.size(); ++i) {
      if (lo != nullptr && leaf->keys[i].compare(*lo) < 0) continue;
      if (hi != nullptr && leaf->keys[i].compare(*hi) > 0) return out;
      out.push_back(leaf->rows[i]);
    }
    leaf = leaf->next;
  }
  return out;
}

inline bool BTree::erase(const SqlValue& key, std::uint64_t row) {
  // Lazy deletion from the leaf only: minisql workloads delete far less
  // than they insert, and lookups tolerate under-full leaves.
  Node* node = root_.get();
  while (!node->leaf) {
    std::size_t i = 0;
    while (i < node->keys.size() && node->keys[i].compare(key) < 0) ++i;
    node = node->children[i].get();
  }
  while (node != nullptr) {
    bool past = false;
    for (std::size_t i = 0; i < node->keys.size(); ++i) {
      const int c = node->keys[i].compare(key);
      if (c == 0 && node->rows[i] == row) {
        node->keys.erase(node->keys.begin() + i);
        node->rows.erase(node->rows.begin() + i);
        --size_;
        return true;
      }
      if (c > 0) {
        past = true;
        break;
      }
    }
    if (past) break;
    node = node->next;
  }
  return false;
}

inline std::size_t BTree::height() const noexcept {
  std::size_t h = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    ++h;
    node = node->children.front().get();
  }
  return h;
}

inline bool BTree::check_node(const Node& node, const SqlValue* lo,
                              const SqlValue* hi) const {
  for (std::size_t i = 1; i < node.keys.size(); ++i)
    if (node.keys[i].compare(node.keys[i - 1]) < 0) return false;
  for (const SqlValue& k : node.keys) {
    if (lo != nullptr && k.compare(*lo) < 0) return false;
    if (hi != nullptr && k.compare(*hi) > 0) return false;
  }
  if (node.leaf) return node.keys.size() == node.rows.size();
  if (node.children.size() != node.keys.size() + 1) return false;
  for (std::size_t i = 0; i < node.children.size(); ++i) {
    const SqlValue* clo = i == 0 ? lo : &node.keys[i - 1];
    const SqlValue* chi = i == node.keys.size() ? hi : &node.keys[i];
    if (!check_node(*node.children[i], clo, chi)) return false;
  }
  return true;
}

inline bool BTree::check_invariants() const {
  return check_node(*root_, nullptr, nullptr);
}

}  // namespace watz::db
