// Sharded verifier front-end: N independent ra::Verifier instances, each
// behind its own mutex with its own RNG stream and ephemeral-keypair
// rotation state, so fleet-wide attach storms scale with cores instead of
// serialising every handshake on one verifier lock.
//
// Sessions are routed by DEPTH, not by hash: a new handshake (msg0, plain
// or batch lane) is placed on the shard with the fewest open handshakes at
// that instant, recorded in a routing table so the session's later frames
// (msg2) land on the same shard — the protocol is stateful per session.
// Hash routing (splitmix64 of the session id) survives only as the
// fallback for frames whose session was never depth-routed (and as the
// `depth_routing = false` escape hatch). Depth routing is what keeps an
// attach storm's lanes level across shards even when the id structure is
// skewed or a shard is slowed by a long appraisal.
//
// Lock discipline: handling any frame — batched or not — locks exactly ONE
// shard at a time. The batch handler walks its lanes sequentially,
// releasing each shard before touching the next, so no ordering between
// shard mutexes ever exists and the shard tier stays a leaf of the
// gateway's lock hierarchy (DESIGN.md §2).
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "crypto/fortuna.hpp"
#include "ra/verifier.hpp"

namespace watz::ra {

struct ShardedVerifierConfig {
  /// Number of independent verifier shards (>= 1).
  std::size_t shards = 4;
  /// Applied to every shard; includes the per-shard ephemeral keypair
  /// rotation window (VerifierPolicy::session_key_reuse).
  VerifierPolicy policy{};
  /// Modeled wall-clock cost of one msg2 appraisal, charged (as a sleep)
  /// while the owning shard's lock is held. A production verifier spends
  /// real time per appraisal (policy engine, HSM signature, audit log);
  /// the simulation charges it the way hw::LatencyConfig::device_side
  /// charges remote-board latency — as a sleep — so shard count converts
  /// into overlap on any host. 0 (the default) disables the charge; tests
  /// keep it off.
  std::uint64_t appraisal_latency_ns = 0;
  /// Route new handshakes to the shard with the fewest open handshakes
  /// (recorded in a sticky per-session routing table) instead of by
  /// splitmix64(session id). false restores pure hash routing.
  bool depth_routing = true;
};

struct VerifierShardStats {
  std::uint64_t msg0s = 0;       ///< handshakes started on this shard
  std::uint64_t handshakes = 0;  ///< appraisals passed (msg3 issued)
  /// Frames this shard rejected (appraisal failures and per-lane protocol
  /// errors). Whole-batch FRAMING rejections never reach a shard — see
  /// ShardedVerifier::batch_framing_rejects().
  std::uint64_t rejects = 0;
  std::uint64_t key_rotations = 0;
  std::size_t active_sessions = 0;
};

/// One shard: a Verifier serialised by its own mutex, fed by its own
/// Fortuna stream (no RNG contention between shards).
class VerifierShard {
 public:
  VerifierShard(const crypto::KeyPair& identity, ByteView seed,
                const VerifierPolicy& policy);
  VerifierShard(const VerifierShard&) = delete;
  VerifierShard& operator=(const VerifierShard&) = delete;

  /// Handles one protocol frame for `session_id` under this shard's lock,
  /// charging `appraisal_latency_ns` on the appraisal message (msg2).
  Result<Bytes> handle(std::uint64_t session_id, ByteView message,
                       std::uint64_t appraisal_latency_ns);
  void end_session(std::uint64_t session_id);

  void endorse_device(const crypto::EcPoint& attestation_key);
  void add_reference_measurement(const crypto::Sha256Digest& claim);
  void set_secret_provider(SecretProvider provider);
  void set_policy(VerifierPolicy policy);

  VerifierShardStats stats() const;

 private:
  mutable std::mutex mu_;
  crypto::Fortuna rng_;  // declared before verifier_, which holds a reference
  Verifier verifier_;
  std::uint64_t msg0s_ = 0;
  std::uint64_t rejects_ = 0;
};

class ShardedVerifier {
 public:
  ShardedVerifier(crypto::KeyPair identity, ByteView seed,
                  ShardedVerifierConfig config);

  const crypto::EcPoint& identity_key() const noexcept { return identity_.pub; }
  std::size_t shard_count() const noexcept { return shards_.size(); }
  /// The HASH shard of a session id (the routing fallback; with depth
  /// routing on, live sessions may be placed elsewhere — see
  /// shard_depths()).
  std::size_t shard_for(std::uint64_t session_id) const noexcept;
  /// Open (routed, unfinished) handshakes per shard — what depth routing
  /// levels. Exposed for tests and the gateway's STATS.
  std::vector<std::uint32_t> shard_depths() const;
  /// The virtual session id of a batch lane (see ra/messages.hpp framing).
  /// Bit 63 tags the lane id space so no lane can ever alias a plain
  /// connection's session id (fabric conn ids are a small sequential
  /// counter; without the tag, conn C == (D << 20) | (lane + 1) would let
  /// a late plain handshake clobber an in-flight batch lane's state).
  static std::uint64_t lane_session_id(std::uint64_t conn_id, std::uint32_t lane) {
    return (1ull << 63) | (conn_id << 20) | (static_cast<std::uint64_t>(lane) + 1);
  }

  // Endorsements, reference values, the secret provider and the policy are
  // broadcast to every shard (one shard lock at a time).
  void endorse_device(const crypto::EcPoint& attestation_key);
  void add_reference_measurement(const crypto::Sha256Digest& claim);
  void set_secret_provider(const SecretProvider& provider);
  void set_policy(const VerifierPolicy& policy);

  /// Handles one RA-endpoint message: plain protocol frames route to the
  /// connection's shard; a batch frame fans its lanes out across shards and
  /// returns a batch reply with per-lane status (a lane failing appraisal
  /// fails alone — the batch partially succeeds). A malformed batch frame
  /// is a protocol error for the whole exchange.
  Result<Bytes> handle(std::uint64_t conn_id, ByteView message);

  /// Drops the connection's session state: the plain session plus every
  /// batch lane opened over it.
  void end_session(std::uint64_t conn_id);

  std::vector<VerifierShardStats> stats() const;
  /// Sum of per-shard appraisals passed (reconciles against the gateway's
  /// handshakes_run counter in the storm tests).
  std::uint64_t handshakes_completed() const;
  std::size_t active_sessions() const;
  /// Batch frames rejected wholesale for malformed framing (count/payload
  /// mismatch, duplicate lanes, truncation) before touching any shard.
  std::uint64_t batch_framing_rejects() const noexcept {
    return batch_framing_rejects_.load(std::memory_order_relaxed);
  }

 private:
  Result<Bytes> handle_batch(std::uint64_t conn_id, ByteView message);

  /// Routes one protocol frame's session: a sticky table hit wins; a msg0
  /// opens a new route on the least-deep shard (depth routing) or the hash
  /// shard; anything else falls back to the hash. `opening` marks msg0s.
  std::size_t route_session(std::uint64_t session_id, bool opening);
  /// Marks a routed handshake finished (msg2 answered, either way): its
  /// shard's depth drops but the sticky mapping survives until the
  /// connection sweep, so late frames still find the right shard.
  void finish_session(std::uint64_t session_id);
  /// Drops the sticky mapping (connection sweep) and returns the shard the
  /// session actually lived on (hash shard when never routed).
  std::size_t erase_route(std::uint64_t session_id);

  crypto::KeyPair identity_;
  ShardedVerifierConfig config_;
  std::vector<std::unique_ptr<VerifierShard>> shards_;

  /// Batch lanes opened per connection, so end_session can sweep the
  /// virtual sessions a dropped device left behind mid-handshake.
  std::mutex lanes_mu_;
  std::map<std::uint64_t, std::set<std::uint32_t>> lanes_;
  std::atomic<std::uint64_t> batch_framing_rejects_{0};

  /// Depth-routing state: session → placed shard (+ whether the handshake
  /// is still open) and the per-shard open-handshake counts the placement
  /// argmin reads. Leaf lock, never held across a shard handle().
  struct Route {
    std::size_t shard = 0;
    bool open = false;
  };
  mutable std::mutex routes_mu_;
  std::map<std::uint64_t, Route> routes_;
  std::vector<std::uint32_t> depths_;
};

}  // namespace watz::ra
