// Attester-side state machine of the WaTZ protocol (SS IV, messages a-d).
//
// The attester (i) generates fresh ECDHE session keys (freshness + forward
// secrecy), (ii) authenticates the verifier against the identity hardcoded
// in the Wasm application (mutual entity authentication — the hardcoded key
// is covered by the code measurement, so tampering with it changes the
// claim), and (iii) has the attestation service issue evidence bound to the
// session anchor.
#pragma once

#include <functional>

#include "crypto/kdf.hpp"
#include "crypto/rng.hpp"
#include "ra/messages.hpp"

namespace watz::ra {

/// Callback into the attestation service: anchor + claim -> signed evidence.
using QuoteFn = std::function<attestation::Evidence(
    const std::array<std::uint8_t, 32>& anchor)>;

class AttesterSession {
 public:
  /// `expected_verifier` is the long-term verifier key baked into the
  /// application (its bytes are part of the code measurement).
  AttesterSession(crypto::Rng& rng, crypto::EcPoint expected_verifier);

  /// Step (a): produce msg0 with the fresh public session key.
  Bytes make_msg0();

  /// Step (c), first half: consume msg1, authenticate the verifier and
  /// derive the session keys + anchor. After this, anchor() is valid and a
  /// quote can be collected out-of-band (the WASI-RA handshake/send split).
  Status process_msg1(ByteView msg1_bytes);

  /// Step (c), second half: wrap externally collected evidence into msg2.
  Result<Bytes> make_msg2(const attestation::Evidence& evidence);

  /// Convenience: process_msg1 + make_msg2(quote(anchor())).
  Result<Bytes> handle_msg1(ByteView msg1_bytes, const QuoteFn& quote);

  /// Step (d receive): consume msg3 and return the decrypted secret blob.
  Result<Bytes> handle_msg3(ByteView msg3_bytes);

  /// The transport anchor (valid after handle_msg1).
  const std::array<std::uint8_t, 32>& anchor() const noexcept { return anchor_; }

 private:
  crypto::KeyPair session_key_;               // <a, Ga>
  crypto::EcPoint expected_verifier_;
  crypto::SessionKeys keys_{};                // Km, Ke
  std::array<std::uint8_t, 32> anchor_{};
  bool keys_ready_ = false;
  bool msg0_sent_ = false;
};

}  // namespace watz::ra
