#include "ra/verifier.hpp"

namespace watz::ra {

void Verifier::endorse_device(const crypto::EcPoint& attestation_key) {
  endorsed_.push_back(attestation_key);
}

void Verifier::add_reference_measurement(const crypto::Sha256Digest& claim) {
  references_.push_back(claim);
}

void Verifier::end_session(std::uint64_t conn_id) { sessions_.erase(conn_id); }

Result<Bytes> Verifier::handle(std::uint64_t conn_id, ByteView message) {
  if (message.empty()) return Result<Bytes>::err("ra verifier: empty message");
  switch (static_cast<MsgTag>(message[0])) {
    case MsgTag::Msg0:
      return handle_msg0(conn_id, message);
    case MsgTag::Msg2:
      return handle_msg2(conn_id, message);
    default:
      return Result<Bytes>::err("ra verifier: unexpected message tag");
  }
}

crypto::KeyPair Verifier::next_session_key() {
  // Rotation policy: a reuse window > 1 serves several handshakes from one
  // ephemeral <v, Gv> (anchor freshness still comes from the attester's Ga);
  // window 1 degenerates to a fresh keypair per handshake.
  if (policy_.session_key_reuse <= 1) {
    ++key_rotations_;
    return crypto::ecdsa_keygen(rng_);
  }
  if (cached_key_uses_ == 0 || cached_key_uses_ >= policy_.session_key_reuse) {
    cached_session_key_ = crypto::ecdsa_keygen(rng_);
    cached_key_uses_ = 0;
    ++key_rotations_;
  }
  ++cached_key_uses_;
  return cached_session_key_;
}

Result<Bytes> Verifier::handle_msg0(std::uint64_t conn_id, ByteView message) {
  auto msg0 = Msg0::decode(message);
  if (!msg0.ok()) return Result<Bytes>::err(msg0.error());

  Session session;
  session.session_key = next_session_key();  // ephemeral <v, Gv>
  session.ga = msg0->ga;

  auto shared = crypto::ecdh_shared_x(session.session_key.priv, msg0->ga);
  if (!shared.ok()) return Result<Bytes>::err("ra verifier: " + shared.error());
  session.keys = crypto::derive_session_keys(*shared);

  Msg1 msg1;
  msg1.gv = session.session_key.pub;
  msg1.identity = identity_.pub;
  const auto payload = msg1_signed_payload(msg1.gv, msg0->ga);
  msg1.signature = crypto::ecdsa_sign(identity_.priv, crypto::sha256(payload)).encode();
  msg1.mac = crypto::aes_cmac(session.keys.km, msg1.content());

  sessions_[conn_id] = std::move(session);
  return msg1.encode();
}

Result<Bytes> Verifier::handle_msg2(std::uint64_t conn_id, ByteView message) {
  const auto it = sessions_.find(conn_id);
  if (it == sessions_.end())
    return Result<Bytes>::err("ra verifier: msg2 without handshake");
  Session& session = it->second;

  auto fail = [&](const std::string& why) {
    sessions_.erase(it);
    return Result<Bytes>::err("ra verifier: " + why);
  };

  auto msg2 = Msg2::decode(message);
  if (!msg2.ok()) return fail(msg2.error());

  // MAC under Km proves the sender completed the same key agreement.
  const auto expected_mac = crypto::aes_cmac(session.keys.km, msg2->content());
  if (!ct_equal(expected_mac, msg2->mac)) return fail("msg2 MAC mismatch");

  // Ga must match msg0 (masquerading/replay detection)...
  if (!(msg2->ga == session.ga)) return fail("msg2 Ga does not match msg0");

  // ...and the evidence anchor must bind to this exact session.
  const auto expected_anchor = session_anchor(session.ga, session.session_key.pub);
  if (!ct_equal(expected_anchor, msg2->evidence.anchor))
    return fail("evidence anchor does not match session (replay?)");

  // Version policy: exclude outdated runtimes.
  if (msg2->evidence.version < policy_.min_watz_version)
    return fail("evidence from outdated WaTZ version rejected");

  // Endorsement: is this a device we know?
  bool endorsed = false;
  for (const auto& key : endorsed_)
    if (key == msg2->evidence.attestation_key) endorsed = true;
  if (!endorsed) return fail("attestation key is not endorsed (unknown device)");

  // Hardware genuineness: the attestation signature must verify.
  if (!attestation::verify_evidence_signature(msg2->evidence))
    return fail("evidence signature invalid");

  // Software appraisal: the code measurement must match a reference value.
  bool trusted_code = false;
  for (const auto& ref : references_)
    if (ct_equal(ref, msg2->evidence.claim)) trusted_code = true;
  if (!trusted_code) return fail("code measurement does not match any reference value");

  if (!provider_) return fail("no secret provider configured");
  const Bytes secret = provider_(msg2->evidence.claim);

  Msg3 msg3;
  rng_.fill(msg3.iv);
  const crypto::Aes cipher(session.keys.ke);
  msg3.ciphertext_and_tag = crypto::gcm_seal(cipher, msg3.iv, {}, secret);
  session.handshake_done = true;
  ++handshakes_completed_;
  return msg3.encode();
}

}  // namespace watz::ra
