#include "ra/verifier_shard.hpp"

#include <chrono>
#include <future>
#include <thread>

#include "crypto/sha256.hpp"

namespace watz::ra {

namespace {

/// splitmix64 finaliser: spreads the structured session ids (sequential
/// fabric connections, (conn << 20) | lane virtual ids) uniformly before
/// the modulo picks a shard.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

Bytes shard_seed(ByteView seed, std::size_t index) {
  crypto::Sha256 hasher;
  hasher.update(seed);
  hasher.update(to_bytes("watz-verifier-shard-" + std::to_string(index)));
  const crypto::Sha256Digest digest = hasher.finish();
  return Bytes(digest.begin(), digest.end());
}

}  // namespace

// -- VerifierShard -----------------------------------------------------------

VerifierShard::VerifierShard(const crypto::KeyPair& identity, ByteView seed,
                             const VerifierPolicy& policy)
    : rng_(seed), verifier_(identity, rng_) {
  verifier_.set_policy(policy);
}

Result<Bytes> VerifierShard::handle(std::uint64_t session_id, ByteView message,
                                    std::uint64_t appraisal_latency_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool is_msg0 =
      !message.empty() && message[0] == static_cast<std::uint8_t>(MsgTag::Msg0);
  const bool is_msg2 =
      !message.empty() && message[0] == static_cast<std::uint8_t>(MsgTag::Msg2);
  // The modeled appraisal cost is charged under the shard lock on purpose:
  // it is THIS serialisation that sharding exists to break up.
  if (is_msg2 && appraisal_latency_ns)
    std::this_thread::sleep_for(std::chrono::nanoseconds(appraisal_latency_ns));
  auto reply = verifier_.handle(session_id, message);
  if (is_msg0) ++msg0s_;
  if (!reply.ok()) ++rejects_;
  // A completed handshake (msg2 -> msg3) has no further messages on this
  // session; dropping the state here keeps storm-long shards from
  // accumulating finished sessions until connection close.
  if (is_msg2 && reply.ok()) verifier_.end_session(session_id);
  return reply;
}

void VerifierShard::end_session(std::uint64_t session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  verifier_.end_session(session_id);
}

void VerifierShard::endorse_device(const crypto::EcPoint& attestation_key) {
  std::lock_guard<std::mutex> lock(mu_);
  verifier_.endorse_device(attestation_key);
}

void VerifierShard::add_reference_measurement(const crypto::Sha256Digest& claim) {
  std::lock_guard<std::mutex> lock(mu_);
  verifier_.add_reference_measurement(claim);
}

void VerifierShard::set_secret_provider(SecretProvider provider) {
  std::lock_guard<std::mutex> lock(mu_);
  verifier_.set_secret_provider(std::move(provider));
}

void VerifierShard::set_policy(VerifierPolicy policy) {
  std::lock_guard<std::mutex> lock(mu_);
  verifier_.set_policy(policy);
}

VerifierShardStats VerifierShard::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  VerifierShardStats stats;
  stats.msg0s = msg0s_;
  stats.handshakes = verifier_.handshakes_completed();
  stats.rejects = rejects_;
  stats.key_rotations = verifier_.key_rotations();
  stats.active_sessions = verifier_.active_sessions();
  return stats;
}

// -- ShardedVerifier ---------------------------------------------------------

ShardedVerifier::ShardedVerifier(crypto::KeyPair identity, ByteView seed,
                                 ShardedVerifierConfig config)
    : identity_(std::move(identity)), config_(config) {
  if (config_.shards == 0) config_.shards = 1;
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i)
    shards_.push_back(std::make_unique<VerifierShard>(identity_, shard_seed(seed, i),
                                                      config_.policy));
}

std::size_t ShardedVerifier::shard_for(std::uint64_t session_id) const noexcept {
  return static_cast<std::size_t>(mix(session_id) % shards_.size());
}

void ShardedVerifier::endorse_device(const crypto::EcPoint& attestation_key) {
  for (auto& shard : shards_) shard->endorse_device(attestation_key);
}

void ShardedVerifier::add_reference_measurement(const crypto::Sha256Digest& claim) {
  for (auto& shard : shards_) shard->add_reference_measurement(claim);
}

void ShardedVerifier::set_secret_provider(const SecretProvider& provider) {
  for (auto& shard : shards_) shard->set_secret_provider(provider);
}

void ShardedVerifier::set_policy(const VerifierPolicy& policy) {
  config_.policy = policy;
  for (auto& shard : shards_) shard->set_policy(policy);
}

Result<Bytes> ShardedVerifier::handle(std::uint64_t conn_id, ByteView message) {
  if (is_batch_frame(message)) return handle_batch(conn_id, message);
  return shards_[shard_for(conn_id)]->handle(conn_id, message,
                                             config_.appraisal_latency_ns);
}

Result<Bytes> ShardedVerifier::handle_batch(std::uint64_t conn_id, ByteView message) {
  // Framing errors fail the whole exchange — a count/payload mismatch must
  // never half-parse into live sessions. Per-lane *protocol* failures, by
  // contrast, travel in the reply item status: the batch partially succeeds.
  auto items = decode_batch(message);
  if (!items.ok()) {
    batch_framing_rejects_.fetch_add(1, std::memory_order_relaxed);
    return Result<Bytes>::err("ra verifier: " + items.error());
  }

  {
    std::lock_guard<std::mutex> lock(lanes_mu_);
    std::set<std::uint32_t>& open = lanes_[conn_id];
    for (const BatchItem& item : *items) open.insert(item.lane);
  }

  // Lanes grouped by shard, groups appraised CONCURRENTLY (one task per
  // shard group, the caller's thread taking the first group): each task
  // serialises on exactly one shard and locks it one handle() at a time —
  // no thread ever holds two shard mutexes, so the shard tier needs no
  // ordering. With one shard this degenerates to the plain sequential
  // walk on the caller's thread.
  struct Pending {
    std::size_t index = 0;  // reply slot (lane order is preserved)
    std::uint64_t id = 0;
    const BatchItem* item = nullptr;
  };
  std::vector<std::vector<Pending>> groups(shards_.size());
  for (std::size_t i = 0; i < items->size(); ++i) {
    const BatchItem& item = (*items)[i];
    const std::uint64_t id = lane_session_id(conn_id, item.lane);
    groups[shard_for(id)].push_back(Pending{i, id, &item});
  }

  std::vector<BatchReplyItem> replies(items->size());
  const auto run_group = [&](const std::vector<Pending>& group) {
    for (const Pending& pending : group) {
      auto reply = shards_[shard_for(pending.id)]->handle(
          pending.id, pending.item->frame, config_.appraisal_latency_ns);
      BatchReplyItem out;
      out.lane = pending.item->lane;
      if (reply.ok()) {
        out.ok = true;
        out.payload = std::move(*reply);
      } else {
        out.error = reply.error();
      }
      replies[pending.index] = std::move(out);
    }
  };
  std::vector<const std::vector<Pending>*> occupied;
  for (const std::vector<Pending>& group : groups)
    if (!group.empty()) occupied.push_back(&group);
  // Per-exchange threading, bounded by min(lanes, shards) - 1 tasks and
  // gone when the exchange returns — the same thread-per-exchange
  // convention as Fabric::send_async, which every batch already rode in on.
  std::vector<std::future<void>> tasks;
  for (std::size_t g = 1; g < occupied.size(); ++g)
    tasks.push_back(std::async(std::launch::async,
                               [&run_group, group = occupied[g]] { run_group(*group); }));
  if (!occupied.empty()) run_group(*occupied.front());
  for (std::future<void>& task : tasks) task.get();
  return encode_batch_reply(replies);
}

void ShardedVerifier::end_session(std::uint64_t conn_id) {
  std::set<std::uint32_t> open;
  {
    std::lock_guard<std::mutex> lock(lanes_mu_);
    const auto it = lanes_.find(conn_id);
    if (it != lanes_.end()) {
      open = std::move(it->second);
      lanes_.erase(it);
    }
  }
  shards_[shard_for(conn_id)]->end_session(conn_id);
  for (const std::uint32_t lane : open) {
    const std::uint64_t id = lane_session_id(conn_id, lane);
    shards_[shard_for(id)]->end_session(id);
  }
}

std::vector<VerifierShardStats> ShardedVerifier::stats() const {
  std::vector<VerifierShardStats> stats;
  stats.reserve(shards_.size());
  for (const auto& shard : shards_) stats.push_back(shard->stats());
  return stats;
}

std::uint64_t ShardedVerifier::handshakes_completed() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->stats().handshakes;
  return total;
}

std::size_t ShardedVerifier::active_sessions() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->stats().active_sessions;
  return total;
}

}  // namespace watz::ra
