#include "ra/verifier_shard.hpp"

#include <chrono>
#include <future>
#include <optional>
#include <thread>

#include "crypto/sha256.hpp"
#include "obs/trace.hpp"

namespace watz::ra {

namespace {

/// splitmix64 finaliser: spreads the structured session ids (sequential
/// fabric connections, (conn << 20) | lane virtual ids) uniformly before
/// the modulo picks a shard.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

bool is_msg0(ByteView message) {
  return !message.empty() &&
         message[0] == static_cast<std::uint8_t>(MsgTag::Msg0);
}

bool is_msg2(ByteView message) {
  return !message.empty() &&
         message[0] == static_cast<std::uint8_t>(MsgTag::Msg2);
}

Bytes shard_seed(ByteView seed, std::size_t index) {
  crypto::Sha256 hasher;
  hasher.update(seed);
  hasher.update(to_bytes("watz-verifier-shard-" + std::to_string(index)));
  const crypto::Sha256Digest digest = hasher.finish();
  return Bytes(digest.begin(), digest.end());
}

}  // namespace

// -- VerifierShard -----------------------------------------------------------

VerifierShard::VerifierShard(const crypto::KeyPair& identity, ByteView seed,
                             const VerifierPolicy& policy)
    : rng_(seed), verifier_(identity, rng_) {
  verifier_.set_policy(policy);
}

Result<Bytes> VerifierShard::handle(std::uint64_t session_id, ByteView message,
                                    std::uint64_t appraisal_latency_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool is_msg0 =
      !message.empty() && message[0] == static_cast<std::uint8_t>(MsgTag::Msg0);
  const bool is_msg2 =
      !message.empty() && message[0] == static_cast<std::uint8_t>(MsgTag::Msg2);
  // The modeled appraisal cost is charged under the shard lock on purpose:
  // it is THIS serialisation that sharding exists to break up.
  if (is_msg2 && appraisal_latency_ns)
    std::this_thread::sleep_for(std::chrono::nanoseconds(appraisal_latency_ns));
  auto reply = verifier_.handle(session_id, message);
  if (is_msg0) ++msg0s_;
  if (!reply.ok()) ++rejects_;
  // A completed handshake (msg2 -> msg3) has no further messages on this
  // session; dropping the state here keeps storm-long shards from
  // accumulating finished sessions until connection close.
  if (is_msg2 && reply.ok()) verifier_.end_session(session_id);
  return reply;
}

void VerifierShard::end_session(std::uint64_t session_id) {
  std::lock_guard<std::mutex> lock(mu_);
  verifier_.end_session(session_id);
}

void VerifierShard::endorse_device(const crypto::EcPoint& attestation_key) {
  std::lock_guard<std::mutex> lock(mu_);
  verifier_.endorse_device(attestation_key);
}

void VerifierShard::add_reference_measurement(const crypto::Sha256Digest& claim) {
  std::lock_guard<std::mutex> lock(mu_);
  verifier_.add_reference_measurement(claim);
}

void VerifierShard::set_secret_provider(SecretProvider provider) {
  std::lock_guard<std::mutex> lock(mu_);
  verifier_.set_secret_provider(std::move(provider));
}

void VerifierShard::set_policy(VerifierPolicy policy) {
  std::lock_guard<std::mutex> lock(mu_);
  verifier_.set_policy(policy);
}

VerifierShardStats VerifierShard::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  VerifierShardStats stats;
  stats.msg0s = msg0s_;
  stats.handshakes = verifier_.handshakes_completed();
  stats.rejects = rejects_;
  stats.key_rotations = verifier_.key_rotations();
  stats.active_sessions = verifier_.active_sessions();
  return stats;
}

// -- ShardedVerifier ---------------------------------------------------------

ShardedVerifier::ShardedVerifier(crypto::KeyPair identity, ByteView seed,
                                 ShardedVerifierConfig config)
    : identity_(std::move(identity)), config_(config) {
  if (config_.shards == 0) config_.shards = 1;
  shards_.reserve(config_.shards);
  for (std::size_t i = 0; i < config_.shards; ++i)
    shards_.push_back(std::make_unique<VerifierShard>(identity_, shard_seed(seed, i),
                                                      config_.policy));
  depths_.assign(config_.shards, 0);
}

std::size_t ShardedVerifier::shard_for(std::uint64_t session_id) const noexcept {
  return static_cast<std::size_t>(mix(session_id) % shards_.size());
}

std::vector<std::uint32_t> ShardedVerifier::shard_depths() const {
  std::lock_guard<std::mutex> lock(routes_mu_);
  return depths_;
}

std::size_t ShardedVerifier::route_session(std::uint64_t session_id, bool opening) {
  std::lock_guard<std::mutex> lock(routes_mu_);
  const auto it = routes_.find(session_id);
  if (it != routes_.end()) return it->second.shard;
  if (!opening) return shard_for(session_id);  // mid-protocol stray: hash
  std::size_t shard = shard_for(session_id);
  if (config_.depth_routing) {
    // Least-open-handshakes placement; the hash shard wins ties so a
    // quiet verifier still spreads by id instead of piling on shard 0.
    for (std::size_t s = 0; s < depths_.size(); ++s)
      if (depths_[s] < depths_[shard]) shard = s;
  }
  routes_[session_id] = Route{shard, true};
  ++depths_[shard];
  return shard;
}

void ShardedVerifier::finish_session(std::uint64_t session_id) {
  std::lock_guard<std::mutex> lock(routes_mu_);
  const auto it = routes_.find(session_id);
  if (it == routes_.end() || !it->second.open) return;
  it->second.open = false;
  --depths_[it->second.shard];
}

std::size_t ShardedVerifier::erase_route(std::uint64_t session_id) {
  std::lock_guard<std::mutex> lock(routes_mu_);
  const auto it = routes_.find(session_id);
  if (it == routes_.end()) return shard_for(session_id);
  const std::size_t shard = it->second.shard;
  if (it->second.open) --depths_[shard];
  routes_.erase(it);
  return shard;
}

void ShardedVerifier::endorse_device(const crypto::EcPoint& attestation_key) {
  for (auto& shard : shards_) shard->endorse_device(attestation_key);
}

void ShardedVerifier::add_reference_measurement(const crypto::Sha256Digest& claim) {
  for (auto& shard : shards_) shard->add_reference_measurement(claim);
}

void ShardedVerifier::set_secret_provider(const SecretProvider& provider) {
  for (auto& shard : shards_) shard->set_secret_provider(provider);
}

void ShardedVerifier::set_policy(const VerifierPolicy& policy) {
  config_.policy = policy;
  for (auto& shard : shards_) shard->set_policy(policy);
}

Result<Bytes> ShardedVerifier::handle(std::uint64_t conn_id, ByteView message) {
  if (is_batch_frame(message)) return handle_batch(conn_id, message);
  const std::size_t shard = route_session(conn_id, is_msg0(message));
  // msg2 carries the evidence: the shard's appraisal is the expensive leg
  // of a handshake, so it gets its own span (detail = shard index) when a
  // lazy handshake runs on a traced lane's thread.
  std::optional<obs::ScopedSpan> appraise_span;
  if (is_msg2(message))
    appraise_span.emplace(obs::Stage::RaAppraise,
                          static_cast<std::uint32_t>(shard));
  auto reply = shards_[shard]->handle(conn_id, message,
                                      config_.appraisal_latency_ns);
  appraise_span.reset();
  // A handshake is over once its msg2 is answered (msg3 or rejection) —
  // and a rejected msg0 never opened one. Either way the shard's depth
  // drops; the sticky mapping survives until the connection sweep.
  if (is_msg2(message) || !reply.ok()) finish_session(conn_id);
  return reply;
}

Result<Bytes> ShardedVerifier::handle_batch(std::uint64_t conn_id, ByteView message) {
  // Framing errors fail the whole exchange — a count/payload mismatch must
  // never half-parse into live sessions. Per-lane *protocol* failures, by
  // contrast, travel in the reply item status: the batch partially succeeds.
  auto items = decode_batch(message);
  if (!items.ok()) {
    batch_framing_rejects_.fetch_add(1, std::memory_order_relaxed);
    return Result<Bytes>::err("ra verifier: " + items.error());
  }

  {
    std::lock_guard<std::mutex> lock(lanes_mu_);
    std::set<std::uint32_t>& open = lanes_[conn_id];
    for (const BatchItem& item : *items) open.insert(item.lane);
  }

  // Lanes grouped by shard, groups appraised CONCURRENTLY (one task per
  // shard group, the caller's thread taking the first group): each task
  // serialises on exactly one shard and locks it one handle() at a time —
  // no thread ever holds two shard mutexes, so the shard tier needs no
  // ordering. With one shard this degenerates to the plain sequential
  // walk on the caller's thread.
  struct Pending {
    std::size_t index = 0;  // reply slot (lane order is preserved)
    std::uint64_t id = 0;
    const BatchItem* item = nullptr;
  };
  // Route every lane first (sticky table hit, or least-deep shard for a
  // fresh msg0), then group by the PLACED shard — the walk below only ever
  // locks the shard a lane actually lives on.
  std::vector<std::vector<Pending>> groups(shards_.size());
  for (std::size_t i = 0; i < items->size(); ++i) {
    const BatchItem& item = (*items)[i];
    const std::uint64_t id = lane_session_id(conn_id, item.lane);
    groups[route_session(id, is_msg0(item.frame))].push_back(Pending{i, id, &item});
  }

  std::vector<BatchReplyItem> replies(items->size());
  const auto run_group = [&](std::size_t shard, const std::vector<Pending>& group) {
    for (const Pending& pending : group) {
      auto reply = shards_[shard]->handle(pending.id, pending.item->frame,
                                          config_.appraisal_latency_ns);
      if (is_msg2(pending.item->frame) || !reply.ok()) finish_session(pending.id);
      BatchReplyItem out;
      out.lane = pending.item->lane;
      if (reply.ok()) {
        out.ok = true;
        out.payload = std::move(*reply);
      } else {
        out.error = reply.error();
      }
      replies[pending.index] = std::move(out);
    }
  };
  struct Occupied {
    std::size_t shard = 0;
    const std::vector<Pending>* group = nullptr;
  };
  std::vector<Occupied> occupied;
  for (std::size_t s = 0; s < groups.size(); ++s)
    if (!groups[s].empty()) occupied.push_back(Occupied{s, &groups[s]});
  // Per-exchange threading, bounded by min(lanes, shards) - 1 tasks and
  // gone when the exchange returns — the same thread-per-exchange
  // convention as Fabric::send_async, which every batch already rode in on.
  std::vector<std::future<void>> tasks;
  for (std::size_t g = 1; g < occupied.size(); ++g)
    tasks.push_back(std::async(std::launch::async, [&run_group, o = occupied[g]] {
      run_group(o.shard, *o.group);
    }));
  if (!occupied.empty()) run_group(occupied.front().shard, *occupied.front().group);
  for (std::future<void>& task : tasks) task.get();
  return encode_batch_reply(replies);
}

void ShardedVerifier::end_session(std::uint64_t conn_id) {
  std::set<std::uint32_t> open;
  {
    std::lock_guard<std::mutex> lock(lanes_mu_);
    const auto it = lanes_.find(conn_id);
    if (it != lanes_.end()) {
      open = std::move(it->second);
      lanes_.erase(it);
    }
  }
  // erase_route resolves the shard a session was actually PLACED on (the
  // depth-routed one when it exists, the hash shard otherwise) and retires
  // the sticky mapping.
  shards_[erase_route(conn_id)]->end_session(conn_id);
  for (const std::uint32_t lane : open) {
    const std::uint64_t id = lane_session_id(conn_id, lane);
    shards_[erase_route(id)]->end_session(id);
  }
}

std::vector<VerifierShardStats> ShardedVerifier::stats() const {
  std::vector<VerifierShardStats> stats;
  stats.reserve(shards_.size());
  for (const auto& shard : shards_) stats.push_back(shard->stats());
  return stats;
}

std::uint64_t ShardedVerifier::handshakes_completed() const {
  std::uint64_t total = 0;
  for (const auto& shard : shards_) total += shard->stats().handshakes;
  return total;
}

std::size_t ShardedVerifier::active_sessions() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) total += shard->stats().active_sessions;
  return total;
}

}  // namespace watz::ra
