// Wire format of the WaTZ remote-attestation protocol (Table II):
//
//   msg0 := Ga
//   msg1 := content1 || MAC_Km(content1),  content1 := Gv || V || SIGN_V(Gv || Ga)
//   msg2 := content2 || MAC_Km(content2),  content2 := Ga || evidence || SIGN_A(evidence)
//   msg3 := iv || AES-GCM_Ke(data)
//
// Each frame starts with a one-byte tag so the verifier's listener can
// dispatch without session context. Points travel SEC1-uncompressed (65 B),
// signatures as raw r||s (64 B), MACs as AES-CMAC (16 B).
#pragma once

#include <string>
#include <vector>

#include "attestation/evidence.hpp"
#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/cmac.hpp"
#include "crypto/ecdsa.hpp"
#include "crypto/gcm.hpp"

namespace watz::ra {

enum class MsgTag : std::uint8_t { Msg0 = 0xA0, Msg1 = 0xA1, Msg2 = 0xA2, Msg3 = 0xA3 };

struct Msg0 {
  crypto::EcPoint ga;  // attester's ephemeral public session key

  Bytes encode() const;
  static Result<Msg0> decode(ByteView data);
};

struct Msg1 {
  crypto::EcPoint gv;        // verifier's ephemeral public session key
  crypto::EcPoint identity;  // V: the verifier's long-term ECDSA public key
  Bytes signature;           // SIGN_V(Gv || Ga), 64 B
  crypto::CmacTag mac{};     // MAC_Km(content1)

  Bytes content() const;  // content1 (MAC input)
  Bytes encode() const;
  static Result<Msg1> decode(ByteView data);
};

struct Msg2 {
  crypto::EcPoint ga;               // echoed attester session key
  attestation::Evidence evidence;   // includes the attestation signature
  crypto::CmacTag mac{};            // MAC_Km(content2)

  Bytes content() const;  // content2 (MAC input)
  Bytes encode() const;
  static Result<Msg2> decode(ByteView data);
};

struct Msg3 {
  crypto::GcmIv iv{};
  Bytes ciphertext_and_tag;  // AES-128-GCM(Ke, secret blob)

  Bytes encode() const;
  static Result<Msg3> decode(ByteView data);
};

// -- batched frames ----------------------------------------------------------
//
// The gateway's batched attach pipelines whole fleets of handshakes: one
// fabric exchange carries N per-lane protocol frames (N msg0s out, N msg1s
// back; then N msg2s out, N msg3s back), so the two network round-trips of
// Table II are amortised across N sessions. Framing — strict, any violation
// rejects the whole exchange as a protocol error:
//
//   batch       := 0xAF || uleb(count) || count * item
//   item        := u32le(lane) || uleb(len) || frame[len]
//   batch_reply := 0xAF || uleb(count) || count * reply_item
//   reply_item  := u32le(lane) || status u8 (0 ok / 1 err) || uleb(len) || body[len]
//
// Lanes are caller-chosen indices (< kMaxBatchLanes, unique within a frame).
// The verifier derives an independent virtual session per (connection, lane)
// and shards those sessions — a lane that fails appraisal fails alone; the
// rest of the batch proceeds (reply_item status carries the per-lane verdict).

inline constexpr std::uint8_t kBatchTag = 0xAF;
inline constexpr std::uint32_t kMaxBatchLanes = 1024;

struct BatchItem {
  std::uint32_t lane = 0;
  Bytes frame;
};

struct BatchReplyItem {
  std::uint32_t lane = 0;
  bool ok = false;
  Bytes payload;      ///< the protocol reply frame when ok
  std::string error;  ///< the per-lane failure when !ok
};

/// True when `message` starts with the batch tag (dispatch without decode).
bool is_batch_frame(ByteView message);

Bytes encode_batch(const std::vector<BatchItem>& items);
Result<std::vector<BatchItem>> decode_batch(ByteView data);
Bytes encode_batch_reply(const std::vector<BatchReplyItem>& items);
Result<std::vector<BatchReplyItem>> decode_batch_reply(ByteView data);

/// The transport anchor binding evidence to this session: HASH(Ga || Gv).
std::array<std::uint8_t, 32> session_anchor(const crypto::EcPoint& ga,
                                            const crypto::EcPoint& gv);

/// The byte string the verifier signs in msg1: Gv || Ga.
Bytes msg1_signed_payload(const crypto::EcPoint& gv, const crypto::EcPoint& ga);

}  // namespace watz::ra
