// Verifier-side of the WaTZ protocol (SS IV, messages b and d).
//
// The verifier holds: a long-term ECDSA identity, the set of *endorsed*
// device attestation keys, the set of *reference values* (acceptable Wasm
// code measurements), and the secret blob released upon successful
// appraisal. It is session-oriented: one AttesterSession peer per
// connection, serviced strictly msg0 -> msg1, msg2 -> msg3.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "crypto/kdf.hpp"
#include "crypto/rng.hpp"
#include "ra/messages.hpp"

namespace watz::ra {

/// Maps an accepted claim to the confidential payload provisioned to the
/// application (e.g. a dataset or configuration key).
using SecretProvider = std::function<Bytes(const crypto::Sha256Digest& claim)>;

struct VerifierPolicy {
  /// Evidence from runtimes older than this is rejected (SS VII: rollback /
  /// unpatched-runtime mitigation).
  std::uint32_t min_watz_version = 0;
  /// Ephemeral session-keypair rotation window: the verifier serves up to
  /// this many handshakes from one ephemeral <v, Gv> before generating a
  /// fresh one (TLS-style ephemeral reuse — ECDHE keygen is the most
  /// expensive verifier-side step in Tab 3). The session anchor HASH(Ga||Gv)
  /// stays per-session fresh because Ga is. 1 = a fresh keypair every
  /// handshake (full per-session forward secrecy, the default).
  std::uint64_t session_key_reuse = 1;
};

class Verifier {
 public:
  Verifier(crypto::KeyPair identity, crypto::Rng& rng)
      : identity_(std::move(identity)), rng_(rng) {}

  const crypto::EcPoint& identity_key() const noexcept { return identity_.pub; }

  /// Endorsement step: register a device's public attestation key.
  void endorse_device(const crypto::EcPoint& attestation_key);
  /// Reference-value step: register an acceptable code measurement.
  void add_reference_measurement(const crypto::Sha256Digest& claim);
  void set_secret_provider(SecretProvider provider) { provider_ = std::move(provider); }
  void set_policy(VerifierPolicy policy) { policy_ = policy; }

  /// Handles one protocol message for connection `conn_id` and produces the
  /// reply (msg0 -> msg1, msg2 -> msg3). Any verification failure aborts
  /// the session with an error (and the session state is dropped).
  Result<Bytes> handle(std::uint64_t conn_id, ByteView message);

  /// Drops per-connection session state.
  void end_session(std::uint64_t conn_id);

  std::size_t active_sessions() const noexcept { return sessions_.size(); }
  /// Fresh ephemeral keypair generations (== handshakes served when
  /// session_key_reuse is 1; fewer under a reuse window).
  std::uint64_t key_rotations() const noexcept { return key_rotations_; }
  /// Handshakes appraised to completion (msg3 issued).
  std::uint64_t handshakes_completed() const noexcept { return handshakes_completed_; }

 private:
  struct Session {
    crypto::KeyPair session_key;  // <v, Gv>
    crypto::EcPoint ga;           // attester session key from msg0
    crypto::SessionKeys keys{};
    bool handshake_done = false;
  };

  Result<Bytes> handle_msg0(std::uint64_t conn_id, ByteView message);
  Result<Bytes> handle_msg2(std::uint64_t conn_id, ByteView message);
  /// The ephemeral <v, Gv> for a new session, honouring the rotation window.
  crypto::KeyPair next_session_key();

  crypto::KeyPair identity_;
  crypto::Rng& rng_;
  std::vector<crypto::EcPoint> endorsed_;
  std::vector<crypto::Sha256Digest> references_;
  SecretProvider provider_;
  VerifierPolicy policy_{};
  std::map<std::uint64_t, Session> sessions_;
  crypto::KeyPair cached_session_key_{};
  std::uint64_t cached_key_uses_ = 0;
  std::uint64_t key_rotations_ = 0;
  std::uint64_t handshakes_completed_ = 0;
};

}  // namespace watz::ra
