#include "ra/attester.hpp"

namespace watz::ra {

AttesterSession::AttesterSession(crypto::Rng& rng, crypto::EcPoint expected_verifier)
    : session_key_(crypto::ecdsa_keygen(rng)),
      expected_verifier_(std::move(expected_verifier)) {}

Bytes AttesterSession::make_msg0() {
  msg0_sent_ = true;
  return Msg0{session_key_.pub}.encode();
}

Status AttesterSession::process_msg1(ByteView msg1_bytes) {
  if (!msg0_sent_) return Status::err("ra attester: msg1 before msg0");
  auto msg1 = Msg1::decode(msg1_bytes);
  if (!msg1.ok()) return Status::err(msg1.error());

  // Entity authentication: the verifier's identity must match the key
  // hardcoded in the (measured) application.
  if (!(msg1->identity == expected_verifier_))
    return Status::err("ra attester: verifier identity mismatch");

  // Derive the shared session keys (same derivation as the verifier).
  auto shared = crypto::ecdh_shared_x(session_key_.priv, msg1->gv);
  if (!shared.ok()) return Status::err("ra attester: " + shared.error());
  keys_ = crypto::derive_session_keys(*shared);
  keys_ready_ = true;

  // Integrity of msg1 under Km.
  const auto expected_mac = crypto::aes_cmac(keys_.km, msg1->content());
  if (!ct_equal(expected_mac, msg1->mac))
    return Status::err("ra attester: msg1 MAC mismatch");

  // Signature over both session keys: detects masquerading/replay (a replayed
  // msg1 carries a stale Gv signed against a different Ga).
  auto sig = crypto::EcdsaSignature::decode(msg1->signature);
  if (!sig.ok()) return Status::err("ra attester: bad msg1 signature encoding");
  const auto payload = msg1_signed_payload(msg1->gv, session_key_.pub);
  if (!crypto::ecdsa_verify(msg1->identity, crypto::sha256(payload), *sig))
    return Status::err("ra attester: msg1 signature invalid (possible replay)");

  // Anchor binds the evidence to this key-agreement session.
  anchor_ = session_anchor(session_key_.pub, msg1->gv);
  return {};
}

Result<Bytes> AttesterSession::make_msg2(const attestation::Evidence& evidence) {
  if (!keys_ready_) return Result<Bytes>::err("ra attester: msg2 before key agreement");
  Msg2 msg2;
  msg2.ga = session_key_.pub;
  msg2.evidence = evidence;
  msg2.mac = crypto::aes_cmac(keys_.km, msg2.content());
  return msg2.encode();
}

Result<Bytes> AttesterSession::handle_msg1(ByteView msg1_bytes, const QuoteFn& quote) {
  const Status st = process_msg1(msg1_bytes);
  if (!st.ok()) return Result<Bytes>::err(st.error());
  return make_msg2(quote(anchor_));
}

Result<Bytes> AttesterSession::handle_msg3(ByteView msg3_bytes) {
  if (!keys_ready_) return Result<Bytes>::err("ra attester: msg3 before key agreement");
  auto msg3 = Msg3::decode(msg3_bytes);
  if (!msg3.ok()) return Result<Bytes>::err(msg3.error());
  const crypto::Aes cipher(keys_.ke);
  auto plain = crypto::gcm_open(cipher, msg3->iv, {}, msg3->ciphertext_and_tag);
  if (!plain.ok())
    return Result<Bytes>::err("ra attester: secret blob authentication failed");
  return plain;
}

}  // namespace watz::ra
