#include "ra/messages.hpp"

#include <cstring>
#include <set>

#include "common/leb128.hpp"
#include "crypto/sha256.hpp"

namespace watz::ra {

namespace {

Result<crypto::EcPoint> read_point(ByteView data, std::size_t offset) {
  if (data.size() < offset + 65)
    return Result<crypto::EcPoint>::err("ra: truncated point");
  return crypto::EcPoint::decode_uncompressed(data.subspan(offset, 65));
}

}  // namespace

Bytes Msg0::encode() const {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(MsgTag::Msg0));
  append(out, ga.encode_uncompressed());
  return out;
}

Result<Msg0> Msg0::decode(ByteView data) {
  if (data.size() != 66 || data[0] != static_cast<std::uint8_t>(MsgTag::Msg0))
    return Result<Msg0>::err("ra: malformed msg0");
  auto ga = read_point(data, 1);
  if (!ga.ok()) return Result<Msg0>::err(ga.error());
  return Msg0{*ga};
}

Bytes Msg1::content() const {
  Bytes out;
  append(out, gv.encode_uncompressed());
  append(out, identity.encode_uncompressed());
  append(out, signature);
  return out;
}

Bytes Msg1::encode() const {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(MsgTag::Msg1));
  append(out, content());
  append(out, mac);
  return out;
}

Result<Msg1> Msg1::decode(ByteView data) {
  constexpr std::size_t kSize = 1 + 65 + 65 + 64 + 16;
  if (data.size() != kSize || data[0] != static_cast<std::uint8_t>(MsgTag::Msg1))
    return Result<Msg1>::err("ra: malformed msg1");
  Msg1 msg;
  auto gv = read_point(data, 1);
  if (!gv.ok()) return Result<Msg1>::err(gv.error());
  msg.gv = *gv;
  auto identity = read_point(data, 66);
  if (!identity.ok()) return Result<Msg1>::err(identity.error());
  msg.identity = *identity;
  msg.signature.assign(data.begin() + 131, data.begin() + 195);
  std::memcpy(msg.mac.data(), data.data() + 195, 16);
  return msg;
}

Bytes Msg2::content() const {
  Bytes out;
  append(out, ga.encode_uncompressed());
  append(out, evidence.encode());
  return out;
}

Bytes Msg2::encode() const {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(MsgTag::Msg2));
  append(out, content());
  append(out, mac);
  return out;
}

Result<Msg2> Msg2::decode(ByteView data) {
  constexpr std::size_t kSize = 1 + 65 + attestation::Evidence::kEncodedSize + 16;
  if (data.size() != kSize || data[0] != static_cast<std::uint8_t>(MsgTag::Msg2))
    return Result<Msg2>::err("ra: malformed msg2");
  Msg2 msg;
  auto ga = read_point(data, 1);
  if (!ga.ok()) return Result<Msg2>::err(ga.error());
  msg.ga = *ga;
  auto evidence =
      attestation::Evidence::decode(data.subspan(66, attestation::Evidence::kEncodedSize));
  if (!evidence.ok()) return Result<Msg2>::err(evidence.error());
  msg.evidence = *evidence;
  std::memcpy(msg.mac.data(), data.data() + 66 + attestation::Evidence::kEncodedSize, 16);
  return msg;
}

Bytes Msg3::encode() const {
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(MsgTag::Msg3));
  append(out, iv);
  put_u32le(out, static_cast<std::uint32_t>(ciphertext_and_tag.size()));
  append(out, ciphertext_and_tag);
  return out;
}

Result<Msg3> Msg3::decode(ByteView data) {
  if (data.size() < 1 + crypto::kGcmIvSize + 4 ||
      data[0] != static_cast<std::uint8_t>(MsgTag::Msg3))
    return Result<Msg3>::err("ra: malformed msg3");
  Msg3 msg;
  std::memcpy(msg.iv.data(), data.data() + 1, crypto::kGcmIvSize);
  const std::uint32_t len = get_u32le(data.data() + 1 + crypto::kGcmIvSize);
  if (data.size() != 1 + crypto::kGcmIvSize + 4 + len)
    return Result<Msg3>::err("ra: msg3 length mismatch");
  msg.ciphertext_and_tag.assign(data.begin() + 1 + crypto::kGcmIvSize + 4, data.end());
  return msg;
}

// -- batched frames ----------------------------------------------------------

namespace {

/// Shared preamble of batch and batch-reply frames: tag + plausible count.
/// `min_item_bytes` bounds the count against the remaining frame so a
/// malicious count can neither drive a huge reserve nor claim items the
/// payload cannot possibly hold.
Result<std::uint32_t> open_batch(ByteReader& r, std::size_t min_item_bytes) {
  auto tag = r.read_u8();
  if (!tag.ok() || *tag != kBatchTag)
    return Result<std::uint32_t>::err("ra: not a batch frame");
  auto count = r.read_uleb32();
  if (!count.ok()) return Result<std::uint32_t>::err("ra: batch count unreadable");
  if (*count == 0) return Result<std::uint32_t>::err("ra: empty batch");
  if (*count > kMaxBatchLanes)
    return Result<std::uint32_t>::err("ra: batch exceeds lane limit");
  if (*count > r.remaining() / min_item_bytes)
    return Result<std::uint32_t>::err("ra: batch count exceeds frame");
  return count;
}

}  // namespace

bool is_batch_frame(ByteView message) {
  return !message.empty() && message[0] == kBatchTag;
}

Bytes encode_batch(const std::vector<BatchItem>& items) {
  Bytes out;
  out.push_back(kBatchTag);
  write_uleb(out, items.size());
  for (const BatchItem& item : items) {
    put_u32le(out, item.lane);
    write_uleb(out, item.frame.size());
    append(out, item.frame);
  }
  return out;
}

Result<std::vector<BatchItem>> decode_batch(ByteView data) {
  using R = Result<std::vector<BatchItem>>;
  ByteReader r(data);
  auto count = open_batch(r, /*min_item_bytes=*/5);  // lane + len, empty frame
  if (!count.ok()) return R::err(count.error());
  std::vector<BatchItem> items;
  items.reserve(*count);
  std::set<std::uint32_t> lanes;
  for (std::uint32_t i = 0; i < *count; ++i) {
    BatchItem item;
    auto lane = r.read_u32le();
    if (!lane.ok()) return R::err("ra: batch item " + std::to_string(i) + " truncated");
    item.lane = *lane;
    if (item.lane >= kMaxBatchLanes) return R::err("ra: batch lane out of range");
    if (!lanes.insert(item.lane).second) return R::err("ra: duplicate batch lane");
    auto len = r.read_uleb32();
    if (!len.ok()) return R::err("ra: batch item length unreadable");
    auto frame = r.read_bytes(*len);
    if (!frame.ok()) return R::err("ra: batch item length exceeds frame");
    item.frame.assign(frame->begin(), frame->end());
    items.push_back(std::move(item));
  }
  // Count and payload must agree exactly: trailing bytes are as malformed
  // as a short frame (a count/payload mismatch must never half-parse).
  if (!r.at_end()) return R::err("ra: trailing bytes after batch");
  return items;
}

Bytes encode_batch_reply(const std::vector<BatchReplyItem>& items) {
  Bytes out;
  out.push_back(kBatchTag);
  write_uleb(out, items.size());
  for (const BatchReplyItem& item : items) {
    put_u32le(out, item.lane);
    out.push_back(item.ok ? 0 : 1);
    const Bytes body = item.ok ? item.payload : to_bytes(item.error);
    write_uleb(out, body.size());
    append(out, body);
  }
  return out;
}

Result<std::vector<BatchReplyItem>> decode_batch_reply(ByteView data) {
  using R = Result<std::vector<BatchReplyItem>>;
  ByteReader r(data);
  auto count = open_batch(r, /*min_item_bytes=*/6);  // lane + status + len
  if (!count.ok()) return R::err(count.error());
  std::vector<BatchReplyItem> items;
  items.reserve(*count);
  std::set<std::uint32_t> lanes;
  for (std::uint32_t i = 0; i < *count; ++i) {
    BatchReplyItem item;
    auto lane = r.read_u32le();
    if (!lane.ok()) return R::err("ra: batch reply truncated");
    item.lane = *lane;
    if (!lanes.insert(item.lane).second) return R::err("ra: duplicate batch lane");
    auto status = r.read_u8();
    if (!status.ok()) return R::err("ra: batch reply truncated");
    item.ok = *status == 0;
    auto len = r.read_uleb32();
    if (!len.ok()) return R::err("ra: batch reply length unreadable");
    auto body = r.read_bytes(*len);
    if (!body.ok()) return R::err("ra: batch reply length exceeds frame");
    if (item.ok)
      item.payload.assign(body->begin(), body->end());
    else
      item.error.assign(body->begin(), body->end());
    items.push_back(std::move(item));
  }
  if (!r.at_end()) return R::err("ra: trailing bytes after batch");
  return items;
}

std::array<std::uint8_t, 32> session_anchor(const crypto::EcPoint& ga,
                                            const crypto::EcPoint& gv) {
  crypto::Sha256 hash;
  const Bytes a = ga.encode_uncompressed();
  const Bytes v = gv.encode_uncompressed();
  hash.update(a);
  hash.update(v);
  return hash.finish();
}

Bytes msg1_signed_payload(const crypto::EcPoint& gv, const crypto::EcPoint& ga) {
  return concat({gv.encode_uncompressed(), ga.encode_uncompressed()});
}

}  // namespace watz::ra
