// Calibrated world-switch cost model.
//
// TrustZone's SMC transitions cost real time on silicon; the paper measures
// 86 us to enter the secure world and 20 us to leave (Fig 3b), and ~10 us to
// fetch the time from inside a TA (Fig 3a). The simulation charges these
// costs with a busy-wait on the host clock so that benchmark *shapes*
// (boundary-crossing amplification, syscall overhead) match the paper.
// Tests construct a disabled model so functional behaviour is instant.
#pragma once

#include <cstdint>

namespace watz::hw {

struct LatencyConfig {
  std::uint64_t smc_enter_ns = 86'000;  ///< normal -> secure (Fig 3b)
  std::uint64_t smc_leave_ns = 20'000;  ///< secure -> normal (Fig 3b)
  std::uint64_t time_rpc_ns = 10'000;   ///< secure-world time query RPC (Fig 3a)
  std::uint64_t supplicant_rpc_ns = 30'000;  ///< socket RPC through the supplicant
  bool enabled = true;
  /// When true the charge sleeps instead of busy-waiting: the latency is
  /// *device-side* (a remote board crossing its own world boundary) and
  /// must not occupy a CPU of the host driving the fleet. Single-board
  /// benches keep the default busy-wait so their timing shapes match the
  /// paper's on-SoC measurements.
  bool device_side = false;
};

class LatencyModel {
 public:
  LatencyModel() = default;
  explicit LatencyModel(LatencyConfig config) : config_(config) {}

  static LatencyModel disabled() {
    LatencyConfig c;
    c.enabled = false;
    return LatencyModel(c);
  }

  const LatencyConfig& config() const noexcept { return config_; }

  void charge_enter() const { spin(config_.smc_enter_ns); }
  void charge_leave() const { spin(config_.smc_leave_ns); }
  void charge_time_rpc() const { spin(config_.time_rpc_ns); }
  void charge_supplicant_rpc() const { spin(config_.supplicant_rpc_ns); }

  /// Charges `ns` of simulated latency: a busy-wait on the host monotonic
  /// clock, or a sleep when the model is device-side (no-op when disabled).
  void spin(std::uint64_t ns) const;

 private:
  LatencyConfig config_{};
};

}  // namespace watz::hw
