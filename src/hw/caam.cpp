#include "hw/caam.hpp"

namespace watz::hw {

Caam::Caam(crypto::Rng& rng) { rng.fill(otpmk_); }

crypto::Sha256Digest Caam::mkvb(SecurityState world) const {
  crypto::Sha256 hash;
  hash.update(otpmk_);
  const std::string_view tag =
      world == SecurityState::Secure ? "mkvb-secure" : "mkvb-normal";
  hash.update(ByteView(reinterpret_cast<const std::uint8_t*>(tag.data()), tag.size()));
  return hash.finish();
}

}  // namespace watz::hw
