#include "hw/efuse.hpp"

namespace watz::hw {

Status EfuseBank::program(std::size_t index, std::uint32_t value) {
  if (index >= kWords) return Status::err("efuse: index out of range");
  if (words_[index].has_value()) return Status::err("efuse: word already programmed");
  words_[index] = value;
  return {};
}

std::uint32_t EfuseBank::read(std::size_t index) const {
  if (index >= kWords) return 0;
  return words_[index].value_or(0);
}

bool EfuseBank::is_programmed(std::size_t index) const {
  return index < kWords && words_[index].has_value();
}

Status EfuseBank::program_digest(ByteView digest32) {
  if (digest32.size() != 32) return Status::err("efuse: digest must be 32 bytes");
  for (std::size_t i = 0; i < 8; ++i) {
    const Status st = program(i, get_u32be(digest32.data() + 4 * i));
    if (!st.ok()) return st;
  }
  return {};
}

Bytes EfuseBank::read_digest() const {
  Bytes out;
  for (std::size_t i = 0; i < 8; ++i) put_u32be(out, read(i));
  return out;
}

}  // namespace watz::hw
