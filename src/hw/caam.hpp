// Cryptographic Accelerator and Assurance Module (CAAM) simulation.
//
// On the i.MX 8MQ the root of trust is OTPMK, a unique 256-bit one-time-
// programmable key fused at manufacturing. Software never reads OTPMK; the
// CAAM only exposes the "master key verification blob" (MKVB), a hash of
// OTPMK that *differs between the normal and secure worlds* (SS V "The
// attestation service"). This class reproduces exactly that contract.
#pragma once

#include <array>

#include "common/bytes.hpp"
#include "crypto/rng.hpp"
#include "crypto/sha256.hpp"

namespace watz::hw {

enum class SecurityState { Normal, Secure };

class Caam {
 public:
  /// Fuses a fresh random OTPMK (manufacturing step).
  explicit Caam(crypto::Rng& rng);

  /// Fuses a caller-supplied OTPMK; used by tests that need a fixed device
  /// identity across simulated "power cycles".
  explicit Caam(const std::array<std::uint8_t, 32>& otpmk) : otpmk_(otpmk) {}

  /// Master key verification blob for the requesting world. Secure and
  /// normal world observe different values; the OTPMK itself never leaves
  /// the module.
  crypto::Sha256Digest mkvb(SecurityState world) const;

 private:
  std::array<std::uint8_t, 32> otpmk_{};
};

}  // namespace watz::hw
