#include "hw/clock.hpp"

#include <chrono>

namespace watz::hw {

std::uint64_t monotonic_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace watz::hw
