#include "hw/latency.hpp"

#include <chrono>
#include <thread>

#include "hw/clock.hpp"

namespace watz::hw {

void LatencyModel::spin(std::uint64_t ns) const {
  if (!config_.enabled || ns == 0) return;
  if (config_.device_side) {
    // The time passes on the device, not on this host's CPU: a gateway
    // thread waiting on a remote board overlaps with other boards' work.
    std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
    return;
  }
  const std::uint64_t deadline = monotonic_ns() + ns;
  while (monotonic_ns() < deadline) {
    // busy-wait: models the CPU being occupied by the world switch
  }
}

}  // namespace watz::hw
