#include "hw/latency.hpp"

#include "hw/clock.hpp"

namespace watz::hw {

void LatencyModel::spin(std::uint64_t ns) const {
  if (!config_.enabled || ns == 0) return;
  const std::uint64_t deadline = monotonic_ns() + ns;
  while (monotonic_ns() < deadline) {
    // busy-wait: models the CPU being occupied by the world switch
  }
}

}  // namespace watz::hw
