// Monotonic time source for the simulated board.
//
// The paper (SS VI-A) extends OP-TEE so the secure world can observe the
// normal-world Linux monotonic clock with nanosecond precision; here both
// worlds read the same host steady clock, and the *cost* of the secure-world
// read (an RPC to the normal world) is modelled by hw::LatencyModel.
#pragma once

#include <cstdint>

namespace watz::hw {

/// Nanoseconds from the host monotonic clock.
std::uint64_t monotonic_ns() noexcept;

}  // namespace watz::hw
