// One-time-programmable eFuse bank.
//
// The i.MX 8MQ stores the hash of the vendor's secure-boot public key in
// eFuses (SS IV "Secure boot"); once a word is blown it cannot be rewritten,
// which is what anchors the chain of trust. This simulation enforces the
// write-once property.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace watz::hw {

class EfuseBank {
 public:
  static constexpr std::size_t kWords = 16;  // 16 x 32-bit words = 512 bits

  /// Programs word `index`. Fails if already programmed (OTP semantics).
  Status program(std::size_t index, std::uint32_t value);

  /// Reads word `index` (unprogrammed words read as zero).
  std::uint32_t read(std::size_t index) const;

  bool is_programmed(std::size_t index) const;

  /// Convenience: burns a 32-byte digest into words 0..7.
  Status program_digest(ByteView digest32);
  /// Reads back words 0..7 as a 32-byte digest.
  Bytes read_digest() const;

 private:
  std::array<std::optional<std::uint32_t>, kWords> words_{};
};

}  // namespace watz::hw
