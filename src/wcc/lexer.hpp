// Tokenizer for the wcc C subset.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace watz::wcc {

enum class Tok : std::uint8_t {
  End,
  Ident,
  IntLit,
  FloatLit,
  // keywords
  KwInt, KwLong, KwDouble, KwChar, KwVoid, KwIf, KwElse, KwWhile, KwFor,
  KwReturn, KwBreak, KwContinue, KwExtern,
  // punctuation / operators
  LParen, RParen, LBrace, RBrace, LBracket, RBracket, Semi, Comma,
  Assign, PlusAssign, MinusAssign, StarAssign, SlashAssign,
  Plus, Minus, Star, Slash, Percent,
  Lt, Gt, Le, Ge, EqEq, NotEq,
  Amp, Pipe, Caret, Shl, Shr, AndAnd, OrOr, Not, Tilde,
  PlusPlus, MinusMinus,
};

struct Token {
  Tok kind = Tok::End;
  std::string text;       // identifier spelling
  std::uint64_t int_value = 0;
  double float_value = 0;
  int line = 0;
};

/// Tokenizes `source`; fails on unknown characters or malformed literals.
Result<std::vector<Token>> tokenize(std::string_view source);

const char* tok_name(Tok t);

}  // namespace watz::wcc
