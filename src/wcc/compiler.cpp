#include "wcc/compiler.hpp"

#include <map>
#include <optional>
#include <vector>

#include "wasm/builder.hpp"
#include "wcc/lexer.hpp"

namespace watz::wcc {

namespace {

using wasm::CodeEmitter;
using wasm::ModuleBuilder;
using wasm::ValType;
namespace ops = watz::wasm;

enum class Ty : std::uint8_t { Void, I32, I64, F64, PtrChar, PtrInt, PtrLong, PtrDouble };

bool is_ptr(Ty t) { return t >= Ty::PtrChar; }

Ty elem_type(Ty ptr) {
  switch (ptr) {
    case Ty::PtrChar: return Ty::I32;  // chars widen to i32
    case Ty::PtrInt: return Ty::I32;
    case Ty::PtrLong: return Ty::I64;
    case Ty::PtrDouble: return Ty::F64;
    default: return Ty::Void;
  }
}

int elem_size(Ty ptr) {
  switch (ptr) {
    case Ty::PtrChar: return 1;
    case Ty::PtrInt: return 4;
    case Ty::PtrLong: return 8;
    case Ty::PtrDouble: return 8;
    default: return 0;
  }
}

ValType val_type(Ty t) {
  switch (t) {
    case Ty::I64: return ValType::I64;
    case Ty::F64: return ValType::F64;
    default: return ValType::I32;  // i32, char and all pointers
  }
}

const char* ty_name(Ty t) {
  switch (t) {
    case Ty::Void: return "void";
    case Ty::I32: return "int";
    case Ty::I64: return "long";
    case Ty::F64: return "double";
    case Ty::PtrChar: return "char*";
    case Ty::PtrInt: return "int*";
    case Ty::PtrLong: return "long*";
    case Ty::PtrDouble: return "double*";
  }
  return "?";
}

struct CompileError {
  std::string message;
};

[[noreturn]] void fail(const std::string& message, int line) {
  throw CompileError{"wcc: " + message + " (line " + std::to_string(line) + ")"};
}

struct FuncInfo {
  std::uint32_t index = 0;
  Ty ret = Ty::Void;
  std::vector<Ty> params;
};

struct GlobalInfo {
  std::uint32_t index = 0;
  Ty type = Ty::I32;
};

struct LocalInfo {
  std::uint32_t index = 0;
  Ty type = Ty::I32;
};

class Compiler {
 public:
  Compiler(std::vector<Token> tokens, CompileOptions options)
      : tokens_(std::move(tokens)), options_(options) {}

  Bytes run() {
    // The bump-allocator pointer global must exist before user globals so
    // its index is stable regardless of the program.
    heap_ptr_global_ = builder_.add_global(ValType::I32, true,
                                           static_cast<std::int64_t>(options_.heap_base));
    collect_signatures();
    pos_ = 0;
    compile_program();
    builder_.add_memory(options_.memory_pages, options_.memory_pages);
    for (const DataSegment& seg : options_.data) builder_.add_data(seg.offset, seg.data);
    builder_.add_export("memory", wasm::ImportKind::Memory, 0);
    return builder_.build();
  }

 private:
  // -- token helpers ---------------------------------------------------------

  const Token& peek(int ahead = 0) const {
    const std::size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& advance() { return tokens_[pos_++]; }
  bool check(Tok kind) const { return peek().kind == kind; }
  bool match(Tok kind) {
    if (!check(kind)) return false;
    ++pos_;
    return true;
  }
  const Token& expect(Tok kind, const char* what) {
    if (!check(kind)) fail(std::string("expected ") + what, peek().line);
    return advance();
  }
  int line() const { return peek().line; }

  bool at_type_keyword() const {
    const Tok k = peek().kind;
    return k == Tok::KwInt || k == Tok::KwLong || k == Tok::KwDouble ||
           k == Tok::KwChar || k == Tok::KwVoid;
  }

  Ty parse_type() {
    Ty base;
    switch (advance().kind) {
      case Tok::KwInt: base = Ty::I32; break;
      case Tok::KwLong: base = Ty::I64; break;
      case Tok::KwDouble: base = Ty::F64; break;
      case Tok::KwChar: base = Ty::I32; break;  // char rvalues are i32
      case Tok::KwVoid: base = Ty::Void; break;
      default: fail("expected type", peek().line);
    }
    if (match(Tok::Star)) {
      switch (base) {
        case Ty::I32: return tokens_[pos_ - 2].kind == Tok::KwChar ? Ty::PtrChar : Ty::PtrInt;
        case Ty::I64: return Ty::PtrLong;
        case Ty::F64: return Ty::PtrDouble;
        default: fail("cannot form pointer to this type", line());
      }
    }
    return base;
  }

  // -- pass 1: signatures ------------------------------------------------------

  /// Import-module resolution for extern declarations: WASI-RA names map
  /// to the "wasi_ra" module, everything else to wasi_snapshot_preview1.
  static std::string import_module_for(const std::string& name) {
    return name.rfind("wasi_ra_", 0) == 0 ? "wasi_ra" : "wasi_snapshot_preview1";
  }

  void collect_signatures() {
    // Extern (host import) declarations must precede all definitions so
    // their function indices come first (Wasm's imports-first index space).
    while (match(Tok::KwExtern)) {
      FuncInfo info;
      info.ret = parse_type();
      const std::string name = expect(Tok::Ident, "identifier").text;
      expect(Tok::LParen, "(");
      std::vector<ValType> wasm_params;
      if (!check(Tok::RParen)) {
        do {
          const Ty pt = parse_type();
          if (check(Tok::Ident)) advance();  // parameter name optional
          info.params.push_back(pt);
          wasm_params.push_back(val_type(pt));
        } while (match(Tok::Comma));
      }
      expect(Tok::RParen, ")");
      expect(Tok::Semi, ";");
      std::vector<ValType> results;
      if (info.ret != Ty::Void) results.push_back(val_type(info.ret));
      info.index = builder_.import_function(import_module_for(name), name,
                                            {wasm_params, results});
      funcs_[name] = std::move(info);
    }
    while (!check(Tok::End)) {
      const Ty type = parse_type();
      const std::string name = expect(Tok::Ident, "identifier").text;
      if (match(Tok::LParen)) {
        FuncInfo info;
        info.ret = type;
        std::vector<ValType> wasm_params;
        if (!check(Tok::RParen)) {
          do {
            const Ty pt = parse_type();
            expect(Tok::Ident, "parameter name");
            info.params.push_back(pt);
            wasm_params.push_back(val_type(pt));
          } while (match(Tok::Comma));
        }
        expect(Tok::RParen, ")");
        std::vector<ValType> results;
        if (type != Ty::Void) results.push_back(val_type(type));
        info.index = builder_.add_function({wasm_params, results});
        builder_.export_function(name, info.index);
        if (funcs_.contains(name)) fail("duplicate function " + name, line());
        funcs_[name] = std::move(info);
        skip_braced_block();
      } else {
        // Global declaration.
        GlobalInfo info;
        info.type = type;
        if (match(Tok::Assign)) {
          const Token& init = advance();
          if (type == Ty::F64) {
            const double v = init.kind == Tok::FloatLit
                                 ? init.float_value
                                 : static_cast<double>(init.int_value);
            info.index = builder_.add_global_f64(true, v);
          } else if (init.kind == Tok::IntLit) {
            info.index = builder_.add_global(val_type(type), true,
                                             static_cast<std::int64_t>(init.int_value));
          } else {
            fail("global initialiser must be a constant literal", init.line);
          }
        } else {
          info.index = type == Ty::F64 ? builder_.add_global_f64(true, 0)
                                       : builder_.add_global(val_type(type), true, 0);
        }
        expect(Tok::Semi, ";");
        globals_[name] = info;
      }
    }
  }

  void skip_braced_block() {
    expect(Tok::LBrace, "{");
    int depth = 1;
    while (depth > 0) {
      const Tok k = advance().kind;
      if (k == Tok::LBrace) ++depth;
      if (k == Tok::RBrace) --depth;
      if (k == Tok::End) fail("unterminated function body", line());
    }
  }

  // -- pass 2: code generation --------------------------------------------------

  void compile_program() {
    while (match(Tok::KwExtern)) {  // skip extern declarations in pass 2
      while (!match(Tok::Semi)) advance();
    }
    while (!check(Tok::End)) {
      const Ty type = parse_type();
      const std::string name = expect(Tok::Ident, "identifier").text;
      if (match(Tok::LParen)) {
        compile_function(name, type);
      } else {
        // Global; already registered in pass 1.
        while (!match(Tok::Semi)) advance();
      }
    }
  }

  struct LoopContext {
    std::uint32_t break_depth;     // block depth of the exit block
    std::uint32_t continue_depth;  // block depth of the continue target
  };

  void compile_function(const std::string& name, Ty /*ret*/) {
    current_ = &funcs_.at(name);
    scopes_.clear();
    scopes_.emplace_back();
    local_types_.clear();
    next_local_ = 0;
    scratch_.clear();
    scratch2_.clear();
    emitter_ = CodeEmitter{};
    block_depth_ = 0;
    loops_.clear();

    // Parameters occupy the first local slots.
    std::size_t param_i = 0;
    if (!check(Tok::RParen)) {
      do {
        parse_type();
        const std::string pname = expect(Tok::Ident, "parameter name").text;
        scopes_.back()[pname] = LocalInfo{next_local_++, current_->params[param_i++]};
      } while (match(Tok::Comma));
    }
    expect(Tok::RParen, ")");

    expect(Tok::LBrace, "{");
    while (!check(Tok::RBrace)) compile_statement();
    expect(Tok::RBrace, "}");

    // Falling off the end of a non-void function traps (C UB surfaced as a
    // sandbox trap); for void functions the implicit end suffices.
    if (current_->ret != Ty::Void) emitter_.op(ops::kUnreachable);

    builder_.set_locals(current_->index, local_types_);
    builder_.set_body(current_->index, emitter_.bytes());
  }

  std::uint32_t new_local(Ty type) {
    local_types_.push_back(val_type(type));
    return next_local_++;
  }

  /// Per-function scratch locals for compound assignment / alloc sequences.
  std::uint32_t scratch(ValType vt) {
    auto it = scratch_.find(vt);
    if (it != scratch_.end()) return it->second;
    local_types_.push_back(vt);
    const std::uint32_t idx = next_local_++;
    scratch_[vt] = idx;
    return idx;
  }
  std::uint32_t scratch2(ValType vt) {
    auto it = scratch2_.find(vt);
    if (it != scratch2_.end()) return it->second;
    local_types_.push_back(vt);
    const std::uint32_t idx = next_local_++;
    scratch2_[vt] = idx;
    return idx;
  }

  const LocalInfo* find_local(const std::string& name) const {
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
      const auto found = it->find(name);
      if (found != it->end()) return &found->second;
    }
    return nullptr;
  }

  // -- statements ---------------------------------------------------------------

  void compile_statement() {
    if (match(Tok::LBrace)) {
      scopes_.emplace_back();
      while (!check(Tok::RBrace)) compile_statement();
      expect(Tok::RBrace, "}");
      scopes_.pop_back();
      return;
    }
    if (at_type_keyword()) {
      compile_local_decl();
      return;
    }
    if (match(Tok::KwIf)) {
      compile_if();
      return;
    }
    if (match(Tok::KwWhile)) {
      compile_while();
      return;
    }
    if (match(Tok::KwFor)) {
      compile_for();
      return;
    }
    if (match(Tok::KwReturn)) {
      if (current_->ret == Ty::Void) {
        expect(Tok::Semi, ";");
        emitter_.op(ops::kReturn);
        return;
      }
      const Ty ty = compile_expression();
      convert(ty, current_->ret);
      expect(Tok::Semi, ";");
      emitter_.op(ops::kReturn);
      return;
    }
    if (match(Tok::KwBreak)) {
      expect(Tok::Semi, ";");
      if (loops_.empty()) fail("break outside loop", line());
      emitter_.br(block_depth_ - loops_.back().break_depth);
      return;
    }
    if (match(Tok::KwContinue)) {
      expect(Tok::Semi, ";");
      if (loops_.empty()) fail("continue outside loop", line());
      emitter_.br(block_depth_ - loops_.back().continue_depth);
      return;
    }
    if (match(Tok::Semi)) return;  // empty statement
    // Expression statement: discard any produced value.
    const Ty ty = compile_expression();
    if (ty != Ty::Void) emitter_.op(ops::kDrop);
    expect(Tok::Semi, ";");
  }

  void compile_local_decl() {
    const Ty type = parse_type();
    if (type == Ty::Void) fail("void local", line());
    const std::string name = expect(Tok::Ident, "local name").text;
    const std::uint32_t idx = new_local(type);
    if (match(Tok::Assign)) {
      const Ty vt = compile_expression();
      convert(vt, type);
      emitter_.local_set(idx);
    }
    scopes_.back()[name] = LocalInfo{idx, type};
    expect(Tok::Semi, ";");
  }

  void compile_condition() {
    expect(Tok::LParen, "(");
    const Ty ty = compile_expression();
    to_bool(ty);
    expect(Tok::RParen, ")");
  }

  void compile_if() {
    compile_condition();
    emitter_.if_();
    ++block_depth_;
    compile_statement();
    if (match(Tok::KwElse)) {
      emitter_.else_();
      compile_statement();
    }
    emitter_.end();
    --block_depth_;
  }

  void compile_while() {
    emitter_.block();  // exit
    ++block_depth_;
    const std::uint32_t exit_depth = block_depth_;
    emitter_.loop();  // top
    ++block_depth_;
    const std::uint32_t top_depth = block_depth_;
    compile_condition();
    emitter_.op(ops::kI32Eqz).br_if(block_depth_ - exit_depth);
    loops_.push_back(LoopContext{exit_depth, top_depth});
    compile_statement();
    loops_.pop_back();
    emitter_.br(block_depth_ - top_depth);
    emitter_.end();  // loop
    --block_depth_;
    emitter_.end();  // exit block
    --block_depth_;
  }

  void compile_for() {
    expect(Tok::LParen, "(");
    scopes_.emplace_back();
    // init
    if (!check(Tok::Semi)) {
      if (at_type_keyword()) {
        compile_local_decl();  // consumes ';'
      } else {
        const Ty ty = compile_expression();
        if (ty != Ty::Void) emitter_.op(ops::kDrop);
        expect(Tok::Semi, ";");
      }
    } else {
      expect(Tok::Semi, ";");
    }

    emitter_.block();  // exit
    ++block_depth_;
    const std::uint32_t exit_depth = block_depth_;
    emitter_.loop();  // top
    ++block_depth_;
    const std::uint32_t top_depth = block_depth_;

    // condition (empty == true)
    if (!check(Tok::Semi)) {
      const Ty ty = compile_expression();
      to_bool(ty);
      emitter_.op(ops::kI32Eqz).br_if(block_depth_ - exit_depth);
    }
    expect(Tok::Semi, ";");

    // increment: captured as tokens, emitted after the body.
    const std::size_t inc_start = pos_;
    int paren = 0;
    while (paren > 0 || !check(Tok::RParen)) {
      if (check(Tok::LParen)) ++paren;
      if (check(Tok::RParen)) --paren;
      if (check(Tok::End)) fail("unterminated for header", line());
      ++pos_;
    }
    const std::size_t inc_end = pos_;
    expect(Tok::RParen, ")");

    // continue lands on a block wrapping the body, so the increment runs.
    emitter_.block();  // continue target
    ++block_depth_;
    const std::uint32_t cont_depth = block_depth_;
    loops_.push_back(LoopContext{exit_depth, cont_depth});
    compile_statement();
    loops_.pop_back();
    emitter_.end();
    --block_depth_;

    if (inc_end > inc_start) {
      const std::size_t after_body = pos_;
      pos_ = inc_start;
      const Ty ty = compile_expression();
      if (ty != Ty::Void) emitter_.op(ops::kDrop);
      if (pos_ != inc_end) fail("bad for-increment expression", line());
      pos_ = after_body;
    }
    emitter_.br(block_depth_ - top_depth);
    emitter_.end();  // loop
    --block_depth_;
    emitter_.end();  // exit
    --block_depth_;
    scopes_.pop_back();
  }

  // -- type plumbing -------------------------------------------------------------

  /// Emits a conversion of the stack top from `from` to `to`.
  void convert(Ty from, Ty to) {
    if (from == to) return;
    if (is_ptr(from) && (to == Ty::I32 || is_ptr(to))) return;  // ptrs are i32
    if (from == Ty::I32 && is_ptr(to)) return;
    switch (to) {
      case Ty::I32:
        if (from == Ty::I64) { emitter_.op(ops::kI32WrapI64); return; }
        if (from == Ty::F64) { emitter_.op(ops::kI32TruncF64S); return; }
        break;
      case Ty::I64:
        if (from == Ty::I32) { emitter_.op(ops::kI64ExtendI32S); return; }
        if (from == Ty::F64) { emitter_.op(ops::kI64TruncF64S); return; }
        break;
      case Ty::F64:
        if (from == Ty::I32) { emitter_.op(ops::kF64ConvertI32S); return; }
        if (from == Ty::I64) { emitter_.op(ops::kF64ConvertI64S); return; }
        break;
      default:
        break;
    }
    fail(std::string("cannot convert ") + ty_name(from) + " to " + ty_name(to), line());
  }

  /// Normalises the stack top to an i32 boolean.
  void to_bool(Ty ty) {
    switch (ty) {
      case Ty::I64:
        emitter_.i64_const(0).op(ops::kI64Ne);
        return;
      case Ty::F64:
        emitter_.f64_const(0).op(ops::kF64Ne);
        return;
      case Ty::Void:
        fail("void value used as condition", line());
      default:
        emitter_.i32_const(0).op(ops::kI32Ne);
        return;  // i32 / pointer
    }
  }

  /// Promotes binary operands to a common type. The right operand is on top
  /// of the stack; converting the *left* operand spills the right to a
  /// scratch local.
  Ty promote(Ty lhs, Ty rhs) {
    Ty common;
    if (lhs == Ty::F64 || rhs == Ty::F64) common = Ty::F64;
    else if (lhs == Ty::I64 || rhs == Ty::I64) common = Ty::I64;
    else common = Ty::I32;
    if (rhs != common) convert(rhs, common);
    if (lhs != common) {
      const std::uint32_t spill = scratch(val_type(common));
      emitter_.local_set(spill);
      convert(lhs, common);
      emitter_.local_get(spill);
    }
    return common;
  }

  // -- expressions -----------------------------------------------------------------

  struct Operand {
    enum class Kind { RValue, Var, Addr } kind = Kind::RValue;
    Ty type = Ty::Void;           // value type (element type for Addr)
    bool is_global = false;       // for Var
    std::uint32_t index = 0;      // local/global index for Var
    ops::Op load_op = ops::kI32Load;   // for Addr (char* uses byte access)
    ops::Op store_op = ops::kI32Store;
  };

  /// Forces the operand into a value on the stack.
  Ty materialize(const Operand& op) {
    switch (op.kind) {
      case Operand::Kind::RValue:
        return op.type;
      case Operand::Kind::Var:
        if (op.is_global) emitter_.global_get(op.index);
        else emitter_.local_get(op.index);
        return op.type;
      case Operand::Kind::Addr:
        emitter_.load(op.load_op, 0);
        return op.type;
    }
    return Ty::Void;
  }

  Ty compile_expression() { return compile_assignment(); }

  Ty compile_assignment() {
    const std::size_t save = pos_;
    Operand lhs = compile_unary();
    const Tok k = peek().kind;
    const bool is_assign = k == Tok::Assign || k == Tok::PlusAssign ||
                           k == Tok::MinusAssign || k == Tok::StarAssign ||
                           k == Tok::SlashAssign;
    if (!is_assign) {
      // Not an assignment: materialize and continue with binary operators.
      const Ty ty = materialize(lhs);
      return compile_binary_rest(ty, 0);
    }
    if (lhs.kind == Operand::Kind::RValue) fail("assignment to rvalue", line());
    advance();  // consume the operator
    (void)save;

    if (lhs.kind == Operand::Kind::Var) {
      if (k != Tok::Assign) {
        // x op= v  =>  x = x op v
        if (lhs.is_global) emitter_.global_get(lhs.index);
        else emitter_.local_get(lhs.index);
        const Ty rt = compile_assignment();
        const Ty common = promote(lhs.type, rt);
        emit_arith(k, common);
        convert(common, lhs.type);
      } else {
        const Ty rt = compile_assignment();
        convert(rt, lhs.type);
      }
      if (lhs.is_global) emitter_.global_set(lhs.index);
      else emitter_.local_set(lhs.index);
      return Ty::Void;
    }

    // Addr lvalue: address is on the stack. A *fresh* local holds the
    // address: the RHS may itself use the shared scratch slots.
    if (k != Tok::Assign) {
      const std::uint32_t addr_spill = new_local(Ty::I32);
      emitter_.local_tee(addr_spill);
      emitter_.load(lhs.load_op, 0);
      const Ty rt = compile_assignment();
      const Ty common = promote(lhs.type, rt);
      emit_arith(k, common);
      convert(common, lhs.type);
      const std::uint32_t val_spill = new_local(lhs.type);
      emitter_.local_set(val_spill);
      emitter_.local_get(addr_spill);
      emitter_.local_get(val_spill);
      emitter_.store(lhs.store_op, 0);
    } else {
      const Ty rt = compile_assignment();
      convert(rt, lhs.type);
      emitter_.store(lhs.store_op, 0);
    }
    return Ty::Void;
  }

  void emit_arith(Tok op, Ty ty) {
    switch (op) {
      case Tok::PlusAssign: emit_binop(Tok::Plus, ty); return;
      case Tok::MinusAssign: emit_binop(Tok::Minus, ty); return;
      case Tok::StarAssign: emit_binop(Tok::Star, ty); return;
      case Tok::SlashAssign: emit_binop(Tok::Slash, ty); return;
      default: fail("bad compound assignment", line());
    }
  }

  static int precedence(Tok k) {
    switch (k) {
      case Tok::OrOr: return 1;
      case Tok::AndAnd: return 2;
      case Tok::Pipe: return 3;
      case Tok::Caret: return 4;
      case Tok::Amp: return 5;
      case Tok::EqEq: case Tok::NotEq: return 6;
      case Tok::Lt: case Tok::Gt: case Tok::Le: case Tok::Ge: return 7;
      case Tok::Shl: case Tok::Shr: return 8;
      case Tok::Plus: case Tok::Minus: return 9;
      case Tok::Star: case Tok::Slash: case Tok::Percent: return 10;
      default: return -1;
    }
  }

  Ty compile_binary_rest(Ty lhs_ty, int min_prec) {
    for (;;) {
      const Tok op = peek().kind;
      const int prec = precedence(op);
      if (prec < min_prec || prec < 0) return lhs_ty;
      advance();

      if (op == Tok::AndAnd || op == Tok::OrOr) {
        to_bool(lhs_ty);
        emitter_.if_(0x7f);
        ++block_depth_;
        if (op == Tok::AndAnd) {
          const Ty rhs = compile_operand(prec + 1);
          to_bool(rhs);
          emitter_.else_();
          emitter_.i32_const(0);
        } else {
          emitter_.i32_const(1);
          emitter_.else_();
          const Ty rhs = compile_operand(prec + 1);
          to_bool(rhs);
        }
        emitter_.end();
        --block_depth_;
        lhs_ty = Ty::I32;
        continue;
      }

      const Ty rhs_ty = compile_operand(prec + 1);
      const Ty common = promote(lhs_ty, rhs_ty);
      lhs_ty = emit_binop(op, common);
    }
  }

  /// Parses and materializes one operand at the given precedence floor.
  Ty compile_operand(int min_prec) {
    const Ty ty = materialize(compile_unary());
    return compile_binary_rest(ty, min_prec);
  }

  /// Emits the operator; returns the result type.
  Ty emit_binop(Tok op, Ty ty) {
    const bool f = ty == Ty::F64;
    const bool l = ty == Ty::I64;
    switch (op) {
      case Tok::Plus: emitter_.op(f ? ops::kF64Add : l ? ops::kI64Add : ops::kI32Add); return ty;
      case Tok::Minus: emitter_.op(f ? ops::kF64Sub : l ? ops::kI64Sub : ops::kI32Sub); return ty;
      case Tok::Star: emitter_.op(f ? ops::kF64Mul : l ? ops::kI64Mul : ops::kI32Mul); return ty;
      case Tok::Slash: emitter_.op(f ? ops::kF64Div : l ? ops::kI64DivS : ops::kI32DivS); return ty;
      case Tok::Percent:
        if (f) fail("%% on double", line());
        emitter_.op(l ? ops::kI64RemS : ops::kI32RemS);
        return ty;
      case Tok::Amp:
        if (f) fail("& on double", line());
        emitter_.op(l ? ops::kI64And : ops::kI32And);
        return ty;
      case Tok::Pipe:
        if (f) fail("| on double", line());
        emitter_.op(l ? ops::kI64Or : ops::kI32Or);
        return ty;
      case Tok::Caret:
        if (f) fail("^ on double", line());
        emitter_.op(l ? ops::kI64Xor : ops::kI32Xor);
        return ty;
      case Tok::Shl:
        if (f) fail("<< on double", line());
        emitter_.op(l ? ops::kI64Shl : ops::kI32Shl);
        return ty;
      case Tok::Shr:
        if (f) fail(">> on double", line());
        emitter_.op(l ? ops::kI64ShrS : ops::kI32ShrS);
        return ty;
      case Tok::EqEq: emitter_.op(f ? ops::kF64Eq : l ? ops::kI64Eq : ops::kI32Eq); return Ty::I32;
      case Tok::NotEq: emitter_.op(f ? ops::kF64Ne : l ? ops::kI64Ne : ops::kI32Ne); return Ty::I32;
      case Tok::Lt: emitter_.op(f ? ops::kF64Lt : l ? ops::kI64LtS : ops::kI32LtS); return Ty::I32;
      case Tok::Gt: emitter_.op(f ? ops::kF64Gt : l ? ops::kI64GtS : ops::kI32GtS); return Ty::I32;
      case Tok::Le: emitter_.op(f ? ops::kF64Le : l ? ops::kI64LeS : ops::kI32LeS); return Ty::I32;
      case Tok::Ge: emitter_.op(f ? ops::kF64Ge : l ? ops::kI64GeS : ops::kI32GeS); return Ty::I32;
      default: fail("bad binary operator", line());
    }
  }

  Operand compile_unary() {
    const Token& t = peek();
    switch (t.kind) {
      case Tok::IntLit: {
        advance();
        if (t.int_value <= 0x7fffffffULL) {
          emitter_.i32_const(static_cast<std::int32_t>(t.int_value));
          return Operand{Operand::Kind::RValue, Ty::I32, false, 0};
        }
        emitter_.i64_const(static_cast<std::int64_t>(t.int_value));
        return Operand{Operand::Kind::RValue, Ty::I64, false, 0};
      }
      case Tok::FloatLit:
        advance();
        emitter_.f64_const(t.float_value);
        return Operand{Operand::Kind::RValue, Ty::F64, false, 0};
      case Tok::Minus: {
        advance();
        const Ty ty = materialize(compile_unary());
        switch (ty) {
          case Ty::F64: emitter_.op(ops::kF64Neg); break;
          case Ty::I64: {
            const std::uint32_t spill = scratch(ValType::I64);
            emitter_.local_set(spill).i64_const(0).local_get(spill).op(ops::kI64Sub);
            break;
          }
          default: {
            const std::uint32_t spill = scratch(ValType::I32);
            emitter_.local_set(spill).i32_const(0).local_get(spill).op(ops::kI32Sub);
            break;
          }
        }
        return Operand{Operand::Kind::RValue, ty, false, 0};
      }
      case Tok::Not: {
        advance();
        const Ty ty = materialize(compile_unary());
        to_bool(ty);
        emitter_.op(ops::kI32Eqz);
        return Operand{Operand::Kind::RValue, Ty::I32, false, 0};
      }
      case Tok::Tilde: {
        advance();
        const Ty ty = materialize(compile_unary());
        if (ty == Ty::I64)
          emitter_.i64_const(-1).op(ops::kI64Xor);
        else
          emitter_.i32_const(-1).op(ops::kI32Xor);
        return Operand{Operand::Kind::RValue, ty, false, 0};
      }
      case Tok::LParen: {
        // Cast or parenthesised expression.
        if (peek(1).kind == Tok::KwInt || peek(1).kind == Tok::KwLong ||
            peek(1).kind == Tok::KwDouble || peek(1).kind == Tok::KwChar) {
          advance();
          const Ty target = parse_type();
          expect(Tok::RParen, ")");
          const Ty from = materialize(compile_unary());
          convert(from, is_ptr(target) ? Ty::I32 : target);
          return Operand{Operand::Kind::RValue, target, false, 0};
        }
        advance();
        const Ty ty = compile_expression();
        expect(Tok::RParen, ")");
        return Operand{Operand::Kind::RValue, ty, false, 0};
      }
      case Tok::PlusPlus:
      case Tok::MinusMinus: {
        advance();
        const std::string name = expect(Tok::Ident, "identifier").text;
        emit_incdec(name, t.kind == Tok::PlusPlus);
        return Operand{Operand::Kind::RValue, Ty::Void, false, 0};
      }
      case Tok::Ident:
        return compile_postfix();
      default:
        fail("unexpected token in expression", t.line);
    }
  }

  void emit_incdec(const std::string& name, bool inc) {
    const LocalInfo* local = find_local(name);
    if (local != nullptr) {
      emitter_.local_get(local->index);
      emit_one(local->type, inc);
      emitter_.local_set(local->index);
      return;
    }
    const auto g = globals_.find(name);
    if (g == globals_.end()) fail("unknown variable " + name, line());
    emitter_.global_get(g->second.index);
    emit_one(g->second.type, inc);
    emitter_.global_set(g->second.index);
  }

  void emit_one(Ty ty, bool inc) {
    switch (ty) {
      case Ty::F64:
        emitter_.f64_const(1).op(inc ? ops::kF64Add : ops::kF64Sub);
        break;
      case Ty::I64:
        emitter_.i64_const(1).op(inc ? ops::kI64Add : ops::kI64Sub);
        break;
      default:
        emitter_.i32_const(1).op(inc ? ops::kI32Add : ops::kI32Sub);
        break;
    }
  }

  Operand compile_postfix() {
    const std::string name = expect(Tok::Ident, "identifier").text;

    if (check(Tok::LParen)) return compile_call(name);

    // Variable reference.
    Operand var;
    const LocalInfo* local = find_local(name);
    if (local != nullptr) {
      var = Operand{Operand::Kind::Var, local->type, false, local->index};
    } else {
      const auto g = globals_.find(name);
      if (g == globals_.end()) fail("unknown identifier " + name, line());
      var = Operand{Operand::Kind::Var, g->second.type, true, g->second.index};
    }

    if (check(Tok::PlusPlus) || check(Tok::MinusMinus)) {
      const bool inc = advance().kind == Tok::PlusPlus;
      emit_incdec(name, inc);
      return Operand{Operand::Kind::RValue, Ty::Void, false, 0};
    }

    if (match(Tok::LBracket)) {
      if (!is_ptr(var.type)) fail(name + " is not a pointer", line());
      const Ty elem = elem_type(var.type);
      const int size = elem_size(var.type);
      materialize(var);  // base address
      const Ty idx_ty = compile_expression();
      convert(idx_ty, Ty::I32);
      if (size > 1) emitter_.i32_const(size).op(ops::kI32Mul);
      emitter_.op(ops::kI32Add);
      expect(Tok::RBracket, "]");
      ops::Op lop, sop;
      switch (var.type) {
        case Ty::PtrChar: lop = ops::kI32Load8U; sop = ops::kI32Store8; break;
        case Ty::PtrLong: lop = ops::kI64Load; sop = ops::kI64Store; break;
        case Ty::PtrDouble: lop = ops::kF64Load; sop = ops::kF64Store; break;
        default: lop = ops::kI32Load; sop = ops::kI32Store; break;
      }
      return Operand{Operand::Kind::Addr, elem, false, 0, lop, sop};
    }

    return var;
  }

  Operand compile_call(const std::string& name) {
    expect(Tok::LParen, "(");

    // Builtins.
    if (name == "sqrt" || name == "fabs" || name == "floor") {
      const Ty ty = compile_expression();
      convert(ty, Ty::F64);
      expect(Tok::RParen, ")");
      emitter_.op(name == "sqrt" ? ops::kF64Sqrt
                                 : name == "fabs" ? ops::kF64Abs : ops::kF64Floor);
      return Operand{Operand::Kind::RValue, Ty::F64, false, 0};
    }
    if (name == "alloc") {
      const Ty ty = compile_expression();
      convert(ty, Ty::I32);
      expect(Tok::RParen, ")");
      // old = heap_ptr; heap_ptr = old + ((n + 7) & ~7); yield old.
      const std::uint32_t n = scratch(ValType::I32);
      const std::uint32_t old = scratch2(ValType::I32);
      emitter_.local_set(n);
      emitter_.global_get(heap_ptr_global_).local_tee(old);
      emitter_.local_get(n).i32_const(7).op(ops::kI32Add).i32_const(-8).op(ops::kI32And);
      emitter_.op(ops::kI32Add).global_set(heap_ptr_global_);
      emitter_.local_get(old);
      return Operand{Operand::Kind::RValue, Ty::I32, false, 0};
    }

    const auto it = funcs_.find(name);
    if (it == funcs_.end()) fail("unknown function " + name, line());
    const FuncInfo& fn = it->second;
    std::size_t arg_i = 0;
    if (!check(Tok::RParen)) {
      do {
        if (arg_i >= fn.params.size()) fail("too many arguments to " + name, line());
        const Ty ty = compile_expression();
        const Ty target = fn.params[arg_i];
        convert(ty, is_ptr(target) ? Ty::I32 : target);
        ++arg_i;
      } while (match(Tok::Comma));
    }
    if (arg_i != fn.params.size()) fail("too few arguments to " + name, line());
    expect(Tok::RParen, ")");
    emitter_.call(fn.index);
    return Operand{Operand::Kind::RValue, fn.ret, false, 0};
  }

  std::vector<Token> tokens_;
  CompileOptions options_;
  std::size_t pos_ = 0;

  ModuleBuilder builder_;
  std::map<std::string, FuncInfo> funcs_;
  std::map<std::string, GlobalInfo> globals_;
  std::uint32_t heap_ptr_global_ = 0;

  // per-function state
  FuncInfo* current_ = nullptr;
  CodeEmitter emitter_;
  std::vector<std::map<std::string, LocalInfo>> scopes_;
  std::vector<ValType> local_types_;
  std::uint32_t next_local_ = 0;
  std::map<ValType, std::uint32_t> scratch_;
  std::map<ValType, std::uint32_t> scratch2_;
  std::uint32_t block_depth_ = 0;
  std::vector<LoopContext> loops_;
};

}  // namespace

Result<Bytes> compile(std::string_view source, CompileOptions options) {
  auto tokens = tokenize(source);
  if (!tokens.ok()) return Result<Bytes>::err(tokens.error());
  try {
    Compiler compiler(std::move(*tokens), options);
    return compiler.run();
  } catch (const CompileError& e) {
    return Result<Bytes>::err(e.message);
  }
}

}  // namespace watz::wcc
