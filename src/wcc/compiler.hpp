// wcc: a single-pass compiler from a C subset to WebAssembly.
//
// The paper builds its guest workloads with WASI-SDK (Clang 11 targeting
// wasm32-wasi); no such toolchain exists in this offline environment, so
// wcc fills the role for every Wasm benchmark and example in this repo.
//
// Supported language:
//   types        int (i32), long (i64), double (f64), char (byte, loads as
//                i32), pointers thereof (int*, long*, double*, char*), void
//   declarations globals with constant initialisers; block-scoped locals
//   statements   if/else, while, for, return, break, continue, blocks,
//                expression statements
//   expressions  full C operator set minus ?:, comma and address-of;
//                assignment (=, +=, -=, *=, /=), ++/-- (statement value),
//                array indexing on pointers, casts, calls
//   builtins     alloc(n)   bump allocator over linear memory (no free)
//                sqrt(x), fabs(x), floor(x)   map to Wasm f64 opcodes
//
// Every function is exported under its own name; memory is exported as
// "memory". Strings and structs are out of scope (workloads use numeric
// buffers, as the PolyBench/minikv/ANN sources do).
#pragma once

#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace watz::wcc {

struct DataSegment {
  std::uint32_t offset = 0;
  Bytes data;
};

struct CompileOptions {
  std::uint32_t memory_pages = 256;   ///< 16 MiB default guest memory
  std::uint32_t heap_base = 1024;     ///< where alloc() starts handing out
  /// Initialised memory regions (wcc has no string literals; embedders use
  /// these for baked-in constants — notably the verifier identity, which
  /// must be covered by the code measurement).
  std::vector<DataSegment> data;
};

/// Compiles `source` into a Wasm binary module.
Result<Bytes> compile(std::string_view source, CompileOptions options = {});

}  // namespace watz::wcc
