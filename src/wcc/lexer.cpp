#include "wcc/lexer.hpp"

#include <cctype>
#include <map>

namespace watz::wcc {

namespace {

const std::map<std::string, Tok, std::less<>>& keywords() {
  static const std::map<std::string, Tok, std::less<>> kw = {
      {"int", Tok::KwInt},       {"long", Tok::KwLong},   {"double", Tok::KwDouble},
      {"char", Tok::KwChar},     {"void", Tok::KwVoid},   {"if", Tok::KwIf},
      {"else", Tok::KwElse},     {"while", Tok::KwWhile}, {"for", Tok::KwFor},
      {"return", Tok::KwReturn}, {"break", Tok::KwBreak}, {"continue", Tok::KwContinue},
      {"extern", Tok::KwExtern},
  };
  return kw;
}

}  // namespace

const char* tok_name(Tok t) {
  switch (t) {
    case Tok::End: return "<eof>";
    case Tok::Ident: return "identifier";
    case Tok::IntLit: return "integer literal";
    case Tok::FloatLit: return "float literal";
    case Tok::LParen: return "(";
    case Tok::RParen: return ")";
    case Tok::LBrace: return "{";
    case Tok::RBrace: return "}";
    case Tok::LBracket: return "[";
    case Tok::RBracket: return "]";
    case Tok::Semi: return ";";
    case Tok::Comma: return ",";
    case Tok::Assign: return "=";
    default: return "token";
  }
}

Result<std::vector<Token>> tokenize(std::string_view src) {
  std::vector<Token> out;
  std::size_t i = 0;
  int line = 1;
  const std::size_t n = src.size();

  auto push = [&](Tok kind) {
    Token t;
    t.kind = kind;
    t.line = line;
    out.push_back(std::move(t));
  };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // comments
    if (c == '/' && i + 1 < n && src[i + 1] == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= n)
        return Result<std::vector<Token>>::err("wcc: unterminated comment");
      i += 2;
      continue;
    }
    // identifiers / keywords
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t start = i;
      while (i < n && (std::isalnum(static_cast<unsigned char>(src[i])) || src[i] == '_'))
        ++i;
      const std::string_view word = src.substr(start, i - start);
      const auto kw = keywords().find(word);
      if (kw != keywords().end()) {
        push(kw->second);
      } else {
        Token t;
        t.kind = Tok::Ident;
        t.text = std::string(word);
        t.line = line;
        out.push_back(std::move(t));
      }
      continue;
    }
    // numbers
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t start = i;
      bool is_float = false;
      bool is_hex = c == '0' && i + 1 < n && (src[i + 1] == 'x' || src[i + 1] == 'X');
      if (is_hex) {
        i += 2;
        while (i < n && std::isxdigit(static_cast<unsigned char>(src[i]))) ++i;
      } else {
        while (i < n && std::isdigit(static_cast<unsigned char>(src[i]))) ++i;
        if (i < n && src[i] == '.') {
          is_float = true;
          ++i;
          while (i < n && std::isdigit(static_cast<unsigned char>(src[i]))) ++i;
        }
        if (i < n && (src[i] == 'e' || src[i] == 'E')) {
          is_float = true;
          ++i;
          if (i < n && (src[i] == '+' || src[i] == '-')) ++i;
          while (i < n && std::isdigit(static_cast<unsigned char>(src[i]))) ++i;
        }
      }
      const std::string text(src.substr(start, i - start));
      Token t;
      t.line = line;
      if (is_float) {
        t.kind = Tok::FloatLit;
        t.float_value = std::stod(text);
      } else {
        t.kind = Tok::IntLit;
        t.int_value = std::stoull(text, nullptr, 0);
      }
      out.push_back(std::move(t));
      continue;
    }
    // operators
    auto two = [&](char next) { return i + 1 < n && src[i + 1] == next; };
    switch (c) {
      case '(': push(Tok::LParen); ++i; break;
      case ')': push(Tok::RParen); ++i; break;
      case '{': push(Tok::LBrace); ++i; break;
      case '}': push(Tok::RBrace); ++i; break;
      case '[': push(Tok::LBracket); ++i; break;
      case ']': push(Tok::RBracket); ++i; break;
      case ';': push(Tok::Semi); ++i; break;
      case ',': push(Tok::Comma); ++i; break;
      case '+':
        if (two('=')) { push(Tok::PlusAssign); i += 2; }
        else if (two('+')) { push(Tok::PlusPlus); i += 2; }
        else { push(Tok::Plus); ++i; }
        break;
      case '-':
        if (two('=')) { push(Tok::MinusAssign); i += 2; }
        else if (two('-')) { push(Tok::MinusMinus); i += 2; }
        else { push(Tok::Minus); ++i; }
        break;
      case '*':
        if (two('=')) { push(Tok::StarAssign); i += 2; }
        else { push(Tok::Star); ++i; }
        break;
      case '/':
        if (two('=')) { push(Tok::SlashAssign); i += 2; }
        else { push(Tok::Slash); ++i; }
        break;
      case '%': push(Tok::Percent); ++i; break;
      case '<':
        if (two('=')) { push(Tok::Le); i += 2; }
        else if (two('<')) { push(Tok::Shl); i += 2; }
        else { push(Tok::Lt); ++i; }
        break;
      case '>':
        if (two('=')) { push(Tok::Ge); i += 2; }
        else if (two('>')) { push(Tok::Shr); i += 2; }
        else { push(Tok::Gt); ++i; }
        break;
      case '=':
        if (two('=')) { push(Tok::EqEq); i += 2; }
        else { push(Tok::Assign); ++i; }
        break;
      case '!':
        if (two('=')) { push(Tok::NotEq); i += 2; }
        else { push(Tok::Not); ++i; }
        break;
      case '&':
        if (two('&')) { push(Tok::AndAnd); i += 2; }
        else { push(Tok::Amp); ++i; }
        break;
      case '|':
        if (two('|')) { push(Tok::OrOr); i += 2; }
        else { push(Tok::Pipe); ++i; }
        break;
      case '^': push(Tok::Caret); ++i; break;
      case '~': push(Tok::Tilde); ++i; break;
      default:
        return Result<std::vector<Token>>::err("wcc: unexpected character '" +
                                               std::string(1, c) + "' at line " +
                                               std::to_string(line));
    }
  }
  push(Tok::End);
  return out;
}

}  // namespace watz::wcc
