#include "optee/shared_memory.hpp"

namespace watz::optee {

SharedBuffer& SharedBuffer::operator=(SharedBuffer&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr) pool_->release(data_->size());
    pool_ = other.pool_;
    data_ = std::move(other.data_);
    other.pool_ = nullptr;
  }
  return *this;
}

SharedBuffer::~SharedBuffer() {
  if (pool_ != nullptr) pool_->release(data_->size());
}

Result<SharedBuffer> SharedMemoryPool::allocate(std::size_t size) {
  if (size == 0) return Result<SharedBuffer>::err("shm: zero-sized buffer");
  if (in_use_ + size > cap_)
    return Result<SharedBuffer>::err(
        "shm: shared memory cap exceeded (OP-TEE limit, see DESIGN.md)");
  SharedBuffer buf;
  buf.pool_ = this;
  buf.data_ = std::make_unique<Bytes>(size, 0);
  in_use_ += size;
  return buf;
}

}  // namespace watz::optee
