// World-shared memory buffers.
//
// OP-TEE TAs cannot touch normal-world memory directly; data crosses the
// boundary through registered shared buffers, and OP-TEE caps their total
// size. The paper raised that cap to 9 MB ("the largest value that would
// not break OP-TEE", SS V) — the same default ceiling applies here, and
// allocation failures reproduce the paper's operational constraint.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace watz::optee {

inline constexpr std::size_t kDefaultSharedMemoryCap = 9 * 1024 * 1024;

class SharedMemoryPool;

/// A handle to one shared buffer. Movable, returns its bytes to the pool on
/// destruction.
class SharedBuffer {
 public:
  SharedBuffer() = default;
  SharedBuffer(SharedBuffer&& other) noexcept { *this = std::move(other); }
  SharedBuffer& operator=(SharedBuffer&& other) noexcept;
  SharedBuffer(const SharedBuffer&) = delete;
  SharedBuffer& operator=(const SharedBuffer&) = delete;
  ~SharedBuffer();

  bool valid() const noexcept { return pool_ != nullptr; }
  std::size_t size() const noexcept { return data_ ? data_->size() : 0; }
  std::uint8_t* data() noexcept { return data_ ? data_->data() : nullptr; }
  const std::uint8_t* data() const noexcept { return data_ ? data_->data() : nullptr; }
  ByteView view() const noexcept { return data_ ? ByteView(*data_) : ByteView(); }

 private:
  friend class SharedMemoryPool;
  SharedMemoryPool* pool_ = nullptr;
  std::unique_ptr<Bytes> data_;
};

class SharedMemoryPool {
 public:
  explicit SharedMemoryPool(std::size_t cap = kDefaultSharedMemoryCap) : cap_(cap) {}

  /// Allocates a zeroed buffer; fails when the pool cap would be exceeded
  /// (the OP-TEE "increase the memory cap" pain point, SS V).
  Result<SharedBuffer> allocate(std::size_t size);

  std::size_t in_use() const noexcept { return in_use_; }
  std::size_t cap() const noexcept { return cap_; }

 private:
  friend class SharedBuffer;
  void release(std::size_t size) noexcept { in_use_ -= size; }

  std::size_t cap_;
  std::size_t in_use_ = 0;
};

}  // namespace watz::optee
