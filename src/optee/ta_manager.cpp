#include "optee/ta_manager.hpp"

#include "crypto/sha256.hpp"

namespace watz::optee {

namespace {

crypto::Sha256Digest ta_digest(const TaImage& image) {
  crypto::Sha256 hash;
  hash.update(ByteView(reinterpret_cast<const std::uint8_t*>(image.uuid.data()),
                       image.uuid.size()));
  hash.update(image.payload);
  return hash.finish();
}

}  // namespace

void sign_ta(TaImage& image, const crypto::Scalar32& vendor_priv) {
  image.signature = crypto::ecdsa_sign(vendor_priv, ta_digest(image)).encode();
}

Result<InstalledTa> TaManager::install(const TaImage& image) {
  if (is_installed(image.uuid))
    return Result<InstalledTa>::err("TA with UUID " + image.uuid +
                                    " already installed (impersonation guard)");
  auto sig = crypto::EcdsaSignature::decode(image.signature);
  if (!sig.ok())
    return Result<InstalledTa>::err("TA " + image.uuid + ": malformed signature");
  const auto digest = ta_digest(image);
  if (!crypto::ecdsa_verify(vendor_pub_, digest, *sig))
    return Result<InstalledTa>::err(
        "TA " + image.uuid +
        ": signature verification failed; OP-TEE refuses unsigned trusted applications");
  InstalledTa installed{image.uuid, digest};
  installed_.push_back(installed);
  return installed;
}

bool TaManager::is_installed(const std::string& uuid) const {
  for (const auto& ta : installed_)
    if (ta.uuid == uuid) return true;
  return false;
}

}  // namespace watz::optee
