// GlobalPlatform Internal Core API subset, as exposed by the simulated
// OP-TEE to trusted applications. Only the surface WaTZ's WASI adaptation
// layer needs is present (SS V: 45 WASI functions stubbed, the ones used by
// the benchmarks implemented on top of GP).
#pragma once

#include <cstdint>

namespace watz::optee {

enum class TeeResult : std::uint32_t {
  Success = 0x00000000,
  Generic = 0xFFFF0000,
  AccessDenied = 0xFFFF0001,
  OutOfMemory = 0xFFFF000C,
  BadParameters = 0xFFFF0006,
  NotSupported = 0xFFFF000A,
  SecurityViolation = 0xFFFF000F,
};

const char* tee_result_name(TeeResult r);

/// GP TEE_Time, extended with a nanoseconds field as the paper does
/// (SS VI-A: "We also extended the GP's type TEE_Time to measure our
/// experiments with a nanosecond precision").
struct TeeTime {
  std::uint32_t seconds = 0;
  std::uint32_t millis = 0;
  std::uint64_t nanos = 0;  ///< WaTZ extension: full ns-precision value

  static TeeTime from_ns(std::uint64_t ns) {
    TeeTime t;
    t.seconds = static_cast<std::uint32_t>(ns / 1'000'000'000ULL);
    t.millis = static_cast<std::uint32_t>((ns / 1'000'000ULL) % 1000);
    t.nanos = ns;
    return t;
  }
};

}  // namespace watz::optee
