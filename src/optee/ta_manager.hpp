// Trusted-application deployment policy.
//
// Stock OP-TEE only loads TAs signed with the vendor key (SS II: "OP-TEE
// requires every TA to be signed to be trusted and executable"). The paper
// identifies this as the impediment WaTZ removes for *Wasm* applications:
// the Wasm sandbox isolates them instead, so arbitrary third-party bytecode
// can run without holding the signing key. This manager enforces the
// native-TA policy; the WaTZ runtime (itself a signed TA) loads Wasm
// applications through its own measured path.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/ecdsa.hpp"

namespace watz::optee {

/// A native trusted application image, as shipped to the device.
struct TaImage {
  std::string uuid;   // e.g. "8aaaf200-2450-11e4-abe2-0002a5d5c51b"
  Bytes payload;      // the TA binary
  Bytes signature;    // vendor ECDSA over SHA-256(uuid || payload)
};

/// Signs a TA image (vendor release step).
void sign_ta(TaImage& image, const crypto::Scalar32& vendor_priv);

struct InstalledTa {
  std::string uuid;
  crypto::Sha256Digest measurement;
};

class TaManager {
 public:
  explicit TaManager(crypto::EcPoint vendor_pub) : vendor_pub_(std::move(vendor_pub)) {}

  /// Verifies the signature and installs; unsigned or tampered TAs are
  /// rejected (the OP-TEE security property WaTZ must preserve).
  Result<InstalledTa> install(const TaImage& image);

  /// Installing a second TA with the same UUID is rejected: the paper's
  /// SS VII notes UUID reuse enables impersonation of another TA's storage.
  bool is_installed(const std::string& uuid) const;

  const std::vector<InstalledTa>& installed() const noexcept { return installed_; }

 private:
  crypto::EcPoint vendor_pub_;
  std::vector<InstalledTa> installed_;
};

}  // namespace watz::optee
