// The trusted OS (OP-TEE 3.13 stand-in) running in the secure world.
//
// Owns: the secure heap (with the paper's 27 MB ceiling), the kernel-module
// registry (WaTZ adds its attestation service as one), the HUK subkey
// derivation rooted in the CAAM's secure-world MKVB, the supplicant RPC
// channel to the normal world, and the WaTZ kernel extensions (executable
// page allocation, nanosecond time passthrough).
#pragma once

#include <memory>
#include <string>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/hmac.hpp"
#include "hw/caam.hpp"
#include "hw/latency.hpp"
#include "obs/metrics.hpp"
#include "optee/gp_api.hpp"
#include "optee/shared_memory.hpp"
#include "tz/secure_boot.hpp"

namespace watz::optee {

inline constexpr std::size_t kDefaultSecureHeapCap = 27 * 1024 * 1024;

/// Services the secure world obtains from the normal world through the
/// TEE supplicant daemon (SS V: sockets and, with the paper's driver
/// extension, the normal-world monotonic clock).
class Supplicant {
 public:
  virtual ~Supplicant() = default;
  virtual std::uint64_t monotonic_time_ns() = 0;
  virtual Result<std::uint32_t> socket_connect(const std::string& host,
                                               std::uint16_t port) = 0;
  virtual Result<Bytes> socket_send_recv(std::uint32_t handle, ByteView message) = 0;
  virtual void socket_close(std::uint32_t handle) = 0;
};

/// A loadable trusted-kernel module (the WaTZ attestation service is one).
class KernelModule {
 public:
  virtual ~KernelModule() = default;
  virtual const char* name() const = 0;
};

/// A secure-heap allocation handle. `executable` marks pages obtained via
/// the WaTZ mprotect-style kernel extension.
class SecureAlloc {
 public:
  SecureAlloc() = default;
  SecureAlloc(SecureAlloc&&) noexcept;
  SecureAlloc& operator=(SecureAlloc&&) noexcept;
  SecureAlloc(const SecureAlloc&) = delete;
  SecureAlloc& operator=(const SecureAlloc&) = delete;
  ~SecureAlloc();

  bool valid() const noexcept { return os_ != nullptr; }
  bool executable() const noexcept { return executable_; }
  std::size_t size() const noexcept { return data_ ? data_->size() : 0; }
  std::uint8_t* data() noexcept { return data_ ? data_->data() : nullptr; }
  const std::uint8_t* data() const noexcept { return data_ ? data_->data() : nullptr; }
  ByteView view() const noexcept { return data_ ? ByteView(*data_) : ByteView(); }

 private:
  friend class TrustedOs;
  class TrustedOs* os_ = nullptr;
  std::unique_ptr<Bytes> data_;
  bool executable_ = false;
};

struct TrustedOsConfig {
  std::size_t secure_heap_cap = kDefaultSecureHeapCap;
  std::size_t shared_memory_cap = kDefaultSharedMemoryCap;
  /// WaTZ kernel extensions: executable pages + deterministic key
  /// derivation + ns time. Off == stock OP-TEE 3.13 behaviour.
  bool watz_extensions = true;
  std::string version = "WaTZ/1.0 (OP-TEE 3.13)";
};

class TrustedOs {
 public:
  /// Boots the trusted OS: runs the secure-boot chain first; a failed chain
  /// means no trusted OS (and no access to the root of trust).
  static Result<std::unique_ptr<TrustedOs>> boot(const hw::Caam& caam,
                                                 const hw::EfuseBank& fuses,
                                                 const crypto::EcPoint& vendor_pub,
                                                 const std::vector<tz::BootImage>& chain,
                                                 hw::LatencyModel latency,
                                                 TrustedOsConfig config = {});

  const TrustedOsConfig& config() const noexcept { return config_; }
  const tz::BootReport& boot_report() const noexcept { return boot_report_; }
  const hw::LatencyModel& latency() const noexcept { return latency_; }
  SharedMemoryPool& shared_memory() noexcept { return shm_; }

  // -- secure heap -----------------------------------------------------------

  /// TEE_Malloc equivalent; fails beyond the 27 MB secure-heap ceiling.
  Result<SecureAlloc> allocate(std::size_t size);

  /// WaTZ extension (SS V): allocate pages that may hold AOT-compiled code.
  /// Stock OP-TEE cannot change page protections, so without the extension
  /// this returns TEE_ERROR_NOT_SUPPORTED semantics.
  Result<SecureAlloc> allocate_executable(std::size_t size);

  /// Atomic so fleet-level stats collectors may sample it from outside the
  /// device's owning worker thread while apps launch and retire.
  std::size_t heap_in_use() const noexcept {
    return static_cast<std::size_t>(heap_in_use_.get());
  }

  /// The heap gauge itself, for linking into an obs::Registry (the
  /// trusted OS stays the owner).
  const obs::Gauge& heap_gauge() const noexcept { return heap_in_use_; }

  /// Secure-heap accounting for native-tier code pages. The JIT maps its
  /// W^X images directly (they need PROT_EXEC, not SecureAlloc's byte
  /// store), but the bytes still count against the same 27 MB ceiling:
  /// try_charge_code reserves, release_code undoes. False means the
  /// reservation would overflow the cap — the function stays on the AOT
  /// stream.
  bool try_charge_code(std::size_t size) noexcept {
    return heap_in_use_.try_add_bounded(size, config_.secure_heap_cap);
  }
  void release_code(std::size_t size) noexcept { heap_in_use_.sub(size); }

  // -- root of trust ---------------------------------------------------------

  /// huk_subkey_derive: a usage-bound secret derived from the secure-world
  /// MKVB. Never exposes the MKVB itself; distinct usages give independent
  /// keys. Only meaningful inside the secure world.
  crypto::Sha256Digest huk_subkey_derive(std::string_view usage) const;

  // -- kernel modules ----------------------------------------------------------

  void register_module(std::shared_ptr<KernelModule> module);
  template <typename T>
  T* find_module(const std::string& name) const {
    const auto it = modules_.find(name);
    return it == modules_.end() ? nullptr : dynamic_cast<T*>(it->second.get());
  }

  // -- services ---------------------------------------------------------------

  void attach_supplicant(Supplicant* supplicant) noexcept { supplicant_ = supplicant; }
  Supplicant* supplicant() const noexcept { return supplicant_; }

  /// System time as seen from a TA. Routes through the normal world (the
  /// paper's driver extension) and charges the measured RPC latency of
  /// Fig 3a. Requires an attached supplicant.
  Result<TeeTime> get_system_time() const;

 private:
  friend class SecureAlloc;
  explicit TrustedOs(hw::LatencyModel latency, TrustedOsConfig config,
                     crypto::Sha256Digest mkvb_secure, tz::BootReport report)
      : latency_(std::move(latency)),
        config_(std::move(config)),
        mkvb_secure_(mkvb_secure),
        boot_report_(std::move(report)),
        shm_(config_.shared_memory_cap) {}

  void release(std::size_t size) noexcept { heap_in_use_.sub(size); }
  Result<SecureAlloc> allocate_impl(std::size_t size, bool executable);

  hw::LatencyModel latency_;
  TrustedOsConfig config_;
  crypto::Sha256Digest mkvb_secure_{};
  tz::BootReport boot_report_;
  SharedMemoryPool shm_;
  obs::Gauge heap_in_use_;
  std::unordered_map<std::string, std::shared_ptr<KernelModule>> modules_;
  Supplicant* supplicant_ = nullptr;
};

}  // namespace watz::optee
