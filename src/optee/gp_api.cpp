#include "optee/gp_api.hpp"

namespace watz::optee {

const char* tee_result_name(TeeResult r) {
  switch (r) {
    case TeeResult::Success: return "TEE_SUCCESS";
    case TeeResult::Generic: return "TEE_ERROR_GENERIC";
    case TeeResult::AccessDenied: return "TEE_ERROR_ACCESS_DENIED";
    case TeeResult::OutOfMemory: return "TEE_ERROR_OUT_OF_MEMORY";
    case TeeResult::BadParameters: return "TEE_ERROR_BAD_PARAMETERS";
    case TeeResult::NotSupported: return "TEE_ERROR_NOT_SUPPORTED";
    case TeeResult::SecurityViolation: return "TEE_ERROR_SECURITY";
  }
  return "TEE_ERROR_UNKNOWN";
}

}  // namespace watz::optee
