#include "optee/trusted_os.hpp"

namespace watz::optee {

SecureAlloc::SecureAlloc(SecureAlloc&& other) noexcept { *this = std::move(other); }

SecureAlloc& SecureAlloc::operator=(SecureAlloc&& other) noexcept {
  if (this != &other) {
    if (os_ != nullptr) os_->release(data_->size());
    os_ = other.os_;
    data_ = std::move(other.data_);
    executable_ = other.executable_;
    other.os_ = nullptr;
  }
  return *this;
}

SecureAlloc::~SecureAlloc() {
  if (os_ != nullptr) os_->release(data_->size());
}

Result<std::unique_ptr<TrustedOs>> TrustedOs::boot(
    const hw::Caam& caam, const hw::EfuseBank& fuses, const crypto::EcPoint& vendor_pub,
    const std::vector<tz::BootImage>& chain, hw::LatencyModel latency,
    TrustedOsConfig config) {
  auto report = tz::secure_boot(fuses, vendor_pub, chain);
  if (!report.ok())
    return Result<std::unique_ptr<TrustedOs>>::err("trusted OS refused to boot: " +
                                                   report.error());
  // Only a successfully booted secure world may query the CAAM for the
  // secure MKVB — the chain of trust protects the attestation keys (SS IV).
  const auto mkvb = caam.mkvb(hw::SecurityState::Secure);
  auto os = std::unique_ptr<TrustedOs>(
      new TrustedOs(std::move(latency), std::move(config), mkvb, std::move(*report)));
  return os;
}

Result<SecureAlloc> TrustedOs::allocate_impl(std::size_t size, bool executable) {
  if (size == 0) return Result<SecureAlloc>::err("TEE_Malloc: zero size");
  // Bounded reservation (a CAS loop inside the gauge): sandbox slots
  // allocate concurrently, and a check-then-add pair would let two racing
  // reservations overshoot the 27 MB ceiling that the whole budget
  // accounting hangs off.
  if (!heap_in_use_.try_add_bounded(size, config_.secure_heap_cap))
    return Result<SecureAlloc>::err(
        "TEE_ERROR_OUT_OF_MEMORY: secure heap cap exceeded (27 MB OP-TEE limit)");
  SecureAlloc alloc;
  alloc.os_ = this;
  alloc.data_ = std::make_unique<Bytes>(size, 0);
  alloc.executable_ = executable;
  return alloc;
}

Result<SecureAlloc> TrustedOs::allocate(std::size_t size) {
  return allocate_impl(size, false);
}

Result<SecureAlloc> TrustedOs::allocate_executable(std::size_t size) {
  if (!config_.watz_extensions)
    return Result<SecureAlloc>::err(
        "TEE_ERROR_NOT_SUPPORTED: stock OP-TEE cannot mark heap pages executable "
        "(github.com/OP-TEE/optee_os issue #4396); enable the WaTZ kernel extension");
  return allocate_impl(size, true);
}

crypto::Sha256Digest TrustedOs::huk_subkey_derive(std::string_view usage) const {
  return crypto::hmac_sha256(
      mkvb_secure_,
      ByteView(reinterpret_cast<const std::uint8_t*>(usage.data()), usage.size()));
}

void TrustedOs::register_module(std::shared_ptr<KernelModule> module) {
  modules_[module->name()] = std::move(module);
}

Result<TeeTime> TrustedOs::get_system_time() const {
  if (supplicant_ == nullptr)
    return Result<TeeTime>::err("get_system_time: no supplicant attached");
  // The query crosses to the normal world and back (Fig 3a: ~10 us).
  latency_.charge_time_rpc();
  return TeeTime::from_ns(supplicant_->monotonic_time_ns());
}

}  // namespace watz::optee
