#include "obs/trace.hpp"

#include <cinttypes>
#include <cstdio>

#include "hw/clock.hpp"

namespace watz::obs {

const char* stage_name(Stage stage) noexcept {
  switch (stage) {
    case Stage::Admit: return "admit";
    case Stage::Queue: return "queue";
    case Stage::Checkout: return "checkout";
    case Stage::Prepare: return "prepare";
    case Stage::TeeEntry: return "tee-entry";
    case Stage::TeeExit: return "tee-exit";
    case Stage::Guest: return "guest";
    case Stage::Exec: return "exec";
    case Stage::Ra: return "ra";
    case Stage::RaAppraise: return "ra-appraise";
    case Stage::Respond: return "respond";
    case Stage::Migrate: return "migrate";
  }
  return "unknown";
}

std::uint64_t next_span_id() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::uint64_t next_trace_id() noexcept {
  static std::atomic<std::uint64_t> counter{0};
  // splitmix64 finaliser: spreads sequential counters across the id space
  // so ids stay visually distinct in merged traces. Never returns 0.
  std::uint64_t z = counter.fetch_add(1, std::memory_order_relaxed) +
                    0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  z ^= z >> 31;
  return z == 0 ? 1 : z;
}

namespace {

std::atomic<std::uint64_t> g_sink_ids{0};

void pack(const SpanRecord& record, std::array<std::uint64_t, 6>& words) noexcept {
  words[0] = record.trace_id;
  words[1] = record.span_id;
  words[2] = record.parent_id;
  words[3] = record.start_ns;
  words[4] = record.dur_ns;
  words[5] = static_cast<std::uint64_t>(record.stage) |
             (static_cast<std::uint64_t>(record.detail) << 8);
}

SpanRecord unpack(const std::array<std::uint64_t, 6>& words) noexcept {
  SpanRecord record;
  record.trace_id = words[0];
  record.span_id = words[1];
  record.parent_id = words[2];
  record.start_ns = words[3];
  record.dur_ns = words[4];
  record.stage = static_cast<Stage>(words[5] & 0xff);
  record.detail = static_cast<std::uint32_t>(words[5] >> 8);
  return record;
}

}  // namespace

SpanSink::SpanSink(std::size_t capacity_per_thread)
    : capacity_(capacity_per_thread == 0 ? 1 : capacity_per_thread),
      sink_id_(g_sink_ids.fetch_add(1, std::memory_order_relaxed) + 1) {}

SpanSink::~SpanSink() = default;

SpanSink::Ring* SpanSink::ring_for_this_thread() noexcept {
  // Per-thread cache keyed by the sink's process-unique id. Entries for
  // destroyed sinks go stale but can never match a live sink (ids are
  // never reused), so dangling Ring pointers are never dereferenced.
  struct Entry {
    std::uint64_t sink_id;
    Ring* ring;
  };
  thread_local std::vector<Entry> cache;
  for (const Entry& entry : cache)
    if (entry.sink_id == sink_id_) return entry.ring;
  std::lock_guard<std::mutex> lock(mu_);
  rings_.push_back(std::make_unique<Ring>(capacity_));
  Ring* ring = rings_.back().get();
  cache.push_back(Entry{sink_id_, ring});
  return ring;
}

void SpanSink::record(const SpanRecord& record) noexcept {
  Ring* ring = ring_for_this_thread();
  std::array<std::uint64_t, 6> words;
  pack(record, words);
  const std::uint64_t index = ring->cursor++;
  Cell& cell = ring->cells[index % capacity_];
  // Per-cell seqlock: odd marks in-progress so a concurrent drain skips
  // the cell instead of returning a torn record.
  cell.seq.store(2 * index + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  for (std::size_t w = 0; w < words.size(); ++w)
    cell.words[w].store(words[w], std::memory_order_relaxed);
  cell.seq.store(2 * index + 2, std::memory_order_release);
  ring->head.store(index + 1, std::memory_order_release);
}

std::vector<SpanRecord> SpanSink::drain() {
  std::vector<SpanRecord> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Ring>& ring : rings_) {
    const std::uint64_t head = ring->head.load(std::memory_order_acquire);
    std::uint64_t lo = head > capacity_ ? head - capacity_ : 0;
    if (lo > ring->watermark)
      dropped_.fetch_add(lo - ring->watermark, std::memory_order_relaxed);
    else
      lo = ring->watermark;
    for (std::uint64_t index = lo; index < head; ++index) {
      Cell& cell = ring->cells[index % capacity_];
      const std::uint64_t want = 2 * index + 2;
      if (cell.seq.load(std::memory_order_acquire) != want) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      std::array<std::uint64_t, 6> words;
      for (std::size_t w = 0; w < words.size(); ++w)
        words[w] = cell.words[w].load(std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_acquire);
      if (cell.seq.load(std::memory_order_relaxed) != want) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      out.push_back(unpack(words));
    }
    ring->watermark = head;
  }
  return out;
}

std::size_t SpanSink::ring_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return rings_.size();
}

std::string SpanSink::to_chrome_trace(const std::vector<SpanRecord>& spans) {
  std::string json = "{\"traceEvents\":[";
  char buf[320];
  bool first = true;
  for (const SpanRecord& span : spans) {
    std::snprintf(
        buf, sizeof(buf),
        "%s{\"name\":\"%s\",\"cat\":\"watz\",\"ph\":\"X\","
        "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%" PRIu64 ","
        "\"args\":{\"trace_id\":\"%" PRIx64 "\",\"span_id\":\"%" PRIx64
        "\",\"parent_id\":\"%" PRIx64 "\",\"detail\":%u}}",
        first ? "" : ",", stage_name(span.stage),
        static_cast<double>(span.start_ns) / 1000.0,
        static_cast<double>(span.dur_ns) / 1000.0,
        // One Chrome "thread" per lane root keeps a batch's lanes on
        // separate rows of the flame graph.
        span.parent_id != 0 ? span.parent_id : span.span_id, span.trace_id,
        span.span_id, span.parent_id, span.detail);
    json += buf;
    first = false;
  }
  json += "]}";
  return json;
}

ThreadTrace& thread_trace() noexcept {
  thread_local ThreadTrace trace;
  return trace;
}

void emit_span(Stage stage, std::uint64_t start_ns, std::uint64_t end_ns,
               std::uint32_t detail) noexcept {
  const ThreadTrace& trace = thread_trace();
  if (trace.sink == nullptr) return;
  SpanRecord record;
  record.trace_id = trace.trace_id;
  record.span_id = next_span_id();
  record.parent_id = trace.parent_span;
  record.start_ns = start_ns;
  record.dur_ns = end_ns > start_ns ? end_ns - start_ns : 0;
  record.stage = stage;
  record.detail = detail;
  trace.sink->record(record);
}

ScopedSpan::ScopedSpan(Stage stage, std::uint32_t detail) noexcept
    : stage_(stage), detail_(detail), active_(tracing_active()) {
  if (active_) start_ns_ = hw::monotonic_ns();
}

ScopedSpan::~ScopedSpan() {
  if (active_) emit_span(stage_, start_ns_, hw::monotonic_ns(), detail_);
}

}  // namespace watz::obs
