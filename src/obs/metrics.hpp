// Typed metrics: named counters, gauges and log2 histograms.
//
// One obs::Registry per gateway replaces the ad-hoc std::atomic fields
// that previously lived in Gateway, ModuleCache, ShardedVerifier and the
// TrustedOs heap accountant. Metrics are either *owned* by the registry
// (get-or-create by name, stable addresses, node-based map) or *linked*
// (externally-owned instances registered by name so they appear in
// snapshots — e.g. a device's module-cache counters). The hot paths touch
// only lock-free atomics; the mutex guards name → metric resolution and
// snapshotting, both cold.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace watz::obs {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t get() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Up/down level (bytes in use, inflight lanes, ...).
class Gauge {
 public:
  void add(std::uint64_t n) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  void sub(std::uint64_t n) noexcept {
    value_.fetch_sub(n, std::memory_order_relaxed);
  }
  std::uint64_t get() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

  /// Atomically adds `delta` unless the result would exceed `bound`;
  /// returns false (and leaves the gauge unchanged) on overflow. This is
  /// the reservation primitive behind the secure-heap ceiling.
  bool try_add_bounded(std::uint64_t delta, std::uint64_t bound) noexcept {
    std::uint64_t current = value_.load(std::memory_order_relaxed);
    do {
      if (current + delta > bound) return false;
    } while (!value_.compare_exchange_weak(current, current + delta,
                                           std::memory_order_relaxed));
    return true;
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Log2-bucketed histogram: bucket b holds samples with value <= 1<<b.
/// Percentiles resolve to the upper bound of the rank's bucket, matching
/// the queue-delay histogram this class generalises.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  void record(std::uint64_t value) noexcept {
    std::size_t bucket = 0;
    while (bucket + 1 < kBuckets && (1ull << bucket) < value) ++bucket;
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    samples_.fetch_add(1, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept {
    return samples_.load(std::memory_order_relaxed);
  }

  /// Upper bound (1<<bucket) of the bucket holding the q-quantile sample;
  /// 0 when empty. q in [0, 1].
  std::uint64_t percentile(double q) const noexcept;

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> samples_{0};
};

enum class MetricKind : std::uint8_t { Counter, Gauge, Histogram };

/// One registry entry flattened for printing / wire export.
struct MetricSnapshot {
  std::string name;
  MetricKind kind = MetricKind::Counter;
  std::uint64_t value = 0;  // counter/gauge value; histogram sample count
  std::uint64_t p50 = 0;    // histograms only
  std::uint64_t p90 = 0;
  std::uint64_t p99 = 0;
};

class Registry {
 public:
  /// Get-or-create by name. Returned references stay valid for the
  /// registry's lifetime (node-based storage).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Registers an externally-owned metric under `name` so it shows up in
  /// snapshot(). The caller keeps ownership and must outlive the registry
  /// or unlink by re-linking nullptr.
  void link_counter(const std::string& name, const Counter* counter);
  void link_gauge(const std::string& name, const Gauge* gauge);

  /// All owned + linked metrics, sorted by name.
  std::vector<MetricSnapshot> snapshot() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, const Counter*> linked_counters_;
  std::map<std::string, const Gauge*> linked_gauges_;
};

}  // namespace watz::obs
