// Span tracing: the per-invocation flame-graph plane.
//
// A TraceContext is allocated once per sampled invocation (or once per
// INVOKE_BATCH — every lane of a batch shares the trace_id) at gateway
// admission and rides the wire protocol end to end. Each pipeline stage
// emits one fixed-size SpanRecord into a per-thread lock-free ring owned
// by the gateway's SpanSink; a collector drains the rings and exports
// Chrome trace_event JSON, so one batch renders as one flame graph in
// chrome://tracing / Perfetto.
//
// Deep layers (tz monitor, wasm executor, RA verifier shards) know nothing
// about the gateway: they emit through a thread-local ThreadTrace that the
// owning slot worker installs with ScopedTrace before running the lane.
// When no trace is installed (unsampled invoke, or any thread outside a
// traced request) every tracing call is one thread-local load and a branch.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace watz::obs {

/// Pipeline stages, one per span. Values are wire-stable: they appear in
/// exported traces and in STATS slow-invoke breakdowns.
enum class Stage : std::uint8_t {
  Admit = 0,       // gateway admission: decode + placement, pre-queue
  Queue = 1,       // time spent parked in a slot's run queue
  Checkout = 2,    // warm-instance checkout from the sandbox pool
  Prepare = 3,     // cold prepare: module decode/compile + launch
  TeeEntry = 4,    // secure-monitor enter (world-switch charge)
  TeeExit = 5,     // secure-monitor leave
  Guest = 6,       // guest code executing inside the sandbox
  Exec = 7,        // gateway-side wrapper around the whole TEE invoke
  Ra = 8,          // full RA handshake (4 messages) on the lane's critical path
  RaAppraise = 9,  // verifier-shard evidence appraisal (detail = shard index)
  Respond = 10,    // response fold + encode back to the client
  Migrate = 11,    // session re-placement after a device failed appraisal
};

inline constexpr std::size_t kStageCount = 12;

const char* stage_name(Stage stage) noexcept;

/// Wire-propagated trace identity. trace_id == 0 means "not traced".
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  bool active() const noexcept { return trace_id != 0; }
};

/// One completed span. Fixed-size: packs into six u64 ring words.
struct SpanRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t dur_ns = 0;
  Stage stage = Stage::Admit;
  std::uint32_t detail = 0;  // stage-specific: shard index, slot index, ...
};

/// Process-unique, never-zero span-id allocator.
std::uint64_t next_span_id() noexcept;

/// Process-unique, never-zero trace-id allocator (bit-mixed so ids from
/// concurrent gateways do not collide visually in merged traces).
std::uint64_t next_trace_id() noexcept;

/// Per-thread lock-free span rings with a mutex-guarded drain side.
///
/// Writer side (any thread, no locks): the first record() on a thread
/// registers a ring for it; subsequent records are a per-cell seqlock
/// write — all ring state is std::atomic, so concurrent drains are
/// data-race-free and torn cells are detected by sequence validation
/// rather than prevented by blocking. A writer that laps an undrained
/// reader silently overwrites; drain() reports the overwritten records
/// through dropped().
///
/// Reader side: drain() walks every registered ring under the sink mutex
/// and returns all records published since the previous drain.
class SpanSink {
 public:
  explicit SpanSink(std::size_t capacity_per_thread = kDefaultCapacity);
  ~SpanSink();
  SpanSink(const SpanSink&) = delete;
  SpanSink& operator=(const SpanSink&) = delete;

  static constexpr std::size_t kDefaultCapacity = 4096;

  /// Publishes one span from the calling thread. Lock-free after the
  /// thread's first call (which registers its ring under the mutex).
  void record(const SpanRecord& record) noexcept;

  /// Returns every record published since the last drain, across all
  /// threads. Never blocks writers.
  std::vector<SpanRecord> drain();

  /// Records overwritten before a drain reached them (plus cells caught
  /// mid-write). Cumulative.
  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }

  std::size_t capacity_per_thread() const noexcept { return capacity_; }

  /// Number of per-thread rings registered so far.
  std::size_t ring_count() const;

  /// Renders spans as Chrome trace_event JSON ("X" complete events, ts/dur
  /// in microseconds) loadable by chrome://tracing and Perfetto.
  static std::string to_chrome_trace(const std::vector<SpanRecord>& spans);

 private:
  struct Cell {
    // seq == 2m+1 while record m is being written, 2m+2 once published.
    std::atomic<std::uint64_t> seq{0};
    std::array<std::atomic<std::uint64_t>, 6> words{};
  };
  struct Ring {
    explicit Ring(std::size_t cap) : cells(cap) {}
    std::vector<Cell> cells;
    std::atomic<std::uint64_t> head{0};  // next monotonic write index
    std::uint64_t cursor = 0;            // writer-private copy of head
    std::uint64_t watermark = 0;         // drained-up-to (reader, under mu_)
  };

  Ring* ring_for_this_thread() noexcept;

  const std::size_t capacity_;
  const std::uint64_t sink_id_;  // process-unique; keys the thread cache
  mutable std::mutex mu_;        // guards rings_ and watermarks
  std::vector<std::unique_ptr<Ring>> rings_;
  std::atomic<std::uint64_t> dropped_{0};
};

/// The thread-local trace installed while a traced lane runs on this
/// thread. Deep layers read it through the free functions below.
struct ThreadTrace {
  SpanSink* sink = nullptr;
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;  // lane root: parent of emitted stage spans
};

ThreadTrace& thread_trace() noexcept;

inline bool tracing_active() noexcept { return thread_trace().sink != nullptr; }

/// Emits one stage span under the current thread's trace (no-op when
/// untraced). `end_ns` may equal `start_ns` for instantaneous events.
void emit_span(Stage stage, std::uint64_t start_ns, std::uint64_t end_ns,
               std::uint32_t detail = 0) noexcept;

/// Installs a ThreadTrace for the current scope and restores the previous
/// one on exit (traces nest across re-dispatch hops).
class ScopedTrace {
 public:
  ScopedTrace(SpanSink* sink, std::uint64_t trace_id,
              std::uint64_t parent_span) noexcept
      : saved_(thread_trace()) {
    thread_trace() = ThreadTrace{sink, trace_id, parent_span};
  }
  ~ScopedTrace() { thread_trace() = saved_; }
  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  ThreadTrace saved_;
};

/// RAII span covering its lexical scope. Costs one thread-local load when
/// the thread is untraced.
class ScopedSpan {
 public:
  explicit ScopedSpan(Stage stage, std::uint32_t detail = 0) noexcept;
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Stage stage_;
  std::uint32_t detail_;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace watz::obs
