#include "obs/metrics.hpp"

#include <algorithm>

namespace watz::obs {

std::uint64_t Histogram::percentile(double q) const noexcept {
  std::array<std::uint64_t, kBuckets> counts{};
  std::uint64_t total = 0;
  for (std::size_t bucket = 0; bucket < kBuckets; ++bucket) {
    counts[bucket] = buckets_[bucket].load(std::memory_order_relaxed);
    total += counts[bucket];
  }
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  const std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(total - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t bucket = 0; bucket < kBuckets; ++bucket) {
    seen += counts[bucket];
    if (seen >= rank) return 1ull << bucket;
  }
  return 1ull << (kBuckets - 1);
}

Counter& Registry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Counter>& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Gauge>& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Histogram>& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void Registry::link_counter(const std::string& name, const Counter* counter) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counter == nullptr)
    linked_counters_.erase(name);
  else
    linked_counters_[name] = counter;
}

void Registry::link_gauge(const std::string& name, const Gauge* gauge) {
  std::lock_guard<std::mutex> lock(mu_);
  if (gauge == nullptr)
    linked_gauges_.erase(name);
  else
    linked_gauges_[name] = gauge;
}

std::vector<MetricSnapshot> Registry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size() +
              linked_counters_.size() + linked_gauges_.size());
  for (const auto& [name, counter] : counters_)
    out.push_back({name, MetricKind::Counter, counter->get(), 0, 0, 0});
  for (const auto& [name, counter] : linked_counters_)
    out.push_back({name, MetricKind::Counter, counter->get(), 0, 0, 0});
  for (const auto& [name, gauge] : gauges_)
    out.push_back({name, MetricKind::Gauge, gauge->get(), 0, 0, 0});
  for (const auto& [name, gauge] : linked_gauges_)
    out.push_back({name, MetricKind::Gauge, gauge->get(), 0, 0, 0});
  for (const auto& [name, histogram] : histograms_)
    out.push_back({name, MetricKind::Histogram, histogram->count(),
                   histogram->percentile(0.50), histogram->percentile(0.90),
                   histogram->percentile(0.99)});
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

}  // namespace watz::obs
