// Fortuna PRNG (Ferguson & Schneier), generator part with entropy pooling.
//
// The paper extends LibTomCrypt inside OP-TEE with Fortuna specifically
// because the stock OP-TEE PRNG cannot be seeded: WaTZ derives the
// attestation key pair deterministically from the hardware root of trust by
// seeding Fortuna with a subkey of the master key (SS V, "The attestation
// service"). This implementation mirrors that contract: same seed => same
// byte stream => same ECDSA attestation key pair on every boot.
#pragma once

#include <array>
#include <cstdint>
#include <memory>

#include "crypto/aes.hpp"
#include "crypto/rng.hpp"
#include "crypto/sha256.hpp"

namespace watz::crypto {

class Fortuna final : public Rng {
 public:
  /// Creates an unseeded generator; fill() before any reseed() throws.
  Fortuna() = default;

  /// Creates a generator seeded with `seed` (deterministic stream).
  explicit Fortuna(ByteView seed) { reseed(seed); }

  /// Mixes new entropy: K = SHA-256(K || seed), counter incremented.
  void reseed(ByteView seed);

  /// Generates pseudorandom bytes (AES-256-CTR blocks, with the
  /// rekey-after-request hardening from the Fortuna design).
  void fill(std::span<std::uint8_t> out) override;

  bool seeded() const noexcept { return seeded_; }

 private:
  void increment_counter() noexcept;
  void generate_blocks(std::uint8_t* out, std::size_t blocks);

  std::array<std::uint8_t, 32> key_{};
  std::array<std::uint8_t, 16> counter_{};
  bool seeded_ = false;
};

}  // namespace watz::crypto
