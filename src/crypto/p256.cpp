#include "crypto/p256.hpp"

#include <cstring>

namespace watz::crypto {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

/// 256-bit unsigned integer, little-endian limb order.
struct U256 {
  u64 w[4] = {0, 0, 0, 0};

  bool operator==(const U256&) const = default;
};

constexpr U256 kZero{};

U256 from_be(const Scalar32& b) noexcept {
  U256 v;
  for (int limb = 0; limb < 4; ++limb) {
    u64 x = 0;
    for (int i = 0; i < 8; ++i) x = (x << 8) | b[(3 - limb) * 8 + i];
    v.w[limb] = x;
  }
  return v;
}

Scalar32 to_be(const U256& v) noexcept {
  Scalar32 b;
  for (int limb = 0; limb < 4; ++limb)
    for (int i = 0; i < 8; ++i)
      b[(3 - limb) * 8 + i] = static_cast<std::uint8_t>(v.w[limb] >> (56 - 8 * i));
  return b;
}

bool is_zero(const U256& v) noexcept {
  return (v.w[0] | v.w[1] | v.w[2] | v.w[3]) == 0;
}

/// Returns -1/0/1 for a<b / a==b / a>b.
int cmp(const U256& a, const U256& b) noexcept {
  for (int i = 3; i >= 0; --i) {
    if (a.w[i] < b.w[i]) return -1;
    if (a.w[i] > b.w[i]) return 1;
  }
  return 0;
}

/// a + b; returns carry out.
u64 add(U256& out, const U256& a, const U256& b) noexcept {
  u128 carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 cur = static_cast<u128>(a.w[i]) + b.w[i] + carry;
    out.w[i] = static_cast<u64>(cur);
    carry = cur >> 64;
  }
  return static_cast<u64>(carry);
}

/// a - b; returns borrow out (1 if a < b).
u64 sub(U256& out, const U256& a, const U256& b) noexcept {
  u128 borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 cur = static_cast<u128>(a.w[i]) - b.w[i] - borrow;
    out.w[i] = static_cast<u64>(cur);
    borrow = (cur >> 64) & 1;
  }
  return static_cast<u64>(borrow);
}

int bit(const U256& v, int i) noexcept { return (v.w[i / 64] >> (i % 64)) & 1; }

/// Montgomery arithmetic modulo a fixed 256-bit modulus (R = 2^256).
class MontCtx {
 public:
  constexpr MontCtx(U256 modulus, U256 rr, u64 n0) : m_(modulus), rr_(rr), n0_(n0) {}

  const U256& modulus() const noexcept { return m_; }

  /// a*b*R^-1 mod m (operands in Montgomery domain -> result in domain).
  U256 mul(const U256& a, const U256& b) const noexcept {
    // Schoolbook 512-bit product.
    u64 prod[9] = {};
    for (int i = 0; i < 4; ++i) {
      u128 carry = 0;
      for (int j = 0; j < 4; ++j) {
        const u128 cur = static_cast<u128>(a.w[i]) * b.w[j] + prod[i + j] + carry;
        prod[i + j] = static_cast<u64>(cur);
        carry = cur >> 64;
      }
      prod[i + 4] = static_cast<u64>(carry);
    }
    // Montgomery reduction (SOS).
    for (int i = 0; i < 4; ++i) {
      const u64 q = prod[i] * n0_;
      u128 carry = 0;
      for (int j = 0; j < 4; ++j) {
        const u128 cur = static_cast<u128>(q) * m_.w[j] + prod[i + j] + carry;
        prod[i + j] = static_cast<u64>(cur);
        carry = cur >> 64;
      }
      int k = i + 4;
      while (carry != 0) {
        const u128 cur = static_cast<u128>(prod[k]) + carry;
        prod[k] = static_cast<u64>(cur);
        carry = cur >> 64;
        ++k;
      }
    }
    U256 r{prod[4], prod[5], prod[6], prod[7]};
    if (prod[8] != 0 || cmp(r, m_) >= 0) sub(r, r, m_);
    return r;
  }

  U256 to_mont(const U256& a) const noexcept { return mul(a, rr_); }
  U256 from_mont(const U256& a) const noexcept { return mul(a, U256{1, 0, 0, 0}); }

  U256 add_mod(const U256& a, const U256& b) const noexcept {
    U256 r;
    const u64 carry = add(r, a, b);
    if (carry != 0 || cmp(r, m_) >= 0) sub(r, r, m_);
    return r;
  }

  U256 sub_mod(const U256& a, const U256& b) const noexcept {
    U256 r;
    if (sub(r, a, b) != 0) add(r, r, m_);
    return r;
  }

  /// a^e mod m (a in Montgomery domain, result in domain).
  U256 pow(const U256& a, const U256& e) const noexcept {
    U256 result = to_mont(U256{1, 0, 0, 0});
    for (int i = 255; i >= 0; --i) {
      result = mul(result, result);
      if (bit(e, i)) result = mul(result, a);
    }
    return result;
  }

  /// Modular inverse via Fermat (m prime). Input/output in Montgomery domain.
  U256 inv(const U256& a) const noexcept {
    U256 e;
    sub(e, m_, U256{2, 0, 0, 0});
    return pow(a, e);
  }

 private:
  U256 m_;
  U256 rr_;  // R^2 mod m
  u64 n0_;   // -m^-1 mod 2^64
};

// Curve parameters (big-endian source, stored as LE limbs).
// p  = ffffffff00000001 0000000000000000 00000000ffffffff ffffffffffffffff
// n  = ffffffff00000000 ffffffffffffffff bce6faada7179e84 f3b9cac2fc632551
// b  = 5ac635d8aa3a93e7 b3ebbd55769886bc 651d06b0cc53b0f6 3bce3c3e27d2604b
// Gx = 6b17d1f2e12c4247 f8bce6e563a440f2 77037d812deb33a0 f4a13945d898c296
// Gy = 4fe342e2fe1a7f9b 8ee7eb4a7c0f9e16 2bce33576b315ece cbb6406837bf51f5
constexpr U256 kP{0xffffffffffffffffULL, 0x00000000ffffffffULL, 0x0000000000000000ULL,
                  0xffffffff00000001ULL};
constexpr U256 kN{0xf3b9cac2fc632551ULL, 0xbce6faada7179e84ULL, 0xffffffffffffffffULL,
                  0xffffffff00000000ULL};
constexpr U256 kB{0x3bce3c3e27d2604bULL, 0x651d06b0cc53b0f6ULL, 0xb3ebbd55769886bcULL,
                  0x5ac635d8aa3a93e7ULL};
constexpr U256 kGx{0xf4a13945d898c296ULL, 0x77037d812deb33a0ULL, 0xf8bce6e563a440f2ULL,
                   0x6b17d1f2e12c4247ULL};
constexpr U256 kGy{0xcbb6406837bf51f5ULL, 0x2bce33576b315eceULL, 0x8ee7eb4a7c0f9e16ULL,
                   0x4fe342e2fe1a7f9bULL};

// Precomputed Montgomery constants.
// R^2 mod p = 00000004fffffffd fffffffffffffffe fffffffbffffffff 0000000000000003
constexpr U256 kRRp{0x0000000000000003ULL, 0xfffffffbffffffffULL, 0xfffffffffffffffeULL,
                    0x00000004fffffffdULL};
// -p^-1 mod 2^64 = 1 (since p mod 2^64 = 2^64 - 1).
constexpr u64 kN0p = 1;
// R^2 mod n = 66e12d94f3d95620 2845b2392b6bec59 4699799c49bd6fa6 83244c95be79eea2
constexpr U256 kRRn{0x83244c95be79eea2ULL, 0x4699799c49bd6fa6ULL, 0x2845b2392b6bec59ULL,
                    0x66e12d94f3d95620ULL};
// -n^-1 mod 2^64 = 0xccd1c8aaee00bc4f
constexpr u64 kN0n = 0xccd1c8aaee00bc4fULL;

const MontCtx& fp() {
  static const MontCtx ctx(kP, kRRp, kN0p);
  return ctx;
}

const MontCtx& fn() {
  static const MontCtx ctx(kN, kRRn, kN0n);
  return ctx;
}

/// Jacobian point, coordinates in the Montgomery domain of F_p.
struct JPoint {
  U256 x, y, z;  // z == 0 -> infinity
  bool is_infinity() const noexcept { return is_zero(z); }
};

JPoint jacobian_infinity() { return JPoint{kZero, kZero, kZero}; }

JPoint to_jacobian(const EcPoint& p) {
  if (p.infinity) return jacobian_infinity();
  const auto& f = fp();
  return JPoint{f.to_mont(from_be(p.x)), f.to_mont(from_be(p.y)),
                f.to_mont(U256{1, 0, 0, 0})};
}

EcPoint to_affine(const JPoint& p) {
  if (p.is_infinity()) return EcPoint{};
  const auto& f = fp();
  const U256 zinv = f.inv(p.z);
  const U256 zinv2 = f.mul(zinv, zinv);
  const U256 zinv3 = f.mul(zinv2, zinv);
  EcPoint out;
  out.infinity = false;
  out.x = to_be(f.from_mont(f.mul(p.x, zinv2)));
  out.y = to_be(f.from_mont(f.mul(p.y, zinv3)));
  return out;
}

/// Point doubling, dbl-2001-b formulas for a = -3.
JPoint jdouble(const JPoint& p) {
  if (p.is_infinity() || is_zero(p.y)) return jacobian_infinity();
  const auto& f = fp();
  const U256 delta = f.mul(p.z, p.z);
  const U256 gamma = f.mul(p.y, p.y);
  const U256 beta = f.mul(p.x, gamma);
  const U256 t0 = f.sub_mod(p.x, delta);
  const U256 t1 = f.add_mod(p.x, delta);
  U256 alpha = f.mul(t0, t1);
  alpha = f.add_mod(f.add_mod(alpha, alpha), alpha);  // 3*(x-d)*(x+d)
  U256 beta4 = f.add_mod(beta, beta);
  beta4 = f.add_mod(beta4, beta4);
  const U256 beta8 = f.add_mod(beta4, beta4);
  JPoint r;
  r.x = f.sub_mod(f.mul(alpha, alpha), beta8);
  const U256 yz = f.add_mod(p.y, p.z);
  r.z = f.sub_mod(f.sub_mod(f.mul(yz, yz), gamma), delta);
  const U256 g2 = f.mul(gamma, gamma);
  U256 g8 = f.add_mod(g2, g2);
  g8 = f.add_mod(g8, g8);
  g8 = f.add_mod(g8, g8);
  r.y = f.sub_mod(f.mul(alpha, f.sub_mod(beta4, r.x)), g8);
  return r;
}

/// General Jacobian addition.
JPoint jadd(const JPoint& a, const JPoint& b) {
  if (a.is_infinity()) return b;
  if (b.is_infinity()) return a;
  const auto& f = fp();
  const U256 z1z1 = f.mul(a.z, a.z);
  const U256 z2z2 = f.mul(b.z, b.z);
  const U256 u1 = f.mul(a.x, z2z2);
  const U256 u2 = f.mul(b.x, z1z1);
  const U256 s1 = f.mul(f.mul(a.y, b.z), z2z2);
  const U256 s2 = f.mul(f.mul(b.y, a.z), z1z1);
  const U256 h = f.sub_mod(u2, u1);
  const U256 r = f.sub_mod(s2, s1);
  if (is_zero(h)) {
    if (is_zero(r)) return jdouble(a);
    return jacobian_infinity();
  }
  const U256 hh = f.mul(h, h);
  const U256 hhh = f.mul(h, hh);
  const U256 v = f.mul(u1, hh);
  JPoint out;
  out.x = f.sub_mod(f.sub_mod(f.mul(r, r), hhh), f.add_mod(v, v));
  out.y = f.sub_mod(f.mul(r, f.sub_mod(v, out.x)), f.mul(s1, hhh));
  out.z = f.mul(f.mul(a.z, b.z), h);
  return out;
}

JPoint jmul(const JPoint& p, const U256& k) {
  JPoint acc = jacobian_infinity();
  for (int i = 255; i >= 0; --i) {
    acc = jdouble(acc);
    if (bit(k, i)) acc = jadd(acc, p);
  }
  return acc;
}

JPoint base_point() {
  const auto& f = fp();
  return JPoint{f.to_mont(kGx), f.to_mont(kGy), f.to_mont(U256{1, 0, 0, 0})};
}

}  // namespace

Bytes EcPoint::encode_uncompressed() const {
  Bytes out;
  out.reserve(65);
  out.push_back(0x04);
  append(out, x);
  append(out, y);
  return out;
}

Result<EcPoint> EcPoint::decode_uncompressed(ByteView data) {
  if (data.size() != 65 || data[0] != 0x04)
    return Result<EcPoint>::err("EcPoint: expected 65-byte uncompressed encoding");
  EcPoint p;
  p.infinity = false;
  std::memcpy(p.x.data(), data.data() + 1, 32);
  std::memcpy(p.y.data(), data.data() + 33, 32);
  if (!p256_on_curve(p)) return Result<EcPoint>::err("EcPoint: not on curve");
  return p;
}

EcPoint p256_base_mul(const Scalar32& k) {
  return to_affine(jmul(base_point(), from_be(k)));
}

EcPoint p256_mul(const EcPoint& p, const Scalar32& k) {
  return to_affine(jmul(to_jacobian(p), from_be(k)));
}

EcPoint p256_add(const EcPoint& a, const EcPoint& b) {
  return to_affine(jadd(to_jacobian(a), to_jacobian(b)));
}

bool p256_on_curve(const EcPoint& p) {
  if (p.infinity) return true;
  const auto& f = fp();
  const U256 x = from_be(p.x);
  const U256 y = from_be(p.y);
  if (cmp(x, kP) >= 0 || cmp(y, kP) >= 0) return false;
  const U256 xm = f.to_mont(x);
  const U256 ym = f.to_mont(y);
  // y^2 == x^3 - 3x + b
  const U256 lhs = f.mul(ym, ym);
  const U256 x2 = f.mul(xm, xm);
  const U256 x3 = f.mul(x2, xm);
  const U256 three_x = f.add_mod(f.add_mod(xm, xm), xm);
  const U256 rhs = f.add_mod(f.sub_mod(x3, three_x), f.to_mont(kB));
  return lhs == rhs;
}

bool p256_scalar_valid(const Scalar32& k) {
  const U256 v = from_be(k);
  return !is_zero(v) && cmp(v, kN) < 0;
}

Scalar32 scalar_mod_n(const Scalar32& v) {
  U256 x = from_be(v);
  if (cmp(x, kN) >= 0) sub(x, x, kN);
  return to_be(x);
}

Scalar32 scalar_add_mod_n(const Scalar32& a, const Scalar32& b) {
  return to_be(fn().add_mod(from_be(a), from_be(b)));
}

Scalar32 scalar_mul_mod_n(const Scalar32& a, const Scalar32& b) {
  const auto& f = fn();
  return to_be(f.from_mont(f.mul(f.to_mont(from_be(a)), f.to_mont(from_be(b)))));
}

Scalar32 scalar_inv_mod_n(const Scalar32& a) {
  const auto& f = fn();
  return to_be(f.from_mont(f.inv(f.to_mont(from_be(a)))));
}

bool scalar_is_zero(const Scalar32& a) { return is_zero(from_be(a)); }

}  // namespace watz::crypto
