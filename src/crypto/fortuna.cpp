#include "crypto/fortuna.hpp"

#include <algorithm>

#include "common/result.hpp"

namespace watz::crypto {

void Fortuna::reseed(ByteView seed) {
  Sha256 hash;
  hash.update(key_);
  hash.update(seed);
  const Sha256Digest digest = hash.finish();
  std::copy(digest.begin(), digest.end(), key_.begin());
  increment_counter();
  seeded_ = true;
}

void Fortuna::increment_counter() noexcept {
  // Little-endian 128-bit counter per the Fortuna specification.
  for (auto& byte : counter_) {
    if (++byte != 0) break;
  }
}

void Fortuna::generate_blocks(std::uint8_t* out, std::size_t blocks) {
  const Aes cipher(key_);
  for (std::size_t i = 0; i < blocks; ++i) {
    cipher.encrypt_block(counter_.data(), out + 16 * i);
    increment_counter();
  }
}

void Fortuna::fill(std::span<std::uint8_t> out) {
  if (!seeded_) throw Error("Fortuna: generate before seeding");
  std::size_t off = 0;
  while (off < out.size()) {
    std::uint8_t block[16];
    generate_blocks(block, 1);
    const std::size_t take = std::min<std::size_t>(16, out.size() - off);
    std::copy_n(block, take, out.data() + off);
    off += take;
  }
  // Rekey after every request so a later state compromise cannot reveal
  // previously generated output (Fortuna's "generator forward security").
  std::array<std::uint8_t, 32> new_key;
  generate_blocks(new_key.data(), 2);
  key_ = new_key;
}

}  // namespace watz::crypto
