// SGX-style key derivation for the WaTZ remote-attestation protocol.
//
// The paper (SS IV, msg1) states the ECDHE shared secret is derived into a
// key-derivation key (KDK) and then into Km (MAC key) and Ke (encryption
// key) "the same as in Intel SGX". This reproduces Intel's scheme:
//   KDK    = AES-CMAC(0^16, g_ab.x in little-endian)
//   subkey = AES-CMAC(KDK, 0x01 || label || 0x00 || 0x80 || 0x00)
#pragma once

#include <string_view>

#include "crypto/cmac.hpp"
#include "crypto/p256.hpp"

namespace watz::crypto {

using Key128 = std::array<std::uint8_t, 16>;

/// Derives the KDK from the big-endian ECDH shared x-coordinate.
Key128 derive_kdk(const Scalar32& shared_x_be);

/// Derives a labelled subkey from the KDK (e.g. "SMK" for Km, "SEK" for Ke).
Key128 derive_subkey(const Key128& kdk, std::string_view label);

/// Session keys used by the WaTZ protocol.
struct SessionKeys {
  Key128 km;  ///< MAC key for msg1/msg2 authentication.
  Key128 ke;  ///< AES-128-GCM key protecting msg3.
};

SessionKeys derive_session_keys(const Scalar32& shared_x_be);

}  // namespace watz::crypto
