#include "crypto/hmac.hpp"

#include <array>

namespace watz::crypto {

Sha256Digest hmac_sha256(ByteView key, ByteView message) noexcept {
  std::array<std::uint8_t, 64> block{};
  if (key.size() > block.size()) {
    const Sha256Digest kh = sha256(key);
    std::copy(kh.begin(), kh.end(), block.begin());
  } else {
    std::copy(key.begin(), key.end(), block.begin());
  }

  std::array<std::uint8_t, 64> ipad, opad;
  for (std::size_t i = 0; i < 64; ++i) {
    ipad[i] = block[i] ^ 0x36;
    opad[i] = block[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ipad);
  inner.update(message);
  const Sha256Digest inner_digest = inner.finish();

  Sha256 outer;
  outer.update(opad);
  outer.update(inner_digest);
  return outer.finish();
}

}  // namespace watz::crypto
