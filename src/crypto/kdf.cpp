#include "crypto/kdf.hpp"

#include <algorithm>

namespace watz::crypto {

Key128 derive_kdk(const Scalar32& shared_x_be) {
  // Intel's derivation feeds the shared x-coordinate in little-endian.
  Scalar32 le;
  std::reverse_copy(shared_x_be.begin(), shared_x_be.end(), le.begin());
  const Key128 zero{};
  return aes_cmac(zero, le);
}

Key128 derive_subkey(const Key128& kdk, std::string_view label) {
  Bytes msg;
  msg.push_back(0x01);
  append(msg, ByteView(reinterpret_cast<const std::uint8_t*>(label.data()), label.size()));
  msg.push_back(0x00);
  msg.push_back(0x80);  // output length: 128 bits, little-endian u16
  msg.push_back(0x00);
  return aes_cmac(kdk, msg);
}

SessionKeys derive_session_keys(const Scalar32& shared_x_be) {
  const Key128 kdk = derive_kdk(shared_x_be);
  return SessionKeys{derive_subkey(kdk, "SMK"), derive_subkey(kdk, "SEK")};
}

}  // namespace watz::crypto
