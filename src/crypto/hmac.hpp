// HMAC-SHA256 (RFC 2104). Required by the RFC 6979 deterministic ECDSA
// nonce derivation; not part of the wire protocol (which uses AES-CMAC).
#pragma once

#include "crypto/sha256.hpp"

namespace watz::crypto {

Sha256Digest hmac_sha256(ByteView key, ByteView message) noexcept;

}  // namespace watz::crypto
