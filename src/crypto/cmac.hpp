// AES-CMAC (RFC 4493 / NIST SP 800-38B). WaTZ uses CMAC both for the
// per-message MACs of the attestation protocol and for the SGX-style key
// derivation (KDK -> Km / Ke), as well as for huk_subkey_derive.
#pragma once

#include "common/bytes.hpp"
#include "crypto/aes.hpp"

namespace watz::crypto {

using CmacTag = std::array<std::uint8_t, 16>;

CmacTag aes_cmac(const Aes& cipher, ByteView message) noexcept;

/// Convenience: key must be 16 bytes (AES-128-CMAC as used by WaTZ).
CmacTag aes_cmac(ByteView key, ByteView message);

}  // namespace watz::crypto
