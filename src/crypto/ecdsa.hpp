// ECDSA (P-256/SHA-256) and ECDHE on top of the p256 group layer.
//
// Algorithm choices follow the paper (SS V): ECDSA-256 for the attestation
// key pair and protocol identities, ephemeral ECDH-256 for session keys.
// Signing uses RFC 6979 deterministic nonces, which removes the
// nonce-reuse failure mode and makes the whole stack reproducible.
#pragma once

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/p256.hpp"
#include "crypto/rng.hpp"
#include "crypto/sha256.hpp"

namespace watz::crypto {

struct EcdsaSignature {
  Scalar32 r{};
  Scalar32 s{};

  /// Raw 64-byte encoding r || s.
  Bytes encode() const;
  static Result<EcdsaSignature> decode(ByteView data);
};

struct KeyPair {
  Scalar32 priv{};
  EcPoint pub;
};

/// Generates a key pair with rejection sampling from `rng`.
KeyPair ecdsa_keygen(Rng& rng);

/// Derives the public key for an existing private scalar.
/// Fails if the scalar is not in [1, n-1].
Result<KeyPair> keypair_from_private(const Scalar32& priv);

/// Signs a 32-byte message digest (RFC 6979 nonce).
EcdsaSignature ecdsa_sign(const Scalar32& priv, const Sha256Digest& digest);

bool ecdsa_verify(const EcPoint& pub, const Sha256Digest& digest,
                  const EcdsaSignature& sig);

/// ECDH: x-coordinate of priv * peer_pub, as 32 big-endian bytes.
/// Fails if the peer point is invalid or the product is the identity.
Result<Scalar32> ecdh_shared_x(const Scalar32& priv, const EcPoint& peer_pub);

}  // namespace watz::crypto
