// AES-GCM authenticated encryption (NIST SP 800-38D) with 96-bit IVs and
// 128-bit tags. WaTZ uses AES-128-GCM to protect msg3 (the secret blob).
#pragma once

#include "common/bytes.hpp"
#include "common/result.hpp"
#include "crypto/aes.hpp"

namespace watz::crypto {

inline constexpr std::size_t kGcmIvSize = 12;
inline constexpr std::size_t kGcmTagSize = 16;
using GcmIv = std::array<std::uint8_t, kGcmIvSize>;

/// Encrypts `plaintext` and returns ciphertext || tag(16).
Bytes gcm_seal(const Aes& cipher, const GcmIv& iv, ByteView aad, ByteView plaintext);

/// Verifies and decrypts `ciphertext_and_tag` (ciphertext || tag(16)).
/// Fails on tag mismatch or truncated input.
Result<Bytes> gcm_open(const Aes& cipher, const GcmIv& iv, ByteView aad,
                       ByteView ciphertext_and_tag);

}  // namespace watz::crypto
