// AES block cipher (FIPS 197), key sizes 128/192/256.
//
// Only the forward (encrypt) direction is exposed: every mode used by WaTZ
// (CTR inside GCM, CMAC, Fortuna's counter-mode generator) needs the block
// cipher in one direction only.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace watz::crypto {

inline constexpr std::size_t kAesBlockSize = 16;
using AesBlock = std::array<std::uint8_t, kAesBlockSize>;

class Aes {
 public:
  /// `key` must be 16, 24 or 32 bytes; throws std::invalid_argument otherwise.
  explicit Aes(ByteView key);

  void encrypt_block(const std::uint8_t in[16], std::uint8_t out[16]) const noexcept;

  AesBlock encrypt_block(const AesBlock& in) const noexcept {
    AesBlock out;
    encrypt_block(in.data(), out.data());
    return out;
  }

 private:
  std::array<std::uint32_t, 60> round_keys_{};
  int rounds_ = 0;
};

}  // namespace watz::crypto
