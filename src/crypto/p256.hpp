// NIST P-256 (secp256r1) group arithmetic, from scratch.
//
// Internals use 4x64-bit limbs with Montgomery multiplication and Jacobian
// projective points. This header exposes only the byte-oriented group API;
// ECDSA/ECDH sit on top in ecdsa.hpp. The curve choice follows the paper
// (secp256r1 per NIST recommendation, SS V "Implementation").
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"
#include "common/result.hpp"

namespace watz::crypto {

/// 256-bit scalar or coordinate, big-endian byte order.
using Scalar32 = std::array<std::uint8_t, 32>;

/// Affine curve point. `infinity` true means the identity element.
struct EcPoint {
  Scalar32 x{};
  Scalar32 y{};
  bool infinity = true;

  /// SEC1 uncompressed encoding: 0x04 || x || y (65 bytes).
  Bytes encode_uncompressed() const;
  /// Decodes SEC1 uncompressed form and checks curve membership.
  static Result<EcPoint> decode_uncompressed(ByteView data);

  bool operator==(const EcPoint& other) const = default;
};

/// k * G for the fixed base point. Requires a valid scalar (1..n-1).
EcPoint p256_base_mul(const Scalar32& k);

/// k * P for arbitrary P (P must be on the curve).
EcPoint p256_mul(const EcPoint& p, const Scalar32& k);

EcPoint p256_add(const EcPoint& a, const EcPoint& b);

bool p256_on_curve(const EcPoint& p);

/// True iff 1 <= k < n (the group order).
bool p256_scalar_valid(const Scalar32& k);

// -- scalar arithmetic mod the group order n (for ECDSA) --------------------

/// Reduces an arbitrary 32-byte big-endian value mod n.
Scalar32 scalar_mod_n(const Scalar32& v);
Scalar32 scalar_add_mod_n(const Scalar32& a, const Scalar32& b);
Scalar32 scalar_mul_mod_n(const Scalar32& a, const Scalar32& b);
/// Modular inverse mod n; input must be non-zero mod n.
Scalar32 scalar_inv_mod_n(const Scalar32& a);
bool scalar_is_zero(const Scalar32& a);

}  // namespace watz::crypto
