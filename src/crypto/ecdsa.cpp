#include "crypto/ecdsa.hpp"

#include <cstring>

#include "crypto/hmac.hpp"

namespace watz::crypto {

namespace {

/// RFC 6979 nonce derivation for P-256 / SHA-256. `x` is the private key,
/// `h1` the message digest. qlen == hlen == 256 bits, so bits2int is the
/// identity and bits2octets is reduction mod n.
Scalar32 rfc6979_nonce(const Scalar32& x, const Sha256Digest& h1) {
  const Scalar32 h_mod_n = scalar_mod_n([&] {
    Scalar32 tmp;
    std::copy(h1.begin(), h1.end(), tmp.begin());
    return tmp;
  }());

  std::array<std::uint8_t, 32> v;
  v.fill(0x01);
  std::array<std::uint8_t, 32> k;
  k.fill(0x00);

  const Bytes seed0 = concat({v, ByteView((const std::uint8_t*)"\x00", 1), x, h_mod_n});
  k = hmac_sha256(k, seed0);
  v = hmac_sha256(k, v);
  const Bytes seed1 = concat({v, ByteView((const std::uint8_t*)"\x01", 1), x, h_mod_n});
  k = hmac_sha256(k, seed1);
  v = hmac_sha256(k, v);

  for (;;) {
    v = hmac_sha256(k, v);
    Scalar32 candidate;
    std::copy(v.begin(), v.end(), candidate.begin());
    if (p256_scalar_valid(candidate)) return candidate;
    const Bytes retry = concat({v, ByteView((const std::uint8_t*)"\x00", 1)});
    k = hmac_sha256(k, retry);
    v = hmac_sha256(k, v);
  }
}

Scalar32 digest_mod_n(const Sha256Digest& digest) {
  Scalar32 e;
  std::copy(digest.begin(), digest.end(), e.begin());
  return scalar_mod_n(e);
}

}  // namespace

Bytes EcdsaSignature::encode() const { return concat({r, s}); }

Result<EcdsaSignature> EcdsaSignature::decode(ByteView data) {
  if (data.size() != 64)
    return Result<EcdsaSignature>::err("EcdsaSignature: expected 64 bytes");
  EcdsaSignature sig;
  std::memcpy(sig.r.data(), data.data(), 32);
  std::memcpy(sig.s.data(), data.data() + 32, 32);
  return sig;
}

KeyPair ecdsa_keygen(Rng& rng) {
  for (;;) {
    Scalar32 priv;
    rng.fill(priv);
    if (!p256_scalar_valid(priv)) continue;
    return KeyPair{priv, p256_base_mul(priv)};
  }
}

Result<KeyPair> keypair_from_private(const Scalar32& priv) {
  if (!p256_scalar_valid(priv))
    return Result<KeyPair>::err("keypair_from_private: scalar out of range");
  return KeyPair{priv, p256_base_mul(priv)};
}

EcdsaSignature ecdsa_sign(const Scalar32& priv, const Sha256Digest& digest) {
  const Scalar32 e = digest_mod_n(digest);
  for (;;) {
    const Scalar32 k = rfc6979_nonce(priv, digest);
    const EcPoint kg = p256_base_mul(k);
    const Scalar32 r = scalar_mod_n(kg.x);
    if (scalar_is_zero(r)) continue;  // astronomically unlikely
    const Scalar32 kinv = scalar_inv_mod_n(k);
    const Scalar32 rd = scalar_mul_mod_n(r, priv);
    const Scalar32 s = scalar_mul_mod_n(kinv, scalar_add_mod_n(e, rd));
    if (scalar_is_zero(s)) continue;
    return EcdsaSignature{r, s};
  }
}

bool ecdsa_verify(const EcPoint& pub, const Sha256Digest& digest,
                  const EcdsaSignature& sig) {
  if (pub.infinity || !p256_on_curve(pub)) return false;
  if (!p256_scalar_valid(sig.r) || !p256_scalar_valid(sig.s)) return false;
  const Scalar32 e = digest_mod_n(digest);
  const Scalar32 sinv = scalar_inv_mod_n(sig.s);
  const Scalar32 u1 = scalar_mul_mod_n(e, sinv);
  const Scalar32 u2 = scalar_mul_mod_n(sig.r, sinv);
  EcPoint point;
  if (scalar_is_zero(u1)) {
    point = p256_mul(pub, u2);
  } else {
    point = p256_add(p256_base_mul(u1), p256_mul(pub, u2));
  }
  if (point.infinity) return false;
  const Scalar32 v = scalar_mod_n(point.x);
  return ct_equal(v, sig.r);
}

Result<Scalar32> ecdh_shared_x(const Scalar32& priv, const EcPoint& peer_pub) {
  if (peer_pub.infinity || !p256_on_curve(peer_pub))
    return Result<Scalar32>::err("ecdh: invalid peer public key");
  if (!p256_scalar_valid(priv)) return Result<Scalar32>::err("ecdh: invalid private key");
  const EcPoint shared = p256_mul(peer_pub, priv);
  if (shared.infinity) return Result<Scalar32>::err("ecdh: degenerate shared point");
  return shared.x;
}

}  // namespace watz::crypto
