#include "crypto/gcm.hpp"

#include <cstring>

namespace watz::crypto {

namespace {

struct U128 {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;
};

U128 load_be(const std::uint8_t b[16]) noexcept {
  U128 v;
  for (int i = 0; i < 8; ++i) v.hi = (v.hi << 8) | b[i];
  for (int i = 8; i < 16; ++i) v.lo = (v.lo << 8) | b[i];
  return v;
}

void store_be(const U128& v, std::uint8_t b[16]) noexcept {
  for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(v.hi >> (56 - 8 * i));
  for (int i = 0; i < 8; ++i) b[8 + i] = static_cast<std::uint8_t>(v.lo >> (56 - 8 * i));
}

/// GF(2^128) multiplication per SP 800-38D (right-shift variant).
U128 gf_mul(const U128& x, const U128& y) noexcept {
  U128 z{};
  U128 v = y;
  for (int i = 0; i < 128; ++i) {
    const std::uint64_t bit =
        i < 64 ? (x.hi >> (63 - i)) & 1 : (x.lo >> (127 - i)) & 1;
    if (bit) {
      z.hi ^= v.hi;
      z.lo ^= v.lo;
    }
    const bool lsb = v.lo & 1;
    v.lo = (v.lo >> 1) | (v.hi << 63);
    v.hi >>= 1;
    if (lsb) v.hi ^= 0xe100000000000000ULL;  // R = 11100001 || 0^120
  }
  return z;
}

class Ghash {
 public:
  explicit Ghash(const U128& h) noexcept : h_(h) {}

  void update(ByteView data) noexcept {
    std::size_t off = 0;
    while (off < data.size()) {
      std::uint8_t block[16] = {};
      const std::size_t take = std::min<std::size_t>(16, data.size() - off);
      std::memcpy(block, data.data() + off, take);
      const U128 x = load_be(block);
      y_.hi ^= x.hi;
      y_.lo ^= x.lo;
      y_ = gf_mul(y_, h_);
      off += take;
    }
  }

  void update_lengths(std::uint64_t aad_bits, std::uint64_t ct_bits) noexcept {
    std::uint8_t block[16];
    for (int i = 0; i < 8; ++i) block[i] = static_cast<std::uint8_t>(aad_bits >> (56 - 8 * i));
    for (int i = 0; i < 8; ++i) block[8 + i] = static_cast<std::uint8_t>(ct_bits >> (56 - 8 * i));
    update(ByteView(block, 16));
  }

  U128 digest() const noexcept { return y_; }

 private:
  U128 h_;
  U128 y_{};
};

void inc32(std::uint8_t counter[16]) noexcept {
  for (int i = 15; i >= 12; --i) {
    if (++counter[i] != 0) break;
  }
}

/// CTR-mode keystream application starting from counter block `j`.
void ctr_xor(const Aes& cipher, std::uint8_t counter[16], ByteView in, std::uint8_t* out) {
  std::size_t off = 0;
  while (off < in.size()) {
    inc32(counter);
    std::uint8_t keystream[16];
    cipher.encrypt_block(counter, keystream);
    const std::size_t take = std::min<std::size_t>(16, in.size() - off);
    for (std::size_t i = 0; i < take; ++i) out[off + i] = in[off + i] ^ keystream[i];
    off += take;
  }
}

struct GcmState {
  U128 h;
  std::uint8_t j0[16];
};

GcmState gcm_init(const Aes& cipher, const GcmIv& iv) {
  GcmState st;
  std::uint8_t zero[16] = {};
  std::uint8_t hblk[16];
  cipher.encrypt_block(zero, hblk);
  st.h = load_be(hblk);
  std::memcpy(st.j0, iv.data(), kGcmIvSize);
  st.j0[12] = st.j0[13] = st.j0[14] = 0;
  st.j0[15] = 1;
  return st;
}

void gcm_tag(const Aes& cipher, const GcmState& st, ByteView aad, ByteView ct,
             std::uint8_t tag[16]) {
  Ghash ghash(st.h);
  ghash.update(aad);
  ghash.update(ct);
  ghash.update_lengths(aad.size() * 8, ct.size() * 8);
  std::uint8_t s[16];
  store_be(ghash.digest(), s);
  std::uint8_t ek_j0[16];
  cipher.encrypt_block(st.j0, ek_j0);
  for (int i = 0; i < 16; ++i) tag[i] = s[i] ^ ek_j0[i];
}

}  // namespace

Bytes gcm_seal(const Aes& cipher, const GcmIv& iv, ByteView aad, ByteView plaintext) {
  const GcmState st = gcm_init(cipher, iv);

  Bytes out(plaintext.size() + kGcmTagSize);
  std::uint8_t counter[16];
  std::memcpy(counter, st.j0, 16);
  ctr_xor(cipher, counter, plaintext, out.data());

  gcm_tag(cipher, st, aad, ByteView(out.data(), plaintext.size()),
          out.data() + plaintext.size());
  return out;
}

Result<Bytes> gcm_open(const Aes& cipher, const GcmIv& iv, ByteView aad,
                       ByteView ciphertext_and_tag) {
  if (ciphertext_and_tag.size() < kGcmTagSize)
    return Result<Bytes>::err("gcm_open: input shorter than tag");
  const ByteView ct = ciphertext_and_tag.first(ciphertext_and_tag.size() - kGcmTagSize);
  const ByteView tag = ciphertext_and_tag.last(kGcmTagSize);

  const GcmState st = gcm_init(cipher, iv);
  std::uint8_t expected_tag[16];
  gcm_tag(cipher, st, aad, ct, expected_tag);
  if (!ct_equal(ByteView(expected_tag, 16), tag))
    return Result<Bytes>::err("gcm_open: authentication tag mismatch");

  Bytes out(ct.size());
  std::uint8_t counter[16];
  std::memcpy(counter, st.j0, 16);
  ctr_xor(cipher, counter, ct, out.data());
  return out;
}

}  // namespace watz::crypto
