// SHA-256 (FIPS 180-4). Used for code measurement of Wasm bytecode, the
// evidence anchor, MKVB derivation and RFC 6979 nonce generation.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace watz::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;
using Sha256Digest = std::array<std::uint8_t, kSha256DigestSize>;

/// Incremental SHA-256.
class Sha256 {
 public:
  Sha256() noexcept { reset(); }

  void reset() noexcept;
  void update(ByteView data) noexcept;
  /// Finalises and returns the digest. The object must be reset() before
  /// further use.
  Sha256Digest finish() noexcept;

 private:
  void process_block(const std::uint8_t* block) noexcept;

  std::array<std::uint32_t, 8> state_{};
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
  std::uint64_t total_bytes_ = 0;
};

/// One-shot convenience wrapper.
Sha256Digest sha256(ByteView data) noexcept;

}  // namespace watz::crypto
