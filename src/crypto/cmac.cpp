#include "crypto/cmac.hpp"

#include <cstring>

namespace watz::crypto {

namespace {

/// Doubling in GF(2^128) with the CMAC polynomial (left shift, xor Rb).
void gf_double(std::uint8_t block[16]) noexcept {
  const bool msb = block[0] & 0x80;
  for (int i = 0; i < 15; ++i)
    block[i] = static_cast<std::uint8_t>((block[i] << 1) | (block[i + 1] >> 7));
  block[15] = static_cast<std::uint8_t>(block[15] << 1);
  if (msb) block[15] ^= 0x87;
}

}  // namespace

CmacTag aes_cmac(const Aes& cipher, ByteView message) noexcept {
  // Subkey generation.
  std::uint8_t k1[16] = {};
  cipher.encrypt_block(k1, k1);  // L = AES(0)
  gf_double(k1);                 // K1
  std::uint8_t k2[16];
  std::memcpy(k2, k1, 16);
  gf_double(k2);  // K2

  const std::size_t n = message.size();
  const std::size_t full_blocks = n == 0 ? 0 : (n - 1) / 16;
  const bool last_complete = n > 0 && n % 16 == 0;

  std::uint8_t x[16] = {};
  for (std::size_t b = 0; b < full_blocks; ++b) {
    for (int i = 0; i < 16; ++i) x[i] ^= message[b * 16 + i];
    cipher.encrypt_block(x, x);
  }

  std::uint8_t last[16] = {};
  const std::size_t tail = n - full_blocks * 16;
  std::memcpy(last, message.data() + full_blocks * 16, tail);
  if (last_complete) {
    for (int i = 0; i < 16; ++i) last[i] ^= k1[i];
  } else {
    last[tail] = 0x80;
    for (int i = 0; i < 16; ++i) last[i] ^= k2[i];
  }

  for (int i = 0; i < 16; ++i) x[i] ^= last[i];
  CmacTag tag;
  cipher.encrypt_block(x, tag.data());
  return tag;
}

CmacTag aes_cmac(ByteView key, ByteView message) {
  const Aes cipher(key);
  return aes_cmac(cipher, message);
}

}  // namespace watz::crypto
