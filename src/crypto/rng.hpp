// Random number source abstraction.
//
// The simulated hardware injects deterministic or system-entropy RNGs here;
// the attestation key derivation seeds a Fortuna instance from the root of
// trust (SS V), so determinism of the whole pipeline is testable.
#pragma once

#include <cstdint>
#include <span>

#include "common/bytes.hpp"

namespace watz::crypto {

class Rng {
 public:
  virtual ~Rng() = default;
  virtual void fill(std::span<std::uint8_t> out) = 0;

  Bytes bytes(std::size_t n) {
    Bytes out(n);
    fill(out);
    return out;
  }
};

/// Non-deterministic RNG backed by std::random_device (stand-in for the
/// platform hardware TRNG that OP-TEE's default PRNG consumes).
class SystemRng final : public Rng {
 public:
  void fill(std::span<std::uint8_t> out) override;
};

}  // namespace watz::crypto
