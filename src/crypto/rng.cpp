#include "crypto/rng.hpp"

#include <random>

namespace watz::crypto {

void SystemRng::fill(std::span<std::uint8_t> out) {
  static thread_local std::random_device device;
  std::size_t i = 0;
  while (i < out.size()) {
    const unsigned int word = device();
    for (std::size_t b = 0; b < sizeof(word) && i < out.size(); ++b, ++i)
      out[i] = static_cast<std::uint8_t>(word >> (8 * b));
  }
}

}  // namespace watz::crypto
